package xfer

import (
	"testing"

	"emucheck/internal/node"
	"emucheck/internal/sim"
)

// TestStreamsShareBandwidth: two equal concurrent streams must each see
// half the pipe and finish together, taking twice the solo time — the
// processor-sharing contract.
func TestStreamsShareBandwidth(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 10<<20) // 10 MB/s
	const n = 10 << 20         // 10 MB each

	var doneA, doneB sim.Time
	sv.StreamUpload("a", n, func() { doneA = s.Now() })
	sv.StreamUpload("b", n, func() { doneB = s.Now() })
	s.Run()

	if doneA == 0 || doneB == 0 {
		t.Fatal("streams never completed")
	}
	if doneA != doneB {
		t.Fatalf("equal streams finished apart: %v vs %v", doneA, doneB)
	}
	want := 2 * sim.Second
	if doneA < want-sim.Millisecond || doneA > want+sim.Millisecond {
		t.Fatalf("two shared 1 s streams should take ~2 s, took %v", doneA)
	}
	if sv.ByTag["a"] != n || sv.ByTag["b"] != n {
		t.Fatalf("per-tag accounting wrong: %v", sv.ByTag)
	}
}

// TestStreamSmallNotBlockedByLarge: a small stream admitted alongside a
// huge one must finish far sooner than the huge one — the anti-head-of-
// line property serialized FIFO transfers lack.
func TestStreamSmallNotBlockedByLarge(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 10<<20)

	var bigDone, smallDone sim.Time
	sv.StreamUpload("big", 100<<20, func() { bigDone = s.Now() })
	sv.StreamUpload("small", 1<<20, func() { smallDone = s.Now() })
	s.Run()

	if smallDone == 0 || bigDone == 0 {
		t.Fatal("streams never completed")
	}
	// Small: 1 MB at a 5 MB/s share = 0.2 s. FIFO would have made it
	// wait 10 s behind the big one.
	if smallDone > sim.Second {
		t.Fatalf("small stream head-of-line blocked: finished at %v", smallDone)
	}
	if bigDone < 10*sim.Second {
		t.Fatalf("big stream finished impossibly fast: %v", bigDone)
	}
	if sv.ActiveStreams() != 0 {
		t.Fatalf("%d streams leaked", sv.ActiveStreams())
	}
}

// TestStreamStaggeredAdmission: a stream joining midway slows the first
// one from its join point only; totals stay conserved.
func TestStreamStaggeredAdmission(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 10<<20)

	var doneA, doneB sim.Time
	sv.StreamUpload("a", 10<<20, func() { doneA = s.Now() })
	s.At(500*sim.Millisecond, "join", func() {
		sv.StreamUpload("b", 10<<20, func() { doneB = s.Now() })
	})
	s.Run()

	// A: 5 MB solo in 0.5 s, then shares; both have 1 s of shared pipe
	// ahead... A finishes at 0.5 + 5/5 = 1.5 s, B drains its remaining
	// 5 MB solo after that: 1.5 + 0.5 = 2.0 s.
	if doneA < 1490*sim.Millisecond || doneA > 1510*sim.Millisecond {
		t.Fatalf("stream A finished at %v, want ~1.5s", doneA)
	}
	if doneB < 1990*sim.Millisecond || doneB > 2010*sim.Millisecond {
		t.Fatalf("stream B finished at %v, want ~2s", doneB)
	}
}

// TestCopierCancelStopsPromptly: cancelling an in-flight CopyOut must
// stop scheduling chunks and report the bytes moved so far, well short
// of the full range.
func TestCopierCancelStopsPromptly(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 100<<20)
	m := node.NewMachine(s, "n", node.DefaultParams())

	c := NewCopier(s, m.Disk, sv)
	c.RateLimit = 10 << 20 // 1 MiB chunks at 10 MB/s: ~0.1 s per chunk
	const total = 64 << 20

	var moved int64 = -1
	c.CopyOut(0, total, func(n int64) { moved = n })
	// Cancel mid-copy, after ~5 chunks.
	s.After(500*sim.Millisecond, "cancel", func() { c.Cancel() })
	s.Run()

	if moved < 0 {
		t.Fatal("done callback never fired")
	}
	if moved >= total {
		t.Fatalf("cancel ignored: all %d bytes moved", moved)
	}
	if moved == 0 {
		t.Fatal("nothing moved before cancel")
	}
	if moved != c.Moved {
		t.Fatalf("done reported %d, Moved says %d", moved, c.Moved)
	}
	// At most one chunk may complete after the cancel instant.
	if moved > 8<<20 {
		t.Fatalf("copy kept scheduling after cancel: %d bytes", moved)
	}
	if !c.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

// TestCopierCancelCopyIn mirrors the cancellation contract on the
// download path.
func TestCopierCancelCopyIn(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 100<<20)
	m := node.NewMachine(s, "n", node.DefaultParams())

	c := NewCopier(s, m.Disk, sv)
	c.RateLimit = 10 << 20
	const total = 64 << 20

	var moved int64 = -1
	c.CopyIn(0, total, func(n int64) { moved = n })
	s.After(300*sim.Millisecond, "cancel", func() { c.Cancel() })
	s.Run()

	if moved <= 0 || moved >= total {
		t.Fatalf("cancelled CopyIn moved %d of %d", moved, total)
	}
	if moved != c.Moved {
		t.Fatalf("done reported %d, Moved says %d", moved, c.Moved)
	}
}

// TestCopierCancelBeforeStart: a copier cancelled before the first
// chunk reports zero moved immediately.
func TestCopierCancelBeforeStart(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 100<<20)
	m := node.NewMachine(s, "n", node.DefaultParams())

	c := NewCopier(s, m.Disk, sv)
	c.Cancel()
	var moved int64 = -1
	c.CopyOut(0, 8<<20, func(n int64) { moved = n })
	s.Run()
	if moved != 0 {
		t.Fatalf("pre-cancelled copy moved %d bytes", moved)
	}
}
