package apps

import (
	"strings"
	"testing"

	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func commitFleet(seed int64, n int) (*sim.Simulator, []CommitNode) {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('p' + i))
	}
	s, ks := linkedKernels(seed, names, 100*simnet.Mbps)
	nodes := make([]CommitNode, n)
	for i, k := range ks {
		nodes[i] = CommitNode{Name: names[i], K: k, Addr: simnet.Addr(names[i])}
	}
	return s, nodes
}

func TestCommit2PCDecidesEveryRound(t *testing.T) {
	s, nodes := commitFleet(3, 4)
	var last string
	c := RunCommit2PC(nodes, CommitConfig{
		Seed: 11, Rounds: 10,
		OnOutcome: func(o string) { last = o },
	})
	s.RunFor(2 * sim.Minute)
	if c.Commits+c.Aborts != 10 {
		t.Fatalf("decided %d+%d rounds, want 10", c.Commits, c.Aborts)
	}
	// The 1-in-8 no-vote slice should produce both outcomes over 10
	// rounds of 3 participants with this seed.
	if c.Commits == 0 || c.Aborts == 0 {
		t.Fatalf("commits=%d aborts=%d: want a mix", c.Commits, c.Aborts)
	}
	if c.Blocked != 0 {
		t.Fatalf("blocked = %d with a live coordinator", c.Blocked)
	}
	if last == "" || !strings.HasPrefix(last, "commits=") {
		t.Fatalf("terminal outcome = %q", last)
	}
}

func TestCommit2PCBlocksOnCoordinatorCrash(t *testing.T) {
	s, nodes := commitFleet(4, 3)
	var last string
	c := RunCommit2PC(nodes, CommitConfig{
		// Seed 5 makes both participants vote yes on round 3 (checked
		// below), so the mid-round crash leaves both in doubt.
		Seed: 5, CrashCoordAtRound: 3,
		OnOutcome: func(o string) { last = o },
	})
	for p := 1; p < 3; p++ {
		if !c.vote(3, p) {
			t.Fatalf("seed 5: participant %d votes no on round 3; pick a seed where all vote yes", p)
		}
	}
	s.RunFor(time2PC)
	if c.Commits+c.Aborts != 2 {
		t.Fatalf("decided %d rounds before the crash, want 2", c.Commits+c.Aborts)
	}
	if c.Blocked != 2 {
		t.Fatalf("blocked = %d, want both yes-voters wedged in doubt", c.Blocked)
	}
	if !strings.HasPrefix(last, "blocked r=3") {
		t.Fatalf("terminal outcome = %q, want a blocked verdict", last)
	}
}

const time2PC = 2 * sim.Minute

func TestCommit2PCDeterministic(t *testing.T) {
	run := func() (int, int, int) {
		s, nodes := commitFleet(9, 5)
		c := RunCommit2PC(nodes, CommitConfig{Seed: 21, CrashCoordAtRound: 7})
		s.RunFor(time2PC)
		return c.Commits, c.Aborts, c.Blocked
	}
	c1, a1, b1 := run()
	c2, a2, b2 := run()
	if c1 != c2 || a1 != a2 || b1 != b2 {
		t.Fatalf("same-seed runs diverged: (%d,%d,%d) vs (%d,%d,%d)", c1, a1, b1, c2, a2, b2)
	}
}
