// Package guest models the paravirtualized Linux guest kernel that runs
// on every experiment node (paper §4.1–4.2): a process abstraction over
// the temporal firewall, jiffies-based timers with Linux sleep rounding,
// a CPU-charged network tx/rx path (the Xen paravirtual net front-end),
// a virtual block device with in-flight request draining, dirty-page
// tracking for live checkpointing, and the suspend/resume protocol the
// hypervisor drives over XenBus.
//
// The activity taxonomy matches the paper: user code runs as
// firewall.UserThread, deferred network work as firewall.SoftIRQ, sleep
// wakeups as firewall.TimerJob — all inside the firewall. The suspend
// thread, XenBus handlers and block-drain IRQs run outside, and they are
// the only things that run during a checkpoint.
package guest

import (
	"fmt"

	"emucheck/internal/firewall"
	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
	"emucheck/internal/vclock"
)

// Message is the envelope guest applications exchange. Port multiplexes
// services on a node (an iperf sink, a BitTorrent peer, an event agent).
type Message struct {
	Port string
	Data any
}

// BlockBackend is where guest block I/O lands: the raw disk for a plain
// image, or a branching COW volume (package storage) when the node is
// swappable. Offsets are bytes within the guest's virtual disk.
type BlockBackend interface {
	Read(off, n int64, done func())
	Write(off, n int64, done func())
}

// RawDiskBackend adapts a node.Disk as a BlockBackend.
type RawDiskBackend struct{ Disk *node.Disk }

// Read submits a read request.
func (b *RawDiskBackend) Read(off, n int64, done func()) {
	b.Disk.Submit(&node.DiskRequest{Op: node.Read, LBA: off, Bytes: n, Done: done})
}

// Write submits a write request.
func (b *RawDiskBackend) Write(off, n int64, done func()) {
	b.Disk.Submit(&node.DiskRequest{Op: node.Write, LBA: off, Bytes: n, Done: done})
}

// DirtyTracker approximates the hypervisor's dirty-page log used by the
// live checkpoint's pre-copy rounds.
type DirtyTracker struct {
	PageSize    int
	Resident    int // pages ever touched (bounds a full save)
	MaxResident int // guest memory size in pages
	// ActiveWSS bounds the pages that can be dirty at once: between
	// checkpoints, applications re-dirty a working set (socket buffers,
	// page-cache churn) rather than the whole resident set. A full save
	// still moves Resident pages; incremental rounds move at most this.
	ActiveWSS int
	dirty     int
	Total     uint64 // lifetime dirtied pages

	// sinceEpoch counts distinct page-dirtying since the last CutEpoch —
	// the state an incremental swap-out must move. Unlike the dirty log
	// it is not consumed by pre-copy rounds (ForceDirty returns pages to
	// the log without re-counting them), so it measures the epoch's
	// working set, capped at the resident set.
	sinceEpoch int
}

// Touch marks n existing pages dirty (re-writes within the resident
// set — background housekeeping never grows the footprint).
func (d *DirtyTracker) Touch(n int) {
	if n <= 0 {
		return
	}
	limit := d.Resident
	if d.ActiveWSS > 0 && d.ActiveWSS < limit {
		limit = d.ActiveWSS
	}
	// The working-set cap limits growth; it never claws back pages that
	// are already dirty (e.g. returned by a capped pre-copy round).
	if d.dirty < limit {
		d.dirty += n
		if d.dirty > limit {
			d.dirty = limit
		}
	}
	d.sinceEpoch += n
	if d.sinceEpoch > d.Resident {
		d.sinceEpoch = d.Resident
	}
	d.Total += uint64(n)
}

// ForceDirty marks n pages dirty bypassing the working-set cap, bounded
// only by the resident set. The hypervisor uses it to return pages a
// capped pre-copy round could not move — those are real dirty pages, not
// fresh application writes.
func (d *DirtyTracker) ForceDirty(n int) {
	if n <= 0 {
		return
	}
	d.dirty += n
	if d.dirty > d.Resident {
		d.dirty = d.Resident
	}
}

// Grow extends the resident set by n freshly allocated pages, capped at
// the guest's memory size, and marks them dirty.
func (d *DirtyTracker) Grow(n int) {
	if n <= 0 {
		return
	}
	d.Resident += n
	if d.MaxResident > 0 && d.Resident > d.MaxResident {
		d.Resident = d.MaxResident
	}
	d.Touch(n)
}

// TouchBytes dirties ceil(bytes/PageSize) pages.
func (d *DirtyTracker) TouchBytes(b int64) {
	if b <= 0 {
		return
	}
	d.Touch(int((b + int64(d.PageSize) - 1) / int64(d.PageSize)))
}

// TakeDirty returns and clears the dirty page count (one pre-copy round).
func (d *DirtyTracker) TakeDirty() int {
	n := d.dirty
	d.dirty = 0
	return n
}

// Dirty reports the current dirty page count.
func (d *DirtyTracker) Dirty() int { return d.dirty }

// EpochDirty reports pages dirtied since the last CutEpoch without
// consuming them — the scheduler's park-cost signal: preempting a guest
// costs transfer proportional to this, not to its full resident set.
func (d *DirtyTracker) EpochDirty() int { return d.sinceEpoch }

// CutEpoch closes the current dirty epoch: it returns the pages dirtied
// since the previous cut and starts a fresh epoch. Swap-out calls it
// when the epoch's state has been committed to the checkpoint lineage.
func (d *DirtyTracker) CutEpoch() int {
	n := d.sinceEpoch
	d.sinceEpoch = 0
	return n
}

// Config tunes one guest kernel.
type Config struct {
	WallEpoch     sim.Time
	HZ            int // timer interrupt frequency; Linux-on-Xen uses 100
	BootResident  int // pages resident after boot
	BaseDirtyRate int // background kernel dirtying, pages/second
}

// DefaultConfig matches the paper's FC4 guest with 256 MB of memory:
// after boot and normal use, most of the 65536 pages are resident, so a
// full (swap-out) memory image approaches 256 MB.
func DefaultConfig() Config {
	return Config{HZ: 100, BootResident: 58000, BaseDirtyRate: 40}
}

// Kernel is one guest kernel instance.
type Kernel struct {
	Name  string
	M     *node.Machine
	P     node.Params
	Cfg   Config
	Clock *vclock.Clock
	FW    *firewall.Firewall
	Dirty DirtyTracker

	Backend BlockBackend

	handlers map[string]func(from simnet.Addr, m *Message)

	txq    []*simnet.Packet
	txBusy bool
	rxq    []*simnet.Packet
	rxBusy bool

	inflightIO int
	ioWaiters  []func()

	suspended        bool
	resuming         bool
	crashed          bool
	lastDirtyAccrual sim.Time

	// labels caches the per-kernel event labels of the hot paths:
	// Usleep fires every ~100 ms per tenant node, and every packet pays
	// a tx or rx softirq and every block request a completion IRQ — at
	// fleet scale rebuilding the name concatenation per call is
	// measurable allocation churn (the PR 6 usleep fix, generalized by
	// the PR 8 -memprofile sweep).
	labels struct {
		usleep  string
		nettx   string
		netrx   string
		bioDone string
	}

	// Statistics.
	SentPackets uint64
	RcvdPackets uint64
	Checkpoints int
}

// New boots a guest kernel on machine m.
func New(m *node.Machine, p node.Params, cfg Config) *Kernel {
	if cfg.HZ <= 0 {
		cfg.HZ = 100
	}
	clock := vclock.New(m.Sim, cfg.WallEpoch)
	k := &Kernel{
		Name:  m.Name,
		M:     m,
		P:     p,
		Cfg:   cfg,
		Clock: clock,
		FW:    firewall.New(m.Sim, clock),
		Dirty: DirtyTracker{
			PageSize:    p.PageSize,
			Resident:    cfg.BootResident,
			MaxResident: int(p.GuestMemBytes / int64(p.PageSize)),
			ActiveWSS:   12000, // ~48 MB of hot pages between checkpoints
		},
		Backend:  &RawDiskBackend{Disk: m.Disk},
		handlers: make(map[string]func(simnet.Addr, *Message)),
	}
	k.labels.usleep = m.Name + ".usleep"
	k.labels.nettx = m.Name + ".nettx"
	k.labels.netrx = m.Name + ".netrx"
	k.labels.bioDone = m.Name + ".bio-done"
	m.ExpNIC.OnReceive(k.receive)
	return k
}

// AccrueBackgroundDirty charges the steady kernel-housekeeping memory
// traffic (page cache churn, timers, logs) that dirties pages even in an
// idle guest. It is called lazily — by the hypervisor before reading the
// dirty log — instead of running a periodic event, so an idle guest
// leaves the event queue quiet.
func (k *Kernel) AccrueBackgroundDirty() {
	now := k.Clock.SystemTime()
	elapsed := now - k.lastDirtyAccrual
	if elapsed <= 0 {
		return
	}
	k.lastDirtyAccrual = now
	k.Dirty.Touch(int(int64(k.Cfg.BaseDirtyRate) * int64(elapsed) / int64(sim.Second)))
}

// Jiffy reports the timer-interrupt period.
func (k *Kernel) Jiffy() sim.Time { return sim.Second / sim.Time(k.Cfg.HZ) }

// Suspended reports whether the kernel is checkpoint-suspended.
func (k *Kernel) Suspended() bool { return k.suspended }

// --- Time services -------------------------------------------------

// Gettimeofday reports the guest's wall clock at µs resolution.
func (k *Kernel) Gettimeofday() sim.Time { return k.Clock.Gettimeofday() }

// Monotonic reports guest nanoseconds since boot.
func (k *Kernel) Monotonic() sim.Time { return k.Clock.SystemTime() }

// Usleep wakes fn after at least d of virtual time, with Linux
// schedule_timeout semantics: the wakeup lands on the first timer tick
// strictly after now+d (which is why a 10 ms sleep in a loop measures
// 20 ms per iteration at HZ=100 — the paper's Fig. 4 baseline), plus a
// small scheduling-latency jitter.
func (k *Kernel) Usleep(d sim.Time, fn func()) *firewall.Handle {
	now := k.Clock.SystemTime()
	jiffy := k.Jiffy()
	wake := ((now+d)/jiffy + 1) * jiffy
	delay := wake - now + k.M.Sim.Normal(k.P.WakeupJitterMean, k.P.WakeupJitterStddev)
	return k.FW.After(firewall.TimerJob, delay, k.labels.usleep, fn)
}

// AfterVirtual arms a plain inside-firewall timer without tick rounding
// (kernel hrtimer-style), used by protocol retransmission timers.
func (k *Kernel) AfterVirtual(d sim.Time, name string, fn func()) *firewall.Handle {
	return k.FW.After(firewall.TimerJob, d, name, fn)
}

// CancelTimer cancels a pending handle.
func (k *Kernel) CancelTimer(h *firewall.Handle) { k.FW.Cancel(h) }

// Compute runs `work` of user CPU time and then fn, feeling dom0
// contention. Computation dirties memory at ~8 MB/s of CPU time, a
// small fraction of which is fresh allocation.
func (k *Kernel) Compute(work sim.Time, name string, fn func()) *firewall.Handle {
	k.Dirty.Touch(int(work / (500 * sim.Microsecond)))
	k.Dirty.Grow(int(work / (5 * sim.Millisecond)))
	return k.FW.Compute(firewall.UserThread, k.M.CPU, work, name, fn)
}

// --- Network -------------------------------------------------------

// Handle registers the service handler for a message port.
func (k *Kernel) Handle(port string, h func(from simnet.Addr, m *Message)) {
	k.handlers[port] = h
}

// Send queues a message to dst through the paravirtual net front-end.
// Each packet costs XenNetTxCost of CPU inside the firewall before
// hitting the NIC, so the tx path stalls during checkpoints and slows
// under dom0 interference.
func (k *Kernel) Send(dst simnet.Addr, size int, m *Message) {
	pkt := &simnet.Packet{Dst: dst, Size: size, Payload: m}
	k.txq = append(k.txq, pkt)
	if !k.txBusy {
		k.txPump()
	}
}

func (k *Kernel) txPump() {
	if len(k.txq) == 0 {
		k.txBusy = false
		return
	}
	k.txBusy = true
	pkt := k.txq[0]
	k.txq = k.txq[1:]
	k.FW.Compute(firewall.SoftIRQ, k.M.CPU, k.P.XenNetTxCost, k.labels.nettx, func() {
		k.SentPackets++
		k.M.ExpNIC.Send(pkt)
		k.txPump()
	})
}

// receive is the NIC handler: charge rx CPU, then dispatch by port.
func (k *Kernel) receive(pkt *simnet.Packet) {
	k.rxq = append(k.rxq, pkt)
	if !k.rxBusy {
		k.rxPump()
	}
}

func (k *Kernel) rxPump() {
	if len(k.rxq) == 0 {
		k.rxBusy = false
		return
	}
	k.rxBusy = true
	pkt := k.rxq[0]
	k.rxq = k.rxq[1:]
	k.FW.Compute(firewall.SoftIRQ, k.M.CPU, k.P.XenNetRxCost, k.labels.netrx, func() {
		k.RcvdPackets++
		k.Dirty.TouchBytes(int64(pkt.Size))
		if m, ok := pkt.Payload.(*Message); ok {
			if h, ok := k.handlers[m.Port]; ok {
				h(pkt.Src, m)
			}
		}
		k.rxPump()
	})
}

// TxQueueLen reports packets waiting in the paravirtual tx path.
func (k *Kernel) TxQueueLen() int { return len(k.txq) }

// --- Block I/O -----------------------------------------------------

// ReadDisk reads n bytes at off through the block front-end; fn runs as
// guest code when the I/O completes (parked if a checkpoint intervenes).
func (k *Kernel) ReadDisk(off, n int64, fn func()) {
	k.inflightIO++
	k.Dirty.TouchBytes(n)
	k.Backend.Read(off, n, func() { k.ioDone(fn) })
}

// WriteDisk writes n bytes at off through the block front-end.
func (k *Kernel) WriteDisk(off, n int64, fn func()) {
	k.inflightIO++
	k.Backend.Write(off, n, func() { k.ioDone(fn) })
}

// ioDone runs as a block IRQ — outside the firewall so in-flight
// requests can drain during a checkpoint (§4.1). The guest continuation
// is parked behind the firewall.
func (k *Kernel) ioDone(fn func()) {
	k.inflightIO--
	if fn != nil {
		k.FW.After(firewall.SoftIRQ, 0, k.labels.bioDone, fn)
	}
	if k.inflightIO == 0 && len(k.ioWaiters) > 0 {
		ws := k.ioWaiters
		k.ioWaiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// InflightIO reports block requests issued but not completed.
func (k *Kernel) InflightIO() int { return k.inflightIO }

// drainIO fires fn (outside the firewall) once in-flight block requests
// have completed.
func (k *Kernel) drainIO(fn func()) {
	if k.inflightIO == 0 {
		k.M.Sim.DoAfter(0, k.Name+".drained", fn)
		return
	}
	k.ioWaiters = append(k.ioWaiters, fn)
}

// --- Checkpoint protocol (driven by the hypervisor over XenBus) -----

// leakSplit draws the total firewall leak for one checkpoint and splits
// it between the engage and disengage paths.
func (k *Kernel) leakSplit() (engage, disengage sim.Time) {
	total := k.M.Sim.Uniform(k.P.FirewallLeakLo, k.P.FirewallLeakHi)
	return total * 6 / 10, total * 4 / 10
}

// Suspend is the guest half of the checkpoint: the suspend thread
// engages the temporal firewall (freezing time and all inside activity),
// drains in-flight block I/O, freezes the net front-end, and quiesces
// devices. done receives the disengage-leak to apply at resume and runs
// outside the firewall when the guest is fully quiesced.
func (k *Kernel) Suspend(done func()) error {
	if k.suspended {
		return fmt.Errorf("guest %s: suspend while suspended", k.Name)
	}
	k.suspended = true
	k.Checkpoints++
	engageLeak, _ := k.leakSplit()
	k.FW.Engage(engageLeak)
	k.M.ExpNIC.Freeze()
	k.Clock.SetRunstate(vclock.Offline)
	k.drainIO(func() {
		// Device quiesce: tear down front-end/back-end connections.
		k.M.Sim.DoAfter(k.P.DeviceQuiesce, k.Name+".quiesce", done)
	})
	return nil
}

// Crash fail-stops the kernel: the temporal firewall engages on the
// spot and nothing on this incarnation ever disengages it, the NIC
// freezes, and in-flight I/O and timers are simply abandoned — the
// un-graceful sibling of Suspend, with no drain and no device quiesce.
// A kernel that is already checkpoint-suspended stays as it is: the
// crashed state is whatever the freeze captured.
func (k *Kernel) Crash() {
	k.crashed = true
	if k.suspended {
		return
	}
	k.suspended = true
	k.FW.Engage(0)
	k.M.ExpNIC.Freeze()
	k.Clock.SetRunstate(vclock.Offline)
}

// Revive clears the crash flag ahead of a recovery resume; the caller
// (xen.Hypervisor.Restore) has re-staged the kernel's state first.
func (k *Kernel) Revive() { k.crashed = false }

// Crashed reports whether the kernel has fail-stopped.
func (k *Kernel) Crashed() bool { return k.crashed }

// Resume reconnects devices and disengages the firewall. fn, if non-nil,
// runs after the guest is live again.
func (k *Kernel) Resume(fn func()) error {
	if !k.suspended {
		return fmt.Errorf("guest %s: resume while running", k.Name)
	}
	if k.resuming {
		// An epoch abort can race a second thaw at the same member; the
		// reconnect already under way covers both.
		return fmt.Errorf("guest %s: resume already in progress", k.Name)
	}
	k.resuming = true
	_, disengageLeak := k.leakSplit()
	k.M.Sim.DoAfter(k.P.DeviceReconnect, k.Name+".reconnect", func() {
		k.resuming = false
		if k.crashed {
			// The machine died while devices were reconnecting: the guest
			// stays frozen for recovery.
			return
		}
		k.suspended = false
		k.M.ExpNIC.Thaw()
		k.FW.Disengage(disengageLeak)
		k.Clock.SetRunstate(vclock.Running)
		if fn != nil {
			fn()
		}
	})
	return nil
}

// MemoryImageBytes reports the size of the resident memory image.
func (k *Kernel) MemoryImageBytes() int64 {
	return int64(k.Dirty.Resident) * int64(k.P.PageSize)
}
