package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"emucheck/internal/evalrun"
)

var update = flag.Bool("update", false, "rewrite the golden schema file")

// benchSchema maps every figure/table key benchrunner can emit to the
// result type marshaled under it. Adding an output to main() without
// registering it here (and refreshing the golden with -update) fails
// the shape test.
var benchSchema = map[string]any{
	"fig4":       &evalrun.Fig4Result{},
	"fig5":       &evalrun.Fig5Result{},
	"fig6":       &evalrun.Fig6Result{},
	"fig7":       &evalrun.Fig7Result{},
	"fig8":       &evalrun.Fig8Result{},
	"fig9":       &evalrun.Fig9Result{},
	"swap":       &evalrun.SwapTableResult{},
	"freeblock":  &evalrun.FreeBlockResult{},
	"sync":       &evalrun.SyncResult{},
	"dom0":       &evalrun.Dom0JobsResult{},
	"ablation":   &evalrun.AblationResult{},
	"timeshare":  &evalrun.TimeshareResult{},
	"branch":     &evalrun.BranchResult{},
	"recovery":   &evalrun.RecoveryResult{},
	"remediate":  &evalrun.RemediateResult{},
	"storage":    &evalrun.StorageResult{},
	"scale":      &evalrun.ScaleResult{},
	"suite":      &evalrun.SuiteResult{},
	"suitebench": &evalrun.SuiteBenchResult{},
	"federation": &evalrun.FederationResult{},
}

// fieldPaths flattens a type into "path: kind" lines, honoring json
// tags, so any rename, removal, or retyping of a marshaled field shows
// up as a schema diff.
func fieldPaths(prefix string, t reflect.Type, out *[]string) {
	switch t.Kind() {
	case reflect.Ptr:
		fieldPaths(prefix, t.Elem(), out)
	case reflect.Slice, reflect.Array:
		fieldPaths(prefix+"[]", t.Elem(), out)
	case reflect.Map:
		fieldPaths(prefix+"{}", t.Elem(), out)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" {
				continue // unexported: not marshaled
			}
			tag := strings.Split(f.Tag.Get("json"), ",")[0]
			if tag == "-" {
				continue
			}
			name := tag
			if name == "" {
				name = f.Name
			}
			p := name
			if prefix != "" {
				p = prefix + "." + name
			}
			fieldPaths(p, f.Type, out)
		}
	default:
		*out = append(*out, fmt.Sprintf("%s: %s", prefix, t.Kind()))
	}
}

// TestBenchJSONGoldenShape pins the BENCH_*.json schema: the flattened
// field paths of every emitted result type must match the committed
// golden. Regenerate deliberately with `go test ./cmd/benchrunner
// -update` when the schema is meant to change.
func TestBenchJSONGoldenShape(t *testing.T) {
	keys := make([]string, 0, len(benchSchema))
	for k := range benchSchema {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var lines []string
	for _, k := range keys {
		var paths []string
		fieldPaths(k, reflect.TypeOf(benchSchema[k]), &paths)
		sort.Strings(paths)
		lines = append(lines, paths...)
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "bench_schema.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("BENCH json schema drifted from %s.\nIf intentional, regenerate with -update and note the change.\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}
