// State search (paper §6): "a model checker could branch from past
// execution checkpoints to test unexplored states." This example runs
// the search at cluster scale: a racy leader election is checkpointed
// just before its race window, then Cluster.Branch forks the checkpoint
// into N branch tenants exploring different perturbation seeds *in
// parallel* — gang-admitted onto the shared pool, their common
// checkpoint prefix shared by reference in the refcounted chain store
// and staged by a single multicast pass over the control LAN, instead
// of the old one-branch-at-a-time Rollback replay with a full copy per
// branch.
package main

import (
	"fmt"
	"sort"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// racyWorkload elects a leader with a naive race: both nodes journal a
// ballot to disk, then claim leadership after a backoff derived from
// measured timing jitter mixed with the session's perturbation seed (a
// common sin — deriving randomness from timing). If the claims cross in
// flight, the run ends in split-brain. The same closure installs on the
// parent and on every branch: node names resolve through the branch
// alias, and the seed comes from the session's perturbation.
func racyWorkload(outcome *string) func(*emucheck.Session) {
	return func(s *emucheck.Session) {
		seed := s.Perturb().Seed
		a, b := s.Kernel("a"), s.Kernel("b")
		claimed := map[string]bool{}
		decide := func(self *guest.Kernel, peer string) func(simnet.Addr, *guest.Message) {
			return func(simnet.Addr, *guest.Message) {
				if claimed[self.Name] {
					*outcome = "split-brain"
					return
				}
				if *outcome == "" {
					*outcome = "leader=" + peer
				}
			}
		}
		a.Handle("claim", decide(a, "b"))
		b.Handle("claim", decide(b, "a"))
		a.WriteDisk(1<<30, 8<<20, nil) // ballot journal: the disk state branches inherit
		b.WriteDisk(1<<30, 8<<20, nil)
		claim := func(self *guest.Kernel, peer simnet.Addr, mix int64) {
			t0 := self.Monotonic()
			self.Usleep(sim.Millisecond, func() {
				jitterNs := (int64(self.Monotonic()-t0) + mix) % 1000
				backoff := 60 * sim.Millisecond
				if jitterNs%2 == 1 {
					backoff = 140 * sim.Millisecond
				}
				self.Usleep(backoff, func() {
					if *outcome != "" {
						return // already decided: the peer's claim won
					}
					claimed[self.Name] = true
					self.Send(peer, 120, &guest.Message{Port: "claim"})
				})
			})
		}
		claim(a, s.Addr("b"), seed)
		claim(b, s.Addr("a"), seed>>1)
	}
}

func spec() emulab.Spec {
	return emulab.Spec{
		Name: "election",
		Nodes: []emulab.NodeSpec{
			{Name: "a", Swappable: true},
			{Name: "b", Swappable: true},
		},
		Links: []emulab.LinkSpec{
			{A: "a", B: "b", Bandwidth: 100 * simnet.Mbps, Delay: 40 * sim.Millisecond},
		},
	}
}

func main() {
	const fanOut = 8
	// Pool: the parent (2 nodes + 1 delay node) plus the whole gang.
	c := emucheck.NewCluster(3*(fanOut+1), 1, emucheck.FIFO)
	c.Incremental = true

	// Original run: capture a checkpoint, then watch the race play out.
	var original string
	parent, err := c.Submit(emucheck.Scenario{Spec: spec(), Setup: racyWorkload(&original)}, 0)
	if err != nil {
		panic(err)
	}
	c.RunFor(10 * sim.Second)
	if err := parent.CheckpointAsync(emucheck.CheckpointOptions{}, nil); err != nil {
		panic(err)
	}
	c.RunFor(20 * sim.Second)
	ckpt := parent.Tree.Head()
	fmt.Printf("original run outcome: %s\n", original)
	fmt.Printf("forking %d futures from checkpoint %d as parallel cluster tenants ...\n", fanOut, ckpt)

	// One Branch call fans the whole frontier out: gang admission
	// co-schedules the batch, the shared prefix is multicast once, and
	// each branch re-executes the election under its own seed.
	outcomes := make([]string, fanOut)
	specs := make([]emucheck.BranchSpec, fanOut)
	for i := range specs {
		o := &outcomes[i]
		specs[i] = emucheck.BranchSpec{
			Perturb: emucheck.Perturbation{Kind: emucheck.SeedChange, Seed: int64(100 + i)},
			Setup:   racyWorkload(o),
		}
	}
	branches, err := c.Branch("election", ckpt, specs...)
	if err != nil {
		panic(err)
	}
	c.RunFor(5 * sim.Minute)

	results := map[string]int{}
	for i, b := range branches {
		o := outcomes[i]
		if o == "" {
			o = "no-decision"
		}
		results[o]++
		fmt.Printf("  %-14s seed=%d state=%s genealogy=%v\n",
			o, specs[i].Perturb.Seed, b.State(), c.Genealogy(b.Scenario.Spec.Name))
	}
	var keys []string
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("explored outcome space:")
	for _, k := range keys {
		fmt.Printf("  %-14s x%d\n", k, results[k])
	}

	fmt.Printf("chain store: %d unique epochs, %.1f MB stored for %d branch chains (dedup saved %.1f MB)\n",
		c.Chains.Entries(), float64(c.Chains.StoredBytes())/(1<<20), fanOut,
		float64(c.Chains.DedupBytes)/(1<<20))
	fmt.Printf("staging: one multicast pass saved %.1f MB of unicast control-LAN traffic\n",
		float64(c.TB.Server.MulticastSavedBytes)/(1<<20))
	if results["split-brain"] > 0 {
		fmt.Println("the state search surfaced the split-brain interleaving — with the")
		fmt.Println("whole frontier exploring in parallel and the captured past stored once")
	}
}
