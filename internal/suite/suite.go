// Package suite executes a corpus of scenarios — a directory of files
// or a generated matrix — and enforces shared cross-cutting invariants
// on every run, regardless of what the scenario's own assertions
// check. The invariants are the system-wide conservation laws every
// correct run must satisfy:
//
//   - replay-digest: running the same file twice produces
//     byte-identical results (the determinism contract);
//   - hardware-leak: after the run, the testbed's in-use count equals
//     the sum of live experiments' allocations, and the free count
//     stays within the pool;
//   - chain-refcounts: the ChainStore's entries exactly match the
//     references live lineages hold — no orphaned entries, no
//     refcount drift, no negative refs;
//   - bus-conservation: every control-LAN delivery attempt is
//     delivered, dropped by injection, or still in flight, and
//     per-topic ledgers sum to the bus totals;
//   - ledgers: scheduler, storage, and per-tenant accounting never go
//     negative, and utilization stays in [0, 1];
//   - no-orphaned-cordon: the scheduler's cordon line always equals the
//     cordons the remediation controller's open episodes hold, and the
//     controller's issue/release ledger accounts for the difference —
//     capacity withdrawn by the health loop is never leaked.
//
// The runner reports per-scenario verdicts as a JSON corpus report
// (schema emusuite/v1, free of wall-clock fields so same-seed reports
// are byte-identical) and as JUnit XML for CI.
package suite

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"emucheck"
	"emucheck/internal/federation"
	"emucheck/internal/scenario"
	"emucheck/internal/scengen"
	"emucheck/internal/storage"
)

// Schema identifies the corpus report format.
const Schema = "emusuite/v1"

// InvariantCheck is one shared invariant's verdict for one run.
type InvariantCheck struct {
	Name   string `json:"name"`
	Ok     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// RunReport is one scenario's suite verdict: the scenario's own result
// plus the shared-invariant checks.
type RunReport struct {
	Name   string `json:"name"`
	Source string `json:"source"` // file path, or "generated"
	Seed   int64  `json:"seed"`
	// Pass requires the scenario's own assertions AND every shared
	// invariant to hold.
	Pass bool `json:"pass"`
	// SimSeconds is the simulated time the run covered — the
	// deterministic "duration" JUnit reports instead of wall time.
	SimSeconds float64 `json:"sim_seconds"`
	// Digest fingerprints the run's full result JSON (FNV-64a); equal
	// digests mean byte-identical runs.
	Digest     string           `json:"digest"`
	Invariants []InvariantCheck `json:"invariants"`
	Error      string           `json:"error,omitempty"`
	Result     *scenario.Result `json:"result,omitempty"`
}

// Report is the corpus-level verdict (schema emusuite/v1). It contains
// no wall-clock fields, so two same-seed suite runs marshal to
// byte-identical JSON — which is itself the corpus determinism check.
type Report struct {
	Schema string `json:"schema"`
	// GenSeed is the generator seed for matrix runs (0 for directories).
	GenSeed int64       `json:"gen_seed,omitempty"`
	Runs    []RunReport `json:"runs"`
	Passed  int         `json:"passed"`
	Failed  int         `json:"failed"`
	// Coverage counts how many scenarios exercised each behavior axis —
	// the proof a generated corpus actually samples the space.
	Coverage map[string]int `json:"coverage"`
}

// digest fingerprints a scenario result as canonical JSON under
// FNV-64a.
func digest(res *scenario.Result) string {
	data, err := json.Marshal(res)
	if err != nil {
		return "marshal-error"
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// execution is one deterministic run of a scenario: the parallel
// runner's unit of work. Every scenario needs two (the second exists
// purely to check the replay-digest invariant), and the two are as
// independent as two different scenarios — each gets its own
// simulator, cluster, and RNG stream — so the pool schedules them as
// separate work items.
type execution struct {
	res *scenario.Result
	c   *emucheck.Cluster
	err error
}

// sem is the worker pool: a counting semaphore bounding how many
// scenario executions run at once. A nil sem runs the caller inline
// (the serial path shares all code with the parallel one).
type sem chan struct{}

func newSem(workers int) sem {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return make(sem, workers)
}

// exec runs one scenario execution under the pool bound.
func (s sem) exec(f *scenario.File) execution {
	if s != nil {
		s <- struct{}{}
		defer func() { <-s }()
	}
	var e execution
	e.res, e.c, e.err = scenario.RunWithCluster(f)
	return e
}

// assembleRun combines a scenario's two executions into its suite
// verdict. Everything here is a pure function of the two executions
// (which are themselves pure functions of the file), so the RunReport
// is identical however the executions were scheduled — this is the
// step that makes the parallel report byte-identical to the serial
// one.
func assembleRun(f *scenario.File, source string, first, replay execution) RunReport {
	rr := RunReport{Name: f.Name, Source: source, Seed: f.Seed}
	if d, err := time.ParseDuration(f.RunFor); err == nil {
		rr.SimSeconds = d.Seconds()
	}
	if first.err != nil {
		rr.Error = first.err.Error()
		return rr
	}
	rr.Result = first.res
	rr.Digest = digest(first.res)

	rd := InvariantCheck{Name: "replay-digest", Ok: false}
	switch {
	case replay.err != nil:
		rd.Detail = "replay errored: " + replay.err.Error()
	case digest(replay.res) != rr.Digest:
		rd.Detail = fmt.Sprintf("same-seed replay diverged: %s vs %s", rr.Digest, digest(replay.res))
	default:
		rd.Ok = true
		rd.Detail = rr.Digest
	}
	rr.Invariants = []InvariantCheck{rd}
	if first.c != nil {
		rr.Invariants = append(rr.Invariants,
			checkHardware(first.c),
			checkChains(first.c),
			checkBus(first.c),
			checkLedgers(first.c),
			checkCordons(first.c),
		)
	} else if first.res.Federation != nil {
		// Federation scenarios run their own worlds and hand back no
		// cluster; the conservation laws audit the aggregate result.
		rr.Invariants = append(rr.Invariants, checkFederation(first.res.Federation))
	}
	rr.Pass = first.res.Pass
	for _, inv := range rr.Invariants {
		if !inv.Ok {
			rr.Pass = false
		}
	}
	return rr
}

// RunOne executes one scenario under the shared invariants. The
// scenario runs twice — the second run exists purely to check the
// replay-digest invariant — and the invariants are audited against the
// first run's cluster.
func RunOne(f *scenario.File, source string) RunReport {
	return assembleRun(f, source, sem(nil).exec(f), sem(nil).exec(f))
}

// RunOneParallel is RunOne with the scenario's two executions run
// concurrently on up to `workers` goroutines (0 means GOMAXPROCS).
// The report is byte-identical to RunOne's.
func RunOneParallel(f *scenario.File, source string, workers int) RunReport {
	pool := newSem(workers)
	var first, replay execution
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); first = pool.exec(f) }()
	go func() { defer wg.Done(); replay = pool.exec(f) }()
	wg.Wait()
	return assembleRun(f, source, first, replay)
}

// checkHardware audits the pool ledger: free nodes within bounds, and
// the in-use count exactly the sum of live experiments' allocations —
// anything else means Finish/Crash leaked (or double-freed) hardware.
func checkHardware(c *emucheck.Cluster) InvariantCheck {
	inv := InvariantCheck{Name: "hardware-leak"}
	tb := c.TB
	if tb.FreeNodes < 0 || tb.FreeNodes > tb.PoolSize {
		inv.Detail = fmt.Sprintf("free nodes %d outside pool [0, %d]", tb.FreeNodes, tb.PoolSize)
		return inv
	}
	held := 0
	for _, t := range c.Tenants() {
		if t.Exp != nil && !t.Exp.Released() {
			held += t.Exp.Allocated()
		}
	}
	if held != tb.InUse() {
		inv.Detail = fmt.Sprintf("testbed has %d nodes in use, live experiments hold %d", tb.InUse(), held)
		return inv
	}
	inv.Ok = true
	inv.Detail = fmt.Sprintf("%d/%d in use by live experiments", tb.InUse(), tb.PoolSize)
	return inv
}

// checkChains audits the checkpoint store against the references live
// lineages hold: every stored epoch reachable, every reference backed,
// counts in exact agreement.
func checkChains(c *emucheck.Cluster) InvariantCheck {
	inv := InvariantCheck{Name: "chain-refcounts"}
	expected := make(map[storage.Addr]int)
	for _, t := range c.Tenants() {
		for _, lin := range t.LiveLineages() {
			if lin.Store() != c.Chains {
				continue // naive-baseline private stores audit trivially
			}
			for _, seg := range lin.Segments() {
				expected[seg.Addr]++
			}
		}
	}
	if errs := c.Chains.Audit(expected); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		sort.Strings(msgs)
		inv.Detail = strings.Join(msgs, "; ")
		return inv
	}
	inv.Ok = true
	inv.Detail = fmt.Sprintf("%d entries, %d live references", c.Chains.Entries(), refTotal(expected))
	return inv
}

func refTotal(m map[storage.Addr]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// checkBus audits control-LAN delivery conservation: attempts resolve
// to delivered + dropped + in flight, and the per-topic ledgers sum to
// the bus totals.
func checkBus(c *emucheck.Cluster) InvariantCheck {
	inv := InvariantCheck{Name: "bus-conservation"}
	b := c.TB.Bus
	if b.Delivered+b.Dropped > b.Attempts {
		inv.Detail = fmt.Sprintf("delivered %d + dropped %d exceed %d attempts", b.Delivered, b.Dropped, b.Attempts)
		return inv
	}
	var pub, del, drop uint64
	for _, ts := range b.Topics() {
		pub += ts.Published
		del += ts.Delivered
		drop += ts.Dropped
	}
	if pub != b.Published || del != b.Delivered || drop != b.Dropped {
		inv.Detail = fmt.Sprintf("per-topic sums (%d/%d/%d) disagree with bus totals (%d/%d/%d)",
			pub, del, drop, b.Published, b.Delivered, b.Dropped)
		return inv
	}
	inv.Ok = true
	inv.Detail = fmt.Sprintf("%d published, %d attempts = %d delivered + %d dropped + %d in flight",
		b.Published, b.Attempts, b.Delivered, b.Dropped, b.InFlight())
	return inv
}

// checkLedgers audits the non-negativity of every accounting ledger a
// run touches, plus utilization staying a fraction.
func checkLedgers(c *emucheck.Cluster) InvariantCheck {
	inv := InvariantCheck{Name: "ledgers"}
	var bad []string
	if c.Sched.Admissions < 0 || c.Sched.Preemptions < 0 || c.Sched.GangAdmissions < 0 {
		bad = append(bad, fmt.Sprintf("scheduler counters negative (%d/%d/%d)",
			c.Sched.Admissions, c.Sched.Preemptions, c.Sched.GangAdmissions))
	}
	if c.Sched.PreemptedBytes < 0 {
		bad = append(bad, fmt.Sprintf("preempted bytes %d", c.Sched.PreemptedBytes))
	}
	if u := c.Utilization(); u < 0 || u > 1.000001 {
		bad = append(bad, fmt.Sprintf("utilization %.4f outside [0, 1]", u))
	}
	if c.Chains.StoredBytes() < 0 || c.Chains.GCBytes < 0 || c.Chains.DedupBytes < 0 {
		bad = append(bad, "chain store byte ledger negative")
	}
	for _, t := range c.Tenants() {
		if t.QueueWait() < 0 || t.LostWork() < 0 || t.Recoveries() < 0 || t.EpochsAborted() < 0 {
			bad = append(bad, t.Scenario.Spec.Name+" tenant ledger negative")
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		inv.Detail = strings.Join(bad, "; ")
		return inv
	}
	inv.Ok = true
	inv.Detail = fmt.Sprintf("%d tenants, utilization %.2f", len(c.Tenants()), c.Utilization())
	return inv
}

// checkCordons audits the health loop's cordon conservation law: the
// capacity the scheduler holds out of admission must exactly equal the
// cordons the remediation controller's open episodes hold, and the
// controller's own issue/release ledger must account for that balance.
// A mismatch means a remediation episode leaked pool capacity (or
// double-released it). Trivially satisfied when the run never armed
// the health loop.
func checkCordons(c *emucheck.Cluster) InvariantCheck {
	inv := InvariantCheck{Name: "no-orphaned-cordon"}
	if !c.HealthEnabled() {
		inv.Ok = true
		inv.Detail = "health loop not armed"
		return inv
	}
	rc := c.Remediator()
	schedHeld, ctrlHeld := c.Sched.CordonedNodes(), rc.CordonedNodes()
	if schedHeld != ctrlHeld {
		inv.Detail = fmt.Sprintf("scheduler holds %d cordoned nodes, controller episodes hold %d", schedHeld, ctrlHeld)
		return inv
	}
	if rc.CordonsReleased > rc.CordonsIssued {
		inv.Detail = fmt.Sprintf("cordon ledger: %d released exceeds %d issued", rc.CordonsReleased, rc.CordonsIssued)
		return inv
	}
	inv.Ok = true
	inv.Detail = fmt.Sprintf("%d held (%d issued, %d released)", schedHeld, rc.CordonsIssued, rc.CordonsReleased)
	return inv
}

// checkFederation audits a federated run's aggregate ledgers: no
// counter negative, completions bounded by the fleet, windows actually
// advanced, and a digest present (the per-sharding determinism pin).
func checkFederation(fr *federation.Result) InvariantCheck {
	inv := InvariantCheck{Name: "federation-ledgers"}
	var bad []string
	if fr.Completed < 0 || fr.Completed > fr.Tenants {
		bad = append(bad, fmt.Sprintf("completed %d outside [0, %d]", fr.Completed, fr.Tenants))
	}
	if fr.Migrations < 0 || fr.WANMsgs < 0 || fr.Ticks < 0 {
		bad = append(bad, fmt.Sprintf("counters negative (%d/%d/%d)", fr.Migrations, fr.WANMsgs, fr.Ticks))
	}
	if fr.WANMB < 0 || fr.WarmedMB < 0 || fr.LocalMB < 0 || fr.RemoteMB < 0 || fr.PoolMB < 0 {
		bad = append(bad, "byte ledger negative")
	}
	if fr.Windows <= 0 {
		bad = append(bad, fmt.Sprintf("no windows ran (%d)", fr.Windows))
	}
	if fr.Digest == "" {
		bad = append(bad, "no digest")
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		inv.Detail = strings.Join(bad, "; ")
		return inv
	}
	inv.Ok = true
	inv.Detail = fmt.Sprintf("%d/%d completed over %d facilities, %d windows, digest %s",
		fr.Completed, fr.Tenants, fr.Facilities, fr.Windows, fr.Digest)
	return inv
}

// coverageKeys names the behavior axes one scenario exercises.
func coverageKeys(f *scenario.File) []string {
	if fd := f.Federation; fd != nil {
		// Federation scenarios have no policy/swap/workload axes — the
		// fleet, its sharding, and the migration plane are the axes.
		keys := []string{"federation"}
		if fd.Migration {
			keys = append(keys, "federation:migration")
		}
		if fd.WarmUp {
			keys = append(keys, "federation:warmup")
		}
		return keys
	}
	keys := []string{}
	pol := f.Policy
	if pol == "" {
		pol = "fifo"
	}
	keys = append(keys, "policy:"+pol)
	if f.Swap == "incremental" {
		keys = append(keys, "swap:incremental")
	} else {
		keys = append(keys, "swap:full")
	}
	if st := f.Storage; st != nil {
		backend := st.Backend
		if backend == "" {
			backend = "mem"
		}
		keys = append(keys, "storage:"+backend)
		if st.CacheMB > 0 {
			keys = append(keys, "storage:cache")
		}
	}
	if len(f.Faults) > 0 {
		keys = append(keys, "faults")
	}
	if h := f.Health; h != nil {
		pol := h.Policy
		if pol == "" {
			pol = "balanced"
		}
		keys = append(keys, "health", "health:"+pol)
	}
	if f.Search != nil {
		keys = append(keys, "branching", "gang-admission")
	}
	seen := map[string]bool{}
	for i := range f.Experiments {
		e := &f.Experiments[i]
		if !seen["workload:"+e.Workload] {
			keys = append(keys, "workload:"+e.Workload)
			seen["workload:"+e.Workload] = true
		}
		if e.Epochs != "" && !seen["epochs"] {
			keys = append(keys, "epochs")
			seen["epochs"] = true
		}
	}
	return keys
}

// RunFiles executes the given scenarios serially (sources names each
// one's origin, parallel to files) and assembles the corpus report.
func RunFiles(files []*scenario.File, sources []string) *Report {
	return RunFilesParallel(files, sources, 1)
}

// RunFilesParallel executes the corpus on a bounded worker pool of up
// to `workers` concurrent scenario executions (0 means GOMAXPROCS).
// Each scenario is an independent single-goroutine simulation, and so
// is its replay-digest re-execution, so both fan out as separate work
// items — a corpus of n scenarios is 2n pool tasks. Results are
// assembled strictly in input order, and nothing in a RunReport
// depends on scheduling, so the report — and its emusuite/v1 JSON and
// JUnit renderings — is byte-identical to a serial run's. Speedup is
// observable only on the wall clock (and in the suitebench table);
// the report deliberately has nowhere to record it.
func RunFilesParallel(files []*scenario.File, sources []string, workers int) *Report {
	pool := newSem(workers)
	runs := make([]RunReport, len(files))
	var wg sync.WaitGroup
	for i, f := range files {
		src := "generated"
		if i < len(sources) {
			src = sources[i]
		}
		wg.Add(1)
		go func(i int, f *scenario.File, src string) {
			defer wg.Done()
			var first, replay execution
			var pair sync.WaitGroup
			pair.Add(2)
			go func() { defer pair.Done(); first = pool.exec(f) }()
			go func() { defer pair.Done(); replay = pool.exec(f) }()
			pair.Wait()
			// Assemble as soon as this scenario's own pair finishes; the
			// indexed slot keeps input order whatever the completion order.
			runs[i] = assembleRun(f, src, first, replay)
		}(i, f, src)
	}
	wg.Wait()
	rep := &Report{Schema: Schema, Coverage: make(map[string]int)}
	for i, f := range files {
		rr := runs[i]
		rep.Runs = append(rep.Runs, rr)
		if rr.Pass {
			rep.Passed++
		} else {
			rep.Failed++
		}
		for _, k := range coverageKeys(f) {
			rep.Coverage[k]++
		}
	}
	return rep
}

// RunMatrix generates and executes an n-scenario corpus keyed by seed,
// serially.
func RunMatrix(seed int64, n int) *Report {
	return RunMatrixParallel(seed, n, 1)
}

// RunMatrixParallel is RunMatrix on a bounded worker pool (0 workers
// means GOMAXPROCS); the report is byte-identical to RunMatrix's.
func RunMatrixParallel(seed int64, n, workers int) *Report {
	files := scengen.Matrix(seed, n)
	rep := RunFilesParallel(files, nil, workers)
	rep.GenSeed = seed
	return rep
}

// Render prints the corpus report as a human-readable summary.
func (r *Report) Render() string {
	var b strings.Builder
	for _, rr := range r.Runs {
		mark := "PASS"
		if !rr.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "%s  %-24s %-28s digest=%s\n", mark, rr.Name, "("+rr.Source+")", rr.Digest)
		if rr.Error != "" {
			fmt.Fprintf(&b, "      error: %s\n", rr.Error)
		}
		for _, inv := range rr.Invariants {
			if !inv.Ok {
				fmt.Fprintf(&b, "      invariant %s: %s\n", inv.Name, inv.Detail)
			}
		}
		if rr.Result != nil {
			for _, ch := range rr.Result.Checks {
				if !ch.Ok {
					fmt.Fprintf(&b, "      check: %s (%s)\n", ch.Desc, ch.Detail)
				}
			}
			for _, ev := range rr.Result.EventErrors {
				fmt.Fprintf(&b, "      event error: %s\n", ev)
			}
		}
	}
	fmt.Fprintf(&b, "suite: %d passed, %d failed\n", r.Passed, r.Failed)
	keys := make([]string, 0, len(r.Coverage))
	for k := range r.Coverage {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, r.Coverage[k])
	}
	fmt.Fprintf(&b, "coverage: %s\n", strings.Join(parts, " "))
	return b.String()
}
