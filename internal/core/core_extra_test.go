package core

import (
	"testing"

	"emucheck/internal/dummynet"
	"emucheck/internal/guest"
	"emucheck/internal/node"
	"emucheck/internal/notify"
	"emucheck/internal/ntpsim"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
	"emucheck/internal/xen"
)

// starRig builds a hub-and-spokes experiment: n leaves, each on its own
// shaped link through a delay node to the hub.
func starRig(seed int64, leaves int) (*sim.Simulator, *Coordinator, []*guest.Kernel) {
	s := sim.New(seed)
	p := node.DefaultParams()
	bus := notify.NewBus(s)
	y := ntpsim.New(s, ntpsim.DefaultModel(), seed)

	hub := node.NewMachine(s, "hub", p)
	hubK := guest.New(hub, p, guest.DefaultConfig())
	hubHV := xen.New(hub, p, hubK)
	y.Start("hub")
	members := []*Member{{Name: "hub", HV: hubHV}}
	kernels := []*guest.Kernel{hubK}

	// Hub routes by destination across its spokes.
	hubRoutes := make(map[simnet.Addr]simnet.Port)
	hub.ExpNIC.Attach(simnet.PortFunc(func(pkt *simnet.Packet) {
		if out, ok := hubRoutes[pkt.Dst]; ok {
			out.Accept(pkt)
		}
	}))

	var dns []*dummynet.DelayNode
	for i := 0; i < leaves; i++ {
		name := string(rune('a' + i))
		m := node.NewMachine(s, name, p)
		k := guest.New(m, p, guest.DefaultConfig())
		hv := xen.New(m, p, k)
		dn := dummynet.NewDelayNode(s, "dn-"+name, 100*simnet.Mbps, 3*sim.Millisecond)
		m.ExpNIC.Attach(simnet.NewWire(s, sim.Microsecond, dn.Forward))
		dn.AttachForward(hub.ExpNIC)
		hubRoutes[m.ExpNIC.Addr()] = simnet.NewWire(s, sim.Microsecond, dn.Reverse)
		dn.AttachReverse(m.ExpNIC)
		y.Start(name)
		y.Start(dn.Name)
		members = append(members, &Member{Name: name, HV: hv})
		kernels = append(kernels, k)
		dns = append(dns, dn)
	}
	return s, NewCoordinator(s, bus, y, members, dns), kernels
}

func TestStarTopologyCheckpoint(t *testing.T) {
	s, coord, ks := starRig(1, 4)
	// Leaves ping the hub continuously.
	hub := ks[0]
	hub.Handle("p", func(from simnet.Addr, m *guest.Message) {
		hub.Send(from, 100, &guest.Message{Port: "q"})
	})
	echoes := 0
	for _, k := range ks[1:] {
		k := k
		k.Handle("q", func(simnet.Addr, *guest.Message) {
			echoes++
			k.Usleep(20*sim.Millisecond, func() {
				k.Send("hub", 100, &guest.Message{Port: "p"})
			})
		})
		k.Send("hub", 100, &guest.Message{Port: "p"})
	}
	s.RunFor(10 * sim.Second)
	base := echoes
	var res *Result
	if err := coord.Checkpoint(Options{Incremental: true}, func(r *Result, _ error) { res = r }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(30 * sim.Second)
	if res == nil {
		t.Fatal("no checkpoint")
	}
	if len(res.Images) != 5 || len(res.DelayStates) != 4 {
		t.Fatalf("images=%d delays=%d", len(res.Images), len(res.DelayStates))
	}
	if echoes <= base {
		t.Fatal("traffic did not survive the 5-node checkpoint")
	}
	for _, k := range ks {
		if k.FW.InsideFired != 0 {
			t.Fatalf("%s: inside activity during checkpoint", k.Name)
		}
	}
}

func TestSkipDelayNodesPushesStateToEndpoints(t *testing.T) {
	run := func(skip bool) (endpointLogged bool, res *Result) {
		s, coord, ks := starRig(3, 2)
		hub := ks[0]
		hub.Handle("p", func(simnet.Addr, *guest.Message) {})
		// Leaves stream one-way traffic at the hub.
		for _, k := range ks[1:] {
			k := k
			var pump func()
			pump = func() {
				k.Send("hub", 1400, &guest.Message{Port: "p"})
				k.AfterVirtual(300*sim.Microsecond, "pump", pump)
			}
			pump()
		}
		s.RunFor(30 * sim.Second)
		logged := false
		stop := false
		var watch func()
		watch = func() {
			if stop {
				return
			}
			if hub.M.ExpNIC.ReplayLogLen() > 0 {
				logged = true
			}
			s.After(100*sim.Microsecond, "watch", watch)
		}
		watch()
		coord.Checkpoint(Options{Incremental: true, SkipDelayNodes: skip}, func(r *Result, _ error) { res = r })
		s.RunFor(20 * sim.Second)
		stop = true
		s.RunFor(sim.Second)
		return logged, res
	}
	loggedWith, resWith := run(false)
	loggedWithout, resWithout := run(true)
	if resWith == nil || resWithout == nil {
		t.Fatal("checkpoints incomplete")
	}
	if len(resWithout.DelayStates) != 0 {
		t.Fatal("ablated run serialized delay nodes")
	}
	if !loggedWithout {
		t.Fatal("ablation did not push packets into endpoint logs")
	}
	_ = loggedWith // with capture, logs stay near-empty (skew window only)
}

func TestHistoryAccumulates(t *testing.T) {
	s, coord, _ := starRig(4, 1)
	s.RunFor(sim.Second)
	for i := 0; i < 3; i++ {
		done := false
		coord.Checkpoint(Options{Incremental: i > 0}, func(*Result, error) { done = true })
		s.RunFor(30 * sim.Second)
		if !done {
			t.Fatalf("checkpoint %d incomplete", i+1)
		}
	}
	if len(coord.History) != 3 {
		t.Fatalf("history = %d", len(coord.History))
	}
	for i, r := range coord.History {
		if r.Epoch != i+1 {
			t.Fatalf("epoch order: %d at %d", r.Epoch, i)
		}
	}
}

func TestResumeHeldErrors(t *testing.T) {
	s, coord, _ := starRig(5, 1)
	if err := coord.ResumeHeld(nil); err == nil {
		t.Fatal("resume with nothing held")
	}
	s.RunFor(sim.Second)
	held := false
	coord.Checkpoint(Options{HoldResume: true}, func(*Result, error) { held = true })
	s.RunFor(30 * sim.Second)
	if !held {
		t.Fatal("hold checkpoint incomplete")
	}
	if !coord.Held() {
		t.Fatal("not held")
	}
	resumed := false
	if err := coord.ResumeHeld(func(*Result, error) { resumed = true }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)
	if !resumed {
		t.Fatal("resume incomplete")
	}
	if coord.Held() {
		t.Fatal("still held after resume")
	}
}

func TestTriggerFromNode(t *testing.T) {
	s, coord, ks := starRig(6, 2)
	s.RunFor(sim.Second)
	// Node "a" hits a watchpoint and triggers a checkpoint itself.
	var res *Result
	if err := coord.TriggerFromNode("a", func(r *Result, _ error) { res = r }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(30 * sim.Second)
	if res == nil {
		t.Fatal("node-triggered checkpoint incomplete")
	}
	if res.Mode != EventDriven {
		t.Fatal("node trigger should be event-driven")
	}
	if len(res.Images) != 3 {
		t.Fatalf("images = %d", len(res.Images))
	}
	for _, k := range ks {
		if k.Suspended() {
			t.Fatal("not resumed")
		}
	}
	if err := coord.TriggerFromNode("ghost", nil); err == nil {
		t.Fatal("ghost trigger accepted")
	}
}

func TestConcurrentNodeTriggersCoalesce(t *testing.T) {
	s, coord, _ := starRig(7, 2)
	s.RunFor(sim.Second)
	results := 0
	// Both leaves hit watchpoints nearly simultaneously; one epoch runs.
	coord.TriggerFromNode("a", func(*Result, error) { results++ })
	coord.TriggerFromNode("b", func(*Result, error) { results++ })
	s.RunFor(30 * sim.Second)
	if results != 1 {
		t.Fatalf("results = %d, want exactly one epoch", results)
	}
	if coord.Epoch() != 1 {
		t.Fatalf("epochs = %d", coord.Epoch())
	}
}
