// Package timetravel implements the experiment time-travel system
// (paper §6): frequent transparent checkpoints during a run form a
// navigation structure; backward navigation restores a checkpoint, and
// forward navigation replays from it. Because replay may mutate state or
// take non-deterministic turns, sessions form a *tree* — internal nodes
// are checkpoints, leaves are checkpoints or active executions — rather
// than the linear chain of deterministic replay.
//
// On this substrate, restore is realized by deterministic re-execution:
// the simulator is bit-deterministic, so "rolling back" to a checkpoint
// means re-running the experiment to the checkpoint's virtual time and
// then continuing — with the same random stream for deterministic
// replay, or with a perturbation for the paper's relaxed-determinism
// "knob" (skewed timing, packet reordering, seed changes). The tree
// tracks snapshot storage against the node-local snapshot disk, which
// the paper sizes to hold trees with thousands of nodes.
package timetravel

import (
	"fmt"

	"emucheck/internal/core"
	"emucheck/internal/sim"
)

// NodeID identifies one tree node.
type NodeID int

// Root is the implicit initial-state node's ID.
const Root NodeID = 0

// PerturbKind is the relaxed-determinism knob (§6): how a replay may
// diverge from the original run.
type PerturbKind int

// Perturbation kinds.
const (
	// Deterministic replays with the identical event stream.
	Deterministic PerturbKind = iota
	// SeedChange re-draws all scheduling/jitter randomness.
	SeedChange
	// TimeDilation skews timer firing by a factor.
	TimeDilation
	// PacketReorder perturbs network delivery order.
	PacketReorder
)

func (k PerturbKind) String() string {
	switch k {
	case Deterministic:
		return "deterministic"
	case SeedChange:
		return "seed-change"
	case TimeDilation:
		return "time-dilation"
	default:
		return "packet-reorder"
	}
}

// Perturbation configures one replay branch.
type Perturbation struct {
	Kind PerturbKind
	// Magnitude scales the perturbation (dilation factor, reorder
	// window); ignored for Deterministic.
	Magnitude float64
	// Seed replaces the run's random seed for SeedChange.
	Seed int64
}

// Node is one point in the execution history.
type Node struct {
	ID       NodeID
	Parent   NodeID
	Children []NodeID

	// Checkpoint is the distributed checkpoint captured here (nil for
	// the root, which is the experiment's initial state).
	Checkpoint *core.Result
	// VirtualTime is the experiment-visible capture time.
	VirtualTime sim.Time
	// Bytes is the snapshot footprint on the local snapshot disk.
	Bytes int64
	// Branch records the perturbation that created this lineage.
	Branch Perturbation
}

// Tree is the time-travel session tree.
type Tree struct {
	nodes map[NodeID]*Node
	next  NodeID
	head  NodeID

	// Capacity bounds snapshot storage (the second local disk).
	Capacity int64
	used     int64
}

// NewTree creates a tree rooted at the experiment's initial state with
// the given snapshot-disk capacity in bytes.
func NewTree(capacity int64) *Tree {
	t := &Tree{nodes: make(map[NodeID]*Node), Capacity: capacity}
	t.nodes[Root] = &Node{ID: Root, Parent: -1}
	t.next = 1
	return t
}

// Head reports the node the live execution currently descends from.
func (t *Tree) Head() NodeID { return t.head }

// Used reports snapshot storage in use.
func (t *Tree) Used() int64 { return t.used }

// Len reports the number of nodes including the root.
func (t *Tree) Len() int { return len(t.nodes) }

// Get returns a node by ID.
func (t *Tree) Get(id NodeID) (*Node, bool) {
	n, ok := t.nodes[id]
	return n, ok
}

// Record appends a checkpoint under the current head and advances the
// head to it. It fails if the snapshot disk is full.
func (t *Tree) Record(res *core.Result, virtualTime sim.Time) (*Node, error) {
	bytes := res.TotalBytes
	if t.Capacity > 0 && t.used+bytes > t.Capacity {
		return nil, fmt.Errorf("timetravel: snapshot disk full (%d + %d > %d)", t.used, bytes, t.Capacity)
	}
	parent := t.nodes[t.head]
	n := &Node{
		ID:          t.next,
		Parent:      parent.ID,
		Checkpoint:  res,
		VirtualTime: virtualTime,
		Bytes:       bytes,
		Branch:      parent.Branch,
	}
	t.next++
	t.nodes[n.ID] = n
	parent.Children = append(parent.Children, n.ID)
	t.head = n.ID
	t.used += bytes
	return n, nil
}

// ReplayPlan is what the execution engine needs to realize a rollback:
// re-run deterministically to the target virtual time, then continue
// under the perturbation.
type ReplayPlan struct {
	From    *Node
	Target  sim.Time // virtual time to re-execute to
	Perturb Perturbation
}

// Rollback moves the head to an earlier (or sibling) node and returns
// the plan for re-executing from it. A subsequent Record creates a new
// branch under that node — this is how replay trees grow.
func (t *Tree) Rollback(id NodeID, p Perturbation) (*ReplayPlan, error) {
	n, ok := t.nodes[id]
	if !ok {
		return nil, fmt.Errorf("timetravel: no node %d", id)
	}
	t.head = id
	// The new lineage carries the perturbation.
	return &ReplayPlan{From: n, Target: n.VirtualTime, Perturb: p}, nil
}

// SetBranchPerturbation tags the head so descendants record the lineage.
func (t *Tree) SetBranchPerturbation(p Perturbation) {
	t.nodes[t.head].Branch = p
}

// PathToRoot reports the checkpoint chain from a node up to the root,
// nearest first.
func (t *Tree) PathToRoot(id NodeID) ([]*Node, error) {
	n, ok := t.nodes[id]
	if !ok {
		return nil, fmt.Errorf("timetravel: no node %d", id)
	}
	var out []*Node
	for n.Parent >= 0 {
		out = append(out, n)
		n = t.nodes[n.Parent]
	}
	out = append(out, n)
	return out, nil
}

// Prune removes a leaf (reclaiming its snapshot space). Internal nodes
// cannot be pruned: their children depend on them.
func (t *Tree) Prune(id NodeID) error {
	n, ok := t.nodes[id]
	if !ok {
		return fmt.Errorf("timetravel: no node %d", id)
	}
	if id == Root {
		return fmt.Errorf("timetravel: cannot prune root")
	}
	if len(n.Children) > 0 {
		return fmt.Errorf("timetravel: node %d has %d children", id, len(n.Children))
	}
	if t.head == id {
		t.head = n.Parent
	}
	parent := t.nodes[n.Parent]
	for i, c := range parent.Children {
		if c == id {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			break
		}
	}
	t.used -= n.Bytes
	delete(t.nodes, id)
	return nil
}

// Leaves reports all leaf nodes (active or abandoned execution tips).
func (t *Tree) Leaves() []NodeID {
	var out []NodeID
	for id, n := range t.nodes {
		if len(n.Children) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// Depth reports the distance of id from the root.
func (t *Tree) Depth(id NodeID) int {
	d := 0
	for n := t.nodes[id]; n != nil && n.Parent >= 0; n = t.nodes[n.Parent] {
		d++
	}
	return d
}
