package remediate

import (
	"fmt"
	"strings"
	"testing"

	"emucheck/internal/sim"
)

// rig wires a controller to scripted hooks that log every action with
// its simulated instant.
type rig struct {
	s          *sim.Simulator
	c          *Controller
	log        []string
	recoverErr error
	cordoned   int
}

func newRig(t *testing.T, seed int64, opt Options) *rig {
	t.Helper()
	r := &rig{s: sim.New(1)}
	r.c = New(r.s, seed, opt, Hooks{
		Cordon: func(target string) (int, error) {
			r.cordoned += 2
			r.log = append(r.log, fmt.Sprintf("%d cordon %s", r.s.Now(), target))
			return 2, nil
		},
		Uncordon: func(n int) error {
			r.cordoned -= n
			r.log = append(r.log, fmt.Sprintf("%d uncordon %d", r.s.Now(), n))
			return nil
		},
		Drain: func(target string) (int, error) {
			r.log = append(r.log, fmt.Sprintf("%d drain %s", r.s.Now(), target))
			return 1, nil
		},
		Recover: func(target string) error {
			r.log = append(r.log, fmt.Sprintf("%d recover %s", r.s.Now(), target))
			return r.recoverErr
		},
		Restart: func(target string) error {
			r.log = append(r.log, fmt.Sprintf("%d restart %s", r.s.Now(), target))
			return nil
		},
		Quarantine: func(target string) {
			r.log = append(r.log, fmt.Sprintf("%d quarantine %s", r.s.Now(), target))
		},
	})
	return r
}

func TestEpisodeCordonsDrainsRecoversThenReleases(t *testing.T) {
	r := newRig(t, 5, Options{})
	r.c.NoteUnhealthy("e1")
	if r.cordoned != 2 || r.c.CordonedNodes() != 2 {
		t.Fatalf("cordon ledger: hooks=%d controller=%d", r.cordoned, r.c.CordonedNodes())
	}
	// A second verdict for an open episode must not double-cordon.
	r.c.NoteUnhealthy("e1")
	if r.cordoned != 2 || r.c.CordonsIssued != 1 {
		t.Fatalf("double cordon: %d issued %d", r.cordoned, r.c.CordonsIssued)
	}
	r.s.RunFor(5 * sim.Second)
	if r.c.Remediations != 1 {
		t.Fatalf("remediations = %d, log %v", r.c.Remediations, r.log)
	}
	// The detector confirms health: cordon lifts, ledger zeroes.
	r.c.NoteHealthy("e1")
	if r.cordoned != 0 || r.c.CordonedNodes() != 0 || r.c.CordonsReleased != 1 {
		t.Fatalf("cordon not released: hooks=%d ledger=%d", r.cordoned, r.c.CordonedNodes())
	}
	// Order of actions: cordon, then drain, then recover.
	want := []string{"cordon e1", "drain e1", "recover e1", "uncordon 2"}
	if len(r.log) != len(want) {
		t.Fatalf("log %v", r.log)
	}
	for i, w := range want {
		_, rest, _ := strings.Cut(r.log[i], " ")
		if rest != w {
			t.Fatalf("log[%d] = %q, want %q (full %v)", i, r.log[i], w, r.log)
		}
	}
	// No recheck-driven retry after the episode closed.
	r.s.RunFor(sim.Minute)
	if r.c.Retries != 0 {
		t.Fatalf("retries after closed episode: %d", r.c.Retries)
	}
}

func TestBudgetExhaustionQuarantines(t *testing.T) {
	r := newRig(t, 5, Options{Budget: 2, RecheckPeriod: 2 * sim.Second})
	r.recoverErr = fmt.Errorf("file server unreachable")
	r.c.NoteUnhealthy("e1")
	r.s.RunFor(sim.Minute)
	if !r.c.Quarantined("e1") || r.c.Quarantines != 1 {
		t.Fatalf("not quarantined; log %v", r.log)
	}
	if r.c.Attempts("e1") != 2 {
		t.Fatalf("attempts = %d, want budget 2", r.c.Attempts("e1"))
	}
	// Quarantine released the cordon: suspect hardware must not leak.
	if r.cordoned != 0 || r.c.CordonedNodes() != 0 {
		t.Fatalf("cordon leaked through quarantine: %d", r.cordoned)
	}
	// Further verdicts for a quarantined tenant are ignored.
	n := len(r.log)
	r.c.NoteUnhealthy("e1")
	r.s.RunFor(sim.Minute)
	if len(r.log) != n {
		t.Fatalf("quarantined tenant re-remediated: %v", r.log[n:])
	}
}

func TestRecheckRetriesUnconfirmedRecovery(t *testing.T) {
	// Recover "succeeds" but the detector never confirms health (the
	// tenant crash-loops): the recheck must fire follow-up attempts
	// until the budget quarantines it.
	r := newRig(t, 5, Options{Budget: 3, RecheckPeriod: 2 * sim.Second})
	r.c.NoteUnhealthy("e1")
	r.s.RunFor(2 * sim.Minute)
	if r.c.Remediations != 3 || r.c.Retries < 2 {
		t.Fatalf("remediations=%d retries=%d, want 3 attempts driven by recheck",
			r.c.Remediations, r.c.Retries)
	}
	if !r.c.Quarantined("e1") {
		t.Fatal("crash-looping tenant not quarantined")
	}
}

func TestRecheckSparesBudgetWhileRecoveryInFlight(t *testing.T) {
	// A slow restore is not a failed attempt: while the Recovering hook
	// reports the swap-in still in flight, rechecks re-arm without
	// consuming budget; once it lands (and the detector confirms), the
	// episode closes with only the one attempt spent.
	r := newRig(t, 5, Options{Budget: 2, RecheckPeriod: 2 * sim.Second})
	inFlight := true
	r.c.Hooks.Recovering = func(string) bool { return inFlight }
	r.c.NoteUnhealthy("e1")
	// Far longer than Budget×Recheck: without the hook this quarantines.
	r.s.RunFor(sim.Minute)
	if r.c.Quarantined("e1") {
		t.Fatalf("in-flight recovery burned the budget: %v", r.log)
	}
	if r.c.Attempts("e1") != 1 || r.c.Retries != 0 {
		t.Fatalf("attempts=%d retries=%d during one long restore", r.c.Attempts("e1"), r.c.Retries)
	}
	inFlight = false
	r.c.NoteHealthy("e1")
	r.s.RunFor(sim.Minute)
	if r.c.Retries != 0 || r.c.Quarantines != 0 {
		t.Fatalf("closed episode kept rechecking: retries=%d", r.c.Retries)
	}
}

func TestFallbackRestartWhenNoEpoch(t *testing.T) {
	r := newRig(t, 5, Options{FallbackRestart: true})
	r.recoverErr = fmt.Errorf("no committed epoch")
	r.c.NoteUnhealthy("e1")
	r.s.RunFor(5 * sim.Second)
	if r.c.Remediations != 1 {
		t.Fatalf("fallback restart did not count as remediation: %v", r.log)
	}
	found := false
	for _, l := range r.log {
		if _, rest, _ := strings.Cut(l, " "); rest == "restart e1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no restart in log %v", r.log)
	}
}

func TestBackoffGrowsAndIsSeedDeterministic(t *testing.T) {
	attemptTimes := func(seed int64) []sim.Time {
		s := sim.New(1)
		var times []sim.Time
		c := New(s, seed, Options{Budget: 4, RecheckPeriod: sim.Second, BackoffBase: sim.Second}, Hooks{
			Cordon:  func(string) (int, error) { return 1, nil },
			Recover: func(string) error { times = append(times, s.Now()); return fmt.Errorf("down") },
		})
		c.NoteUnhealthy("e1")
		s.RunFor(5 * sim.Minute)
		return times
	}
	a := attemptTimes(9)
	if len(a) != 4 {
		t.Fatalf("attempts = %v", a)
	}
	// Gaps between consecutive attempts grow (exponential backoff, and
	// jitter < base cannot mask the doubling).
	for i := 2; i < len(a); i++ {
		if a[i]-a[i-1] <= a[i-1]-a[i-2] {
			t.Fatalf("backoff not growing: %v", a)
		}
	}
	b := attemptTimes(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed attempt times diverged: %v vs %v", a, b)
		}
	}
}
