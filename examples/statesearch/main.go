// State search (paper §6): "a model checker could branch from past
// execution checkpoints to test unexplored states." This example
// explores a protocol's behaviour space by repeatedly branching replays
// off one checkpoint with different perturbation seeds — each branch is
// an independent execution future grown from the same captured past.
package main

import (
	"fmt"
	"sort"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// racyWorkload elects a leader with a naive race: both nodes claim
// leadership after a randomized (jitter-dependent) backoff; if their
// claims cross in flight, the run ends in split-brain.
func racyWorkload(outcome *string) func(*emucheck.Session) {
	return func(s *emucheck.Session) {
		a, b := s.Kernel("a"), s.Kernel("b")
		claimed := map[string]bool{}
		decide := func(self *guest.Kernel, peer string) func(simnet.Addr, *guest.Message) {
			return func(from simnet.Addr, m *guest.Message) {
				if claimed[self.Name] {
					*outcome = "split-brain"
					return
				}
				if *outcome == "" {
					*outcome = "leader=" + peer
				}
			}
		}
		a.Handle("claim", decide(a, "b"))
		b.Handle("claim", decide(b, "a"))
		claim := func(self *guest.Kernel, peer simnet.Addr) {
			// The racy part: the backoff bucket is derived from measured
			// scheduling jitter (a common sin in real systems — deriving
			// randomness from timing), so different perturbation seeds
			// genuinely explore different interleavings.
			t0 := self.Monotonic()
			self.Usleep(sim.Millisecond, func() {
				jitterNs := int64(self.Monotonic()-t0) % 1000
				backoff := 60 * sim.Millisecond
				if jitterNs%2 == 1 {
					backoff = 140 * sim.Millisecond
				}
				self.Usleep(backoff, func() {
					if *outcome != "" {
						return // already decided: the peer's claim won
					}
					claimed[self.Name] = true
					self.Send(peer, 120, &guest.Message{Port: "claim"})
				})
			})
		}
		claim(a, "b")
		claim(b, "a")
	}
}

func spec() emulab.Spec {
	return emulab.Spec{
		Name: "election",
		Nodes: []emulab.NodeSpec{
			{Name: "a", Swappable: true},
			{Name: "b", Swappable: true},
		},
		Links: []emulab.LinkSpec{
			{A: "a", B: "b", Bandwidth: 100 * simnet.Mbps, Delay: 40 * sim.Millisecond},
		},
	}
}

func main() {
	// Original run: capture a checkpoint just before the race window.
	var outcome string
	s := emucheck.NewSession(emucheck.Scenario{Spec: spec(), Setup: racyWorkload(&outcome)}, 1)
	s.RunFor(50 * sim.Millisecond)
	if _, err := s.Checkpoint(); err != nil {
		panic(err)
	}
	ckpt := s.Tree.Head()
	s.RunFor(2 * sim.Second)
	fmt.Printf("original run outcome: %s\n", outcome)
	fmt.Printf("exploring 12 futures branched from checkpoint %d ...\n", ckpt)

	// Branch the same past into many perturbed futures.
	results := map[string]int{}
	cur := s
	for seed := int64(100); seed < 112; seed++ {
		var o string
		cur.Scenario = emucheck.Scenario{Spec: spec(), Setup: racyWorkload(&o)}
		branch, err := cur.Rollback(ckpt, emucheck.Perturbation{Kind: emucheck.SeedChange, Seed: seed})
		if err != nil {
			panic(err)
		}
		branch.RunFor(2 * sim.Second)
		if o == "" {
			o = "no-decision"
		}
		results[o]++
		// Seal the branch tip with its own checkpoint so the execution
		// tree records this explored future.
		if _, err := branch.Checkpoint(); err != nil {
			panic(err)
		}
		cur = branch
	}

	var keys []string
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-12s x%d\n", k, results[k])
	}
	fmt.Printf("execution tree: %d nodes, %d leaves — one captured past, many futures\n",
		cur.Tree.Len(), len(cur.Tree.Leaves()))
	if results["split-brain"] > 0 {
		fmt.Println("the state search surfaced the split-brain interleaving without")
		fmt.Println("ever re-running the (possibly expensive) setup phase before the checkpoint")
	}
}
