package sched

import (
	"testing"

	"emucheck/internal/sim"
)

// fakeJob builds a job whose hooks take fixed simulated durations.
func fakeJob(s *sim.Simulator, name string, need, pri int, startDur, parkDur, resumeDur sim.Time) *Job {
	return &Job{
		Name: name, Need: need, Priority: pri, Preemptible: true,
		Hooks: Hooks{
			Start:  func(done func(error)) { s.After(startDur, "fake.start", func() { done(nil) }) },
			Park:   func(done func(error)) { s.After(parkDur, "fake.park", func() { done(nil) }) },
			Resume: func(done func(error)) { s.After(resumeDur, "fake.resume", func() { done(nil) }) },
		},
	}
}

func TestAdmissionWithinCapacity(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	a := fakeJob(s, "a", 2, 0, sim.Second, sim.Second, sim.Second)
	b := fakeJob(s, "b", 2, 0, sim.Second, sim.Second, sim.Second)
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(b); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * sim.Second)
	if a.State() != Running || b.State() != Running {
		t.Fatalf("states: %v %v", a.State(), b.State())
	}
	if d.Free() != 0 {
		t.Fatalf("free = %d", d.Free())
	}
}

func TestRejectsOverPoolDemand(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	if err := d.Submit(fakeJob(s, "big", 5, 0, 0, 0, 0)); err == nil {
		t.Fatal("oversized job admitted")
	}
	if err := d.Submit(&Job{Name: "zero", Need: 0}); err == nil {
		t.Fatal("zero-need job admitted")
	}
}

func TestFIFOPreemptsOldestForQueuedJob(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	d.MinResidency = 5 * sim.Second
	a := fakeJob(s, "a", 2, 0, sim.Second, sim.Second, sim.Second)
	b := fakeJob(s, "b", 2, 0, sim.Second, sim.Second, sim.Second)
	c := fakeJob(s, "c", 2, 0, sim.Second, sim.Second, sim.Second)
	for _, j := range []*Job{a, b, c} {
		if err := d.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if c.State() != Queued {
		t.Fatalf("c should queue, is %v", c.State())
	}
	s.RunFor(10 * sim.Second)
	// a (earliest admitted) was preempted, c admitted.
	if a.Preemptions() != 1 {
		t.Fatalf("a preemptions = %d", a.Preemptions())
	}
	if c.State() != Running {
		t.Fatalf("c = %v", c.State())
	}
	if c.QueueWait() <= 0 {
		t.Fatal("c waited zero")
	}
	// a re-queued automatically and eventually resumes (round-robin).
	s.RunFor(30 * sim.Second)
	if a.Admissions() < 2 {
		t.Fatalf("a admissions = %d", a.Admissions())
	}
}

func TestMinResidencyDefersPreemption(t *testing.T) {
	s := sim.New(1)
	d := New(s, 2, FIFO)
	d.MinResidency = 20 * sim.Second
	a := fakeJob(s, "a", 2, 0, 0, 0, 0)
	b := fakeJob(s, "b", 2, 0, 0, 0, 0)
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(b); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)
	if a.Preemptions() != 0 {
		t.Fatal("preempted before residency")
	}
	s.RunFor(15 * sim.Second)
	if a.Preemptions() != 1 || b.State() != Running {
		t.Fatalf("a pre=%d b=%v", a.Preemptions(), b.State())
	}
}

func TestIdleFirstPicksLongestIdle(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, IdleFirst)
	d.MinResidency = 20 * sim.Second
	a := fakeJob(s, "a", 2, 0, 0, 0, 0)
	b := fakeJob(s, "b", 2, 0, 0, 0, 0)
	var parkOrder []string
	for _, j := range []*Job{a, b} {
		j, inner := j, j.Hooks.Park
		j.Hooks.Park = func(done func(error)) {
			parkOrder = append(parkOrder, j.Name)
			inner(done)
		}
	}
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(b); err != nil {
		t.Fatal(err)
	}
	// a stays busy; b goes idle.
	stop := false
	var touch func()
	touch = func() {
		if stop {
			return
		}
		d.Touch("a")
		s.After(sim.Second, "touch", touch)
	}
	touch()
	s.RunFor(10 * sim.Second)
	c := fakeJob(s, "c", 2, 0, 0, 0, 0)
	if err := d.Submit(c); err != nil {
		t.Fatal(err)
	}
	// At 20 s residency matures; the idle job b must be the first
	// victim (continued queue pressure may rotate others afterwards).
	s.RunFor(time30)
	stop = true
	if len(parkOrder) == 0 || parkOrder[0] != "b" {
		t.Fatalf("first victim = %v, want b", parkOrder)
	}
	if c.Admissions() == 0 {
		t.Fatal("c never admitted")
	}
}

func TestPriorityOnlyPreemptsStrictlyLower(t *testing.T) {
	s := sim.New(1)
	d := New(s, 2, Priority)
	d.MinResidency = sim.Second
	lo := fakeJob(s, "lo", 2, 1, 0, 0, 0)
	if err := d.Submit(lo); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * sim.Second)

	eq := fakeJob(s, "eq", 2, 1, 0, 0, 0)
	if err := d.Submit(eq); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)
	if lo.Preemptions() != 0 || eq.State() != Queued {
		t.Fatalf("equal priority preempted: lo=%d eq=%v", lo.Preemptions(), eq.State())
	}

	// A strictly higher-priority job does preempt — but FIFO admission
	// order means it must wait behind eq... the queue head blocks, so
	// finish eq first to keep the test focused on priority victims.
	if err := d.Finish("eq"); err != nil {
		t.Fatal(err)
	}
	hi := fakeJob(s, "hi", 2, 5, 0, 0, 0)
	if err := d.Submit(hi); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)
	if lo.Preemptions() != 1 || hi.State() != Running {
		t.Fatalf("lo=%d hi=%v", lo.Preemptions(), hi.State())
	}
}

func TestVoluntaryParkAndUnpark(t *testing.T) {
	s := sim.New(1)
	d := New(s, 2, FIFO)
	a := fakeJob(s, "a", 2, 0, 0, sim.Second, sim.Second)
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Second)
	if err := d.Park("a"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	if a.State() != Parked {
		t.Fatalf("a = %v", a.State())
	}
	if d.Free() != 2 {
		t.Fatalf("free = %d", d.Free())
	}
	// Parked jobs do not auto-resume.
	s.RunFor(time30)
	if a.State() != Parked {
		t.Fatalf("a resumed on its own: %v", a.State())
	}
	if err := d.Unpark("a"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	if a.State() != Running {
		t.Fatalf("a = %v", a.State())
	}
}

const time30 = 30 * sim.Second

func TestFinishFreesCapacityAndAdmitsQueue(t *testing.T) {
	s := sim.New(1)
	d := New(s, 2, FIFO)
	d.MinResidency = sim.Hour // no preemption: only Finish can free
	a := fakeJob(s, "a", 2, 0, 0, 0, 0)
	b := fakeJob(s, "b", 2, 0, 0, 0, 0)
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(b); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Second)
	if b.State() != Queued {
		t.Fatalf("b = %v", b.State())
	}
	if err := d.Finish("a"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Second)
	if b.State() != Running || a.State() != Done {
		t.Fatalf("a=%v b=%v", a.State(), b.State())
	}
	if d.AllDone() {
		t.Fatal("b still running")
	}
	if err := d.Finish("b"); err != nil {
		t.Fatal(err)
	}
	if !d.AllDone() {
		t.Fatal("all done")
	}
}

func TestQueueWaitVisibleWhileStillQueued(t *testing.T) {
	s := sim.New(1)
	d := New(s, 2, FIFO)
	hog := fakeJob(s, "hog", 2, 0, 0, 0, 0)
	hog.Preemptible = false
	if err := d.Submit(hog); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)
	starved := fakeJob(s, "starved", 2, 0, 0, 0, 0)
	if err := d.Submit(starved); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Minute)
	if starved.State() != Queued {
		t.Fatalf("starved = %v", starved.State())
	}
	// The in-progress wait must be reported, not deferred to admission.
	if w := starved.QueueWait(); w < 4*sim.Minute {
		t.Fatalf("starved job reports only %v of queue wait", w)
	}
}

func TestUtilizationAndDeterminism(t *testing.T) {
	run := func() (float64, uint64) {
		s := sim.New(7)
		d := New(s, 4, FIFO)
		d.MinResidency = 5 * sim.Second
		for _, n := range []string{"a", "b", "c"} {
			if err := d.Submit(fakeJob(s, n, 2, 0, sim.Second, sim.Second, sim.Second)); err != nil {
				t.Fatal(err)
			}
		}
		s.RunFor(60 * sim.Second)
		return d.Utilization(), s.Fired()
	}
	u1, f1 := run()
	u2, f2 := run()
	if u1 != u2 || f1 != f2 {
		t.Fatalf("nondeterministic: %v/%v vs %v/%v", u1, f1, u2, f2)
	}
	if u1 <= 0.5 || u1 > 1 {
		t.Fatalf("utilization = %v", u1)
	}
}
