package sim

import "testing"

// TestTimerRearmReusesOneEvent checks the Timer contract: one event
// allocation serves arbitrarily many arms, firing once per arm.
func TestTimerRearmReusesOneEvent(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.NewTimer("t", func() { fired++ })
	if tm.Pending() {
		t.Fatal("fresh timer pending")
	}
	for i := 0; i < 5; i++ {
		tm.Reset(Second)
		if !tm.Pending() || tm.When() != s.Now()+Second {
			t.Fatalf("arm %d: pending=%v when=%v", i, tm.Pending(), tm.When())
		}
		s.Run()
		if tm.Pending() {
			t.Fatal("timer still pending after firing")
		}
	}
	if fired != 5 {
		t.Fatalf("fired %d times, want 5", fired)
	}
}

// TestTimerScheduleReschedulesInPlace checks that arming a pending
// timer moves it (one fire at the new time), in both directions.
func TestTimerScheduleReschedulesInPlace(t *testing.T) {
	s := New(1)
	var at []Time
	tm := s.NewTimer("t", func() { at = append(at, s.Now()) })
	tm.Schedule(10 * Second)
	tm.Schedule(3 * Second) // pull earlier
	s.Run()
	tm.Schedule(s.Now() + 2*Second)
	tm.Schedule(s.Now() + 8*Second) // push later
	s.Run()
	if len(at) != 2 || at[0] != 3*Second || at[1] != 11*Second {
		t.Fatalf("fire times = %v, want [3s 11s]", at)
	}
}

// TestTimerStopAndRearm checks Stop suppresses the pending fire
// without poisoning the timer for later arms.
func TestTimerStopAndRearm(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.NewTimer("t", func() { fired++ })
	tm.Reset(Second)
	tm.Stop()
	tm.Stop() // idempotent
	s.Run()
	if fired != 0 {
		t.Fatal("stopped timer fired")
	}
	tm.Reset(2 * Second)
	s.Run()
	if fired != 1 {
		t.Fatalf("re-armed timer fired %d times, want 1", fired)
	}
}

// TestTimerPastArmPanics mirrors At's causality check.
func TestTimerPastArmPanics(t *testing.T) {
	s := New(1)
	s.At(Second, "advance", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("arming a timer in the past did not panic")
		}
	}()
	s.NewTimer("t", func() {}).Schedule(0)
}

// TestTimerResetClampsNegative mirrors After's clamp-to-now.
func TestTimerResetClampsNegative(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.NewTimer("t", func() { fired = true })
	tm.Reset(-5 * Second)
	if !tm.Pending() || tm.When() != s.Now() {
		t.Fatalf("negative Reset: pending=%v when=%v", tm.Pending(), tm.When())
	}
	s.Run()
	if !fired {
		t.Fatal("clamped timer never fired")
	}
}

// TestTimerTieBreaksLikeFreshEvents pins the seq contract: re-arming a
// timer consumes exactly one sequence number, like scheduling a fresh
// event — so a timer and a plain event armed in the same instant fire
// in arm order. The scheduler's byte-identical swap to reusable wake
// timers depends on this.
func TestTimerTieBreaksLikeFreshEvents(t *testing.T) {
	s := New(1)
	var order []string
	tm := s.NewTimer("t", func() { order = append(order, "timer") })
	tm.Schedule(Second)
	s.At(Second, "e1", func() { order = append(order, "e1") })
	tm.Schedule(Second) // reschedule to the same instant: seq moves behind e1
	s.At(Second, "e2", func() { order = append(order, "e2") })
	s.Run()
	if len(order) != 3 || order[0] != "e1" || order[1] != "timer" || order[2] != "e2" {
		t.Fatalf("fire order = %v, want [e1 timer e2]", order)
	}
}
