// Command benchrunner regenerates the figures and tables of the paper's
// evaluation (§7) and prints paper-vs-measured rows.
//
// Usage:
//
//	benchrunner -all
//	benchrunner -fig 6
//	benchrunner -table swap
//	benchrunner -fig 4 -seed 7 -quick
//
// Each experiment is deterministic for a given seed; -quick shrinks the
// workloads (fewer iterations, smaller files) for a fast sanity pass.
package main

import (
	"flag"
	"fmt"
	"os"

	"emucheck/internal/evalrun"
)

func main() {
	var (
		fig   = flag.Int("fig", 0, "figure number to regenerate (4-9)")
		table = flag.String("table", "", "table to regenerate: swap | freeblock | sync | dom0 | ablation")
		all   = flag.Bool("all", false, "regenerate everything")
		seed  = flag.Int64("seed", 1, "simulation seed")
		quick = flag.Bool("quick", false, "reduced workload sizes")
	)
	flag.Parse()

	iters4, iters5 := 6000, 600
	fileMB7 := int64(3 << 10) // the paper's 3 GB torrent
	fileMB8 := int64(512)
	copyMB9 := int64(512)
	if *quick {
		iters4, iters5 = 1500, 150
		fileMB7 = 512
		fileMB8 = 256
		copyMB9 = 256
	}

	ran := false
	run := func(n int, f func()) {
		if *all || *fig == n {
			ran = true
			fmt.Printf("== Figure %d ==\n", n)
			f()
			fmt.Println()
		}
	}
	runT := func(name, title string, f func()) {
		if *all || *table == name {
			ran = true
			fmt.Printf("== %s ==\n", title)
			f()
			fmt.Println()
		}
	}

	run(4, func() { fmt.Print(evalrun.Fig4(*seed, iters4).Render()) })
	run(5, func() { fmt.Print(evalrun.Fig5(*seed, iters5).Render()) })
	run(6, func() { fmt.Print(evalrun.Fig6(*seed).Render()) })
	run(7, func() { fmt.Print(evalrun.Fig7(*seed, fileMB7).Render()) })
	run(8, func() { fmt.Print(evalrun.Fig8(*seed, fileMB8).Render()) })
	run(9, func() { fmt.Print(evalrun.Fig9(*seed, copyMB9).Render()) })
	runT("swap", "Stateful swapping (§7.2)", func() { fmt.Print(evalrun.SwapTable(*seed).Render()) })
	runT("freeblock", "Free-block elimination (§5.1)", func() { fmt.Print(evalrun.FreeBlockTable(*seed).Render()) })
	runT("sync", "Checkpoint synchronization (§4.3)", func() { fmt.Print(evalrun.SyncTable(*seed).Render()) })
	runT("dom0", "Dom0 interference (§7.1)", func() { fmt.Print(evalrun.Dom0Jobs(*seed).Render()) })
	runT("ablation", "Ablation: delay-node capture (§4.4)", func() { fmt.Print(evalrun.AblationDelayNode(*seed).Render()) })

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
