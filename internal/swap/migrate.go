package swap

import (
	"emucheck/internal/storage"
)

// Cross-facility migration of parked tenants (federation data plane).
//
// A parked tenant's run-time state is a content-addressed checkpoint
// chain whose authoritative copy lives in the shared global pool
// (storage.RemoteBackend): parking committed it there, so any
// facility in the federation can restore it. Migration therefore
// moves no authority — it moves *locality*. The source facility ships
// the chain over the WAN into the destination's storage.DeltaCache
// ahead of the restore (warm-up), so the eventual swap-in replays the
// chain from local media instead of re-streaming every segment from
// the pool across the control LAN.

// ChainSegment is one content-addressed segment of a parked tenant's
// checkpoint chain: the base image or one epoch delta.
type ChainSegment struct {
	Addr  storage.Addr
	Bytes int64
}

// ChainBytes sums a chain's payload.
func ChainBytes(chain []ChainSegment) int64 {
	var n int64
	for _, seg := range chain {
		n += seg.Bytes
	}
	return n
}

// PlanWarmUp selects the chain segments worth shipping to the
// destination: those its cache does not already hold. The plan is in
// chain order (base first), so a truncated warm-up still front-loads
// the segments every restore replays first. The lookup is by
// residency only — no ledger or recency side effects.
func PlanWarmUp(chain []ChainSegment, dst *storage.DeltaCache) []ChainSegment {
	var plan []ChainSegment
	for _, seg := range chain {
		if !dst.Contains(seg.Addr) {
			plan = append(plan, seg)
		}
	}
	return plan
}

// WarmUp admits the planned segments into the destination cache and
// returns the bytes actually admitted. Admission goes through the
// cache's refcount-aware path: pinned (shared) entries are never
// evicted to make room, so an oversized warm-up degrades to a partial
// one instead of destroying the destination's resident working set.
func WarmUp(plan []ChainSegment, dst *storage.DeltaCache) int64 {
	var admitted int64
	for _, seg := range plan {
		// Stop once the next segment could only be admitted by evicting
		// segments this same warm-up already shipped (they are the MRU
		// entries, so LRU reaches them last): past that point the
		// migration would thrash its own transfer instead of widening
		// the restore's local coverage.
		if admitted+seg.Bytes > dst.Capacity {
			break
		}
		if dst.WarmUp(seg.Addr, seg.Bytes) {
			admitted += seg.Bytes
		}
	}
	return admitted
}

// RestoreChain replays a tenant's chain at a facility: each segment is
// served from the local delta cache if resident (local bytes), and
// otherwise streamed from the shared pool (remote bytes) and admitted
// into the cache for the next restore. The returned split is the
// migration warm-up's whole value proposition: warmed restores shift
// bytes from remote to local.
func RestoreChain(chain []ChainSegment, cache *storage.DeltaCache, pool storage.Backend) (local, remote int64) {
	for _, seg := range chain {
		if _, ok := cache.Get(seg.Addr); ok {
			local += seg.Bytes
			continue
		}
		cache.MissBytes(seg.Bytes)
		remote += seg.Bytes
		if pool != nil && !pool.Has(seg.Addr) {
			// The pool is authoritative for every parked chain; a miss
			// there is lost state, not a cache cold start.
			panic("swap: restore of chain segment absent from the shared pool")
		}
		cache.Put(seg.Addr, seg.Bytes)
	}
	return local, remote
}
