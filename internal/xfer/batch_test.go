package xfer

import (
	"testing"

	"emucheck/internal/sim"
)

// TestStreamUploadBatchAccounting: a batch moves the summed payload as
// one stream, skips empty segments, and fills the per-batch ledgers.
func TestStreamUploadBatchAccounting(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 10<<20) // 10 MB/s

	var got int64
	sv.StreamUploadBatch("e1", []int64{4 << 20, 0, 6 << 20}, func(total int64) { got = total })
	if sv.ActiveStreams() != 1 {
		t.Fatalf("batch must occupy one stream, got %d", sv.ActiveStreams())
	}
	s.Run()
	if got != 10<<20 {
		t.Fatalf("batch moved %d bytes, want %d", got, int64(10<<20))
	}
	if sv.Batches != 1 || sv.BatchSegments != 2 || sv.BatchBytes != 10<<20 || sv.BatchSavedStreams != 1 {
		t.Fatalf("batch ledger: %d/%d/%d/%d", sv.Batches, sv.BatchSegments, sv.BatchBytes, sv.BatchSavedStreams)
	}
	if sv.Received != 10<<20 || sv.ByTag["e1"] != 10<<20 {
		t.Fatalf("byte ledgers: received %d, tag %d", sv.Received, sv.ByTag["e1"])
	}
	// 10 MB at 10 MB/s through an otherwise idle pipe: one second.
	if want := sim.Second; s.Now() != want {
		t.Fatalf("batch drained at %v, want %v", s.Now(), want)
	}
}

// TestStreamBatchEmptyCompletes: an all-empty batch fires its callback
// without touching the pipe or the ledgers.
func TestStreamBatchEmptyCompletes(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 0)
	fired := false
	sv.StreamDownloadBatch("e1", nil, func(total int64) {
		if total != 0 {
			t.Fatalf("empty batch reported %d bytes", total)
		}
		fired = true
	})
	s.Run()
	if !fired {
		t.Fatal("empty batch never completed")
	}
	if sv.Batches != 0 || sv.Served != 0 {
		t.Fatal("empty batch must not touch the ledgers")
	}
}

// TestBatchSharesFairly: a batched upload and a plain stream split the
// pipe evenly — coalescing N segments into a batch claims one share,
// not N.
func TestBatchSharesFairly(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 10<<20)

	var batchAt, plainAt sim.Time
	sv.StreamUploadBatch("a", []int64{5 << 20, 5 << 20}, func(int64) { batchAt = s.Now() })
	sv.StreamUpload("b", 10<<20, func() { plainAt = s.Now() })
	s.Run()
	// Equal payloads sharing the pipe fairly finish together at 2 s.
	if batchAt != plainAt {
		t.Fatalf("batch finished at %v, plain stream at %v — unequal shares", batchAt, plainAt)
	}
	if batchAt != 2*sim.Second {
		t.Fatalf("finish at %v, want 2s", batchAt)
	}
}
