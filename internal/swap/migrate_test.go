package swap

import (
	"testing"

	"emucheck/internal/storage"
)

// migChain builds a deterministic k-segment chain starting at addr
// base, commits it to the pool, and returns it.
func migChain(pool storage.Backend, base uint64, k int, segBytes int64) []ChainSegment {
	var chain []ChainSegment
	for i := 0; i < k; i++ {
		seg := ChainSegment{Addr: storage.Addr(base + uint64(i)), Bytes: segBytes}
		pool.Put(seg.Addr, seg.Bytes)
		chain = append(chain, seg)
	}
	return chain
}

// TestWarmUpReducesRemoteBytes is the satellite coverage for cache
// warm-up on a cold node: pre-seeding the destination cache before a
// restore must strictly reduce remote_bytes versus a cold restore of
// the same chain.
func TestWarmUpReducesRemoteBytes(t *testing.T) {
	pool := storage.NewRemoteBackend()
	chain := migChain(pool, 100, 6, 8<<20) // 48 MB chain
	total := ChainBytes(chain)

	// Cold destination: every segment streams from the pool.
	cold := storage.NewDeltaCache(256<<20, nil)
	_, coldRemote := RestoreChain(chain, cold, pool)
	if coldRemote != total {
		t.Fatalf("cold restore remote = %d, want full chain %d", coldRemote, total)
	}

	// Warmed destination: the migration shipped the chain ahead of the
	// restore, so the replay is served locally.
	warm := storage.NewDeltaCache(256<<20, nil)
	plan := PlanWarmUp(chain, warm)
	if len(plan) != len(chain) {
		t.Fatalf("cold-node plan has %d segments, want %d", len(plan), len(chain))
	}
	if admitted := WarmUp(plan, warm); admitted != total {
		t.Fatalf("warm-up admitted %d, want %d", admitted, total)
	}
	warmLocal, warmRemote := RestoreChain(chain, warm, pool)
	if warmRemote >= coldRemote {
		t.Fatalf("warm restore remote = %d, not strictly below cold %d", warmRemote, coldRemote)
	}
	if warmRemote != 0 || warmLocal != total {
		t.Fatalf("warm restore split local=%d remote=%d, want %d/0", warmLocal, warmRemote, total)
	}
	cs := warm.Stats()
	if cs.Warmed != int64(len(chain)) || cs.WarmedBytes != total {
		t.Fatalf("warm ledger = %d segs / %d bytes, want %d / %d", cs.Warmed, cs.WarmedBytes, len(chain), total)
	}
}

// TestWarmUpPartialCapacity: a warm-up that does not fit degrades to
// a partial one, and the restore's remote bytes still strictly drop.
func TestWarmUpPartialCapacity(t *testing.T) {
	pool := storage.NewRemoteBackend()
	chain := migChain(pool, 200, 8, 4<<20) // 32 MB chain
	dst := storage.NewDeltaCache(12<<20, nil)

	admitted := WarmUp(PlanWarmUp(chain, dst), dst)
	if admitted <= 0 || admitted > 12<<20 {
		t.Fatalf("partial warm-up admitted %d", admitted)
	}
	_, remote := RestoreChain(chain, dst, pool)
	if remote >= ChainBytes(chain) {
		t.Fatalf("partial warm-up did not reduce remote bytes: %d", remote)
	}
}

// TestWarmUpNeverEvictsPinned: warming a chain into a cache whose
// resident set is pinned (refs>1, a shared branch prefix) must not
// evict the pinned entries — the warm-up is rejected instead.
func TestWarmUpNeverEvictsPinned(t *testing.T) {
	pool := storage.NewRemoteBackend()
	pinned := storage.Addr(1)
	refs := func(a storage.Addr) int {
		if a == pinned {
			return 3 // shared by three live lineages
		}
		return 1
	}
	dst := storage.NewDeltaCache(10<<20, refs)
	dst.Put(pinned, 8<<20)
	if !dst.Contains(pinned) {
		t.Fatal("pinned entry not resident")
	}

	chain := migChain(pool, 300, 2, 6<<20) // needs 12 MB; only 2 MB unpinned room
	admitted := WarmUp(PlanWarmUp(chain, dst), dst)
	if admitted != 0 {
		t.Fatalf("warm-up admitted %d bytes despite pinned working set", admitted)
	}
	if !dst.Contains(pinned) {
		t.Fatal("warm-up evicted a pinned (refs>1) entry")
	}
	cs := dst.Stats()
	if cs.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", cs.Rejected)
	}
	if cs.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", cs.Evictions)
	}
}

// TestPlanWarmUpSkipsResident: segments already at the destination are
// not re-shipped.
func TestPlanWarmUpSkipsResident(t *testing.T) {
	pool := storage.NewRemoteBackend()
	chain := migChain(pool, 400, 4, 1<<20)
	dst := storage.NewDeltaCache(64<<20, nil)
	dst.Put(chain[1].Addr, chain[1].Bytes)
	dst.Put(chain[3].Addr, chain[3].Bytes)

	plan := PlanWarmUp(chain, dst)
	if len(plan) != 2 {
		t.Fatalf("plan has %d segments, want 2", len(plan))
	}
	if plan[0].Addr != chain[0].Addr || plan[1].Addr != chain[2].Addr {
		t.Fatalf("plan picked wrong segments: %+v", plan)
	}
}

// TestRestoreChainPanicsOnLostState: a restore of a segment absent
// from the authoritative pool is state loss and must panic.
func TestRestoreChainPanicsOnLostState(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("restore of pool-absent segment did not panic")
		}
	}()
	pool := storage.NewRemoteBackend()
	cache := storage.NewDeltaCache(64<<20, nil)
	RestoreChain([]ChainSegment{{Addr: 999, Bytes: 1 << 20}}, cache, pool)
}
