package emulab

import (
	"testing"

	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// chainSpec is a three-node chain: a -[shaped]- b -[plain]- c. Node b
// sits on two links, exercising the per-node egress router.
func chainSpec() Spec {
	return Spec{
		Name:  "chain",
		Nodes: []NodeSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Links: []LinkSpec{
			{A: "a", B: "b", Bandwidth: 100 * simnet.Mbps, Delay: 5 * sim.Millisecond},
			{A: "b", B: "c"},
		},
	}
}

func TestMultiLinkNodeRoutesBothWays(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, err := tb.SwapIn(chainSpec())
	if err != nil {
		t.Fatal(err)
	}
	var fromA, fromC sim.Time
	e.Node("b").K.Handle("m", func(from simnet.Addr, m *guest.Message) {
		switch from {
		case "a":
			fromA = s.Now()
			e.Node("b").K.Send("c", 200, &guest.Message{Port: "m"})
		}
	})
	e.Node("c").K.Handle("m", func(simnet.Addr, *guest.Message) { fromC = s.Now() })
	e.Node("a").K.Send("b", 200, &guest.Message{Port: "m"})
	s.RunFor(sim.Second)
	if fromA < 5*sim.Millisecond {
		t.Fatalf("a->b arrived at %v, beat the 5ms link", fromA)
	}
	if fromC <= fromA {
		t.Fatal("b->c relay failed: the multi-link router dropped it")
	}
	if fromC-fromA > sim.Millisecond {
		t.Fatalf("b->c took %v on a plain fabric link", fromC-fromA)
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, _ := tb.SwapIn(chainSpec())
	// a has no route to c (single L2 hop only): the packet vanishes at
	// the router, like a frame to an unknown MAC.
	got := false
	e.Node("c").K.Handle("m", func(simnet.Addr, *guest.Message) { got = true })
	e.Node("a").K.Send("c", 200, &guest.Message{Port: "m"})
	s.RunFor(sim.Second)
	if got {
		t.Fatal("packet crossed two L2 hops without forwarding")
	}
}

func TestTwoExperimentsCoexist(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 20)
	e1, err := tb.SwapIn(Spec{Name: "x1", Nodes: []NodeSpec{{Name: "x1a"}, {Name: "x1b"}},
		Links: []LinkSpec{{A: "x1a", B: "x1b"}}})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := tb.SwapIn(Spec{Name: "x2", Nodes: []NodeSpec{{Name: "x2a"}, {Name: "x2b"}},
		Links: []LinkSpec{{A: "x2a", B: "x2b", Bandwidth: 10 * simnet.Mbps, Delay: sim.Millisecond}}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.FreeNodes != 20-2-3 {
		t.Fatalf("free = %d", tb.FreeNodes)
	}
	ok1, ok2 := false, false
	e1.Node("x1b").K.Handle("m", func(simnet.Addr, *guest.Message) { ok1 = true })
	e2.Node("x2b").K.Handle("m", func(simnet.Addr, *guest.Message) { ok2 = true })
	e1.Node("x1a").K.Send("x1b", 100, &guest.Message{Port: "m"})
	e2.Node("x2a").K.Send("x2b", 100, &guest.Message{Port: "m"})
	s.RunFor(sim.Second)
	if !ok1 || !ok2 {
		t.Fatalf("cross-experiment interference: %v %v", ok1, ok2)
	}
}

func TestEventScheduleUnknownNode(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, _ := tb.SwapIn(chainSpec())
	if err := e.Events.Schedule("ghost", sim.Second, func() {}); err == nil {
		t.Fatal("scheduled on a ghost node")
	}
}

func TestEventDispatchCountsAndOrder(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, _ := tb.SwapIn(chainSpec())
	var order []int
	e.Events.Schedule("a", 2*sim.Second, func() { order = append(order, 2) })
	e.Events.Schedule("a", 1*sim.Second, func() { order = append(order, 1) })
	e.Events.Schedule("b", 3*sim.Second, func() { order = append(order, 3) })
	s.RunFor(5 * sim.Second)
	if e.Events.Dispatched != 3 {
		t.Fatalf("dispatched = %d", e.Events.Dispatched)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order: %v", order)
	}
	if e.Events.Mistimed != 0 {
		t.Fatalf("mistimed = %d without any checkpoint", e.Events.Mistimed)
	}
}

func TestLinkLossConfigured(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, err := tb.SwapIn(Spec{
		Name:  "lossy",
		Nodes: []NodeSpec{{Name: "a"}, {Name: "b"}},
		Links: []LinkSpec{{A: "a", B: "b", Bandwidth: 100 * simnet.Mbps, Loss: 1.0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	e.Node("b").K.Handle("m", func(simnet.Addr, *guest.Message) { got++ })
	for i := 0; i < 10; i++ {
		e.Node("a").K.Send("b", 100, &guest.Message{Port: "m"})
	}
	s.RunFor(sim.Second)
	if got != 0 {
		t.Fatalf("loss=1.0 delivered %d packets", got)
	}
	if e.DelayNodes[0].Forward.PLRDrops != 10 {
		t.Fatalf("PLR drops = %d", e.DelayNodes[0].Forward.PLRDrops)
	}
}
