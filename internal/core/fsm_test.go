package core

import (
	"errors"
	"testing"

	"emucheck/internal/notify"
	"emucheck/internal/sim"
)

// dropFirstFor suppresses the first checkpoint delivery addressed to
// the named daemon — the lost-notification fault.
func dropFirstFor(bus *notify.Bus, owner string) {
	dropped := false
	bus.Inject = func(m *notify.Msg, o string) (bool, sim.Time) {
		if !dropped && m.Topic == notify.TopicCheckpoint && o == owner {
			dropped = true
			return true, 0
		}
		return false, 0
	}
}

// TestStragglerTimeoutAbortsEpoch: node b never hears the checkpoint
// notification; the save deadline expires, the epoch aborts with b
// named as the straggler, and node a (which saved and froze) thaws
// back to service.
func TestStragglerTimeoutAbortsEpoch(t *testing.T) {
	r := newRig(1)
	r.s.RunFor(sim.Second)
	dropFirstFor(r.bus, "b")

	var res *Result
	var cerr error
	err := r.coord.Checkpoint(Options{SaveDeadline: 10 * sim.Second}, func(x *Result, e error) { res, cerr = x, e })
	if err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(30 * sim.Second)

	if res != nil {
		t.Fatalf("epoch committed despite a deaf member: %+v", res)
	}
	var ee *EpochError
	if !errors.As(cerr, &ee) {
		t.Fatalf("want *EpochError, got %v", cerr)
	}
	if ee.Phase != "barrier" || len(ee.Stragglers) != 1 || ee.Stragglers[0] != "b" {
		t.Fatalf("wrong abort: %+v", ee)
	}
	if r.coord.Aborted != 1 || r.coord.LastAbort != ee {
		t.Fatalf("abort not recorded: aborted=%d", r.coord.Aborted)
	}
	if len(r.coord.History) != 0 {
		t.Fatalf("aborted epoch leaked into History")
	}
	// The member that saved must be back in service, and the delay node
	// thawed.
	if r.ka.Suspended() || r.kb.Suspended() {
		t.Fatalf("members still frozen after abort: a=%v b=%v", r.ka.Suspended(), r.kb.Suspended())
	}
	if r.dn.Forward.Frozen() || r.dn.Reverse.Frozen() {
		t.Fatalf("delay node still frozen after abort")
	}
	if r.coord.Busy() {
		t.Fatalf("coordinator still busy after abort")
	}
}

// TestAbortThenRetryFreshEpoch: after an aborted epoch, a retry runs
// under a fresh epoch number and commits normally.
func TestAbortThenRetryFreshEpoch(t *testing.T) {
	r := newRig(2)
	r.s.RunFor(sim.Second)
	dropFirstFor(r.bus, "b")

	var firstErr error
	if err := r.coord.Checkpoint(Options{SaveDeadline: 10 * sim.Second}, func(_ *Result, e error) { firstErr = e }); err != nil {
		t.Fatal(err)
	}
	first := r.coord.Epoch()
	r.s.RunFor(30 * sim.Second)
	if firstErr == nil {
		t.Fatal("first epoch should have aborted")
	}

	// The injector's budget is spent: the retry's notifications all
	// deliver, and the epoch must commit under a new number.
	var res *Result
	if err := r.coord.Checkpoint(Options{SaveDeadline: 10 * sim.Second}, func(x *Result, e error) {
		if e != nil {
			t.Errorf("retry aborted: %v", e)
		}
		res = x
	}); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(30 * sim.Second)
	if res == nil {
		t.Fatal("retry never committed")
	}
	if res.Epoch != first+1 {
		t.Fatalf("retry epoch %d, want %d", res.Epoch, first+1)
	}
	if len(r.coord.History) != 1 || r.coord.History[0] != res {
		t.Fatalf("committed epoch missing from History")
	}
	if r.ka.Suspended() || r.kb.Suspended() {
		t.Fatalf("members frozen after committed epoch")
	}
}

// TestSaveErrorAbortsEpoch: a member whose hypervisor refuses the save
// (crashed) aborts the epoch in the save phase instead of panicking.
func TestSaveErrorAbortsEpoch(t *testing.T) {
	r := newRig(3)
	r.s.RunFor(sim.Second)
	r.coord.nodes[1].HV.Crash()

	var cerr error
	if err := r.coord.Checkpoint(Options{}, func(_ *Result, e error) { cerr = e }); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(10 * sim.Second)
	var ee *EpochError
	if !errors.As(cerr, &ee) {
		t.Fatalf("want *EpochError, got %v", cerr)
	}
	if ee.Phase != "save" || ee.Node != "b" {
		t.Fatalf("wrong abort: %+v", ee)
	}
	if r.ka.Suspended() {
		t.Fatalf("surviving member left frozen")
	}
	if r.kb.Crashed() != true {
		t.Fatalf("crashed member lost its crash mark")
	}
}

// TestPhaseHookObservesFSM traces announced -> saving -> committed on
// a clean epoch and ... -> aborted on a straggled one.
func TestPhaseHookObservesFSM(t *testing.T) {
	r := newRig(4)
	r.s.RunFor(sim.Second)
	var phases []Phase
	r.coord.OnPhase = func(_ int, ph Phase) { phases = append(phases, ph) }

	if err := r.coord.Checkpoint(Options{}, nil); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(30 * sim.Second)
	want := []Phase{PhaseAnnounced, PhaseSaving, PhaseCommitted}
	if len(phases) != len(want) {
		t.Fatalf("phases %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases %v, want %v", phases, want)
		}
	}

	phases = nil
	dropFirstFor(r.bus, "a")
	if err := r.coord.Checkpoint(Options{SaveDeadline: 5 * sim.Second}, nil); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(30 * sim.Second)
	if len(phases) == 0 || phases[len(phases)-1] != PhaseAborted {
		t.Fatalf("straggled epoch phases %v, want trailing aborted", phases)
	}
}

// TestPeriodicCheckpointerRetriesPastAbort: the capture loop counts
// the abort and keeps checkpointing with fresh epochs.
func TestPeriodicCheckpointerRetriesPastAbort(t *testing.T) {
	r := newRig(5)
	r.s.RunFor(sim.Second)
	dropFirstFor(r.bus, "b")
	var abortSeen error
	pc := &PeriodicCheckpointer{
		C: r.coord, Interval: 5 * sim.Second,
		Opts:    Options{Incremental: true, SaveDeadline: 3 * sim.Second},
		OnAbort: func(e error) { abortSeen = e },
	}
	pc.Start(3)
	r.s.RunFor(2 * sim.Minute)
	if pc.Aborts() != 1 || abortSeen == nil {
		t.Fatalf("aborts=%d, err=%v; want exactly the dropped epoch", pc.Aborts(), abortSeen)
	}
	if pc.Count() != 3 {
		t.Fatalf("completed %d checkpoints, want 3", pc.Count())
	}
	if got := len(r.coord.History); got != 3 {
		t.Fatalf("History has %d epochs, want 3 (no aborted commits)", got)
	}
}

// TestSuspendRaceAbortsEpochWithoutDeadline: a save whose suspend
// races an external freeze must abort the epoch even with no save
// deadline armed (regression: the failure was swallowed and the
// barrier hung forever).
func TestSuspendRaceAbortsEpochWithoutDeadline(t *testing.T) {
	r := newRig(6)
	r.s.RunFor(sim.Second)
	var cerr error
	committed := false
	if err := r.coord.Checkpoint(Options{}, func(res *Result, e error) { cerr, committed = e, res != nil }); err != nil {
		t.Fatal(err)
	}
	// Freeze member b out-of-band before its scheduled suspend fires:
	// the save's own suspend will then error.
	if err := r.kb.Suspend(func() {}); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(30 * sim.Second)
	if committed {
		t.Fatal("epoch committed despite the suspend race")
	}
	var ee *EpochError
	if !errors.As(cerr, &ee) {
		t.Fatalf("want *EpochError, got %v (coordinator busy=%v)", cerr, r.coord.Busy())
	}
	if ee.Phase != "save" || ee.Node != "b" {
		t.Fatalf("wrong abort: %+v", ee)
	}
	if r.coord.Busy() {
		t.Fatal("coordinator still busy — the epoch hung")
	}
	if r.ka.Suspended() {
		t.Fatal("member a left frozen")
	}
}
