package swap

import (
	"testing"

	"emucheck/internal/core"
	"emucheck/internal/guest"
	"emucheck/internal/node"
	"emucheck/internal/notify"
	"emucheck/internal/ntpsim"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
	"emucheck/internal/xen"
	"emucheck/internal/xfer"
)

type rig struct {
	s           *sim.Simulator
	k           *guest.Kernel
	hv          *xen.Hypervisor
	vol         *storage.Volume
	m           *Manager
	dirtyCursor int64
}

func newRig(seed int64) *rig {
	s := sim.New(seed)
	p := node.DefaultParams()
	mach := node.NewMachine(s, "n0", p)
	k := guest.New(mach, p, guest.DefaultConfig())
	vol := storage.NewVolume(mach.Disk, 6<<30, storage.Optimized)
	vol.Age()
	k.Backend = vol
	hv := xen.New(mach, p, k)
	bus := notify.NewBus(s)
	y := ntpsim.New(s, ntpsim.DefaultModel(), seed)
	y.Start("n0")
	coord := core.NewCoordinator(s, bus, y, []*core.Member{{Name: "n0", HV: hv}}, nil)
	server := xfer.NewServer(s, 0)
	sn := &Node{Name: "n0", HV: hv, Vol: vol, GoldenCached: true}
	m := NewManager(s, server, coord, []*Node{sn})
	return &rig{s: s, k: k, hv: hv, vol: vol, m: m}
}

// dirty writes n bytes of new data through the guest's volume, starting
// at a fresh region each call (sessions generate new data, §7.2).
func (r *rig) dirty(n int64) {
	off := r.dirtyCursor + 1<<30
	r.dirtyCursor += n
	for w := int64(0); w < n; w += 4 << 20 {
		r.vol.Write(off+w, 4<<20, nil)
	}
	r.s.RunFor(30 * sim.Second)
}

func TestSwapOutPreservesStateAndReleases(t *testing.T) {
	r := newRig(1)
	r.s.RunFor(sim.Second)
	r.dirty(64 << 20)
	var reps []*OutReport
	if err := r.m.SwapOut(DefaultOptions(), func(x []*OutReport, _ error) { reps = x }); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(10 * sim.Minute)
	if reps == nil {
		t.Fatal("swap-out incomplete")
	}
	if !r.m.SwappedOut() || !r.k.Suspended() {
		t.Fatal("experiment not frozen after swap-out")
	}
	rep := reps[0]
	if rep.PreCopyBytes < 60<<20 {
		t.Fatalf("pre-copy moved %d", rep.PreCopyBytes)
	}
	if rep.MemoryBytes <= 0 || rep.MergedBytes <= 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Duration() <= 0 {
		t.Fatal("zero duration")
	}
}

func TestSwapCycleConcealsDowntime(t *testing.T) {
	r := newRig(2)
	r.s.RunFor(sim.Second)
	r.dirty(32 << 20)
	v0 := r.k.Monotonic()
	realBefore := r.s.Now()
	var outDone, inDone bool
	r.m.SwapOut(DefaultOptions(), func([]*OutReport, error) { outDone = true })
	r.s.RunFor(5 * sim.Minute)
	if !outDone {
		t.Fatal("swap-out incomplete")
	}
	// Stay swapped out for an hour of real time.
	r.s.RunFor(sim.Hour)
	r.m.SwapIn(DefaultOptions(), func([]*InReport, error) { inDone = true })
	r.s.RunFor(5 * sim.Minute)
	if !inDone {
		t.Fatal("swap-in incomplete")
	}
	if r.k.Suspended() {
		t.Fatal("guest not resumed")
	}
	virtElapsed := r.k.Monotonic() - v0
	realElapsed := r.s.Now() - realBefore
	// Virtual time must exclude essentially the whole swapped-out hour.
	if virtElapsed > realElapsed/10 {
		t.Fatalf("swap leaked into virtual time: %v of %v", virtElapsed, realElapsed)
	}
}

func TestLazySwapInFasterThanEager(t *testing.T) {
	inTime := func(lazy bool) sim.Time {
		r := newRig(3)
		r.s.RunFor(sim.Second)
		r.dirty(256 << 20)
		o := DefaultOptions()
		r.m.SwapOut(o, func([]*OutReport, error) {})
		r.s.RunFor(10 * sim.Minute)
		var rep []*InReport
		o.Lazy = lazy
		r.m.SwapIn(o, func(x []*InReport, _ error) { rep = x })
		r.s.RunFor(20 * sim.Minute)
		if rep == nil {
			return -1
		}
		return rep[0].Duration()
	}
	lazy := inTime(true)
	eager := inTime(false)
	if lazy < 0 || eager < 0 {
		t.Fatal("swap-in incomplete")
	}
	if lazy >= eager {
		t.Fatalf("lazy (%v) not faster than eager (%v)", lazy, eager)
	}
}

func TestSwapInTimesGrowWithoutLazy(t *testing.T) {
	// Four swap cycles, each adding ~128 MB: eager swap-in times grow
	// with the aggregated delta; lazy stays roughly constant (§7.2).
	times := func(lazy bool) []sim.Time {
		r := newRig(4)
		o := DefaultOptions()
		o.Lazy = lazy
		var out []sim.Time
		for cyc := 0; cyc < 4; cyc++ {
			r.s.RunFor(sim.Second)
			r.dirty(128 << 20)
			ok := false
			r.m.SwapOut(o, func([]*OutReport, error) { ok = true })
			r.s.RunFor(15 * sim.Minute)
			if !ok {
				t.Fatal("swap-out stuck")
			}
			var rep []*InReport
			r.m.SwapIn(o, func(x []*InReport, _ error) { rep = x })
			r.s.RunFor(30 * sim.Minute)
			if rep == nil {
				t.Fatal("swap-in stuck")
			}
			out = append(out, rep[0].Duration())
		}
		return out
	}
	eager := times(false)
	lazy := times(true)
	if eager[3] <= eager[0]*3/2 {
		t.Fatalf("eager swap-in did not grow: %v", eager)
	}
	spread := lazy[3] - lazy[0]
	if spread < 0 {
		spread = -spread
	}
	if spread > lazy[0]/2 {
		t.Fatalf("lazy swap-in not constant: %v", lazy)
	}
	if eager[3] <= lazy[3]*2 {
		t.Fatalf("4th swap-in: eager %v vs lazy %v lacks the paper's gap", eager[3], lazy[3])
	}
}

func TestGoldenFetchAddsFlatCost(t *testing.T) {
	r := newRig(5)
	r.s.RunFor(sim.Second)
	r.dirty(16 << 20)
	r.m.Nodes[0].GoldenCached = false
	o := DefaultOptions()
	r.m.SwapOut(o, func([]*OutReport, error) {})
	r.s.RunFor(10 * sim.Minute)
	var rep []*InReport
	r.m.SwapIn(o, func(x []*InReport, _ error) { rep = x })
	r.s.RunFor(20 * sim.Minute)
	if rep == nil {
		t.Fatal("swap-in incomplete")
	}
	if !rep[0].GoldenFetched {
		t.Fatal("golden fetch not recorded")
	}
	if rep[0].Duration() < GoldenFetchTime {
		t.Fatalf("duration %v below Frisbee time", rep[0].Duration())
	}
	if !r.m.Nodes[0].GoldenCached {
		t.Fatal("golden not cached after fetch")
	}
}

func TestDoubleSwapErrors(t *testing.T) {
	r := newRig(6)
	if err := r.m.SwapIn(DefaultOptions(), nil); err == nil {
		t.Fatal("swap-in while running succeeded")
	}
	r.s.RunFor(sim.Second)
	r.m.SwapOut(DefaultOptions(), func([]*OutReport, error) {})
	r.s.RunFor(10 * sim.Minute)
	if err := r.m.SwapOut(DefaultOptions(), nil); err == nil {
		t.Fatal("double swap-out succeeded")
	}
}
