package timetravel

import (
	"testing"

	"emucheck/internal/sim"
)

func TestPerturbKindStrings(t *testing.T) {
	for k, want := range map[PerturbKind]string{
		Deterministic: "deterministic",
		SeedChange:    "seed-change",
		TimeDilation:  "time-dilation",
		PacketReorder: "packet-reorder",
	} {
		if k.String() != want {
			t.Fatalf("%d = %q", k, k.String())
		}
	}
}

func TestDeepBranchingTree(t *testing.T) {
	// Build a comb: a spine of checkpoints, with a branch hanging off
	// each spine node, exercising rollback bookkeeping at depth.
	tr := NewTree(1 << 40)
	var spine []NodeID
	for i := 0; i < 10; i++ {
		n, err := tr.Record(res(100), sim.Time(i+1)*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		spine = append(spine, n.ID)
	}
	for _, id := range spine[:9] {
		if _, err := tr.Rollback(id, Perturbation{Kind: SeedChange}); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Record(res(10), 99*sim.Second); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tr.Leaves()); got != 10 {
		t.Fatalf("leaves = %d, want 10 (spine tip + 9 branches)", got)
	}
	// Depth of the spine tip is unchanged by branching.
	if d := tr.Depth(spine[9]); d != 10 {
		t.Fatalf("spine depth = %d", d)
	}
}

func TestRollbackToRootReplaysFromStart(t *testing.T) {
	tr := NewTree(0)
	tr.Record(res(1), 5*sim.Second)
	plan, err := tr.Rollback(Root, Perturbation{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Target != 0 {
		t.Fatalf("root target = %v", plan.Target)
	}
	if tr.Head() != Root {
		t.Fatal("head not at root")
	}
}

func TestPruneBranchThenSpineContinues(t *testing.T) {
	tr := NewTree(0)
	n1, _ := tr.Record(res(10), sim.Second)
	tr.Record(res(10), 2*sim.Second)
	tr.Rollback(n1.ID, Perturbation{})
	branch, _ := tr.Record(res(10), 90*sim.Second)
	if err := tr.Prune(branch.ID); err != nil {
		t.Fatal(err)
	}
	// Head fell back to the branch's parent; recording continues there.
	if tr.Head() != n1.ID {
		t.Fatalf("head = %d", tr.Head())
	}
	n3, err := tr.Record(res(10), 3*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n3.Parent != n1.ID {
		t.Fatal("parentage broken after prune")
	}
}
