package swap

import (
	"testing"

	"emucheck/internal/sim"
	"emucheck/internal/storage"
)

// TestCloneAwareRestoreMovesOnlyMissingSegments: under BranchOptions a
// swap-in consults the node's resident-segment set — chain segments the
// node already holds (its own prior cycles, or a fan-out's multicast
// staging) move zero bytes, and wiping the set (hardware reuse) falls
// back to the full replay.
func TestCloneAwareRestoreMovesOnlyMissingSegments(t *testing.T) {
	r := newRig(21)
	r.s.RunFor(sim.Second)
	o := BranchOptions()

	r.dirty(32 << 20)
	r.cycle(t, o)
	r.dirty(8 << 20)
	_, in2 := r.cycle(t, o)

	// Every committed segment was on this very node at swap-out time, so
	// the restore stages no disk bytes (memory still moves in full).
	if in2.DeltaBytes != 0 {
		t.Fatalf("clone-aware restore staged %d disk bytes for fully resident chain", in2.DeltaBytes)
	}
	if in2.MemoryBytes <= 0 {
		t.Fatal("restore moved no memory image")
	}

	// Hardware reuse wipes the node's cache: the next restore must move
	// the whole replay chain again.
	var outs []*OutReport
	if err := r.m.SwapOut(o, func(x []*OutReport, _ error) { outs = x }); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(15 * sim.Minute)
	if outs == nil {
		t.Fatal("swap-out incomplete")
	}
	lin := r.m.Lineage("n0")
	r.m.Nodes[0].Resident = nil
	var ins []*InReport
	if err := r.m.SwapIn(o, func(x []*InReport, _ error) { ins = x }); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(15 * sim.Minute)
	if ins == nil {
		t.Fatal("swap-in incomplete")
	}
	if ins[0].DeltaBytes != lin.ReplayBytes() {
		t.Fatalf("cold restore staged %d bytes, want the full replay %d", ins[0].DeltaBytes, lin.ReplayBytes())
	}
}

// TestPlainIncrementalIgnoresResidency: without CloneAware the restore
// must keep moving the full base + chain replay even when the node
// holds every segment — the pre-branch pipeline is unchanged.
func TestPlainIncrementalIgnoresResidency(t *testing.T) {
	r := newRig(22)
	r.s.RunFor(sim.Second)
	o := IncrementalOptions()
	r.dirty(16 << 20)
	r.cycle(t, o)
	r.m.Nodes[0].MarkResident(r.m.Lineage("n0"))
	r.dirty(4 << 20)
	_, in := r.cycle(t, o)
	if in.DeltaBytes != r.m.Lineage("n0").ReplayBytes() {
		t.Fatalf("plain incremental staged %d bytes, want full replay %d",
			in.DeltaBytes, r.m.Lineage("n0").ReplayBytes())
	}
}

// TestAdoptedForkSharesPrefix: a branch manager adopting a forked
// lineage restores only what the fan-out staging did not already mark
// resident — the shared prefix moves nothing, divergence moves in full.
func TestAdoptedForkSharesPrefix(t *testing.T) {
	cs := storage.NewChainStore()
	parent := newRig(23)
	parent.m.Chains = cs
	parent.s.RunFor(sim.Second)
	o := BranchOptions()
	parent.dirty(24 << 20)
	parent.cycle(t, o)
	parent.dirty(6 << 20)
	parent.cycle(t, o)
	plin := parent.m.Lineage("n0")

	// Branch: fork the chain, adopt it on a fresh rig, and stage the
	// shared prefix the way Cluster.Branch's multicast does.
	br := newRig(24)
	br.m.Chains = cs
	fork := plin.Fork()
	br.m.AdoptLineage("n0", fork)
	br.m.Nodes[0].MarkResident(fork)
	if fork.SharedBytes() != fork.ReplayBytes() {
		t.Fatalf("fork shares %d of %d bytes, want all", fork.SharedBytes(), fork.ReplayBytes())
	}

	// The branch diverges and swap-cycles: its first swap-out is a full
	// memory save, but the disk restore stages only... nothing beyond
	// what its own swap-out just committed (which is resident), because
	// the inherited prefix was staged by the fan-out.
	br.s.RunFor(sim.Second)
	br.dirty(4 << 20)
	_, in := br.cycle(t, o)
	if in.DeltaBytes != 0 {
		t.Fatalf("branch restore staged %d bytes despite resident prefix + own commit", in.DeltaBytes)
	}

	// Cold branch restore (reused hardware): stages the full fork replay
	// including the shared prefix — but the prefix bytes are still
	// shared server-side (stored once for both chains).
	if cs.StoredBytes() >= plin.ReplayBytes()+fork.ReplayBytes() {
		t.Fatalf("store holds %d bytes — fork duplicated the prefix (parent %d + fork %d)",
			cs.StoredBytes(), plin.ReplayBytes(), fork.ReplayBytes())
	}
}
