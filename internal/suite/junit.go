package suite

import (
	"encoding/xml"
	"fmt"
	"strings"
)

// JUnit XML shapes, matching the de-facto schema CI systems render.
// The time attributes carry *simulated* seconds: deterministic, so the
// XML for a given seed is stable byte-for-byte across machines.
type junitFailure struct {
	Message string `xml:"message,attr"`
	Body    string `xml:",chardata"`
}

type junitCase struct {
	XMLName   xml.Name      `xml:"testcase"`
	Name      string        `xml:"name,attr"`
	Classname string        `xml:"classname,attr"`
	Time      string        `xml:"time,attr"`
	Error     *junitFailure `xml:"error,omitempty"`
	Failure   *junitFailure `xml:"failure,omitempty"`
}

type junitSuite struct {
	XMLName  xml.Name    `xml:"testsuite"`
	Name     string      `xml:"name,attr"`
	Tests    int         `xml:"tests,attr"`
	Failures int         `xml:"failures,attr"`
	Errors   int         `xml:"errors,attr"`
	Time     string      `xml:"time,attr"`
	Cases    []junitCase `xml:"testcase"`
}

// failureBody collects everything that went wrong with a run into the
// failure element's text: failed invariants, failed scenario checks,
// and event errors.
func failureBody(rr RunReport) (message, body string) {
	var lines []string
	for _, inv := range rr.Invariants {
		if !inv.Ok {
			lines = append(lines, fmt.Sprintf("invariant %s: %s", inv.Name, inv.Detail))
		}
	}
	if rr.Result != nil {
		for _, ch := range rr.Result.Checks {
			if !ch.Ok {
				lines = append(lines, fmt.Sprintf("check: %s (%s)", ch.Desc, ch.Detail))
			}
		}
		for _, ev := range rr.Result.EventErrors {
			lines = append(lines, "event error: "+ev)
		}
	}
	if len(lines) == 0 {
		return "run failed", ""
	}
	return lines[0], strings.Join(lines, "\n")
}

// JUnit renders the corpus report as JUnit XML under the given suite
// name. Scenarios that errored before running become <error> cases;
// failed assertions or invariants become <failure> cases.
func (r *Report) JUnit(suiteName string) ([]byte, error) {
	js := junitSuite{Name: suiteName, Tests: len(r.Runs)}
	var simTotal float64
	for _, rr := range r.Runs {
		simTotal += rr.SimSeconds
		c := junitCase{
			Name:      rr.Name,
			Classname: suiteName + "." + classname(rr.Source),
			Time:      fmt.Sprintf("%.3f", rr.SimSeconds),
		}
		switch {
		case rr.Error != "":
			js.Errors++
			c.Error = &junitFailure{Message: "scenario did not run", Body: rr.Error}
		case !rr.Pass:
			js.Failures++
			msg, body := failureBody(rr)
			c.Failure = &junitFailure{Message: msg, Body: body}
		}
		js.Cases = append(js.Cases, c)
	}
	js.Time = fmt.Sprintf("%.3f", simTotal)
	data, err := xml.MarshalIndent(js, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), append(data, '\n')...), nil
}

// classname turns a run's source into a JUnit class segment: generated
// runs group under "generated", file runs under the file's own name
// with path separators and the extension stripped.
func classname(source string) string {
	if source == "" || source == "generated" {
		return "generated"
	}
	s := strings.TrimSuffix(source, ".json")
	s = strings.ReplaceAll(s, "/", ".")
	return strings.TrimPrefix(s, ".")
}
