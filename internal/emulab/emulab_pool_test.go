package emulab

import (
	"testing"

	"emucheck/internal/core"
	"emucheck/internal/sim"
)

func TestStatelessSwapOutRetainsDefinition(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, err := tb.SwapIn(twoNodeSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	name := e.Spec.Name
	tb.SwapOutStateless(e)
	sp, ok := tb.Definition(name)
	if !ok {
		t.Fatalf("definition %q not retained", name)
	}
	if len(sp.Nodes) != 2 {
		t.Fatalf("retained spec mangled: %+v", sp)
	}
	// Re-admission by name boots a fresh instance of the definition.
	e2, err := tb.SwapInByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Spec.Name != name {
		t.Fatalf("re-admitted as %q", e2.Spec.Name)
	}
	if _, still := tb.Definition(name); still {
		t.Fatal("definition should clear while swapped in")
	}
	if _, err := tb.SwapInByName("ghost"); err == nil {
		t.Fatal("unknown definition admitted")
	}
}

func TestStatelessSwapOutHaltsGuests(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 10)
	e, err := tb.SwapIn(twoNodeSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	// An infinite guest loop; after the stateless swap-out its firewall
	// engages for good, so the discarded instance stops scheduling work.
	ticks := 0
	k := e.Node("a").K
	var step func()
	step = func() { k.Usleep(10*sim.Millisecond, func() { ticks++; step() }) }
	step()
	s.RunFor(sim.Second)
	before := ticks
	if before == 0 {
		t.Fatal("loop never ran")
	}
	tb.SwapOutStateless(e)
	s.RunFor(10 * sim.Second)
	if ticks > before+2 {
		t.Fatalf("discarded instance kept running: %d -> %d ticks", before, ticks)
	}
}

func TestReleaseAcquireHardware(t *testing.T) {
	s := sim.New(1)
	tb := NewTestbed(s, 4)
	e, err := tb.SwapIn(twoNodeSpec(true))
	if err != nil {
		t.Fatal(err)
	}
	if tb.InUse() != 3 { // two nodes plus the shaped link's delay node
		t.Fatalf("in use = %d", tb.InUse())
	}
	tb.ReleaseHardware(e)
	tb.ReleaseHardware(e) // idempotent
	if tb.FreeNodes != 4 || !e.Released() {
		t.Fatalf("free = %d released = %v", tb.FreeNodes, e.Released())
	}
	// Another experiment can take the freed nodes...
	e2, err := tb.SwapIn(Spec{Name: "x2", Nodes: []NodeSpec{
		{Name: "m0", Swappable: true}, {Name: "m1", Swappable: true},
		{Name: "m2", Swappable: true}}})
	if err != nil {
		t.Fatal(err)
	}
	// ...after which the parked one cannot re-acquire.
	if err := tb.AcquireHardware(e); err == nil {
		t.Fatal("acquired beyond the pool")
	}
	tb.ReleaseHardware(e2)
	if err := tb.AcquireHardware(e); err != nil {
		t.Fatal(err)
	}
	if err := tb.AcquireHardware(e); err != nil {
		t.Fatal("second acquire should be a no-op")
	}
	if tb.FreeNodes != 1 {
		t.Fatalf("free = %d", tb.FreeNodes)
	}
}

func TestSpecDemandHelpers(t *testing.T) {
	sp := Spec{
		Name: "d",
		Nodes: []NodeSpec{
			{Name: "a", Swappable: true}, {Name: "b", Swappable: true}, {Name: "c"},
		},
		Links: []LinkSpec{
			{A: "a", B: "b", Delay: 5 * sim.Millisecond}, // shaped: delay node
			{A: "b", B: "c"}, // raw fabric
		},
	}
	if n := sp.NodesNeeded(); n != 4 {
		t.Fatalf("NodesNeeded = %d", n)
	}
	if sp.Swappable() {
		t.Fatal("spec with a non-swappable node reported swappable")
	}
	sp.Nodes[2].Swappable = true
	if !sp.Swappable() {
		t.Fatal("all-swappable spec reported unswappable")
	}
	if (Spec{}).Swappable() {
		t.Fatal("empty spec reported swappable")
	}
}

func TestSharedBusScopesCheckpoints(t *testing.T) {
	// Two experiments on one testbed checkpoint independently: each
	// coordinator's notifications are scoped, so epochs never cross.
	s := sim.New(9)
	tb := NewTestbed(s, 8)
	mk := func(name string) *Experiment {
		e, err := tb.SwapIn(Spec{Name: name, Nodes: []NodeSpec{
			{Name: name + "0", Swappable: true}, {Name: name + "1", Swappable: true}}})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	ea, eb := mk("expA"), mk("expB")
	s.RunFor(sim.Second)
	doneA, doneB := 0, 0
	if err := ea.Coord.Checkpoint(core.Options{Incremental: true}, func(*core.Result, error) { doneA++ }); err != nil {
		t.Fatal(err)
	}
	if err := eb.Coord.Checkpoint(core.Options{Incremental: true}, func(*core.Result, error) { doneB++ }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Minute)
	if doneA != 1 || doneB != 1 {
		t.Fatalf("checkpoints: A=%d B=%d", doneA, doneB)
	}
	// Each experiment saved exactly its own two nodes.
	if n := len(ea.Coord.History[0].Images); n != 2 {
		t.Fatalf("A images = %d", n)
	}
	if n := len(eb.Coord.History[0].Images); n != 2 {
		t.Fatalf("B images = %d", n)
	}
}
