package evalrun

import (
	"fmt"

	"emucheck/internal/apps"
	"emucheck/internal/core"
	"emucheck/internal/fsmodel"
	"emucheck/internal/guest"
	"emucheck/internal/metrics"
	"emucheck/internal/node"
	"emucheck/internal/notify"
	"emucheck/internal/ntpsim"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
	"emucheck/internal/swap"
	"emucheck/internal/xen"
	"emucheck/internal/xfer"
)

// ---------------------------------------------------------------- Fig 8

// Fig8Result compares Bonnie++ throughput on Base / Branch-Orig /
// Branch storage for the five operation classes.
type Fig8Result struct {
	// MBps[config][op]
	MBps map[string]map[string]float64
	// FreshWriteOverheadPct is Branch-vs-Base block-write overhead on a
	// fresh disk (paper: 17%).
	FreshWriteOverheadPct float64
	// AgedWriteOverheadPct is the same after aging (paper: ~2%).
	AgedWriteOverheadPct float64
	// OrigWriteSlowdownPct is Branch-Orig block writes vs Branch
	// (paper: 74% slower).
	OrigWriteSlowdownPct float64
}

// fig8Run measures each Bonnie operation class on its own fresh volume
// of the given mode (each bar in the figure is an independent run).
func fig8Run(seed int64, mode storage.Mode, aged bool, fileMB int64) map[string]float64 {
	out := make(map[string]float64)
	for _, op := range apps.BonnieOps {
		s := sim.New(seed)
		p := node.DefaultParams()
		m := node.NewMachine(s, "disk0", p)
		k := guest.New(m, p, guest.DefaultConfig())
		v := storage.NewVolume(m.Disk, 6<<30, mode)
		if aged {
			v.Age()
		}
		k.Backend = v
		b := apps.NewBonnie(k)
		b.FileBytes = fileMB << 20
		if op == apps.BlockRewrites || op == apps.BlockReads || op == apps.CharReads {
			// Reads and rewrites operate on previously written data:
			// pre-populate the file through the COW store, then age the
			// measurement to exclude population.
			done := false
			b.Run(apps.BlockWrites, func(float64) { done = true })
			s.RunFor(2 * sim.Hour)
			if !done {
				panic("fig8: populate incomplete")
			}
		}
		done := false
		b.Run(op, func(mbps float64) { out[op.String()] = mbps; done = true })
		s.RunFor(2 * sim.Hour)
		if !done {
			panic("fig8: " + op.String() + " incomplete")
		}
	}
	return out
}

// Fig8 runs the three configurations (Base, fresh Branch-Orig, fresh
// Branch) plus an aged Branch pass for the overhead comparison.
func Fig8(seed int64, fileMB int64) *Fig8Result {
	res := &Fig8Result{MBps: make(map[string]map[string]float64)}
	res.MBps["Base"] = fig8Run(seed, storage.Raw, false, fileMB)
	res.MBps["Branch-Orig"] = fig8Run(seed, storage.OriginalLVM, false, fileMB)
	res.MBps["Branch"] = fig8Run(seed, storage.Optimized, false, fileMB)
	aged := fig8Run(seed, storage.Optimized, true, fileMB)

	bw := "Block-Writes"
	base, branch, orig := res.MBps["Base"][bw], res.MBps["Branch"][bw], res.MBps["Branch-Orig"][bw]
	res.FreshWriteOverheadPct = (base - branch) / base * 100
	res.AgedWriteOverheadPct = (base - aged[bw]) / base * 100
	res.OrigWriteSlowdownPct = (branch - orig) / branch * 100
	return res
}

// Render prints the figure's bar groups plus the headline ratios.
func (r *Fig8Result) Render() string {
	t := &metrics.Table{Header: []string{"operation", "Base", "Branch-Orig", "Branch"}}
	for _, op := range apps.BonnieOps {
		name := op.String()
		t.AddRow(name, r.MBps["Base"][name], r.MBps["Branch-Orig"][name], r.MBps["Branch"][name])
	}
	s := t.String()
	s += fmt.Sprintf("\nfresh-disk block-write overhead: paper 17%%, measured %.0f%%\n", r.FreshWriteOverheadPct)
	s += fmt.Sprintf("aged-disk block-write overhead:  paper ~2%%, measured %.0f%%\n", r.AgedWriteOverheadPct)
	s += fmt.Sprintf("Branch-Orig write slowdown vs Branch: paper 74%%, measured %.0f%%\n", r.OrigWriteSlowdownPct)
	return s
}

// ---------------------------------------------------------------- Fig 9

// Fig9Result is the background-transfer interference experiment.
type Fig9Result struct {
	// Throughput per scenario, 1 s windows (MB/s).
	NoSwap, EagerOut, LazyIn *metrics.Series `json:"-"`
	// Execution time per scenario.
	DurNone, DurEager, DurLazy sim.Time
	// Paper: eager +9% exec, lazy +19% exec and -45% throughput.
	EagerOverheadPct, LazyOverheadPct, LazyThroughputDropPct float64
}

func fig9Run(seed int64, copyBytes int64, setup func(s *sim.Simulator, m *node.Machine, k *guest.Kernel)) (*metrics.Series, sim.Time) {
	s := sim.New(seed)
	p := node.DefaultParams()
	m := node.NewMachine(s, "fc0", p)
	k := guest.New(m, p, guest.DefaultConfig())
	if setup != nil {
		setup(s, m, k)
	}
	fc := apps.NewFileCopy(k, copyBytes)
	done := false
	fc.Run(func() { done = true })
	s.RunFor(2 * sim.Hour)
	if !done {
		panic("fig9: copy incomplete")
	}
	return fc.Throughput, fc.ExecutionDur
}

// Fig9 measures the copy workload alone, under eager swap-out pre-copy,
// and under lazy swap-in background fill with demand faults.
func Fig9(seed int64, copyMB int64) *Fig9Result {
	r := &Fig9Result{}
	bytes := copyMB << 20

	r.NoSwap, r.DurNone = fig9Run(seed, bytes, nil)

	// Eager copy-out: a rate-limited background CopyOut shares the
	// spindle while the copy runs (swap triggered a fifth of the way
	// in, like the paper's 60 s point in a ~300 s run).
	r.EagerOut, r.DurEager = fig9Run(seed, bytes, func(s *sim.Simulator, m *node.Machine, k *guest.Kernel) {
		server := xfer.NewServer(s, 0)
		s.After(5*sim.Second, "fig9.swapout", func() {
			c := xfer.NewCopier(s, m.Disk, server)
			c.RateLimit = 6 << 20
			c.CopyOut(storage.CurBase, 300<<20, func(int64) {})
		})
	})

	// Lazy copy-in: part of the source data (the aggregated delta) is
	// still remote; reads fault it over the control network while the
	// rate-limited background fill races the reader.
	remote := bytes / 6
	r.LazyIn, r.DurLazy = fig9Run(seed, bytes, func(s *sim.Simulator, m *node.Machine, k *guest.Kernel) {
		server := xfer.NewServer(s, 0)
		lm := xfer.NewLazyMirror(s, k.Backend, server, m.Disk, remote)
		lm.Base = 2 << 30 // the file-copy source region
		// The paper attributes the larger lazy impact to "more
		// aggressive prefetching" — a limitation of the rate limiter on
		// the copy-in path. Model it: the background fill runs
		// unthrottled, racing (and colliding with) the reader.
		lm.SetBackgroundRate(0)
		lm.StartBackground(nil)
		k.Backend = lm
	})

	r.EagerOverheadPct = pct(r.DurEager, r.DurNone)
	r.LazyOverheadPct = pct(r.DurLazy, r.DurNone)
	base := metrics.Mean(r.NoSwap.Values())
	// The throughput drop is measured over the faulting phase (while
	// the remote delta is still arriving), matching the visible dip in
	// the paper's plot rather than the whole-run mean.
	faultPhase := r.LazyIn.Between(0, r.DurLazy-r.DurNone+sim.Time(float64(remote)/22e6*float64(sim.Second)))
	lazy := metrics.Mean(faultPhase.Values())
	r.LazyThroughputDropPct = (base - lazy) / base * 100
	return r
}

func pct(a, b sim.Time) float64 { return (float64(a) - float64(b)) / float64(b) * 100 }

// Render prints the figure's summary rows.
func (r *Fig9Result) Render() string {
	t := &metrics.Table{Header: []string{"scenario", "exec time (s)", "mean MB/s"}}
	t.AddRow("no swap", r.DurNone.Seconds(), metrics.Mean(r.NoSwap.Values()))
	t.AddRow("swap-out, eager pre-copy", r.DurEager.Seconds(), metrics.Mean(r.EagerOut.Values()))
	t.AddRow("swap-in, lazy copy-in", r.DurLazy.Seconds(), metrics.Mean(r.LazyIn.Values()))
	s := t.String()
	s += fmt.Sprintf("\neager overhead: paper +9%%, measured %+.0f%%\n", r.EagerOverheadPct)
	s += fmt.Sprintf("lazy overhead:  paper +19%%, measured %+.0f%%\n", r.LazyOverheadPct)
	s += fmt.Sprintf("lazy throughput drop: paper 45%%, measured %.0f%%\n", r.LazyThroughputDropPct)
	return s
}

// ------------------------------------------------------------ Swap table

// SwapCycleRow is one swap cycle's timing.
type SwapCycleRow struct {
	Cycle           int
	SwapOut         sim.Time
	SwapInLazy      sim.Time
	SwapInEager     sim.Time
	AggregatedDelta int64
}

// SwapTableResult is the §7.2 stateful-swapping evaluation.
type SwapTableResult struct {
	InitialSwapIn sim.Time
	Rows          []SwapCycleRow
	// DiskLoadedOutPct is the swap-out slowdown under a disk-intensive
	// workload (paper: 20%).
	DiskLoadedOutPct float64
}

type swapRig struct {
	s   *sim.Simulator
	k   *guest.Kernel
	vol *storage.Volume
	mgr *swap.Manager
	off int64
}

func newSwapRig(seed int64) *swapRig {
	s := sim.New(seed)
	p := node.DefaultParams()
	m := node.NewMachine(s, "sw0", p)
	k := guest.New(m, p, guest.DefaultConfig())
	vol := storage.NewVolume(m.Disk, 6<<30, storage.Optimized)
	vol.Age()
	k.Backend = vol
	hv := xen.New(m, p, k)
	bus := notify.NewBus(s)
	y := ntpsim.New(s, ntpsim.DefaultModel(), seed)
	y.Start("sw0")
	coord := core.NewCoordinator(s, bus, y, []*core.Member{{Name: "sw0", HV: hv}}, nil)
	server := xfer.NewServer(s, 0)
	mgr := swap.NewManager(s, server, coord,
		[]*swap.Node{{Name: "sw0", HV: hv, Vol: vol, GoldenCached: true}})
	return &swapRig{s: s, k: k, vol: vol, mgr: mgr}
}

// session writes the paper's 275 MB of new data.
func (r *swapRig) session(busy bool) {
	base := r.off + 1<<30
	r.off += 275 << 20
	for w := int64(0); w < 275<<20; w += 4 << 20 {
		r.vol.Write(base+w, 4<<20, nil)
	}
	r.s.RunFor(2*sim.Minute - 5*sim.Second)
	if busy {
		// Disk-intensive workload running into the swap-out: ~2.5 MB/s
		// of fresh writes. Blocks written during pre-copy are re-sent
		// while frozen, and the rate limiter slows the pre-copy — the
		// two factors behind the paper's 20% slowdown.
		var churn func(off int64)
		churn = func(off int64) {
			r.k.WriteDisk((5<<30)+off%(1<<30), 1<<20, func() {
				r.k.Usleep(400*sim.Millisecond, func() { churn(off + 1<<20) })
			})
		}
		churn(0)
	}
	r.s.RunFor(5 * sim.Second)
}

func (r *swapRig) swapOut(o swap.Options) sim.Time {
	var reps []*swap.OutReport
	if err := r.mgr.SwapOut(o, func(x []*swap.OutReport, _ error) { reps = x }); err != nil {
		panic(err)
	}
	r.s.RunFor(30 * sim.Minute)
	if reps == nil {
		panic("swap-out incomplete")
	}
	return reps[0].Duration()
}

func (r *swapRig) swapIn(o swap.Options) (sim.Time, int64) {
	var reps []*swap.InReport
	if err := r.mgr.SwapIn(o, func(x []*swap.InReport, _ error) { reps = x }); err != nil {
		panic(err)
	}
	r.s.RunFor(60 * sim.Minute)
	if reps == nil {
		panic("swap-in incomplete")
	}
	return reps[0].Duration(), reps[0].DeltaBytes
}

// SwapTable runs four consecutive swap cycles in lazy and eager
// configurations plus the disk-loaded swap-out comparison.
func SwapTable(seed int64) *SwapTableResult {
	res := &SwapTableResult{InitialSwapIn: swap.NodeSetupTime}

	run := func(lazy bool) []SwapCycleRow {
		r := newSwapRig(seed)
		o := swap.DefaultOptions()
		o.Lazy = lazy
		var rows []SwapCycleRow
		for c := 1; c <= 4; c++ {
			r.session(false)
			out := r.swapOut(o)
			in, delta := r.swapIn(o)
			rows = append(rows, SwapCycleRow{Cycle: c, SwapOut: out, SwapInLazy: in, AggregatedDelta: delta})
		}
		return rows
	}
	lazyRows := run(true)
	eagerRows := run(false)
	for i := range lazyRows {
		lazyRows[i].SwapInEager = eagerRows[i].SwapInLazy
	}
	res.Rows = lazyRows

	// Disk-intensive swap-out slowdown.
	quiet := newSwapRig(seed + 1)
	quiet.session(false)
	quietOut := quiet.swapOut(swap.DefaultOptions())
	busy := newSwapRig(seed + 2)
	busy.session(true)
	busyOut := busy.swapOut(swap.DefaultOptions())
	res.DiskLoadedOutPct = pct(busyOut, quietOut)
	return res
}

// Render prints the section's table.
func (r *SwapTableResult) Render() string {
	t := &metrics.Table{Header: []string{"cycle", "swap-out (s)", "swap-in lazy (s)", "swap-in eager (s)", "agg delta (MB)"}}
	for _, row := range r.Rows {
		t.AddRow(row.Cycle, row.SwapOut.Seconds(), row.SwapInLazy.Seconds(), row.SwapInEager.Seconds(), row.AggregatedDelta>>20)
	}
	s := t.String()
	s += fmt.Sprintf("\ninitial swap-in (cached golden): paper 8s, modeled %.0fs\n", r.InitialSwapIn.Seconds())
	s += "paper: swap-out constant ~60s; lazy swap-in constant ~35s; eager >150s by cycle 4\n"
	s += fmt.Sprintf("disk-loaded swap-out slowdown: paper 20%%, measured %+.0f%%\n", r.DiskLoadedOutPct)
	return s
}

// ------------------------------------------------------- Free-block table

// FreeBlockResult is the §5.1 make/make-clean delta experiment.
type FreeBlockResult struct {
	RawMB  int64
	LiveMB int64
}

// FreeBlockTable builds a kernel-source-sized write/delete churn and
// measures the delta with and without free-block elimination.
func FreeBlockTable(seed int64) *FreeBlockResult {
	s := sim.New(seed)
	p := node.DefaultParams()
	m := node.NewMachine(s, "fb0", p)
	v := storage.NewVolume(m.Disk, 6<<30, storage.Optimized)
	v.Age()
	fsSize := int64(2 << 30)
	plugin := fsmodel.NewPlugin(fsSize / fsmodel.FSBlockSize)
	fs := fsmodel.New(v, fsSize, plugin)
	// "make": write 490 1 MB object files; then "make clean".
	for i := 0; i < 490; i++ {
		name := fmt.Sprintf("obj%04d.o", i)
		if err := fs.Create(name, 1<<20, nil); err != nil {
			panic(err)
		}
		s.RunFor(5 * sim.Second)
	}
	for i := 0; i < 490; i++ {
		if err := fs.Delete(fmt.Sprintf("obj%04d.o", i), nil); err != nil {
			panic(err)
		}
	}
	s.RunFor(5 * sim.Minute)
	return &FreeBlockResult{
		RawMB:  v.CurrentDeltaBytes(nil) >> 20,
		LiveMB: v.CurrentDeltaBytes(plugin.IsCOWBlockFree) >> 20,
	}
}

// Render prints the comparison.
func (r *FreeBlockResult) Render() string {
	t := &metrics.Table{Header: []string{"delta", "paper (MB)", "measured (MB)"}}
	t.AddRow("without free-block elimination", 490, r.RawMB)
	t.AddRow("with free-block elimination", 36, r.LiveMB)
	return t.String()
}

// ----------------------------------------------------------- Sync table

// SyncResult is the §4.3 synchronization evaluation.
type SyncResult struct {
	// SkewAt are two-node trigger skews at 5 s checkpoint instants.
	SkewAt []sim.Time
	// ScheduledSkew and EventSkew compare the two trigger modes on a
	// converged system.
	ScheduledSkew, EventSkew sim.Time
}

// SyncTable measures NTP convergence and the scheduled-vs-event-driven
// checkpoint skew comparison.
func SyncTable(seed int64) *SyncResult {
	s := sim.New(seed)
	y := ntpsim.New(s, ntpsim.DefaultModel(), seed)
	y.Start("a")
	y.Start("b")
	res := &SyncResult{}
	for _, at := range []sim.Time{5 * sim.Second, 10 * sim.Second, 15 * sim.Second, 20 * sim.Second} {
		res.SkewAt = append(res.SkewAt, y.Skew(at, "a", "b"))
	}

	mode := func(m core.Mode) sim.Time {
		_, _, e := twoNode(seed, 0, 0)
		st := e.TB.S
		st.RunFor(60 * sim.Second)
		var r *core.Result
		e.Coord.Checkpoint(core.Options{Mode: m, Incremental: true}, func(x *core.Result, _ error) { r = x })
		st.RunFor(sim.Minute)
		if r == nil {
			panic("sync: checkpoint incomplete")
		}
		return r.SuspendSkew
	}
	res.ScheduledSkew = mode(core.Scheduled)
	res.EventSkew = mode(core.EventDriven)
	return res
}

// Render prints the section's numbers.
func (r *SyncResult) Render() string {
	t := &metrics.Table{Header: []string{"metric", "paper", "measured"}}
	for i, sk := range r.SkewAt {
		t.AddRow(fmt.Sprintf("2-node skew @%ds", (i+1)*5), "converging to ~2x200us", fmt.Sprintf("%.0fus", sk.Micros()))
	}
	t.AddRow("scheduled ckpt suspend skew", "~clock-sync bound", fmt.Sprintf("%.0fus", r.ScheduledSkew.Micros()))
	t.AddRow("event-driven suspend skew", "notification jitter", fmt.Sprintf("%.0fus", r.EventSkew.Micros()))
	return t.String()
}

// ------------------------------------------------------ Dom0 jobs table

// Dom0JobsResult is §7.1's dom0-interference calibration: the effect of
// trivial privileged-domain commands on the CPU benchmark.
type Dom0JobsResult struct {
	// ExtraMs[job] is the added iteration time.
	ExtraMs map[string]float64
}

// Dom0Jobs measures ls / sum / xm-list style dom0 work against the
// CPU-bound loop.
func Dom0Jobs(seed int64) *Dom0JobsResult {
	jobs := []struct {
		name  string
		dur   sim.Time
		share float64
	}{
		{"ls /", 9 * sim.Millisecond, 0.7},
		{"sum vmlinux", 21 * sim.Millisecond, 0.7},
		{"xm list", 150 * sim.Millisecond, 0.9},
	}
	res := &Dom0JobsResult{ExtraMs: make(map[string]float64)}
	for _, j := range jobs {
		s := sim.New(seed)
		p := node.DefaultParams()
		m := node.NewMachine(s, "d0", p)
		k := guest.New(m, p, guest.DefaultConfig())
		hv := xen.New(m, p, k)
		var iters []float64
		var step func()
		n := 0
		step = func() {
			start := k.Gettimeofday()
			k.Compute(236600*sim.Microsecond, "job", func() {
				iters = append(iters, float64(k.Gettimeofday()-start))
				n++
				if n < 20 {
					step()
				}
			})
		}
		step()
		// Inject the dom0 job mid-run.
		s.After(sim.Second, "dom0job", func() { hv.Dom0Job(j.dur, j.share) })
		s.RunFor(20 * sim.Second)
		nominal := 236.6 * float64(sim.Millisecond)
		worst := 0.0
		for _, v := range iters {
			if over := (v - nominal) / float64(sim.Millisecond); over > worst {
				worst = over
			}
		}
		res.ExtraMs[j.name] = worst
	}
	return res
}

// Render prints the comparison.
func (r *Dom0JobsResult) Render() string {
	t := &metrics.Table{Header: []string{"dom0 command", "paper (ms)", "measured (ms)"}}
	t.AddRow("ls /", "5-7", fmt.Sprintf("%.1f", r.ExtraMs["ls /"]))
	t.AddRow("sum vmlinux", "13-17", fmt.Sprintf("%.1f", r.ExtraMs["sum vmlinux"]))
	t.AddRow("xm list", "130", fmt.Sprintf("%.1f", r.ExtraMs["xm list"]))
	return t.String()
}
