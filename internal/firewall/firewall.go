// Package firewall implements the paper's central mechanism, the
// temporal firewall (§4.1): a control layer inside the guest kernel that
// suspends time and execution for everything *inside* the firewall while
// the small set of activities that perform the checkpoint keep running
// *outside* it.
//
// The paper's classification of guest kernel activity — user threads,
// kernel threads, interrupt handlers, deferrable functions (softirqs,
// tasklets, workqueues), and timer jobs — maps directly onto the Class
// enum. The activities allowed outside are exactly those the paper
// enumerates: the suspend thread, virtual device drivers (block IRQ
// drain), and the XenBus event channels used to coordinate with the
// hypervisor. Exception handlers (page faults) also run outside.
//
// Engaging the firewall freezes the guest's virtual clock and unhooks
// every pending inside-activity, recording either remaining virtual time
// (timers) or remaining CPU work (compute bursts). Disengaging re-arms
// them, so from inside the firewall the checkpoint never happened.
package firewall

import (
	"fmt"

	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/vclock"
)

// Class identifies which kind of guest activity a scheduled callback
// belongs to, following the taxonomy of §4.1.
type Class int

// Activity classes. The first five live inside the firewall; the last
// three run outside during a checkpoint.
const (
	UserThread Class = iota
	KernelThread
	SoftIRQ
	TimerJob
	DeviceIRQ
	// Outside the firewall:
	SuspendThread
	XenBus
	BlockDrainIRQ
	PageFault
)

// Inside reports whether the class is suspended by an engaged firewall.
func (c Class) Inside() bool { return c < SuspendThread }

func (c Class) String() string {
	switch c {
	case UserThread:
		return "user-thread"
	case KernelThread:
		return "kernel-thread"
	case SoftIRQ:
		return "softirq"
	case TimerJob:
		return "timer"
	case DeviceIRQ:
		return "device-irq"
	case SuspendThread:
		return "suspend-thread"
	case XenBus:
		return "xenbus"
	case BlockDrainIRQ:
		return "block-drain-irq"
	default:
		return "page-fault"
	}
}

type kind int

const (
	kindTimer kind = iota
	kindCompute
)

// Handle is one scheduled guest activity.
type Handle struct {
	fw    *Firewall
	class Class
	name  string
	k     kind
	fn    func()

	// tm is the handle's reusable underlying event: the handle owns it
	// exclusively (sim.Timer's single-owner contract), so one Event
	// serves every arm across engage/disengage/replan cycles and the
	// handle+event pair is a single allocation.
	tm   sim.Timer
	done bool

	// kindTimer: absolute due time in the underlying simulator, valid
	// while armed; remaining is captured on engage.
	remaining sim.Time

	// kindCompute:
	cpu       *node.CPU
	workLeft  sim.Time
	startedAt sim.Time
}

// Class reports the handle's activity class.
func (h *Handle) Class() Class { return h.class }

// Done reports whether the callback has fired.
func (h *Handle) Done() bool { return h.done }

// Firewall is the per-guest temporal firewall.
type Firewall struct {
	s     *sim.Simulator
	clock *vclock.Clock

	engaged bool
	pending map[*Handle]struct{}

	// InsideFired counts inside-class callbacks that fired while the
	// firewall was engaged. Transparency demands this stays zero; tests
	// assert on it.
	InsideFired int
	// OutsideFired counts outside-class callbacks fired while engaged —
	// the checkpoint's own activity.
	OutsideFired int
	// Engages counts engage/disengage cycles.
	Engages int
}

// New creates a firewall around the given guest clock.
func New(s *sim.Simulator, clock *vclock.Clock) *Firewall {
	return &Firewall{s: s, clock: clock, pending: make(map[*Handle]struct{})}
}

// Clock exposes the guarded clock.
func (f *Firewall) Clock() *vclock.Clock { return f.clock }

// Engaged reports whether the firewall is currently engaged.
func (f *Firewall) Engaged() bool { return f.engaged }

// Pending reports the number of suspended-or-armed handles.
func (f *Firewall) Pending() int { return len(f.pending) }

// After schedules fn to run after d of guest virtual time. The
// underlying event is armed at the real-time equivalent (scaled by the
// clock's dilation factor); engage/disengage moves it so the *virtual*
// delay is preserved exactly.
func (f *Firewall) After(class Class, d sim.Time, name string, fn func()) *Handle {
	if d < 0 {
		d = 0
	}
	h := &Handle{fw: f, class: class, name: name, k: kindTimer, fn: fn}
	f.s.InitTimer(&h.tm, name, h.fire)
	f.pending[h] = struct{}{}
	if f.engaged && class.Inside() {
		// Scheduled from outside-code while frozen (e.g. a device
		// handler queuing guest work): park it with full delay.
		h.remaining = d
		return h
	}
	h.arm(d)
	return h
}

// Compute schedules fn to run after `work` nanoseconds of guest CPU work
// on cpu, accounting for dom0 contention. Engage captures remaining
// work; disengage re-plans it.
func (f *Firewall) Compute(class Class, cpu *node.CPU, work sim.Time, name string, fn func()) *Handle {
	if work < 0 {
		work = 0
	}
	h := &Handle{fw: f, class: class, name: name, k: kindCompute, fn: fn, cpu: cpu, workLeft: work}
	f.s.InitTimer(&h.tm, name, h.fire)
	f.pending[h] = struct{}{}
	if f.engaged && class.Inside() {
		return h
	}
	h.armCompute()
	return h
}

// arm schedules the underlying event d of *virtual* time from now.
func (h *Handle) arm(d sim.Time) {
	h.tm.Reset(h.fw.clock.ToReal(d))
}

func (h *Handle) armCompute() {
	h.startedAt = h.fw.s.Now()
	end := h.cpu.FinishTime(h.startedAt, h.workLeft)
	if end == sim.Never {
		// CPU indefinitely stalled; leave unarmed — Replan re-arms when
		// the contention picture changes.
		return
	}
	h.tm.Schedule(end)
}

func (h *Handle) fire() {
	if h.fw.engaged {
		if h.class.Inside() {
			h.fw.InsideFired++
		} else {
			h.fw.OutsideFired++
		}
	}
	h.done = true
	delete(h.fw.pending, h)
	h.fn()
}

// Cancel prevents the handle from firing.
func (f *Firewall) Cancel(h *Handle) {
	if h == nil || h.done {
		return
	}
	h.tm.Stop()
	h.done = true
	delete(f.pending, h)
}

// Engage freezes the clock and suspends every pending inside-handle.
// engageLeak is the virtual-time cost of the engage path (see vclock).
func (f *Firewall) Engage(engageLeak sim.Time) {
	if f.engaged {
		panic("firewall: double engage")
	}
	f.engaged = true
	f.Engages++
	f.clock.Freeze(engageLeak)
	now := f.s.Now()
	for h := range f.pending {
		if !h.class.Inside() || !h.tm.Pending() {
			continue
		}
		switch h.k {
		case kindTimer:
			// Preserve the remaining delay in virtual units.
			h.remaining = f.clock.ToVirtual(h.tm.When() - now)
			if h.remaining < 0 {
				h.remaining = 0
			}
		case kindCompute:
			progressed := h.cpu.Progress(h.startedAt, now)
			h.workLeft -= progressed
			if h.workLeft < 0 {
				h.workLeft = 0
			}
		}
		h.tm.Stop()
	}
}

// Disengage thaws the clock and re-arms every suspended inside-handle
// with its preserved remaining time or work.
func (f *Firewall) Disengage(disengageLeak sim.Time) {
	if !f.engaged {
		panic("firewall: disengage while not engaged")
	}
	f.engaged = false
	f.clock.Thaw(disengageLeak)
	for h := range f.pending {
		if !h.class.Inside() || h.tm.Pending() {
			continue
		}
		switch h.k {
		case kindTimer:
			h.arm(h.remaining)
		case kindCompute:
			h.armCompute()
		}
	}
}

// Replan re-computes completion times for armed compute handles. The
// hypervisor calls this after registering new dom0 CPU interference so
// in-progress guest bursts feel it (Fig. 5's residual checkpoint
// activity).
func (f *Firewall) Replan() {
	if f.engaged {
		return // everything inside is parked already
	}
	now := f.s.Now()
	for h := range f.pending {
		if h.k != kindCompute {
			continue
		}
		if h.tm.Pending() {
			progressed := h.cpu.Progress(h.startedAt, now)
			h.workLeft -= progressed
			if h.workLeft < 0 {
				h.workLeft = 0
			}
			h.tm.Stop()
		}
		h.armCompute()
	}
}

// Describe returns a debug summary of pending activity by class.
func (f *Firewall) Describe() string {
	counts := map[Class]int{}
	for h := range f.pending {
		counts[h.class]++
	}
	return fmt.Sprintf("firewall engaged=%v pending=%v", f.engaged, counts)
}
