package evalrun

import (
	"fmt"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/health"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
)

// RemediateRow is one crash-handling policy's outcome in the unattended
// health-loop benchmark.
type RemediateRow struct {
	// Mode is "auto@<policy>" (the autonomous loop under that detection
	// preset), "scripted" (an operator script issues the recovery 1s
	// after the crash — the oracle the loop races), or "restart"
	// (re-run from scratch, the stateless baseline).
	Mode string `json:"mode"`
	// DetectS is crash -> failure flagged. Auto modes measure the probe
	// loop's hysteresis latency; scripted and restart get the script's
	// fixed one-second reaction.
	DetectS float64 `json:"detect_s"`
	// BackInServiceS is crash -> guests running again.
	BackInServiceS float64 `json:"back_in_service_s"`
	// MTTRS is crash -> the tenant's pre-crash progress restored — back
	// in service plus re-executing whatever the restore point had not
	// banked.
	MTTRS float64 `json:"mttr_s"`
	// LostWorkS is the work the restore point did not cover.
	LostWorkS float64 `json:"lost_work_s"`
	// MovedMB is the file-server traffic the mode generated (epoch
	// commits plus the recovery transfer).
	MovedMB float64 `json:"moved_mb"`
	// Remediations counts recovery initiations (the controller's for
	// auto modes, the script's single action otherwise); Recovered
	// reports pre-crash progress was reached within the horizon.
	Remediations int  `json:"remediations"`
	Recovered    bool `json:"recovered"`
}

// RemediateResult is the unattended-remediation benchmark: one
// epoch-protected two-node tenant fail-stopped mid-run, revived either
// by the autonomous health loop (detection by probes with hysteresis,
// cordon, re-admission from the last committed epoch) under each
// detection preset, by a scripted recovery (the operator oracle), or by
// restart-from-scratch. The acceptance comparison: every auto mode must
// strictly beat restart on both MTTR and lost work — unattended
// recovery may trade seconds of detection latency, never the banked
// work.
type RemediateResult struct {
	Pool     int     `json:"pool"`
	Nodes    int     `json:"nodes"`
	CrashAtS float64 `json:"crash_at_s"`
	HorizonS float64 `json:"horizon_s"`

	Rows []RemediateRow `json:"rows"`
}

// runRemediateMode crashes the tenant at crashAt and lets the given
// mode bring it back. policy is a health preset name for auto modes,
// or "scripted" / "restart".
func runRemediateMode(seed int64, policy string, crashAt, horizon sim.Time) RemediateRow {
	const name = "t1"
	auto := policy != "scripted" && policy != "restart"
	restart := policy == "restart"
	c := emucheck.NewCluster(4, seed, emucheck.FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second
	if auto {
		pol, err := health.ParsePolicy(policy)
		if err != nil {
			panic("remediate: " + err.Error())
		}
		if err := c.EnableHealth(emucheck.HealthOptions{Policy: pol}); err != nil {
			panic("remediate: " + err.Error())
		}
	}

	var ticks, committed, lastRec int64
	a, b := name+"a", name+"b"
	sc := emucheck.Scenario{
		Spec: emulab.Spec{
			Name:  name,
			Nodes: []emulab.NodeSpec{{Name: a, Swappable: true}, {Name: b, Swappable: true}},
			Links: []emulab.LinkSpec{{A: a, B: b}},
		},
		Setup: func(s *emucheck.Session) {
			// A restart reboots from the golden image: the previous
			// incarnation's progress is gone.
			ticks = 0
			if !restart {
				s.Exp.Swap.OnCommit = func() { committed = ticks }
				if err := s.StartEpochs(DefaultEpochPeriod); err != nil {
					panic("remediate: " + err.Error())
				}
			}
			k := s.Kernel(a)
			var step func()
			step = func() {
				k.Usleep(100*sim.Millisecond, func() {
					if recs := int64(s.Recoveries()); recs != lastRec {
						// Just restored: progress rolls back to the last
						// committed epoch's.
						lastRec = recs
						ticks = committed
					}
					ticks++
					c.Touch(name)
					step()
				})
			}
			step()
		},
	}
	if _, err := c.Submit(sc, 0); err != nil {
		panic("remediate: " + err.Error())
	}

	c.RunFor(crashAt)
	if err := c.Crash(name); err != nil {
		panic("remediate: " + err.Error())
	}
	preCrash := ticks
	if !auto {
		// The operator's script reacts one second after the crash.
		c.S.DoAfter(sim.Second, "remediate.scripted", func() {
			var err error
			if restart {
				err = c.Restart(name)
			} else {
				err = c.Recover(name)
			}
			if err != nil {
				panic("remediate: " + err.Error())
			}
		})
	}

	sess := c.Tenant(name)
	row := RemediateRow{Mode: policy}
	if auto {
		row.Mode = "auto@" + policy
	}
	var backAt, restoredAt sim.Time
	for c.Now() < horizon {
		c.RunFor(sim.Second)
		if backAt == 0 && sess.State() == "running" {
			backAt = c.Now()
		}
		if backAt != 0 && ticks >= preCrash {
			restoredAt = c.Now()
			break
		}
	}
	if auto {
		row.DetectS = sess.MaxDetectLatency().Seconds()
		row.Remediations = sess.Remediations()
	} else {
		row.DetectS = 1
		row.Remediations = 1
	}
	if backAt > 0 {
		row.BackInServiceS = (backAt - crashAt).Seconds()
	}
	if restoredAt > 0 {
		row.Recovered = true
		row.MTTRS = (restoredAt - crashAt).Seconds()
	} else {
		row.MTTRS = (horizon - crashAt).Seconds() // censored at the horizon
	}
	if restart {
		// Everything the first incarnation banked is owed again.
		row.LostWorkS = float64(preCrash) / 10
	} else {
		row.LostWorkS = sess.LostWork().Seconds()
	}
	row.MovedMB = float64(c.TB.Server.ByTag[name]) / (1 << 20)
	return row
}

// Remediate runs the benchmark: the autonomous loop under each
// detection preset against the scripted-recovery oracle and the
// restart-from-scratch baseline. quick shrinks the run for CI.
func Remediate(seed int64, quick bool) *RemediateResult {
	crashAt := 180 * sim.Second
	horizon := 15 * sim.Minute
	presets := []string{"fast", "balanced", "conservative"}
	if quick {
		crashAt = 90 * sim.Second
		horizon = 8 * sim.Minute
		presets = []string{"balanced"}
	}
	r := &RemediateResult{
		Pool: 4, Nodes: 2,
		CrashAtS: crashAt.Seconds(), HorizonS: horizon.Seconds(),
	}
	for _, p := range presets {
		r.Rows = append(r.Rows, runRemediateMode(seed, p, crashAt, horizon))
	}
	r.Rows = append(r.Rows, runRemediateMode(seed, "scripted", crashAt, horizon))
	r.Rows = append(r.Rows, runRemediateMode(seed, "restart", crashAt, horizon))
	return r
}

// Row returns the named mode's row (nil if absent).
func (r *RemediateResult) Row(mode string) *RemediateRow {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render prints the comparison.
func (r *RemediateResult) Render() string {
	t := &metrics.Table{Header: []string{"mode", "detect (s)", "back in service (s)", "MTTR (s)", "lost work (s)", "moved MB", "recovered"}}
	for _, row := range r.Rows {
		t.AddRow(row.Mode, fmt.Sprintf("%.1f", row.DetectS), fmt.Sprintf("%.0f", row.BackInServiceS),
			fmt.Sprintf("%.0f", row.MTTRS), fmt.Sprintf("%.1f", row.LostWorkS),
			fmt.Sprintf("%.0f", row.MovedMB), row.Recovered)
	}
	s := fmt.Sprintf("%d-node tenant crashed at t=%.0fs; auto modes are unattended (probe detection + cordon + epoch re-admission)\n",
		r.Nodes, r.CrashAtS)
	return s + t.String()
}
