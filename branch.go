package emucheck

import (
	"fmt"

	"emucheck/internal/emulab"
	"emucheck/internal/sched"
	"emucheck/internal/storage"
	"emucheck/internal/swap"
	"emucheck/internal/timetravel"
)

// BranchSpec describes one branch of a fan-out: the perturbation it
// explores and (optionally) its own workload. Branches re-execute the
// scenario's workload from the fork — restore-by-re-execution, the
// transparency property that makes checkpoints addressable by virtual
// time — while the *transfer* cost of materializing their state is
// charged through the shared checkpoint-chain machinery.
type BranchSpec struct {
	// Name is the branch tenant's name (default "<parent>.bN").
	Name string
	// Perturb is the relaxed-determinism knob for this branch. In a
	// shared cluster only per-tenant perturbations apply: TimeDilation
	// skews the branch's guest clocks, and a SeedChange seed is
	// delivered to the workload via Session.Perturb for
	// workload-visible divergence.
	Perturb Perturbation
	// Setup overrides the parent's workload (default: the parent
	// scenario's Setup, re-installed against the branch's nodes through
	// the logical-name alias).
	Setup func(*Session)
	// Priority orders the branch under the Priority policy.
	Priority int
}

// branchStaging is the shared restore of one fan-out batch: the
// checkpoint prefix every branch needs (lineage replay + memory
// images) crosses the control LAN once, Frisbee-style multicast to all
// co-scheduled branch nodes. Branch start hooks rendezvous here; the
// first to fire starts the transfer, the rest wait on it.
type branchStaging struct {
	c         *Cluster
	tag       string
	bytes     int64
	receivers int
	started   bool
	finished  bool
	waiters   []func()
}

func (st *branchStaging) wait(fn func()) {
	if st.finished {
		fn()
		return
	}
	st.waiters = append(st.waiters, fn)
	if st.started {
		return
	}
	st.started = true
	st.c.TB.Server.Multicast(st.tag, st.bytes, st.receivers, func() {
		st.finished = true
		ws := st.waiters
		st.waiters = nil
		for _, w := range ws {
			w()
		}
	})
}

// cloneSpec maps the parent's network onto branch-unique physical node
// names (node names are control-network identities), returning the
// alias from the parent's logical names.
func cloneSpec(bname string, parent emulab.Spec) (emulab.Spec, map[string]string) {
	alias := make(map[string]string, len(parent.Nodes))
	sp := emulab.Spec{Name: bname}
	for _, ns := range parent.Nodes {
		phys := bname + "." + ns.Name
		alias[ns.Name] = phys
		sp.Nodes = append(sp.Nodes, emulab.NodeSpec{Name: phys, Swappable: ns.Swappable})
	}
	for _, l := range parent.Links {
		sp.Links = append(sp.Links, emulab.LinkSpec{
			A: alias[l.A], B: alias[l.B],
			Bandwidth: l.Bandwidth, Delay: l.Delay, Loss: l.Loss,
		})
	}
	for _, lan := range parent.LANs {
		members := make([]string, len(lan.Members))
		for i, m := range lan.Members {
			members[i] = alias[m]
		}
		sp.LANs = append(sp.LANs, emulab.LANSpec{
			Name: bname + "." + lan.Name, Members: members, Bandwidth: lan.Bandwidth,
		})
	}
	return sp, alias
}

// Branch forks a running tenant at one of its recorded checkpoints
// into a batch of concurrently exploring branch tenants — the paper's
// §6 "branch from past execution checkpoints to test unexplored
// states", promoted from a single-session replay trick to a cluster
// subsystem:
//
//   - The parent's current state is committed to its per-node
//     checkpoint chains (the branch point), and every branch adopts a
//     refcounted fork of those chains: base and common deltas are
//     shared by reference in the cluster's content-addressed store, so
//     an N-way fan-out adds no server-side copies of the prefix.
//   - The shared prefix (chain replay + memory images) is staged to
//     the whole batch by one multicast over the control LAN; each
//     branch's private divergence moves individually thereafter
//     (clone-aware restore skips segments already resident).
//   - The batch is gang-admitted: the scheduler co-schedules all
//     branches (preempting victims for the combined demand) instead of
//     trickling them through the FIFO one service window at a time.
//   - Genealogy is tracked: Session.Parent/Children and
//     Cluster.Genealogy report the fork tree, and finishing a branch
//     releases its chain references so unreachable deltas are GC'd.
//
// With NaiveBranchCopy set, every branch instead stages its own full
// unicast copy and parks under the cluster's plain transfer mode — the
// per-branch full-copy baseline the shared path is measured against.
func (c *Cluster) Branch(parent string, ckpt TreeNodeID, specs ...BranchSpec) ([]*Session, error) {
	psess := c.byName[parent]
	if psess == nil {
		return nil, fmt.Errorf("emucheck: no experiment %q to branch from", parent)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("emucheck: branch fan-out needs at least one spec")
	}
	if psess.Exp == nil || psess.Exp.Swap == nil {
		return nil, fmt.Errorf("emucheck: %q is %s; branching needs an in-service swappable parent", parent, psess.State())
	}
	if _, ok := psess.Tree.Get(ckpt); !ok {
		return nil, fmt.Errorf("emucheck: %q has no checkpoint %d", parent, ckpt)
	}

	// Validate every branch name and node identity before mutating any
	// cluster state — a rejected fan-out must leave the parent's chains,
	// the store, and the server's byte ledgers untouched.
	names := make([]string, len(specs))
	branchSpecs := make([]emulab.Spec, len(specs))
	aliases := make([]map[string]string, len(specs))
	for i, bs := range specs {
		name := bs.Name
		if name == "" {
			name = fmt.Sprintf("%s.b%d", parent, len(psess.children)+i+1)
		}
		if old, dup := c.byName[name]; dup && old.State() != "done" {
			return nil, fmt.Errorf("emucheck: branch %q already submitted", name)
		}
		names[i] = name
		branchSpecs[i], aliases[i] = cloneSpec(name, psess.Scenario.Spec)
		for _, ns := range branchSpecs[i].Nodes {
			if owner, taken := c.nodeOwner[ns.Name]; taken {
				return nil, fmt.Errorf("emucheck: branch node %q already used by %q", ns.Name, owner)
			}
		}
	}
	// Gang capacity is SubmitGang's rejection, but it must fire before
	// the branch-point commit below for the same reason.
	gangNeed := 0
	for i := range specs {
		gangNeed += branchSpecs[i].NodesNeeded()
	}
	if gangNeed > c.Sched.Capacity {
		return nil, fmt.Errorf("emucheck: branch gang needs %d nodes, pool is %d", gangNeed, c.Sched.Capacity)
	}

	// Branch point: commit the parent's live divergence to its chains so
	// the fork prefix is complete on the file server. This is the commit
	// half of an incremental swap-out (the parent keeps running); the
	// delta upload is charged to the parent on the shared pipe.
	mgr := psess.Exp.Swap
	mgr.Chains = c.Chains
	var prefixBytes, memBytes int64
	for _, n := range mgr.Nodes {
		lin := mgr.Lineage(n.Name)
		blocks := n.Vol.EpochBlocks(n.IsFree)
		if len(blocks) > 0 || lin.Epochs() == 0 {
			e := lin.Commit(blocks, int(n.HV.K.MemoryImageBytes()/int64(n.HV.P.PageSize)))
			lin.Drop(n.IsFree)
			if e.DiskBytes() > 0 {
				c.TB.Server.StreamUpload(mgr.Tag, e.DiskBytes(), func() {})
			}
			n.Vol.Merge(true, n.IsFree)
		}
		n.MarkResident(lin)
		prefixBytes += lin.ReplayBytes()
		memBytes += n.HV.K.MemoryImageBytes()
	}

	staging := &branchStaging{
		c: c, tag: parent + ".branch",
		bytes: prefixBytes + memBytes, receivers: len(specs),
	}
	naiveBytes := prefixBytes + memBytes

	sessions := make([]*Session, len(specs))
	jobs := make([]*sched.Job, len(specs))
	for i, bs := range specs {
		setup := bs.Setup
		if setup == nil {
			setup = psess.Scenario.Setup
		}
		sess := &Session{
			Scenario: Scenario{Spec: branchSpecs[i], Setup: setup},
			Seed:     c.Seed, Priority: bs.Priority,
			C: c, S: c.S, TB: c.TB,
			Tree:       timetravel.NewTree(146 << 30),
			perturb:    bs.Perturb,
			branch:     ckpt,
			parentName: parent,
			alias:      aliases[i],
		}
		// Fork the parent's chains for the branch's physical node names —
		// by reference in the shared store, or as the naive baseline's
		// private full server-side copy.
		sess.branchLineages = make(map[string]*storage.Lineage)
		for _, n := range mgr.Nodes {
			plin := mgr.Lineage(n.Name)
			if c.NaiveBranchCopy {
				nl := storage.NewLineage(mgr.MaxChainDepth)
				nl.Commit(plin.Materialize(), 0)
				sess.branchLineages[aliases[i][n.Name]] = nl
				continue
			}
			sess.branchLineages[aliases[i][n.Name]] = plin.Fork()
		}
		sess.job = &sched.Job{
			Name: names[i], Need: branchSpecs[i].NodesNeeded(), Priority: bs.Priority,
			Preemptible: true,
			Hooks: sched.Hooks{
				Start:    func(done func(error)) { c.startBranch(sess, staging, naiveBytes, done) },
				Park:     func(done func(error)) { c.parkTenant(sess, done) },
				Resume:   func(done func(error)) { c.resumeTenant(sess, done) },
				ParkCost: func() int64 { return c.parkCost(sess) },
			},
		}
		sessions[i] = sess
		jobs[i] = sess.job
	}
	if err := c.Sched.SubmitGang(jobs); err != nil {
		// Unwind the forks: drop the references the rejected branches
		// held so the store does not pin their epochs forever.
		for _, sess := range sessions {
			for _, lin := range sess.branchLineages {
				lin.Release()
			}
		}
		return nil, err
	}
	for i, sess := range sessions {
		c.adopt(sess)
		psess.children = append(psess.children, names[i])
	}
	return sessions, nil
}

// startBranch is a branch's first-admission hook: provision hardware,
// stage the parent's checkpoint state (shared multicast or naive
// unicast), adopt the forked chains, and install the workload under
// the branch's perturbation.
func (c *Cluster) startBranch(sess *Session, staging *branchStaging, naiveBytes int64, done func(error)) {
	stage := func(fn func()) {
		if c.NaiveBranchCopy {
			// The baseline: this branch's own full copy of prefix + memory,
			// contending with its siblings' identical copies for the pipe.
			c.TB.Server.StreamDownload(sess.Scenario.Spec.Name, naiveBytes, fn)
			return
		}
		staging.wait(fn)
	}
	c.S.DoAfter(swap.NodeSetupTime, "cluster.branch-provision", func() {
		stage(func() {
			exp, err := c.TB.SwapIn(sess.Scenario.Spec)
			if err != nil {
				sess.LastErr = fmt.Errorf("emucheck: branch %s: %v", sess.Scenario.Spec.Name, err)
				done(sess.LastErr)
				return
			}
			c.wireTenant(sess, exp)
			if exp.Swap != nil {
				if c.NaiveBranchCopy {
					// Content-addressed sharing is the point of the shared
					// path; the naive baseline keeps private per-node chains
					// (full server-side copies), as a no-sharing facility
					// would.
					exp.Swap.Chains = nil
				}
				for _, n := range exp.Swap.Nodes {
					if lin := sess.branchLineages[n.Name]; lin != nil {
						exp.Swap.AdoptLineage(n.Name, lin)
						// The multicast landed the prefix on this node.
						n.MarkResident(lin)
					}
				}
			}
			sess.applyDilation()
			if sess.Scenario.Setup != nil {
				sess.Scenario.Setup(sess)
			}
			done(nil)
		})
	})
}
