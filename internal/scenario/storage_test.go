package scenario

import (
	"strings"
	"testing"
)

// storageScenario is a minimal tiered run: one swappable tenant, one
// park/resume cycle over the remote tier with a delta cache.
const storageScenario = `{
  "name": "st",
  "seed": 3,
  "pool": 2,
  "swap": "incremental",
  "storage": {"backend": "remote", "cache_mb": 256},
  "run_for": "5m",
  "experiments": [
    {"name": "e1", "workload": "diskchurn",
     "nodes": [{"name": "a", "swappable": true}, {"name": "b", "swappable": true}]}
  ],
  "events": [
    {"at": "45s", "action": "swap_out", "target": "e1"},
    {"at": "130s", "action": "swap_in", "target": "e1"}
  ],
  "assertions": [
    {"type": "state", "target": "e1", "want": "running"},
    {"type": "min_cache_hit_ratio", "value": 50}
  ]
}`

func TestStorageStanzaRun(t *testing.T) {
	f, err := Parse([]byte(storageScenario))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("run failed:\n%s", res.Render())
	}
	st := res.Storage
	if st == nil {
		t.Fatal("storage stanza produced no storage report")
	}
	if st.Backend != "remote" || st.CacheMB != 256 {
		t.Fatalf("report config drifted: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Fatal("the resume's restore never hit the commit-filled cache")
	}
	if !strings.Contains(res.Render(), "storage: remote tier") {
		t.Fatal("render lacks the storage line")
	}
}

// TestStorageStanzaDeterministic: two runs of the same tiered file
// must produce identical storage reports — the cache ledger is part of
// the deterministic-run contract.
func TestStorageStanzaDeterministic(t *testing.T) {
	run := func() StorageReport {
		f, err := Parse([]byte(storageScenario))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(f)
		if err != nil {
			t.Fatal(err)
		}
		return *res.Storage
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same file, different storage reports:\n%+v\n%+v", a, b)
	}
}

func TestStorageStanzaValidation(t *testing.T) {
	base := `{
  "name": "v", "seed": 1, "pool": 2, "run_for": "1m",
  "experiments": [{"name": "e1", "workload": "idle",
    "nodes": [{"name": "a", "swappable": true}]}],
  %s
}`
	cases := []struct {
		name    string
		body    string
		wantErr string
	}{
		{"unknown backend", `"storage": {"backend": "tape"}`, "unknown backend"},
		{"negative cache", `"storage": {"backend": "remote", "cache_mb": -1}`, "negative cache_mb"},
		{"hit ratio without cache", `"assertions": [{"type": "min_cache_hit_ratio", "value": 50}]`, "needs a storage stanza with cache_mb"},
		{"hit ratio out of range", `"storage": {"backend": "remote", "cache_mb": 64},
			"assertions": [{"type": "min_cache_hit_ratio", "value": 150}]`, "(0, 100]"},
		{"remote budget without stanza", `"assertions": [{"type": "max_remote_mb", "value": 10}]`, "needs a storage stanza"},
		{"cache on the mem backend", `"storage": {"backend": "mem", "cache_mb": 64}`, "cache_mb needs a disk or remote backend"},
	}
	for _, c := range cases {
		f, err := Parse([]byte(strings.Replace(base, "%s", c.body, 1)))
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		errs := Validate(f)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), c.wantErr) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: validation errors %v lack %q", c.name, errs, c.wantErr)
		}
	}
	// And the happy path validates cleanly.
	f, err := Parse([]byte(storageScenario))
	if err != nil {
		t.Fatal(err)
	}
	if errs := Validate(f); len(errs) > 0 {
		t.Fatalf("valid storage scenario rejected: %v", errs)
	}
}
