// Package swap implements stateful swapping (paper §5, §7.2): swapping
// an experiment out of the testbed without losing its run-time state,
// and swapping it back in with the entire period of inactivity concealed
// from the experiment.
//
// Swap-out pipeline (per node, overlapped with execution):
//  1. Eager pre-copy: the current disk delta (after free-block
//     elimination) streams to the file server under the rate limiter
//     while the guest keeps running.
//  2. A coordinated transparent checkpoint freezes the experiment and
//     streams memory images over the control network (HoldResume).
//  3. Blocks re-dirtied during pre-copy are flushed.
//  4. Offline, the server merges the current delta into the aggregated
//     delta, reordering to restore locality (§5.3).
//
// Swap-in pipeline:
//  1. Fetch the golden image unless cached (Frisbee-style, ~60 s flat).
//  2. Download memory images; node setup/boot plumbing is a constant.
//  3. Disk state arrives either eagerly (full aggregated delta before
//     resume — swap-in time grows with accumulated history) or lazily
//     (demand-paged plus rate-limited background fill — constant
//     swap-in time); this is §7.2's 150 s-vs-35 s comparison.
package swap

import (
	"fmt"

	"emucheck/internal/core"
	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
	"emucheck/internal/xen"
	"emucheck/internal/xfer"
)

// rawRegion is a byte-addressed window onto a disk region, used to land
// delta-image bytes in the COW log area without re-entering the COW
// translation layer.
type rawRegion struct {
	d    *node.Disk
	base int64
}

func (r rawRegion) Read(off, n int64, done func()) {
	r.d.Submit(&node.DiskRequest{Op: node.Read, LBA: r.base + off, Bytes: n, Done: done})
}

func (r rawRegion) Write(off, n int64, done func()) {
	r.d.Submit(&node.DiskRequest{Op: node.Write, LBA: r.base + off, Bytes: n, Done: done})
}

// GoldenFetchTime models Frisbee multicast disk imaging of the base
// image onto a node (§7.2: "an additional 60 seconds to download it").
const GoldenFetchTime = 60 * sim.Second

// NodeSetupTime is the fixed swap-in plumbing: allocation, VLANs, VM
// creation (§7.2: the initial swap-in took eight seconds).
const NodeSetupTime = 8 * sim.Second

// Node is one swappable experiment node.
type Node struct {
	Name string
	HV   *xen.Hypervisor
	Vol  *storage.Volume
	// IsFree is the free-block plugin hook (nil disables elimination).
	IsFree func(vba int64) bool

	// Server-side state accumulated across swap cycles.
	AggBytesOnServer int64
	MemImageBytes    int64
	GoldenCached     bool

	lazy *xfer.LazyMirror
}

// OutReport describes one swap-out.
type OutReport struct {
	Started  sim.Time
	Finished sim.Time
	// PreCopyBytes streamed while the experiment was still running.
	PreCopyBytes int64
	// ResidualBytes were re-dirtied during pre-copy and flushed frozen.
	ResidualBytes int64
	MemoryBytes   int64
	MergedBytes   int64
	Checkpoint    *core.Result
}

// Duration reports the wall time of the swap-out.
func (r *OutReport) Duration() sim.Time { return r.Finished - r.Started }

// InReport describes one swap-in.
type InReport struct {
	Started  sim.Time
	Finished sim.Time // experiment running again
	Lazy     bool
	// GoldenFetched marks a cold golden-image download.
	GoldenFetched bool
	DeltaBytes    int64
	MemoryBytes   int64
	// BackgroundDone is when lazy background fill completed (lazy only).
	BackgroundDone sim.Time
}

// Duration reports time until the experiment was running again.
func (r *InReport) Duration() sim.Time { return r.Finished - r.Started }

// Options tunes a swap cycle.
type Options struct {
	// PreCopy enables eager pre-copy during swap-out (default on via
	// DefaultOptions).
	PreCopy bool
	// RateLimit caps background transfer bytes/sec (0 = unthrottled).
	RateLimit int64
	// Lazy enables lazy copy-in at swap-in.
	Lazy bool
}

// DefaultOptions enables pre-copy, lazy copy-in, and the paper's
// rate-limited background transfer.
func DefaultOptions() Options {
	return Options{PreCopy: true, RateLimit: 10 << 20, Lazy: true}
}

// Manager orchestrates swap cycles for one experiment.
type Manager struct {
	S      *sim.Simulator
	Server *xfer.Server
	Coord  *core.Coordinator
	Nodes  []*Node

	// Tag attributes this experiment's control-LAN bytes on the shared
	// file server, so cross-experiment contention is accountable.
	Tag string

	// ServerMergeRate models the offline server-side delta merge.
	ServerMergeRate int64

	swappedOut bool

	// Cycle counts completed swap-outs.
	Cycle int
}

// NewManager builds a swap manager over the coordinator's members.
func NewManager(s *sim.Simulator, server *xfer.Server, coord *core.Coordinator, nodes []*Node) *Manager {
	return &Manager{S: s, Server: server, Coord: coord, Nodes: nodes, ServerMergeRate: 45 << 20}
}

// SwappedOut reports whether the experiment is currently swapped out.
func (m *Manager) SwappedOut() bool { return m.swappedOut }

// SwapOut swaps the experiment out; done receives one report per node.
func (m *Manager) SwapOut(o Options, done func([]*OutReport)) error {
	if m.swappedOut {
		return fmt.Errorf("swap: already swapped out")
	}
	start := m.S.Now()
	reports := make([]*OutReport, len(m.Nodes))
	cuts := make([]int, len(m.Nodes))
	for i, n := range m.Nodes {
		reports[i] = &OutReport{Started: start}
		cuts[i] = n.Vol.Cur.Slots()
	}

	var ckpt func()
	ckpt = func() {
		if m.Coord.Held() {
			// A HoldResume checkpoint parked the experiment and only an
			// explicit ResumeHeld will clear it — waiting would spin
			// forever. Fail the way a busy coordinator always has.
			panic("swap: cannot swap out: a held checkpoint awaits ResumeHeld")
		}
		if m.Coord.Busy() {
			// A periodic (or scripted) checkpoint is mid-flight; the
			// swap-out's freeze queues behind it rather than failing —
			// the preempting scheduler must not crash a checkpointing
			// tenant.
			m.S.After(500*sim.Millisecond, "swap.ckpt-wait", ckpt)
			return
		}
		err := m.Coord.Checkpoint(core.Options{
			Target:     xen.ToControlNet,
			HoldResume: true,
		}, func(res *core.Result) {
			m.afterFreeze(o, res, reports, cuts, done)
		})
		if err != nil {
			panic("swap: " + err.Error())
		}
	}

	if !o.PreCopy {
		ckpt()
		return nil
	}
	// Eager pre-copy of every node's live current delta, in parallel;
	// the shared server pipe serializes the bytes.
	remaining := len(m.Nodes)
	for i, n := range m.Nodes {
		i, n := i, n
		bytes := n.Vol.CurrentDeltaBytes(n.IsFree)
		c := xfer.NewCopier(m.S, n.Vol.Disk, m.Server)
		c.Tag = m.Tag
		if o.RateLimit > 0 {
			c.RateLimit = o.RateLimit
		}
		c.CopyOut(storage.CurBase, bytes, func(moved int64) {
			reports[i].PreCopyBytes = moved
			remaining--
			if remaining == 0 {
				ckpt()
			}
		})
	}
	return nil
}

// afterFreeze flushes residual deltas and memory accounting, then
// releases the hardware.
func (m *Manager) afterFreeze(o Options, res *core.Result, reports []*OutReport, cuts []int, done func([]*OutReport)) {
	remaining := len(m.Nodes)
	for i, n := range m.Nodes {
		i, n := i, n
		rep := reports[i]
		rep.Checkpoint = res
		for _, img := range res.Images {
			if img.Node == n.Name {
				rep.MemoryBytes = img.MemoryBytes + img.DeviceBytes
				n.MemImageBytes = img.MemoryBytes + img.DeviceBytes
			}
		}
		// Blocks appended to the redo log after the pre-copy cut are
		// residual: blocks written (or re-written) during pre-copy.
		residualSlots := n.Vol.Cur.Slots() - cuts[i]
		if !o.PreCopy {
			residualSlots = n.Vol.Cur.Slots()
			// Without pre-copy the whole live delta moves while frozen.
			rep.ResidualBytes = n.Vol.CurrentDeltaBytes(n.IsFree)
		} else {
			rep.ResidualBytes = int64(residualSlots) * storage.BlockSize
		}
		m.Server.UploadTagged(m.Tag, rep.ResidualBytes, func() {
			// The node's part of the swap-out ends here; the delta merge
			// is offline server-side post-processing (§5.3) and does not
			// extend the user-visible swap-out.
			rep.Finished = m.S.Now()
			merged := n.Vol.Merge(true, n.IsFree)
			n.AggBytesOnServer = merged
			rep.MergedBytes = merged
			mergeDur := sim.Time(float64(merged) / float64(m.ServerMergeRate) * float64(sim.Second))
			m.S.After(mergeDur, "swap.merge", func() {
				remaining--
				if remaining == 0 {
					m.swappedOut = true
					m.Cycle++
					done(reports)
				}
			})
		})
	}
}

// SwapIn restores the experiment; done receives one report per node
// once every guest is running (lazy background fill may continue).
func (m *Manager) SwapIn(o Options, done func([]*InReport)) error {
	if !m.swappedOut {
		return fmt.Errorf("swap: not swapped out")
	}
	start := m.S.Now()
	reports := make([]*InReport, len(m.Nodes))
	remaining := len(m.Nodes)
	finishNode := func(i int) {
		remaining--
		if remaining == 0 {
			// All state staged: resume the experiment together.
			err := m.Coord.ResumeHeld(func(*core.Result) {
				now := m.S.Now()
				for _, r := range reports {
					r.Finished = now
				}
				m.swappedOut = false
				done(reports)
			})
			if err != nil {
				panic("swap: " + err.Error())
			}
		}
		_ = i
	}
	for i, n := range m.Nodes {
		i, n := i, n
		rep := &InReport{Started: start, Lazy: o.Lazy}
		reports[i] = rep
		stage2 := func() {
			// Node setup + memory image download, then disk state.
			m.S.After(NodeSetupTime, "swap.setup", func() {
				m.Server.DownloadTagged(m.Tag, n.MemImageBytes, func() {
					rep.MemoryBytes = n.MemImageBytes
					rep.DeltaBytes = n.AggBytesOnServer
					if !o.Lazy {
						// Eager: the whole aggregated delta lands before
						// the node may resume.
						c := xfer.NewCopier(m.S, n.Vol.Disk, m.Server)
						c.Tag = m.Tag
						if o.RateLimit > 0 {
							c.RateLimit = o.RateLimit
						}
						c.CopyIn(storage.AggBase, n.AggBytesOnServer, func(int64) {
							finishNode(i)
						})
						return
					}
					// Lazy: resume immediately; the aggregated delta image
					// is demand-paged and back-filled into the COW log
					// region (raw addressing — the delta is an image file,
					// not guest-visible block space).
					lm := xfer.NewLazyMirror(m.S, rawRegion{d: n.Vol.Disk, base: storage.AggBase},
						m.Server, n.Vol.Disk, n.AggBytesOnServer)
					lm.SetTag(m.Tag)
					n.lazy = lm
					lm.StartBackground(func() { rep.BackgroundDone = m.S.Now() })
					finishNode(i)
				})
			})
		}
		if !n.GoldenCached {
			rep.GoldenFetched = true
			m.S.After(GoldenFetchTime, "swap.frisbee", func() {
				n.GoldenCached = true
				stage2()
			})
		} else {
			stage2()
		}
	}
	return nil
}
