package xen

import (
	"testing"

	"emucheck/internal/guest"
	"emucheck/internal/node"
	"emucheck/internal/sim"
)

func newHV(seed int64) (*sim.Simulator, *Hypervisor) {
	s := sim.New(seed)
	p := node.DefaultParams()
	m := node.NewMachine(s, "n0", p)
	k := guest.New(m, p, guest.DefaultConfig())
	return s, New(m, p, k)
}

func TestEventDrivenFullSave(t *testing.T) {
	s, h := newHV(1)
	s.RunFor(sim.Second)
	var img *Image
	if err := h.Save(SaveOptions{}, func(i *Image) { img = i }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)
	if img == nil {
		t.Fatal("save never completed")
	}
	// Full save moves at least the boot-resident 64 MB.
	if img.MemoryBytes < 60<<20 {
		t.Fatalf("memory image %d bytes", img.MemoryBytes)
	}
	if img.Clock == nil {
		t.Fatal("no clock state")
	}
	if !h.K.Suspended() {
		t.Fatal("guest resumed without coordinator consent")
	}
	if img.Downtime <= 0 {
		t.Fatal("no downtime recorded")
	}
	if err := h.Resume(nil); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Second)
	if h.K.Suspended() {
		t.Fatal("guest still suspended")
	}
	if h.Saves != 1 {
		t.Fatalf("saves = %d", h.Saves)
	}
}

func TestIncrementalSaveIsSmall(t *testing.T) {
	s, h := newHV(1)
	s.RunFor(sim.Second)
	// First full checkpoint.
	done1 := false
	h.Save(SaveOptions{}, func(i *Image) { done1 = true })
	s.RunFor(10 * sim.Second)
	if !done1 {
		t.Fatal("first save incomplete")
	}
	h.Resume(nil)
	s.RunFor(2 * sim.Second)
	// Incremental second checkpoint: only pages dirtied in ~2 s.
	var img2 *Image
	h.Save(SaveOptions{Incremental: true}, func(i *Image) { img2 = i })
	s.RunFor(10 * sim.Second)
	if img2 == nil {
		t.Fatal("second save incomplete")
	}
	if img2.MemoryBytes >= 32<<20 {
		t.Fatalf("incremental image too large: %d", img2.MemoryBytes)
	}
	h.Resume(nil)
	s.RunFor(sim.Second)
}

func TestScheduledSuspendHitsDeadline(t *testing.T) {
	s, h := newHV(1)
	s.RunFor(sim.Second)
	deadline := s.Now() + 3*sim.Second
	var img *Image
	h.Save(SaveOptions{Incremental: true, SuspendAt: deadline}, func(i *Image) { img = i })
	s.RunFor(10 * sim.Second)
	if img == nil {
		t.Fatal("save incomplete")
	}
	// Suspend begins at deadline + XenBus latency, within a tight bound.
	slack := img.SuspendedAt - deadline
	if slack < 0 || slack > sim.Millisecond {
		t.Fatalf("suspend at %v, deadline %v (slack %v)", img.SuspendedAt, deadline, slack)
	}
	h.Resume(nil)
	s.RunFor(sim.Second)
}

func TestScheduledSaveWithBusyGuest(t *testing.T) {
	s, h := newHV(1)
	// A guest churning memory: compute continuously.
	var churn func()
	churn = func() {
		h.K.Compute(50*sim.Millisecond, "churn", churn)
	}
	churn()
	s.RunFor(sim.Second)
	deadline := s.Now() + 2*sim.Second
	var img *Image
	h.Save(SaveOptions{Incremental: true, SuspendAt: deadline}, func(i *Image) { img = i })
	s.RunUntil(deadline + 20*sim.Second)
	if img == nil {
		t.Fatal("save incomplete")
	}
	if img.Rounds < 1 {
		t.Fatal("no pre-copy rounds despite churn")
	}
	if img.StopCopyPages <= 0 {
		t.Fatal("stop-and-copy had nothing despite churn")
	}
	h.Resume(nil)
	s.RunFor(100 * sim.Millisecond)
}

func TestDowntimeConcealedFromGuest(t *testing.T) {
	s, h := newHV(1)
	s.RunFor(sim.Second)
	v0 := h.K.Monotonic()
	r0 := s.Now()
	var img *Image
	h.Save(SaveOptions{}, func(i *Image) { img = i })
	s.RunFor(10 * sim.Second)
	h.Resume(nil)
	s.RunFor(sim.Second)
	realElapsed := s.Now() - r0
	virtElapsed := h.K.Monotonic() - v0
	concealed := realElapsed - virtElapsed
	if img.Downtime < sim.Millisecond {
		t.Fatalf("downtime suspiciously low: %v", img.Downtime)
	}
	// All downtime except the µs leak must be concealed.
	if concealed < img.Downtime-sim.Millisecond {
		t.Fatalf("concealed only %v of %v downtime", concealed, img.Downtime)
	}
	if h.K.Clock.LeakTotal() > 100*sim.Microsecond {
		t.Fatalf("leak %v", h.K.Clock.LeakTotal())
	}
}

func TestConcurrentSaveRejected(t *testing.T) {
	s, h := newHV(1)
	h.Save(SaveOptions{}, func(*Image) {})
	if err := h.Save(SaveOptions{}, func(*Image) {}); err == nil {
		t.Fatal("concurrent save accepted")
	}
	s.RunFor(20 * sim.Second)
	h.Resume(nil)
	s.RunFor(sim.Second)
}

func TestDom0JobPerturbsGuest(t *testing.T) {
	s, h := newHV(1)
	var done sim.Time
	h.K.Compute(200*sim.Millisecond, "bench", func() { done = s.Now() })
	s.RunFor(50 * sim.Millisecond)
	// An "xm list"-style dom0 job: 130 ms at full steal.
	h.Dom0Job(130*sim.Millisecond, 1.0)
	s.Run()
	if done != 330*sim.Millisecond {
		t.Fatalf("perturbed compute finished at %v, want 330ms", done)
	}
}

func TestControlNetTargetSlower(t *testing.T) {
	run := func(target SaveTarget) sim.Time {
		s, h := newHV(1)
		s.RunFor(sim.Second)
		start := s.Now()
		var end sim.Time
		h.Save(SaveOptions{Target: target}, func(i *Image) { end = s.Now() })
		s.RunFor(5 * sim.Minute)
		h.Resume(nil)
		s.RunFor(sim.Second)
		return end - start
	}
	disk := run(ToScratchDisk)
	net := run(ToControlNet)
	if net <= disk {
		t.Fatalf("control-net save (%v) not slower than disk save (%v)", net, disk)
	}
}

func TestSaveWritesScratchDisk(t *testing.T) {
	s, h := newHV(1)
	s.RunFor(sim.Second)
	h.Save(SaveOptions{Target: ToScratchDisk}, func(*Image) {})
	s.RunFor(20 * sim.Second)
	// The image is staged in dom0 memory; the spindle sees it only
	// after the background write-back that follows resume.
	h.Resume(nil)
	s.RunFor(30 * sim.Second)
	if h.M.Scratch.WriteBytes < 60<<20 {
		t.Fatalf("scratch writes = %d", h.M.Scratch.WriteBytes)
	}
}
