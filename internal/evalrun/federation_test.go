package evalrun

import (
	"encoding/json"
	"testing"
)

// stripFederationWall zeroes this machine's wall-clock measurements so
// the rest of the result can be byte-compared across runs.
func stripFederationWall(r *FederationResult) {
	for i := range r.Rows {
		r.Rows[i].WallMS = 0
		r.Rows[i].Speedup = 0
	}
}

// TestFederationGoldenShape pins the benchmark's structure on a small
// fleet: one serial row per facility count, one full-width parallel row
// per sharded count, every parallel digest byte-identical to its serial
// reference, and a cold/warm migration pair.
func TestFederationGoldenShape(t *testing.T) {
	r := Federation(1, []int{80}, []int{1, 2})
	if len(r.Rows) != 3 { // serial@1, serial@2, parallel@2
		t.Fatalf("got %d rows, want 3: %+v", len(r.Rows), r.Rows)
	}
	for _, row := range r.Rows {
		if !row.Identical {
			t.Fatalf("row %+v: parallel digest diverged from serial reference", row)
		}
		if row.Digest == "" || row.Events == 0 || row.SimS <= 0 {
			t.Fatalf("row %+v: missing simulation substance", row)
		}
	}
	par := r.Rows[2]
	if par.Workers != 2 || par.Facilities != 2 {
		t.Fatalf("last row is not the full-width parallel run: %+v", par)
	}
	if par.Windows <= 0 {
		t.Fatalf("parallel run reports no conservative windows: %+v", par)
	}
	if len(r.Warm) != 2 || r.Warm[0].WarmUp || !r.Warm[1].WarmUp {
		t.Fatalf("warm comparison is not a cold/warm pair: %+v", r.Warm)
	}
	// Warm-up's whole point: chain bytes move to the WAN ahead of the
	// restore instead of hitting the destination's shared pool.
	cold, warm := r.Warm[0], r.Warm[1]
	if cold.Migrations > 0 && warm.WarmedMB <= 0 {
		t.Fatalf("warm-up run warmed no bytes despite migrations: %+v", warm)
	}
}

// TestFederationDeterministic: everything but the wall clock is a pure
// function of (config, seed).
func TestFederationDeterministic(t *testing.T) {
	enc := func() string {
		r := Federation(5, []int{80}, []int{1, 2})
		stripFederationWall(r)
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := enc(), enc(); a != b {
		t.Fatalf("same-seed federation results diverged:\n%s\n%s", a, b)
	}
}

// stripSuiteBenchWall zeroes the wall-clock throughput fields.
func stripSuiteBenchWall(r *SuiteBenchResult) {
	for i := range r.Rows {
		r.Rows[i].WallMS = 0
		r.Rows[i].ScenariosPerS = 0
		r.Rows[i].Speedup = 0
	}
}

// TestSuiteBenchGoldenShape: one row per worker width, every report
// byte-identical to the serial one, and the PR 8 claim that the event
// core's steady state allocates nothing.
func TestSuiteBenchGoldenShape(t *testing.T) {
	r := SuiteBench(1, 2, []int{1, 2})
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Identical {
			t.Fatalf("workers=%d report is not byte-identical to serial", row.Workers)
		}
	}
	if r.AllocsPerEvent != 0 {
		t.Fatalf("event core steady state allocates %.0f/event, want 0", r.AllocsPerEvent)
	}
}

// TestSuiteBenchDeterministic: with wall-clock fields stripped, the
// benchmark is seed-pure.
func TestSuiteBenchDeterministic(t *testing.T) {
	enc := func() string {
		r := SuiteBench(7, 2, []int{1, 2})
		stripSuiteBenchWall(r)
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := enc(), enc(); a != b {
		t.Fatalf("same-seed suitebench results diverged:\n%s\n%s", a, b)
	}
}
