// Command benchrunner regenerates the figures and tables of the paper's
// evaluation (§7) and prints paper-vs-measured rows.
//
// Usage:
//
//	benchrunner -all
//	benchrunner -fig 6
//	benchrunner -table swap
//	benchrunner -fig 4 -seed 7 -quick
//	benchrunner -all -quick -json > bench.json
//
// Each experiment is deterministic for a given seed; -quick shrinks the
// workloads (fewer iterations, smaller files) for a fast sanity pass.
// -json emits one object keyed by figure/table name with the measured
// scalar results, for machine-readable tracking across revisions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"emucheck/internal/evalrun"
)

func main() {
	var (
		fig    = flag.Int("fig", 0, "figure number to regenerate (4-9)")
		table  = flag.String("table", "", "table to regenerate: swap | freeblock | sync | dom0 | ablation | timeshare | branch | recovery | storage")
		all    = flag.Bool("all", false, "regenerate everything")
		seed   = flag.Int64("seed", 1, "simulation seed")
		quick  = flag.Bool("quick", false, "reduced workload sizes")
		fanout = flag.Int("fanout", 4, "branch table fan-out")
		asJSON = flag.Bool("json", false, "emit results as JSON instead of tables")
	)
	flag.Parse()

	iters4, iters5 := 6000, 600
	fileMB7 := int64(3 << 10) // the paper's 3 GB torrent
	fileMB8 := int64(512)
	copyMB9 := int64(512)
	ticksTS := int64(0) // timeshare default: 900 ticks per tenant
	if *quick {
		iters4, iters5 = 1500, 150
		fileMB7 = 512
		fileMB8 = 256
		copyMB9 = 256
		// ticksTS stays at the default: a shorter target parks each
		// tenant at most once, and a first swap-out is always a full
		// save, which would erase the incremental-vs-full comparison
		// the timeshare table exists to show.
	}

	type renderer interface{ Render() string }
	results := make(map[string]any)
	ran := false
	emit := func(key, title string, f func() renderer) {
		ran = true
		r := f()
		if *asJSON {
			results[key] = r
			return
		}
		fmt.Printf("== %s ==\n", title)
		fmt.Print(r.Render())
		fmt.Println()
	}
	run := func(n int, f func() renderer) {
		if *all || *fig == n {
			emit(fmt.Sprintf("fig%d", n), fmt.Sprintf("Figure %d", n), f)
		}
	}
	runT := func(name, title string, f func() renderer) {
		if *all || *table == name {
			emit(name, title, f)
		}
	}

	run(4, func() renderer { return evalrun.Fig4(*seed, iters4) })
	run(5, func() renderer { return evalrun.Fig5(*seed, iters5) })
	run(6, func() renderer { return evalrun.Fig6(*seed) })
	run(7, func() renderer { return evalrun.Fig7(*seed, fileMB7) })
	run(8, func() renderer { return evalrun.Fig8(*seed, fileMB8) })
	run(9, func() renderer { return evalrun.Fig9(*seed, copyMB9) })
	runT("swap", "Stateful swapping (§7.2)", func() renderer { return evalrun.SwapTable(*seed) })
	runT("freeblock", "Free-block elimination (§5.1)", func() renderer { return evalrun.FreeBlockTable(*seed) })
	runT("sync", "Checkpoint synchronization (§4.3)", func() renderer { return evalrun.SyncTable(*seed) })
	runT("dom0", "Dom0 interference (§7.1)", func() renderer { return evalrun.Dom0Jobs(*seed) })
	runT("ablation", "Ablation: delay-node capture (§4.4)", func() renderer { return evalrun.AblationDelayNode(*seed) })
	runT("timeshare", "Multi-tenancy: incremental vs full-copy vs stateless swapping", func() renderer { return evalrun.Timeshare(*seed, ticksTS) })
	runT("branch", "Branch fan-out: shared-lineage vs naive per-branch full copies", func() renderer { return evalrun.BranchTable(*seed, *fanout) })
	runT("recovery", "Crash recovery: checkpoint epochs vs restart-from-scratch", func() renderer { return evalrun.Recovery(*seed, *quick) })
	runT("storage", "Tiered chain storage: cached vs uncached restores at fan-out", func() renderer { return evalrun.StorageTable(*seed, *fanout) })

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON {
		out, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
}
