package simnet

import (
	"testing"
	"testing/quick"

	"emucheck/internal/sim"
)

func pair(s *sim.Simulator, speed Bitrate, delay sim.Time) (*NIC, *NIC) {
	a := NewNIC(s, "a", speed)
	b := NewNIC(s, "b", speed)
	a.Attach(NewWire(s, delay, b))
	b.Attach(NewWire(s, delay, a))
	return a, b
}

func TestTxSerializationDelay(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 1000*Mbps, 0)
	var got sim.Time
	b.OnReceive(func(p *Packet) { got = s.Now() })
	a.Send(&Packet{Dst: "b", Size: 1500})
	s.Run()
	want := Bitrate(1000 * Mbps).TxTime(1500) // 12 us at 1 Gbps
	if got != want {
		t.Fatalf("arrival at %v, want %v", got, want)
	}
	if want != 12*sim.Microsecond {
		t.Fatalf("1500B@1Gbps = %v, want 12us", want)
	}
}

func TestBackToBackQueueing(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 100*Mbps, 0)
	var arrivals []sim.Time
	b.OnReceive(func(p *Packet) { arrivals = append(arrivals, s.Now()) })
	for i := 0; i < 3; i++ {
		a.Send(&Packet{Dst: "b", Size: 1250}) // 100 us each at 100 Mbps
	}
	s.Run()
	if len(arrivals) != 3 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	for i, want := range []sim.Time{100 * sim.Microsecond, 200 * sim.Microsecond, 300 * sim.Microsecond} {
		if arrivals[i] != want {
			t.Fatalf("arrival %d at %v, want %v", i, arrivals[i], want)
		}
	}
}

func TestPropagationDelayAdds(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 1000*Mbps, 5*sim.Millisecond)
	var got sim.Time
	b.OnReceive(func(p *Packet) { got = s.Now() })
	a.Send(&Packet{Dst: "b", Size: 1500})
	s.Run()
	want := 5*sim.Millisecond + 12*sim.Microsecond
	if got != want {
		t.Fatalf("arrival %v, want %v", got, want)
	}
}

func TestCounters(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 100*Mbps, 0)
	b.OnReceive(func(p *Packet) {})
	a.Send(&Packet{Dst: "b", Size: 1000})
	a.Send(&Packet{Dst: "b", Size: 500})
	s.Run()
	if a.TX.Packets != 2 || a.TX.Bytes != 1500 {
		t.Fatalf("tx counters: %+v", a.TX)
	}
	if b.RX.Packets != 2 || b.RX.Bytes != 1500 {
		t.Fatalf("rx counters: %+v", b.RX)
	}
}

func TestNoHandlerCountsDrop(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 100*Mbps, 0)
	a.Send(&Packet{Dst: "b", Size: 100})
	s.Run()
	if b.Dropped != 1 {
		t.Fatalf("dropped = %d", b.Dropped)
	}
}

func TestNoAttachmentCountsDrop(t *testing.T) {
	s := sim.New(1)
	n := NewNIC(s, "x", 100*Mbps)
	n.Send(&Packet{Dst: "y", Size: 100})
	if n.Dropped != 1 {
		t.Fatalf("dropped = %d", n.Dropped)
	}
}

func TestFreezeLogsAndThawReplaysInOrder(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 1000*Mbps, 0)
	var got []uint64
	b.OnReceive(func(p *Packet) { got = append(got, p.ID) })
	b.Freeze()
	for i := 0; i < 5; i++ {
		a.Send(&Packet{Dst: "b", Size: 1500})
	}
	s.Run()
	if len(got) != 0 {
		t.Fatal("frozen NIC delivered packets")
	}
	if b.ReplayLogLen() != 5 {
		t.Fatalf("replay log = %d", b.ReplayLogLen())
	}
	b.Thaw()
	s.Run()
	if len(got) != 5 {
		t.Fatalf("replayed %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out of order replay: %v", got)
		}
	}
}

func TestThawPreservesPerFlowOrderAcrossFlows(t *testing.T) {
	s := sim.New(1)
	recv := NewNIC(s, "r", 1000*Mbps)
	a := NewNIC(s, "a", 1000*Mbps)
	c := NewNIC(s, "c", 1000*Mbps)
	a.Attach(NewWire(s, 0, recv))
	c.Attach(NewWire(s, sim.Microsecond, recv))
	var got []string
	seq := map[string]int{}
	recv.OnReceive(func(p *Packet) {
		got = append(got, p.Flow)
		seq[p.Flow]++
	})
	recv.Freeze()
	// Interleave two flows.
	for i := 0; i < 3; i++ {
		a.Send(&Packet{Dst: "r", Size: 100})
		c.Send(&Packet{Dst: "r", Size: 100})
	}
	s.Run()
	recv.Thaw()
	s.Run()
	if len(got) != 6 {
		t.Fatalf("replayed %d", len(got))
	}
	if seq["a>r"] != 3 || seq["c>r"] != 3 {
		t.Fatalf("per-flow counts: %v", seq)
	}
}

func TestReplayGapSpacing(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 1000*Mbps, 0)
	var times []sim.Time
	b.OnReceive(func(p *Packet) { times = append(times, s.Now()) })
	b.Freeze()
	b.SetReplayGap(10 * sim.Microsecond)
	for i := 0; i < 3; i++ {
		a.Send(&Packet{Dst: "b", Size: 1500})
	}
	s.Run()
	b.Thaw()
	s.Run()
	if len(times) != 3 {
		t.Fatalf("got %d", len(times))
	}
	if d := times[1] - times[0]; d != 10*sim.Microsecond {
		t.Fatalf("gap = %v", d)
	}
}

func TestWireLossAllOrNothing(t *testing.T) {
	s := sim.New(1)
	a, b := pair(s, 1000*Mbps, 0)
	n := 0
	b.OnReceive(func(p *Packet) { n++ })
	w := NewWire(s, 0, b)
	a.Attach(w)
	w.SetLoss(1)
	for i := 0; i < 10; i++ {
		a.Send(&Packet{Dst: "b", Size: 100})
	}
	s.Run()
	if n != 0 || w.Lost != 10 {
		t.Fatalf("loss=1 delivered %d, lost %d", n, w.Lost)
	}
	w.SetLoss(0)
	a.Send(&Packet{Dst: "b", Size: 100})
	s.Run()
	if n != 1 {
		t.Fatal("loss=0 dropped a packet")
	}
	w.SetLoss(-5)
	if w.loss != 0 {
		t.Fatal("negative loss not clamped")
	}
	w.SetLoss(7)
	if w.loss != 1 {
		t.Fatal("loss > 1 not clamped")
	}
}

func TestSwitchForwarding(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, 2*sim.Microsecond)
	a := NewNIC(s, "a", 100*Mbps)
	b := NewNIC(s, "b", 100*Mbps)
	a.Attach(sw)
	b.Attach(sw)
	sw.Connect("a", a)
	sw.Connect("b", b)
	var got sim.Time
	b.OnReceive(func(p *Packet) { got = s.Now() })
	a.Send(&Packet{Dst: "b", Size: 1250})
	s.Run()
	want := 100*sim.Microsecond + 2*sim.Microsecond
	if got != want {
		t.Fatalf("arrival %v, want %v", got, want)
	}
	if sw.Forwarded != 1 {
		t.Fatalf("forwarded = %d", sw.Forwarded)
	}
}

func TestSwitchUnknownDst(t *testing.T) {
	s := sim.New(1)
	sw := NewSwitch(s, 0)
	a := NewNIC(s, "a", 100*Mbps)
	a.Attach(sw)
	a.Send(&Packet{Dst: "nope", Size: 100})
	s.Run()
	if sw.Unknown != 1 {
		t.Fatalf("unknown = %d", sw.Unknown)
	}
}

func TestTxTimeZeroRate(t *testing.T) {
	if Bitrate(0).TxTime(1000) != 0 {
		t.Fatal("zero rate should yield zero tx time")
	}
}

func TestPacketCloneAndString(t *testing.T) {
	p := &Packet{ID: 7, Src: "a", Dst: "b", Flow: "a>b", Size: 100}
	c := p.Clone()
	c.ID = 9
	if p.ID != 7 {
		t.Fatal("clone aliased")
	}
	if p.String() == "" {
		t.Fatal("empty string")
	}
}

// Property: for any packet sizes, total received bytes equal total sent
// bytes on a loss-free path, and arrivals are monotone in time.
func TestPropertyConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := sim.New(9)
		a, b := pair(s, 100*Mbps, 3*sim.Microsecond)
		var rxBytes uint64
		last := sim.Time(-1)
		ok := true
		b.OnReceive(func(p *Packet) {
			rxBytes += uint64(p.Size)
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
		var txBytes uint64
		for _, raw := range sizes {
			size := int(raw%1500) + 1
			txBytes += uint64(size)
			a.Send(&Packet{Dst: "b", Size: size})
		}
		s.Run()
		return ok && rxBytes == txBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: freeze/thaw never loses or duplicates packets.
func TestPropertyFreezeLossless(t *testing.T) {
	f := func(n uint8, freezeAfter uint8) bool {
		s := sim.New(11)
		a, b := pair(s, 1000*Mbps, 0)
		count := int(n%40) + 1
		cut := int(freezeAfter) % (count + 1)
		recv := 0
		b.OnReceive(func(p *Packet) { recv++ })
		for i := 0; i < cut; i++ {
			a.Send(&Packet{Dst: "b", Size: 500})
		}
		s.Run()
		b.Freeze()
		for i := cut; i < count; i++ {
			a.Send(&Packet{Dst: "b", Size: 500})
		}
		s.Run()
		b.Thaw()
		s.Run()
		return recv == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
