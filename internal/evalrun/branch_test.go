package evalrun

import "testing"

// TestBranchTableSharedStrictlyBetter is the acceptance property: at
// fan-out >= 4 the shared-lineage fan-out moves strictly fewer
// control-LAN bytes, holds strictly fewer server-side chain bytes, and
// has the whole frontier in service strictly sooner than naive
// per-branch full copies.
func TestBranchTableSharedStrictlyBetter(t *testing.T) {
	r := BranchTable(1, 4)
	if r.Shared.AllRunningS <= 0 {
		t.Fatal("shared fan-out frontier never fully entered service")
	}
	if r.Naive.AllRunningS <= 0 {
		t.Fatal("naive fan-out frontier never fully entered service")
	}
	if r.Shared.MovedMB >= r.Naive.MovedMB {
		t.Fatalf("shared moved %.0f MB, naive %.0f MB — sharing saved nothing", r.Shared.MovedMB, r.Naive.MovedMB)
	}
	if r.Shared.AllRunningS >= r.Naive.AllRunningS {
		t.Fatalf("shared frontier live at %.0f s, naive at %.0f s — multicast staging not faster",
			r.Shared.AllRunningS, r.Naive.AllRunningS)
	}
	if r.Shared.StoredMB >= r.Naive.StoredMB {
		t.Fatalf("shared stores %.0f MB, naive %.0f MB — refcounting not deduplicating", r.Shared.StoredMB, r.Naive.StoredMB)
	}
	if r.Shared.MulticastSavedMB <= 0 {
		t.Fatal("shared staging reported no multicast savings")
	}
	if r.Naive.MulticastSavedMB != 0 {
		t.Fatalf("naive staging multicast %f MB — baseline contaminated", r.Naive.MulticastSavedMB)
	}
}

// TestBranchTableDeterministic: the benchmark is replayable bit-for-bit.
func TestBranchTableDeterministic(t *testing.T) {
	a, b := BranchTable(3, 4), BranchTable(3, 4)
	if *a != *b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
