// Command benchrunner regenerates the figures and tables of the paper's
// evaluation (§7) and prints paper-vs-measured rows.
//
// Usage:
//
//	benchrunner -all
//	benchrunner -fig 6
//	benchrunner -table swap
//	benchrunner -fig 4 -seed 7 -quick
//	benchrunner -all -quick -json > bench.json
//	benchrunner -table scale -json -snapshot BENCH_scale.json -label "PR 6"
//	benchrunner -table scale -cpuprofile cpu.pprof
//
// Each experiment is deterministic for a given seed; -quick shrinks the
// workloads (fewer iterations, smaller files) for a fast sanity pass.
// -json emits one object keyed by figure/table name with the measured
// scalar results, for machine-readable tracking across revisions.
// -snapshot appends this run's results (tagged -label) to a trajectory
// file, so successive revisions accumulate comparable entries instead
// of overwriting each other. -cpuprofile / -memprofile write pprof
// profiles of the run for hot-path work (docs/scale.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"emucheck/internal/evalrun"
)

// snapshotSchema tags trajectory files; bump it only on breaking shape
// changes (entries are append-only across revisions).
const snapshotSchema = "emucheck-bench/v1"

// snapshotFile is the persisted perf trajectory: one entry per
// (label, figure/table) per recorded run, append-only.
type snapshotFile struct {
	Schema  string          `json:"schema"`
	Entries []snapshotEntry `json:"entries"`
}

type snapshotEntry struct {
	Label   string          `json:"label"`
	Table   string          `json:"table"`
	Seed    int64           `json:"seed"`
	Results json.RawMessage `json:"results"`
}

// appendSnapshot loads path (if it exists), appends one entry per
// result in key order, and rewrites the file. A (label, table) pair
// already present in the trajectory is rejected — labels identify
// revisions, so a silent duplicate would corrupt the trajectory's
// meaning — unless replace is set, in which case the stale entries
// are dropped and re-recorded.
func appendSnapshot(path, label string, seed int64, keys []string, results map[string]any, replace bool) error {
	snap := snapshotFile{Schema: snapshotSchema}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &snap); err != nil {
			return fmt.Errorf("existing snapshot %s: %v", path, err)
		}
		if snap.Schema != snapshotSchema {
			return fmt.Errorf("snapshot %s has schema %q, want %q", path, snap.Schema, snapshotSchema)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	recording := make(map[string]bool, len(keys))
	for _, k := range keys {
		recording[k] = true
	}
	kept := snap.Entries[:0]
	for _, e := range snap.Entries {
		if e.Label == label && recording[e.Table] {
			if !replace {
				return fmt.Errorf("snapshot %s already has an entry for label %q, table %q (use -snapshot-replace to overwrite)",
					path, label, e.Table)
			}
			continue
		}
		kept = append(kept, e)
	}
	snap.Entries = kept
	for _, k := range keys {
		raw, err := json.Marshal(results[k])
		if err != nil {
			return err
		}
		snap.Entries = append(snap.Entries, snapshotEntry{Label: label, Table: k, Seed: seed, Results: raw})
	}
	out, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	var (
		fig         = flag.Int("fig", 0, "figure number to regenerate (4-9)")
		table       = flag.String("table", "", "table to regenerate: swap | freeblock | sync | dom0 | ablation | timeshare | branch | recovery | remediate | storage | scale | suite | suitebench | federation")
		all         = flag.Bool("all", false, "regenerate everything")
		seed        = flag.Int64("seed", 1, "simulation seed")
		quick       = flag.Bool("quick", false, "reduced workload sizes")
		fanout      = flag.Int("fanout", 4, "branch table fan-out")
		asJSON      = flag.Bool("json", false, "emit results as JSON instead of tables")
		snapshot    = flag.String("snapshot", "", "append results to this trajectory file (see BENCH_scale.json)")
		label       = flag.String("label", "", "label for -snapshot entries (e.g. a PR or revision name)")
		snapReplace = flag.Bool("snapshot-replace", false, "overwrite existing -snapshot entries with the same label and table instead of rejecting them")
		cpuprofile  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memprofile  = flag.String("memprofile", "", "write a pprof heap profile after the run to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchrunner:", err)
			}
		}()
	}

	iters4, iters5 := 6000, 600
	fileMB7 := int64(3 << 10) // the paper's 3 GB torrent
	fileMB8 := int64(512)
	copyMB9 := int64(512)
	ticksTS := int64(0) // timeshare default: 900 ticks per tenant
	if *quick {
		iters4, iters5 = 1500, 150
		fileMB7 = 512
		fileMB8 = 256
		copyMB9 = 256
		// ticksTS stays at the default: a shorter target parks each
		// tenant at most once, and a first swap-out is always a full
		// save, which would erase the incremental-vs-full comparison
		// the timeshare table exists to show.
	}

	type renderer interface{ Render() string }
	results := make(map[string]any)
	var resultKeys []string
	ran := false
	emit := func(key, title string, f func() renderer) {
		ran = true
		r := f()
		results[key] = r
		resultKeys = append(resultKeys, key)
		if *asJSON {
			return
		}
		fmt.Printf("== %s ==\n", title)
		fmt.Print(r.Render())
		fmt.Println()
	}
	run := func(n int, f func() renderer) {
		if *all || *fig == n {
			emit(fmt.Sprintf("fig%d", n), fmt.Sprintf("Figure %d", n), f)
		}
	}
	runT := func(name, title string, f func() renderer) {
		if *all || *table == name {
			emit(name, title, f)
		}
	}

	run(4, func() renderer { return evalrun.Fig4(*seed, iters4) })
	run(5, func() renderer { return evalrun.Fig5(*seed, iters5) })
	run(6, func() renderer { return evalrun.Fig6(*seed) })
	run(7, func() renderer { return evalrun.Fig7(*seed, fileMB7) })
	run(8, func() renderer { return evalrun.Fig8(*seed, fileMB8) })
	run(9, func() renderer { return evalrun.Fig9(*seed, copyMB9) })
	runT("swap", "Stateful swapping (§7.2)", func() renderer { return evalrun.SwapTable(*seed) })
	runT("freeblock", "Free-block elimination (§5.1)", func() renderer { return evalrun.FreeBlockTable(*seed) })
	runT("sync", "Checkpoint synchronization (§4.3)", func() renderer { return evalrun.SyncTable(*seed) })
	runT("dom0", "Dom0 interference (§7.1)", func() renderer { return evalrun.Dom0Jobs(*seed) })
	runT("ablation", "Ablation: delay-node capture (§4.4)", func() renderer { return evalrun.AblationDelayNode(*seed) })
	runT("timeshare", "Multi-tenancy: incremental vs full-copy vs stateless swapping", func() renderer { return evalrun.Timeshare(*seed, ticksTS) })
	runT("branch", "Branch fan-out: shared-lineage vs naive per-branch full copies", func() renderer { return evalrun.BranchTable(*seed, *fanout) })
	runT("recovery", "Crash recovery: checkpoint epochs vs restart-from-scratch", func() renderer { return evalrun.Recovery(*seed, *quick) })
	runT("remediate", "Unattended remediation: health-loop policies vs scripted recovery vs restart", func() renderer { return evalrun.Remediate(*seed, *quick) })
	runT("storage", "Tiered chain storage: cached vs uncached restores at fan-out", func() renderer { return evalrun.StorageTable(*seed, *fanout) })
	scaleSizes := []int{16, 128, 1000, 10000}
	if *quick {
		scaleSizes = []int{16, 128}
	}
	runT("scale", "Oversubscription at scale: tenants vs throughput and decision cost", func() renderer { return evalrun.Scale(*seed, scaleSizes) })
	suiteCount := 24
	if *quick {
		suiteCount = 12
	}
	runT("suite", "Scenario corpus under shared suite invariants", func() renderer { return evalrun.SuiteTable(*seed, suiteCount) })
	runT("suitebench", "Corpus throughput: serial vs parallel workers", func() renderer { return evalrun.SuiteBench(*seed, suiteCount, nil) })
	fedSizes, fedFacs := []int{1000, 10000}, []int{1, 2, 4, 8}
	if *quick {
		fedSizes, fedFacs = []int{200}, []int{1, 2}
	}
	runT("federation", "Federated facility sharding: conservative-window parallel fleets", func() renderer { return evalrun.Federation(*seed, fedSizes, fedFacs) })

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *asJSON {
		out, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
	if *snapshot != "" {
		if err := appendSnapshot(*snapshot, *label, *seed, resultKeys, results, *snapReplace); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
	}
}
