package sched

import (
	"container/heap"

	"emucheck/internal/sim"
)

// jobQueue is the admission queue as an intrusive doubly-linked list:
// push-back, pop-front, and removal of an arbitrary queued job are all
// O(1), against the O(n) slice splices the queue started as. FIFO
// order — the facility's fairness contract — is preserved exactly; the
// links live on the Job so no per-operation allocation happens either.
type jobQueue struct {
	head, tail *Job
	n          int
}

func (q *jobQueue) len() int    { return q.n }
func (q *jobQueue) front() *Job { return q.head }

func (q *jobQueue) pushBack(j *Job) {
	j.qprev, j.qnext = q.tail, nil
	if q.tail != nil {
		q.tail.qnext = j
	} else {
		q.head = j
	}
	q.tail = j
	j.inQueue = true
	q.n++
}

func (q *jobQueue) remove(j *Job) {
	if !j.inQueue {
		return
	}
	if j.qprev != nil {
		j.qprev.qnext = j.qnext
	} else {
		q.head = j.qnext
	}
	if j.qnext != nil {
		j.qnext.qprev = j.qprev
	} else {
		q.tail = j.qprev
	}
	j.qprev, j.qnext = nil, nil
	j.inQueue = false
	q.n--
}

// victimKey is one preemption candidate with its policy cost evaluated
// at decision time. The (k1, k2, admittedAt, idx) tuple is a strict
// total order reproducing the legacy stable insertion sort exactly:
//
//	FIFO:      (0,          0,        admittedAt, submit idx)
//	IdleFirst: (lastActive, parkCost, admittedAt, submit idx)
//	Priority:  (Priority,   0,        admittedAt, submit idx)
//
// The legacy scan collected candidates in submit order and
// stable-sorted them with a non-strict comparator whose final
// tie-break was admittedAt — so its effective order was exactly this
// tuple. Keying the heap on it makes victim selection independent of
// traversal order while staying byte-identical to the old decisions.
type victimKey struct {
	k1, k2 int64
	job    *Job
}

// victimHeap is a deterministic min-heap over preemption candidates.
// Building it is O(n) and popping the k victims a shortfall needs is
// O(k log n) — against the legacy O(n²) insertion sort (which also
// re-evaluated ParkCost hooks inside the comparator).
type victimHeap []victimKey

func (h victimHeap) Len() int { return len(h) }
func (h victimHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.k1 != b.k1 {
		return a.k1 < b.k1
	}
	if a.k2 != b.k2 {
		return a.k2 < b.k2
	}
	if a.job.admittedAt != b.job.admittedAt {
		return a.job.admittedAt < b.job.admittedAt
	}
	return a.job.idx < b.job.idx
}
func (h victimHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *victimHeap) Push(x any)   { *h = append(*h, x.(victimKey)) }
func (h *victimHeap) Pop() any {
	old := *h
	n := len(old)
	k := old[n-1]
	*h = old[:n-1]
	return k
}

// pop removes and returns the minimum-cost victim.
func (h *victimHeap) pop() *Job { return heap.Pop(h).(victimKey).job }

// key evaluates j's policy cost for the victim heap. ParkCost is
// consulted once per candidate per decision (IdleFirst only), not
// O(n²) times inside a sort comparator.
func (d *Scheduler) key(j *Job) victimKey {
	k := victimKey{job: j}
	switch d.Policy {
	case IdleFirst:
		k.k1 = int64(j.lastActive)
		k.k2 = j.parkCost()
	case Priority:
		k.k1 = int64(j.Priority)
	}
	return k
}

// trackRun indexes a job entering service as a preemption candidate.
// Only preemptible jobs with a Park hook ever enter the index, so
// victim selection walks exactly the set the legacy full-table scan
// filtered out of all submitted jobs.
func (d *Scheduler) trackRun(j *Job) {
	if !j.Preemptible || j.Hooks.Park == nil {
		return
	}
	j.runIdx = len(d.candidates)
	d.candidates = append(d.candidates, j)
}

// untrackRun drops a job leaving service from the candidate index
// (swap-with-last; selection order never depends on index order
// because the victim heap's key is a strict total order).
func (d *Scheduler) untrackRun(j *Job) {
	if j.runIdx < 0 {
		return
	}
	last := len(d.candidates) - 1
	moved := d.candidates[last]
	d.candidates[j.runIdx] = moved
	moved.runIdx = j.runIdx
	d.candidates[last] = nil
	d.candidates = d.candidates[:last]
	j.runIdx = -1
}

// victims builds the decision-time heap of preemptible running jobs
// eligible to be parked for candidate. nextEligible reports when the
// next residency-protected job matures, sim.Never if none.
func (d *Scheduler) victims(candidate *Job) (h victimHeap, nextEligible sim.Time) {
	now := d.S.Now()
	nextEligible = sim.Never
	h = make(victimHeap, 0, len(d.candidates))
	for _, j := range d.candidates {
		if d.Policy == Priority && j.Priority >= candidate.Priority {
			continue
		}
		// Residency counts actual service time: admission plumbing (node
		// setup, image fetch, swap-in) must not eat the protected window,
		// or oversubscribed pools thrash.
		if now-j.runningSince < d.MinResidency {
			if t := j.runningSince + d.MinResidency; t < nextEligible {
				nextEligible = t
			}
			continue
		}
		h = append(h, d.key(j))
	}
	heap.Init(&h)
	return h, nextEligible
}
