package sched

import (
	"testing"

	"emucheck/internal/sim"
)

// gangRig builds a scheduler plus helpers to submit instantly-starting
// jobs whose park/resume complete after a fixed simulated delay.
type gangRig struct {
	s *sim.Simulator
	d *Scheduler
}

func newGangRig(capacity int, policy Policy) *gangRig {
	s := sim.New(1)
	return &gangRig{s: s, d: New(s, capacity, policy)}
}

func (r *gangRig) job(name string, need int) *Job {
	return &Job{
		Name: name, Need: need, Preemptible: true,
		Hooks: Hooks{
			Start:  func(done func(error)) { r.s.After(sim.Second, "start", func() { done(nil) }) },
			Park:   func(done func(error)) { r.s.After(5*sim.Second, "park", func() { done(nil) }) },
			Resume: func(done func(error)) { r.s.After(sim.Second, "resume", func() { done(nil) }) },
		},
	}
}

// TestGangAdmitsAllOrNone: a gang larger than the free pool waits as a
// unit — no member starts until the whole batch fits — and then all
// members enter service together.
func TestGangAdmitsAllOrNone(t *testing.T) {
	r := newGangRig(4, FIFO)
	hold := r.job("hold", 2)
	if err := r.d.Submit(hold); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(11 * sim.Second) // past MinResidency

	gang := []*Job{r.job("b1", 1), r.job("b2", 1), r.job("b3", 1), r.job("b4", 1)}
	if err := r.d.SubmitGang(gang); err != nil {
		t.Fatal(err)
	}
	// Only 2 nodes free: no member may start piecemeal.
	r.s.RunFor(sim.Millisecond)
	for _, j := range gang {
		if j.State() != Queued {
			t.Fatalf("gang member %s is %v before the batch fits", j.Name, j.State())
		}
	}
	// The scheduler preempts the holder for the gang's total demand;
	// check right after the park (5 s) + start (1 s) window, before the
	// FIFO rotation starts trading members back out.
	r.s.RunFor(7 * sim.Second)
	for _, j := range gang {
		if j.State() != Running {
			t.Fatalf("gang member %s is %v, want running", j.Name, j.State())
		}
	}
	if hold.Preemptions() != 1 {
		t.Fatalf("holder preempted %d times, want 1", hold.Preemptions())
	}
	if r.d.GangAdmissions != 1 {
		t.Fatalf("GangAdmissions = %d, want 1", r.d.GangAdmissions)
	}
	// All four admissions happened at one instant (co-scheduled).
	at := gang[0].admittedAt
	for _, j := range gang[1:] {
		if j.admittedAt != at {
			t.Fatalf("member %s admitted at %v, first at %v — not co-scheduled", j.Name, j.admittedAt, at)
		}
	}
}

// TestGangRejectsOversizedBatch: a gang whose combined demand exceeds
// the pool can never be admitted and is refused at submit time.
func TestGangRejectsOversizedBatch(t *testing.T) {
	r := newGangRig(3, FIFO)
	err := r.d.SubmitGang([]*Job{r.job("a", 2), r.job("b", 2)})
	if err == nil {
		t.Fatal("oversized gang accepted")
	}
	if len(r.d.Jobs()) != 0 {
		t.Fatal("rejected gang left jobs enrolled")
	}
}

// TestGangMemberParksIndividually: after first admission a preempted
// gang member loses its gang tag and re-queues alone — the batch does
// not reform, and its sibling keeps running.
func TestGangMemberParksIndividually(t *testing.T) {
	r := newGangRig(2, FIFO)
	gang := []*Job{r.job("b1", 1), r.job("b2", 1)}
	if err := r.d.SubmitGang(gang); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(15 * sim.Second)
	// A newcomer needing 1 node preempts exactly one member; freeze
	// further rotation so the aftermath is observable.
	if err := r.d.Submit(r.job("late", 1)); err != nil {
		t.Fatal(err)
	}
	r.d.MinResidency = 10 * sim.Minute
	r.s.RunFor(7 * sim.Second)

	b1, b2 := gang[0], gang[1]
	if b1.Preemptions() != 1 || b2.Preemptions() != 0 {
		t.Fatalf("preemptions b1=%d b2=%d, want exactly the FIFO victim parked", b1.Preemptions(), b2.Preemptions())
	}
	if b2.State() != Running {
		t.Fatalf("sibling b2 is %v, want running — all-or-none must not apply after admission", b2.State())
	}
	if b1.State() != Queued {
		t.Fatalf("victim b1 is %v, want re-queued", b1.State())
	}
	if b1.gang != 0 {
		t.Fatal("victim kept its gang tag; the batch would reform in the queue")
	}
}

// TestGangFIFOOrderPreserved: a gang behind an earlier queued job must
// not jump it.
func TestGangFIFOOrderPreserved(t *testing.T) {
	r := newGangRig(2, FIFO)
	first := r.job("first", 2)
	if err := r.d.Submit(first); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(11 * sim.Second)
	blocked := r.job("blocked", 2) // queued behind the running first
	if err := r.d.Submit(blocked); err != nil {
		t.Fatal(err)
	}
	gang := []*Job{r.job("g1", 1), r.job("g2", 1)}
	if err := r.d.SubmitGang(gang); err != nil {
		t.Fatal(err)
	}
	// Window: preempt first (5 s park) + admit blocked (1 s start),
	// before the rotation turns over again.
	r.s.RunFor(7 * sim.Second)
	if blocked.State() != Running {
		t.Fatalf("queue head is %v; the gang overtook it", blocked.State())
	}
	for _, j := range gang {
		if j.State() == Running {
			t.Fatalf("gang member %s running ahead of the earlier-queued job", j.Name)
		}
	}
}
