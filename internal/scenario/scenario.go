// Package scenario implements the declarative multi-experiment testbed
// scripts behind the emucheck CLI: a scenario file names a hardware
// pool and scheduling policy, a fleet of experiments (nodes, links,
// LANs, a workload), a list of timed events (swap_out, swap_in,
// checkpoint, inject, finish), and assertions checked after the run.
// Files are validated up front and replayed deterministically — the
// same file and seed always produce the same history.
//
// The format is JSON (stdlib-only):
//
//	{
//	  "name": "timeshare",
//	  "seed": 42,
//	  "pool": 4,
//	  "policy": "idle-first",
//	  "run_for": "10m",
//	  "experiments": [
//	    {"name": "e1", "workload": "sleeploop",
//	     "nodes": [{"name": "e1a", "swappable": true}]}
//	  ],
//	  "events": [
//	    {"at": "30s", "action": "swap_out", "target": "e1"}
//	  ],
//	  "assertions": [
//	    {"type": "state", "target": "e1", "want": "parked"}
//	  ]
//	}
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"emucheck/internal/emulab"
	"emucheck/internal/federation"
	"emucheck/internal/health"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
	"emucheck/internal/storage"
)

// File is one parsed scenario.
type File struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Seed        int64  `json:"seed"`
	Pool        int    `json:"pool"`
	Policy      string `json:"policy,omitempty"`
	// Swap selects the stateful transfer mode for parks and resumes:
	// "full" (default) moves whole images, "incremental" moves only
	// dirty deltas against the checkpoint lineage.
	Swap string `json:"swap,omitempty"`
	// Storage selects the checkpoint-chain storage tier and the
	// node-local delta cache (see docs/storage.md). Absent, chains use
	// the legacy in-process store.
	Storage *Storage `json:"storage,omitempty"`
	// SaveDeadline bounds every checkpoint epoch's save phase: a
	// member that cannot barrier in time aborts the epoch cleanly
	// (straggler detection). Defaults to 30s when a faults stanza is
	// present, otherwise off.
	SaveDeadline string       `json:"save_deadline,omitempty"`
	RunFor       string       `json:"run_for"`
	Experiments  []Experiment `json:"experiments"`
	// Search, when present, turns the run into a state-search: one
	// experiment is checkpointed and then forked into a batch of
	// concurrently exploring branch tenants (Cluster.Branch), each
	// under its own perturbation seed.
	Search *Search `json:"search,omitempty"`
	// Faults is the seeded injection plan replayed against the run:
	// node crashes, control-LAN message loss and delay, slow disks and
	// slow saves. Same file + same seed = byte-identical faulty run.
	Faults []Fault `json:"faults,omitempty"`
	// Health arms the autonomous health & remediation loop for the run:
	// per-tenant probes with hysteresis drive unattended cordon, drain,
	// and re-admission from the last committed epoch. Absent, no probe
	// events enter the simulation and runs replay byte-identically to
	// health-less builds.
	Health *Health `json:"health,omitempty"`
	// Federation turns the file into a federated-fleet scenario: one
	// synthetic tenant fleet sharded over WAN-coupled facilities and run
	// as a conservative-window parallel simulation (internal/federation).
	// Federation scenarios are self-contained — they declare no
	// experiments, events, faults, search, or storage stanzas, and only
	// the federation assertion types apply.
	Federation *Federation `json:"federation,omitempty"`
	Events     []Event     `json:"events,omitempty"`
	Assertions []Assertion `json:"assertions,omitempty"`
}

// Federation configures a federated-fleet run (see docs/scale.md,
// "federated execution"). The digest is pinned per facility count;
// workers only changes the wall clock.
type Federation struct {
	Facilities int `json:"facilities"`
	Tenants    int `json:"tenants"`
	// Workers is the facility-worker goroutine count (0 or 1 = serial;
	// any value produces the byte-identical digest).
	Workers int `json:"workers,omitempty"`
	// Lookahead is the conservative window width (default 250ms).
	Lookahead string `json:"lookahead,omitempty"`
	// WANLatency is the declared minimum inter-facility latency; it must
	// be at least the lookahead (that inequality is what makes the
	// windows safe). Default: equal to the lookahead.
	WANLatency string `json:"wan_latency,omitempty"`
	// WANMbps is the inter-facility link rate (default 1000).
	WANMbps float64 `json:"wan_mbps,omitempty"`
	// CacheMB sizes each facility's delta cache (default 64).
	CacheMB int64 `json:"cache_mb,omitempty"`
	// Migration enables cross-facility migration of parked tenants;
	// WarmUp additionally ships the chain ahead to pre-seed the
	// destination cache.
	Migration bool `json:"migration,omitempty"`
	WarmUp    bool `json:"warmup,omitempty"`
}

// Health configures the autonomous health & remediation loop. The
// policy preset sets the detection knobs; probe_ms / threshold /
// hysteresis override individual knobs of the preset.
type Health struct {
	// Policy names a detection preset: fast, balanced (default), or
	// conservative.
	Policy string `json:"policy,omitempty"`
	// ProbeMs overrides the preset's probe period, in milliseconds.
	ProbeMs float64 `json:"probe_ms,omitempty"`
	// Threshold overrides how many consecutive failed probes flag a
	// tenant unhealthy.
	Threshold int `json:"threshold,omitempty"`
	// Hysteresis overrides how many consecutive clean probes confirm it
	// healthy again.
	Hysteresis int `json:"hysteresis,omitempty"`
	// Budget is the recovery attempts a tenant gets before the
	// controller quarantines it (default 3).
	Budget int `json:"budget,omitempty"`
	// BackoffMs seeds the exponential retry backoff (default 500 ms).
	BackoffMs float64 `json:"backoff_ms,omitempty"`
	// FallbackRestart re-instantiates from scratch when the stateful
	// recover path fails (e.g. no epoch ever committed).
	FallbackRestart bool `json:"fallback_restart,omitempty"`
}

// Fault is one planned injection against a named experiment.
type Fault struct {
	// Kind is one of: crash, crash_during_save, drop, delay,
	// slow_disk, slow_save.
	Kind   string `json:"kind"`
	At     string `json:"at"`
	Target string `json:"target"`
	// Node scopes the fault to one node (required for slow_disk /
	// slow_save; optional delivery filter for drop/delay).
	Node string `json:"node,omitempty"`
	// Topic filters drop/delay to one bus topic (default "checkpoint").
	Topic string `json:"topic,omitempty"`
	// Count is the deliveries a drop fault suppresses (default 1).
	Count int `json:"count,omitempty"`
	// ExtraMs is the added latency per delivery for delay faults
	// (0 = seeded jitter up to 20 ms).
	ExtraMs float64 `json:"extra_ms,omitempty"`
	// Factor divides the perturbed rate for slow faults (default 4).
	Factor float64 `json:"factor,omitempty"`
	// For bounds the injection window (drop/delay/slow; default 30s).
	For string `json:"for,omitempty"`
	// Seed perturbs this fault's own jittered choices (0: derived from
	// the file's seed and the fault's position in the list).
	Seed int64 `json:"seed,omitempty"`
}

// Storage configures the checkpoint-chain storage tier for the run.
type Storage struct {
	// Backend names the tier: "mem" (default; the legacy in-process
	// store), "disk" (node-local snapshot disk: local costs, capacity
	// budget, overflow spills to the pool), or "remote" (shared pool
	// over the control LAN with batched puts).
	Backend string `json:"backend"`
	// CacheMB sizes the node-local delta cache fronting remotely-homed
	// segments (0 = no cache).
	CacheMB int64 `json:"cache_mb,omitempty"`
	// DiskMB caps the disk tier's snapshot-disk budget (0 = default).
	DiskMB int64 `json:"disk_mb,omitempty"`
}

// Search configures a branch fan-out exploration.
type Search struct {
	// Parent names the experiment to branch from (every node must be
	// swappable — branch state rides the checkpoint chains).
	Parent string `json:"parent"`
	// CheckpointAt is when the branch-point checkpoint is captured.
	CheckpointAt string `json:"checkpoint_at"`
	// BranchAt is when the fan-out forks (must be after CheckpointAt).
	BranchAt string `json:"branch_at"`
	// FanOut is the number of branches.
	FanOut int `json:"fan_out"`
	// Seeds perturbs each branch (len must equal fan_out if present;
	// default seeds 100, 101, ...).
	Seeds []int64 `json:"seeds,omitempty"`
	// Naive switches to the evaluation baseline: every branch stages
	// its own full copy instead of sharing the checkpoint prefix.
	Naive bool `json:"naive,omitempty"`
}

// Experiment declares one tenant: its network and its workload.
type Experiment struct {
	Name     string `json:"name"`
	Priority int    `json:"priority,omitempty"`
	// Workload is one of the built-ins: idle, sleeploop, pingpong,
	// diskchurn.
	Workload string `json:"workload"`
	// Epochs, when set, runs the committed-epoch pipeline at this
	// period: periodic transparent checkpoints whose state commits to
	// the file-server lineages, so a crash recovers from an epoch at
	// most this stale. Requires every node swappable.
	Epochs string `json:"epochs,omitempty"`
	// SubmitAt delays submission (default: submitted at the start).
	SubmitAt string `json:"submit_at,omitempty"`
	Nodes    []Node `json:"nodes"`
	Links    []Link `json:"links,omitempty"`
	LANs     []LAN  `json:"lans,omitempty"`
}

// Node declares one experiment node.
type Node struct {
	Name      string `json:"name"`
	Swappable bool   `json:"swappable"`
}

// Link declares one (possibly shaped) duplex link.
type Link struct {
	A             string  `json:"a"`
	B             string  `json:"b"`
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`
	DelayMs       float64 `json:"delay_ms,omitempty"`
	LossPct       float64 `json:"loss_pct,omitempty"`
}

// LAN declares a switched LAN segment.
type LAN struct {
	Name          string   `json:"name"`
	Members       []string `json:"members"`
	BandwidthMbps float64  `json:"bandwidth_mbps,omitempty"`
}

// Event is one timed action against a named experiment.
type Event struct {
	At     string `json:"at"`
	Action string `json:"action"`
	Target string `json:"target"`
}

// Assertion is one post-run check.
type Assertion struct {
	Type   string `json:"type"`
	Target string `json:"target,omitempty"`
	Node   string `json:"node,omitempty"`
	Value  int64  `json:"value,omitempty"`
	Dur    string `json:"dur,omitempty"`
	Want   string `json:"want,omitempty"`
}

// Actions understood by the runner.
var actions = map[string]bool{
	"swap_out":   true,
	"swap_in":    true,
	"checkpoint": true,
	"inject":     true,
	"finish":     true,
	// recover restores a crashed tenant from its last committed epoch;
	// restart re-runs it from scratch (the stateless baseline).
	"recover": true,
	"restart": true,
}

// faultKinds understood by the runner.
var faultKinds = map[string]bool{
	"crash":             true,
	"crash_during_save": true,
	"drop":              true,
	"delay":             true,
	"slow_disk":         true,
	"slow_save":         true,
}

// Workloads understood by the runner.
var workloads = map[string]bool{
	"idle":      true,
	"sleeploop": true,
	"pingpong":  true,
	"diskchurn": true,
	"racyelect": true,
	// Distributed agreement workloads: bully leader election with an
	// injected leader crash, and a 2PC commit group whose coordinator
	// crash leaves participants blocked in doubt.
	"quorum":    true,
	"commit2pc": true,
}

// Assertion types understood by the runner.
var assertionTypes = map[string]bool{
	"state":                 true,
	"min_ticks":             true,
	"min_checkpoints":       true,
	"min_preemptions":       true,
	"all_admitted":          true,
	"max_queue_wait":        true,
	"virtual_elapsed_max":   true,
	"utilization_min":       true,
	"max_swap_mb":           true,
	"outcome_found":         true,
	"min_distinct_outcomes": true,
	"all_branches_admitted": true,
	// Fault-tolerance assertions: the tenant recovered from its crash,
	// lost at most this much work to the recovery, and at least this
	// many epochs aborted (proof the injected fault actually bit).
	"recovered":        true,
	"max_lost_work_ms": true,
	"epochs_aborted":   true,
	// Storage-tier assertions (need a storage stanza): the delta
	// cache's hit ratio stayed at or above value percent, and chain
	// state crossing the control LAN stayed under value MB.
	"min_cache_hit_ratio": true,
	"max_remote_mb":       true,
	// Health-loop assertions (need a health stanza): the loop detected
	// the failure within value ms, brought the tenant back in service
	// within value ms of the crash, and initiated at least value
	// (default 1) unattended remediations.
	"max_detect_ms": true,
	"max_mttr_ms":   true,
	"remediated":    true,
	// Federation assertions (need a federation stanza): every tenant
	// drained, at least value cross-facility migrations happened, and
	// WAN traffic stayed under value MB.
	"all_completed":  true,
	"min_migrations": true,
	"max_wan_mb":     true,
}

// federationAssertions are the only assertion types a federation
// scenario may use (there is no cluster, search, or storage tier to
// assert against).
var federationAssertions = map[string]bool{
	"all_completed":  true,
	"min_migrations": true,
	"max_wan_mb":     true,
}

// swapModes understood by the runner.
var swapModes = map[string]bool{
	"":            true, // default: full
	"full":        true,
	"incremental": true,
}

// Parse decodes a scenario file, rejecting unknown fields (typos in a
// declarative file should fail loudly, not silently no-op).
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	return &f, nil
}

// parseDur converts a "30s"/"10m" string to simulated time.
func parseDur(s string) (sim.Time, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", s)
	}
	return sim.Time(d.Nanoseconds()), nil
}

// Spec converts an experiment declaration to a testbed spec.
func (e *Experiment) Spec() emulab.Spec {
	sp := emulab.Spec{Name: e.Name}
	for _, n := range e.Nodes {
		sp.Nodes = append(sp.Nodes, emulab.NodeSpec{Name: n.Name, Swappable: n.Swappable})
	}
	for _, l := range e.Links {
		sp.Links = append(sp.Links, emulab.LinkSpec{
			A: l.A, B: l.B,
			Bandwidth: simnet.Bitrate(l.BandwidthMbps * float64(simnet.Mbps)),
			Delay:     sim.Time(l.DelayMs * float64(sim.Millisecond)),
			Loss:      l.LossPct / 100,
		})
	}
	for _, lan := range e.LANs {
		sp.LANs = append(sp.LANs, emulab.LANSpec{
			Name: lan.Name, Members: lan.Members,
			Bandwidth: simnet.Bitrate(lan.BandwidthMbps * float64(simnet.Mbps)),
		})
	}
	return sp
}

// Validate checks the scenario semantically; it returns every problem
// found, not just the first.
func Validate(f *File) []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if f.Name == "" {
		bad("scenario has no name")
	}
	if _, err := parseDur(f.RunFor); err != nil || f.RunFor == "" {
		bad("run_for %q does not parse", f.RunFor)
	}
	if f.Federation != nil {
		validateFederation(f, bad)
		return errs
	}
	if f.Pool <= 0 {
		bad("pool must be positive, got %d", f.Pool)
	}
	if _, err := sched.ParsePolicy(f.Policy); err != nil {
		bad("%v", err)
	}
	if !swapModes[f.Swap] {
		bad("unknown swap mode %q (want full or incremental)", f.Swap)
	}
	if st := f.Storage; st != nil {
		kind, err := storage.ParseBackendKind(st.Backend)
		if err != nil {
			bad("%v", err)
		}
		if st.CacheMB < 0 || st.DiskMB < 0 {
			bad("storage: negative cache_mb or disk_mb")
		}
		if err == nil && kind == storage.MemKind && st.CacheMB > 0 {
			bad("storage: cache_mb needs a disk or remote backend (the in-process store has nothing remote to cache)")
		}
	}
	if _, err := parseDur(f.SaveDeadline); err != nil {
		bad("save_deadline %q does not parse", f.SaveDeadline)
	}
	if h := f.Health; h != nil {
		if _, err := health.ParsePolicy(h.Policy); err != nil {
			bad("%v", err)
		}
		if h.ProbeMs < 0 || h.BackoffMs < 0 {
			bad("health: negative probe_ms or backoff_ms")
		}
		if h.Threshold < 0 || h.Hysteresis < 0 || h.Budget < 0 {
			bad("health: negative threshold, hysteresis, or budget")
		}
	}
	if len(f.Experiments) == 0 {
		bad("no experiments")
	}

	expByName := make(map[string]*Experiment)
	nodeOwner := make(map[string]string)
	for i := range f.Experiments {
		e := &f.Experiments[i]
		if e.Name == "" {
			bad("experiment %d has no name", i)
			continue
		}
		if _, dup := expByName[e.Name]; dup {
			bad("duplicate experiment %q", e.Name)
			continue
		}
		expByName[e.Name] = e
		if len(e.Nodes) == 0 {
			bad("experiment %q has no nodes", e.Name)
		}
		if !workloads[e.Workload] {
			bad("experiment %q: unknown workload %q", e.Name, e.Workload)
		}
		if (e.Workload == "pingpong" || e.Workload == "racyelect" || e.Workload == "commit2pc") && len(e.Nodes) < 2 {
			bad("experiment %q: %s needs two nodes", e.Name, e.Workload)
		}
		if e.Workload == "quorum" && len(e.Nodes) < 3 {
			bad("experiment %q: quorum needs three nodes (a crashed leader must leave a majority)", e.Name)
		}
		if _, err := parseDur(e.SubmitAt); err != nil {
			bad("experiment %q: submit_at %q does not parse", e.Name, e.SubmitAt)
		}
		if e.Epochs != "" {
			if d, err := parseDur(e.Epochs); err != nil || d <= 0 {
				bad("experiment %q: epochs %q does not parse", e.Name, e.Epochs)
			}
			if !e.Spec().Swappable() {
				bad("experiment %q: epochs needs every node swappable (commits ride the checkpoint chains)", e.Name)
			}
		}
		local := make(map[string]bool)
		for _, n := range e.Nodes {
			if owner, taken := nodeOwner[n.Name]; taken {
				bad("node %q of %q collides with %q (node names are control-network identities)", n.Name, e.Name, owner)
				continue
			}
			nodeOwner[n.Name] = e.Name
			local[n.Name] = true
		}
		for _, l := range e.Links {
			if !local[l.A] || !local[l.B] {
				bad("experiment %q: link %s-%s references unknown node", e.Name, l.A, l.B)
			}
		}
		for _, lan := range e.LANs {
			for _, m := range lan.Members {
				if !local[m] {
					bad("experiment %q: LAN %s references unknown node %s", e.Name, lan.Name, m)
				}
			}
		}
		if need := e.Spec().NodesNeeded(); need > f.Pool {
			bad("experiment %q needs %d nodes, pool is %d — it can never be admitted", e.Name, need, f.Pool)
		}
	}

	if s := f.Search; s != nil {
		parent, ok := expByName[s.Parent]
		if !ok {
			bad("search: unknown parent %q", s.Parent)
		} else {
			if !parent.Spec().Swappable() {
				bad("search: parent %q must be fully swappable (branch state rides the checkpoint chains)", s.Parent)
			}
			if s.FanOut > 0 {
				if need := parent.Spec().NodesNeeded() * s.FanOut; need > f.Pool {
					bad("search: fan-out %d needs %d nodes for gang admission, pool is %d", s.FanOut, need, f.Pool)
				}
			}
		}
		if s.FanOut <= 0 {
			bad("search: fan_out must be positive, got %d", s.FanOut)
		}
		ckAt, ckErr := parseDur(s.CheckpointAt)
		if ckErr != nil || s.CheckpointAt == "" {
			bad("search: checkpoint_at %q does not parse", s.CheckpointAt)
		}
		brAt, brErr := parseDur(s.BranchAt)
		if brErr != nil || s.BranchAt == "" {
			bad("search: branch_at %q does not parse", s.BranchAt)
		}
		if ckErr == nil && brErr == nil && brAt <= ckAt {
			bad("search: branch_at %q must come after checkpoint_at %q", s.BranchAt, s.CheckpointAt)
		}
		if len(s.Seeds) > 0 && len(s.Seeds) != s.FanOut {
			bad("search: %d seeds for fan_out %d", len(s.Seeds), s.FanOut)
		}
	}

	for i, ft := range f.Faults {
		if !faultKinds[ft.Kind] {
			bad("fault %d: unknown kind %q", i, ft.Kind)
			continue
		}
		if _, err := parseDur(ft.At); err != nil || ft.At == "" {
			bad("fault %d: at %q does not parse", i, ft.At)
		}
		if _, err := parseDur(ft.For); err != nil {
			bad("fault %d: for %q does not parse", i, ft.For)
		}
		target, ok := expByName[ft.Target]
		if !ok {
			bad("fault %d: unknown target %q", i, ft.Target)
			continue
		}
		nodeKnown := func(name string) bool {
			for _, n := range target.Nodes {
				if n.Name == name {
					return true
				}
			}
			return false
		}
		switch ft.Kind {
		case "slow_disk", "slow_save":
			if ft.Node == "" || !nodeKnown(ft.Node) {
				bad("fault %d: %s needs a node of %q, got %q", i, ft.Kind, ft.Target, ft.Node)
			}
		case "drop", "delay":
			if ft.Node != "" && !nodeKnown(ft.Node) {
				bad("fault %d: node %q is not in experiment %q", i, ft.Node, ft.Target)
			}
		}
		if ft.Factor < 0 || ft.Count < 0 || ft.ExtraMs < 0 {
			bad("fault %d: negative knob", i)
		}
	}

	for i, ev := range f.Events {
		if _, err := parseDur(ev.At); err != nil || ev.At == "" {
			bad("event %d: at %q does not parse", i, ev.At)
		}
		if !actions[ev.Action] {
			bad("event %d: unknown action %q", i, ev.Action)
		}
		target, ok := expByName[ev.Target]
		if !ok {
			bad("event %d: unknown target %q", i, ev.Target)
			continue
		}
		if (ev.Action == "swap_out" || ev.Action == "swap_in") && !target.Spec().Swappable() {
			bad("event %d: %s needs every node of %q swappable (stateful swap preserves node-local state)", i, ev.Action, ev.Target)
		}
	}

	for i, a := range f.Assertions {
		if !assertionTypes[a.Type] {
			bad("assertion %d: unknown type %q", i, a.Type)
			continue
		}
		if a.Target != "" {
			if _, ok := expByName[a.Target]; !ok {
				bad("assertion %d: unknown target %q", i, a.Target)
			}
		}
		switch a.Type {
		case "state":
			if a.Target == "" || a.Want == "" {
				bad("assertion %d: state needs target and want", i)
			}
		case "outcome_found", "min_distinct_outcomes", "all_branches_admitted":
			if f.Search == nil {
				bad("assertion %d: %s needs a search stanza", i, a.Type)
			}
			if a.Type == "outcome_found" && a.Want == "" {
				bad("assertion %d: outcome_found needs want", i)
			}
			if a.Type == "min_distinct_outcomes" && a.Value <= 0 {
				bad("assertion %d: min_distinct_outcomes needs a positive value", i)
			}
		case "min_ticks", "min_checkpoints":
			if a.Target == "" {
				bad("assertion %d: %s needs a target", i, a.Type)
			}
		case "recovered":
			if a.Target == "" {
				bad("assertion %d: recovered needs a target", i)
			}
		case "max_lost_work_ms":
			if a.Target == "" || a.Value <= 0 {
				bad("assertion %d: max_lost_work_ms needs target and a positive value (ms)", i)
			}
		case "max_detect_ms", "max_mttr_ms":
			if f.Health == nil {
				bad("assertion %d: %s needs a health stanza", i, a.Type)
			}
			if a.Target == "" || a.Value <= 0 {
				bad("assertion %d: %s needs target and a positive value (ms)", i, a.Type)
			}
		case "remediated":
			if f.Health == nil {
				bad("assertion %d: remediated needs a health stanza", i)
			}
			if a.Target == "" {
				bad("assertion %d: remediated needs a target", i)
			}
		case "epochs_aborted":
			if a.Value <= 0 {
				bad("assertion %d: epochs_aborted needs a positive value", i)
			}
		case "max_swap_mb":
			if a.Value <= 0 {
				bad("assertion %d: max_swap_mb needs a positive value (MB)", i)
			}
		case "min_cache_hit_ratio":
			if f.Storage == nil || f.Storage.CacheMB <= 0 {
				bad("assertion %d: min_cache_hit_ratio needs a storage stanza with cache_mb", i)
			}
			if a.Value <= 0 || a.Value > 100 {
				bad("assertion %d: min_cache_hit_ratio needs a value in (0, 100] percent", i)
			}
		case "max_remote_mb":
			if f.Storage == nil {
				bad("assertion %d: max_remote_mb needs a storage stanza", i)
			}
			if a.Value < 0 {
				bad("assertion %d: max_remote_mb needs a non-negative value (MB)", i)
			}
		case "max_queue_wait", "virtual_elapsed_max":
			if _, err := parseDur(a.Dur); err != nil || a.Dur == "" {
				bad("assertion %d: dur %q does not parse", i, a.Dur)
			}
			if a.Type == "virtual_elapsed_max" {
				if a.Target == "" || a.Node == "" {
					bad("assertion %d: virtual_elapsed_max needs target and node", i)
				} else if e, ok := expByName[a.Target]; ok {
					found := false
					for _, n := range e.Nodes {
						if n.Name == a.Node {
							found = true
							break
						}
					}
					if !found {
						bad("assertion %d: node %q is not in experiment %q", i, a.Node, a.Target)
					}
				}
			}
		}
	}
	return errs
}

// validateFederation checks a federation scenario: the stanza itself,
// the absence of every cluster-run stanza (the fleet is synthetic and
// there is no pool, search, or storage tier), and that only federation
// assertion types appear.
func validateFederation(f *File, bad func(string, ...any)) {
	fd := f.Federation
	if fd.Facilities <= 0 {
		bad("federation: facilities must be positive, got %d", fd.Facilities)
	}
	if fd.Tenants <= 0 {
		bad("federation: tenants must be positive, got %d", fd.Tenants)
	}
	if fd.Workers < 0 {
		bad("federation: workers must be non-negative, got %d", fd.Workers)
	}
	la, laErr := parseDur(fd.Lookahead)
	if laErr != nil {
		bad("federation: lookahead %q does not parse", fd.Lookahead)
	}
	if la == 0 {
		la = federation.DefaultLookahead
	}
	wl, wlErr := parseDur(fd.WANLatency)
	if wlErr != nil {
		bad("federation: wan_latency %q does not parse", fd.WANLatency)
	}
	if laErr == nil && wlErr == nil && fd.WANLatency != "" && wl < la {
		bad("federation: wan_latency %q below lookahead %v breaks the conservative window", fd.WANLatency, la)
	}
	if fd.WANMbps < 0 {
		bad("federation: negative wan_mbps")
	}
	if fd.CacheMB < 0 {
		bad("federation: negative cache_mb")
	}
	if f.Pool != 0 {
		bad("federation scenarios take no pool (each facility sizes its own)")
	}
	if len(f.Experiments) > 0 {
		bad("federation scenarios take no experiments (the fleet is synthetic)")
	}
	if len(f.Events) > 0 {
		bad("federation scenarios take no events")
	}
	if len(f.Faults) > 0 {
		bad("federation scenarios take no faults")
	}
	if f.Search != nil {
		bad("federation scenarios take no search stanza")
	}
	if f.Storage != nil {
		bad("federation scenarios take no storage stanza (each facility has its own cache; see cache_mb)")
	}
	if f.Health != nil {
		bad("federation scenarios take no health stanza (facilities run synthetic tenants, not probed experiments)")
	}
	for i, a := range f.Assertions {
		if !federationAssertions[a.Type] {
			bad("assertion %d: %q does not apply to a federation scenario", i, a.Type)
			continue
		}
		switch a.Type {
		case "min_migrations":
			if a.Value <= 0 {
				bad("assertion %d: min_migrations needs a positive value", i)
			}
			if fd.Facilities < 2 || !fd.Migration {
				bad("assertion %d: min_migrations needs migration enabled over at least two facilities", i)
			}
		case "max_wan_mb":
			if a.Value < 0 {
				bad("assertion %d: max_wan_mb needs a non-negative value (MB)", i)
			}
		}
	}
}
