package evalrun

import (
	"fmt"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
)

// BranchModeRow is one staging mode's outcome for the same fan-out.
type BranchModeRow struct {
	Mode string `json:"mode"`
	// MovedMB is the total control-LAN traffic of the whole exploration
	// (staging + the branches' own swap cycles), both directions.
	MovedMB float64 `json:"moved_mb"`
	// StoredMB is the server-side checkpoint-chain footprint: unique
	// refcounted bytes under sharing, the sum of private copies naive.
	StoredMB float64 `json:"stored_mb"`
	// MulticastSavedMB is the unicast surplus the one-pass staging
	// avoided (zero for the naive mode).
	MulticastSavedMB float64 `json:"multicast_saved_mb"`
	// AllRunningS is when the last branch entered service — the
	// wall-clock cost of materializing the frontier (0 = never within
	// the horizon).
	AllRunningS float64 `json:"all_running_s"`
}

// BranchResult is the branch fan-out benchmark: the same N-way fork of
// the same checkpointed parent, staged with shared-lineage multicast
// (refcounted chain store + clone-aware restore) versus naive
// per-branch full copies. Sharing must move strictly fewer control-LAN
// bytes and have the whole frontier exploring strictly sooner.
type BranchResult struct {
	FanOut   int     `json:"fan_out"`
	Seed     int64   `json:"seed"`
	PoolN    int     `json:"pool"`
	DirtyMB  int64   `json:"dirty_mb"`
	HorizonS float64 `json:"horizon_s"`

	Shared BranchModeRow `json:"shared"`
	Naive  BranchModeRow `json:"naive"`
}

// branchParentScenario builds the 2-node parent whose workload journals
// dirtyMB of state (the expensive computed past branches want to
// inherit) and then stays live with a tick loop.
func branchParentScenario(name string, dirtyMB int64) emucheck.Scenario {
	a, b := name+"a", name+"b"
	return emucheck.Scenario{
		Spec: emulab.Spec{
			Name:  name,
			Nodes: []emulab.NodeSpec{{Name: a, Swappable: true}, {Name: b, Swappable: true}},
			Links: []emulab.LinkSpec{{A: a, B: b}},
		},
		Setup: func(s *emucheck.Session) {
			self := s.Scenario.Spec.Name
			k := s.Kernel(a)
			var written int64
			var step func()
			step = func() {
				if written < dirtyMB<<20 {
					k.WriteDisk(1<<30+written, 2<<20, func() {
						written += 2 << 20
						s.C.Touch(self)
						k.Usleep(250*sim.Millisecond, step)
					})
					return
				}
				k.Usleep(sim.Second, func() {
					s.C.Touch(self)
					step()
				})
			}
			step()
		},
	}
}

// runBranchMode forks the same parent checkpoint fanout ways under one
// staging mode and measures bytes and time-to-frontier.
func runBranchMode(seed int64, fanout int, dirtyMB int64, horizon sim.Time, naive bool) BranchModeRow {
	pool := 2*fanout + 2
	c := emucheck.NewCluster(pool, seed, emucheck.FIFO)
	c.Incremental = true
	c.NaiveBranchCopy = naive

	sess, err := c.Submit(branchParentScenario("p", dirtyMB), 0)
	if err != nil {
		panic("branch: " + err.Error())
	}
	// Let the parent compute its past, then pin it with a checkpoint.
	c.RunFor(sim.Time(dirtyMB/2+10) * sim.Second)
	if err := sess.CheckpointAsync(emucheck.CheckpointOptions{Incremental: true}, nil); err != nil {
		panic("branch: " + err.Error())
	}
	c.RunFor(30 * sim.Second)

	specs := make([]emucheck.BranchSpec, fanout)
	for i := range specs {
		specs[i] = emucheck.BranchSpec{
			Perturb: emucheck.Perturbation{Kind: emucheck.SeedChange, Seed: int64(100 + i)},
		}
	}
	branches, err := c.Branch("p", sess.Tree.Head(), specs...)
	if err != nil {
		panic("branch: " + err.Error())
	}

	var allRunningAt sim.Time
	for c.Now() < horizon {
		c.RunFor(sim.Second)
		running := 0
		for _, b := range branches {
			if b.State() == "running" {
				running++
			}
		}
		if running == len(branches) {
			allRunningAt = c.Now()
			break
		}
	}

	var stored int64
	if naive {
		// Private chains: every branch holds its own full server copy.
		stored = c.Chains.StoredBytes()
		for _, b := range branches {
			if b.Exp != nil && b.Exp.Swap != nil {
				for _, lin := range b.Exp.Swap.Lineages() {
					stored += lin.ReplayBytes()
				}
			}
		}
	} else {
		stored = c.Chains.StoredBytes()
	}
	mode := "shared-lineage"
	if naive {
		mode = "naive-full-copy"
	}
	return BranchModeRow{
		Mode:             mode,
		MovedMB:          float64(c.TB.Server.Received+c.TB.Server.Served) / (1 << 20),
		StoredMB:         float64(stored) / (1 << 20),
		MulticastSavedMB: float64(c.TB.Server.MulticastSavedBytes) / (1 << 20),
		AllRunningS:      allRunningAt.Seconds(),
	}
}

// BranchTable runs the fan-out comparison (fanout 0 = 4).
func BranchTable(seed int64, fanout int) *BranchResult {
	if fanout <= 0 {
		fanout = 4
	}
	const dirtyMB = 48
	horizon := 30 * sim.Minute
	return &BranchResult{
		FanOut: fanout, Seed: seed, PoolN: 2*fanout + 2,
		DirtyMB: dirtyMB, HorizonS: horizon.Seconds(),
		Shared: runBranchMode(seed, fanout, dirtyMB, horizon, false),
		Naive:  runBranchMode(seed, fanout, dirtyMB, horizon, true),
	}
}

// Render prints the comparison.
func (r *BranchResult) Render() string {
	t := &metrics.Table{Header: []string{"mode", "moved MB", "stored MB", "mcast saved MB", "frontier live (s)"}}
	for _, row := range []BranchModeRow{r.Shared, r.Naive} {
		live := "never"
		if row.AllRunningS > 0 {
			live = fmt.Sprintf("%.0f", row.AllRunningS)
		}
		t.AddRow(row.Mode, fmt.Sprintf("%.0f", row.MovedMB), fmt.Sprintf("%.0f", row.StoredMB),
			fmt.Sprintf("%.0f", row.MulticastSavedMB), live)
	}
	s := fmt.Sprintf("%d-way branch fan-out of a %d MB-dirty 2-node parent (pool %d): shared-lineage multicast staging vs naive per-branch full copies\n",
		r.FanOut, r.DirtyMB, r.PoolN)
	return s + t.String()
}
