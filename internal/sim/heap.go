package sim

// eventHeap is a 4-ary indexed min-heap specialized to *Event, ordered
// by (when, seq). It replaces container/heap: the generic interface
// boxed every Push/Pop operand into an `any` (one allocation per
// schedule) and paid an indirect call per comparison and swap. Here
// sift-up and sift-down are plain in-package code over a []*Event, so
// the compiler inlines the comparisons and the only allocation left is
// the slice's amortized growth.
//
// Four-way branching halves the tree depth of the binary heap the
// standard library walks. Pop does more comparisons per level (up to
// four children) but far fewer levels — and levels, not comparisons,
// are the cache misses. The event queue is push/pop dominated
// (every DoAt is eventually a Pop), so the shallower tree wins on the
// fleet-scale workloads docs/scale.md measures.
//
// Each queued Event carries its heap index so Cancel and Reschedule
// stay O(log n) removals/fixes instead of linear scans; index is -1
// whenever the event is not queued.
type eventHeap struct {
	es []*Event
}

// eventLess is the one total order in the simulator: earlier time
// first, insertion sequence breaking ties. Every determinism digest in
// the repo pins this order.
func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (h *eventHeap) len() int { return len(h.es) }

// peek returns the earliest event without removing it.
func (h *eventHeap) peek() *Event { return h.es[0] }

// push queues e and records its index.
func (h *eventHeap) push(e *Event) {
	e.index = len(h.es)
	h.es = append(h.es, e)
	h.siftUp(e.index)
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() *Event {
	es := h.es
	e := es[0]
	n := len(es) - 1
	last := es[n]
	es[n] = nil
	h.es = es[:n]
	e.index = -1
	if n > 0 {
		last.index = 0
		h.es[0] = last
		h.siftDown(0)
	}
	return e
}

// remove unqueues the event at index i (Cancel's path).
func (h *eventHeap) remove(i int) {
	es := h.es
	e := es[i]
	n := len(es) - 1
	last := es[n]
	es[n] = nil
	h.es = es[:n]
	e.index = -1
	if i < n {
		last.index = i
		h.es[i] = last
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
}

// fix restores heap order after the event at index i changed its key
// (Reschedule's path).
func (h *eventHeap) fix(i int) {
	if !h.siftDown(i) {
		h.siftUp(i)
	}
}

func (h *eventHeap) siftUp(i int) {
	es := h.es
	e := es[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := es[parent]
		if !eventLess(e, p) {
			break
		}
		es[i] = p
		p.index = i
		i = parent
	}
	es[i] = e
	e.index = i
}

// siftDown moves the event at index i toward the leaves and reports
// whether it moved at all.
func (h *eventHeap) siftDown(i int) bool {
	es := h.es
	n := len(es)
	e := es[i]
	start := i
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Pick the least of up to four children.
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(es[c], es[min]) {
				min = c
			}
		}
		m := es[min]
		if !eventLess(m, e) {
			break
		}
		es[i] = m
		m.index = i
		i = min
	}
	if i == start {
		return false
	}
	es[i] = e
	e.index = i
	return true
}
