package guest

import (
	"testing"

	"emucheck/internal/sim"
	"emucheck/internal/simnet"
	"emucheck/internal/vclock"
)

func TestRunstateAcrossSuspend(t *testing.T) {
	s, k := newKernel(1)
	s.RunFor(2 * sim.Second)
	k.Suspend(func() {})
	s.RunFor(30 * sim.Second)
	k.Resume(nil)
	s.RunFor(sim.Second)
	rs := k.Clock.RunstateSnapshot()
	// The 30 s frozen interval must not be charged to any state.
	var total sim.Time
	for _, v := range rs.Time {
		total += v
	}
	if total > 4*sim.Second {
		t.Fatalf("runstate accounted %v; checkpoint leaked into statistics", total)
	}
}

func TestTSCGatedThroughKernelSuspend(t *testing.T) {
	s, k := newKernel(1)
	s.RunFor(sim.Second)
	k.Suspend(func() {})
	s.RunFor(sim.Second)
	v1 := k.Clock.ReadTSC() // gated value (includes the engage leak)
	s.RunFor(10 * sim.Second)
	if got := k.Clock.ReadTSC(); got != v1 {
		t.Fatal("TSC advanced during the checkpoint")
	}
	if k.Clock.TSCGateHits() != 2 {
		t.Fatalf("gate hits = %d", k.Clock.TSCGateHits())
	}
	k.Resume(nil)
	s.RunFor(sim.Second)
	if got := k.Clock.ReadTSC(); got <= v1 {
		t.Fatal("TSC did not resume")
	}
}

func TestRxOrderPreservedAcrossFreeze(t *testing.T) {
	s, ka, kb := kernelPair(1)
	var got []int
	kb.Handle("seq", func(_ simnet.Addr, m *Message) { got = append(got, m.Data.(int)) })
	for i := 0; i < 3; i++ {
		ka.Send("b", 400, &Message{Port: "seq", Data: i})
	}
	s.RunFor(50 * sim.Millisecond)
	kb.Suspend(func() {})
	for i := 3; i < 8; i++ {
		ka.Send("b", 400, &Message{Port: "seq", Data: i})
	}
	s.RunFor(100 * sim.Millisecond)
	kb.Resume(nil)
	s.Run()
	if len(got) != 8 {
		t.Fatalf("received %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestFlowLabelsAssigned(t *testing.T) {
	s, ka, kb := kernelPair(2)
	var flow string
	kb.M.ExpNIC.OnReceive(func(p *simnet.Packet) { flow = p.Flow })
	ka.Send("b", 100, &Message{Port: "x"})
	s.Run()
	if flow != "a>b" {
		t.Fatalf("flow = %q", flow)
	}
}

func TestTxQueueVisibility(t *testing.T) {
	s, ka, _ := kernelPair(3)
	ka.Suspend(func() {})
	s.RunFor(20 * sim.Millisecond)
	for i := 0; i < 5; i++ {
		ka.Send("b", 100, &Message{Port: "x"})
	}
	// The tx softirq is frozen: all but the in-service packet queue up.
	if ka.TxQueueLen() < 4 {
		t.Fatalf("tx queue = %d", ka.TxQueueLen())
	}
	ka.Resume(nil)
	s.Run()
	if ka.TxQueueLen() != 0 {
		t.Fatal("tx queue not drained after resume")
	}
}

func TestDilatedKernelSleep(t *testing.T) {
	s, k := newKernel(4)
	k.P.WakeupJitterMean = 0
	k.P.WakeupJitterStddev = 0
	k.Clock.SetDilation(2)
	var wokeVirtual, wokeReal sim.Time
	k.Usleep(10*sim.Millisecond, func() {
		wokeVirtual, wokeReal = k.Monotonic(), s.Now()
	})
	s.Run()
	if wokeVirtual != 20*sim.Millisecond {
		t.Fatalf("virtual wake at %v, want 20ms (tick semantics unchanged)", wokeVirtual)
	}
	if wokeReal != 40*sim.Millisecond {
		t.Fatalf("real wake at %v, want 40ms under 2x dilation", wokeReal)
	}
}

func TestOfflineRunstateDuringCheckpoint(t *testing.T) {
	s, k := newKernel(5)
	s.RunFor(sim.Second)
	k.Suspend(func() {})
	if got := k.Clock.RunstateSnapshot(); got.Time[vclock.Offline] != 0 {
		// Offline time is never *accumulated* (accounting is frozen),
		// it is only the state label during the checkpoint.
		t.Fatalf("offline accumulated %v while frozen", got.Time[vclock.Offline])
	}
	s.RunFor(sim.Second)
	k.Resume(nil)
	s.RunFor(sim.Second)
}

func TestForceDirtyBypassesWSSCap(t *testing.T) {
	d := DirtyTracker{PageSize: 4096, Resident: 50000, MaxResident: 65536, ActiveWSS: 12000}
	d.Touch(20000)
	if d.Dirty() != 12000 {
		t.Fatalf("touch not WSS-capped: %d", d.Dirty())
	}
	d.ForceDirty(30000)
	if d.Dirty() != 42000 {
		t.Fatalf("force dirty = %d", d.Dirty())
	}
	// Touch must not claw back force-dirtied pages.
	d.Touch(100)
	if d.Dirty() != 42000 {
		t.Fatalf("touch reduced dirty to %d", d.Dirty())
	}
	d.ForceDirty(1 << 30)
	if d.Dirty() != 50000 {
		t.Fatalf("force dirty exceeded resident: %d", d.Dirty())
	}
}

func TestGrowCapsAtGuestMemory(t *testing.T) {
	d := DirtyTracker{PageSize: 4096, Resident: 65000, MaxResident: 65536, ActiveWSS: 0}
	d.Grow(10000)
	if d.Resident != 65536 {
		t.Fatalf("resident = %d", d.Resident)
	}
}
