package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emucheck/internal/scenario"
)

// run invokes the CLI seam capturing both streams.
func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := cli(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// passingScenario completes ~300 sleeploop ticks in 30 simulated
// seconds; failingScenario demands a tick count no 30s run can reach.
const passingScenario = `{
  "name": "tiny-pass",
  "seed": 3,
  "pool": 1,
  "policy": "fifo",
  "run_for": "30s",
  "experiments": [
    {"name": "e1", "workload": "sleeploop", "nodes": [{"name": "e1a"}]}
  ],
  "assertions": [
    {"type": "min_ticks", "target": "e1", "value": 100},
    {"type": "state", "target": "e1", "want": "running"}
  ]
}`

const failingScenario = `{
  "name": "tiny-fail",
  "seed": 3,
  "pool": 1,
  "policy": "fifo",
  "run_for": "30s",
  "experiments": [
    {"name": "e1", "workload": "sleeploop", "nodes": [{"name": "e1a"}]}
  ],
  "assertions": [
    {"type": "min_ticks", "target": "e1", "value": 1000000}
  ]
}`

func writeScenario(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCLIBadFlagExitsTwo(t *testing.T) {
	code, _, stderr := run(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "flag") {
		t.Fatalf("stderr lacks usage/flag diagnostics: %q", stderr)
	}
}

func TestCLIEmptyDirFails(t *testing.T) {
	code, _, stderr := run(t, "-dir", t.TempDir())
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "no scenario files") {
		t.Fatalf("stderr = %q, want a no-scenario-files error", stderr)
	}
}

func TestCLIUnparsableScenarioFails(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, "bad.json", `{"name": "bad", "bogus_field": 1}`)
	code, _, stderr := run(t, "-dir", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "bad.json") {
		t.Fatalf("stderr = %q, want the offending path", stderr)
	}
}

// TestCLIDirCorpus: a directory corpus with one failing scenario exits
// nonzero and names the failure; an all-green corpus exits zero.
func TestCLIDirCorpus(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, "a-pass.json", passingScenario)
	writeScenario(t, dir, "b-fail.json", failingScenario)
	code, stdout, _ := run(t, "-dir", dir)
	if code != 1 {
		t.Fatalf("exit %d, want 1 for a failing corpus", code)
	}
	if !strings.Contains(stdout, "tiny-fail") || !strings.Contains(stdout, "FAIL") {
		t.Fatalf("report does not name the failing scenario:\n%s", stdout)
	}

	good := t.TempDir()
	writeScenario(t, good, "a-pass.json", passingScenario)
	code, stdout, stderr := run(t, "-dir", good)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stderr: %s\n%s", code, stderr, stdout)
	}
	if !strings.Contains(stdout, "tiny-pass") {
		t.Fatalf("report missing the scenario:\n%s", stdout)
	}
}

// TestCLIGenOutRoundTrip: -gen-out materializes the generated matrix as
// scenario files that parse, validate, and then run green under -dir —
// the reproduce-a-generated-failure workflow the flag exists for.
func TestCLIGenOutRoundTrip(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := run(t, "-gen-out", dir, "-seed", "5", "-count", "3")
	if code != 0 {
		t.Fatalf("gen-out exit %d, stderr: %s", code, stderr)
	}
	paths := strings.Fields(strings.TrimSpace(stdout))
	if len(paths) != 3 {
		t.Fatalf("printed %d paths, want 3:\n%s", len(paths), stdout)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := scenario.Parse(data)
		if err != nil {
			t.Fatalf("%s does not re-parse: %v", p, err)
		}
		if errs := scenario.Validate(f); len(errs) != 0 {
			t.Fatalf("%s does not validate: %v", p, errs)
		}
	}
	code, stdout, stderr = run(t, "-dir", dir)
	if code != 0 {
		t.Fatalf("generated corpus failed under -dir: exit %d, stderr: %s\n%s", code, stderr, stdout)
	}
}

// TestCLIJSONDeterministic: two same-seed -json invocations are
// byte-identical (the report carries no wall-clock fields).
func TestCLIJSONDeterministic(t *testing.T) {
	args := []string{"-seed", "9", "-count", "2", "-json"}
	code, out1, stderr := run(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(out1, "emusuite/v1") {
		t.Fatalf("JSON report lacks the schema tag:\n%s", out1)
	}
	code, out2, _ := run(t, args...)
	if code != 0 {
		t.Fatalf("second run exit %d", code)
	}
	if out1 != out2 {
		t.Fatal("same-seed -json reports differ")
	}
}

// TestCLIJUnit: -junit writes well-formed JUnit XML naming the suite.
func TestCLIJUnit(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, "a-pass.json", passingScenario)
	out := filepath.Join(t.TempDir(), "junit.xml")
	code, _, stderr := run(t, "-dir", dir, "-junit", out)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<testsuite", "emusuite", "tiny-pass"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JUnit output missing %q:\n%s", want, data)
		}
	}
}
