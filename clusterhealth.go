package emucheck

import (
	"fmt"

	"emucheck/internal/health"
	"emucheck/internal/remediate"
	"emucheck/internal/sched"
)

// HealthOptions configures the cluster's autonomous health loop: the
// failure-detection policy probes run under and the remediation
// controller's retry/budget knobs. Zero values take the balanced
// defaults of each package.
type HealthOptions struct {
	Policy    health.Policy
	Remediate remediate.Options
}

// EnableHealth arms the autonomous health & remediation loop: every
// scheduler-managed tenant (current and future) gets a per-node probe
// loop off the sim clock, and detector verdicts drive the remediation
// controller — cordon the suspect allocation, drain capacity, re-admit
// from the last committed epoch (or the restart fallback), with seeded
// backoff and a per-tenant budget that escalates to quarantine. With
// health never enabled, no probe events enter the simulation and runs
// are byte-identical to pre-health builds.
func (c *Cluster) EnableHealth(o HealthOptions) error {
	if c.health != nil {
		return fmt.Errorf("emucheck: health already enabled")
	}
	c.health = health.New(c.S, c.Seed, o.Policy, c.probeTenant)
	c.remed = remediate.New(c.S, c.Seed, o.Remediate, remediate.Hooks{
		Cordon: func(target string) (int, error) {
			sess := c.byName[target]
			if sess == nil || sess.job == nil {
				return 0, fmt.Errorf("emucheck: no scheduled tenant %q", target)
			}
			need := sess.job.Need
			if err := c.Sched.Cordon(need); err != nil {
				return 0, err
			}
			return need, nil
		},
		Uncordon: func(n int) error { return c.Sched.Uncordon(n) },
		Drain: func(target string) (int, error) {
			sess := c.byName[target]
			if sess == nil || sess.job == nil {
				return 0, fmt.Errorf("emucheck: no scheduled tenant %q", target)
			}
			// Draining only helps a job awaiting admission; once a prior
			// attempt's recovery is mid swap-in there is nothing to make
			// room for.
			switch sess.job.State() {
			case sched.Queued, sched.Crashed:
				return c.Sched.DrainFor(target)
			}
			return 0, nil
		},
		Recover: func(target string) error {
			sess := c.byName[target]
			if sess == nil || sess.job == nil {
				return fmt.Errorf("emucheck: no scheduled tenant %q", target)
			}
			// A previous attempt's recovery may still be queued or mid
			// swap-in; re-issuing would be an error, not a retry. Report
			// success and let the recheck loop watch it land.
			if sess.job.State() != sched.Crashed {
				return nil
			}
			if err := c.Recover(target); err != nil {
				return err
			}
			sess.remediations++
			return nil
		},
		Recovering: func(target string) bool {
			sess := c.byName[target]
			if sess == nil || sess.job == nil {
				return false
			}
			switch sess.job.State() {
			case sched.Queued, sched.Starting, sched.Resuming:
				return true
			}
			return false
		},
		Restart: func(target string) error {
			sess := c.byName[target]
			if sess == nil || sess.job == nil {
				return fmt.Errorf("emucheck: no scheduled tenant %q", target)
			}
			if sess.job.State() != sched.Crashed {
				return nil
			}
			if err := c.Restart(target); err != nil {
				return err
			}
			sess.remediations++
			return nil
		},
		Quarantine: func(target string) {
			sess := c.byName[target]
			if sess == nil {
				return
			}
			// Quarantine retires the tenant: it leaves the queue, its
			// chains release, and its probe loop stops. The budget said
			// this tenant cannot be kept in service unattended.
			sess.quarantined = true
			c.health.Unwatch(target)
			if sess.job != nil {
				switch sess.job.State() {
				case sched.Queued, sched.Crashed, sched.Parked, sched.Running:
					if err := c.Finish(target); err != nil {
						sess.LastErr = err
					}
				}
			}
		},
	})
	c.health.OnVerdict = func(v health.Verdict) {
		sess := c.byName[v.Target]
		if v.Healthy {
			c.remed.NoteHealthy(v.Target)
			return
		}
		if sess != nil {
			sess.detections++
			sess.detectedAt = v.At
			if sess.crashedAt > 0 && v.At >= sess.crashedAt {
				if lat := v.At - sess.crashedAt; lat > sess.detectLatencyMax {
					sess.detectLatencyMax = lat
				}
			}
		}
		c.remed.NoteUnhealthy(v.Target)
	}
	for _, sess := range c.tenants {
		if sess.job != nil && sess.job.State() != sched.Done {
			if err := c.health.Watch(sess.Scenario.Spec.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

// HealthEnabled reports whether the autonomous health loop is armed.
func (c *Cluster) HealthEnabled() bool { return c.health != nil }

// Health returns the failure-detection monitor (nil before
// EnableHealth).
func (c *Cluster) Health() *health.Monitor { return c.health }

// Remediator returns the remediation controller (nil before
// EnableHealth).
func (c *Cluster) Remediator() *remediate.Controller { return c.remed }

// probeTenant is the monitor's mechanism hook: inspect the tenant right
// now. A running tenant answers per node — any crashed hypervisor fails
// the probe with that node as evidence. A crashed tenant fails at
// tenant level. Frozen tenants (queued, parked, mid-swap) and retired
// or quarantined ones are unreachable behind the checkpoint boundary:
// the probe skips, which is not evidence either way.
func (c *Cluster) probeTenant(name string) health.ProbeResult {
	sess := c.byName[name]
	if sess == nil || sess.job == nil || sess.quarantined {
		return health.ProbeResult{Status: health.StatusSkip}
	}
	switch sess.job.State() {
	case sched.Running:
		if sess.Exp == nil {
			return health.ProbeResult{Status: health.StatusSkip}
		}
		for _, ns := range sess.Exp.Spec.Nodes {
			if n := sess.Exp.Node(ns.Name); n != nil && n.HV.Crashed() {
				return health.ProbeResult{Status: health.StatusFail, Node: ns.Name}
			}
		}
		return health.ProbeResult{Status: health.StatusOK}
	case sched.Crashed:
		return health.ProbeResult{Status: health.StatusFail}
	default:
		return health.ProbeResult{Status: health.StatusSkip}
	}
}
