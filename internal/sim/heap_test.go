package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// oracleHeap is the pre-PR-8 container/heap implementation, kept
// verbatim as the ordering oracle for the specialized 4-ary heap.
type oracleHeap []*Event

func (h oracleHeap) Len() int { return len(h) }
func (h oracleHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h oracleHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *oracleHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *oracleHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// TestEventHeapMatchesOracle drives the 4-ary heap and the old
// container/heap through identical seeded random workloads — pushes
// with heavy timestamp collisions, interior removals, key changes —
// and requires the drain order to agree event for event. Agreement
// means the specialized heap preserves the exact (time, seq) total
// order every determinism digest in the repo is pinned to.
func TestEventHeapMatchesOracle(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var h eventHeap
		var o oracleHeap
		byID := map[int]*Event{} // live events in the 4-ary heap, by insertion id
		var mirror = map[int]*Event{}
		seq := uint64(0)
		id := 0

		push := func() {
			seq++
			// Few distinct timestamps → constant tie-breaking via seq.
			when := Time(rng.Intn(16))
			a := &Event{when: when, seq: seq, index: -1}
			b := &Event{when: when, seq: seq, index: -1}
			h.push(a)
			heap.Push(&o, b)
			byID[id] = a
			mirror[id] = b
			id++
		}
		removeOne := func() {
			for k, a := range byID { // any live event; map order is fine, same k on both sides
				h.remove(a.index)
				b := mirror[k]
				for i, e := range o {
					if e == b {
						heap.Remove(&o, i)
						break
					}
				}
				delete(byID, k)
				delete(mirror, k)
				return
			}
		}
		fixOne := func() {
			for k, a := range byID {
				seq++
				when := Time(rng.Intn(16))
				b := mirror[k]
				a.when, a.seq = when, seq
				b.when, b.seq = when, seq
				h.fix(a.index)
				for i, e := range o {
					if e == b {
						heap.Fix(&o, i)
						break
					}
				}
				return
			}
		}

		for op := 0; op < 4000; op++ {
			switch r := rng.Intn(10); {
			case r < 6:
				push()
			case r < 8:
				removeOne()
			default:
				fixOne()
			}
			if h.len() != o.Len() {
				t.Fatalf("seed %d op %d: len %d vs oracle %d", seed, op, h.len(), o.Len())
			}
			if h.len() > 0 {
				want := o[0]
				if got := h.peek(); got.when != want.when || got.seq != want.seq {
					t.Fatalf("seed %d op %d: peek (%v,%d) vs oracle (%v,%d)",
						seed, op, got.when, got.seq, want.when, want.seq)
				}
			}
		}
		// Drain both completely; order must agree exactly.
		for o.Len() > 0 {
			got := h.pop()
			want := heap.Pop(&o).(*Event)
			if got.when != want.when || got.seq != want.seq {
				t.Fatalf("seed %d drain: pop (%v,%d) vs oracle (%v,%d)",
					seed, got.when, got.seq, want.when, want.seq)
			}
			if got.index != -1 {
				t.Fatalf("seed %d: popped event keeps heap index %d", seed, got.index)
			}
		}
		if h.len() != 0 {
			t.Fatalf("seed %d: heap not drained, %d left", seed, h.len())
		}
	}
}

// TestEventHeapIndexInvariant checks that every queued event's index
// field always points at its own slot — Cancel and Reschedule depend
// on it being exact at all times.
func TestEventHeapIndexInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	var live []*Event
	seq := uint64(0)
	check := func() {
		for i, e := range h.es {
			if e.index != i {
				t.Fatalf("event at slot %d has index %d", i, e.index)
			}
		}
	}
	for op := 0; op < 3000; op++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			seq++
			e := &Event{when: Time(rng.Intn(32)), seq: seq, index: -1}
			h.push(e)
			live = append(live, e)
		} else {
			i := rng.Intn(len(live))
			h.remove(live[i].index)
			live = append(live[:i], live[i+1:]...)
		}
		check()
	}
}

// TestDoAtPopAllocationFree pins the zero-alloc contract: with a warm
// free list and a hoisted callback, a steady-state DoAt+Step cycle
// performs no heap allocations at all.
func TestDoAtPopAllocationFree(t *testing.T) {
	s := New(1)
	fired := 0
	fn := func() { fired++ }
	// Warm the pool and the heap slice.
	for i := 0; i < 64; i++ {
		s.DoAfter(Time(i)*Microsecond, "warm", fn)
	}
	s.Run()
	if fired != 64 {
		t.Fatalf("warm-up fired %d, want 64", fired)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		s.DoAfter(Microsecond, "steady", fn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state DoAt+Pop allocates %.1f per cycle, want 0", allocs)
	}
}

// TestDoAtPoolRecycles checks fire-and-forget events actually return
// to the free list and are reused rather than accumulating.
func TestDoAtPoolRecycles(t *testing.T) {
	s := New(1)
	fn := func() {}
	for round := 0; round < 10; round++ {
		for i := 0; i < 8; i++ {
			s.DoAfter(Time(i)*Millisecond, "cycle", fn)
		}
		s.Run()
	}
	if got := len(s.free); got != 8 {
		t.Fatalf("free list holds %d events after 10 rounds of 8, want 8", got)
	}
	for _, e := range s.free {
		if e.fn != nil || e.name != "" {
			t.Fatal("released event retains its callback or name")
		}
	}
}

// TestDoAtInterleavesWithAt checks pooled and handle events share one
// (time, seq) order: scheduling order is firing order at equal times.
func TestDoAtInterleavesWithAt(t *testing.T) {
	s := New(1)
	var order []string
	s.DoAt(Second, "a", func() { order = append(order, "a") })
	s.At(Second, "b", func() { order = append(order, "b") })
	s.DoAt(Second, "c", func() { order = append(order, "c") })
	tm := s.NewTimer("d", func() { order = append(order, "d") })
	tm.Schedule(Second)
	s.DoAt(Second, "e", func() { order = append(order, "e") })
	s.Run()
	want := "abcde"
	got := ""
	for _, x := range order {
		got += x
	}
	if got != want {
		t.Fatalf("fire order %q, want %q", got, want)
	}
}

// TestDoAtPastPanics mirrors At's causality check on the pooled path.
func TestDoAtPastPanics(t *testing.T) {
	s := New(1)
	s.At(Second, "advance", func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("DoAt in the past did not panic")
		}
	}()
	s.DoAt(0, "late", func() {})
}

// BenchmarkDoAtPop measures the pooled steady-state schedule+deliver
// cycle; BenchmarkAtPop the handle-returning one, for comparison.
func BenchmarkDoAtPop(b *testing.B) {
	s := New(1)
	fn := func() {}
	s.DoAfter(0, "warm", fn)
	s.Step()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.DoAfter(Microsecond, "bench", fn)
		s.Step()
	}
}

func BenchmarkAtPop(b *testing.B) {
	s := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(Microsecond, "bench", fn)
		s.Step()
	}
}
