package evalrun

import (
	"fmt"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
)

// RecoveryRow is one crash-handling mode's outcome.
type RecoveryRow struct {
	// Mode is "recover@Ns" (checkpoint recovery at an N-second epoch
	// period) or "restart" (re-run from scratch, the classic stateless
	// answer to a crash).
	Mode    string  `json:"mode"`
	PeriodS float64 `json:"period_s"` // committed-epoch period (0 = restart)
	// BackInServiceS is crash -> guests running again (provisioning +
	// state transfer).
	BackInServiceS float64 `json:"back_in_service_s"`
	// MTTRS is crash -> the tenant's pre-crash progress restored: back
	// in service plus re-executing whatever the restore point had not
	// banked. This is the metric that matters — a restart is "in
	// service" quickly but owes the whole run again.
	MTTRS float64 `json:"mttr_s"`
	// LostWorkS is the work the restore point did not cover (recovery:
	// crash minus last committed epoch; restart: everything banked).
	LostWorkS float64 `json:"lost_work_s"`
	// MovedMB is the file-server traffic the mode generated (epoch
	// commits plus the recovery transfer).
	MovedMB float64 `json:"moved_mb"`
	// Recovered reports the tenant reached its pre-crash progress
	// within the horizon.
	Recovered bool `json:"recovered"`
}

// RecoveryResult is the crash-recovery benchmark: one two-node tenant
// owing steady tick work, fail-stopped mid-run, then revived either by
// checkpoint recovery (restored from its last committed epoch, across
// several epoch periods) or by restart-from-scratch. Checkpoint
// recovery must strictly beat restart on both MTTR and lost work at
// the default period — that is the whole point of making checkpoints
// durable.
type RecoveryResult struct {
	Pool     int     `json:"pool"`
	Nodes    int     `json:"nodes"`
	CrashAtS float64 `json:"crash_at_s"`
	HorizonS float64 `json:"horizon_s"`

	Rows []RecoveryRow `json:"rows"`
}

// DefaultEpochPeriod is the committed-epoch period the acceptance
// comparison (recover vs restart) is made at.
const DefaultEpochPeriod = 15 * sim.Second

// runRecoveryMode crashes one tenant at crashAt and revives it the
// given way, measuring time back to service and back to pre-crash
// progress. period == 0 selects the restart baseline.
func runRecoveryMode(seed int64, period, crashAt, horizon sim.Time) RecoveryRow {
	const name = "t1"
	restart := period == 0
	c := emucheck.NewCluster(2, seed, emucheck.FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second

	var ticks, committed, lastRec int64
	a, b := name+"a", name+"b"
	sc := emucheck.Scenario{
		Spec: emulab.Spec{
			Name:  name,
			Nodes: []emulab.NodeSpec{{Name: a, Swappable: true}, {Name: b, Swappable: true}},
			Links: []emulab.LinkSpec{{A: a, B: b}},
		},
		Setup: func(s *emucheck.Session) {
			// A restart reboots from the golden image: the previous
			// incarnation's progress is gone.
			ticks = 0
			if !restart {
				s.Exp.Swap.OnCommit = func() { committed = ticks }
				if err := s.StartEpochs(period); err != nil {
					panic("recovery: " + err.Error())
				}
			}
			k := s.Kernel(a)
			var step func()
			step = func() {
				k.Usleep(100*sim.Millisecond, func() {
					if recs := int64(s.Recoveries()); recs != lastRec {
						// Just restored: the recovered state is the last
						// committed epoch's, so progress rolls back to it.
						lastRec = recs
						ticks = committed
					}
					ticks++
					c.Touch(name)
					step()
				})
			}
			step()
		},
	}
	if _, err := c.Submit(sc, 0); err != nil {
		panic("recovery: " + err.Error())
	}

	c.RunFor(crashAt)
	if err := c.Crash(name); err != nil {
		panic("recovery: " + err.Error())
	}
	preCrash := ticks
	// The facility's monitor reacts within a second of the node-down
	// report and begins the revival.
	c.S.DoAfter(sim.Second, "recovery.revive", func() {
		var err error
		if restart {
			err = c.Restart(name)
		} else {
			err = c.Recover(name)
		}
		if err != nil {
			panic("recovery: " + err.Error())
		}
	})

	sess := c.Tenant(name)
	row := RecoveryRow{PeriodS: period.Seconds(), Mode: fmt.Sprintf("recover@%.0fs", period.Seconds())}
	if restart {
		row.Mode = "restart"
	}
	var backAt, restoredAt sim.Time
	for c.Now() < horizon {
		c.RunFor(sim.Second)
		if backAt == 0 && sess.State() == "running" {
			backAt = c.Now()
		}
		if backAt != 0 && ticks >= preCrash {
			restoredAt = c.Now()
			break
		}
	}
	if backAt > 0 {
		row.BackInServiceS = (backAt - crashAt).Seconds()
	}
	if restoredAt > 0 {
		row.Recovered = true
		row.MTTRS = (restoredAt - crashAt).Seconds()
	} else {
		row.MTTRS = (horizon - crashAt).Seconds() // censored at the horizon
	}
	if restart {
		// Everything the first incarnation banked is owed again.
		row.LostWorkS = float64(preCrash) / 10
	} else {
		row.LostWorkS = sess.LostWork().Seconds()
	}
	row.MovedMB = float64(c.TB.Server.ByTag[name]) / (1 << 20)
	return row
}

// Recovery runs the benchmark: checkpoint recovery across epoch
// periods against restart-from-scratch. quick shrinks the run for CI.
func Recovery(seed int64, quick bool) *RecoveryResult {
	crashAt := 180 * sim.Second
	horizon := 15 * sim.Minute
	periods := []sim.Time{5 * sim.Second, DefaultEpochPeriod, 60 * sim.Second}
	if quick {
		crashAt = 90 * sim.Second
		horizon = 8 * sim.Minute
		periods = []sim.Time{DefaultEpochPeriod}
	}
	r := &RecoveryResult{
		Pool: 2, Nodes: 2,
		CrashAtS: crashAt.Seconds(), HorizonS: horizon.Seconds(),
	}
	for _, p := range periods {
		r.Rows = append(r.Rows, runRecoveryMode(seed, p, crashAt, horizon))
	}
	r.Rows = append(r.Rows, runRecoveryMode(seed, 0, crashAt, horizon))
	return r
}

// Row returns the named mode's row (nil if absent).
func (r *RecoveryResult) Row(mode string) *RecoveryRow {
	for i := range r.Rows {
		if r.Rows[i].Mode == mode {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render prints the comparison.
func (r *RecoveryResult) Render() string {
	t := &metrics.Table{Header: []string{"mode", "back in service (s)", "MTTR (s)", "lost work (s)", "moved MB", "recovered"}}
	for _, row := range r.Rows {
		t.AddRow(row.Mode, fmt.Sprintf("%.0f", row.BackInServiceS), fmt.Sprintf("%.0f", row.MTTRS),
			fmt.Sprintf("%.1f", row.LostWorkS), fmt.Sprintf("%.0f", row.MovedMB), row.Recovered)
	}
	s := fmt.Sprintf("%d-node tenant crashed at t=%.0fs; MTTR is time back to pre-crash progress\n", r.Nodes, r.CrashAtS)
	return s + t.String()
}
