// Package core implements the paper's primary contribution: a
// transparent, coordinated checkpoint of an entire closed distributed
// system (§4).
//
// A Coordinator drives checkpoint epochs over the publish–subscribe
// notification bus on the control network. Two trigger modes are
// supported, as in §4.3:
//
//   - Scheduled ("checkpoint at time t"): the coordinator picks a global
//     time far enough ahead for notification propagation; every node
//     arms a local timer on its NTP-disciplined clock. The residual
//     suspend skew across nodes is bounded by clock-sync error (~200 µs
//     steady state), not by notification jitter.
//   - Event-driven ("checkpoint now"): nodes suspend on notification
//     arrival; skew is the control network's delivery jitter — an order
//     of magnitude worse, which is why the paper schedules.
//
// Each node's local save is Xen's live checkpoint behind the temporal
// firewall; delay nodes freeze and serialize their Dummynet state,
// capturing the bandwidth–delay product of every shaped link (§4.4).
// A barrier collects completions, then a scheduled "resume at R" brings
// the whole experiment back near-simultaneously so that resume skew is
// also sync-bounded (§3.2's observation that restart skew matters too).
package core

import (
	"fmt"

	"emucheck/internal/dummynet"
	"emucheck/internal/notify"
	"emucheck/internal/ntpsim"
	"emucheck/internal/sim"
	"emucheck/internal/xen"
)

// Mode selects how a checkpoint is triggered.
type Mode int

// Trigger modes.
const (
	Scheduled Mode = iota
	EventDriven
)

func (m Mode) String() string {
	if m == Scheduled {
		return "scheduled"
	}
	return "event-driven"
}

// Options tunes one distributed checkpoint.
type Options struct {
	Mode Mode
	// Lead is how far ahead a scheduled checkpoint is placed; it must
	// exceed worst-case notification delivery. Default 50 ms.
	Lead sim.Time
	// ResumeLead is the scheduling margin for the coordinated resume.
	ResumeLead sim.Time
	// Incremental saves only pages dirtied since the last checkpoint.
	Incremental bool
	// Target selects the image destination (scratch disk by default).
	Target xen.SaveTarget
	// HoldResume leaves the experiment frozen after the barrier: the
	// done callback fires with all nodes saved and suspended, and the
	// caller must later call ResumeHeld. Stateful swap-out uses this —
	// the "resume" happens at the next swap-in, possibly much later.
	HoldResume bool
	// SkipDelayNodes disables the §4.4 network-core capture, leaving
	// delay nodes running while endpoints freeze. The bandwidth–delay
	// product then drains into endpoint replay logs and re-emerges as a
	// burst at resume — the anomaly the paper's design avoids. Exists
	// for the ablation benchmark; never enable it in real use.
	SkipDelayNodes bool
}

func (o *Options) defaults() {
	if o.Lead <= 0 {
		o.Lead = 50 * sim.Millisecond
	}
	if o.ResumeLead <= 0 {
		// Must exceed worst-case clock error early in NTP convergence so
		// no node's local trigger lands in the past.
		o.ResumeLead = 50 * sim.Millisecond
	}
}

// Result describes one completed distributed checkpoint.
type Result struct {
	Epoch       int
	Mode        Mode
	ScheduledAt sim.Time // global target time (0 for event-driven)
	Images      []*xen.Image
	DelayStates []*dummynet.State

	// SuspendSkew is the spread of firewall-engage instants across
	// nodes — the transparency bound for the network (§3.2).
	SuspendSkew sim.Time
	// ResumeSkew is the spread of resume instants.
	ResumeSkew  sim.Time
	CompletedAt sim.Time
	// TotalBytes is the full image footprint of the epoch.
	TotalBytes int64
}

// MaxDowntime reports the longest per-node real downtime.
func (r *Result) MaxDowntime() sim.Time {
	var m sim.Time
	for _, img := range r.Images {
		if img.Downtime > m {
			m = img.Downtime
		}
	}
	return m
}

// Member is one checkpointed endpoint (an experiment node).
type Member struct {
	Name string
	HV   *xen.Hypervisor
}

// Coordinator orchestrates distributed checkpoints of a fixed set of
// members and delay nodes.
type Coordinator struct {
	s     *sim.Simulator
	bus   *notify.Bus
	ntp   *ntpsim.Sync
	nodes []*Member
	dns   []*dummynet.DelayNode

	// Scope names the experiment this coordinator serves. Notifications
	// carry it, and member daemons ignore messages scoped to other
	// experiments — several coordinators can share one control LAN.
	Scope string

	epoch   int
	current *run
	cancels []func()
	dead    bool

	// History holds every completed checkpoint, newest last — the
	// linear spine that time travel branches from.
	History []*Result
}

type run struct {
	opts    Options
	result  *Result
	barrier *notify.Barrier
	resumed *notify.Barrier
	done    func(*Result)

	suspendTimes []sim.Time
	resumeTimes  []sim.Time
}

// NewCoordinator wires a coordinator to its members. Every member's
// clock must already be NTP-disciplined via y.Start.
func NewCoordinator(s *sim.Simulator, bus *notify.Bus, y *ntpsim.Sync, members []*Member, delayNodes []*dummynet.DelayNode) *Coordinator {
	c := &Coordinator{s: s, bus: bus, ntp: y, nodes: members, dns: delayNodes}
	for _, m := range members {
		m := m
		c.cancels = append(c.cancels,
			bus.Subscribe(notify.TopicCheckpoint, func(msg *notify.Msg) { c.onCheckpoint(m, msg) }),
			bus.Subscribe(notify.TopicResume, func(msg *notify.Msg) { c.onResume(m, msg) }))
	}
	for _, d := range delayNodes {
		d := d
		c.cancels = append(c.cancels,
			bus.Subscribe(notify.TopicCheckpoint, func(msg *notify.Msg) { c.onCheckpointDelay(d, msg) }),
			bus.Subscribe(notify.TopicResume, func(msg *notify.Msg) { c.onResumeDelay(d, msg) }))
	}
	return c
}

// Shutdown unsubscribes the coordinator's daemons from the control LAN
// and refuses further checkpoints. A torn-down experiment's coordinator
// must go deaf: its successor may reuse the same scope, and epochs
// restart — a stale listener could otherwise fire saves on halted
// guests.
func (c *Coordinator) Shutdown() {
	c.dead = true
	for _, cancel := range c.cancels {
		cancel()
	}
	c.cancels = nil
	c.current = nil
}

// Epoch reports the number of checkpoints initiated.
func (c *Coordinator) Epoch() int { return c.epoch }

// Busy reports whether a checkpoint epoch is still in flight.
func (c *Coordinator) Busy() bool { return c.current != nil }

// TriggerFromNode initiates an event-driven checkpoint *from a member
// node* — the §4.3 use case where a break- or watch-point inside the
// experiment fires ("the checkpoint system should be able to trigger a
// checkpoint immediately in response to any system event"). The node's
// dom0 daemon publishes "checkpoint now" on the bus; the notification
// reaches the coordinator and every peer with control-network latency,
// so the resulting skew is jitter-bound, as the paper cautions.
func (c *Coordinator) TriggerFromNode(nodeName string, done func(*Result)) error {
	found := false
	for _, m := range c.nodes {
		if m.Name == nodeName {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("core: no member %q", nodeName)
	}
	if c.current != nil {
		return fmt.Errorf("core: checkpoint %d still in flight", c.epoch)
	}
	// One bus hop from the triggering node to the coordinator daemon,
	// then the normal event-driven fan-out.
	hop := c.s.Jitter(sim.Millisecond) + 200*sim.Microsecond
	c.s.After(hop, "core.node-trigger", func() {
		if c.current != nil {
			return // someone else got there first; their epoch covers us
		}
		if err := c.Checkpoint(Options{Mode: EventDriven, Incremental: true}, done); err != nil {
			panic("core: " + err.Error())
		}
	})
	return nil
}

// Checkpoint initiates one distributed checkpoint. done receives the
// result after every member has resumed. Only one checkpoint may be in
// flight at a time.
func (c *Coordinator) Checkpoint(opts Options, done func(*Result)) error {
	if c.dead {
		return fmt.Errorf("core: coordinator is shut down")
	}
	if c.current != nil {
		return fmt.Errorf("core: checkpoint %d still in flight", c.epoch)
	}
	opts.defaults()
	c.epoch++
	parties := len(c.nodes) + len(c.dns)
	r := &Result{Epoch: c.epoch, Mode: opts.Mode}
	cr := &run{opts: opts, result: r, done: done}
	cr.barrier = notify.NewBarrier(parties, func() { c.allSaved(cr) })
	cr.resumed = notify.NewBarrier(len(c.nodes), func() { c.allResumed(cr) })
	c.current = cr

	var at sim.Time
	if opts.Mode == Scheduled {
		at = c.s.Now() + opts.Lead
		r.ScheduledAt = at
	}
	c.bus.Publish(&notify.Msg{Topic: notify.TopicCheckpoint, From: "coordinator", Scope: c.Scope, At: at, Epoch: c.epoch})
	return nil
}

// onCheckpoint runs on a member's dom0 daemon when the notification
// arrives. It starts the live save with the proper suspend deadline.
func (c *Coordinator) onCheckpoint(m *Member, msg *notify.Msg) {
	cr := c.current
	if cr == nil || msg.Scope != c.Scope || msg.Epoch != c.epoch {
		return
	}
	var suspendAt sim.Time
	if msg.At > 0 {
		suspendAt = c.ntp.LocalTrigger(m.Name, msg.At)
	} else {
		suspendAt = c.s.Now() + sim.Microsecond // "checkpoint now"
	}
	err := m.HV.Save(xen.SaveOptions{
		Target:      cr.opts.Target,
		SuspendAt:   suspendAt,
		Incremental: cr.opts.Incremental,
	}, func(img *xen.Image) {
		cr.result.Images = append(cr.result.Images, img)
		cr.suspendTimes = append(cr.suspendTimes, img.SuspendedAt)
		cr.result.TotalBytes += img.MemoryBytes + img.DeviceBytes
		// Report completion on the bus (daemon -> coordinator).
		cr.barrier.Arrive(m.Name)
	})
	if err != nil {
		panic(fmt.Sprintf("core: save on %s: %v", m.Name, err))
	}
}

// onCheckpointDelay freezes and serializes a delay node at its local
// trigger time.
func (c *Coordinator) onCheckpointDelay(d *dummynet.DelayNode, msg *notify.Msg) {
	cr := c.current
	if cr == nil || msg.Scope != c.Scope || msg.Epoch != c.epoch {
		return
	}
	if cr.opts.SkipDelayNodes {
		// Ablation mode: the network core keeps running; its in-flight
		// packets drain into frozen endpoints' replay logs.
		cr.barrier.Arrive(d.Name)
		return
	}
	var at sim.Time
	if msg.At > 0 {
		at = c.ntp.LocalTrigger(d.Name, msg.At)
	} else {
		at = c.s.Now() + sim.Microsecond
	}
	delay := at - c.s.Now()
	c.s.After(delay, "core.freeze-delaynode", func() {
		d.Freeze()
		st, err := d.Serialize()
		if err != nil {
			panic("core: " + err.Error())
		}
		cr.result.DelayStates = append(cr.result.DelayStates, st)
		cr.result.TotalBytes += int64(st.Bytes())
		cr.barrier.Arrive(d.Name)
	})
}

// allSaved fires when the barrier completes: publish the scheduled
// resume, or park the frozen experiment if the caller asked to hold.
func (c *Coordinator) allSaved(cr *run) {
	if c.dead {
		// A save completing after teardown must not publish a resume:
		// the successor coordinator reuses this scope and epoch 1.
		return
	}
	if cr.opts.HoldResume {
		cr.result.SuspendSkew = spread(cr.suspendTimes)
		cr.result.CompletedAt = c.s.Now()
		c.History = append(c.History, cr.result)
		if cr.done != nil {
			cr.done(cr.result)
		}
		return
	}
	at := c.s.Now() + cr.opts.ResumeLead
	c.bus.Publish(&notify.Msg{Topic: notify.TopicResume, From: "coordinator", Scope: c.Scope, At: at, Epoch: cr.result.Epoch})
}

// Held reports whether a checkpoint is parked awaiting ResumeHeld.
func (c *Coordinator) Held() bool {
	return c.current != nil && c.current.opts.HoldResume && c.current.barrier.Done()
}

// ResumeHeld resumes an experiment parked by a HoldResume checkpoint.
// after fires once every node is live again.
func (c *Coordinator) ResumeHeld(after func(*Result)) error {
	cr := c.current
	if cr == nil || !cr.opts.HoldResume || !cr.barrier.Done() {
		return fmt.Errorf("core: nothing held")
	}
	cr.done = after
	at := c.s.Now() + cr.opts.ResumeLead
	c.bus.Publish(&notify.Msg{Topic: notify.TopicResume, From: "coordinator", Scope: c.Scope, At: at, Epoch: cr.result.Epoch})
	return nil
}

func (c *Coordinator) onResume(m *Member, msg *notify.Msg) {
	cr := c.current
	if cr == nil || msg.Scope != c.Scope || msg.Epoch != c.epoch {
		return
	}
	at := c.ntp.LocalTrigger(m.Name, msg.At)
	c.s.After(at-c.s.Now(), "core.resume", func() {
		err := m.HV.Resume(func() {
			cr.resumeTimes = append(cr.resumeTimes, c.s.Now())
			cr.resumed.Arrive(m.Name)
		})
		if err != nil {
			panic(fmt.Sprintf("core: resume on %s: %v", m.Name, err))
		}
	})
}

func (c *Coordinator) onResumeDelay(d *dummynet.DelayNode, msg *notify.Msg) {
	if c.current == nil || msg.Scope != c.Scope || msg.Epoch != c.epoch {
		return
	}
	if c.current.opts.SkipDelayNodes {
		return // never frozen
	}
	at := c.ntp.LocalTrigger(d.Name, msg.At)
	c.s.After(at-c.s.Now(), "core.thaw-delaynode", func() { d.Thaw() })
}

func (c *Coordinator) allResumed(cr *run) {
	if c.dead {
		return
	}
	cr.result.ResumeSkew = spread(cr.resumeTimes)
	cr.result.CompletedAt = c.s.Now()
	if !cr.opts.HoldResume {
		// Held runs were finalized and recorded at the barrier.
		cr.result.SuspendSkew = spread(cr.suspendTimes)
		c.History = append(c.History, cr.result)
	}
	c.current = nil
	if cr.done != nil {
		cr.done(cr.result)
	}
}

func spread(ts []sim.Time) sim.Time {
	if len(ts) == 0 {
		return 0
	}
	lo, hi := ts[0], ts[0]
	for _, t := range ts[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return hi - lo
}

// PeriodicCheckpointer repeatedly checkpoints an experiment at a fixed
// interval — the capture loop of the time-travel system (§6) and the
// driver for the paper's transparency experiments, which checkpoint
// every 5 seconds.
type PeriodicCheckpointer struct {
	C        *Coordinator
	Interval sim.Time
	Opts     Options
	OnResult func(*Result)

	stopped bool
	count   int
	limit   int
}

// Start begins checkpointing every interval until Stop (or until limit
// checkpoints if limit > 0). The first checkpoint fires one interval
// from now.
func (p *PeriodicCheckpointer) Start(limit int) {
	p.limit = limit
	p.stopped = false
	p.schedule()
}

func (p *PeriodicCheckpointer) schedule() {
	p.C.s.After(p.Interval, "periodic.ckpt", func() {
		if p.stopped {
			return
		}
		err := p.C.Checkpoint(p.Opts, func(r *Result) {
			p.count++
			if p.OnResult != nil {
				p.OnResult(r)
			}
			if p.limit > 0 && p.count >= p.limit {
				p.stopped = true
				return
			}
			p.schedule()
		})
		if err != nil {
			// Previous epoch still draining; retry next interval.
			p.schedule()
		}
	})
}

// Stop halts the loop after the in-flight checkpoint, if any.
func (p *PeriodicCheckpointer) Stop() { p.stopped = true }

// Count reports completed checkpoints.
func (p *PeriodicCheckpointer) Count() int { return p.count }
