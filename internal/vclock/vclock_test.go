package vclock

import (
	"testing"
	"testing/quick"

	"emucheck/internal/sim"
)

func TestVirtualTracksRealWhileRunning(t *testing.T) {
	s := sim.New(1)
	s.RunFor(5 * sim.Second)
	c := New(s, 0)
	s.RunFor(3 * sim.Second)
	if got := c.SystemTime(); got != 3*sim.Second {
		t.Fatalf("system time = %v, want 3s", got)
	}
}

func TestFreezeStopsTime(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunFor(sim.Second)
	c.Freeze(0)
	before := c.SystemTime()
	s.RunFor(10 * sim.Second)
	if c.SystemTime() != before {
		t.Fatal("time advanced while frozen")
	}
	c.Thaw(0)
	if got := c.SystemTime(); got != sim.Second {
		t.Fatalf("after thaw = %v, want 1s", got)
	}
	s.RunFor(sim.Second)
	if got := c.SystemTime(); got != 2*sim.Second {
		t.Fatalf("resumed time = %v, want 2s", got)
	}
}

func TestLeakIsObservable(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunFor(sim.Second)
	c.Freeze(50 * sim.Microsecond)
	s.RunFor(sim.Second)
	c.Thaw(30 * sim.Microsecond)
	want := sim.Second + 80*sim.Microsecond
	if got := c.SystemTime(); got != want {
		t.Fatalf("post-thaw time = %v, want %v", got, want)
	}
	if c.LeakTotal() != 80*sim.Microsecond {
		t.Fatalf("leak total = %v", c.LeakTotal())
	}
	if c.Freezes() != 1 {
		t.Fatal("freeze count")
	}
}

func TestWallClockUsesEpoch(t *testing.T) {
	s := sim.New(1)
	epoch := sim.Time(1_234_000_000_000)
	c := New(s, epoch)
	s.RunFor(sim.Second)
	if got := c.WallClock(); got != epoch+sim.Second {
		t.Fatalf("wall = %v", got)
	}
}

func TestGettimeofdayMicrosecondResolution(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunFor(1500) // 1.5 us
	if got := c.Gettimeofday(); got != sim.Microsecond {
		t.Fatalf("gettimeofday = %v, want 1us", got)
	}
}

func TestTSCGating(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunFor(sim.Second)
	v1 := c.ReadTSC()
	if v1 != 3_000_000_000 {
		t.Fatalf("TSC after 1s = %d, want 3e9", v1)
	}
	c.Freeze(0)
	s.RunFor(sim.Second)
	if got := c.ReadTSC(); got != v1 {
		t.Fatal("TSC advanced while gated")
	}
	if c.TSCGateHits() != 1 {
		t.Fatalf("gate hits = %d", c.TSCGateHits())
	}
	c.Thaw(0)
}

func TestDoubleFreezePanics(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	c.Freeze(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Freeze(0)
}

func TestThawRunningPanics(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.Thaw(0)
}

func TestNegativeLeakClamped(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunFor(sim.Second)
	c.Freeze(-5)
	c.Thaw(-5)
	if c.SystemTime() != sim.Second {
		t.Fatal("negative leak changed time")
	}
}

func TestRunstateAccounting(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	c.SetRunstate(Running)
	s.RunFor(2 * sim.Second)
	c.SetRunstate(Blocked)
	s.RunFor(sim.Second)
	rs := c.RunstateSnapshot()
	if rs.Time[Running] != 2*sim.Second {
		t.Fatalf("running = %v", rs.Time[Running])
	}
	if rs.Time[Blocked] != sim.Second {
		t.Fatalf("blocked = %v", rs.Time[Blocked])
	}
}

func TestRunstateSuspendedDuringFreeze(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	c.SetRunstate(Running)
	s.RunFor(sim.Second)
	c.Freeze(0)
	s.RunFor(10 * sim.Second) // checkpoint interval: must not be charged
	c.Thaw(0)
	s.RunFor(sim.Second)
	rs := c.RunstateSnapshot()
	if rs.Time[Running] != 2*sim.Second {
		t.Fatalf("running = %v, want 2s (checkpoint concealed)", rs.Time[Running])
	}
}

func TestSerializeRequiresFrozen(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	if _, err := c.Serialize(); err == nil {
		t.Fatal("serialized a running clock")
	}
}

func TestSerializeRestoreRoundTrip(t *testing.T) {
	s := sim.New(1)
	c := New(s, 7*sim.Hour)
	s.RunFor(90 * sim.Second)
	c.Freeze(0)
	st, err := c.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	// Restore much later (swap-in after hours of real time).
	s.RunFor(2 * sim.Hour)
	c2 := Restore(s, st)
	if !c2.Frozen() {
		t.Fatal("restored clock running")
	}
	if c2.SystemTime() != 90*sim.Second {
		t.Fatalf("restored time = %v", c2.SystemTime())
	}
	c2.Thaw(0)
	s.RunFor(sim.Second)
	if c2.SystemTime() != 91*sim.Second {
		t.Fatalf("resumed = %v, want 91s (swap interval concealed)", c2.SystemTime())
	}
	if c2.WallClock() != 7*sim.Hour+91*sim.Second {
		t.Fatalf("wall = %v", c2.WallClock())
	}
}

// Property: across any sequence of freeze/thaw cycles with arbitrary
// durations, virtual elapsed time equals running real time plus the sum
// of leaks — the checkpoint interval itself never appears.
func TestPropertyTransparency(t *testing.T) {
	f := func(runs []uint16, freezes []uint16) bool {
		s := sim.New(2)
		c := New(s, 0)
		var running, leaks sim.Time
		n := len(runs)
		if len(freezes) < n {
			n = len(freezes)
		}
		for i := 0; i < n; i++ {
			r := sim.Time(runs[i]) * sim.Microsecond
			s.RunFor(r)
			running += r
			c.Freeze(sim.Microsecond)
			s.RunFor(sim.Time(freezes[i]) * sim.Millisecond)
			c.Thaw(sim.Microsecond)
			leaks += 2 * sim.Microsecond
		}
		return c.SystemTime() == running+leaks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDilationSlowsVirtualTime(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunFor(sim.Second)
	c.SetDilation(2) // guest perceives a 2x faster world
	s.RunFor(2 * sim.Second)
	// 1 s at rate 1 plus 2 s at rate 1/2 = 2 s virtual.
	if got := c.SystemTime(); got != 2*sim.Second {
		t.Fatalf("dilated time = %v, want 2s", got)
	}
	if c.Dilation() != 2 {
		t.Fatal("dilation factor")
	}
}

func TestDilationContinuousAcrossChange(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	s.RunFor(sim.Second)
	before := c.SystemTime()
	c.SetDilation(10)
	if got := c.SystemTime(); got != before {
		t.Fatalf("dilation change jumped the clock: %v -> %v", before, got)
	}
	c.SetDilation(1)
	s.RunFor(sim.Second)
	if got := c.SystemTime(); got != before+sim.Second {
		t.Fatalf("after restore = %v", got)
	}
}

func TestDilationAcrossFreeze(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	c.SetDilation(2)
	s.RunFor(2 * sim.Second) // 1 s virtual
	c.Freeze(0)
	s.RunFor(10 * sim.Second)
	c.Thaw(0)
	s.RunFor(2 * sim.Second) // +1 s virtual
	if got := c.SystemTime(); got != 2*sim.Second {
		t.Fatalf("dilated+frozen time = %v, want 2s", got)
	}
}

func TestDilationConversions(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	c.SetDilation(4)
	if got := c.ToReal(sim.Second); got != 4*sim.Second {
		t.Fatalf("ToReal = %v", got)
	}
	if got := c.ToVirtual(4 * sim.Second); got != sim.Second {
		t.Fatalf("ToVirtual = %v", got)
	}
}

func TestNonPositiveDilationPanics(t *testing.T) {
	s := sim.New(1)
	c := New(s, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.SetDilation(0)
}
