// Package remediate implements the actuator side of the autonomous
// health loop (ROADMAP item 2): a controller that consumes
// failure-detector verdicts and brings crashed tenants back without an
// operator in the loop. One unhealthy verdict opens a remediation
// episode: the tenant's suspect hardware is cordoned out of admission,
// capacity is proactively drained for the re-admission, and the tenant
// is re-admitted from its last committed checkpoint epoch through the
// hosting layer's recover path — with seeded exponential backoff
// between attempts and a per-tenant budget that escalates to quarantine
// when exhausted. The episode closes when the detector confirms the
// tenant healthy again (hysteresis), which releases the cordon.
//
// Like internal/fault, the controller knows *when* and *what*; the
// hosting Cluster supplies the *how* as Hooks. All timing is sim-clock
// DoAfter with Mix64-derived jitter — same seed, same remediation
// trajectory, byte for byte.
package remediate

import (
	"fmt"

	"emucheck/internal/sim"
)

// Options tunes the controller.
type Options struct {
	// Budget is how many recovery attempts a tenant gets before the
	// controller gives up and quarantines it. Cumulative over the run:
	// a crash-looping tenant exhausts it even if each loop briefly
	// reaches healthy.
	Budget int
	// BackoffBase seeds the attempt delay: attempt k waits
	// BackoffBase·2^(k-1) plus a seeded jitter in [0, BackoffBase).
	BackoffBase sim.Time
	// RecheckPeriod bounds how long the controller waits after
	// initiating a recovery for the detector to confirm health; if the
	// episode is still open after it, the attempt is treated as failed
	// and the next (budgeted, backed-off) attempt is scheduled.
	RecheckPeriod sim.Time
	// CordonProbation bounds how long an episode holds its cordon: the
	// suspect hardware rejoins the pool after this window even if the
	// episode is still open. Without it, a tenant whose allocation is
	// the whole pool could never be re-admitted — its own cordon would
	// starve its recovery.
	CordonProbation sim.Time
	// FallbackRestart re-instantiates the tenant from scratch when the
	// stateful recover path fails (e.g. no committed epoch exists yet).
	FallbackRestart bool
}

// withDefaults fills unset knobs.
func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 500 * sim.Millisecond
	}
	if o.RecheckPeriod <= 0 {
		o.RecheckPeriod = 30 * sim.Second
	}
	if o.CordonProbation <= 0 {
		o.CordonProbation = 30 * sim.Second
	}
	return o
}

// Hooks are the mechanism callbacks the hosting layer supplies. Cordon
// and Recover are required; the rest degrade gracefully when nil.
type Hooks struct {
	// Cordon withdraws the target's node allocation from admission and
	// reports how many nodes it cordoned.
	Cordon func(target string) (int, error)
	// Uncordon returns n previously cordoned nodes to the pool.
	Uncordon func(n int) error
	// Drain proactively parks running victims so the target's
	// re-admission does not wait for queue-head preemption; reports how
	// many victims it drained.
	Drain func(target string) (int, error)
	// Recover re-queues the crashed target for restoration from its
	// last committed checkpoint epoch.
	Recover func(target string) error
	// Recovering reports whether a previously initiated recovery is
	// still in flight (re-queued or mid swap-in). While it is, the
	// recheck loop re-arms without consuming budget — a slow restore is
	// not a failed attempt.
	Recovering func(target string) bool
	// Restart re-instantiates the target from scratch (the
	// FallbackRestart path when no epoch ever committed).
	Restart func(target string) error
	// Quarantine marks the target permanently out of service after the
	// budget is exhausted.
	Quarantine func(target string)
}

// episode is the per-tenant remediation state.
type episode struct {
	name        string
	idx         int
	attempts    int // budget consumed so far (cumulative)
	cordoned    int // nodes this episode holds cordoned
	gen         int // episode generation, guards stale probation timers
	active      bool
	quarantined bool
}

// Controller turns detector verdicts into cordon/drain/recover actions.
type Controller struct {
	S     *sim.Simulator
	Seed  int64
	Opt   Options
	Hooks Hooks

	byName map[string]*episode
	order  []*episode

	// Remediations counts recovery initiations that reached the
	// scheduler; Retries counts attempts re-scheduled after a failed or
	// unconfirmed one; Quarantines counts budget exhaustions.
	Remediations int
	Retries      int
	Quarantines  int
	// CordonsIssued/CordonsReleased track the cordon ledger;
	// DrainedVictims sums Drain results.
	CordonsIssued   int
	CordonsReleased int
	DrainedVictims  int
	// Errors records hook failures (mirroring fault.Plan.Errors): they
	// are remediation events, not crashes of the controller.
	Errors []string
}

// axBackoff tags the backoff-jitter Mix64 draws.
const axBackoff = 0xB0

// New creates a controller. Option zero-values get defaults.
func New(s *sim.Simulator, seed int64, opt Options, hooks Hooks) *Controller {
	return &Controller{
		S: s, Seed: seed, Opt: opt.withDefaults(), Hooks: hooks,
		byName: make(map[string]*episode),
	}
}

func (c *Controller) episodeFor(name string) *episode {
	e := c.byName[name]
	if e == nil {
		e = &episode{name: name, idx: len(c.order)}
		c.order = append(c.order, e)
		c.byName[name] = e
	}
	return e
}

// CordonedNodes sums the nodes all open episodes hold cordoned — the
// controller side of the suite's no-orphaned-cordon invariant: it must
// always equal the scheduler's cordon line.
func (c *Controller) CordonedNodes() int {
	n := 0
	for _, e := range c.order {
		n += e.cordoned
	}
	return n
}

// Quarantined reports whether the target exhausted its budget.
func (c *Controller) Quarantined(name string) bool {
	e := c.byName[name]
	return e != nil && e.quarantined
}

// Attempts reports the budget a target has consumed.
func (c *Controller) Attempts(name string) int {
	if e := c.byName[name]; e != nil {
		return e.attempts
	}
	return 0
}

// NoteUnhealthy opens a remediation episode for the target (detector
// flip to unhealthy). Verdicts for quarantined targets or already-open
// episodes are ignored — the internal retry loop owns an open episode.
func (c *Controller) NoteUnhealthy(target string) {
	e := c.episodeFor(target)
	if e.quarantined || e.active {
		return
	}
	e.active = true
	e.gen++
	if c.Hooks.Cordon != nil {
		n, err := c.Hooks.Cordon(target)
		if err != nil {
			c.Errors = append(c.Errors, fmt.Sprintf("cordon %s: %v", target, err))
		} else {
			e.cordoned = n
			c.CordonsIssued++
			// The cordon is bounded by probation: suspect hardware rejoins
			// the pool after the window even if the episode is still open,
			// so a tenant whose allocation is the whole pool cannot starve
			// its own recovery.
			gen := e.gen
			c.S.DoAfter(c.Opt.CordonProbation, "remediate.probation", func() {
				if e.gen == gen && e.cordoned > 0 {
					c.releaseCordon(e)
				}
			})
		}
	}
	c.scheduleAttempt(e)
}

// NoteHealthy closes the target's episode (detector flip back to
// healthy after hysteresis): the cordon lifts and the suspect hardware
// rejoins the pool.
func (c *Controller) NoteHealthy(target string) {
	e := c.byName[target]
	if e == nil || !e.active {
		return
	}
	c.closeEpisode(e)
}

func (c *Controller) closeEpisode(e *episode) {
	if e.cordoned > 0 {
		c.releaseCordon(e)
	}
	e.active = false
}

func (c *Controller) releaseCordon(e *episode) {
	if c.Hooks.Uncordon != nil {
		if err := c.Hooks.Uncordon(e.cordoned); err != nil {
			c.Errors = append(c.Errors, fmt.Sprintf("uncordon %s: %v", e.name, err))
		} else {
			c.CordonsReleased++
		}
	}
	e.cordoned = 0
}

// scheduleAttempt consumes one unit of budget and schedules the next
// recovery attempt after seeded exponential backoff — or quarantines
// when the budget is gone.
func (c *Controller) scheduleAttempt(e *episode) {
	if e.attempts >= c.Opt.Budget {
		c.quarantine(e)
		return
	}
	e.attempts++
	c.S.DoAfter(c.backoff(e), "remediate.attempt", func() { c.attempt(e) })
}

// backoff computes the delay before attempt e.attempts: exponential in
// the attempt number with a Mix64 jitter so retries across a fleet
// de-synchronize deterministically.
func (c *Controller) backoff(e *episode) sim.Time {
	shift := e.attempts - 1
	if shift > 6 {
		shift = 6
	}
	base := c.Opt.BackoffBase << uint(shift)
	jitter := sim.Time(sim.Mix64(c.Seed, int64(e.idx), int64(e.attempts), axBackoff) % uint64(c.Opt.BackoffBase))
	return base + jitter
}

// attempt executes one recovery: proactively drain capacity, then
// re-admit through the stateful recover path (or the restart fallback).
// Success arms a recheck — if the detector has not confirmed health by
// then, the attempt is treated as failed and the loop continues.
func (c *Controller) attempt(e *episode) {
	if e.quarantined || !e.active {
		return // episode closed (healthy) or escalated while backed off
	}
	if c.Hooks.Drain != nil {
		n, err := c.Hooks.Drain(e.name)
		if err != nil {
			c.Errors = append(c.Errors, fmt.Sprintf("drain %s: %v", e.name, err))
		}
		c.DrainedVictims += n
	}
	err := fmt.Errorf("remediate: no recover hook")
	if c.Hooks.Recover != nil {
		err = c.Hooks.Recover(e.name)
	}
	if err != nil && c.Opt.FallbackRestart && c.Hooks.Restart != nil {
		if rerr := c.Hooks.Restart(e.name); rerr != nil {
			c.Errors = append(c.Errors, fmt.Sprintf("restart %s: %v", e.name, rerr))
		} else {
			err = nil
		}
	}
	if err != nil {
		c.Errors = append(c.Errors, fmt.Sprintf("recover %s: %v", e.name, err))
		c.Retries++
		c.scheduleAttempt(e)
		return
	}
	c.Remediations++
	c.S.DoAfter(c.Opt.RecheckPeriod, "remediate.recheck", func() { c.recheck(e) })
}

// recheck runs when a recovery initiated RecheckPeriod ago has not been
// confirmed healthy. A restore still in flight just re-arms the timer;
// anything else is a failed attempt and re-enters the budgeted loop.
func (c *Controller) recheck(e *episode) {
	if !e.active || e.quarantined {
		return
	}
	if c.Hooks.Recovering != nil && c.Hooks.Recovering(e.name) {
		c.S.DoAfter(c.Opt.RecheckPeriod, "remediate.recheck", func() { c.recheck(e) })
		return
	}
	c.Retries++
	c.scheduleAttempt(e)
}

// quarantine gives up on the target: the budget is spent, the cordon
// lifts (holding suspect hardware forever would leak pool capacity),
// and the hosting layer marks the tenant out of service.
func (c *Controller) quarantine(e *episode) {
	e.quarantined = true
	c.Quarantines++
	c.closeEpisode(e)
	if c.Hooks.Quarantine != nil {
		c.Hooks.Quarantine(e.name)
	}
}
