package core

import (
	"testing"

	"emucheck/internal/dummynet"
	"emucheck/internal/guest"
	"emucheck/internal/node"
	"emucheck/internal/notify"
	"emucheck/internal/ntpsim"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
	"emucheck/internal/xen"
)

// rig is a two-node experiment with a delay node on the link.
type rig struct {
	s     *sim.Simulator
	bus   *notify.Bus
	ntp   *ntpsim.Sync
	ka    *guest.Kernel
	kb    *guest.Kernel
	dn    *dummynet.DelayNode
	coord *Coordinator
}

func newRig(seed int64) *rig {
	s := sim.New(seed)
	p := node.DefaultParams()
	ma := node.NewMachine(s, "a", p)
	mb := node.NewMachine(s, "b", p)
	ka := guest.New(ma, p, guest.DefaultConfig())
	kb := guest.New(mb, p, guest.DefaultConfig())
	ha := xen.New(ma, p, ka)
	hb := xen.New(mb, p, kb)
	dn := dummynet.NewDelayNode(s, "delay0", 100*simnet.Mbps, 5*sim.Millisecond)
	// a <-> delay node <-> b with ~zero-delay wires (paper §4.4).
	ma.ExpNIC.Attach(simnet.NewWire(s, 2*sim.Microsecond, dn.Forward))
	mb.ExpNIC.Attach(simnet.NewWire(s, 2*sim.Microsecond, dn.Reverse))
	dn.AttachForward(mb.ExpNIC)
	dn.AttachReverse(ma.ExpNIC)

	bus := notify.NewBus(s)
	y := ntpsim.New(s, ntpsim.DefaultModel(), seed)
	y.Start("a")
	y.Start("b")
	y.Start("delay0")
	coord := NewCoordinator(s, bus, y,
		[]*Member{{Name: "a", HV: ha}, {Name: "b", HV: hb}},
		[]*dummynet.DelayNode{dn})
	return &rig{s: s, bus: bus, ntp: y, ka: ka, kb: kb, dn: dn, coord: coord}
}

func TestScheduledCheckpointCompletes(t *testing.T) {
	r := newRig(1)
	r.s.RunFor(sim.Second)
	var res *Result
	if err := r.coord.Checkpoint(Options{}, func(x *Result, _ error) { res = x }); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(30 * sim.Second)
	if res == nil {
		t.Fatal("checkpoint never completed")
	}
	if len(res.Images) != 2 || len(res.DelayStates) != 1 {
		t.Fatalf("images=%d delays=%d", len(res.Images), len(res.DelayStates))
	}
	if r.ka.Suspended() || r.kb.Suspended() || r.dn.Forward.Frozen() {
		t.Fatal("experiment not fully resumed")
	}
	if res.TotalBytes <= 0 {
		t.Fatal("no bytes accounted")
	}
	if len(r.coord.History) != 1 {
		t.Fatal("history not recorded")
	}
}

func TestScheduledSkewBoundedByClockSync(t *testing.T) {
	r := newRig(2)
	// Let NTP converge well past the initial transient.
	r.s.RunFor(60 * sim.Second)
	var res *Result
	r.coord.Checkpoint(Options{Incremental: true}, func(x *Result, _ error) { res = x })
	r.s.RunFor(30 * sim.Second)
	if res == nil {
		t.Fatal("no result")
	}
	// Steady-state NTP: skew well under a millisecond (~2x200 µs).
	if res.SuspendSkew > 800*sim.Microsecond {
		t.Fatalf("suspend skew %v too large for scheduled mode", res.SuspendSkew)
	}
	if res.ResumeSkew > 2*sim.Millisecond {
		t.Fatalf("resume skew %v", res.ResumeSkew)
	}
}

func TestEventDrivenSkewIsWorse(t *testing.T) {
	// Compare modes at the same converged moment: scheduled skew should
	// be bounded by clock sync, event-driven by notification jitter.
	sched := newRig(3)
	sched.s.RunFor(60 * sim.Second)
	var rs *Result
	sched.coord.Checkpoint(Options{Mode: Scheduled, Incremental: true}, func(x *Result, _ error) { rs = x })
	sched.s.RunFor(30 * sim.Second)

	ev := newRig(3)
	ev.s.RunFor(60 * sim.Second)
	var re *Result
	ev.coord.Checkpoint(Options{Mode: EventDriven, Incremental: true}, func(x *Result, _ error) { re = x })
	ev.s.RunFor(30 * sim.Second)

	if rs == nil || re == nil {
		t.Fatal("missing results")
	}
	if re.SuspendSkew <= rs.SuspendSkew {
		t.Fatalf("event-driven skew %v not worse than scheduled %v", re.SuspendSkew, rs.SuspendSkew)
	}
}

func TestCheckpointTransparentToDistributedPingPong(t *testing.T) {
	r := newRig(4)
	// A ping-pong application across the delay node (5 ms one-way):
	// measures round-trip times in guest virtual time.
	var rtts []sim.Time
	var sentAt sim.Time
	pings := 0
	r.kb.Handle("ping", func(from simnet.Addr, m *guest.Message) {
		r.kb.Send("a", 200, &guest.Message{Port: "pong"})
	})
	var sendPing func()
	r.ka.Handle("pong", func(from simnet.Addr, m *guest.Message) {
		rtts = append(rtts, r.ka.Monotonic()-sentAt)
		pings++
		if pings < 30 {
			sendPing()
		}
	})
	sendPing = func() {
		sentAt = r.ka.Monotonic()
		r.ka.Send("b", 200, &guest.Message{Port: "ping"})
	}
	sendPing()

	// Checkpoint storm: 3 checkpoints while the ping-pong runs.
	pc := &PeriodicCheckpointer{C: r.coord, Interval: 2 * sim.Second, Opts: Options{Incremental: true}}
	pc.Start(3)
	r.s.RunFor(3 * sim.Minute)

	if pings < 30 {
		t.Fatalf("ping-pong starved: %d", pings)
	}
	if pc.Count() != 3 {
		t.Fatalf("checkpoints = %d", pc.Count())
	}
	// RTT through the delay node is >= 10 ms; checkpointed RTTs may see
	// the sync-skew bound extra, but never a checkpoint-sized (seconds)
	// gap in virtual time.
	for i, rtt := range rtts {
		if rtt < 10*sim.Millisecond {
			t.Fatalf("rtt %d = %v beat the emulated link", i, rtt)
		}
		if rtt > 60*sim.Millisecond {
			t.Fatalf("rtt %d = %v: checkpoint leaked into virtual time", i, rtt)
		}
	}
}

func TestNoInsideActivityDuringCheckpoints(t *testing.T) {
	r := newRig(5)
	// Busy guests.
	var churnA, churnB func()
	churnA = func() { r.ka.Compute(20*sim.Millisecond, "a.churn", churnA) }
	churnB = func() { r.kb.Compute(20*sim.Millisecond, "b.churn", churnB) }
	churnA()
	churnB()
	pc := &PeriodicCheckpointer{C: r.coord, Interval: sim.Second, Opts: Options{Incremental: true}}
	pc.Start(5)
	r.s.RunFor(2 * sim.Minute)
	if pc.Count() != 5 {
		t.Fatalf("checkpoints = %d", pc.Count())
	}
	if r.ka.FW.InsideFired != 0 || r.kb.FW.InsideFired != 0 {
		t.Fatalf("inside activity during checkpoint: a=%d b=%d", r.ka.FW.InsideFired, r.kb.FW.InsideFired)
	}
}

func TestConcurrentCheckpointRejected(t *testing.T) {
	r := newRig(6)
	r.s.RunFor(sim.Second)
	r.coord.Checkpoint(Options{}, nil)
	if err := r.coord.Checkpoint(Options{}, nil); err == nil {
		t.Fatal("overlapping checkpoint accepted")
	}
	r.s.RunFor(30 * sim.Second)
}

func TestInFlightPacketsSurviveCheckpoint(t *testing.T) {
	r := newRig(7)
	recv := 0
	r.kb.Handle("data", func(simnet.Addr, *guest.Message) { recv++ })
	r.s.RunFor(60 * sim.Second)
	// Fill the 5 ms delay pipe and checkpoint while packets are in it.
	for i := 0; i < 20; i++ {
		r.ka.Send("b", 1500, &guest.Message{Port: "data"})
	}
	var res *Result
	r.coord.Checkpoint(Options{Incremental: true, Lead: 2 * sim.Millisecond}, func(x *Result, _ error) { res = x })
	r.s.RunFor(30 * sim.Second)
	if res == nil {
		t.Fatal("no checkpoint")
	}
	if recv != 20 {
		t.Fatalf("received %d/20 across checkpoint", recv)
	}
	// The delay-node state should have captured some of the burst.
	captured := 0
	for _, st := range res.DelayStates {
		captured += len(st.Forward.DelayLine) + len(st.Forward.Queue)
	}
	if captured == 0 {
		t.Log("note: burst drained before freeze (timing-dependent); conservation still holds")
	}
}

func TestPeriodicCheckpointerStop(t *testing.T) {
	r := newRig(8)
	pc := &PeriodicCheckpointer{C: r.coord, Interval: sim.Second, Opts: Options{Incremental: true}}
	pc.Start(0)
	r.s.RunFor(3500 * sim.Millisecond)
	pc.Stop()
	n := pc.Count()
	r.s.RunFor(10 * sim.Second)
	if pc.Count() > n+1 {
		t.Fatalf("checkpointer kept running after stop: %d -> %d", n, pc.Count())
	}
}
