package xfer

import (
	"testing"

	"emucheck/internal/sim"
)

// TestMulticastChargesBytesOnce: staging n bytes to k receivers must
// cost the shared pipe one pass of n bytes, with the unicast surplus
// tallied as saved.
func TestMulticastChargesBytesOnce(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 10<<20) // 10 MB/s
	const n = int64(50 << 20)

	var doneAt sim.Time
	sv.Multicast("batch", n, 5, func() { doneAt = s.Now() })
	s.Run()

	if doneAt == 0 {
		t.Fatal("multicast never completed")
	}
	want := sim.Time(float64(n) / float64(sv.Rate) * float64(sim.Second))
	if doneAt < want || doneAt > want+sim.Second {
		t.Fatalf("multicast of %d bytes took %v, want ~%v (one pass, not five)", n, doneAt, want)
	}
	if sv.Served != uint64(n) {
		t.Fatalf("server served %d bytes, want %d — receivers must not multiply pipe bytes", sv.Served, n)
	}
	if sv.MulticastSavedBytes != 4*n {
		t.Fatalf("saved %d bytes, want %d", sv.MulticastSavedBytes, 4*n)
	}
	if sv.ByTag["batch"] != n {
		t.Fatalf("tag charged %d, want %d", sv.ByTag["batch"], n)
	}
}

// TestMulticastSharesThePipe: a multicast contends fairly with a
// concurrent unicast stream — both finish in the time the summed bytes
// need, not earlier.
func TestMulticastSharesThePipe(t *testing.T) {
	s := sim.New(2)
	sv := NewServer(s, 10<<20)
	const n = int64(20 << 20)

	var mcast, ucast sim.Time
	sv.Multicast("a", n, 8, func() { mcast = s.Now() })
	sv.StreamDownload("b", n, func() { ucast = s.Now() })
	s.Run()

	total := sim.Time(float64(2*n) / float64(sv.Rate) * float64(sim.Second))
	for name, at := range map[string]sim.Time{"multicast": mcast, "unicast": ucast} {
		if at < total-sim.Second || at > total+sim.Second {
			t.Fatalf("%s finished at %v, want ~%v (fair share of the pipe)", name, at, total)
		}
	}
	if sv.Served != uint64(2*n) {
		t.Fatalf("served %d, want %d", sv.Served, 2*n)
	}
}
