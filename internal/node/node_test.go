package node

import (
	"testing"
	"testing/quick"

	"emucheck/internal/sim"
)

func TestCPUNoContention(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	if got := c.FinishTime(0, 100*sim.Millisecond); got != 100*sim.Millisecond {
		t.Fatalf("finish = %v", got)
	}
}

func TestCPUFullSteal(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	// dom0 owns the CPU for [10ms, 20ms): 30ms of work started at 0
	// finishes at 40ms.
	c.Steal(10*sim.Millisecond, 10*sim.Millisecond, 1.0)
	got := c.FinishTime(0, 30*sim.Millisecond)
	if got != 40*sim.Millisecond {
		t.Fatalf("finish = %v, want 40ms", got)
	}
}

func TestCPUPartialSteal(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	// Half the CPU stolen for the whole window: 10ms of work takes 20ms.
	c.Steal(0, sim.Second, 0.5)
	got := c.FinishTime(0, 10*sim.Millisecond)
	if got != 20*sim.Millisecond {
		t.Fatalf("finish = %v, want 20ms", got)
	}
}

func TestCPUOverlappingStealsCap(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	c.Steal(0, 10*sim.Millisecond, 0.7)
	c.Steal(0, 10*sim.Millisecond, 0.7) // caps at 1.0 -> full stall
	got := c.FinishTime(0, 5*sim.Millisecond)
	if got != 15*sim.Millisecond {
		t.Fatalf("finish = %v, want 15ms", got)
	}
}

func TestCPUStallForeverIsNever(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	c.Steal(0, sim.Hour, 1.0)
	// Work cannot finish before the reservation expires; with the huge
	// boundary it resolves after the hour.
	got := c.FinishTime(0, sim.Millisecond)
	if got != sim.Hour+sim.Millisecond {
		t.Fatalf("finish = %v", got)
	}
}

func TestCPUProgress(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	c.Steal(10*sim.Millisecond, 10*sim.Millisecond, 1.0)
	if got := c.Progress(0, 20*sim.Millisecond); got != 10*sim.Millisecond {
		t.Fatalf("progress = %v, want 10ms", got)
	}
	if got := c.Progress(0, 0); got != 0 {
		t.Fatalf("empty progress = %v", got)
	}
}

func TestCPUStealIgnoresBadArgs(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	c.Steal(0, 0, 0.5)
	c.Steal(0, 10, 0)
	c.Steal(0, 10, -1)
	if len(c.steals) != 0 {
		t.Fatal("bad steals recorded")
	}
}

// Property: FinishTime is consistent with Progress — the work completed
// by the finish instant equals the requested work (within rounding).
func TestPropertyCPUConsistency(t *testing.T) {
	f := func(workMs, stealStartMs, stealDurMs uint8, shareQ uint8) bool {
		s := sim.New(3)
		c := NewCPU(s)
		share := float64(shareQ%90+5) / 100
		work := sim.Time(workMs%50+1) * sim.Millisecond
		c.Steal(sim.Time(stealStartMs)*sim.Millisecond, sim.Time(stealDurMs)*sim.Millisecond, share)
		end := c.FinishTime(0, work)
		if end == sim.Never {
			return true
		}
		got := c.Progress(0, end)
		diff := got - work
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // ns rounding
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskSequentialThroughput(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	d := NewDisk(s, p)
	const chunk = 1 << 20
	const n = 64
	done := 0
	var lba int64
	for i := 0; i < n; i++ {
		d.Submit(&DiskRequest{Op: Write, LBA: lba, Bytes: chunk, Done: func() { done++ }})
		lba += chunk
	}
	s.Run()
	if done != n {
		t.Fatalf("completed %d", done)
	}
	elapsed := s.Now().Seconds()
	mbps := float64(n*chunk) / (1 << 20) / elapsed
	// One initial seek then sequential: should be near media rate.
	if mbps < 55 || mbps > 75 {
		t.Fatalf("sequential write throughput %.1f MB/s, want ~72", mbps)
	}
}

func TestDiskRandomSlowerThanSequential(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	seq := NewDisk(s, p)
	rnd := NewDisk(s, p)
	const chunk = 4096
	const n = 100
	var lba int64
	for i := 0; i < n; i++ {
		seq.Submit(&DiskRequest{Op: Read, LBA: lba, Bytes: chunk})
		lba += chunk
	}
	for i := 0; i < n; i++ {
		rnd.Submit(&DiskRequest{Op: Read, LBA: int64(i) * (1 << 30), Bytes: chunk})
	}
	s.Run()
	if rnd.BusyTime <= seq.BusyTime*2 {
		t.Fatalf("random (%v) not much slower than sequential (%v)", rnd.BusyTime, seq.BusyTime)
	}
	if rnd.SeekOps < n-1 { // the first request may start at the head position
		t.Fatalf("seeks = %d", rnd.SeekOps)
	}
}

func TestDiskThrottleSlowsTransfers(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	d := NewDisk(s, p)
	base := d.ServiceTime(0, 1<<20)
	d.SetThrottle(0.5)
	slowed := d.ServiceTime(d.headPos, 1<<20)
	if slowed <= base {
		t.Fatalf("throttle had no effect: %v vs %v", slowed, base)
	}
	d.SetThrottle(5)
	if d.throttle != 0.9 {
		t.Fatal("throttle not clamped high")
	}
	d.SetThrottle(-1)
	if d.throttle != 0 {
		t.Fatal("throttle not clamped low")
	}
}

func TestDiskDrain(t *testing.T) {
	s := sim.New(1)
	d := NewDisk(s, DefaultParams())
	drained := sim.Time(-1)
	var lastDone sim.Time
	for i := 0; i < 5; i++ {
		d.Submit(&DiskRequest{Op: Write, LBA: int64(i) << 30, Bytes: 4096, Done: func() { lastDone = s.Now() }})
	}
	d.Drain(func() { drained = s.Now() })
	s.Run()
	if drained < 0 {
		t.Fatal("drain never fired")
	}
	if drained < lastDone {
		t.Fatalf("drain at %v before last completion %v", drained, lastDone)
	}
}

func TestDiskDrainIdleFiresImmediately(t *testing.T) {
	s := sim.New(1)
	d := NewDisk(s, DefaultParams())
	fired := false
	d.Drain(func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("idle drain did not fire")
	}
}

func TestDiskEmptyRequestPanics(t *testing.T) {
	s := sim.New(1)
	d := NewDisk(s, DefaultParams())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	d.Submit(&DiskRequest{Op: Read, Bytes: 0})
}

func TestDiskStatsAccounting(t *testing.T) {
	s := sim.New(1)
	d := NewDisk(s, DefaultParams())
	d.Submit(&DiskRequest{Op: Read, LBA: 0, Bytes: 1000})
	d.Submit(&DiskRequest{Op: Write, LBA: 1000, Bytes: 2000})
	s.Run()
	if d.ReadBytes != 1000 || d.WriteBytes != 2000 || d.ReadOps != 1 || d.WriteOps != 1 {
		t.Fatalf("stats: %+v", d)
	}
	if d.TotalLatency <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestMachineAssembly(t *testing.T) {
	s := sim.New(1)
	m := NewMachine(s, "pc1", DefaultParams())
	if m.ExpNIC.Addr() != "pc1" || m.CtlNIC.Addr() != "pc1.ctl" {
		t.Fatalf("NIC addrs: %s %s", m.ExpNIC.Addr(), m.CtlNIC.Addr())
	}
	if m.Disk == m.Scratch {
		t.Fatal("disks aliased")
	}
	if m.P.GuestMemBytes != 256<<20 {
		t.Fatal("default guest memory")
	}
}
