// Package emucheck is a library reproduction of "Transparent Checkpoints
// of Closed Distributed Systems in Emulab" (Burtsev et al., EuroSys
// 2009): a simulated Emulab testbed with transparent distributed
// checkpointing, stateful swapping, and time travel.
//
// The public API is organized around Sessions. A Scenario describes an
// experiment (its network spec and a workload-installing setup
// function); a Session instantiates it on a deterministic simulated
// testbed. Sessions can run, checkpoint transparently, swap out and
// back in statefully, and time-travel: because the substrate is
// bit-deterministic and checkpoints are transparent (virtual time hides
// them), rolling back to a recorded checkpoint is realized by
// re-executing a fresh session to the checkpoint's virtual time —
// optionally perturbed, which is the paper's non-deterministic replay
// "knob" (§6).
//
// A minimal use:
//
//	sc := emucheck.Scenario{
//	    Spec: emulab.Spec{
//	        Name:  "demo",
//	        Nodes: []emulab.NodeSpec{{Name: "a", Swappable: true}, {Name: "b", Swappable: true}},
//	        Links: []emulab.LinkSpec{{A: "a", B: "b", Bandwidth: 100 * simnet.Mbps, Delay: 5 * sim.Millisecond}},
//	    },
//	    Setup: func(e *emucheck.Session) { /* install workloads */ },
//	}
//	s := emucheck.NewSession(sc, 42)
//	s.RunFor(5 * sim.Second)
//	res, _ := s.Checkpoint()
//	fmt.Println(res.SuspendSkew)
package emucheck

import (
	"fmt"

	"emucheck/internal/core"
	"emucheck/internal/emulab"
	"emucheck/internal/guest"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
	"emucheck/internal/storage"
	"emucheck/internal/swap"
	"emucheck/internal/timetravel"
)

// Re-exported aliases so callers need only the public surface for the
// common cases. Sub-package types (emulab.Spec, core.Options, ...) are
// used directly where richer control is wanted.
type (
	// CheckpointResult is a completed distributed checkpoint.
	CheckpointResult = core.Result
	// CheckpointOptions tunes a checkpoint.
	CheckpointOptions = core.Options
	// Perturbation is the replay-divergence knob.
	Perturbation = timetravel.Perturbation
	// TreeNodeID names a node in the time-travel tree.
	TreeNodeID = timetravel.NodeID
)

// Perturbation kinds, re-exported.
const (
	Deterministic = timetravel.Deterministic
	SeedChange    = timetravel.SeedChange
	TimeDilation  = timetravel.TimeDilation
	PacketReorder = timetravel.PacketReorder
)

// Scenario is a replayable experiment description: everything needed to
// reconstruct the run from scratch, which is what makes time travel by
// re-execution possible.
type Scenario struct {
	Spec emulab.Spec
	// Pool is the testbed hardware pool size (default: nodes + links).
	Pool int
	// Setup installs workloads on the freshly swapped-in experiment.
	Setup func(s *Session)
}

// Session is one live execution of a scenario — one experiment hosted
// on a Cluster. NewSession builds a private one-tenant cluster (the
// classic single-experiment case); Cluster.Submit creates sessions that
// time-share a pool with other tenants under the swap scheduler.
type Session struct {
	Scenario Scenario
	Seed     int64
	// Priority orders tenants under the Priority preemption policy.
	Priority int

	// C is the hosting cluster (a private one for NewSession sessions).
	C   *Cluster
	S   *sim.Simulator
	TB  *emulab.Testbed
	Exp *emulab.Experiment // nil while queued or parked stateless

	// Tree records checkpoints for time travel.
	Tree *timetravel.Tree

	// RecordErr holds the most recent failure to record an async
	// checkpoint in the tree (e.g. budget exhausted); the synchronous
	// paths return such errors directly.
	RecordErr error

	// LastErr surfaces the most recent control-plane failure on this
	// session: an aborted checkpoint epoch, a failed park or restore, a
	// provisioning error. The control plane never panics on these — it
	// records them here (and in scenario results) and keeps running.
	LastErr error

	// Crash / recovery bookkeeping (scheduler-managed tenants).
	crashedAt      sim.Time
	recoveredAt    sim.Time
	recoveries     int
	lostWork       sim.Time
	pendingLost    sim.Time // lost work of the current crash, fixed at crash time
	recoverPending bool
	epochInterval  sim.Time // committed-epoch period (0: pipeline off)

	// Health-loop bookkeeping (EnableHealth clusters): failure
	// detections, worst detection latency and repair time, automatic
	// remediations, and the quarantine flag.
	detectedAt       sim.Time
	detections       int
	detectLatencyMax sim.Time
	mttrMax          sim.Time
	remediations     int
	quarantined      bool

	job     *sched.Job
	done    bool // finished standalone session (job-managed ones track state in job)
	perturb Perturbation
	branch  TreeNodeID

	// Branch genealogy (cluster fan-out): parentName names the tenant
	// this session was forked from, branch the fork checkpoint, alias
	// the logical-to-physical node-name map, and branchLineages the
	// forked per-node chains adopted at first admission.
	parentName     string
	children       []string
	alias          map[string]string
	branchLineages map[string]*storage.Lineage
}

// NewSession instantiates the scenario on a fresh deterministic testbed
// sized to fit it — a one-tenant cluster with immediate admission.
func NewSession(sc Scenario, seed int64) *Session {
	return newSession(sc, seed, Perturbation{}, timetravel.Root)
}

func newSession(sc Scenario, seed int64, p Perturbation, branch TreeNodeID) *Session {
	if p.Kind == SeedChange && p.Seed != 0 {
		seed = p.Seed
	}
	pool := sc.Pool
	if pool <= 0 {
		pool = len(sc.Spec.Nodes) + len(sc.Spec.Links) + 2
	}
	c := NewCluster(pool, seed, FIFO)
	sess := &Session{
		Scenario: sc, Seed: seed, C: c, S: c.S, TB: c.TB,
		Tree:    timetravel.NewTree(146 << 30),
		perturb: p, branch: branch,
	}
	sess.applyPerturbation()
	exp, err := c.TB.SwapIn(sc.Spec)
	if err != nil {
		panic("emucheck: " + err.Error())
	}
	c.wireTenant(sess, exp)
	// Charge the scheduler's ledger too, so a later Submit on this
	// cluster cannot over-admit against hardware the session holds.
	if err := c.Sched.Reserve(exp.Allocated()); err != nil {
		panic("emucheck: " + err.Error())
	}
	c.adopt(sess)
	sess.applyDilation()
	if sc.Setup != nil {
		sc.Setup(sess)
	}
	return sess
}

// State reports the session's scheduler state ("running", "queued",
// "parked", ...). Sessions outside scheduler control are "running".
func (s *Session) State() string {
	if s.job == nil {
		if s.done {
			return "done"
		}
		return "running"
	}
	return s.job.State().String()
}

// Scheduled reports whether the session is under scheduler control
// (created by Cluster.Submit rather than NewSession).
func (s *Session) Scheduled() bool { return s.job != nil }

// QueueWait reports total time spent waiting for admission.
func (s *Session) QueueWait() sim.Time {
	if s.job == nil {
		return 0
	}
	return s.job.QueueWait()
}

// Preemptions reports how often the session was involuntarily parked.
func (s *Session) Preemptions() int {
	if s.job == nil {
		return 0
	}
	return s.job.Preemptions()
}

// Admissions reports how often the session was (re-)admitted.
func (s *Session) Admissions() int {
	if s.job == nil {
		return 1
	}
	return s.job.Admissions()
}

// Recoveries reports how often the session was restored from a
// committed checkpoint epoch after a crash — the genealogy's record
// that this incarnation is not the first.
func (s *Session) Recoveries() int { return s.recoveries }

// LostWork reports the cumulative work discarded by crash recoveries:
// for each crash, the gap between the crash and the last committed
// epoch the recovery restored, floored at the incarnation's entry
// into service — a tenant crashed while parked loses nothing (its
// park committed everything and nothing ran since). Restarts from
// scratch are not counted here — they lose everything, which the
// caller can see from Admissions and its own progress counters.
func (s *Session) LostWork() sim.Time { return s.lostWork }

// CrashedAt reports when the session last crashed (zero: never).
func (s *Session) CrashedAt() sim.Time { return s.crashedAt }

// Detections reports how often the health loop flagged this session
// unhealthy (zero without EnableHealth).
func (s *Session) Detections() int { return s.detections }

// DetectedAt reports when the detector last flagged the session
// unhealthy (zero: never).
func (s *Session) DetectedAt() sim.Time { return s.detectedAt }

// MaxDetectLatency reports the worst crash-to-detection gap the health
// loop recorded for this session — the failure-detection latency the
// scenario's max_detect_ms assertion bounds.
func (s *Session) MaxDetectLatency() sim.Time { return s.detectLatencyMax }

// MaxMTTR reports the worst crash-to-restored gap across this
// session's recoveries (mean time to repair, pessimized) — what the
// scenario's max_mttr_ms assertion bounds.
func (s *Session) MaxMTTR() sim.Time { return s.mttrMax }

// Remediations reports how many automatic recoveries the remediation
// controller initiated for this session (scripted Recover calls are
// counted in Recoveries but not here).
func (s *Session) Remediations() int { return s.remediations }

// Quarantined reports whether the remediation controller exhausted the
// session's budget and took it permanently out of service.
func (s *Session) Quarantined() bool { return s.quarantined }

// RecoveredAt reports when the session last finished a recovery
// (zero: never).
func (s *Session) RecoveredAt() sim.Time { return s.recoveredAt }

// EpochsAborted reports checkpoint epochs that aborted on this
// session's current coordinator (save failures, stragglers past the
// save deadline, crash-forced aborts). Zero before instantiation; a
// Restart replaces the coordinator and resets the count.
func (s *Session) EpochsAborted() int {
	if s.Exp == nil {
		return 0
	}
	return s.Exp.Coord.Aborted
}

// StartEpochs begins the committed-epoch pipeline on a swappable
// session: a transparent checkpoint every interval whose dirty state
// commits to the file-server lineages, keeping Cluster.Recover's
// restore point at most ~interval stale.
func (s *Session) StartEpochs(interval sim.Time) error {
	if s.Exp == nil {
		return fmt.Errorf("emucheck: experiment %q is %s, not instantiated", s.Scenario.Spec.Name, s.State())
	}
	if s.Exp.Swap == nil {
		return fmt.Errorf("emucheck: no swappable nodes in %q", s.Scenario.Spec.Name)
	}
	// Remembered so a crash recovery restarts the pipeline: the restore
	// point must keep refreshing on the recovered incarnation too.
	s.epochInterval = interval
	s.Exp.Swap.StartEpochs(interval)
	return nil
}

// applyPerturbation adjusts environment knobs before construction.
func (s *Session) applyPerturbation() {
	switch s.perturb.Kind {
	case PacketReorder:
		// Wider notification jitter perturbs cross-node event ordering.
		s.TB.Bus.JitterMax *= 4
	}
}

// applyDilation turns the §6 time-dilation knob on every guest clock
// after construction: with factor f, guests perceive machines and
// networks f-times faster (Gupta 2006). Timers inside the temporal
// firewall honor the dilated rate.
func (s *Session) applyDilation() {
	if s.perturb.Kind != TimeDilation {
		return
	}
	f := s.perturb.Magnitude
	if f <= 0 {
		f = 2
	}
	for _, n := range s.Exp.Nodes {
		n.K.Clock.SetDilation(f)
	}
}

// Kernel returns a node's guest kernel for workload installation. For
// branch sessions the parent's logical node names resolve through the
// branch's alias map, so a parent's workload closure installs unchanged.
func (s *Session) Kernel(node string) *guest.Kernel {
	if s.Exp == nil {
		panic(fmt.Sprintf("emucheck: experiment %q is %s, not instantiated", s.Scenario.Spec.Name, s.State()))
	}
	if phys, ok := s.alias[node]; ok {
		node = phys
	}
	n := s.Exp.Node(node)
	if n == nil {
		panic(fmt.Sprintf("emucheck: no node %q", node))
	}
	return n.K
}

// LiveLineages lists every checkpoint chain the session currently holds
// store references through: the per-node chains of its instantiated
// experiment, or the forked chains a branch stages until its first
// admission. Finished sessions hold none. The suite runner's refcount
// audit sums these against the chain store's entries.
func (s *Session) LiveLineages() []*storage.Lineage {
	var out []*storage.Lineage
	if s.Exp != nil && s.Exp.Swap != nil {
		for _, lin := range s.Exp.Swap.Lineages() {
			if !lin.Released() {
				out = append(out, lin)
			}
		}
		return out
	}
	for _, lin := range s.branchLineages {
		if !lin.Released() {
			out = append(out, lin)
		}
	}
	return out
}

// Addr resolves a (possibly logical) node name to its control-network
// address, so branch workloads address peers by the parent's names.
func (s *Session) Addr(node string) simnet.Addr {
	if phys, ok := s.alias[node]; ok {
		node = phys
	}
	return simnet.Addr(node)
}

// Parent names the tenant this session was branched from ("" for
// sessions that are not branches).
func (s *Session) Parent() string { return s.parentName }

// Children lists the branches forked from this session, in fork order.
func (s *Session) Children() []string { return append([]string(nil), s.children...) }

// IsBranch reports whether the session was created by Cluster.Branch.
func (s *Session) IsBranch() bool { return s.parentName != "" }

// BranchPoint reports the checkpoint the branch was forked from.
func (s *Session) BranchPoint() TreeNodeID { return s.branch }

// Perturb reports the perturbation the session runs under. Workloads
// may consult it (notably the SeedChange seed) to explore a different
// nondeterministic future per branch.
func (s *Session) Perturb() Perturbation { return s.perturb }

// RunFor advances the session by d of simulated real time.
func (s *Session) RunFor(d sim.Time) { s.S.RunFor(d) }

// RunUntilIdle drains every pending event.
func (s *Session) RunUntilIdle() { s.S.Run() }

// Now reports simulated real time.
func (s *Session) Now() sim.Time { return s.S.Now() }

// VirtualNow reports the named node's guest virtual time.
func (s *Session) VirtualNow(node string) sim.Time { return s.Kernel(node).Monotonic() }

// Checkpoint performs one transparent distributed checkpoint
// synchronously (the simulation advances until it completes) and
// records it in the time-travel tree.
func (s *Session) Checkpoint() (*CheckpointResult, error) {
	return s.CheckpointOpts(CheckpointOptions{Incremental: s.Tree.Len() > 1})
}

// CheckpointAsync initiates one transparent distributed checkpoint and
// returns immediately; done (optional) receives the committed result
// once every node has resumed — or the typed core.EpochError if the
// epoch aborted — and committed checkpoints are recorded in the
// time-travel tree. Use this from inside simulation events (e.g.
// scripted scenario actions), where the synchronous Checkpoint would
// re-enter the event loop.
func (s *Session) CheckpointAsync(o CheckpointOptions, done func(*CheckpointResult, error)) error {
	// A stateful-parked tenant keeps its Exp (state preserved on the
	// file server), so check scheduler state, not just instantiation.
	if s.Exp == nil || s.job != nil && s.job.State() != sched.Running {
		return fmt.Errorf("emucheck: experiment %q is %s", s.Scenario.Spec.Name, s.State())
	}
	first := s.Exp.Spec.Nodes[0].Name
	return s.Exp.Coord.Checkpoint(o, func(r *CheckpointResult, cerr error) {
		if cerr != nil {
			s.LastErr = cerr
			if done != nil {
				done(nil, cerr)
			}
			return
		}
		if _, err := s.Tree.Record(r, s.VirtualNow(first)); err != nil {
			s.RecordErr = err
		}
		if done != nil {
			done(r, nil)
		}
	})
}

// CheckpointOpts is Checkpoint with explicit options. Like
// CheckpointAsync it requires the experiment to be in service — a
// stateful-parked tenant still has an Exp, but its guests are frozen
// and the synchronous wait would spin the shared cluster simulator.
func (s *Session) CheckpointOpts(o CheckpointOptions) (*CheckpointResult, error) {
	if s.Exp == nil || s.job != nil && s.job.State() != sched.Running {
		return nil, fmt.Errorf("emucheck: experiment %q is %s", s.Scenario.Spec.Name, s.State())
	}
	var res *CheckpointResult
	var cerr error
	if err := s.Exp.Coord.Checkpoint(o, func(r *CheckpointResult, e error) { res, cerr = r, e }); err != nil {
		return nil, err
	}
	deadline := s.S.Now() + 10*sim.Minute
	for res == nil && cerr == nil && s.S.Now() < deadline {
		if !s.S.Step() {
			s.S.RunFor(sim.Millisecond)
		}
	}
	if cerr != nil {
		s.LastErr = cerr
		return nil, cerr
	}
	if res == nil {
		return nil, fmt.Errorf("emucheck: checkpoint did not complete")
	}
	first := s.Exp.Spec.Nodes[0].Name
	if _, err := s.Tree.Record(res, s.VirtualNow(first)); err != nil {
		return nil, err
	}
	return res, nil
}

// PeriodicCheckpoints checkpoints every interval until limit
// checkpoints complete (limit 0 = until StopCheckpoints); results are
// recorded in the tree as the run proceeds.
func (s *Session) PeriodicCheckpoints(interval sim.Time, limit int) *core.PeriodicCheckpointer {
	if s.Exp == nil {
		panic(fmt.Sprintf("emucheck: experiment %q is %s, not instantiated", s.Scenario.Spec.Name, s.State()))
	}
	first := s.Exp.Spec.Nodes[0].Name
	pc := &core.PeriodicCheckpointer{
		C:        s.Exp.Coord,
		Interval: interval,
		Opts:     CheckpointOptions{Incremental: true},
		OnResult: func(r *CheckpointResult) {
			s.Tree.Record(r, s.VirtualNow(first))
		},
	}
	pc.Start(limit)
	return pc
}

// SwapOut statefully swaps the experiment out (synchronously). It
// drives the session's private simulator, so it is only available on
// standalone sessions; scheduler-managed tenants park via Cluster.Park.
func (s *Session) SwapOut() ([]*swap.OutReport, error) {
	if s.job != nil {
		return nil, fmt.Errorf("emucheck: %q is scheduler-managed; use Cluster.Park", s.Scenario.Spec.Name)
	}
	if s.Exp.Swap == nil {
		return nil, fmt.Errorf("emucheck: no swappable nodes in %q", s.Scenario.Spec.Name)
	}
	var reps []*swap.OutReport
	var serr error
	if err := s.Exp.Swap.SwapOut(swap.DefaultOptions(), func(r []*swap.OutReport, e error) { reps, serr = r, e }); err != nil {
		return nil, err
	}
	deadline := s.S.Now() + 2*sim.Hour
	for reps == nil && serr == nil && s.S.Now() < deadline {
		if !s.S.Step() {
			s.S.RunFor(sim.Second)
		}
	}
	if serr != nil {
		s.LastErr = serr
		return nil, serr
	}
	if reps == nil {
		return nil, fmt.Errorf("emucheck: swap-out did not complete")
	}
	return reps, nil
}

// SwapIn statefully swaps the experiment back in (synchronously).
func (s *Session) SwapIn(lazy bool) ([]*swap.InReport, error) {
	if s.job != nil {
		return nil, fmt.Errorf("emucheck: %q is scheduler-managed; use Cluster.Unpark", s.Scenario.Spec.Name)
	}
	if s.Exp.Swap == nil {
		return nil, fmt.Errorf("emucheck: no swappable nodes")
	}
	o := swap.DefaultOptions()
	o.Lazy = lazy
	var reps []*swap.InReport
	var serr error
	if err := s.Exp.Swap.SwapIn(o, func(r []*swap.InReport, e error) { reps, serr = r, e }); err != nil {
		return nil, err
	}
	deadline := s.S.Now() + 2*sim.Hour
	for reps == nil && serr == nil && s.S.Now() < deadline {
		if !s.S.Step() {
			s.S.RunFor(sim.Second)
		}
	}
	if serr != nil {
		s.LastErr = serr
		return nil, serr
	}
	if reps == nil {
		return nil, fmt.Errorf("emucheck: swap-in did not complete")
	}
	return reps, nil
}

// Rollback time-travels: it returns a *new* Session re-executed from
// scratch to the chosen checkpoint's virtual time, continuing under the
// given perturbation. With Deterministic the replay reproduces the
// original run exactly (same seed, same event stream); other kinds
// diverge — each rollback grows a new branch in the execution tree.
//
// Transparency is what makes this addressable by virtual time: because
// checkpoints never perturbed the original run, re-executing without
// them reaches the same state at the same virtual time.
func (s *Session) Rollback(id TreeNodeID, p Perturbation) (*Session, error) {
	if s.job != nil {
		// A tenant's history is interleaved with its neighbors'; replay
		// would have to re-execute the whole cluster.
		return nil, fmt.Errorf("emucheck: %q is scheduler-managed; time travel needs a standalone session", s.Scenario.Spec.Name)
	}
	plan, err := s.Tree.Rollback(id, p)
	if err != nil {
		return nil, err
	}
	replay := newSession(s.Scenario, s.Seed, plan.Perturb, id)
	// Re-execute to the checkpoint's virtual time. Virtual time equals
	// real time in a checkpoint-free replay (modulo the µs leak of the
	// original, which transparency bounds).
	replay.RunFor(plan.Target)
	replay.Tree = s.Tree
	replay.Tree.SetBranchPerturbation(p)
	return replay, nil
}
