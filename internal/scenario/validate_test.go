package scenario

import (
	"strings"
	"testing"
)

// validBase builds a scenario that passes Validate; each negative case
// below mutates one copy to break exactly one rule.
func validBase() *File {
	return &File{
		Name: "base", Seed: 1, Pool: 4, Policy: "fifo", RunFor: "2m",
		Experiments: []Experiment{
			{Name: "e1", Workload: "sleeploop", Nodes: []Node{{Name: "a", Swappable: true}}},
			{Name: "e2", Workload: "pingpong", Nodes: []Node{
				{Name: "b", Swappable: true}, {Name: "c", Swappable: true}},
				Links: []Link{{A: "b", B: "c"}}},
		},
	}
}

// TestValidateNegativeTable exercises one malformed case per Validate
// rule, per stanza, asserting the exact error substring each rule
// emits. A rule whose message drifts (or whose check is dropped) fails
// here by name.
func TestValidateNegativeTable(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*File)
		want string
	}{
		// File-level stanza.
		{"no-name", func(f *File) { f.Name = "" }, "scenario has no name"},
		{"bad-pool", func(f *File) { f.Pool = 0 }, "pool must be positive"},
		{"bad-run-for", func(f *File) { f.RunFor = "soon" }, `run_for "soon" does not parse`},
		{"empty-run-for", func(f *File) { f.RunFor = "" }, `run_for "" does not parse`},
		{"bad-policy", func(f *File) { f.Policy = "karma" }, `unknown policy "karma"`},
		{"bad-swap-mode", func(f *File) { f.Swap = "lazy" }, `unknown swap mode "lazy"`},
		{"bad-save-deadline", func(f *File) { f.SaveDeadline = "whenever" }, `save_deadline "whenever" does not parse`},
		{"no-experiments", func(f *File) { f.Experiments = nil }, "no experiments"},

		// Storage stanza.
		{"bad-backend", func(f *File) { f.Storage = &Storage{Backend: "tape"} }, `unknown backend "tape"`},
		{"negative-cache", func(f *File) { f.Storage = &Storage{Backend: "disk", CacheMB: -1} }, "negative cache_mb or disk_mb"},
		{"cache-on-mem", func(f *File) { f.Storage = &Storage{Backend: "mem", CacheMB: 8} }, "cache_mb needs a disk or remote backend"},

		// Experiment stanza.
		{"exp-no-name", func(f *File) { f.Experiments[0].Name = "" }, "experiment 0 has no name"},
		{"exp-duplicate", func(f *File) { f.Experiments[1] = f.Experiments[0] }, `duplicate experiment "e1"`},
		{"exp-no-nodes", func(f *File) { f.Experiments[0].Nodes = nil }, `experiment "e1" has no nodes`},
		{"exp-bad-workload", func(f *File) { f.Experiments[0].Workload = "mining" }, `unknown workload "mining"`},
		{"pingpong-one-node", func(f *File) { f.Experiments[1].Nodes = f.Experiments[1].Nodes[:1]; f.Experiments[1].Links = nil },
			`"e2": pingpong needs two nodes`},
		{"commit2pc-one-node", func(f *File) { f.Experiments[0].Workload = "commit2pc" }, `"e1": commit2pc needs two nodes`},
		{"quorum-two-nodes", func(f *File) { f.Experiments[1].Workload = "quorum"; f.Experiments[1].Links = nil },
			"quorum needs three nodes"},
		{"bad-submit-at", func(f *File) { f.Experiments[0].SubmitAt = "later" }, `submit_at "later" does not parse`},
		{"bad-epochs", func(f *File) { f.Experiments[0].Epochs = "often" }, `epochs "often" does not parse`},
		{"epochs-unswappable", func(f *File) { f.Experiments[0].Epochs = "20s"; f.Experiments[0].Nodes[0].Swappable = false },
			"epochs needs every node swappable"},
		{"node-collision", func(f *File) { f.Experiments[1].Nodes[0].Name = "a"; f.Experiments[1].Links[0].A = "a" },
			`node "a" of "e2" collides with "e1"`},
		{"link-unknown-node", func(f *File) { f.Experiments[1].Links[0].B = "ghost" }, "link b-ghost references unknown node"},
		{"lan-unknown-node", func(f *File) { f.Experiments[1].LANs = []LAN{{Name: "l", Members: []string{"b", "ghost"}}} },
			"LAN l references unknown node ghost"},
		{"exp-exceeds-pool", func(f *File) { f.Pool = 1 }, "it can never be admitted"},

		// Search stanza.
		{"search-unknown-parent", func(f *File) { f.Search = &Search{Parent: "ghost", CheckpointAt: "10s", BranchAt: "20s", FanOut: 1} },
			`search: unknown parent "ghost"`},
		{"search-unswappable-parent", func(f *File) {
			f.Experiments[0].Nodes[0].Swappable = false
			f.Search = &Search{Parent: "e1", CheckpointAt: "10s", BranchAt: "20s", FanOut: 1}
		}, "must be fully swappable"},
		{"search-gang-overflow", func(f *File) { f.Search = &Search{Parent: "e2", CheckpointAt: "10s", BranchAt: "20s", FanOut: 8} },
			"nodes for gang admission"},
		{"search-bad-fanout", func(f *File) { f.Search = &Search{Parent: "e1", CheckpointAt: "10s", BranchAt: "20s"} },
			"fan_out must be positive"},
		{"search-bad-checkpoint-at", func(f *File) { f.Search = &Search{Parent: "e1", CheckpointAt: "x", BranchAt: "20s", FanOut: 1} },
			`checkpoint_at "x" does not parse`},
		{"search-bad-branch-at", func(f *File) { f.Search = &Search{Parent: "e1", CheckpointAt: "10s", BranchAt: "x", FanOut: 1} },
			`branch_at "x" does not parse`},
		{"search-branch-before-checkpoint", func(f *File) { f.Search = &Search{Parent: "e1", CheckpointAt: "20s", BranchAt: "10s", FanOut: 1} },
			`must come after checkpoint_at`},
		{"search-seed-mismatch", func(f *File) {
			f.Search = &Search{Parent: "e1", CheckpointAt: "10s", BranchAt: "20s", FanOut: 2, Seeds: []int64{1}}
		}, "1 seeds for fan_out 2"},

		// Faults stanza.
		{"fault-bad-kind", func(f *File) { f.Faults = []Fault{{Kind: "meteor", At: "10s", Target: "e1"}} },
			`fault 0: unknown kind "meteor"`},
		{"fault-bad-at", func(f *File) { f.Faults = []Fault{{Kind: "crash", At: "x", Target: "e1"}} },
			`fault 0: at "x" does not parse`},
		{"fault-bad-for", func(f *File) { f.Faults = []Fault{{Kind: "delay", At: "10s", For: "x", Target: "e1"}} },
			`fault 0: for "x" does not parse`},
		{"fault-unknown-target", func(f *File) { f.Faults = []Fault{{Kind: "crash", At: "10s", Target: "ghost"}} },
			`fault 0: unknown target "ghost"`},
		{"fault-slow-disk-no-node", func(f *File) { f.Faults = []Fault{{Kind: "slow_disk", At: "10s", Target: "e1"}} },
			`slow_disk needs a node of "e1"`},
		{"fault-drop-foreign-node", func(f *File) { f.Faults = []Fault{{Kind: "drop", At: "10s", Target: "e1", Node: "b"}} },
			`node "b" is not in experiment "e1"`},
		{"fault-negative-knob", func(f *File) { f.Faults = []Fault{{Kind: "drop", At: "10s", Target: "e1", Count: -1}} },
			"fault 0: negative knob"},

		// Events stanza.
		{"event-bad-at", func(f *File) { f.Events = []Event{{At: "x", Action: "finish", Target: "e1"}} },
			`event 0: at "x" does not parse`},
		{"event-bad-action", func(f *File) { f.Events = []Event{{At: "10s", Action: "explode", Target: "e1"}} },
			`event 0: unknown action "explode"`},
		{"event-unknown-target", func(f *File) { f.Events = []Event{{At: "10s", Action: "finish", Target: "ghost"}} },
			`event 0: unknown target "ghost"`},
		{"event-swap-unswappable", func(f *File) {
			f.Experiments[0].Nodes[0].Swappable = false
			f.Events = []Event{{At: "10s", Action: "swap_out", Target: "e1"}}
		}, `swap_out needs every node of "e1" swappable`},

		// Assertions stanza.
		{"assert-bad-type", func(f *File) { f.Assertions = []Assertion{{Type: "vibes"}} }, `unknown type "vibes"`},
		{"assert-unknown-target", func(f *File) { f.Assertions = []Assertion{{Type: "min_ticks", Target: "ghost", Value: 1}} },
			`unknown target "ghost"`},
		{"assert-state-incomplete", func(f *File) { f.Assertions = []Assertion{{Type: "state", Target: "e1"}} },
			"state needs target and want"},
		{"assert-search-only", func(f *File) { f.Assertions = []Assertion{{Type: "outcome_found", Want: "x"}} },
			"needs a search stanza"},
		{"assert-outcome-no-want", func(f *File) {
			f.Search = &Search{Parent: "e1", CheckpointAt: "10s", BranchAt: "20s", FanOut: 1}
			f.Assertions = []Assertion{{Type: "outcome_found"}}
		}, "outcome_found needs want"},
		{"assert-distinct-no-value", func(f *File) {
			f.Search = &Search{Parent: "e1", CheckpointAt: "10s", BranchAt: "20s", FanOut: 1}
			f.Assertions = []Assertion{{Type: "min_distinct_outcomes"}}
		}, "min_distinct_outcomes needs a positive value"},
		{"assert-ticks-no-target", func(f *File) { f.Assertions = []Assertion{{Type: "min_ticks", Value: 1}} },
			"min_ticks needs a target"},
		{"assert-recovered-no-target", func(f *File) { f.Assertions = []Assertion{{Type: "recovered"}} },
			"recovered needs a target"},
		{"assert-lost-work-no-value", func(f *File) { f.Assertions = []Assertion{{Type: "max_lost_work_ms", Target: "e1"}} },
			"max_lost_work_ms needs target and a positive value"},
		{"assert-aborted-no-value", func(f *File) { f.Assertions = []Assertion{{Type: "epochs_aborted"}} },
			"epochs_aborted needs a positive value"},
		{"assert-swap-mb-no-value", func(f *File) { f.Assertions = []Assertion{{Type: "max_swap_mb"}} },
			"max_swap_mb needs a positive value"},
		{"assert-cache-ratio-no-cache", func(f *File) { f.Assertions = []Assertion{{Type: "min_cache_hit_ratio", Value: 50}} },
			"min_cache_hit_ratio needs a storage stanza with cache_mb"},
		{"assert-cache-ratio-range", func(f *File) {
			f.Storage = &Storage{Backend: "remote", CacheMB: 8}
			f.Assertions = []Assertion{{Type: "min_cache_hit_ratio", Value: 150}}
		}, "needs a value in (0, 100] percent"},
		{"assert-remote-mb-no-storage", func(f *File) { f.Assertions = []Assertion{{Type: "max_remote_mb", Value: 1}} },
			"max_remote_mb needs a storage stanza"},
		{"assert-remote-mb-negative", func(f *File) {
			f.Storage = &Storage{Backend: "remote"}
			f.Assertions = []Assertion{{Type: "max_remote_mb", Value: -1}}
		}, "max_remote_mb needs a non-negative value"},
		{"assert-queue-wait-bad-dur", func(f *File) { f.Assertions = []Assertion{{Type: "max_queue_wait", Dur: "x"}} },
			`dur "x" does not parse`},
		{"assert-virtual-incomplete", func(f *File) { f.Assertions = []Assertion{{Type: "virtual_elapsed_max", Target: "e1", Dur: "1m"}} },
			"virtual_elapsed_max needs target and node"},
		{"assert-virtual-foreign-node", func(f *File) {
			f.Assertions = []Assertion{{Type: "virtual_elapsed_max", Target: "e1", Node: "b", Dur: "1m"}}
		}, `node "b" is not in experiment "e1"`},
	}
	if errs := Validate(validBase()); len(errs) > 0 {
		t.Fatalf("base scenario must be valid, got %v", errs)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validBase()
			tc.mut(f)
			errs := Validate(f)
			if len(errs) == 0 {
				t.Fatalf("mutation produced no validation error, want %q", tc.want)
			}
			joined := make([]string, len(errs))
			for i, e := range errs {
				joined[i] = e.Error()
			}
			all := strings.Join(joined, "\n")
			if !strings.Contains(all, tc.want) {
				t.Fatalf("want substring %q in:\n%s", tc.want, all)
			}
		})
	}
}
