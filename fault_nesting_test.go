package emucheck

import (
	"testing"

	"emucheck/internal/fault"
	"emucheck/internal/sim"
)

// TestOverlappingSlowSaveWindowsNest: two slow_save windows on the same
// node overlap. Each arrival compounds the degradation, an inner
// window's end must NOT restore rates while the outer is still open,
// and the last end restores the true originals — not a degraded
// intermediate.
func TestOverlappingSlowSaveWindowsNest(t *testing.T) {
	c := NewCluster(2, 21, FIFO)
	ticks := 0
	if _, err := c.Submit(tenantScenario("e1", &ticks), 0); err != nil {
		t.Fatal(err)
	}
	c.RunFor(10 * sim.Second) // admitted: nodes exist
	n, err := c.faultNode("e1", "e1a")
	if err != nil {
		t.Fatal(err)
	}
	origMem, origNet := n.HV.CopyRateMem, n.HV.CopyRateNet

	p := &fault.Plan{Seed: 21, Injections: []fault.Injection{
		{Kind: fault.SlowSave, At: 20 * sim.Second, Target: "e1", Node: "e1a", Factor: 4, Window: 20 * sim.Second},
		{Kind: fault.SlowSave, At: 30 * sim.Second, Target: "e1", Node: "e1a", Factor: 4, Window: 20 * sim.Second},
	}}
	c.InjectFaults(p)

	c.RunFor(15 * sim.Second) // t=25s: first window only
	if got := n.HV.CopyRateMem; got != origMem/4 {
		t.Fatalf("t=25s rate %d, want %d (one window)", got, origMem/4)
	}
	c.RunFor(10 * sim.Second) // t=35s: both windows
	if got := n.HV.CopyRateMem; got != origMem/16 {
		t.Fatalf("t=35s rate %d, want %d (nested windows compound)", got, origMem/16)
	}
	c.RunFor(10 * sim.Second) // t=45s: first ended, second still open
	if got := n.HV.CopyRateMem; got == origMem || got == origMem/4 {
		t.Fatalf("t=45s rate %d: inner window end restored rates while a window is still open", got)
	}
	c.RunFor(10 * sim.Second) // t=55s: both ended
	if n.HV.CopyRateMem != origMem || n.HV.CopyRateNet != origNet {
		t.Fatalf("rates %d/%d after all windows, want the captured originals %d/%d",
			n.HV.CopyRateMem, n.HV.CopyRateNet, origMem, origNet)
	}
	if p.Slowed != 2 || len(p.Errors) != 0 {
		t.Fatalf("slowed %d, errors %v", p.Slowed, p.Errors)
	}
}
