package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func load(t *testing.T, name string) *File {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", name))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestExampleScenariosValidate(t *testing.T) {
	for _, name := range []string{"timeshare.json", "swapcycle.json", "priority.json", "incremental.json", "search.json", "faults.json"} {
		if errs := Validate(load(t, name)); len(errs) > 0 {
			t.Fatalf("%s: %v", name, errs)
		}
	}
}

func TestValidateCatchesSearchProblems(t *testing.T) {
	f := &File{
		Name: "bad-search", Pool: 4, RunFor: "1m",
		Experiments: []Experiment{
			{Name: "e", Workload: "racyelect", Nodes: []Node{
				{Name: "a", Swappable: true}, {Name: "b"}}},
		},
		Search: &Search{
			Parent: "e", CheckpointAt: "20s", BranchAt: "10s",
			FanOut: 3, Seeds: []int64{1, 2},
		},
		Assertions: []Assertion{
			{Type: "outcome_found"},
			{Type: "min_distinct_outcomes"},
		},
	}
	errs := Validate(f)
	joined := ""
	for _, e := range errs {
		joined += e.Error() + "\n"
	}
	for _, want := range []string{
		"fully swappable", "gang admission", "branch_at", "seeds for fan_out",
		"outcome_found needs want", "positive value",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
	// Search-only assertions without a search stanza.
	f2 := &File{
		Name: "no-search", Pool: 2, RunFor: "1m",
		Experiments: []Experiment{{Name: "e", Workload: "idle", Nodes: []Node{{Name: "a"}}}},
		Assertions:  []Assertion{{Type: "all_branches_admitted"}},
	}
	errs2 := Validate(f2)
	joined2 := ""
	for _, e := range errs2 {
		joined2 += e.Error() + "\n"
	}
	if !strings.Contains(joined2, "needs a search stanza") {
		t.Errorf("missing search-stanza guard in:\n%s", joined2)
	}
}

// TestRunSearchScenario replays the committed split-brain search: the
// fan-out must explore concurrently (gang admission), share its prefix
// (multicast savings, refcounted store), and surface the race.
func TestRunSearchScenario(t *testing.T) {
	res, err := Run(load(t, "search.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("scenario failed:\n%s", res.Render())
	}
	sr := res.Search
	if sr == nil || len(sr.Branches) != sr.FanOut {
		t.Fatalf("search summary incomplete: %+v", sr)
	}
	if sr.GangAdmissions != 1 {
		t.Fatalf("gang admissions = %d, want 1", sr.GangAdmissions)
	}
	if sr.MulticastSavedMB <= 0 {
		t.Fatal("fan-out staged without multicast savings")
	}
	if sr.SharedMB <= 0 || sr.StoredMB >= sr.SharedMB {
		t.Fatalf("prefix not shared by reference: stored %.1f MB, shared %.1f MB", sr.StoredMB, sr.SharedMB)
	}
	if sr.DistinctOutcomes < 2 {
		t.Fatalf("search explored only %d outcomes", sr.DistinctOutcomes)
	}
}

// TestRunSearchScenarioDeterministic: two runs of the same search file
// and seed must produce byte-identical result structs — the concurrent
// branch machinery (gang admission, multicast staging, shared chain
// store) stays on the simulator's deterministic rails.
func TestRunSearchScenarioDeterministic(t *testing.T) {
	run := func() string {
		res, err := Run(load(t, "search.json"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same file+seed diverged:\n%s\n%s", a, b)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name": "x", "polcy": "fifo"}`)); err == nil {
		t.Fatal("typo field accepted")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	f := &File{
		Name: "bad", Pool: 2, RunFor: "notaduration", Policy: "lifo",
		Experiments: []Experiment{
			{Name: "a", Workload: "mystery", Nodes: []Node{{Name: "n"}}},
			{Name: "a", Workload: "idle", Nodes: []Node{{Name: "n2"}}},
			{Name: "c", Workload: "idle", Nodes: []Node{{Name: "n"}}},
			{Name: "big", Workload: "idle", Nodes: []Node{
				{Name: "b0"}, {Name: "b1"}, {Name: "b2"}},
				Links: []Link{{A: "b0", B: "ghost"}}},
		},
		Events: []Event{
			{At: "5s", Action: "explode", Target: "nobody"},
			{At: "6s", Action: "swap_out", Target: "c"},
		},
		Assertions: []Assertion{
			{Type: "state", Target: "a"},
			{Type: "virtual_elapsed_max", Target: "c", Node: "typo", Dur: "1m"},
		},
	}
	errs := Validate(f)
	joined := ""
	for _, e := range errs {
		joined += e.Error() + "\n"
	}
	for _, want := range []string{
		"run_for", "unknown policy", "unknown workload", "duplicate experiment",
		"collides", "unknown node", "never be admitted", "unknown action",
		"unknown target", "needs target and want", "every node", "not in experiment",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestRunSwapCycleScenario(t *testing.T) {
	res, err := Run(load(t, "swapcycle.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("scenario failed:\n%s", res.Render())
	}
	if res.Experiments[0].State != "running" {
		t.Fatalf("web = %s", res.Experiments[0].State)
	}
}

func TestRunTimeshareScenarioDeterministic(t *testing.T) {
	run := func() string {
		res, err := Run(load(t, "timeshare.json"))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Pass {
			t.Fatalf("scenario failed:\n%s", res.Render())
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same file+seed diverged:\n%s\n%s", a, b)
	}
}

func TestRunPriorityScenario(t *testing.T) {
	res, err := Run(load(t, "priority.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("scenario failed:\n%s", res.Render())
	}
}

func TestRunRejectsInvalidFile(t *testing.T) {
	if _, err := Run(&File{Name: "nope"}); err == nil {
		t.Fatal("invalid file ran")
	}
}

func TestValidateRejectsBadSwapModeAndSwapBudget(t *testing.T) {
	f := load(t, "incremental.json")
	f.Swap = "sideways"
	f.Assertions = append(f.Assertions, Assertion{Type: "max_swap_mb"})
	joined := ""
	for _, e := range Validate(f) {
		joined += e.Error() + "\n"
	}
	for _, want := range []string{"unknown swap mode", "positive value"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

// TestIncrementalScenarioMovesFewerBytes replays the incremental
// example in both swap modes: the dirty-delta pipeline must pass its
// swap-traffic budget and move strictly fewer bytes than full copies.
func TestIncrementalScenarioMovesFewerBytes(t *testing.T) {
	run := func(mode string) *Result {
		f := load(t, "incremental.json")
		f.Swap = mode
		res, err := Run(f)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	incr := run("incremental")
	if !incr.Pass {
		t.Fatalf("incremental scenario failed:\n%s", incr.Render())
	}
	full := run("full")
	totalMB := func(r *Result) float64 {
		var mb float64
		for _, row := range r.Experiments {
			mb += row.SwapMB
		}
		return mb
	}
	if totalMB(incr) >= totalMB(full) {
		t.Fatalf("incremental moved %.1f MB, full %.1f MB — no savings",
			totalMB(incr), totalMB(full))
	}
	if incr.PreemptedMB >= full.PreemptedMB {
		t.Fatalf("preempted state: incremental %.1f MB, full %.1f MB — park cost not proportional to dirtied state",
			incr.PreemptedMB, full.PreemptedMB)
	}
}
