// Package fsmodel is a block-bitmap filesystem model standing in for the
// guest's ext3 (paper §5.1). Its purpose is the free-block elimination
// experiment: Xen virtualizes disks at the block level, so the swapping
// system cannot see which blocks the guest filesystem has freed; the
// paper closes this semantic gap with an ext3-aware plugin that snoops
// writes below the guest and maintains a free-block map consistent with
// the on-disk data. Deltas are then saved without blocks the filesystem
// freed — shrinking a kernel-build delta from 490 MB to 36 MB.
//
// The model allocates files first-fit within block groups, journals
// metadata, and feeds every bitmap mutation to the snooping plugin the
// way the real plugin would reconstruct it from the write stream.
package fsmodel

import (
	"fmt"

	"emucheck/internal/storage"
)

// FSBlockSize is the filesystem block size (ext3 default 4 KiB).
const FSBlockSize = 4096

// BlocksPerGroup mirrors ext3's block groups; allocation prefers
// filling a group before moving on, giving files locality.
const BlocksPerGroup = 8192

// Backend is the byte-addressed device the filesystem writes through
// (a storage.Volume in the swapping configuration).
type Backend interface {
	Read(off, n int64, done func())
	Write(off, n int64, done func())
}

// Plugin is the write-snooping free-block tracker. It lives *below* the
// guest (in the swapping system) and learns the bitmap state from the
// writes it observes.
type Plugin struct {
	fsBlocks int64
	free     []bool
	// Observed counts snooped bitmap mutations.
	Observed uint64
}

// NewPlugin tracks a filesystem of the given size; everything starts
// free.
func NewPlugin(fsBlocks int64) *Plugin {
	free := make([]bool, fsBlocks)
	for i := range free {
		free[i] = true
	}
	return &Plugin{fsBlocks: fsBlocks, free: free}
}

// ObserveBitmapWrite is called for every bitmap mutation the plugin
// snoops from the write stream.
func (p *Plugin) ObserveBitmapWrite(fsBlock int64, nowFree bool) {
	if fsBlock < 0 || fsBlock >= p.fsBlocks {
		return
	}
	p.Observed++
	p.free[fsBlock] = nowFree
}

// FreeFSBlock reports whether an FS block is free.
func (p *Plugin) FreeFSBlock(b int64) bool {
	return b >= 0 && b < p.fsBlocks && p.free[b]
}

// IsCOWBlockFree reports whether an entire COW block (storage.BlockSize)
// consists of free FS blocks — only then may the delta drop it.
func (p *Plugin) IsCOWBlockFree(vba int64) bool {
	per := int64(storage.BlockSize / FSBlockSize)
	start := vba * per
	if start >= p.fsBlocks {
		return true
	}
	end := start + per
	if end > p.fsBlocks {
		end = p.fsBlocks
	}
	for b := start; b < end; b++ {
		if !p.free[b] {
			return false
		}
	}
	return true
}

// FS is the in-guest filesystem the workloads drive.
type FS struct {
	dev      Backend
	plugin   *Plugin
	fsBlocks int64
	bitmap   []bool // used marks
	files    map[string][]int64
	jCursor  int64

	// Statistics.
	Allocated int64
	Freed     int64
}

// SystemBlocks is the permanently allocated metadata region: journal,
// superblocks, group descriptors, inode tables. Updates to it churn
// during any build, and because it is never freed it forms the residual
// delta that survives free-block elimination (the paper's 36 MB).
const SystemBlocks = 9216 // 36 MB at 4 KiB

// New creates a filesystem of sizeBytes over dev, reporting frees to the
// plugin (which may be nil for a plain FS).
func New(dev Backend, sizeBytes int64, plugin *Plugin) *FS {
	n := sizeBytes / FSBlockSize
	f := &FS{
		dev: dev, plugin: plugin, fsBlocks: n,
		bitmap: make([]bool, n),
		files:  make(map[string][]int64),
	}
	sys := int64(SystemBlocks)
	if sys > n {
		sys = n
	}
	for b := int64(0); b < sys; b++ {
		f.bitmap[b] = true
		if plugin != nil {
			plugin.ObserveBitmapWrite(b, false)
		}
	}
	f.Allocated += sys
	return f
}

// Blocks reports the filesystem size in FS blocks.
func (f *FS) Blocks() int64 { return f.fsBlocks }

// UsedBlocks reports allocated FS blocks.
func (f *FS) UsedBlocks() int64 { return f.Allocated - f.Freed }

// allocate finds n free blocks first-fit by group.
func (f *FS) allocate(n int64) ([]int64, error) {
	out := make([]int64, 0, n)
	for b := int64(0); b < f.fsBlocks && int64(len(out)) < n; b++ {
		if !f.bitmap[b] {
			out = append(out, b)
		}
	}
	if int64(len(out)) < n {
		return nil, fmt.Errorf("fsmodel: no space for %d blocks", n)
	}
	for _, b := range out {
		f.bitmap[b] = true
		if f.plugin != nil {
			f.plugin.ObserveBitmapWrite(b, false)
		}
	}
	f.Allocated += n
	return out, nil
}

// journal writes a metadata record; the cursor wanders over the whole
// system region (journal plus the per-group metadata an operation
// touches), dirtying COW blocks that can never be eliminated.
func (f *FS) journal(done func()) {
	stride := int64(17) // visit groups in a scattered pattern
	off := (f.jCursor * stride % SystemBlocks) * FSBlockSize
	f.jCursor++
	f.dev.Write(off, FSBlockSize, done)
}

// Create writes a file of the given size; done fires when data and
// metadata are on the device.
func (f *FS) Create(name string, size int64, done func()) error {
	if _, ok := f.files[name]; ok {
		return fmt.Errorf("fsmodel: %q exists", name)
	}
	n := (size + FSBlockSize - 1) / FSBlockSize
	blocks, err := f.allocate(n)
	if err != nil {
		return err
	}
	f.files[name] = blocks
	// Write data as extents of contiguous blocks.
	var spans [][2]int64 // off, len
	for i := 0; i < len(blocks); {
		j := i + 1
		for j < len(blocks) && blocks[j] == blocks[j-1]+1 {
			j++
		}
		spans = append(spans, [2]int64{blocks[i] * FSBlockSize, int64(j-i) * FSBlockSize})
		i = j
	}
	remaining := len(spans)
	for _, sp := range spans {
		f.dev.Write(sp[0], sp[1], func() {
			remaining--
			if remaining == 0 {
				f.journal(done)
			}
		})
	}
	return nil
}

// Delete frees a file's blocks. The bitmap mutations are what the
// snooping plugin sees; the data blocks themselves are NOT rewritten —
// exactly why block-level COW cannot shrink without the plugin.
func (f *FS) Delete(name string, done func()) error {
	blocks, ok := f.files[name]
	if !ok {
		return fmt.Errorf("fsmodel: %q missing", name)
	}
	delete(f.files, name)
	for _, b := range blocks {
		f.bitmap[b] = false
		if f.plugin != nil {
			f.plugin.ObserveBitmapWrite(b, true)
		}
	}
	f.Freed += int64(len(blocks))
	f.journal(done)
	return nil
}

// Exists reports whether a file exists.
func (f *FS) Exists(name string) bool {
	_, ok := f.files[name]
	return ok
}

// FileBlocks reports a file's block list (for tests).
func (f *FS) FileBlocks(name string) []int64 { return f.files[name] }
