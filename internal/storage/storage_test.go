package storage

import (
	"testing"
	"testing/quick"

	"emucheck/internal/node"
	"emucheck/internal/sim"
)

func newVol(seed int64, mode Mode) (*sim.Simulator, *Volume) {
	s := sim.New(seed)
	d := node.NewDisk(s, node.DefaultParams())
	return s, NewVolume(d, 6<<30, mode)
}

func TestWriteGoesToCurrentDelta(t *testing.T) {
	s, v := newVol(1, Optimized)
	done := false
	v.Write(0, BlockSize, func() { done = true })
	s.Run()
	if !done {
		t.Fatal("write never completed")
	}
	if v.Cur.Slots() != 1 {
		t.Fatalf("cur slots = %d", v.Cur.Slots())
	}
	if v.Agg.Slots() != 0 {
		t.Fatal("agg polluted")
	}
}

func TestReadFallThrough(t *testing.T) {
	s, v := newVol(1, Optimized)
	// Unwritten block: falls through to golden.
	v.Read(10*BlockSize, BlockSize, nil)
	s.Run()
	if v.ReadsGolden != 1 {
		t.Fatalf("golden reads = %d", v.ReadsGolden)
	}
	// Write then read: served from current delta.
	v.Write(10*BlockSize, BlockSize, nil)
	v.Read(10*BlockSize, BlockSize, nil)
	s.Run()
	if v.ReadsCur != 1 {
		t.Fatalf("cur reads = %d", v.ReadsCur)
	}
	// After a merge, served from the aggregated delta.
	v.Merge(true, nil)
	v.Read(10*BlockSize, BlockSize, nil)
	s.Run()
	if v.ReadsAgg != 1 {
		t.Fatalf("agg reads = %d", v.ReadsAgg)
	}
}

func TestRedoLogNeverReadsBeforeWrite(t *testing.T) {
	s, v := newVol(1, Optimized)
	for i := int64(0); i < 64; i++ {
		v.Write(i*BlockSize, BlockSize, nil)
	}
	s.Run()
	if v.Disk.ReadOps != 0 {
		t.Fatalf("optimized COW performed %d reads", v.Disk.ReadOps)
	}
	if v.CowCopies != 0 {
		t.Fatal("optimized COW copied blocks")
	}
}

func TestOriginalLVMReadsBeforeWrite(t *testing.T) {
	s, v := newVol(1, OriginalLVM)
	// 16 blocks of 64 KiB span two 512 KiB LVM chunks.
	for i := int64(0); i < 16; i++ {
		v.Write(i*BlockSize, BlockSize, nil)
	}
	s.Run()
	if v.Disk.ReadOps != 2 {
		t.Fatalf("read-before-write ops = %d, want 2 (one per LVM chunk)", v.Disk.ReadOps)
	}
	// Second write to the same chunk: no more copies.
	v.Write(0, BlockSize, nil)
	s.Run()
	if v.CowCopies != 2 {
		t.Fatalf("cow copies = %d", v.CowCopies)
	}
}

func TestOriginalLVMSlowerThanOptimized(t *testing.T) {
	elapsed := func(mode Mode) sim.Time {
		s, v := newVol(1, mode)
		var end sim.Time
		const n = 256
		left := n
		for i := int64(0); i < n; i++ {
			v.Write(i*BlockSize, BlockSize, func() {
				left--
				if left == 0 {
					end = s.Now()
				}
			})
		}
		s.Run()
		return end
	}
	opt := elapsed(Optimized)
	orig := elapsed(OriginalLVM)
	if orig < opt*2 {
		t.Fatalf("original LVM (%v) not much slower than redo log (%v)", orig, opt)
	}
}

func TestFreshVsAgedMetadataOverhead(t *testing.T) {
	run := func(aged bool) sim.Time {
		s, v := newVol(1, Optimized)
		if aged {
			v.Age()
		}
		var end sim.Time
		const n = 512
		left := n
		for i := int64(0); i < n; i++ {
			v.Write(i*BlockSize, BlockSize, func() {
				left--
				if left == 0 {
					end = s.Now()
				}
			})
		}
		s.Run()
		return end
	}
	fresh := run(false)
	aged := run(true)
	if fresh <= aged {
		t.Fatalf("fresh (%v) not slower than aged (%v)", fresh, aged)
	}
	overhead := float64(fresh-aged) / float64(aged)
	if overhead < 0.05 || overhead > 0.6 {
		t.Fatalf("metadata overhead %.0f%% outside plausible band", overhead*100)
	}
}

func TestRawBypassesCOW(t *testing.T) {
	s, v := newVol(1, Raw)
	v.Write(0, 4*BlockSize, nil)
	v.Read(0, 4*BlockSize, nil)
	s.Run()
	if v.Cur.Slots() != 0 {
		t.Fatal("raw mode touched the delta")
	}
}

func TestMergeReorderRestoresLocality(t *testing.T) {
	// Write blocks in reverse order, merge with reorder, and verify a
	// sequential read is mostly seek-free versus an unordered merge.
	seeks := func(reorder bool) int64 {
		s, v := newVol(1, Optimized)
		v.Age()
		for i := int64(63); i >= 0; i-- {
			v.Write(i*BlockSize, BlockSize, nil)
		}
		s.Run()
		v.Merge(reorder, nil)
		pre := v.Disk.SeekOps
		v.Read(0, 64*BlockSize, nil)
		s.Run()
		return v.Disk.SeekOps - pre
	}
	ordered := seeks(true)
	unordered := seeks(false)
	if ordered >= unordered {
		t.Fatalf("reorder did not reduce seeks: %d vs %d", ordered, unordered)
	}
	if ordered > 2 {
		t.Fatalf("sequential read after reorder still seeks %d times", ordered)
	}
}

func TestMergeSupersedesAndClears(t *testing.T) {
	s, v := newVol(1, Optimized)
	v.Write(0, BlockSize, nil)
	v.Merge(true, nil)
	v.Write(0, BlockSize, nil) // overwrite in a new swap cycle
	v.Write(BlockSize, BlockSize, nil)
	s.Run()
	got := v.Merge(true, nil)
	if got != 2*BlockSize {
		t.Fatalf("merged bytes = %d, want 2 blocks", got)
	}
	if v.Cur.Slots() != 0 {
		t.Fatal("current delta not cleared")
	}
}

func TestFreeBlockEliminationInMergeAndSize(t *testing.T) {
	s, v := newVol(1, Optimized)
	for i := int64(0); i < 10; i++ {
		v.Write(i*BlockSize, BlockSize, nil)
	}
	s.Run()
	free := func(vba int64) bool { return vba >= 5 } // half the blocks freed
	if got := v.CurrentDeltaBytes(free); got != 5*BlockSize {
		t.Fatalf("live bytes = %d", got)
	}
	if got := v.CurrentDeltaBytes(nil); got != 10*BlockSize {
		t.Fatalf("raw bytes = %d", got)
	}
	if got := v.Merge(true, free); got != 5*BlockSize {
		t.Fatalf("merged = %d", got)
	}
}

func TestEmptyIORejected(t *testing.T) {
	_, v := newVol(1, Optimized)
	for _, fn := range []func(){
		func() { v.Read(0, 0, nil) },
		func() { v.Write(0, -1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestCoalesce(t *testing.T) {
	got := coalesce([]span{{0, 10}, {10, 10}, {30, 5}, {35, 5}})
	if len(got) != 2 || got[0].n != 20 || got[1].n != 10 {
		t.Fatalf("coalesced: %+v", got)
	}
	if coalesce(nil) != nil {
		t.Fatal("nil coalesce")
	}
}

// Property: after any write pattern, every written block resolves to the
// current delta, and reads never consult the disk below block
// granularity; merge preserves exactly the distinct live block set.
func TestPropertyCOWConsistency(t *testing.T) {
	f := func(blocks []uint8) bool {
		s, v := newVol(5, Optimized)
		distinct := make(map[int64]bool)
		for _, b := range blocks {
			vba := int64(b % 64)
			distinct[vba] = true
			v.Write(vba*BlockSize, BlockSize, nil)
		}
		s.Run()
		for vba := range distinct {
			if v.Cur.lookup(vba) < 0 {
				return false
			}
		}
		merged := v.Merge(true, nil)
		return merged == int64(len(distinct))*BlockSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
