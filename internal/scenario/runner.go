package scenario

import (
	"fmt"
	"strings"

	"emucheck"
	"emucheck/internal/core"
	"emucheck/internal/guest"
	"emucheck/internal/metrics"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// ExpStats accumulates one experiment's observable progress.
type ExpStats struct {
	Ticks       int64 `json:"ticks"`
	Checkpoints int   `json:"checkpoints"`
}

// Check is one evaluated assertion.
type Check struct {
	Desc   string `json:"desc"`
	Ok     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ExpRow is one experiment's end-of-run summary.
type ExpRow struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	Ticks       int64   `json:"ticks"`
	Checkpoints int     `json:"checkpoints"`
	Admissions  int     `json:"admissions"`
	Preemptions int     `json:"preemptions"`
	QueueWaitS  float64 `json:"queue_wait_s"`
	// SwapMB is the experiment's total file-server traffic (both
	// directions) across its swap cycles, in MB.
	SwapMB float64 `json:"swap_mb"`
}

// Result is a completed scenario run.
type Result struct {
	Name        string  `json:"name"`
	Pass        bool    `json:"pass"`
	Ran         string  `json:"ran"` // simulated time covered
	Utilization float64 `json:"utilization"`
	Preemptions int     `json:"preemptions"`
	Admissions  int     `json:"admissions"`
	// SwapMode is the transfer mode the run used (full or incremental).
	SwapMode string `json:"swap_mode"`
	// PreemptedMB is the scheduler's estimated transfer bill for its
	// involuntary parks, in MB (proportional to dirtied state under
	// incremental swapping).
	PreemptedMB float64  `json:"preempted_mb"`
	Experiments []ExpRow `json:"experiments"`
	Checks      []Check  `json:"checks,omitempty"`
	EventErrors []string `json:"event_errors,omitempty"`
}

// Run validates and replays the scenario, returning the evaluated
// result. Validation failures abort before anything runs.
func Run(f *File) (*Result, error) {
	if errs := Validate(f); len(errs) > 0 {
		lines := make([]string, len(errs))
		for i, e := range errs {
			lines[i] = e.Error()
		}
		return nil, fmt.Errorf("scenario %q invalid:\n  %s", f.Name, strings.Join(lines, "\n  "))
	}
	pol, _ := sched.ParsePolicy(f.Policy)
	c := emucheck.NewCluster(f.Pool, f.Seed, pol)
	c.Incremental = f.Swap == "incremental"

	stats := make([]*ExpStats, len(f.Experiments))
	mode := f.Swap
	if mode == "" {
		mode = "full"
	}
	res := &Result{Name: f.Name, SwapMode: mode}
	evErr := func(format string, args ...any) {
		res.EventErrors = append(res.EventErrors, fmt.Sprintf(format, args...))
	}

	// Submit each experiment at its scheduled arrival.
	for i := range f.Experiments {
		e := &f.Experiments[i]
		st := &ExpStats{}
		stats[i] = st
		submit := func() {
			sc := emucheck.Scenario{Spec: e.Spec(), Setup: workloadSetup(c, e, st)}
			if _, err := c.Submit(sc, e.Priority); err != nil {
				evErr("submit %s: %v", e.Name, err)
			}
		}
		at, _ := parseDur(e.SubmitAt)
		if at == 0 {
			submit()
		} else {
			c.S.At(at, "scenario.submit."+e.Name, submit)
		}
	}

	// Schedule events.
	for i := range f.Events {
		ev := f.Events[i]
		at, _ := parseDur(ev.At)
		idx := expIndex(f, ev.Target)
		c.S.At(at, "scenario."+ev.Action, func() {
			if err := applyEvent(c, ev, stats[idx]); err != nil {
				evErr("t=%v %s %s: %v", c.Now(), ev.Action, ev.Target, err)
			}
		})
	}

	dur, _ := parseDur(f.RunFor)
	c.RunFor(dur)
	res.Ran = dur.String()

	// Collect stats and evaluate assertions.
	res.Utilization = c.Utilization()
	res.Preemptions = c.Sched.Preemptions
	res.Admissions = c.Sched.Admissions
	res.PreemptedMB = float64(c.Sched.PreemptedBytes) / (1 << 20)
	for i := range f.Experiments {
		e := &f.Experiments[i]
		row := ExpRow{Name: e.Name, State: "unsubmitted", Ticks: stats[i].Ticks, Checkpoints: stats[i].Checkpoints}
		if t := c.Tenant(e.Name); t != nil {
			row.State = t.State()
			row.Admissions = t.Admissions()
			row.Preemptions = t.Preemptions()
			row.QueueWaitS = t.QueueWait().Seconds()
			row.SwapMB = float64(c.TB.Server.ByTag[e.Name]) / (1 << 20)
		}
		res.Experiments = append(res.Experiments, row)
	}
	for _, a := range f.Assertions {
		res.Checks = append(res.Checks, evalAssertion(c, f, stats, a))
	}
	res.Pass = len(res.EventErrors) == 0
	for _, ch := range res.Checks {
		if !ch.Ok {
			res.Pass = false
		}
	}
	return res, nil
}

func expIndex(f *File, name string) int {
	for i := range f.Experiments {
		if f.Experiments[i].Name == name {
			return i
		}
	}
	return -1
}

// workloadSetup installs the named built-in workload. Every workload
// reports activity to the scheduler (the IdleFirst signal) and counts
// progress ticks for assertions. Setup reruns from scratch if the
// cluster readmits the experiment statelessly.
func workloadSetup(c *emucheck.Cluster, e *Experiment, st *ExpStats) func(*emucheck.Session) {
	name := e.Name
	switch e.Workload {
	case "sleeploop":
		first := e.Nodes[0].Name
		return func(s *emucheck.Session) {
			k := s.Kernel(first)
			var step func()
			step = func() {
				k.Usleep(100*sim.Millisecond, func() {
					st.Ticks++
					c.Touch(name)
					step()
				})
			}
			step()
		}
	case "pingpong":
		a, b := e.Nodes[0].Name, e.Nodes[1].Name
		return func(s *emucheck.Session) {
			ka, kb := s.Kernel(a), s.Kernel(b)
			kb.Handle("ping", func(simnet.Addr, *guest.Message) {
				kb.Send(simnet.Addr(a), 200, &guest.Message{Port: "pong"})
			})
			var send func()
			ka.Handle("pong", func(simnet.Addr, *guest.Message) {
				st.Ticks++
				c.Touch(name)
				// Pace the exchange: an RPC every 50 ms, not a raw-fabric
				// packet storm.
				ka.Usleep(50*sim.Millisecond, send)
			})
			send = func() { ka.Send(simnet.Addr(b), 200, &guest.Message{Port: "ping"}) }
			send()
		}
	case "diskchurn":
		first := e.Nodes[0].Name
		return func(s *emucheck.Session) {
			k := s.Kernel(first)
			var off int64
			var step func()
			step = func() {
				k.WriteDisk(1<<30+off%(1<<30), 512<<10, func() {
					off += 512 << 10
					st.Ticks++
					c.Touch(name)
					k.Usleep(sim.Second, step)
				})
			}
			step()
		}
	}
	return nil // idle
}

// applyEvent executes one timed action.
func applyEvent(c *emucheck.Cluster, ev Event, st *ExpStats) error {
	sess := c.Tenant(ev.Target)
	if sess == nil {
		return fmt.Errorf("not submitted yet")
	}
	switch ev.Action {
	case "swap_out":
		return c.Park(ev.Target)
	case "swap_in":
		return c.Unpark(ev.Target)
	case "checkpoint":
		return sess.CheckpointAsync(core.Options{Incremental: true}, func(*core.Result) {
			st.Checkpoints++
		})
	case "inject":
		// A burst of fresh guest activity: dirty a few MB of disk and
		// report liveness — the "experimenter came back" signal. Only a
		// tenant actually in service can receive it (a stateful-parked
		// one still has Exp, but its guests are frozen off-hardware).
		if sess.Exp == nil || sess.State() != "running" {
			return fmt.Errorf("experiment is %s", sess.State())
		}
		k := sess.Exp.Node(sess.Scenario.Spec.Nodes[0].Name).K
		k.WriteDisk(2<<30, 4<<20, nil)
		c.Touch(ev.Target)
		return nil
	case "finish":
		return c.Finish(ev.Target)
	}
	return fmt.Errorf("unknown action %q", ev.Action)
}

// evalAssertion checks one assertion against the finished run.
func evalAssertion(c *emucheck.Cluster, f *File, stats []*ExpStats, a Assertion) Check {
	idx := expIndex(f, a.Target)
	var sess *emucheck.Session
	if a.Target != "" {
		sess = c.Tenant(a.Target)
	}
	switch a.Type {
	case "state":
		got := "unsubmitted"
		if sess != nil {
			got = sess.State()
		}
		return mkCheck(fmt.Sprintf("%s state == %s", a.Target, a.Want), got == a.Want, "got "+got)
	case "min_ticks":
		got := stats[idx].Ticks
		return mkCheck(fmt.Sprintf("%s ticks >= %d", a.Target, a.Value), got >= a.Value, fmt.Sprintf("got %d", got))
	case "min_checkpoints":
		got := stats[idx].Checkpoints
		return mkCheck(fmt.Sprintf("%s checkpoints >= %d", a.Target, a.Value), int64(got) >= a.Value, fmt.Sprintf("got %d", got))
	case "min_preemptions":
		got := c.Sched.Preemptions
		desc := fmt.Sprintf("preemptions >= %d", a.Value)
		if sess != nil {
			got = sess.Preemptions()
			desc = fmt.Sprintf("%s preemptions >= %d", a.Target, a.Value)
		}
		return mkCheck(desc, int64(got) >= a.Value, fmt.Sprintf("got %d", got))
	case "all_admitted":
		for _, t := range c.Tenants() {
			if t.Admissions() == 0 {
				return mkCheck("all experiments admitted", false, t.Scenario.Spec.Name+" never admitted")
			}
		}
		return mkCheck("all experiments admitted", len(c.Tenants()) == len(f.Experiments),
			fmt.Sprintf("%d of %d submitted", len(c.Tenants()), len(f.Experiments)))
	case "max_queue_wait":
		lim, _ := parseDur(a.Dur)
		worstName, worst := "", sim.Time(0)
		for _, t := range c.Tenants() {
			if a.Target != "" && t != sess {
				continue
			}
			if w := t.QueueWait(); w > worst {
				worst, worstName = w, t.Scenario.Spec.Name
			}
		}
		return mkCheck(fmt.Sprintf("queue wait <= %s", a.Dur), worst <= lim,
			fmt.Sprintf("worst %v (%s)", worst, worstName))
	case "virtual_elapsed_max":
		lim, _ := parseDur(a.Dur)
		if sess == nil || sess.Exp == nil {
			state := "unsubmitted"
			if sess != nil {
				state = sess.State()
			}
			return mkCheck(fmt.Sprintf("%s/%s virtual <= %s", a.Target, a.Node, a.Dur), false,
				"experiment is "+state)
		}
		got := sess.VirtualNow(a.Node)
		return mkCheck(fmt.Sprintf("%s/%s virtual <= %s", a.Target, a.Node, a.Dur), got <= lim,
			fmt.Sprintf("got %v (real %v)", got, c.Now()))
	case "utilization_min":
		got := c.Utilization() * 100
		return mkCheck(fmt.Sprintf("pool utilization >= %d%%", a.Value), got >= float64(a.Value),
			fmt.Sprintf("got %.0f%%", got))
	case "max_swap_mb":
		var gotBytes int64
		desc := fmt.Sprintf("swap traffic <= %d MB", a.Value)
		if a.Target != "" {
			gotBytes = c.TB.Server.ByTag[a.Target]
			desc = fmt.Sprintf("%s swap traffic <= %d MB", a.Target, a.Value)
		} else {
			gotBytes = int64(c.TB.Server.Received + c.TB.Server.Served)
		}
		gotMB := float64(gotBytes) / (1 << 20)
		return mkCheck(desc, gotMB <= float64(a.Value), fmt.Sprintf("got %.1f MB", gotMB))
	}
	return mkCheck("unknown assertion "+a.Type, false, "")
}

func mkCheck(desc string, ok bool, detail string) Check {
	return Check{Desc: desc, Ok: ok, Detail: detail}
}

// Render prints the run as a human-readable report.
func (r *Result) Render() string {
	t := &metrics.Table{Header: []string{"experiment", "state", "ticks", "ckpts", "admissions", "preemptions", "queue wait (s)", "swap MB"}}
	for _, row := range r.Experiments {
		t.AddRow(row.Name, row.State, row.Ticks, row.Checkpoints, row.Admissions, row.Preemptions,
			fmt.Sprintf("%.1f", row.QueueWaitS), fmt.Sprintf("%.1f", row.SwapMB))
	}
	s := fmt.Sprintf("scenario %s: ran %s (%s swap), pool utilization %.0f%%, %d admissions, %d preemptions (%.1f MB preempted state)\n%s",
		r.Name, r.Ran, r.SwapMode, r.Utilization*100, r.Admissions, r.Preemptions, r.PreemptedMB, t.String())
	for _, e := range r.EventErrors {
		s += "event error: " + e + "\n"
	}
	for _, ch := range r.Checks {
		mark := "PASS"
		if !ch.Ok {
			mark = "FAIL"
		}
		s += fmt.Sprintf("%s  %s (%s)\n", mark, ch.Desc, ch.Detail)
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	s += "result: " + verdict + "\n"
	return s
}
