module emucheck

go 1.22
