package node

import (
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// Params collects the calibration constants for one simulated machine.
// The defaults model the Emulab "pc3000" nodes used throughout the
// paper's evaluation (§7): Dell PowerEdge 2850, one 3.0 GHz Xeon, 2 GB
// RAM, two 146 GB 10,000 RPM SCSI disks, 1 Gbps experiment links and a
// 100 Mbps control network.
type Params struct {
	// Disk geometry and timing (10k RPM SCSI).
	DiskSeekAvg        sim.Time // average random seek
	DiskSeekTrack      sim.Time // adjacent-region seek
	DiskRotationalHalf sim.Time // half-rotation latency (10k RPM: 3 ms)
	DiskTransferBps    int64    // sequential media rate, bytes/second
	DiskSizeBytes      int64

	// Per-request fixed controller/DMA overhead.
	DiskOverhead sim.Time

	// Network interfaces.
	ExperimentLink simnet.Bitrate
	ControlLink    simnet.Bitrate

	// Guest configuration (§7: 6 GB disk image, 256 MB RAM, 32-bit FC4).
	GuestMemBytes  int64
	GuestDiskBytes int64
	PageSize       int

	// Xen paravirtual timer resolution (§4.4: Xen limits guest timer
	// interrupt resolution to 1 ms).
	XenTimerResolution sim.Time

	// Scheduling-latency jitter applied to guest wakeups; calibrated so
	// 97% of sleep-loop iterations measure within 28 us (Fig. 4).
	WakeupJitterMean   sim.Time
	WakeupJitterStddev sim.Time

	// Firewall engage/disengage leak: the empirical transparency limit of
	// the local checkpoint, ~80 us at a checkpoint (Fig. 4 inset).
	FirewallLeakLo sim.Time
	FirewallLeakHi sim.Time

	// Xen paravirtual network path per-packet CPU costs. The Xen net
	// path is CPU-bound under load (Cherkasova 2005, Santos 2008, cited
	// in §4.4); these costs are what make dom0 interference visible as
	// the small post-checkpoint throughput dips of Figs. 6 and 7.
	XenNetTxCost sim.Time
	XenNetRxCost sim.Time

	// Device quiesce/reconnect costs on the checkpoint path (§3.1:
	// "during a checkpoint the virtual machine has to shutdown its
	// devices... when resumed, the devices have to be reconnected").
	DeviceQuiesce   sim.Time
	DeviceReconnect sim.Time
}

// DefaultParams returns the pc3000 calibration.
func DefaultParams() Params {
	return Params{
		DiskSeekAvg:        4500 * sim.Microsecond,
		DiskSeekTrack:      800 * sim.Microsecond,
		DiskRotationalHalf: 3 * sim.Millisecond,
		DiskTransferBps:    72 << 20, // 72 MB/s media rate
		DiskSizeBytes:      146 << 30,
		DiskOverhead:       120 * sim.Microsecond,
		ExperimentLink:     simnet.Gbps,
		ControlLink:        100 * simnet.Mbps,
		GuestMemBytes:      256 << 20,
		GuestDiskBytes:     6 << 30,
		PageSize:           4096,
		XenTimerResolution: sim.Millisecond,
		WakeupJitterMean:   12 * sim.Microsecond,
		WakeupJitterStddev: 7 * sim.Microsecond,
		FirewallLeakLo:     55 * sim.Microsecond,
		FirewallLeakHi:     90 * sim.Microsecond,
		XenNetTxCost:       11 * sim.Microsecond,
		XenNetRxCost:       16 * sim.Microsecond,
		DeviceQuiesce:      2 * sim.Millisecond,
		DeviceReconnect:    1500 * sim.Microsecond,
	}
}
