package sched

import (
	"fmt"
	"testing"

	"emucheck/internal/sim"
)

func TestFailRunningJobReleasesHardware(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	a := fakeJob(s, "a", 3, 0, sim.Second, sim.Second, sim.Second)
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	if err := d.Fail("a"); err != nil {
		t.Fatal(err)
	}
	if a.State() != Crashed || d.Free() != 4 || d.Failures != 1 {
		t.Fatalf("state %v free %d failures %d", a.State(), d.Free(), d.Failures)
	}
	// A crashed job is not a preemption victim and not queued.
	if d.QueueLen() != 0 {
		t.Fatalf("crashed job sits in queue")
	}
}

func TestFailParkingJobSettlesLedger(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	// A park that would take a minute; the crash lands mid-park.
	a := fakeJob(s, "a", 4, 0, sim.Second, sim.Minute, sim.Second)
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * sim.Second)
	if err := d.Park("a"); err != nil {
		t.Fatal(err)
	}
	if a.State() != Parking {
		t.Fatalf("state %v, want parking", a.State())
	}
	if err := d.Fail("a"); err != nil {
		t.Fatal(err)
	}
	if a.State() != Crashed || d.Free() != 4 || d.parksInFlight != 0 {
		t.Fatalf("state %v free %d parksInFlight %d", a.State(), d.Free(), d.parksInFlight)
	}
	// The stale park completion must not resurrect or double-free.
	s.RunFor(2 * sim.Minute)
	if a.State() != Crashed || d.Free() != 4 {
		t.Fatalf("stale park completion corrupted state: %v free %d", a.State(), d.Free())
	}
	// The freed capacity admits the next job.
	b := fakeJob(s, "b", 4, 0, sim.Second, sim.Second, sim.Second)
	if err := d.Submit(b); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	if b.State() != Running {
		t.Fatalf("successor %v, want running", b.State())
	}
}

func TestRecoverRequeuesCrashedJob(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	a := fakeJob(s, "a", 2, 0, sim.Second, sim.Second, sim.Second)
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	if err := d.Recover("a"); err == nil {
		t.Fatal("Recover of a running job must fail")
	}
	if err := d.Fail("a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Recover("a"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	if a.State() != Running || d.Recoveries != 1 {
		t.Fatalf("state %v recoveries %d", a.State(), d.Recoveries)
	}
	if a.Admissions() != 2 {
		t.Fatalf("admissions %d, want 2 (resume path)", a.Admissions())
	}
}

func TestParkFailureReturnsJobToRunning(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	a := fakeJob(s, "a", 4, 0, sim.Second, 0, sim.Second)
	failPark := true
	a.Hooks.Park = func(done func(error)) {
		s.After(2*sim.Second, "fake.park", func() {
			if failPark {
				done(fmt.Errorf("epoch aborted"))
				return
			}
			done(nil)
		})
	}
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * sim.Second)
	if err := d.Park("a"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	// The aborted swap-out left the job running on its hardware.
	if a.State() != Running || d.Free() != 0 || d.parksInFlight != 0 {
		t.Fatalf("state %v free %d parks %d", a.State(), d.Free(), d.parksInFlight)
	}
	// A later park succeeds normally.
	failPark = false
	if err := d.Park("a"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	if a.State() != Parked || d.Free() != 4 {
		t.Fatalf("state %v free %d after clean park", a.State(), d.Free())
	}
}

func TestFailQueuedJobLeavesQueue(t *testing.T) {
	s := sim.New(1)
	d := New(s, 2, FIFO)
	a := fakeJob(s, "a", 2, 0, sim.Second, sim.Second, sim.Second)
	a.Preemptible = false
	b := fakeJob(s, "b", 2, 0, sim.Second, sim.Second, sim.Second)
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(b); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * sim.Second)
	if b.State() != Queued {
		t.Fatalf("b is %v, want queued behind a", b.State())
	}
	if err := d.Fail("b"); err != nil {
		t.Fatal(err)
	}
	if b.State() != Crashed || d.QueueLen() != 0 {
		t.Fatalf("b %v queue %d", b.State(), d.QueueLen())
	}
}
