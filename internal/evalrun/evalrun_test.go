// Quick-scale sanity tests for the evaluation harness. The full-scale
// runs live in bench_test.go / cmd/benchrunner; these shrunken versions
// guard the harness code paths in the ordinary test suite.
package evalrun

import (
	"strings"
	"testing"

	"emucheck/internal/sim"
)

func TestFig4Quick(t *testing.T) {
	r := Fig4(1, 600)
	if r.Iters.Len() != 600 {
		t.Fatalf("samples = %d", r.Iters.Len())
	}
	if r.MeanMs < 19.9 || r.MeanMs > 20.1 {
		t.Fatalf("mean = %.3f ms", r.MeanMs)
	}
	if r.CkptMaxErr > 200*sim.Microsecond {
		t.Fatalf("worst error %v", r.CkptMaxErr)
	}
	if r.Checkpoints == 0 {
		t.Fatal("no checkpoints ran")
	}
	if !strings.Contains(r.Render(), "within 28us") {
		t.Fatal("render")
	}
}

func TestFig5Quick(t *testing.T) {
	r := Fig5(1, 60)
	if r.MeanMs < 236 || r.MeanMs > 242 {
		t.Fatalf("mean = %.1f", r.MeanMs)
	}
	if r.MaxOverMs > 27 {
		t.Fatalf("interference %.1f ms above the paper bound", r.MaxOverMs)
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestFig6Quick(t *testing.T) {
	r := Fig6(1)
	if r.Retransmits != 0 || r.Timeouts != 0 || r.DupData != 0 {
		t.Fatalf("trace artifacts: %d/%d/%d", r.Retransmits, r.Timeouts, r.DupData)
	}
	if len(r.CkptGapsUs) == 0 {
		t.Fatal("no checkpoint gaps measured")
	}
	if r.MedianGapUs < 10 || r.MedianGapUs > 30 {
		t.Fatalf("median gap %.1f us", r.MedianGapUs)
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestFig8Quick(t *testing.T) {
	r := Fig8(1, 64)
	if r.OrigWriteSlowdownPct < 50 {
		t.Fatalf("orig slowdown %.0f%%", r.OrigWriteSlowdownPct)
	}
	if r.FreshWriteOverheadPct < 5 || r.FreshWriteOverheadPct > 35 {
		t.Fatalf("fresh overhead %.0f%%", r.FreshWriteOverheadPct)
	}
	if r.AgedWriteOverheadPct > 5 {
		t.Fatalf("aged overhead %.0f%%", r.AgedWriteOverheadPct)
	}
	if !strings.Contains(r.Render(), "Block-Writes") {
		t.Fatal("render")
	}
}

func TestFig9Quick(t *testing.T) {
	r := Fig9(1, 128)
	if r.LazyOverheadPct <= 0 || r.EagerOverheadPct <= 0 {
		t.Fatalf("no interference measured: eager %+.0f%% lazy %+.0f%%",
			r.EagerOverheadPct, r.LazyOverheadPct)
	}
	if r.LazyThroughputDropPct < 15 {
		t.Fatalf("lazy drop %.0f%%", r.LazyThroughputDropPct)
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestSyncTableQuick(t *testing.T) {
	r := SyncTable(1)
	if len(r.SkewAt) != 4 {
		t.Fatal("skew samples")
	}
	if r.SkewAt[0] <= r.SkewAt[2] {
		t.Fatalf("skew did not converge: %v", r.SkewAt)
	}
	if r.EventSkew <= r.ScheduledSkew {
		t.Fatal("scheduled mode not better")
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestDom0JobsQuick(t *testing.T) {
	r := Dom0Jobs(1)
	ls, sum, xm := r.ExtraMs["ls /"], r.ExtraMs["sum vmlinux"], r.ExtraMs["xm list"]
	if !(ls < sum && sum < xm) {
		t.Fatalf("ordering broken: %.1f %.1f %.1f", ls, sum, xm)
	}
	if xm < 100 || xm > 170 {
		t.Fatalf("xm list effect %.1f ms", xm)
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}

func TestFreeBlockQuick(t *testing.T) {
	r := FreeBlockTable(1)
	if r.LiveMB*4 > r.RawMB {
		t.Fatalf("elimination weak: %d -> %d MB", r.RawMB, r.LiveMB)
	}
	if r.LiveMB == 0 {
		t.Fatal("no residual delta: journal/metadata model missing")
	}
	if r.Render() == "" {
		t.Fatal("render")
	}
}
