// Package storage implements the three-level branching copy-on-write
// store behind stateful swapping (paper §5.1, Fig. 3): an immutable
// golden filesystem image addressed linearly (VBA == PBA), an aggregated
// delta holding all changes from previous swap-ins, and a current delta
// capturing changes since the last swap-in.
//
// Writes go to the current delta as a redo log: full-block overwrites
// appended at the log head, so COW never performs a read-before-write
// (§5.3, the order-of-magnitude improvement over stock LVM snapshots —
// OriginalLVM mode models the stock behaviour for Fig. 8's comparison).
// Reads cost a current-delta hash lookup, then an aggregated-delta hash
// lookup, then fall through to the golden image's linear addressing.
//
// After a swap-out, the current delta is merged into the aggregated
// delta offline; the merge re-sorts blocks by virtual address to restore
// locality lost across repeated swap cycles (§5.3).
package storage

import (
	"fmt"
	"sort"

	"emucheck/internal/node"
)

// Mode selects the copy-on-write write path.
type Mode int

// Write-path modes.
const (
	// Optimized is the paper's redo-log store: full-block overwrite,
	// never read-before-write.
	Optimized Mode = iota
	// OriginalLVM models stock LVM snapshots: the first write to a block
	// reads the original and copies it aside before writing new data.
	OriginalLVM
	// Raw bypasses COW entirely (the Fig. 8 "Base" configuration).
	Raw
)

// String names the mode as the evaluation tables label it.
func (m Mode) String() string {
	switch m {
	case Optimized:
		return "branch"
	case OriginalLVM:
		return "branch-orig"
	default:
		return "base"
	}
}

// BlockSize is the COW granularity. The paper sizes filesystem blocks as
// a multiple of the LVM block so COW is always a complete overwrite.
const BlockSize = 64 << 10

// Physical layout of the regions on the backing disk (byte LBAs). The
// regions are deliberately far apart: crossing them costs a seek, which
// is what makes fresh-disk metadata overhead (Fig. 8's 17%) and
// locality loss measurable.
const (
	GoldenBase   = 0
	AggBase      = 16 << 30
	CurBase      = 32 << 30
	MetadataBase = CurBase - (16 << 20) // near the log: a short-seek hop
	CopyAreaBase = 120 << 30            // stock-LVM copy-aside region
)

// Delta is one COW branch: a hash index from virtual block number to a
// slot in an append-only on-disk log.
type Delta struct {
	// Index maps a virtual block address to its occupied log slot.
	Index map[int64]int64
	// Order lists the VBAs in physical log-append order.
	Order []int64
	// BaseLBA is the byte LBA where the delta's log region starts.
	BaseLBA int64
}

// NewDelta creates an empty delta whose log lives at base.
func NewDelta(base int64) *Delta {
	return &Delta{Index: make(map[int64]int64), BaseLBA: base}
}

// Slots reports occupied log slots.
func (d *Delta) Slots() int { return len(d.Order) }

// Bytes reports the delta's on-disk size.
func (d *Delta) Bytes() int64 { return int64(len(d.Order)) * BlockSize }

// LiveBytes reports the delta size after free-block elimination: blocks
// the filesystem has freed are dropped (§5.1).
func (d *Delta) LiveBytes(isFree func(vba int64) bool) int64 {
	if isFree == nil {
		return d.Bytes()
	}
	var n int64
	for vba := range d.Index {
		if !isFree(vba) {
			n += BlockSize
		}
	}
	return n
}

// lookup reports the physical LBA for vba, or -1.
func (d *Delta) lookup(vba int64) int64 {
	slot, ok := d.Index[vba]
	if !ok {
		return -1
	}
	return d.BaseLBA + slot*BlockSize
}

// append adds (or overwrites) vba at the log head and reports the
// physical LBA written.
func (d *Delta) append(vba int64) int64 {
	slot := int64(len(d.Order))
	d.Index[vba] = slot
	d.Order = append(d.Order, vba)
	return d.BaseLBA + slot*BlockSize
}

// Volume is a guest virtual disk assembled from the three levels.
// It implements the timing-accurate block backend for a guest kernel.
type Volume struct {
	// Disk is the timing-accurate physical disk all levels live on.
	Disk *node.Disk
	// Mode selects the write path (redo log, stock LVM, or raw).
	Mode Mode

	// GoldenBytes is the immutable golden image's size.
	GoldenBytes int64
	// Agg is the aggregated delta (all changes from previous swap-ins);
	// Cur the current delta (changes since the last swap-in).
	Agg *Delta
	Cur *Delta

	// MetadataEvery controls how often a redo-log append must also
	// update an on-disk metadata region (a long seek). On a fresh disk
	// this happens frequently; as the disk ages and metadata regions
	// fill, the overhead disappears (§7.1 Fig. 8 discussion). Zero
	// disables metadata writes ("aged" disk).
	MetadataEvery int

	writesSinceMeta int

	// cowCopied tracks OriginalLVM copy-aside regions (LVM chunk
	// granularity) that have already been preserved.
	cowCopied map[int64]bool

	// content tags every written block with a monotonically increasing
	// write sequence number, so two views of the volume can be compared
	// for byte-identity without storing data: equal tags mean the block
	// was last written by the same write, hence holds the same bytes.
	content  map[int64]int64
	writeSeq int64

	// ReadsCur, ReadsAgg and ReadsGolden count which level satisfied
	// each block lookup; CowCopies counts stock-LVM copy-asides.
	ReadsCur, ReadsAgg, ReadsGolden int64
	CowCopies                       int64
}

// NewVolume creates a volume over disk with a golden image of the given
// size. Fresh COW metadata (MetadataEvery=8) models a new branch.
func NewVolume(disk *node.Disk, goldenBytes int64, mode Mode) *Volume {
	return &Volume{
		Disk:          disk,
		Mode:          mode,
		GoldenBytes:   goldenBytes,
		Agg:           NewDelta(AggBase),
		Cur:           NewDelta(CurBase),
		MetadataEvery: 96,
	}
}

// Age marks the COW metadata regions as filled: appends stop paying the
// metadata seek (Fig. 8: aged branch performs within 2% of native).
func (v *Volume) Age() { v.MetadataEvery = 0 }

type span struct {
	lba int64
	n   int64
}

// coalesce merges physically adjacent spans to minimize disk requests.
func coalesce(spans []span) []span {
	if len(spans) == 0 {
		return spans
	}
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if last.lba+last.n == s.lba {
			last.n += s.n
			continue
		}
		out = append(out, s)
	}
	return out
}

// locate resolves one virtual block to its physical LBA.
func (v *Volume) locate(vba int64) int64 {
	if v.Mode == Raw {
		return GoldenBase + vba*BlockSize
	}
	if lba := v.Cur.lookup(vba); lba >= 0 {
		v.ReadsCur++
		return lba
	}
	if lba := v.Agg.lookup(vba); lba >= 0 {
		v.ReadsAgg++
		return lba
	}
	v.ReadsGolden++
	return GoldenBase + vba*BlockSize
}

// submit issues the spans as disk requests; done fires when the last
// completes.
func (v *Volume) submit(op node.DiskOp, spans []span, done func()) {
	spans = coalesce(spans)
	if len(spans) == 0 {
		if done != nil {
			v.Disk.Submit(&node.DiskRequest{Op: op, LBA: 0, Bytes: 1, Done: done})
		}
		return
	}
	for i, s := range spans {
		var cb func()
		if i == len(spans)-1 {
			cb = done
		}
		v.Disk.Submit(&node.DiskRequest{Op: op, LBA: s.lba, Bytes: s.n, Done: cb})
	}
}

// Read implements the guest block backend read path.
func (v *Volume) Read(off, n int64, done func()) {
	if n <= 0 {
		panic("storage: empty read")
	}
	var spans []span
	for b := off / BlockSize; b <= (off+n-1)/BlockSize; b++ {
		spans = append(spans, span{lba: v.locate(b), n: BlockSize})
	}
	v.submit(node.Read, spans, done)
}

// Write implements the guest block backend write path.
func (v *Volume) Write(off, n int64, done func()) {
	if n <= 0 {
		panic("storage: empty write")
	}
	if v.Mode == Raw {
		v.submit(node.Write, []span{{lba: GoldenBase + off, n: n}}, done)
		return
	}
	var spans []span
	for b := off / BlockSize; b <= (off+n-1)/BlockSize; b++ {
		if v.Mode == OriginalLVM {
			// Stock LVM snapshot: the first write within each LVM chunk
			// copies the original aside — a read plus an extra write
			// before the data write (the read-before-write the paper's
			// redo log eliminates, §5.3).
			const lvmChunk = 512 << 10
			region := b * BlockSize / lvmChunk
			if v.cowCopied == nil {
				v.cowCopied = make(map[int64]bool)
			}
			if !v.cowCopied[region] {
				v.cowCopied[region] = true
				v.CowCopies++
				src := GoldenBase + region*lvmChunk
				v.Disk.Submit(&node.DiskRequest{Op: node.Read, LBA: src, Bytes: lvmChunk})
				v.Disk.Submit(&node.DiskRequest{Op: node.Write, LBA: CopyAreaBase + v.CowCopies*lvmChunk, Bytes: lvmChunk})
			}
		}
		if v.content == nil {
			v.content = make(map[int64]int64)
		}
		v.writeSeq++
		v.content[b] = v.writeSeq
		spans = append(spans, span{lba: v.Cur.append(b), n: BlockSize})
		if v.MetadataEvery > 0 {
			v.writesSinceMeta++
			if v.writesSinceMeta >= v.MetadataEvery {
				v.writesSinceMeta = 0
				// Metadata region update: a small distant write.
				v.Disk.Submit(&node.DiskRequest{Op: node.Write, LBA: MetadataBase, Bytes: 4096})
			}
		}
	}
	v.submit(node.Write, spans, done)
}

// CurrentDeltaBytes reports the current delta size, optionally after
// free-block elimination.
func (v *Volume) CurrentDeltaBytes(isFree func(vba int64) bool) int64 {
	return v.Cur.LiveBytes(isFree)
}

// EpochBlocks returns the content-tagged view of the current delta —
// every block dirtied since the last Merge, keyed by virtual block
// address — optionally after free-block elimination. This is the
// per-epoch diff an incremental swap-out uploads and commits to a
// checkpoint Lineage.
func (v *Volume) EpochBlocks(isFree func(vba int64) bool) map[int64]int64 {
	out := make(map[int64]int64, len(v.Cur.Index))
	for vba := range v.Cur.Index {
		if isFree != nil && isFree(vba) {
			continue
		}
		out[vba] = v.content[vba]
	}
	return out
}

// Snapshot returns the content-tagged view of every block ever written
// (current plus aggregated history), optionally after free-block
// elimination — the "full checkpoint" a replayed delta chain must
// reconstruct exactly.
func (v *Volume) Snapshot(isFree func(vba int64) bool) map[int64]int64 {
	out := make(map[int64]int64, len(v.content))
	for vba, tag := range v.content {
		if isFree != nil && isFree(vba) {
			continue
		}
		out[vba] = tag
	}
	return out
}

// Merge folds the current delta into the aggregated delta and empties
// it, as the offline post-swap-out step does. When reorder is true the
// merged log is re-sorted by virtual block address, restoring locality
// for subsequent sequential reads; isFree (optional) drops freed blocks.
// It reports the merged delta's size in bytes.
func (v *Volume) Merge(reorder bool, isFree func(vba int64) bool) int64 {
	merged := make(map[int64]bool, len(v.Agg.Index)+len(v.Cur.Index))
	for vba := range v.Agg.Index {
		merged[vba] = true
	}
	for vba := range v.Cur.Index {
		merged[vba] = true
	}
	newAgg := NewDelta(AggBase)
	vbas := make([]int64, 0, len(merged))
	for vba := range merged {
		if isFree != nil && isFree(vba) {
			// Eliminated for good: the block leaves the delta history, so
			// reads fall through to golden and the content view must agree.
			delete(v.content, vba)
			continue
		}
		vbas = append(vbas, vba)
	}
	if reorder {
		sort.Slice(vbas, func(i, j int) bool { return vbas[i] < vbas[j] })
	} else {
		// Preserve historical append order: aggregated first, then
		// current, skipping superseded entries implicitly via the map.
		vbas = vbas[:0]
		seen := make(map[int64]bool)
		for _, vba := range append(append([]int64{}, v.Agg.Order...), v.Cur.Order...) {
			if seen[vba] || (isFree != nil && isFree(vba)) || !merged[vba] {
				continue
			}
			seen[vba] = true
			vbas = append(vbas, vba)
		}
	}
	for _, vba := range vbas {
		newAgg.append(vba)
	}
	v.Agg = newAgg
	v.Cur = NewDelta(CurBase)
	v.writesSinceMeta = 0
	return newAgg.Bytes()
}

// String summarizes the volume for diagnostics.
func (v *Volume) String() string {
	return fmt.Sprintf("volume[%s] golden=%dMB agg=%dMB cur=%dMB",
		v.Mode, v.GoldenBytes>>20, v.Agg.Bytes()>>20, v.Cur.Bytes()>>20)
}
