package storage

import (
	"fmt"
	"sort"
)

// Addr is the content address of a committed epoch: a deterministic
// hash over the epoch's dirtied blocks (sorted by virtual address, with
// their content tags) and its dirty-page count. Two epochs with equal
// addresses carry identical delta content, so the store keeps one copy
// and lineages share it by reference.
type Addr uint64

// addr computes the epoch's content address (FNV-1a over the sorted
// block set). The epoch ID is deliberately excluded: identity is the
// delta's content, not its position in any particular chain.
func (e *Epoch) addr() Addr {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	vbas := make([]int64, 0, len(e.Blocks))
	for vba := range e.Blocks {
		vbas = append(vbas, vba)
	}
	sort.Slice(vbas, func(i, j int) bool { return vbas[i] < vbas[j] })
	for _, vba := range vbas {
		mix(uint64(vba))
		mix(uint64(e.Blocks[vba]))
	}
	mix(uint64(e.MemPages))
	return Addr(h)
}

// entry is one stored epoch plus its reference count: how many lineages
// (branches) currently include it in their replay chain.
type entry struct {
	e    *Epoch
	refs int
}

// ChainStore is the server-side home of checkpoint chains: a refcounted,
// content-addressed epoch store. Lineages forked from the same
// checkpoint share their base and common deltas by reference — no byte
// copies — while divergent commits append branch-private entries.
// Mutating operations (prune folds, retroactive free-block drops) go
// copy-on-write when the epoch is shared, so no branch can perturb a
// sibling's replay. Releasing a branch drops its references; entries no
// longer reachable from any lineage are garbage-collected.
type ChainStore struct {
	epochs map[Addr]*entry

	// GCBytes accumulates disk bytes reclaimed when released branches
	// made entries unreachable.
	GCBytes int64
	// DedupBytes accumulates disk bytes never stored because a commit's
	// content already existed (content-address hit).
	DedupBytes int64

	// OnStore, if set, observes every entry entering the store (first
	// reference to a content address). A storage Backend mirrors the
	// chain contents off this hook, so prune folds — which re-key the
	// base under a new address — reach the physical tier too.
	OnStore func(a Addr, bytes int64)
	// OnDrop observes entries leaving the store: the last reference
	// was released (GC) or the entry was re-keyed by a copy-on-write
	// fold. The mirroring backend forgets the segment.
	OnDrop func(a Addr, bytes int64)
}

// NewChainStore creates an empty store.
func NewChainStore() *ChainStore {
	return &ChainStore{epochs: make(map[Addr]*entry)}
}

// NewLineage creates an empty lineage backed by this store
// (maxDepth 0 = DefaultMaxDepth).
func (cs *ChainStore) NewLineage(maxDepth int) *Lineage {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	l := &Lineage{MaxDepth: maxDepth, store: cs, nextID: 1}
	l.base, l.baseAddr = cs.retain(&Epoch{ID: 0, Blocks: make(map[int64]int64)})
	return l
}

// retain registers e (or finds its content-identical twin) and returns
// the canonical epoch plus its address, holding one new reference.
func (cs *ChainStore) retain(e *Epoch) (*Epoch, Addr) {
	a := e.addr()
	if ent, ok := cs.epochs[a]; ok {
		ent.refs++
		if ent.e != e {
			cs.DedupBytes += e.DiskBytes()
		}
		return ent.e, a
	}
	cs.epochs[a] = &entry{e: e, refs: 1}
	if cs.OnStore != nil {
		cs.OnStore(a, e.DiskBytes())
	}
	return e, a
}

// retainAddr adds a reference to an already-stored address (fork path).
func (cs *ChainStore) retainAddr(a Addr) {
	cs.epochs[a].refs++
}

// release drops one reference; at zero the entry leaves the store. gc
// selects whether the reclaimed bytes count toward GCBytes (a branch
// released them) or not (an internal re-key during fold/drop subsumed
// the content elsewhere).
func (cs *ChainStore) release(a Addr, gc bool) {
	ent, ok := cs.epochs[a]
	if !ok {
		return
	}
	ent.refs--
	if ent.refs <= 0 {
		delete(cs.epochs, a)
		if gc {
			cs.GCBytes += ent.e.DiskBytes()
		}
		if cs.OnDrop != nil {
			cs.OnDrop(a, ent.e.DiskBytes())
		}
	}
}

// exclusive hands back an epoch the caller may mutate, consuming the
// caller's reference: the stored epoch itself when this was the sole
// referent, otherwise a private copy (copy-on-write) so sibling chains
// keep replaying byte-identically. The caller re-retains the epoch
// after mutating it (its address will have changed).
func (cs *ChainStore) exclusive(a Addr) *Epoch {
	ent := cs.epochs[a]
	if ent.refs == 1 {
		delete(cs.epochs, a)
		if cs.OnDrop != nil {
			cs.OnDrop(a, ent.e.DiskBytes())
		}
		return ent.e
	}
	ent.refs--
	cp := &Epoch{ID: ent.e.ID, MemPages: ent.e.MemPages, Blocks: make(map[int64]int64, len(ent.e.Blocks))}
	for vba, tag := range ent.e.Blocks {
		cp.Blocks[vba] = tag
	}
	return cp
}

// Refs reports how many lineages reference the address (0 if absent).
func (cs *ChainStore) Refs(a Addr) int {
	if ent, ok := cs.epochs[a]; ok {
		return ent.refs
	}
	return 0
}

// Entries reports how many unique epochs the store holds.
func (cs *ChainStore) Entries() int { return len(cs.epochs) }

// StoredBytes reports the unique disk bytes resident in the store — the
// server-side footprint all branches share. Compare against the sum of
// per-lineage ReplayBytes to see what content addressing saved.
func (cs *ChainStore) StoredBytes() int64 {
	var n int64
	for _, ent := range cs.epochs {
		n += ent.e.DiskBytes()
	}
	return n
}

// Audit cross-checks the store against the reference counts the live
// lineages imply: expected maps each address to the number of chain
// segments that should hold it. It reports every discrepancy — an entry
// whose refcount disagrees with its referents, a non-positive refcount
// (a GC leak in waiting), or an orphaned entry no lineage can reach.
// An empty result means the store and its lineages are consistent.
func (cs *ChainStore) Audit(expected map[Addr]int) []error {
	var errs []error
	for a, ent := range cs.epochs {
		if ent.refs <= 0 {
			errs = append(errs, fmt.Errorf("storage: entry %#x has non-positive refcount %d", uint64(a), ent.refs))
		}
		want, ok := expected[a]
		if !ok {
			errs = append(errs, fmt.Errorf("storage: orphaned entry %#x (refs=%d, %d bytes) unreachable from any live lineage",
				uint64(a), ent.refs, ent.e.DiskBytes()))
			continue
		}
		if ent.refs != want {
			errs = append(errs, fmt.Errorf("storage: entry %#x refcount %d, live lineages reference it %d times",
				uint64(a), ent.refs, want))
		}
	}
	for a, want := range expected {
		if _, ok := cs.epochs[a]; !ok {
			errs = append(errs, fmt.Errorf("storage: lineages reference %#x (%d refs) but the store lost it", uint64(a), want))
		}
	}
	return errs
}
