package main

import (
	"bytes"
	"strings"
	"testing"
)

func run(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := cli(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestCLISubcommands smoke-tests every demo: exit zero and the
// narration's load-bearing lines present.
func TestCLISubcommands(t *testing.T) {
	cases := []struct {
		cmd  string
		want []string
	}{
		{"checkpoint", []string{"sleep loop", "iterations:", "checkpoint 1:", "checkpoint 3:", "downtime"}},
		{"swap", []string{"virtual time before swap-out", "swapped out in", "swapped in (lazy)", "never happened"}},
		{"timetravel", []string{"checkpoint 1 at virtual", "rolled back to node 1", "branch recorded"}},
	}
	for _, tc := range cases {
		t.Run(tc.cmd, func(t *testing.T) {
			code, stdout, stderr := run(t, tc.cmd)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr)
			}
			for _, w := range tc.want {
				if !strings.Contains(stdout, w) {
					t.Fatalf("narration missing %q:\n%s", w, stdout)
				}
			}
		})
	}
}

// TestCLIDemoRunsAll: the default command chains all three demos.
func TestCLIDemoRunsAll(t *testing.T) {
	for _, args := range [][]string{{"demo"}, {}} {
		code, stdout, stderr := run(t, args...)
		if code != 0 {
			t.Fatalf("args %v: exit %d, stderr: %s", args, code, stderr)
		}
		for _, w := range []string{"sleep loop", "swapped out in", "branch recorded"} {
			if !strings.Contains(stdout, w) {
				t.Fatalf("args %v: chained narration missing %q:\n%s", args, w, stdout)
			}
		}
	}
}

// TestCLIDeterministic: the whole demo narration is a pure function of
// the seed — virtual timestamps, checkpoint byte counts, and all.
func TestCLIDeterministic(t *testing.T) {
	_, out1, _ := run(t, "-seed", "7", "demo")
	_, out2, _ := run(t, "-seed", "7", "demo")
	if out1 != out2 {
		t.Fatal("same-seed demo narrations differ")
	}
	_, out3, _ := run(t, "-seed", "8", "demo")
	if out1 == out3 {
		t.Fatal("different seeds produced identical narration — seed is not wired through")
	}
}

func TestCLIUnknownCommand(t *testing.T) {
	code, _, stderr := run(t, "frobnicate")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown command") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestCLIBadFlag(t *testing.T) {
	if code, _, _ := run(t, "-no-such-flag"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
