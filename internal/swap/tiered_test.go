package swap

import (
	"testing"

	"emucheck/internal/metrics"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
)

// tierRig wires the plain rig onto a pluggable storage tier the way a
// cluster does: a shared chain store mirroring onto the backend, and
// an optional delta cache consulting the store's refcounts.
func newTierRig(seed int64, be storage.Backend, cacheMB int64) *rig {
	r := newRig(seed)
	r.m.Stats = metrics.NewCounters()
	cs := storage.NewChainStore()
	r.m.Chains = cs
	if be != nil {
		cs.OnStore = func(a storage.Addr, n int64) { be.Put(a, n) }
		cs.OnDrop = func(a storage.Addr, n int64) { be.Delete(a) }
		r.m.Backend = be
		if cacheMB > 0 {
			r.m.Cache = storage.NewDeltaCache(cacheMB<<20, cs.Refs)
		}
	}
	return r
}

// runCycles drives the same dirty/park/resume script on a rig and
// returns the last swap-in report.
func runCycles(t *testing.T, r *rig, cycles int) *InReport {
	t.Helper()
	o := IncrementalOptions()
	r.s.RunFor(sim.Second)
	var in *InReport
	for c := 0; c < cycles; c++ {
		r.dirty(16 << 20)
		_, in = r.cycle(t, o)
	}
	return in
}

// TestTieredRemoteCacheServesRestores: with the remote tier fronted by
// a delta cache, commit-time fills mean restores hit the cache and the
// chain stops re-streaming over the control LAN — strictly fewer
// server bytes than the identical run without a cache, with the hits
// visible in the report and the stats ledger.
func TestTieredRemoteCacheServesRestores(t *testing.T) {
	cached := newTierRig(5, storage.NewRemoteBackend(), 2048)
	inC := runCycles(t, cached, 3)
	uncached := newTierRig(5, storage.NewRemoteBackend(), 0)
	runCycles(t, uncached, 3)

	if inC.CachedBytes <= 0 || inC.RemoteBytes != 0 {
		t.Fatalf("cached restore: %d cached / %d remote bytes — commit fills should cover the chain",
			inC.CachedBytes, inC.RemoteBytes)
	}
	st := cached.m.Cache.Stats()
	if st.Hits == 0 {
		t.Fatal("no cache hits across three restore cycles")
	}
	cBytes := cached.m.Server.Received + cached.m.Server.Served
	uBytes := uncached.m.Server.Received + uncached.m.Server.Served
	if cBytes >= uBytes {
		t.Fatalf("cached run moved %d server bytes, uncached %d — no savings", cBytes, uBytes)
	}
	cRemote := cached.m.Stats.Get("storage.remote_bytes")
	uRemote := uncached.m.Stats.Get("storage.remote_bytes")
	if cRemote >= uRemote {
		t.Fatalf("cached remote %d >= uncached remote %d", cRemote, uRemote)
	}
	if cached.m.Stats.Get("storage.cache_hit_bytes") <= 0 {
		t.Fatal("cache_hit_bytes never accumulated")
	}
	// The remote tier's batched get path must have been exercised by
	// the uncached run's prefetches (the cached run had no misses to
	// batch).
	if uncached.m.Server.Batches == 0 {
		t.Fatal("no batched transfers recorded")
	}
}

// TestTieredCacheLedgerDeterministic: the same seed and script must
// produce the identical hit/miss/evict ledger — cache behavior is part
// of the deterministic-run contract.
func TestTieredCacheLedgerDeterministic(t *testing.T) {
	a := newTierRig(9, storage.NewRemoteBackend(), 64)
	runCycles(t, a, 4)
	b := newTierRig(9, storage.NewRemoteBackend(), 64)
	runCycles(t, b, 4)
	if a.m.Cache.Stats() != b.m.Cache.Stats() {
		t.Fatalf("same seed, different cache ledgers:\n%+v\n%+v", a.m.Cache.Stats(), b.m.Cache.Stats())
	}
	if a.m.Cache.Stats().Hits+a.m.Cache.Stats().Misses == 0 {
		t.Fatal("cache never consulted")
	}
}

// TestTieredDiskKeepsChainOffLAN: the snapshot-disk tier homes the
// chain next to the node — its disk deltas never cross the control
// LAN, so the tiered run's server traffic is strictly below the legacy
// run's.
func TestTieredDiskKeepsChainOffLAN(t *testing.T) {
	disk := newTierRig(3, storage.NewDiskBackend(0), 0)
	in := runCycles(t, disk, 3)
	legacy := newTierRig(3, nil, 0)
	runCycles(t, legacy, 3)

	if in.RemoteBytes != 0 || in.CachedBytes <= 0 {
		t.Fatalf("disk-tier restore: %d remote / %d local bytes", in.RemoteBytes, in.CachedBytes)
	}
	if disk.m.Stats.Get("storage.remote_bytes") != 0 {
		t.Fatalf("disk tier leaked %d chain bytes onto the LAN", disk.m.Stats.Get("storage.remote_bytes"))
	}
	if disk.m.Stats.Get("storage.local_bytes") <= 0 {
		t.Fatal("no local-tier traffic recorded")
	}
	dBytes := disk.m.Server.Received + disk.m.Server.Served
	lBytes := legacy.m.Server.Received + legacy.m.Server.Served
	if dBytes >= lBytes {
		t.Fatalf("disk tier moved %d server bytes, legacy %d", dBytes, lBytes)
	}
}

// TestTieredDiskSpillsToPool: a snapshot disk too small for the chain
// spills overflow to the pool — the run still restores correctly, and
// the spill is accounted on both the backend and the stats ledger.
func TestTieredDiskSpillsToPool(t *testing.T) {
	be := storage.NewDiskBackend(8 << 20) // chain epochs are 16 MB each
	r := newTierRig(7, be, 0)
	in := runCycles(t, r, 3)

	if be.SpillSegments == 0 {
		t.Fatal("an 8 MB snapshot disk must spill 16 MB epochs")
	}
	if r.m.Stats.Get("storage.spill_bytes") <= 0 {
		t.Fatal("spill_bytes never accumulated")
	}
	if in.RemoteBytes <= 0 {
		t.Fatal("spilled segments must restore from the pool")
	}
	// The restore staged the full replay regardless of where it lived.
	lin := r.m.Lineage("n0")
	if in.DeltaBytes != lin.ReplayBytes() {
		t.Fatalf("staged %d bytes, replay is %d", in.DeltaBytes, lin.ReplayBytes())
	}
}

// TestStandaloneManagerMirrorsPrivateStore: a manager wired without a
// cluster chain store must still mirror its private store onto the
// tier — including prune folds, which re-key the base — so the disk
// tier keeps the whole chain off the LAN and dead segments leave the
// backend.
func TestStandaloneManagerMirrorsPrivateStore(t *testing.T) {
	be := storage.NewDiskBackend(0)
	r := newRig(13)
	r.m.Stats = metrics.NewCounters()
	r.m.Backend = be
	r.m.MaxChainDepth = 2 // force folds: 5 cycles re-key the base repeatedly
	runCycles(t, r, 5)

	cs := r.m.Lineage("n0").Store()
	if be.SegmentCount() != cs.Entries() || be.StoredBytes() != cs.StoredBytes() {
		t.Fatalf("backend (%d segs / %d bytes) drifted from the store (%d / %d)",
			be.SegmentCount(), be.StoredBytes(), cs.Entries(), cs.StoredBytes())
	}
	for _, seg := range r.m.Lineage("n0").Segments() {
		if seg.Bytes > 0 && !be.Has(seg.Addr) {
			t.Fatalf("live segment %v (folded base included) missing from the tier", seg.Addr)
		}
	}
	// With every segment mirrored, restores never touched the pool.
	if got := r.m.Stats.Get("storage.remote_bytes"); got != 0 {
		t.Fatalf("stand-alone disk tier leaked %d chain bytes onto the LAN", got)
	}
}

// TestTieredReplayByteIdentical: the storage tier is a cost model, not
// a content model — the same workload must materialize byte-identical
// chain state through every backend, and that state must match the
// volume's own snapshot (the lineage correctness invariant).
func TestTieredReplayByteIdentical(t *testing.T) {
	materialize := func(be storage.Backend, cacheMB int64) (map[int64]int64, map[int64]int64) {
		r := newTierRig(21, be, cacheMB)
		runCycles(t, r, 4)
		lin := r.m.Lineage("n0")
		return lin.Materialize(), r.vol.Snapshot(nil)
	}
	legacyChain, legacyVol := materialize(nil, 0)
	diskChain, diskVol := materialize(storage.NewDiskBackend(0), 0)
	remoteChain, remoteVol := materialize(storage.NewRemoteBackend(), 256)

	equal := func(name string, got, want map[int64]int64) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d blocks vs %d", name, len(got), len(want))
		}
		for vba, tag := range want {
			if got[vba] != tag {
				t.Fatalf("%s: block %d tag %d vs %d", name, vba, got[vba], tag)
			}
		}
	}
	equal("disk vs legacy chain", diskChain, legacyChain)
	equal("remote vs legacy chain", remoteChain, legacyChain)
	equal("legacy chain vs volume", legacyChain, legacyVol)
	equal("disk chain vs volume", diskChain, diskVol)
	equal("remote chain vs volume", remoteChain, remoteVol)
}
