package node

import (
	"testing"

	"emucheck/internal/sim"
)

func TestDiskSequentialDetection(t *testing.T) {
	s := sim.New(1)
	d := NewDisk(s, DefaultParams())
	d.Submit(&DiskRequest{Op: Write, LBA: 0, Bytes: 4096})
	d.Submit(&DiskRequest{Op: Write, LBA: 4096, Bytes: 4096}) // contiguous
	s.Run()
	if d.SeekOps != 0 {
		t.Fatalf("sequential writes seeked %d times", d.SeekOps)
	}
	d.Submit(&DiskRequest{Op: Write, LBA: 1 << 30, Bytes: 4096})
	s.Run()
	if d.SeekOps != 1 {
		t.Fatalf("distant write seeks = %d", d.SeekOps)
	}
}

func TestDiskShortVsLongSeek(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	d := NewDisk(s, p)
	short := d.ServiceTime(32<<20, 4096) // within 64 MB: track seek
	d.headPos = 0
	long := d.ServiceTime(100<<30, 4096) // far: average seek
	if short >= long {
		t.Fatalf("short seek (%v) not cheaper than long (%v)", short, long)
	}
}

func TestDrainWithSubsequentSubmissions(t *testing.T) {
	s := sim.New(1)
	d := NewDisk(s, DefaultParams())
	var drained sim.Time = -1
	d.Submit(&DiskRequest{Op: Write, LBA: 0, Bytes: 1 << 20})
	d.Drain(func() { drained = s.Now() })
	// A request submitted after Drain keeps the disk busy; drain fires
	// only when the queue is truly empty.
	d.Submit(&DiskRequest{Op: Write, LBA: 1 << 30, Bytes: 1 << 20})
	s.Run()
	if drained < 0 {
		t.Fatal("drain never fired")
	}
	if d.QueueLen() != 0 {
		t.Fatal("queue not empty")
	}
}

func TestCPUProgressWithPartialShares(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	c.Steal(0, 100*sim.Millisecond, 0.25)
	// 100 ms wall at 75% availability = 75 ms of work.
	if got := c.Progress(0, 100*sim.Millisecond); got != 75*sim.Millisecond {
		t.Fatalf("progress = %v", got)
	}
}

func TestCPUStolenTotalAccounting(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	c.Steal(0, 100*sim.Millisecond, 0.5)
	c.Steal(200*sim.Millisecond, 100*sim.Millisecond, 1.0)
	if got := c.StolenTotal; got != 150*sim.Millisecond {
		t.Fatalf("stolen total = %v", got)
	}
}

func TestCPUPendingStealsGC(t *testing.T) {
	s := sim.New(1)
	c := NewCPU(s)
	c.Steal(0, 10*sim.Millisecond, 0.5)
	c.Steal(0, 20*sim.Millisecond, 0.5)
	s.RunFor(15 * sim.Millisecond)
	if got := c.PendingSteals(); got != 1 {
		t.Fatalf("pending = %d", got)
	}
	s.RunFor(10 * sim.Millisecond)
	if got := c.PendingSteals(); got != 0 {
		t.Fatalf("pending = %d", got)
	}
}

func TestDiskOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("op strings")
	}
}
