package emucheck

import (
	"encoding/json"
	"testing"

	"emucheck/internal/health"
	"emucheck/internal/remediate"
	"emucheck/internal/sim"
)

// healthOpts is the fast loop the integration tests run under: half-
// second probes, detection after three, two clean probes to clear.
func healthOpts() HealthOptions {
	return HealthOptions{
		Policy: health.Policy{
			ProbePeriod: 500 * sim.Millisecond, FailThreshold: 3, RecoverThreshold: 2,
		},
		Remediate: remediate.Options{
			Budget: 3, BackoffBase: 500 * sim.Millisecond,
			RecheckPeriod: 30 * sim.Second, CordonProbation: 30 * sim.Second,
		},
	}
}

// TestUnattendedRemediationRecoversCrashedTenant closes the loop the
// scripted fault tests leave open: a crash with NO scripted recover
// event — the health loop must detect it, cordon the suspect
// allocation, and re-admit the tenant from its last committed epoch on
// its own.
func TestUnattendedRemediationRecoversCrashedTenant(t *testing.T) {
	c := NewCluster(4, 31, FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second
	ticks := 0
	sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.EnableHealth(healthOpts()); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableHealth(healthOpts()); err == nil {
		t.Fatal("double EnableHealth accepted")
	}
	c.RunFor(12 * sim.Second)
	if err := sess.StartEpochs(15 * sim.Second); err != nil {
		t.Fatal(err)
	}
	c.RunFor(60 * sim.Second)
	if sess.Exp.Swap.LastCommitAt() == 0 {
		t.Fatal("epoch pipeline never committed")
	}
	preCrash := ticks
	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	// No scripted recovery from here on: the loop is on its own.
	c.RunFor(3 * sim.Minute)

	if got := sess.State(); got != "running" {
		t.Fatalf("state %q after unattended remediation, want running (LastErr %v)", got, sess.LastErr)
	}
	if sess.Recoveries() != 1 || sess.Remediations() < 1 {
		t.Fatalf("recoveries=%d remediations=%d", sess.Recoveries(), sess.Remediations())
	}
	if sess.Detections() != 1 {
		t.Fatalf("detections = %d, want 1", sess.Detections())
	}
	// Detection: three consecutive 500ms probes plus sub-period phase.
	if lat := sess.MaxDetectLatency(); lat <= 0 || lat > 2500*sim.Millisecond {
		t.Fatalf("detect latency %v, want (0, 2.5s]", lat)
	}
	if mttr := sess.MaxMTTR(); mttr <= sess.MaxDetectLatency() || mttr > 2*sim.Minute {
		t.Fatalf("MTTR %v, want (detect latency, 2m]", mttr)
	}
	if ticks <= preCrash {
		t.Fatal("tenant never resumed work after unattended recovery")
	}
	// The episode closed on the healthy verdict: no cordon outlives it,
	// on either side of the ledger.
	if c.Sched.CordonedNodes() != 0 || c.Remediator().CordonedNodes() != 0 {
		t.Fatalf("orphaned cordon: sched=%d controller=%d",
			c.Sched.CordonedNodes(), c.Remediator().CordonedNodes())
	}
	rc := c.Remediator()
	if rc.CordonsIssued != 1 || rc.CordonsReleased != 1 {
		t.Fatalf("cordon ledger: issued=%d released=%d", rc.CordonsIssued, rc.CordonsReleased)
	}
	if !c.Health().Watching("e1") {
		t.Fatal("recovered tenant lost its probe loop")
	}
}

// TestQuarantineAfterBudgetExhausted: with no committed epoch and the
// restart fallback off, every recovery attempt fails; the budget runs
// out and the controller retires the tenant instead of looping forever.
func TestQuarantineAfterBudgetExhausted(t *testing.T) {
	c := NewCluster(4, 32, FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second
	ticks := 0
	sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
	if err != nil {
		t.Fatal(err)
	}
	o := healthOpts()
	o.Remediate.Budget = 2
	o.Remediate.RecheckPeriod = 5 * sim.Second
	if err := c.EnableHealth(o); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	// Crash with no epoch ever committed: Recover refuses, no fallback.
	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(2 * sim.Minute)
	if !sess.Quarantined() {
		t.Fatalf("tenant not quarantined (state %s, attempts %d)", sess.State(), c.Remediator().Attempts("e1"))
	}
	if got := sess.State(); got != "done" {
		t.Fatalf("quarantined tenant is %q, want done (retired)", got)
	}
	if c.Remediator().Quarantines != 1 {
		t.Fatalf("quarantines = %d", c.Remediator().Quarantines)
	}
	if c.Sched.CordonedNodes() != 0 || c.Remediator().CordonedNodes() != 0 {
		t.Fatalf("quarantine leaked a cordon: sched=%d controller=%d",
			c.Sched.CordonedNodes(), c.Remediator().CordonedNodes())
	}
	if c.Health().Watching("e1") {
		t.Fatal("quarantined tenant still probed")
	}
	// The freed pool still admits new work.
	other := 0
	if _, err := c.Submit(tenantScenario("e2", &other), 0); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if got := c.Tenant("e2").State(); got != "running" {
		t.Fatalf("successor tenant is %q, want running", got)
	}
}

// TestFallbackRestartRemediatesEpochlessCrash: same epochless crash,
// but with the restart fallback on the loop revives the tenant from
// scratch instead of quarantining it.
func TestFallbackRestartRemediatesEpochlessCrash(t *testing.T) {
	c := NewCluster(4, 33, FIFO)
	c.Incremental = true
	c.SaveDeadline = 20 * sim.Second
	ticks := 0
	sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
	if err != nil {
		t.Fatal(err)
	}
	o := healthOpts()
	o.Remediate.FallbackRestart = true
	if err := c.EnableHealth(o); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if err := c.Crash("e1"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(3 * sim.Minute)
	if got := sess.State(); got != "running" {
		t.Fatalf("state %q after fallback restart, want running", got)
	}
	if sess.Remediations() < 1 || sess.Quarantined() {
		t.Fatalf("remediations=%d quarantined=%v", sess.Remediations(), sess.Quarantined())
	}
	// A restart is not a stateful recovery: the genealogy stays clean.
	if sess.Recoveries() != 0 {
		t.Fatalf("recoveries = %d after restart fallback", sess.Recoveries())
	}
}

// TestUnattendedLoopDeterministic: two same-seed runs of the whole
// detect-cordon-drain-recover trajectory are byte-identical.
func TestUnattendedLoopDeterministic(t *testing.T) {
	run := func() string {
		c := NewCluster(4, 77, FIFO)
		c.Incremental = true
		c.SaveDeadline = 20 * sim.Second
		ticks := 0
		sess, err := c.Submit(tenantScenario("e1", &ticks), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.EnableHealth(healthOpts()); err != nil {
			t.Fatal(err)
		}
		c.S.At(12*sim.Second, "test.epochs", func() {
			if err := sess.StartEpochs(15 * sim.Second); err != nil {
				t.Error(err)
			}
		})
		c.S.At(90*sim.Second, "test.crash", func() {
			if err := c.Crash("e1"); err != nil {
				t.Error(err)
			}
		})
		c.RunFor(5 * sim.Minute)
		digest := clusterDigest(c, []int{ticks})
		stats, _ := json.Marshal(map[string]any{
			"detections": sess.Detections(), "detectedAt": sess.DetectedAt(),
			"detectLat": sess.MaxDetectLatency(), "mttr": sess.MaxMTTR(),
			"remediations": sess.Remediations(), "probes": c.Health().Probes,
			"fails": c.Health().Fails, "cordons": c.Remediator().CordonsIssued,
			"drains": c.Sched.Drains, "lost": sess.LostWork(),
		})
		return digest + string(stats)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("unattended-loop runs diverged:\n%s\n%s", a, b)
	}
}
