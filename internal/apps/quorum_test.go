package apps

import (
	"testing"

	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func quorumFleet(seed int64, n int) (*sim.Simulator, []QuorumNode) {
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	s, ks := linkedKernels(seed, names, 100*simnet.Mbps)
	nodes := make([]QuorumNode, n)
	for i, k := range ks {
		nodes[i] = QuorumNode{Name: names[i], K: k, Addr: simnet.Addr(names[i])}
	}
	return s, nodes
}

func TestQuorumElectsHighestRank(t *testing.T) {
	s, nodes := quorumFleet(1, 3)
	var outcomes []string
	q := RunQuorum(nodes, QuorumConfig{
		OnOutcome: func(o string) { outcomes = append(outcomes, o) },
	})
	s.RunFor(30 * sim.Second)
	if got := q.Leader(); got != "c" {
		t.Fatalf("leader = %q, want highest rank c", got)
	}
	if q.Elections != 1 {
		t.Fatalf("elections = %d, want 1", q.Elections)
	}
	if len(outcomes) != 1 || outcomes[0] != "leader=c" {
		t.Fatalf("outcomes = %v", outcomes)
	}
}

func TestQuorumReElectsAfterLeaderCrash(t *testing.T) {
	s, nodes := quorumFleet(2, 4)
	var last string
	q := RunQuorum(nodes, QuorumConfig{
		CrashLeaderAt: 20 * sim.Second,
		OnOutcome:     func(o string) { last = o },
	})
	s.RunFor(2 * sim.Minute)
	if q.Crashes != 1 {
		t.Fatalf("crashes = %d, want 1", q.Crashes)
	}
	if got := q.Leader(); got != "c" {
		t.Fatalf("leader after crash = %q, want next-highest c", got)
	}
	if q.Elections < 2 {
		t.Fatalf("elections = %d, want initial election plus a re-election", q.Elections)
	}
	if last != "leader=c" {
		t.Fatalf("terminal outcome = %q, want leader=c", last)
	}
}

func TestQuorumDeterministic(t *testing.T) {
	run := func() (int, string) {
		s, nodes := quorumFleet(7, 5)
		q := RunQuorum(nodes, QuorumConfig{CrashLeaderAt: 25 * sim.Second})
		s.RunFor(3 * sim.Minute)
		return q.Elections, q.Leader()
	}
	e1, l1 := run()
	e2, l2 := run()
	if e1 != e2 || l1 != l2 {
		t.Fatalf("same-seed runs diverged: (%d,%q) vs (%d,%q)", e1, l1, e2, l2)
	}
}
