package evalrun

import "testing"

func TestTimeshareStatefulBeatsStateless(t *testing.T) {
	r := Timeshare(1, 0)
	if r.Stateful.Completed != r.Tenants {
		t.Fatalf("stateful completed %d/%d", r.Stateful.Completed, r.Tenants)
	}
	if r.Stateful.LostTicks != 0 {
		t.Fatalf("stateful lost %d ticks", r.Stateful.LostTicks)
	}
	if r.Stateful.Preemptions == 0 {
		t.Fatal("stateful run never preempted; pool was not oversubscribed")
	}
	if r.Stateless.Completed >= r.Stateful.Completed {
		t.Fatalf("stateless completed %d, stateful %d: baseline should lose",
			r.Stateless.Completed, r.Stateful.Completed)
	}
	if r.Stateless.LostTicks == 0 {
		t.Fatal("stateless restarts lost nothing")
	}
	// Deterministic across runs.
	r2 := Timeshare(1, 0)
	if *r != *r2 {
		t.Fatalf("nondeterministic benchmark:\n%+v\n%+v", r, r2)
	}
}

// TestTimeshareIncrementalBeatsFullCopy is the incremental pipeline's
// acceptance bar: same work, same pool, strictly fewer bytes through
// the file server and an earlier finish than full-copy swapping.
func TestTimeshareIncrementalBeatsFullCopy(t *testing.T) {
	r := Timeshare(1, 0)
	if r.StatefulIncr.Completed != r.Tenants {
		t.Fatalf("incremental completed %d/%d", r.StatefulIncr.Completed, r.Tenants)
	}
	if r.StatefulIncr.LostTicks != 0 {
		t.Fatalf("incremental lost %d ticks", r.StatefulIncr.LostTicks)
	}
	if r.StatefulIncr.MovedMB >= r.Stateful.MovedMB {
		t.Fatalf("incremental moved %.1f MB, full-copy %.1f MB — must be strictly fewer",
			r.StatefulIncr.MovedMB, r.Stateful.MovedMB)
	}
	if r.StatefulIncr.AllDoneS <= 0 || r.Stateful.AllDoneS <= 0 {
		t.Fatalf("a stateful mode missed the horizon: incr %.0f s, full %.0f s",
			r.StatefulIncr.AllDoneS, r.Stateful.AllDoneS)
	}
	if r.StatefulIncr.AllDoneS >= r.Stateful.AllDoneS {
		t.Fatalf("incremental finished at %.0f s, full-copy at %.0f s — must be strictly sooner",
			r.StatefulIncr.AllDoneS, r.Stateful.AllDoneS)
	}
	if r.StatefulIncr.PreemptedMB >= r.Stateful.PreemptedMB {
		t.Fatalf("preemption bill: incremental %.1f MB, full %.1f MB — park cost not proportional to dirtied state",
			r.StatefulIncr.PreemptedMB, r.Stateful.PreemptedMB)
	}
}
