// Package health implements the continuous failure-detection side of
// the autonomous remediation loop (ROADMAP item 2). A Monitor probes
// each watched tenant on a fixed period off the simulation clock and
// feeds consecutive probe outcomes through a hysteresis filter: a
// tenant is flagged unhealthy only after FailThreshold consecutive
// failed probes, and flagged healthy again only after RecoverThreshold
// consecutive successes — so a flapping tenant cannot thrash the
// remediation controller downstream.
//
// The monitor is mechanism-agnostic: what a "probe" actually touches is
// a callback supplied by the hosting layer (the emucheck Cluster probes
// the tenant's per-node hypervisors). Everything is driven by DoAfter
// off the sim clock with seeded phase stagger — zero wall-clock reads,
// so detection instants are byte-identical under the same seed.
package health

import (
	"fmt"

	"emucheck/internal/sim"
)

// ProbeStatus is one probe's outcome.
type ProbeStatus int

// Probe outcomes. Skip means the target was not probeable — parked or
// mid-swap tenants are frozen behind the checkpoint boundary, which is
// not evidence of failure — and leaves both hysteresis streaks as they
// were.
const (
	StatusOK ProbeStatus = iota
	StatusFail
	StatusSkip
)

// ProbeResult is a probe outcome plus the node that failed it (empty
// for tenant-level outcomes), so per-node evidence flows into verdicts.
type ProbeResult struct {
	Status ProbeStatus
	Node   string
}

// Policy is a failure-detection configuration.
type Policy struct {
	// ProbePeriod is the interval between successive probes of one
	// target.
	ProbePeriod sim.Time
	// FailThreshold is how many consecutive failed probes flag a target
	// unhealthy.
	FailThreshold int
	// RecoverThreshold is how many consecutive successful probes clear
	// a flagged target — the hysteresis that keeps flapping tenants
	// from generating verdict storms.
	RecoverThreshold int
}

// Named policy presets, ordered from aggressive to cautious: fast
// detects in two short periods (low latency, flap-sensitive),
// conservative waits out five long ones (high latency, flap-immune).
var presets = map[string]Policy{
	"fast":         {ProbePeriod: 250 * sim.Millisecond, FailThreshold: 2, RecoverThreshold: 2},
	"balanced":     {ProbePeriod: 500 * sim.Millisecond, FailThreshold: 3, RecoverThreshold: 2},
	"conservative": {ProbePeriod: sim.Second, FailThreshold: 5, RecoverThreshold: 3},
}

// ParsePolicy returns the named preset ("fast", "balanced",
// "conservative"; empty means balanced).
func ParsePolicy(name string) (Policy, error) {
	if name == "" {
		name = "balanced"
	}
	p, ok := presets[name]
	if !ok {
		return Policy{}, fmt.Errorf("health: unknown policy %q", name)
	}
	return p, nil
}

// withDefaults fills unset knobs from the balanced preset.
func (p Policy) withDefaults() Policy {
	def := presets["balanced"]
	if p.ProbePeriod <= 0 {
		p.ProbePeriod = def.ProbePeriod
	}
	if p.FailThreshold <= 0 {
		p.FailThreshold = def.FailThreshold
	}
	if p.RecoverThreshold <= 0 {
		p.RecoverThreshold = def.RecoverThreshold
	}
	return p
}

// Verdict is a detector state flip for one target.
type Verdict struct {
	Target  string
	Healthy bool
	// Node is the node whose probe evidence tipped the flip (empty for
	// tenant-level evidence).
	Node string
	At   sim.Time
	// Streak is the consecutive-outcome count that crossed the
	// threshold.
	Streak int
}

// target is the per-tenant detector state.
type target struct {
	name       string
	idx        int
	unhealthy  bool
	failStreak int
	okStreak   int
	stopped    bool

	probes     int
	fails      int
	detections int
}

// Monitor probes watched targets and emits verdicts on state flips.
type Monitor struct {
	S      *sim.Simulator
	Seed   int64
	Policy Policy

	// Probe is the mechanism callback: inspect the target right now and
	// report OK, Fail, or Skip. Required.
	Probe func(name string) ProbeResult
	// OnVerdict fires on every detector state flip (healthy ↔
	// unhealthy). Optional.
	OnVerdict func(v Verdict)

	targets []*target
	byName  map[string]*target

	// Probes and Fails count delivered probe outcomes (Skip excluded);
	// Detections counts unhealthy flips across all targets.
	Probes     int
	Fails      int
	Detections int
}

// axPhase tags the probe-stagger Mix64 draw so adding other draws later
// cannot silently reuse its stream.
const axPhase = 0x9A

// New creates a monitor. Policy zero-values are filled from the
// balanced preset.
func New(s *sim.Simulator, seed int64, policy Policy, probe func(string) ProbeResult) *Monitor {
	return &Monitor{
		S: s, Seed: seed, Policy: policy.withDefaults(),
		Probe:  probe,
		byName: make(map[string]*target),
	}
}

// Watch starts the probe loop for a target. The first probe lands at a
// seeded phase offset within one period so a fleet's probes spread over
// the period instead of striking in lockstep — deterministically: the
// offset is a Mix64 function of (seed, watch index), never an RNG draw.
func (m *Monitor) Watch(name string) error {
	if m.Probe == nil {
		return fmt.Errorf("health: monitor has no probe hook")
	}
	if prev := m.byName[name]; prev != nil && !prev.stopped {
		return fmt.Errorf("health: already watching %q", name)
	}
	t := &target{name: name, idx: len(m.targets)}
	m.targets = append(m.targets, t)
	m.byName[name] = t
	phase := sim.Time(sim.Mix64(m.Seed, int64(t.idx), axPhase) % uint64(m.Policy.ProbePeriod))
	m.S.DoAfter(phase, "health.probe", func() { m.step(t) })
	return nil
}

// Unwatch stops probing a target (quarantine takes it out of the
// loop). Safe to call for unknown names.
func (m *Monitor) Unwatch(name string) {
	if t := m.byName[name]; t != nil {
		t.stopped = true
	}
}

// Watching reports whether the target currently has a live probe loop.
func (m *Monitor) Watching(name string) bool {
	t := m.byName[name]
	return t != nil && !t.stopped
}

// Unhealthy reports the detector's current belief about a target.
func (m *Monitor) Unhealthy(name string) bool {
	t := m.byName[name]
	return t != nil && t.unhealthy
}

// TargetStats reports per-target probe counters (probes delivered,
// failed probes, unhealthy flips).
func (m *Monitor) TargetStats(name string) (probes, fails, detections int) {
	if t := m.byName[name]; t != nil {
		return t.probes, t.fails, t.detections
	}
	return 0, 0, 0
}

// step delivers one probe to t and feeds the hysteresis filter.
func (m *Monitor) step(t *target) {
	if t.stopped {
		return
	}
	r := m.Probe(t.name)
	switch r.Status {
	case StatusSkip:
		// Frozen targets are unreachable by construction, not failed.
	case StatusOK:
		m.Probes++
		t.probes++
		t.failStreak = 0
		if t.unhealthy {
			t.okStreak++
			if t.okStreak >= m.Policy.RecoverThreshold {
				t.unhealthy = false
				t.okStreak = 0
				m.verdict(t, true, r.Node, m.Policy.RecoverThreshold)
			}
		}
	case StatusFail:
		m.Probes++
		m.Fails++
		t.probes++
		t.fails++
		t.okStreak = 0
		t.failStreak++
		if !t.unhealthy && t.failStreak >= m.Policy.FailThreshold {
			t.unhealthy = true
			t.detections++
			m.Detections++
			m.verdict(t, false, r.Node, t.failStreak)
		}
	}
	m.S.DoAfter(m.Policy.ProbePeriod, "health.probe", func() { m.step(t) })
}

func (m *Monitor) verdict(t *target, healthy bool, node string, streak int) {
	if m.OnVerdict == nil {
		return
	}
	m.OnVerdict(Verdict{Target: t.name, Healthy: healthy, Node: node, At: m.S.Now(), Streak: streak})
}
