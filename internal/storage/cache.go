package storage

import (
	"container/list"

	"emucheck/internal/sim"
)

// DeltaCache is the node-local cache fronting the remote chain tier: a
// capacity-bounded LRU of content-addressed segments (base images and
// epoch deltas) kept on local media so hot restores do not re-stream
// over the control LAN.
//
// Eviction is refcount-aware. The cache consults the chain store's
// reference counts through its refs hook:
//
//   - A segment whose address is referenced by more than one live
//     lineage (a branch fan-out's shared prefix) is *pinned*: it is
//     the hottest possible entry — every sibling's restore replays it
//     — so LRU never evicts it while the sharing lasts.
//   - A segment with no remaining references was garbage-collected
//     from every chain; the cache drops it on the next lookup rather
//     than serving or retaining dead content.
//
// Evicting a live entry is always safe for correctness: the cache
// holds copies, the authoritative bytes stay on the backend tier (or
// the shared pool, for spilled segments), so eviction only costs a
// re-stream. Determinism: LRU order is a pure function of the access
// sequence, so same-seed runs produce identical hit/miss/evict
// ledgers.
type DeltaCache struct {
	// Capacity bounds the cached bytes.
	Capacity int64
	// Seek and Rate price a cache read (node-local media, same
	// defaults as the snapshot disk).
	Seek sim.Time
	Rate int64

	refs    func(Addr) int
	entries map[Addr]*list.Element
	lru     *list.List // front = most recently used
	used    int64

	stats CacheStats
}

// cacheEntry is one resident segment.
type cacheEntry struct {
	addr  Addr
	bytes int64
}

// CacheStats is the cache's accounting ledger.
type CacheStats struct {
	// Hits and Misses count lookups; HitBytes and MissBytes their
	// segment sizes.
	Hits, Misses        int64
	HitBytes, MissBytes int64
	// Evictions counts entries LRU-evicted to make room; EvictedBytes
	// their sizes.
	Evictions    int64
	EvictedBytes int64
	// Expired counts entries dropped because their segment was
	// garbage-collected from every chain (refcount zero).
	Expired int64
	// Rejected counts admissions refused because the pinned (shared)
	// entries alone exceed what eviction could free.
	Rejected int64
	// Warmed counts segments pre-seeded through WarmUp ahead of an
	// anticipated restore (cross-facility migration warm-up);
	// WarmedBytes their sizes. Warm-up admissions that are rejected
	// count under Rejected like any other Put.
	Warmed      int64
	WarmedBytes int64
}

// NewDeltaCache creates a cache of the given capacity. refs is the
// chain store's refcount lookup (ChainStore.Refs); nil disables
// pinning and expiry (a plain LRU).
func NewDeltaCache(capacity int64, refs func(Addr) int) *DeltaCache {
	return &DeltaCache{
		Capacity: capacity,
		Seek:     DefaultDiskSeek,
		Rate:     DefaultDiskRate,
		refs:     refs,
		entries:  make(map[Addr]*list.Element),
		lru:      list.New(),
	}
}

// ReadCost prices serving n bytes off the cache's local media.
func (c *DeltaCache) ReadCost(n int64) sim.Time { return xferCost(n, c.Seek, c.Rate) }

// refcount resolves the chain store's view of an address.
func (c *DeltaCache) refcount(a Addr) int {
	if c.refs == nil {
		return 1
	}
	return c.refs(a)
}

// Get looks a segment up, counting the hit or miss. A hit refreshes
// the entry's recency and returns its size. An entry whose segment
// has been garbage-collected from every chain is dropped and counts
// as a miss — the cache never serves dead content.
func (c *DeltaCache) Get(a Addr) (int64, bool) {
	el, ok := c.entries[a]
	if ok && c.refcount(a) == 0 {
		c.remove(el)
		c.stats.Expired++
		ok = false
	}
	if !ok {
		c.stats.Misses++
		return 0, false
	}
	e := el.Value.(*cacheEntry)
	c.lru.MoveToFront(el)
	c.stats.Hits++
	c.stats.HitBytes += e.bytes
	return e.bytes, true
}

// MissBytes charges n bytes to the miss ledger — the caller's record
// of what a miss cost to re-stream.
func (c *DeltaCache) MissBytes(n int64) { c.stats.MissBytes += n }

// Contains reports presence without touching the ledgers or recency.
func (c *DeltaCache) Contains(a Addr) bool {
	_, ok := c.entries[a]
	return ok
}

// Put admits (or refreshes) a segment, evicting least-recently-used
// unpinned entries until it fits. Entries shared by more than one
// live lineage are pinned and skipped; if pinned entries alone leave
// no room, the admission is rejected (counted), never forced.
func (c *DeltaCache) Put(a Addr, n int64) {
	if n <= 0 {
		return
	}
	if el, ok := c.entries[a]; ok {
		e := el.Value.(*cacheEntry)
		c.used += n - e.bytes
		e.bytes = n
		c.lru.MoveToFront(el)
		c.evictFor(0)
		return
	}
	if !c.evictFor(n) {
		c.stats.Rejected++
		return
	}
	el := c.lru.PushFront(&cacheEntry{addr: a, bytes: n})
	c.entries[a] = el
	c.used += n
}

// WarmUp pre-seeds a segment ahead of an anticipated restore — the
// destination side of a cross-facility migration streams the parked
// tenant's chain into the local cache so the eventual restore hits
// instead of re-fetching from the shared pool. It admits through the
// same refcount-aware path as Put (pinned entries are never evicted
// to make room; an infeasible admission is rejected and counted, not
// forced) but books the bytes under the warm-up ledger rather than
// the demand-fetch one, and reports whether the segment is resident.
// A segment already resident is refreshed and still counts as warmed:
// the migration paid to ship it.
func (c *DeltaCache) WarmUp(a Addr, n int64) bool {
	if n <= 0 {
		return false
	}
	before := c.stats.Rejected
	c.Put(a, n)
	if c.stats.Rejected != before {
		return false
	}
	c.stats.Warmed++
	c.stats.WarmedBytes += n
	return true
}

// evictFor frees room for n more bytes, oldest-first, skipping pinned
// (shared) entries. It reports whether the bytes now fit. Feasibility
// is checked first: if evicting every unpinned entry still could not
// make room, the admission is hopeless and nothing is evicted — a
// rejected Put must not destroy the resident working set.
func (c *DeltaCache) evictFor(n int64) bool {
	if c.used+n <= c.Capacity {
		return true
	}
	var evictable int64
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*cacheEntry); c.refcount(e.addr) <= 1 {
			evictable += e.bytes
		}
	}
	if c.used-evictable+n > c.Capacity {
		return false
	}
	for el := c.lru.Back(); el != nil && c.used+n > c.Capacity; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		if c.refcount(e.addr) > 1 {
			// Pinned: a shared chain epoch every sibling branch's
			// restore replays — never evicted while the sharing lasts.
			el = prev
			continue
		}
		c.remove(el)
		c.stats.Evictions++
		c.stats.EvictedBytes += e.bytes
		el = prev
	}
	return c.used+n <= c.Capacity
}

// remove drops an entry from the table and the LRU list.
func (c *DeltaCache) remove(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.addr)
	c.used -= e.bytes
}

// Drop forgets a segment without counting an eviction (GC path).
func (c *DeltaCache) Drop(a Addr) {
	if el, ok := c.entries[a]; ok {
		c.remove(el)
	}
}

// Used reports the cached bytes.
func (c *DeltaCache) Used() int64 { return c.used }

// Len reports the resident entry count.
func (c *DeltaCache) Len() int { return len(c.entries) }

// Stats returns a snapshot of the accounting ledger.
func (c *DeltaCache) Stats() CacheStats { return c.stats }

// HitRatio reports hits / lookups (0 when never consulted).
func (c *DeltaCache) HitRatio() float64 {
	total := c.stats.Hits + c.stats.Misses
	if total == 0 {
		return 0
	}
	return float64(c.stats.Hits) / float64(total)
}
