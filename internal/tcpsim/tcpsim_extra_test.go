package tcpsim

import (
	"testing"

	"emucheck/internal/sim"
)

func TestRTOExponentialBackoff(t *testing.T) {
	s := sim.New(1)
	se := &fakeEnv{s: s, delay: sim.Millisecond, dropSeq: map[int64]bool{}}
	snd := NewSender(se, "c")
	se.peer = func(*Segment) {} // black hole: every packet lost
	snd.Stream(2 * MSS)
	s.RunFor(3 * sim.Second)
	if snd.Timeouts < 3 {
		t.Fatalf("timeouts = %d, want repeated", snd.Timeouts)
	}
	// After k timeouts the RTO has doubled k times from MinRTO.
	want := MinRTO
	for i := 0; i < snd.Timeouts; i++ {
		want *= 2
	}
	if snd.rto != want {
		t.Fatalf("rto = %v after %d timeouts, want %v", snd.rto, snd.Timeouts, want)
	}
	if snd.cwnd != MSS {
		t.Fatalf("cwnd = %d after timeout, want 1 MSS", snd.cwnd)
	}
}

func TestReceiverWindowLimitsSender(t *testing.T) {
	s := sim.New(1)
	snd, rcv, _, _ := pipe(s, sim.Millisecond)
	rcv.wnd = 8 * MSS // tiny advertised window
	snd.Stream(1 << 20)
	s.RunFor(50 * sim.Millisecond)
	if snd.InFlight() > 8*MSS {
		t.Fatalf("inflight %d exceeds advertised window", snd.InFlight())
	}
}

func TestStreamGoalExtension(t *testing.T) {
	// The BitTorrent pattern: the goal grows in pieces; TCP must pick
	// up each extension without stalling.
	s := sim.New(1)
	snd, rcv, _, _ := pipe(s, sim.Millisecond)
	var delivered int64
	rcv.OnData = func(n int, total int64) { delivered = total }
	snd.Stream(64 << 10)
	s.RunFor(sim.Second)
	if delivered != 64<<10 {
		t.Fatalf("first chunk: %d", delivered)
	}
	snd.Stream(128 << 10) // extend
	s.RunFor(sim.Second)
	if delivered != 128<<10 {
		t.Fatalf("after extension: %d", delivered)
	}
}

func TestCongestionAvoidanceAboveSsthresh(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := pipe(s, 5*sim.Millisecond)
	snd.ssthresh = 4 * MSS
	snd.Stream(8 << 20)
	s.RunFor(200 * sim.Millisecond)
	// Additive growth: cwnd should exceed ssthresh but modestly, far
	// below what slow start would have reached (which doubles per RTT:
	// 20 RTTs -> astronomically large).
	if snd.cwnd <= 4*MSS {
		t.Fatalf("cwnd never grew: %d", snd.cwnd)
	}
	if snd.cwnd > 64*MSS {
		t.Fatalf("cwnd = %d: grew like slow start above ssthresh", snd.cwnd)
	}
}

func TestFastRecoveryHalvesWindow(t *testing.T) {
	s := sim.New(1)
	snd, _, se, _ := pipe(s, 5*sim.Millisecond)
	se.dropSeq[int64(30*MSS)] = true
	snd.Stream(1 << 20)
	s.RunFor(10 * sim.Second)
	if snd.FastRecovers == 0 {
		t.Fatal("no fast recovery")
	}
	if !snd.Done() {
		t.Fatalf("stalled at %d", snd.Acked())
	}
}

func TestAckCountsAndNoWindowChanges(t *testing.T) {
	s := sim.New(1)
	snd, rcv, _, _ := pipe(s, sim.Millisecond)
	snd.Stream(256 << 10)
	s.RunFor(5 * sim.Second)
	if rcv.AcksSent != rcv.SegmentsRcvd {
		t.Fatalf("acks %d != segments %d", rcv.AcksSent, rcv.SegmentsRcvd)
	}
	if rcv.WndChanges != 0 {
		t.Fatalf("window changed %d times", rcv.WndChanges)
	}
}

func TestZeroLengthStream(t *testing.T) {
	s := sim.New(1)
	snd, _, se, _ := pipe(s, sim.Millisecond)
	snd.Stream(0)
	s.RunFor(sim.Second)
	if se.sent != 0 {
		t.Fatalf("sent %d segments for an empty stream", se.sent)
	}
	if !snd.Done() {
		t.Fatal("empty stream not done")
	}
}
