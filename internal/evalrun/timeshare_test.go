package evalrun

import "testing"

func TestTimeshareStatefulBeatsStateless(t *testing.T) {
	r := Timeshare(1, 0)
	if r.Stateful.Completed != r.Tenants {
		t.Fatalf("stateful completed %d/%d", r.Stateful.Completed, r.Tenants)
	}
	if r.Stateful.LostTicks != 0 {
		t.Fatalf("stateful lost %d ticks", r.Stateful.LostTicks)
	}
	if r.Stateful.Preemptions == 0 {
		t.Fatal("stateful run never preempted; pool was not oversubscribed")
	}
	if r.Stateless.Completed >= r.Stateful.Completed {
		t.Fatalf("stateless completed %d, stateful %d: baseline should lose",
			r.Stateless.Completed, r.Stateful.Completed)
	}
	if r.Stateless.LostTicks == 0 {
		t.Fatal("stateless restarts lost nothing")
	}
	// Deterministic across runs.
	r2 := Timeshare(1, 0)
	if *r != *r2 {
		t.Fatalf("nondeterministic benchmark:\n%+v\n%+v", r, r2)
	}
}
