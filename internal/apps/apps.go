// Package apps contains the guest workloads the paper's evaluation runs
// (§7): the usleep and CPU-burn microbenchmarks, iperf, BitTorrent, a
// Bonnie++-style disk benchmark, and the large-file-copy workload used
// to measure background-transfer interference. Each app drives a guest
// kernel through its public services and records measurements in guest
// *virtual* time — exactly what an in-experiment observer would see.
package apps

import (
	"emucheck/internal/firewall"
	"emucheck/internal/guest"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
	"emucheck/internal/tcpsim"
)

// SleepLoop is the Fig. 4 microbenchmark: usleep(10 ms) in a loop,
// measuring each iteration with gettimeofday. At HZ=100 an iteration
// measures 20 ms; transparency bounds the checkpoint-induced error.
type SleepLoop struct {
	K     *guest.Kernel
	Sleep sim.Time
	Iters int

	// Times holds per-iteration durations (virtual µs-resolution).
	Times *metrics.Series

	done func()
	prev sim.Time
	n    int
}

// NewSleepLoop builds the benchmark with the paper's 10 ms parameter.
func NewSleepLoop(k *guest.Kernel, iters int) *SleepLoop {
	return &SleepLoop{K: k, Sleep: 10 * sim.Millisecond, Iters: iters, Times: metrics.NewSeries(k.Name + ".sleeploop")}
}

// Run starts the loop; done fires after the last iteration.
func (a *SleepLoop) Run(done func()) {
	a.done = done
	a.prev = a.K.Gettimeofday()
	a.step()
}

func (a *SleepLoop) step() {
	a.K.Usleep(a.Sleep, func() {
		now := a.K.Gettimeofday()
		a.Times.Add(now, float64(now-a.prev))
		a.prev = now
		a.n++
		if a.n < a.Iters {
			a.step()
			return
		}
		if a.done != nil {
			a.done()
		}
	})
}

// CPULoop is the Fig. 5 microbenchmark: a fixed CPU-bound job per
// iteration, measured in virtual time. The paper's job takes 236.6 ms
// unperturbed.
type CPULoop struct {
	K     *guest.Kernel
	Work  sim.Time
	Iters int

	Times *metrics.Series

	done func()
	n    int
}

// NewCPULoop builds the benchmark with the paper's job size.
func NewCPULoop(k *guest.Kernel, iters int) *CPULoop {
	return &CPULoop{K: k, Work: 236600 * sim.Microsecond, Iters: iters, Times: metrics.NewSeries(k.Name + ".cpuloop")}
}

// Run starts the loop.
func (a *CPULoop) Run(done func()) {
	a.done = done
	a.step()
}

func (a *CPULoop) step() {
	start := a.K.Gettimeofday()
	a.K.Compute(a.Work, "cpuloop", func() {
		now := a.K.Gettimeofday()
		a.Times.Add(now, float64(now-start))
		a.n++
		if a.n < a.Iters {
			a.step()
			return
		}
		if a.done != nil {
			a.done()
		}
	})
}

// tcpEnv adapts a guest kernel to tcpsim.Env for one connection.
type tcpEnv struct {
	k    *guest.Kernel
	peer simnet.Addr
	port string
}

func (e *tcpEnv) Now() sim.Time { return e.k.Monotonic() }

func (e *tcpEnv) StartTimer(d sim.Time, name string, fn func()) tcpsim.Timer {
	return e.k.AfterVirtual(d, name, fn)
}

func (e *tcpEnv) StopTimer(t tcpsim.Timer) {
	e.k.CancelTimer(t.(*firewall.Handle))
}

func (e *tcpEnv) Output(seg *tcpsim.Segment) {
	e.k.Send(e.peer, seg.WireSize(), &guest.Message{Port: e.port, Data: seg})
}
