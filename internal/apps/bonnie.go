package apps

import (
	"emucheck/internal/guest"
	"emucheck/internal/sim"
)

// BonnieOp is one of the five Bonnie++ operation classes in Fig. 8.
type BonnieOp int

// Bonnie operation classes.
const (
	BlockReads BonnieOp = iota
	CharReads
	BlockRewrites
	BlockWrites
	CharWrites
)

// BonnieOps lists the classes in the figure's order.
var BonnieOps = []BonnieOp{BlockReads, CharReads, BlockRewrites, BlockWrites, CharWrites}

func (op BonnieOp) String() string {
	switch op {
	case BlockReads:
		return "Block-Reads"
	case CharReads:
		return "Character-Reads"
	case BlockRewrites:
		return "Block-Rewrites"
	case BlockWrites:
		return "Block-Writes"
	default:
		return "Character-Writes"
	}
}

// Bonnie is the Fig. 8 disk benchmark: it streams a file twice the
// guest's memory (512 MB) through each operation class and reports
// MB/s. Block ops use 1 MiB transfers; character ops go through a
// per-character stdio loop, modeled as 64 KiB transfers plus the CPU
// cost of putc/getc over the chunk.
type Bonnie struct {
	K         *guest.Kernel
	FileBytes int64

	// CharCPUPerChunk is the getc/putc loop cost per 64 KiB chunk.
	CharCPUPerChunk sim.Time
}

// NewBonnie creates the benchmark with the paper's 512 MB file.
func NewBonnie(k *guest.Kernel) *Bonnie {
	return &Bonnie{K: k, FileBytes: 512 << 20, CharCPUPerChunk: 700 * sim.Microsecond}
}

const (
	bonnieBlock = 1 << 20
	bonnieChunk = 64 << 10
)

// Run performs one operation class over the whole file and calls done
// with the achieved throughput in MB/s (measured in guest virtual
// time, like the real benchmark).
func (b *Bonnie) Run(op BonnieOp, done func(mbps float64)) {
	start := b.K.Monotonic()
	finish := func() {
		elapsed := (b.K.Monotonic() - start).Seconds()
		done(float64(b.FileBytes) / (1 << 20) / elapsed)
	}
	switch op {
	case BlockWrites:
		b.sweep(0, bonnieBlock, 0, false, true, finish)
	case BlockReads:
		b.sweep(0, bonnieBlock, 0, true, false, finish)
	case BlockRewrites:
		// Bonnie rewrites: read a block, then write it back.
		b.sweep(0, bonnieBlock, 0, true, true, finish)
	case CharWrites:
		b.sweep(0, bonnieChunk, b.CharCPUPerChunk, false, true, finish)
	case CharReads:
		b.sweep(0, bonnieChunk, b.CharCPUPerChunk, true, false, finish)
	}
}

// sweep walks the file in `unit` steps; each step optionally reads,
// computes, and writes before moving on.
func (b *Bonnie) sweep(off, unit int64, cpu sim.Time, rd, wr bool, done func()) {
	if off >= b.FileBytes {
		done()
		return
	}
	step := func() { b.sweep(off+unit, unit, cpu, rd, wr, done) }
	write := func() {
		if wr {
			b.K.WriteDisk(off, unit, step)
		} else {
			step()
		}
	}
	compute := func() {
		if cpu > 0 {
			b.K.Compute(cpu, "bonnie.char", write)
		} else {
			write()
		}
	}
	if rd {
		b.K.ReadDisk(off, unit, compute)
	} else {
		compute()
	}
}
