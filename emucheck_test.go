package emucheck

import (
	"testing"

	"emucheck/internal/apps"
	"emucheck/internal/emulab"
	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func demoScenario() Scenario {
	return Scenario{
		Spec: emulab.Spec{
			Name: "demo",
			Nodes: []emulab.NodeSpec{
				{Name: "a", Swappable: true},
				{Name: "b", Swappable: true},
			},
			Links: []emulab.LinkSpec{{
				A: "a", B: "b",
				Bandwidth: 100 * simnet.Mbps,
				Delay:     5 * sim.Millisecond,
			}},
		},
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := NewSession(demoScenario(), 42)
	s.RunFor(sim.Second)
	if s.Now() != sim.Second {
		t.Fatalf("now = %v", s.Now())
	}
	if v := s.VirtualNow("a"); v != sim.Second {
		t.Fatalf("virtual = %v", v)
	}
	res, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Images) != 2 {
		t.Fatalf("images = %d", len(res.Images))
	}
	if s.Tree.Len() != 2 {
		t.Fatalf("tree len = %d", s.Tree.Len())
	}
}

func TestCheckpointTransparencyEndToEnd(t *testing.T) {
	var loop *apps.SleepLoop
	sc := demoScenario()
	sc.Setup = func(s *Session) {
		loop = apps.NewSleepLoop(s.Kernel("a"), 400)
		loop.Run(nil)
	}
	s := NewSession(sc, 7)
	s.PeriodicCheckpoints(2*sim.Second, 3)
	s.RunFor(40 * sim.Second)
	if loop.Times.Len() != 400 {
		t.Fatalf("iterations = %d", loop.Times.Len())
	}
	// Worst observed iteration across 3 checkpoints stays within the
	// paper's transparency bound (~80 µs over the nominal 20 ms, plus
	// distributed skew headroom).
	worst := loop.Times.Max()
	if worst > 21*float64(sim.Millisecond) {
		t.Fatalf("worst iteration %.3f ms: checkpoint leaked", worst/float64(sim.Millisecond))
	}
}

func TestSwapCycleThroughPublicAPI(t *testing.T) {
	s := NewSession(demoScenario(), 9)
	s.RunFor(2 * sim.Second)
	v0 := s.VirtualNow("a")
	out, err := s.SwapOut()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Duration() <= 0 {
		t.Fatalf("out reports: %+v", out)
	}
	s.RunFor(30 * sim.Minute) // parked
	in, err := s.SwapIn(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 2 {
		t.Fatal("in reports")
	}
	s.RunFor(sim.Second)
	elapsed := s.VirtualNow("a") - v0
	if elapsed > 5*sim.Second {
		t.Fatalf("swap interval leaked into virtual time: %v", elapsed)
	}
}

func TestRollbackDeterministicReplay(t *testing.T) {
	// A workload whose observable history we can compare: ping-pong
	// counter sampled at checkpoints.
	type probe struct{ count int }
	mk := func(p *probe) Scenario {
		sc := demoScenario()
		sc.Setup = func(s *Session) {
			ka, kb := s.Kernel("a"), s.Kernel("b")
			kb.Handle("ping", func(from simnet.Addr, m *guest.Message) {
				kb.Send("a", 200, &guest.Message{Port: "pong"})
			})
			var send func()
			ka.Handle("pong", func(simnet.Addr, *guest.Message) { p.count++; send() })
			send = func() { ka.Send("b", 200, &guest.Message{Port: "ping"}) }
			send()
		}
		return sc
	}
	var p1 probe
	s1 := NewSession(mk(&p1), 11)
	s1.RunFor(3 * sim.Second)
	res, err := s1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	countAtCkpt := p1.count
	s1.RunFor(2 * sim.Second)

	// Deterministic rollback to the checkpoint reproduces the count.
	var p2 probe
	s2 := NewSession(mk(&p2), 11) // fresh probe bound via scenario
	_ = s2
	// Use the tree-driven API: rollback from s1 re-executes the same
	// scenario; rebind the probe through a fresh scenario instance.
	s1.Scenario = mk(&p2)
	replay, err := s1.Rollback(s1.Tree.Head(), Perturbation{Kind: Deterministic})
	if err != nil {
		t.Fatal(err)
	}
	diff := p2.count - countAtCkpt
	if diff < -2 || diff > 2 {
		t.Fatalf("replay diverged: %d vs %d at checkpoint", p2.count, countAtCkpt)
	}
	// Continuing the replay grows the same branch deterministically.
	replay.RunFor(2 * sim.Second)
	if p2.count <= countAtCkpt {
		t.Fatal("replay did not continue")
	}
}

func TestRollbackBranchingTree(t *testing.T) {
	s := NewSession(demoScenario(), 13)
	s.RunFor(sim.Second)
	n1, err := s.Checkpoint()
	if err != nil || n1 == nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Second)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	head := s.Tree.Head()
	first := head - 1
	replay, err := s.Rollback(first, Perturbation{Kind: SeedChange, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Seed != 999 {
		t.Fatalf("seed = %d", replay.Seed)
	}
	replay.RunFor(sim.Second)
	if _, err := replay.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The first checkpoint now has two children: the original chain and
	// the new branch.
	node, _ := s.Tree.Get(first)
	if len(node.Children) != 2 {
		t.Fatalf("children = %d (no branch)", len(node.Children))
	}
}

func TestRollbackUnknownNode(t *testing.T) {
	s := NewSession(demoScenario(), 1)
	if _, err := s.Rollback(77, Perturbation{}); err == nil {
		t.Fatal("ghost rollback succeeded")
	}
}

func TestKernelPanicsOnGhostNode(t *testing.T) {
	s := NewSession(demoScenario(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.Kernel("ghost")
}

func TestPublicEventDrivenCheckpoint(t *testing.T) {
	s := NewSession(demoScenario(), 17)
	s.RunFor(60 * sim.Second) // NTP converged
	res, err := s.CheckpointOpts(CheckpointOptions{Mode: 1 /* EventDriven */, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode.String() != "event-driven" {
		t.Fatalf("mode = %v", res.Mode)
	}
	// Event-driven skew is jitter-bound: visible but bounded.
	if res.SuspendSkew > 3*sim.Millisecond {
		t.Fatalf("skew %v", res.SuspendSkew)
	}
}

func TestRunUntilIdleDrains(t *testing.T) {
	s := NewSession(demoScenario(), 18)
	fired := false
	s.Kernel("a").Usleep(50*sim.Millisecond, func() { fired = true })
	s.RunUntilIdle()
	if !fired {
		t.Fatal("pending work not drained")
	}
}

func TestPeriodicCheckpointsRecordTree(t *testing.T) {
	s := NewSession(demoScenario(), 19)
	s.PeriodicCheckpoints(sim.Second, 3)
	s.RunFor(30 * sim.Second)
	if s.Tree.Len() != 4 { // root + 3
		t.Fatalf("tree len = %d", s.Tree.Len())
	}
	// The recorded virtual times are strictly increasing.
	var prev sim.Time = -1
	for id := TreeNodeID(1); id <= 3; id++ {
		n, ok := s.Tree.Get(id)
		if !ok {
			t.Fatalf("missing node %d", id)
		}
		if n.VirtualTime <= prev {
			t.Fatalf("non-increasing capture times")
		}
		prev = n.VirtualTime
	}
}
