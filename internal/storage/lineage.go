package storage

import "fmt"

// Epoch is one committed incremental checkpoint: the set of blocks
// dirtied since the parent epoch (content-tagged so reconstruction can
// be verified byte-identical) plus the dirty memory pages saved with it.
type Epoch struct {
	// ID orders epochs within a lineage; the parent is the previous
	// epoch in the chain (or the merged base).
	ID int
	// Blocks maps dirtied virtual block addresses to their content tag.
	Blocks map[int64]int64
	// MemPages is the count of dirty memory pages captured in this epoch.
	MemPages int
}

// DiskBytes reports the epoch's disk-delta size.
func (e *Epoch) DiskBytes() int64 { return int64(len(e.Blocks)) * BlockSize }

// Lineage is the server-side checkpoint chain of one swappable node: a
// merged base plus an ordered chain of incremental epochs, all held by
// reference in a ChainStore. A swap-out commits the epoch's dirty
// delta; a swap-in reconstructs the node's state by replaying base +
// chain in order (later epochs win). Chains deeper than MaxDepth are
// merged from the oldest end into the base — an offline server-side
// step, like the paper's §5.3 delta merge — so replay cost stays
// bounded no matter how many swap cycles accumulate.
//
// Branching: Fork creates a sibling lineage sharing this one's base and
// chain by reference (no byte copies). Both sides may keep committing;
// divergence is branch-private, and mutations of shared epochs go
// copy-on-write inside the store. Release drops a branch's references
// so the store can garbage-collect deltas no branch can reach.
type Lineage struct {
	// MaxDepth bounds the replay chain length; Commit folds the oldest
	// epochs into the base past it. Zero means DefaultMaxDepth.
	MaxDepth int

	store    *ChainStore
	base     *Epoch
	baseAddr Addr
	chain    []*Epoch
	addrs    []Addr // content addresses, parallel to chain
	nextID   int
	released bool

	// MergedBytes accumulates disk bytes folded into the base by
	// pruning, the offline server-side work the merge rate pays for.
	MergedBytes int64
}

// DefaultMaxDepth is the chain bound used when MaxDepth is zero: deep
// enough to keep per-cycle commits cheap, shallow enough that replaying
// base + chain stays close to the merged-image size.
const DefaultMaxDepth = 4

// NewLineage creates an empty lineage over a private store with the
// given chain bound (0 = DefaultMaxDepth). Lineages that should share
// branches' storage are created via ChainStore.NewLineage instead.
func NewLineage(maxDepth int) *Lineage {
	return NewChainStore().NewLineage(maxDepth)
}

// Store returns the backing chain store.
func (l *Lineage) Store() *ChainStore { return l.store }

// Commit appends one incremental checkpoint — the blocks dirtied since
// the previous commit and the dirty memory pages saved alongside — and
// prunes the chain back under MaxDepth. It returns the committed epoch
// (the store's canonical copy if the content already existed).
func (l *Lineage) Commit(blocks map[int64]int64, memPages int) *Epoch {
	cp := make(map[int64]int64, len(blocks))
	for vba, tag := range blocks {
		cp[vba] = tag
	}
	e := &Epoch{ID: l.nextID, Blocks: cp, MemPages: memPages}
	l.nextID++
	e, a := l.store.retain(e)
	l.chain = append(l.chain, e)
	l.addrs = append(l.addrs, a)
	l.prune()
	return e
}

// prune folds the oldest chain epochs into the base until the chain is
// back under MaxDepth. Overlapping blocks deduplicate (the newer epoch
// wins), which is what keeps replay bytes bounded. The base is taken
// exclusive first (copy-on-write if a sibling branch shares it), so
// pruning one branch never changes what a sibling replays.
func (l *Lineage) prune() {
	for len(l.chain) > l.MaxDepth {
		oldest, oldestAddr := l.chain[0], l.addrs[0]
		l.chain, l.addrs = l.chain[1:], l.addrs[1:]
		base := l.store.exclusive(l.baseAddr)
		for vba, tag := range oldest.Blocks {
			base.Blocks[vba] = tag
		}
		base.MemPages += oldest.MemPages
		base.ID = oldest.ID
		l.MergedBytes += oldest.DiskBytes()
		// The fold subsumed the epoch's content into this branch's base;
		// siblings may still reference the entry, so this is a re-key,
		// not a reclaim.
		l.store.release(oldestAddr, false)
		l.base, l.baseAddr = l.store.retain(base)
	}
}

// Fork creates a branch of this lineage: the base and every chain epoch
// are shared by reference (refcounted in the store, no byte copies).
// Subsequent commits on either side are private to that side.
func (l *Lineage) Fork() *Lineage {
	nl := &Lineage{
		MaxDepth: l.MaxDepth, store: l.store,
		base: l.base, baseAddr: l.baseAddr,
		nextID: l.nextID,
		chain:  append([]*Epoch(nil), l.chain...),
		addrs:  append([]Addr(nil), l.addrs...),
	}
	l.store.retainAddr(l.baseAddr)
	for _, a := range l.addrs {
		l.store.retainAddr(a)
	}
	return nl
}

// Release prunes the branch: every reference this lineage holds is
// dropped, and epochs unreachable from any other branch are
// garbage-collected (counted in the store's GCBytes). The lineage must
// not be used afterwards.
func (l *Lineage) Release() {
	if l.released {
		return
	}
	l.released = true
	l.store.release(l.baseAddr, true)
	for _, a := range l.addrs {
		l.store.release(a, true)
	}
	l.base = &Epoch{Blocks: make(map[int64]int64)}
	l.chain, l.addrs = nil, nil
}

// Released reports whether the branch has been pruned.
func (l *Lineage) Released() bool { return l.released }

// Depth reports the current chain length (excluding the base).
func (l *Lineage) Depth() int { return len(l.chain) }

// Epochs reports how many epochs were ever committed.
func (l *Lineage) Epochs() int { return l.nextID - 1 }

// ReplayBytes reports the disk bytes a swap-in must move to reconstruct
// the node's state: the merged base plus every chain epoch, in order.
// Deduplication only happens at prune time, so blocks rewritten across
// un-pruned epochs are counted (and moved) once per epoch — the price
// of keeping commits cheap, bounded by MaxDepth.
func (l *Lineage) ReplayBytes() int64 {
	n := l.base.DiskBytes()
	for _, e := range l.chain {
		n += e.DiskBytes()
	}
	return n
}

// Segment is one content-addressed unit of a lineage's replay chain:
// the base or one chain epoch, with its transfer size.
type Segment struct {
	Addr  Addr
	Bytes int64
}

// Segments lists the replay chain in restore order (base first). A
// clone-aware restore transfers only the segments whose address is not
// already resident on the target node.
func (l *Lineage) Segments() []Segment {
	out := make([]Segment, 0, 1+len(l.chain))
	out = append(out, Segment{Addr: l.baseAddr, Bytes: l.base.DiskBytes()})
	for i, e := range l.chain {
		out = append(out, Segment{Addr: l.addrs[i], Bytes: e.DiskBytes()})
	}
	return out
}

// MissingBytes reports the replay bytes not covered by the resident
// set — what a clone-aware restore actually has to move.
func (l *Lineage) MissingBytes(resident map[Addr]bool) int64 {
	var n int64
	for _, seg := range l.Segments() {
		if !resident[seg.Addr] {
			n += seg.Bytes
		}
	}
	return n
}

// SharedBytes reports the replay bytes this lineage shares with at
// least one other branch (store refcount > 1).
func (l *Lineage) SharedBytes() int64 {
	var n int64
	for _, seg := range l.Segments() {
		if l.store.Refs(seg.Addr) > 1 {
			n += seg.Bytes
		}
	}
	return n
}

// Materialize replays base + chain in commit order and returns the
// reconstructed content view. Against Volume.Snapshot this is the
// byte-identity check: a block is correct iff its content tag matches.
func (l *Lineage) Materialize() map[int64]int64 {
	out := make(map[int64]int64, len(l.base.Blocks))
	for vba, tag := range l.base.Blocks {
		out[vba] = tag
	}
	for _, e := range l.chain {
		for vba, tag := range e.Blocks {
			out[vba] = tag
		}
	}
	return out
}

// Drop removes blocks from every epoch (base and chain) — free-block
// elimination applied retroactively to the server-side history, so a
// replay does not resurrect blocks the filesystem has freed. Shared
// epochs are unshared copy-on-write first; a sibling branch's replay
// view never changes.
func (l *Lineage) Drop(isFree func(vba int64) bool) {
	if isFree == nil {
		return
	}
	touches := func(e *Epoch) bool {
		for vba := range e.Blocks {
			if isFree(vba) {
				return true
			}
		}
		return false
	}
	drop := func(e *Epoch) {
		for vba := range e.Blocks {
			if isFree(vba) {
				delete(e.Blocks, vba)
			}
		}
	}
	if touches(l.base) {
		base := l.store.exclusive(l.baseAddr)
		drop(base)
		l.base, l.baseAddr = l.store.retain(base)
	}
	for i := range l.chain {
		if !touches(l.chain[i]) {
			continue
		}
		e := l.store.exclusive(l.addrs[i])
		drop(e)
		l.chain[i], l.addrs[i] = l.store.retain(e)
	}
}

// String summarizes the lineage for diagnostics.
func (l *Lineage) String() string {
	return fmt.Sprintf("lineage[base=%dMB chain=%d replay=%dMB shared=%dMB]",
		l.base.DiskBytes()>>20, len(l.chain), l.ReplayBytes()>>20, l.SharedBytes()>>20)
}
