package emucheck

import (
	"fmt"
	"testing"

	"emucheck/internal/emulab"
	"emucheck/internal/sim"
)

// churnScenario builds a 2-node all-swappable experiment whose workload
// dirties disk on the first node every second — branches forked from it
// accumulate private divergence the chain store must keep separate.
func churnScenario(name string) Scenario {
	a, b := name+"a", name+"b"
	return Scenario{
		Spec: emulab.Spec{
			Name:  name,
			Nodes: []emulab.NodeSpec{{Name: a, Swappable: true}, {Name: b, Swappable: true}},
			Links: []emulab.LinkSpec{{A: a, B: b}},
		},
		Setup: func(s *Session) {
			self := s.Scenario.Spec.Name
			k := s.Kernel(a) // logical name: resolves through the branch alias
			var off int64
			var step func()
			step = func() {
				k.WriteDisk(1<<30+off, 256<<10, func() {
					off += 256 << 10
					s.C.Touch(self)
					k.Usleep(sim.Second, step)
				})
			}
			step()
		},
	}
}

// branchFanOut submits a parent, checkpoints it, and forks fan branches.
func branchFanOut(t *testing.T, c *Cluster, fan int) (*Session, []*Session) {
	t.Helper()
	parent, err := c.Submit(churnScenario("p"), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if err := parent.CheckpointAsync(CheckpointOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	ckpt := parent.Tree.Head()
	specs := make([]BranchSpec, fan)
	for i := range specs {
		specs[i] = BranchSpec{Perturb: Perturbation{Kind: SeedChange, Seed: int64(100 + i)}}
	}
	branches, err := c.Branch("p", ckpt, specs...)
	if err != nil {
		t.Fatal(err)
	}
	return parent, branches
}

// TestClusterBranchFanOut: a 4-way fork gang-admits, tracks genealogy,
// and shares the checkpoint prefix by reference — one multicast stages
// the batch, and the store holds the prefix once.
func TestClusterBranchFanOut(t *testing.T) {
	c := NewCluster(12, 7, FIFO)
	c.Incremental = true
	parent, branches := branchFanOut(t, c, 4)
	c.RunFor(2 * sim.Minute)

	for _, b := range branches {
		if b.State() != "running" {
			t.Fatalf("branch %s is %s, want running", b.Scenario.Spec.Name, b.State())
		}
		if !b.IsBranch() || b.Parent() != "p" {
			t.Fatalf("branch %s genealogy broken: parent %q", b.Scenario.Spec.Name, b.Parent())
		}
		g := c.Genealogy(b.Scenario.Spec.Name)
		if len(g) != 2 || g[0] != "p" {
			t.Fatalf("genealogy %v, want [p <branch>]", g)
		}
	}
	if got := len(parent.Children()); got != 4 {
		t.Fatalf("parent has %d children, want 4", got)
	}
	if c.Sched.GangAdmissions != 1 {
		t.Fatalf("GangAdmissions = %d, want 1 (batch co-scheduled)", c.Sched.GangAdmissions)
	}
	if c.TB.Server.MulticastSavedBytes <= 0 {
		t.Fatal("fan-out staged without multicast savings")
	}

	// The shared prefix lives once in the store: the sum of per-branch
	// replay bytes dwarfs the unique stored bytes. (The idle node's
	// chain is legitimately empty; sharing shows on the churn node.)
	var replaySum, sharedSum int64
	for _, b := range branches {
		for _, lin := range b.Exp.Swap.Lineages() {
			replaySum += lin.ReplayBytes()
			sharedSum += lin.SharedBytes()
		}
	}
	if sharedSum <= 0 {
		t.Fatal("branch lineages share nothing with their siblings")
	}
	if stored := c.Chains.StoredBytes(); stored >= replaySum {
		t.Fatalf("store holds %d bytes for %d bytes of branch replays — prefix not shared", stored, replaySum)
	}

	// Branch workloads actually run (the alias resolves the parent's
	// logical node names).
	for _, b := range branches {
		if b.VirtualNow(b.Scenario.Spec.Name+".pa") <= 0 {
			t.Fatalf("branch %s guests never ran", b.Scenario.Spec.Name)
		}
	}
}

// TestBranchReleaseGCsPrivateDeltas: finishing a branch drops its chain
// references; its private divergence is reclaimed while the shared
// prefix survives for the siblings.
func TestBranchReleaseGCsPrivateDeltas(t *testing.T) {
	c := NewCluster(12, 11, FIFO)
	c.Incremental = true
	_, branches := branchFanOut(t, c, 2)
	c.RunFor(2 * sim.Minute)

	// Park the first branch so it commits a private epoch to its fork.
	victim := branches[0].Scenario.Spec.Name
	if err := c.Park(victim); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * sim.Minute)
	if branches[0].State() != "parked" {
		t.Fatalf("branch is %s, want parked", branches[0].State())
	}
	if err := c.Finish(victim); err != nil {
		t.Fatal(err)
	}
	if c.Chains.GCBytes <= 0 {
		t.Fatal("finishing a diverged branch reclaimed nothing")
	}

	// The survivor still replays: its shared prefix was refcounted, not
	// deleted with the sibling.
	var survivorReplay int64
	for _, lin := range branches[1].Exp.Swap.Lineages() {
		survivorReplay += lin.ReplayBytes()
		if lin.Released() {
			t.Fatal("survivor lineage released by sibling finish")
		}
	}
	if survivorReplay <= 0 {
		t.Fatal("survivor lineages emptied by sibling GC")
	}
}

// TestBranchNaiveCopyMovesMore: the per-branch full-copy baseline moves
// strictly more control-LAN bytes than the shared-lineage fan-out for
// the same 4-way fork.
func TestBranchNaiveCopyMovesMore(t *testing.T) {
	run := func(naive bool) uint64 {
		c := NewCluster(12, 7, FIFO)
		c.Incremental = true
		c.NaiveBranchCopy = naive
		branchFanOut(t, c, 4)
		c.RunFor(5 * sim.Minute)
		return c.TB.Server.Received + c.TB.Server.Served
	}
	shared := run(false)
	naive := run(true)
	if shared >= naive {
		t.Fatalf("shared fan-out moved %d bytes, naive %d — sharing saved nothing", shared, naive)
	}
}

// TestClusterBranchDeterministic: two clusters replaying the same
// fan-out at the same seed must agree byte for byte — event count,
// server traffic, chain-store content, and every tenant's observable
// history. This guards the concurrent branch machinery (gang
// admission, multicast rendezvous, refcounted store) against
// map-iteration or ordering nondeterminism.
func TestClusterBranchDeterministic(t *testing.T) {
	run := func() string {
		c := NewCluster(12, 7, FIFO)
		c.Incremental = true
		parent, branches := branchFanOut(t, c, 4)
		c.RunFor(3 * sim.Minute)
		d := fmt.Sprintf("now=%v fired=%d rx=%d tx=%d mcast=%d stored=%d entries=%d gc=%d dedup=%d",
			c.Now(), c.S.Fired(), c.TB.Server.Received, c.TB.Server.Served,
			c.TB.Server.MulticastSavedBytes, c.Chains.StoredBytes(), c.Chains.Entries(),
			c.Chains.GCBytes, c.Chains.DedupBytes)
		for _, s := range append([]*Session{parent}, branches...) {
			d += fmt.Sprintf(" [%s state=%s adm=%d pre=%d wait=%v children=%v]",
				s.Scenario.Spec.Name, s.State(), s.Admissions(), s.Preemptions(), s.QueueWait(), s.Children())
		}
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
}

// TestBranchRejectionLeavesStateUntouched: a fan-out the pool can never
// hold is refused before anything mutates — no branch-point epoch on
// the parent's chains, no forked references pinning the store, no
// phantom bytes on the server's ledgers.
func TestBranchRejectionLeavesStateUntouched(t *testing.T) {
	c := NewCluster(6, 13, FIFO) // gang of 4 × 2 nodes needs 8 > 6
	c.Incremental = true
	parent, err := c.Submit(churnScenario("p"), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if err := parent.CheckpointAsync(CheckpointOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)

	entries, stored := c.Chains.Entries(), c.Chains.StoredBytes()
	rx, tx := c.TB.Server.Received, c.TB.Server.Served

	specs := make([]BranchSpec, 4)
	if _, err := c.Branch("p", parent.Tree.Head(), specs...); err == nil {
		t.Fatal("oversized fan-out accepted")
	}
	if c.Chains.Entries() != entries || c.Chains.StoredBytes() != stored {
		t.Fatalf("rejected fan-out mutated the store: %d/%d entries, %d/%d bytes",
			entries, c.Chains.Entries(), stored, c.Chains.StoredBytes())
	}
	if c.Chains.GCBytes != 0 {
		t.Fatalf("rejected fan-out left %d GC'd bytes", c.Chains.GCBytes)
	}
	if c.TB.Server.Received != rx || c.TB.Server.Served != tx {
		t.Fatal("rejected fan-out charged server transfers")
	}
	if len(parent.Children()) != 0 {
		t.Fatal("rejected fan-out recorded children")
	}
}

// TestBranchValidation: branching rejects unknown parents, missing
// checkpoints, and duplicate branch names.
func TestBranchValidation(t *testing.T) {
	c := NewCluster(12, 3, FIFO)
	if _, err := c.Branch("ghost", 0); err == nil {
		t.Fatal("branched from an unknown parent")
	}
	parent, err := c.Submit(churnScenario("p"), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if _, err := c.Branch("p", 99, BranchSpec{}); err == nil {
		t.Fatal("branched from a checkpoint that was never recorded")
	}
	if err := parent.CheckpointAsync(CheckpointOptions{}, nil); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if _, err := c.Branch("p", parent.Tree.Head(), BranchSpec{Name: "p"}); err == nil {
		t.Fatal("branch name colliding with a live tenant accepted")
	}
}
