package sched

import (
	"testing"

	"emucheck/internal/sim"
)

// TestQueuedJobExitSettlesWait pins the shared dequeue path: failing
// or finishing a job that is still waiting for admission must remove
// it from the queue and settle its accumulated wait exactly once —
// Fail and Finish used to carry separate copy-pasted splice loops
// here, and a drifted copy would double-count (or lose) the wait.
func TestQueuedJobExitSettlesWait(t *testing.T) {
	for _, exit := range []struct {
		name string
		do   func(d *Scheduler, name string) error
		want State
	}{
		{"fail", func(d *Scheduler, n string) error { return d.Fail(n) }, Crashed},
		{"finish", func(d *Scheduler, n string) error { return d.Finish(n) }, Done},
	} {
		t.Run(exit.name, func(t *testing.T) {
			s := sim.New(1)
			d := New(s, 2, FIFO)
			d.MinResidency = 100 * sim.Second // no preemptions in this test
			hog := fakeJob(s, "hog", 2, 0, 0, sim.Second, sim.Second)
			waiter := fakeJob(s, "waiter", 2, 0, 0, sim.Second, sim.Second)
			behind := fakeJob(s, "behind", 2, 0, 0, sim.Second, sim.Second)
			for _, j := range []*Job{hog, waiter, behind} {
				if err := d.Submit(j); err != nil {
					t.Fatal(err)
				}
			}
			if waiter.State() != Queued || behind.State() != Queued {
				t.Fatalf("queue setup wrong: waiter=%v behind=%v", waiter.State(), behind.State())
			}
			s.RunFor(7 * sim.Second)
			if err := exit.do(d, "waiter"); err != nil {
				t.Fatal(err)
			}
			if waiter.State() != exit.want {
				t.Fatalf("waiter = %v, want %v", waiter.State(), exit.want)
			}
			if got := waiter.QueueWait(); got != 7*sim.Second {
				t.Fatalf("settled wait = %v, want 7s", got)
			}
			// The wait must be settled, not still accruing.
			s.RunFor(5 * sim.Second)
			if got := waiter.QueueWait(); got != 7*sim.Second {
				t.Fatalf("wait kept accruing after %s: %v", exit.name, got)
			}
			// And the queue links must be gone: behind must still be
			// admissible once capacity frees up.
			if err := d.Finish("hog"); err != nil {
				t.Fatal(err)
			}
			s.RunFor(sim.Second)
			if behind.State() != Running {
				t.Fatalf("job behind the removed one never admitted: %v", behind.State())
			}
		})
	}
}
