package fsmodel

import (
	"testing"

	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
)

func newFS(seed int64) (*sim.Simulator, *FS, *Plugin, *storage.Volume) {
	s := sim.New(seed)
	d := node.NewDisk(s, node.DefaultParams())
	v := storage.NewVolume(d, 6<<30, storage.Optimized)
	v.Age()
	size := int64(2 << 30)
	p := NewPlugin(size / FSBlockSize)
	return s, New(v, size, p), p, v
}

func TestCreateAllocatesAndWrites(t *testing.T) {
	s, fs, p, v := newFS(1)
	done := false
	if err := fs.Create("a", 1<<20, func() { done = true }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !done {
		t.Fatal("create never completed")
	}
	if fs.UsedBlocks() != SystemBlocks+256 {
		t.Fatalf("used = %d", fs.UsedBlocks())
	}
	if v.Cur.Slots() == 0 {
		t.Fatal("no COW blocks written")
	}
	if p.IsCOWBlockFree(fs.FileBlocks("a")[0] * FSBlockSize / storage.BlockSize) {
		t.Fatal("plugin thinks allocated block is free")
	}
}

func TestDuplicateCreateFails(t *testing.T) {
	_, fs, _, _ := newFS(1)
	if err := fs.Create("a", 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("a", 4096, nil); err == nil {
		t.Fatal("duplicate create succeeded")
	}
}

func TestDeleteFreesForPlugin(t *testing.T) {
	s, fs, p, _ := newFS(1)
	fs.Create("a", 1<<20, nil)
	s.Run()
	blk := fs.FileBlocks("a")[0]
	if p.FreeFSBlock(blk) {
		t.Fatal("block free while allocated")
	}
	if err := fs.Delete("a", nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !p.FreeFSBlock(blk) {
		t.Fatal("plugin missed the free")
	}
	if fs.Exists("a") {
		t.Fatal("file still exists")
	}
	if err := fs.Delete("a", nil); err == nil {
		t.Fatal("double delete succeeded")
	}
}

func TestNoSpace(t *testing.T) {
	_, fs, _, _ := newFS(1)
	if err := fs.Create("big", 3<<30, nil); err == nil {
		t.Fatal("over-allocation succeeded")
	}
}

func TestCOWBlockFreeNeedsWholeBlockFree(t *testing.T) {
	p := NewPlugin(32)
	// COW block 0 covers FS blocks 0..15 (64K/4K).
	p.ObserveBitmapWrite(3, false)
	if p.IsCOWBlockFree(0) {
		t.Fatal("partially used COW block reported free")
	}
	p.ObserveBitmapWrite(3, true)
	if !p.IsCOWBlockFree(0) {
		t.Fatal("fully freed COW block reported used")
	}
	// Out-of-range COW blocks count as free.
	if !p.IsCOWBlockFree(1000) {
		t.Fatal("out-of-range")
	}
	p.ObserveBitmapWrite(-1, false) // ignored
	p.ObserveBitmapWrite(1<<40, false)
}

func TestMakeMakeCleanShrinksDelta(t *testing.T) {
	// The paper's §5.1 experiment: a kernel build writes ~490 MB of
	// object files; make clean deletes them. Without free-block
	// elimination the delta stays ~490 MB; with it, only journal and
	// bitmap residue survives (36 MB in the paper).
	s, fs, p, v := newFS(2)
	const files = 490
	for i := 0; i < files; i++ {
		name := "obj" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		if err := fs.Create(name, 1<<20, nil); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
	for i := 0; i < files; i++ {
		name := "obj" + string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('0'+i/260))
		if err := fs.Delete(name, nil); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	raw := v.CurrentDeltaBytes(nil)
	live := v.CurrentDeltaBytes(p.IsCOWBlockFree)
	if raw < 480<<20 {
		t.Fatalf("raw delta only %d MB", raw>>20)
	}
	if live >= raw/8 {
		t.Fatalf("free-block elimination weak: %d MB -> %d MB", raw>>20, live>>20)
	}
}
