package evalrun

import (
	"fmt"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
)

// TimeshareRow is one scheduling mode's outcome.
type TimeshareRow struct {
	Mode        string  `json:"mode"`
	Completed   int     `json:"completed"`
	UsefulTicks int64   `json:"useful_ticks"`
	LostTicks   int64   `json:"lost_ticks"`
	Utilization float64 `json:"utilization"`
	MeanWaitS   float64 `json:"mean_queue_wait_s"`
	Preemptions int     `json:"preemptions"`
	// AllDoneS is when the last tenant finished (0 = never within the
	// horizon).
	AllDoneS float64 `json:"all_done_s"`
}

// TimeshareResult is the multi-tenancy benchmark: an oversubscribed
// pool (three 2-node tenants over 4 nodes, each owing a fixed amount of
// work) scheduled with stateful preemptive swapping versus the classic
// stateless swap-out that loses run-time state (§2, §5). Stateful
// tenants accumulate progress across preemptions and all finish;
// stateless tenants restart from scratch at every re-admission — under
// sustained contention, work shorter than one service window is the
// only work that ever completes.
type TimeshareResult struct {
	Pool        int     `json:"pool"`
	Tenants     int     `json:"tenants"`
	NodesEach   int     `json:"nodes_each"`
	TargetTicks int64   `json:"target_ticks"`
	HorizonS    float64 `json:"horizon_s"`

	Stateful  TimeshareRow `json:"stateful"`
	Stateless TimeshareRow `json:"stateless"`
}

// timeshareMode runs one scheduling mode to completion or the horizon.
func timeshareMode(seed int64, stateless bool, target int64, horizon sim.Time) TimeshareRow {
	const pool, tenants = 4, 3
	c := emucheck.NewCluster(pool, seed, emucheck.FIFO)
	c.Stateless = stateless
	c.Sched.MinResidency = 45 * sim.Second

	names := []string{"t1", "t2", "t3"}
	counts := make([]int64, tenants) // progress of the current admission
	lost := make([]int64, tenants)   // ticks discarded by stateless restarts
	done := make([]bool, tenants)
	for i, name := range names {
		i, name := i, name
		a, b := name+"a", name+"b"
		sc := emucheck.Scenario{
			Spec: emulab.Spec{
				Name:  name,
				Nodes: []emulab.NodeSpec{{Name: a, Swappable: true}, {Name: b, Swappable: true}},
				Links: []emulab.LinkSpec{{A: a, B: b}},
			},
			Setup: func(s *emucheck.Session) {
				// A stateless re-admission reboots from the golden image:
				// whatever the previous incarnation computed is gone.
				lost[i] += counts[i]
				counts[i] = 0
				k := s.Kernel(a)
				var step func()
				step = func() {
					k.Usleep(100*sim.Millisecond, func() {
						counts[i]++
						c.Touch(name)
						if counts[i] >= target {
							if err := c.Finish(name); err == nil {
								done[i] = true
								return
							}
						}
						step()
					})
				}
				step()
			},
		}
		if _, err := c.Submit(sc, 0); err != nil {
			panic("timeshare: " + err.Error())
		}
	}

	var allDoneAt sim.Time
	for c.Now() < horizon {
		c.RunFor(5 * sim.Second)
		if c.Sched.AllDone() {
			allDoneAt = c.Now()
			break
		}
	}

	mode := "stateful"
	if stateless {
		mode = "stateless"
	}
	row := TimeshareRow{
		Mode:        mode,
		Utilization: c.Utilization(),
		MeanWaitS:   c.Sched.MeanQueueWait().Seconds(),
		Preemptions: c.Sched.Preemptions,
		AllDoneS:    allDoneAt.Seconds(),
	}
	for i := range names {
		if done[i] {
			row.Completed++
			row.UsefulTicks += target
		}
		row.LostTicks += lost[i]
	}
	return row
}

// Timeshare runs the benchmark; target is each tenant's owed work in
// 100 ms ticks (the default 900 means 90 s of computation — twice the
// service window, so stateless restarts can never bank it).
func Timeshare(seed int64, target int64) *TimeshareResult {
	if target <= 0 {
		target = 900
	}
	horizon := 30 * sim.Minute
	return &TimeshareResult{
		Pool: 4, Tenants: 3, NodesEach: 2,
		TargetTicks: target,
		HorizonS:    horizon.Seconds(),
		Stateful:    timeshareMode(seed, false, target, horizon),
		Stateless:   timeshareMode(seed, true, target, horizon),
	}
}

// Render prints the comparison.
func (r *TimeshareResult) Render() string {
	t := &metrics.Table{Header: []string{"mode", "completed", "useful ticks", "lost ticks", "util %", "mean wait (s)", "preemptions", "all done (s)"}}
	for _, row := range []TimeshareRow{r.Stateful, r.Stateless} {
		doneAt := "never"
		if row.AllDoneS > 0 {
			doneAt = fmt.Sprintf("%.0f", row.AllDoneS)
		}
		t.AddRow(row.Mode, fmt.Sprintf("%d/%d", row.Completed, r.Tenants), row.UsefulTicks, row.LostTicks,
			fmt.Sprintf("%.0f", row.Utilization*100), fmt.Sprintf("%.1f", row.MeanWaitS), row.Preemptions, doneAt)
	}
	s := fmt.Sprintf("%d tenants x %d nodes over a %d-node pool; each owes %d ticks (%.0f s of work)\n",
		r.Tenants, r.NodesEach, r.Pool, r.TargetTicks, float64(r.TargetTicks)/10)
	return s + t.String()
}
