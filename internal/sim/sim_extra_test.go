package sim

import "testing"

func TestEventMetadata(t *testing.T) {
	s := New(1)
	e := s.At(5, "named", func() {})
	if e.Name() != "named" || e.When() != 5 {
		t.Fatalf("metadata: %q @ %v", e.Name(), e.When())
	}
}

func TestFiredCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(Time(i), "e", func() {})
	}
	e := s.After(100, "cancelled", func() {})
	s.Cancel(e)
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("fired = %d", s.Fired())
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestRescheduleEarlier(t *testing.T) {
	s := New(1)
	var order []string
	a := s.At(100, "a", func() { order = append(order, "a") })
	s.At(50, "b", func() { order = append(order, "b") })
	s.Reschedule(a, 10)
	s.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order: %v", order)
	}
}

func TestSchedulingFromWithinEvents(t *testing.T) {
	// Deeply chained scheduling: each event schedules the next; the
	// chain must execute fully and in order.
	s := New(1)
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 1000 {
			s.After(1, "chain", chain)
		}
	}
	s.After(0, "start", chain)
	s.Run()
	if depth != 1000 {
		t.Fatalf("depth = %d", depth)
	}
	if s.Now() != 999 {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestRunUntilExactBoundary(t *testing.T) {
	s := New(1)
	hit := false
	s.At(10, "edge", func() { hit = true })
	s.RunUntil(10)
	if !hit {
		t.Fatal("event exactly at the boundary not delivered")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := New(1)
	if s.Step() {
		t.Fatal("step on empty queue")
	}
}

func TestCancelledEventsSkippedInStep(t *testing.T) {
	s := New(1)
	a := s.At(1, "a", func() {})
	fired := false
	s.At(2, "b", func() { fired = true })
	s.Cancel(a)
	if !s.Step() {
		t.Fatal("step found nothing")
	}
	if !fired {
		t.Fatal("step delivered the cancelled event instead")
	}
}
