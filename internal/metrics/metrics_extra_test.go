package metrics

import (
	"testing"

	"emucheck/internal/sim"
)

func TestThroughputRebasesAtFirstSample(t *testing.T) {
	// Traces that start late (e.g. a phase extracted with Between) must
	// not be diluted by empty leading windows.
	ev := NewSeries("late")
	ev.Add(100*sim.Second, 1<<20)
	ev.Add(100*sim.Second+500*sim.Millisecond, 1<<20)
	th := Throughput(ev, sim.Second)
	if th.Len() != 1 {
		t.Fatalf("windows = %d", th.Len())
	}
	if th.Samples[0].V != 2 {
		t.Fatalf("throughput = %v MB/s", th.Samples[0].V)
	}
	if th.Samples[0].T != 100*sim.Second {
		t.Fatalf("window anchored at %v", th.Samples[0].T)
	}
}

func TestThroughputWindowAlignment(t *testing.T) {
	// The first window is floored to a window multiple, so bucket
	// boundaries are stable regardless of the first packet's phase.
	ev := NewSeries("x")
	ev.Add(1500*sim.Millisecond, 1<<20)
	ev.Add(2500*sim.Millisecond, 1<<20)
	th := Throughput(ev, sim.Second)
	if th.Samples[0].T != sim.Second {
		t.Fatalf("first window at %v", th.Samples[0].T)
	}
	if th.Len() != 2 {
		t.Fatalf("windows = %d", th.Len())
	}
}

func TestSeriesBetweenHalfOpen(t *testing.T) {
	s := NewSeries("x")
	s.Add(10, 1)
	s.Add(20, 2)
	sub := s.Between(10, 20)
	if sub.Len() != 1 || sub.Samples[0].V != 1 {
		t.Fatalf("between: %+v", sub.Samples)
	}
}

func TestTableEmptyRows(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	if out := tb.String(); out == "" {
		t.Fatal("empty table renders nothing")
	}
}
