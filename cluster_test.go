package emucheck

import (
	"fmt"
	"testing"

	"emucheck/internal/emulab"
	"emucheck/internal/sim"
)

// tenantScenario builds a 2-node all-swappable experiment whose
// workload ticks every 100 ms on its first node, reporting activity to
// the scheduler and counting into ticks.
func tenantScenario(name string, ticks *int) Scenario {
	a, b := name+"a", name+"b"
	return Scenario{
		Spec: emulab.Spec{
			Name:  name,
			Nodes: []emulab.NodeSpec{{Name: a, Swappable: true}, {Name: b, Swappable: true}},
			Links: []emulab.LinkSpec{{A: a, B: b}},
		},
		Setup: func(s *Session) {
			k := s.Kernel(a)
			var step func()
			step = func() {
				k.Usleep(100*sim.Millisecond, func() {
					*ticks++
					s.C.Touch(name)
					step()
				})
			}
			step()
		},
	}
}

// clusterDigest captures everything observable about a run; two runs at
// the same seed must produce identical digests.
func clusterDigest(c *Cluster, ticks []int) string {
	d := fmt.Sprintf("now=%v fired=%d rx=%d tx=%d queued=%v",
		c.Now(), c.S.Fired(), c.TB.Server.Received, c.TB.Server.Served, c.TB.Server.Queued)
	for i, t := range c.Tenants() {
		d += fmt.Sprintf(" [%s state=%s ticks=%d adm=%d pre=%d wait=%v]",
			t.Scenario.Spec.Name, t.State(), ticks[i], t.Admissions(), t.Preemptions(), t.QueueWait())
	}
	return d
}

// runTimeshare drives three 2-node experiments (6 nodes demanded) over
// a 4-node pool for 10 simulated minutes.
func runTimeshare(t *testing.T, seed int64) (*Cluster, []int, string) {
	t.Helper()
	c := NewCluster(4, seed, FIFO)
	ticks := make([]int, 3)
	for i, name := range []string{"e1", "e2", "e3"} {
		i := i
		if _, err := c.Submit(tenantScenario(name, &ticks[i]), 0); err != nil {
			t.Fatal(err)
		}
	}
	c.RunFor(10 * sim.Minute)
	return c, ticks, clusterDigest(c, ticks)
}

func TestClusterTimeSharesOversubscribedPool(t *testing.T) {
	c, ticks, _ := runTimeshare(t, 42)

	e3 := c.Tenant("e3")
	if e3.QueueWait() <= 0 {
		t.Fatal("e3 admitted without queueing despite a full pool")
	}
	if e3.Admissions() == 0 {
		t.Fatal("e3 never admitted")
	}
	if c.Sched.Preemptions == 0 {
		t.Fatal("nobody was preempted; the pool cannot have been time-shared")
	}
	for i, tn := range c.Tenants() {
		if tn.Admissions() == 0 {
			t.Fatalf("%s never admitted", tn.Scenario.Spec.Name)
		}
		if ticks[i] < 100 {
			t.Fatalf("%s made little progress: %d ticks", tn.Scenario.Spec.Name, ticks[i])
		}
	}
	// The pool stayed busy: three 2-node tenants rotating over 4 nodes.
	if u := c.Utilization(); u < 0.5 {
		t.Fatalf("utilization = %.2f", u)
	}
	// Stateful swap charged real bytes through the shared control LAN
	// (memory images download at every swap-in), attributed per tenant.
	if c.TB.Server.Served == 0 {
		t.Fatal("no swap traffic on the file server")
	}
	if len(c.TB.Server.ByTag) == 0 {
		t.Fatal("file server traffic not attributed to experiments")
	}
	// Transparency across preemptions: a preempted tenant's guests never
	// observed the parked interval — virtual time lags real time by at
	// least the time spent off-hardware.
	for _, tn := range c.Tenants() {
		if tn.Exp == nil || tn.State() != "running" || tn.Preemptions() == 0 {
			continue
		}
		name := tn.Scenario.Spec.Nodes[0].Name
		if v := tn.VirtualNow(name); v >= c.Now() {
			t.Fatalf("%s virtual %v >= real %v: parked time leaked into the guest", tn.Scenario.Spec.Name, v, c.Now())
		}
	}
}

func TestClusterBitIdenticalAcrossRuns(t *testing.T) {
	_, _, d1 := runTimeshare(t, 7)
	_, _, d2 := runTimeshare(t, 7)
	if d1 != d2 {
		t.Fatalf("same seed diverged:\n%s\n%s", d1, d2)
	}
	_, _, d3 := runTimeshare(t, 8)
	if d3 == d1 {
		t.Fatal("different seeds produced identical histories (suspicious)")
	}
}

func TestClusterRejectsCollisions(t *testing.T) {
	c := NewCluster(8, 1, FIFO)
	var n int
	if _, err := c.Submit(tenantScenario("dup", &n), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(tenantScenario("dup", &n), 0); err == nil {
		t.Fatal("duplicate experiment name accepted")
	}
	// Distinct experiment, colliding node names.
	sc := tenantScenario("other", &n)
	sc.Spec.Nodes[0].Name = "dupa"
	if _, err := c.Submit(sc, 0); err == nil {
		t.Fatal("node-name collision accepted")
	}
	// Over-pool demand is rejected by the scheduler.
	big := Scenario{Spec: emulab.Spec{Name: "big"}}
	for i := 0; i < 9; i++ {
		big.Spec.Nodes = append(big.Spec.Nodes, emulab.NodeSpec{Name: fmt.Sprintf("big%d", i), Swappable: true})
	}
	if _, err := c.Submit(big, 0); err == nil {
		t.Fatal("over-pool experiment accepted")
	}
}

func TestClusterPriorityPreemptsLowerTenant(t *testing.T) {
	c := NewCluster(2, 3, Priority)
	c.Sched.MinResidency = 5 * sim.Second
	var lo, hi int
	if _, err := c.Submit(tenantScenario("lo", &lo), 1); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if _, err := c.Submit(tenantScenario("hi", &hi), 9); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * sim.Minute)
	if c.Tenant("lo").Preemptions() == 0 {
		t.Fatal("low-priority tenant kept the pool")
	}
	if c.Tenant("hi").Admissions() == 0 {
		t.Fatal("high-priority tenant never admitted")
	}
}

func TestClusterParkConcealsInterval(t *testing.T) {
	c := NewCluster(4, 5, FIFO)
	var n int
	sess, err := c.Submit(tenantScenario("solo", &n), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	v0 := sess.VirtualNow("soloa")
	if err := c.Park("solo"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Minute) // parked on the shelf
	if sess.State() != "parked" {
		t.Fatalf("state = %s", sess.State())
	}
	if c.TB.InUse() != 0 {
		t.Fatalf("parked tenant still holds %d nodes", c.TB.InUse())
	}
	if err := c.Unpark("solo"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(time5)
	if sess.State() != "running" {
		t.Fatalf("state = %s", sess.State())
	}
	// The guest's virtual clock advanced only for the ~5 minutes of
	// post-resume service; the half hour on the shelf is concealed.
	elapsed := sess.VirtualNow("soloa") - v0
	if elapsed > 6*sim.Minute {
		t.Fatalf("parked half hour leaked into virtual time: %v", elapsed)
	}
	if elapsed < sim.Minute {
		t.Fatalf("tenant barely ran after unpark: %v", elapsed)
	}
}

const time5 = 5 * sim.Minute

func TestClusterUnswappableTenantCannotPark(t *testing.T) {
	c := NewCluster(4, 11, FIFO)
	var n int
	sc := tenantScenario("fixed", &n)
	sc.Spec.Nodes[1].Swappable = false // mixed spec: stateful swap unsafe
	sess, err := c.Submit(sc, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if sess.State() != "running" {
		t.Fatalf("state = %s", sess.State())
	}
	if err := c.Park("fixed"); err == nil {
		t.Fatal("parked a tenant whose state cannot follow it")
	}
	// And the scheduler never picks it as a preemption victim.
	var other int
	if _, err := c.Submit(tenantScenario("other", &other), 0); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * sim.Minute)
	if sess.Preemptions() != 0 {
		t.Fatal("unswappable tenant was preempted")
	}
}

func TestPreemptionQueuesBehindInflightCheckpoint(t *testing.T) {
	// Tenants checkpoint aggressively while the scheduler rotates them:
	// a swap-out landing mid-checkpoint must wait, not crash.
	c := NewCluster(4, 21, FIFO)
	ticks := make([]int, 3)
	for i, name := range []string{"c1", "c2", "c3"} {
		i := i
		sc := tenantScenario(name, &ticks[i])
		inner := sc.Setup
		sc.Setup = func(s *Session) {
			inner(s)
			var ckpt func()
			ckpt = func() {
				s.CheckpointAsync(CheckpointOptions{Incremental: true}, nil)
				s.S.After(1300*sim.Millisecond, "test.ckpt", ckpt)
			}
			ckpt()
		}
		if _, err := c.Submit(sc, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.RunFor(5 * sim.Minute) // would panic without the swap-out wait
	if c.Sched.Preemptions == 0 {
		t.Fatal("no preemption pressure; test proves nothing")
	}
}

func TestFinishAllowsResubmission(t *testing.T) {
	c := NewCluster(4, 22, FIFO)
	var n1, n2 int
	if _, err := c.Submit(tenantScenario("re", &n1), 0); err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if err := c.Finish("re"); err != nil {
		t.Fatal(err)
	}
	// Same name and same node names are free again.
	sess, err := c.Submit(tenantScenario("re", &n2), 0)
	if err != nil {
		t.Fatalf("resubmission after finish: %v", err)
	}
	c.RunFor(30 * sim.Second)
	if sess.State() != "running" || n2 == 0 {
		t.Fatalf("state=%s ticks=%d", sess.State(), n2)
	}
}

func TestParkedTenantSyncCheckpointErrors(t *testing.T) {
	c := NewCluster(4, 23, FIFO)
	var n int
	sess, err := c.Submit(tenantScenario("pk", &n), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if err := c.Park("pk"); err != nil {
		t.Fatal(err)
	}
	c.RunFor(5 * sim.Minute)
	if sess.State() != "parked" {
		t.Fatalf("state = %s", sess.State())
	}
	before := c.Now()
	if _, err := sess.Checkpoint(); err == nil {
		t.Fatal("synchronously checkpointed a parked tenant")
	}
	if c.Now() != before {
		t.Fatalf("rejected checkpoint still advanced the shared simulator by %v", c.Now()-before)
	}
}

func TestFinishStandaloneSessionBalancesLedger(t *testing.T) {
	sc := Scenario{Spec: emulab.Spec{Name: "solo", Nodes: []emulab.NodeSpec{
		{Name: "sa", Swappable: true}, {Name: "sb", Swappable: true}}}}
	s := NewSession(sc, 33) // 4-node pool, 2 held outside the scheduler
	s.RunFor(sim.Second)
	if err := s.C.Finish("solo"); err != nil {
		t.Fatal(err)
	}
	if s.State() != "done" {
		t.Fatalf("state = %s", s.State())
	}
	if err := s.C.Finish("solo"); err == nil {
		t.Fatal("double finish accepted")
	}
	if free := s.C.Sched.Free(); free != 4 {
		t.Fatalf("scheduler free = %d, want 4 after finish", free)
	}
	// The freed capacity and names are genuinely reusable.
	big := Scenario{Spec: emulab.Spec{Name: "big", Nodes: []emulab.NodeSpec{
		{Name: "sa", Swappable: true}, {Name: "bb", Swappable: true}, {Name: "bc", Swappable: true}}}}
	tenant, err := s.C.Submit(big, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Minute)
	if tenant.State() != "running" {
		t.Fatalf("tenant = %s", tenant.State())
	}
}

func TestSubmitOnSessionClusterRespectsCapacity(t *testing.T) {
	// A NewSession experiment occupies testbed hardware outside the
	// scheduler; the scheduler's ledger must reflect that, or Submit
	// over-admits and the testbed swap-in panics.
	sc := Scenario{Spec: emulab.Spec{Name: "solo", Nodes: []emulab.NodeSpec{
		{Name: "sa", Swappable: true}, {Name: "sb", Swappable: true}}}}
	s := NewSession(sc, 31) // default pool: 2 nodes + 2 headroom
	if free := s.C.Sched.Free(); free != 2 {
		t.Fatalf("scheduler free = %d, want 2 (session holds 2 of 4)", free)
	}
	big := Scenario{Spec: emulab.Spec{Name: "big", Nodes: []emulab.NodeSpec{
		{Name: "ba", Swappable: true}, {Name: "bb", Swappable: true}, {Name: "bc", Swappable: true}}}}
	tenant, err := s.C.Submit(big, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Minute) // would panic in startTenant before the ledger fix
	if tenant.State() != "queued" {
		t.Fatalf("state = %s, want queued (session is not preemptible)", tenant.State())
	}
}

func TestQueuedTenantCheckpointErrors(t *testing.T) {
	c := NewCluster(2, 12, FIFO)
	c.Sched.MinResidency = sim.Hour
	var n1, n2 int
	if _, err := c.Submit(tenantScenario("one", &n1), 0); err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(tenantScenario("two", &n2), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(30 * sim.Second)
	if queued.State() != "queued" {
		t.Fatalf("state = %s", queued.State())
	}
	if _, err := queued.Checkpoint(); err == nil {
		t.Fatal("checkpointed a queued tenant")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PeriodicCheckpoints on a queued tenant should panic with a clear message")
		}
	}()
	queued.PeriodicCheckpoints(sim.Second, 1)
}
