// Package fault implements the testbed's seeded fault-injection plan:
// a declarative schedule of node crashes, control-LAN message loss and
// delay, and slow-disk / slow-save perturbations, armed against a
// running cluster. Everything an injection does flows through the
// simulator and the plan's own seeded random source, so a faulty run
// is exactly as deterministic as a clean one — two runs of the same
// plan under the same seed are byte-identical, which is what makes
// failure scenarios assertable and regressions bisectable (syslog
// studies of production clusters say partial failure is the steady
// state; here it is a replayable input).
//
// The plan is mechanism-agnostic: it knows *when* and *what kind*, and
// the hosting layer (the emucheck Cluster) supplies Hooks that know
// *how* — crash this tenant, throttle that spindle. Control-LAN
// perturbations install directly on the notify.Bus via its Inject
// point and are visible afterwards in the bus's per-topic drop stats.
package fault

import (
	"fmt"
	"math/rand"

	"emucheck/internal/notify"
	"emucheck/internal/sim"
)

// Kind enumerates injectable faults.
type Kind string

// Fault kinds.
const (
	// Crash fail-stops a tenant's nodes at At (or at its next save, with
	// DuringSave — the "node dies mid-epoch" scenario).
	Crash Kind = "crash"
	// Drop suppresses control-LAN deliveries scoped to the target:
	// the next Count matching deliveries inside the window are lost.
	Drop Kind = "drop"
	// Delay adds latency to matching control-LAN deliveries inside the
	// window (Extra, or seeded jitter up to 20 ms when Extra is zero).
	Delay Kind = "delay"
	// SlowDisk diverts spindle bandwidth on one node for the window —
	// the degraded-disk straggler.
	SlowDisk Kind = "slow_disk"
	// SlowSave degrades one node's checkpoint copy engine for the
	// window, stretching its save past its peers' (and, with a save
	// deadline armed, past the barrier).
	SlowSave Kind = "slow_save"
)

// Injection is one planned fault.
type Injection struct {
	Kind Kind
	// At is when the injection arms.
	At sim.Time
	// Target is the experiment (notification scope) the fault hits.
	Target string
	// Node names the affected node where the kind needs one (slow_disk,
	// slow_save, and drop/delay when targeting one daemon's deliveries).
	Node string
	// DuringSave delays a crash until the target's epoch FSM reaches
	// the saving phase (armed from At onward).
	DuringSave bool
	// Topic filters drop/delay to one bus topic (default "checkpoint",
	// so a lost notification strands a straggler rather than wedging a
	// resume).
	Topic string
	// Count bounds drop faults: deliveries suppressed (default 1).
	Count int
	// Extra is the added delivery latency for delay faults (0: seeded
	// jitter up to 20 ms per delivery).
	Extra sim.Time
	// Factor divides the perturbed rate for slow faults (default 4).
	Factor float64
	// Window bounds drop/delay/slow injections (default 30 s from At).
	Window sim.Time
	// Seed perturbs this injection's own jittered choices (delay
	// faults); zero derives one from the plan seed and the injection's
	// position, so reordering the plan only reorders — never couples —
	// the streams.
	Seed int64

	remaining int        // drop budget left
	rng       *rand.Rand // per-injection jitter source
}

func (inj *Injection) defaults() {
	if inj.Topic == "" {
		inj.Topic = notify.TopicCheckpoint
	}
	if inj.Count <= 0 {
		inj.Count = 1
	}
	inj.remaining = inj.Count
	if inj.Factor <= 1 {
		inj.Factor = 4
	}
	if inj.Window <= 0 {
		inj.Window = 30 * sim.Second
	}
}

// Hooks connect a plan to the hosting testbed's mechanisms. Each hook
// may reject an injection (target not in service, unknown node); the
// plan records the rejection in Errors and carries on — a fault plan
// never takes the run down.
type Hooks struct {
	// Crash fail-stops a tenant (node names the member that died).
	Crash func(target, node string) error
	// WhenSaving runs fn the next time the target's epoch FSM enters
	// its saving phase.
	WhenSaving func(target string, fn func())
	// SlowDisk degrades one node's spindle by factor for d.
	SlowDisk func(target, node string, factor float64, d sim.Time) error
	// SlowSave degrades one node's checkpoint copy engine by factor
	// for d.
	SlowSave func(target, node string, factor float64, d sim.Time) error
}

// Plan is a seeded, deterministic fault schedule.
type Plan struct {
	Seed       int64
	Injections []Injection

	// Counters, for results and assertions.
	Crashes int
	Dropped int
	Delayed int
	Slowed  int
	// Errors records injections the hosting layer rejected.
	Errors []string

	s *sim.Simulator
}

// Arm schedules every injection on the simulator and installs the
// control-LAN perturbations on the bus. Call once, before the run.
func (p *Plan) Arm(s *sim.Simulator, bus *notify.Bus, h Hooks) {
	p.s = s
	base := p.Seed
	if base == 0 {
		base = 1
	}
	needBus := false
	for i := range p.Injections {
		inj := &p.Injections[i]
		inj.defaults()
		seed := inj.Seed
		if seed == 0 {
			seed = base + int64(i) + 1
		}
		inj.rng = rand.New(rand.NewSource(seed))
		switch inj.Kind {
		case Crash:
			fire := func() {
				if err := h.Crash(inj.Target, inj.Node); err != nil {
					p.fail(inj, err)
					return
				}
				p.Crashes++
			}
			if inj.DuringSave {
				s.At(inj.At, "fault.crash-arm", func() { h.WhenSaving(inj.Target, fire) })
			} else {
				s.At(inj.At, "fault.crash", fire)
			}
		case Drop, Delay:
			// Window-based: consulted per delivery via the bus hook.
			needBus = true
		case SlowDisk:
			s.At(inj.At, "fault.slow-disk", func() {
				if err := h.SlowDisk(inj.Target, inj.Node, inj.Factor, inj.Window); err != nil {
					p.fail(inj, err)
					return
				}
				p.Slowed++
			})
		case SlowSave:
			s.At(inj.At, "fault.slow-save", func() {
				if err := h.SlowSave(inj.Target, inj.Node, inj.Factor, inj.Window); err != nil {
					p.fail(inj, err)
					return
				}
				p.Slowed++
			})
		default:
			p.Errors = append(p.Errors, fmt.Sprintf("unknown fault kind %q", inj.Kind))
		}
	}
	if needBus {
		bus.Inject = p.deliver
	}
}

func (p *Plan) fail(inj *Injection, err error) {
	p.Errors = append(p.Errors, fmt.Sprintf("%s@%v on %s: %v", inj.Kind, inj.At, inj.Target, err))
}

// deliver is the bus's per-delivery injection point: drop windows
// suppress matching deliveries until their budget runs out; delay
// windows add latency. owner is the subscribing daemon's node name.
func (p *Plan) deliver(m *notify.Msg, owner string) (bool, sim.Time) {
	now := p.s.Now()
	var extra sim.Time
	for i := range p.Injections {
		inj := &p.Injections[i]
		if inj.Kind != Drop && inj.Kind != Delay {
			continue
		}
		if m.Scope != inj.Target || m.Topic != inj.Topic {
			continue
		}
		if inj.Node != "" && inj.Node != owner {
			continue
		}
		if now < inj.At || now >= inj.At+inj.Window {
			continue
		}
		if inj.Kind == Drop {
			if inj.remaining > 0 {
				inj.remaining--
				p.Dropped++
				return true, 0
			}
			continue
		}
		e := inj.Extra
		if e <= 0 {
			e = sim.Time(inj.rng.Int63n(int64(20 * sim.Millisecond)))
		}
		extra += e
		p.Delayed++
	}
	return false, extra
}
