package storage

import (
	"math/rand"
	"testing"

	"emucheck/internal/sim"
)

// TestChainStoreForkSharesByReference: forking must add no bytes to the
// store — the branch references the parent's base and chain.
func TestChainStoreForkSharesByReference(t *testing.T) {
	cs := NewChainStore()
	l := cs.NewLineage(3)
	for epoch := 0; epoch < 5; epoch++ {
		blocks := map[int64]int64{int64(epoch): int64(100 + epoch), int64(epoch + 50): int64(epoch)}
		l.Commit(blocks, 1)
	}
	before := cs.StoredBytes()
	entries := cs.Entries()

	b := l.Fork()
	if cs.StoredBytes() != before || cs.Entries() != entries {
		t.Fatalf("fork copied bytes: %d -> %d (entries %d -> %d)", before, cs.StoredBytes(), entries, cs.Entries())
	}
	if b.SharedBytes() != b.ReplayBytes() {
		t.Fatalf("fresh fork shares %d of %d replay bytes, want all", b.SharedBytes(), b.ReplayBytes())
	}

	// Divergence is branch-private.
	b.Commit(map[int64]int64{999: 1}, 0)
	got, parent := b.Materialize(), l.Materialize()
	if _, ok := parent[999]; ok {
		t.Fatal("branch commit leaked into the parent's replay view")
	}
	if got[999] != 1 {
		t.Fatal("branch lost its private commit")
	}
}

// TestChainStoreCopyOnWritePrune: pruning one branch past MaxDepth must
// not change what its sibling replays, even though they share epochs.
func TestChainStoreCopyOnWritePrune(t *testing.T) {
	cs := NewChainStore()
	l := cs.NewLineage(2)
	for epoch := 0; epoch < 2; epoch++ {
		l.Commit(map[int64]int64{int64(epoch): int64(epoch + 10)}, 0)
	}
	b := l.Fork()
	want := b.Materialize()

	// Drive the parent through several prune folds.
	for epoch := 2; epoch < 8; epoch++ {
		l.Commit(map[int64]int64{int64(epoch): int64(epoch + 10)}, 0)
	}
	if l.MergedBytes == 0 {
		t.Fatal("parent never pruned; copy-on-write untested")
	}
	got := b.Materialize()
	if len(got) != len(want) {
		t.Fatalf("sibling view changed size: %d -> %d blocks", len(want), len(got))
	}
	for vba, tag := range want {
		if got[vba] != tag {
			t.Fatalf("sibling block %d changed: tag %d -> %d", vba, tag, got[vba])
		}
	}
}

// TestChainStoreReleaseGCs: releasing a branch reclaims exactly the
// epochs no other branch can reach, and leaves survivors byte-identical.
func TestChainStoreReleaseGCs(t *testing.T) {
	cs := NewChainStore()
	l := cs.NewLineage(4)
	l.Commit(map[int64]int64{1: 1, 2: 2}, 0)
	b := l.Fork()
	b.Commit(map[int64]int64{3: 3}, 0) // branch-private
	l.Commit(map[int64]int64{4: 4}, 0) // parent-private

	want := l.Materialize()
	stored := cs.StoredBytes()
	b.Release()
	if cs.GCBytes != BlockSize {
		t.Fatalf("GC reclaimed %d bytes, want exactly the branch-private epoch (%d)", cs.GCBytes, BlockSize)
	}
	if cs.StoredBytes() != stored-BlockSize {
		t.Fatalf("store holds %d bytes after release, want %d", cs.StoredBytes(), stored-BlockSize)
	}
	got := l.Materialize()
	for vba, tag := range want {
		if got[vba] != tag {
			t.Fatalf("survivor block %d changed after sibling release: tag %d -> %d", vba, tag, got[vba])
		}
	}
	b.Release() // idempotent
	if cs.GCBytes != BlockSize {
		t.Fatal("double release double-counted GC")
	}

	// Releasing the last branch empties the store.
	l.Release()
	if cs.Entries() != 0 {
		t.Fatalf("store retains %d entries after all branches released", cs.Entries())
	}
}

// TestChainStoreDedup: committing content-identical epochs on two
// branches stores the bytes once.
func TestChainStoreDedup(t *testing.T) {
	cs := NewChainStore()
	a := cs.NewLineage(4)
	b := cs.NewLineage(4)
	blocks := map[int64]int64{7: 70, 8: 80}
	a.Commit(blocks, 2)
	before := cs.StoredBytes()
	b.Commit(blocks, 2)
	if cs.StoredBytes() != before {
		t.Fatalf("identical commit stored again: %d -> %d bytes", before, cs.StoredBytes())
	}
	if cs.DedupBytes != 2*BlockSize {
		t.Fatalf("DedupBytes %d, want %d", cs.DedupBytes, 2*BlockSize)
	}
}

// TestChainStoreBranchReplayIdentity is the branching extension of the
// lineage replay property: fork a branch off a live volume workload,
// run both sides through divergent writes, prunes, and retroactive
// drops, and require each side's materialized chain to stay
// byte-identical to its own volume snapshot — then release branches in
// random order and require the survivors to stay correct as the store
// garbage-collects.
func TestChainStoreBranchReplayIdentity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New(seed)
		cs := NewChainStore()

		type branch struct {
			v *Volume
			l *Lineage
		}
		write := func(br *branch) {
			for w := 0; w < 1+rng.Intn(30); w++ {
				blk := int64(rng.Intn(150))
				if rng.Intn(3) == 0 {
					blk = int64(rng.Intn(8)) // hot set: overlap across epochs
				}
				br.v.Write(blk*BlockSize, int64(1+rng.Intn(3))*BlockSize, nil)
			}
			s.Run()
		}
		commit := func(br *branch) {
			br.l.Commit(br.v.EpochBlocks(nil), 0)
			br.v.Merge(true, nil)
		}
		check := func(br *branch, when string) {
			got, want := br.l.Materialize(), br.v.Snapshot(nil)
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: replay has %d blocks, snapshot %d", seed, when, len(got), len(want))
			}
			for vba, tag := range want {
				if got[vba] != tag {
					t.Fatalf("seed %d %s: block %d replayed tag %d, want %d", seed, when, vba, got[vba], tag)
				}
			}
		}

		// Shared history: one parent volume runs a few epochs.
		parent := &branch{v: newTestVolume(s), l: cs.NewLineage(2)}
		for epoch := 0; epoch < 4; epoch++ {
			write(parent)
			commit(parent)
		}

		// Fork: each branch clones the parent's content view (a branch
		// starts from the same checkpoint state) and its lineage.
		branches := []*branch{parent}
		for i := 0; i < 3; i++ {
			bv := newTestVolume(s)
			bv.content = make(map[int64]int64)
			for vba, tag := range parent.v.Snapshot(nil) {
				bv.content[vba] = tag
				bv.Agg.append(vba)
			}
			bv.writeSeq = parent.v.writeSeq
			branches = append(branches, &branch{v: bv, l: parent.l.Fork()})
		}

		// Divergent futures: every branch takes its own writes, commits,
		// prunes, and occasional retroactive drops.
		for round := 0; round < 6; round++ {
			for bi, br := range branches {
				write(br)
				commit(br)
				if rng.Intn(4) == 0 {
					free := int64(rng.Intn(8))
					isFree := func(vba int64) bool { return vba == free }
					br.l.Drop(isFree)
					br.v.Merge(true, isFree)
					// Merge only filters Agg; a same-round future write may
					// re-dirty it, which both sides then agree on.
				}
				check(br, "diverged")
				_ = bi
			}
		}

		// Release branches one at a time; survivors must stay intact.
		for len(branches) > 1 {
			victim := rng.Intn(len(branches))
			branches[victim].l.Release()
			branches = append(branches[:victim], branches[victim+1:]...)
			for _, br := range branches {
				check(br, "after GC")
			}
		}
		if cs.GCBytes == 0 {
			t.Fatalf("seed %d: releasing diverged branches reclaimed nothing", seed)
		}
	}
}
