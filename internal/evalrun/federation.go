package evalrun

import (
	"fmt"
	"time"

	"emucheck/internal/federation"
	"emucheck/internal/metrics"
)

// FederationRow is one (fleet size, facilities, workers) cell of the
// federated-sharding benchmark: the same fleet run as a conservative
// parallel simulation. Wall-clock fields measure this machine;
// everything else — including the digest — is bit-deterministic under
// (config, seed), and Identical is the portable claim: the worker
// count cannot change the simulation, only the wall-clock.
type FederationRow struct {
	Tenants    int     `json:"tenants"`
	Facilities int     `json:"facilities"`
	Workers    int     `json:"workers"`
	WallMS     float64 `json:"wall_ms"`
	// Speedup is the same-sharding serial (workers=1) wall time over
	// this row's wall time.
	Speedup float64 `json:"speedup_vs_serial"`
	// Identical reports this row's digest byte-equal to the
	// same-sharding serial reference's.
	Identical  bool    `json:"digest_identical"`
	SimS       float64 `json:"sim_s"`
	Events     uint64  `json:"events"`
	Windows    int64   `json:"windows"`
	Migrations int     `json:"migrations"`
	WANMB      float64 `json:"wan_mb"`
	Digest     string  `json:"digest"`
}

// FederationWarmRow compares the migration data plane with and
// without destination cache warm-up on the same fleet: warm-up ships
// the chain over the WAN ahead of the restore, trading WAN megabytes
// for shared-pool restore traffic.
type FederationWarmRow struct {
	WarmUp     bool    `json:"warmup"`
	Migrations int     `json:"migrations"`
	WANMB      float64 `json:"wan_mb"`
	WarmedMB   float64 `json:"warmed_mb"`
	LocalMB    float64 `json:"local_mb"`
	RemoteMB   float64 `json:"remote_mb"`
}

// FederationResult is the federated-sharding benchmark: serial vs
// 2/4/8 facility-workers over the 1k/10k fleets, plus the warm-vs-cold
// migration comparison.
type FederationResult struct {
	Seed int64 `json:"seed"`
	// WarmTenants/WarmFacilities identify the warm-vs-cold fleet.
	WarmTenants    int                 `json:"warm_tenants"`
	WarmFacilities int                 `json:"warm_facilities"`
	Rows           []FederationRow     `json:"rows"`
	Warm           []FederationWarmRow `json:"warm_rows"`
}

// runFederation runs one cell and wall-clocks it.
func runFederation(seed int64, tenants, facilities, workers int) FederationRow {
	start := time.Now()
	r := federation.Run(federation.Config{
		Facilities: facilities, Tenants: tenants, Seed: seed,
		Workers: workers, Migration: true, WarmUp: true,
	})
	wall := time.Since(start)
	return FederationRow{
		Tenants: tenants, Facilities: facilities, Workers: workers,
		WallMS: float64(wall.Nanoseconds()) / 1e6,
		SimS:   r.SimS, Events: r.Events, Windows: r.Windows,
		Migrations: r.Migrations, WANMB: r.WANMB, Digest: r.Digest,
	}
}

// Federation runs the sharding benchmark: for each fleet size and
// facility count, the serial reference (workers=1) and, for sharded
// runs, the full-width parallel run (workers=facilities). Defaults:
// 1k and 10k fleets over 1/2/4/8 facilities.
func Federation(seed int64, sizes, facilities []int) *FederationResult {
	if len(sizes) == 0 {
		sizes = []int{1000, 10000}
	}
	if len(facilities) == 0 {
		facilities = []int{1, 2, 4, 8}
	}
	res := &FederationResult{Seed: seed}
	for _, n := range sizes {
		for _, f := range facilities {
			serial := runFederation(seed, n, f, 1)
			serial.Speedup = 1
			serial.Identical = true
			res.Rows = append(res.Rows, serial)
			if f == 1 {
				continue
			}
			par := runFederation(seed, n, f, f)
			par.Identical = par.Digest == serial.Digest
			if par.WallMS > 0 {
				par.Speedup = serial.WallMS / par.WallMS
			}
			res.Rows = append(res.Rows, par)
		}
	}

	// Warm-vs-cold migration comparison on the smallest fleet at the
	// widest sharding that still migrates (capped at 4 facilities).
	res.WarmTenants = sizes[0]
	res.WarmFacilities = facilities[len(facilities)-1]
	if res.WarmFacilities > 4 {
		res.WarmFacilities = 4
	}
	for _, warm := range []bool{false, true} {
		r := federation.Run(federation.Config{
			Facilities: res.WarmFacilities, Tenants: res.WarmTenants,
			Seed: seed, Workers: 1, Migration: true, WarmUp: warm,
		})
		res.Warm = append(res.Warm, FederationWarmRow{
			WarmUp: warm, Migrations: r.Migrations,
			WANMB: r.WANMB, WarmedMB: r.WarmedMB,
			LocalMB: r.LocalMB, RemoteMB: r.RemoteMB,
		})
	}
	return res
}

// Render prints the sharding curve and the warm-up comparison.
func (r *FederationResult) Render() string {
	t := &metrics.Table{Header: []string{
		"tenants", "facilities", "workers", "wall (ms)", "speedup", "identical",
		"sim (s)", "events", "windows", "migrations", "wan MB", "digest"}}
	for _, row := range r.Rows {
		t.AddRow(row.Tenants, row.Facilities, row.Workers,
			fmt.Sprintf("%.0f", row.WallMS), fmt.Sprintf("%.2fx", row.Speedup),
			row.Identical, fmt.Sprintf("%.0f", row.SimS), row.Events,
			row.Windows, row.Migrations, fmt.Sprintf("%.0f", row.WANMB), row.Digest)
	}
	s := fmt.Sprintf("seed %d; conservative windows, WAN-coupled facilities; speedup vs same-sharding serial\n", r.Seed)
	s += t.String()

	w := &metrics.Table{Header: []string{
		"warmup", "migrations", "wan MB", "warmed MB", "local MB", "remote MB"}}
	for _, row := range r.Warm {
		w.AddRow(row.WarmUp, row.Migrations, fmt.Sprintf("%.1f", row.WANMB),
			fmt.Sprintf("%.1f", row.WarmedMB), fmt.Sprintf("%.1f", row.LocalMB),
			fmt.Sprintf("%.1f", row.RemoteMB))
	}
	s += fmt.Sprintf("migration warm-up, %d tenants over %d facilities:\n", r.WarmTenants, r.WarmFacilities)
	return s + w.String()
}
