package storage

import "testing"

// TestDeltaCacheDeterministicAccounting drives a fixed access script
// and asserts the exact hit/miss/evict ledger: the cache's behavior is
// a pure function of the access sequence, so the ledger is part of the
// deterministic-run contract.
func TestDeltaCacheDeterministicAccounting(t *testing.T) {
	const mb = 1 << 20
	c := NewDeltaCache(10*mb, nil)

	// Fill: A(4) B(4) — fits. C(4) evicts A (LRU). Touch B, add D(4):
	// evicts C (B was refreshed). Get A misses (evicted), Get B hits.
	c.Put(1, 4*mb) // A
	c.Put(2, 4*mb) // B
	c.Put(3, 4*mb) // C evicts A
	if c.Contains(1) {
		t.Fatal("A should be the LRU eviction victim")
	}
	if _, ok := c.Get(2); !ok { // refresh B
		t.Fatal("B must be resident")
	}
	c.Put(4, 4*mb) // D evicts C
	if c.Contains(3) {
		t.Fatal("C should be evicted after B's refresh")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("A was evicted")
	}
	if _, ok := c.Get(4); !ok {
		t.Fatal("D must be resident")
	}

	st := c.Stats()
	want := CacheStats{
		Hits: 2, Misses: 1,
		HitBytes:  8 * mb,
		Evictions: 2, EvictedBytes: 8 * mb,
	}
	if st != want {
		t.Fatalf("ledger drifted:\n got %+v\nwant %+v", st, want)
	}
	if c.Used() != 8*mb || c.Len() != 2 {
		t.Fatalf("resident %d bytes / %d entries", c.Used(), c.Len())
	}
	if got := c.HitRatio(); got != 2.0/3.0 {
		t.Fatalf("hit ratio %v", got)
	}

	// Replaying the identical script must produce the identical ledger.
	c2 := NewDeltaCache(10*mb, nil)
	c2.Put(1, 4*mb)
	c2.Put(2, 4*mb)
	c2.Put(3, 4*mb)
	c2.Get(2)
	c2.Put(4, 4*mb)
	c2.Get(1)
	c2.Get(4)
	if c2.Stats() != st {
		t.Fatalf("same script, different ledger:\n got %+v\nwant %+v", c2.Stats(), st)
	}
}

// TestDeltaCachePinsSharedEpochs proves refcount-aware eviction: a
// segment referenced by more than one live lineage (a fan-out's shared
// chain prefix) is pinned and never evicted, while admissions that
// cannot fit past the pinned set are rejected rather than forced.
func TestDeltaCachePinsSharedEpochs(t *testing.T) {
	const mb = 1 << 20
	refs := map[Addr]int{1: 3, 2: 1} // addr 1 shared by 3 branches
	c := NewDeltaCache(8*mb, func(a Addr) int { return refs[a] })

	c.Put(1, 6*mb) // pinned (refs 3)
	c.Put(2, 2*mb) // evictable
	refs[3] = 1
	c.Put(3, 2*mb) // must evict 2, not the pinned 1
	if !c.Contains(1) {
		t.Fatal("shared (pinned) segment was evicted")
	}
	if c.Contains(2) {
		t.Fatal("the unpinned LRU entry should have been evicted")
	}
	// 6 MB pinned + 2 MB resident: a 4 MB admission cannot fit without
	// touching the pin — it must be rejected, never forced, and the
	// hopeless attempt must not evict the resident working set either.
	refs[4] = 1
	evictionsBefore := c.Stats().Evictions
	c.Put(4, 4*mb)
	if c.Contains(4) {
		t.Fatal("admission past the pinned set must be rejected")
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", c.Stats().Rejected)
	}
	if !c.Contains(3) || c.Stats().Evictions != evictionsBefore {
		t.Fatal("a rejected admission must not evict resident entries")
	}
	// Once the sharing ends (branches released), the pin lifts.
	refs[1] = 1
	refs[5] = 1
	c.Put(5, 7*mb)
	if !c.Contains(5) || c.Contains(1) {
		t.Fatal("unpinned entry should be evictable after the sharing ends")
	}
}

// TestDeltaCacheExpiresGCdSegments: a cached segment whose address was
// garbage-collected from every chain (refcount zero) is dropped at the
// next lookup instead of served.
func TestDeltaCacheExpiresGCdSegments(t *testing.T) {
	refs := map[Addr]int{7: 1}
	c := NewDeltaCache(1<<30, func(a Addr) int { return refs[a] })
	c.Put(7, 1<<20)
	if _, ok := c.Get(7); !ok {
		t.Fatal("live segment must hit")
	}
	refs[7] = 0 // the last branch released it
	if _, ok := c.Get(7); ok {
		t.Fatal("GC'd segment must not be served")
	}
	if c.Contains(7) {
		t.Fatal("GC'd segment must leave the cache")
	}
	if c.Stats().Expired != 1 {
		t.Fatalf("expired = %d, want 1", c.Stats().Expired)
	}
}

// TestCacheEvictionNeverDropsChainData: the cache holds copies — LRU
// eviction of every cacheable entry must leave each live lineage's
// replay byte-identical, because the authoritative epochs stay in the
// chain store (and on its mirroring backend).
func TestCacheEvictionNeverDropsChainData(t *testing.T) {
	cs := NewChainStore()
	be := NewRemoteBackend()
	cs.OnStore = func(a Addr, n int64) { be.Put(a, n) }
	cs.OnDrop = func(a Addr, n int64) { be.Delete(a) }
	// A deliberately tiny cache: every commit evicts the previous one.
	c := NewDeltaCache(BlockSize*2, cs.Refs)

	l := cs.NewLineage(3)
	for i := int64(0); i < 8; i++ {
		e := l.Commit(map[int64]int64{i: i + 1, 50 + i: i + 9}, 1)
		segs := l.Segments()
		c.Put(segs[len(segs)-1].Addr, e.DiskBytes())
	}
	want := l.Materialize()

	// Thrash the cache: everything cacheable has been evicted at least
	// once by now. Replay must still reconstruct every block, because
	// eviction touched only cache copies.
	if c.Stats().Evictions == 0 {
		t.Fatal("the script should have forced evictions")
	}
	got := l.Materialize()
	if len(got) != len(want) {
		t.Fatalf("replay lost blocks: %d vs %d", len(got), len(want))
	}
	for vba, tag := range want {
		if got[vba] != tag {
			t.Fatalf("block %d: tag %d vs %d", vba, got[vba], tag)
		}
	}
	// And every chain segment is still resident on the authoritative
	// tier, whatever the cache evicted.
	for _, seg := range l.Segments() {
		if !be.Has(seg.Addr) {
			t.Fatalf("segment %v evicted from the cache is gone from the backend too", seg.Addr)
		}
	}
}
