// Package evalrun regenerates every figure and table of the paper's
// evaluation (§7). Each function builds the experiment the paper
// describes, runs it on the simulated testbed, and returns the measured
// rows/series. The benchmark harness (bench_test.go) and the
// benchrunner CLI both call into this package, so `go test -bench` and
// `benchrunner -fig N` print the same numbers.
package evalrun

import (
	"fmt"
	"strings"

	"emucheck/internal/apps"
	"emucheck/internal/core"
	"emucheck/internal/emulab"
	"emucheck/internal/guest"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// CkptInterval is the paper's checkpoint period for §7.1.
const CkptInterval = 5 * sim.Second

// twoNode builds the standard 2-node experiment over a shaped link.
func twoNode(seed int64, bw simnet.Bitrate, delay sim.Time) (*sim.Simulator, *emulab.Testbed, *emulab.Experiment) {
	s := sim.New(seed)
	tb := emulab.NewTestbed(s, 16)
	e, err := tb.SwapIn(emulab.Spec{
		Name:  "eval",
		Nodes: []emulab.NodeSpec{{Name: "n0", Swappable: true}, {Name: "n1", Swappable: true}},
		Links: []emulab.LinkSpec{{A: "n0", B: "n1", Bandwidth: bw, Delay: delay}},
	})
	if err != nil {
		panic(err)
	}
	return s, tb, e
}

// ---------------------------------------------------------------- Fig 4

// Fig4Result is the sleep-loop transparency experiment.
type Fig4Result struct {
	Iters       *metrics.Series `json:"-"`
	MeanMs      float64
	FracWithin  float64 // fraction of iterations within 28 µs of 20 ms
	CkptMaxErr  sim.Time
	Checkpoints int
}

// Fig4 runs the usleep(10 ms) loop under periodic checkpointing.
func Fig4(seed int64, iters int) *Fig4Result {
	s, _, e := twoNode(seed, 0, 0)
	k := e.Node("n0").K
	loop := apps.NewSleepLoop(k, iters)
	finished := false
	loop.Run(func() { finished = true })
	pc := &core.PeriodicCheckpointer{C: e.Coord, Interval: CkptInterval, Opts: core.Options{Incremental: true}}
	pc.Start(0)
	limit := sim.Time(iters)*21*sim.Millisecond + sim.Minute
	s.RunFor(limit)
	pc.Stop()
	if !finished {
		panic("fig4: loop did not finish")
	}
	vals := loop.Times.Values()
	res := &Fig4Result{
		Iters:       loop.Times,
		MeanMs:      metrics.Mean(vals) / float64(sim.Millisecond),
		FracWithin:  metrics.FractionWithin(vals, 20*float64(sim.Millisecond), 28*float64(sim.Microsecond)),
		Checkpoints: pc.Count(),
	}
	for _, v := range vals {
		err := sim.Time(v) - 20*sim.Millisecond
		if err < 0 {
			err = -err
		}
		if err > res.CkptMaxErr {
			res.CkptMaxErr = err
		}
	}
	return res
}

// Render prints the figure's summary rows.
func (r *Fig4Result) Render() string {
	t := &metrics.Table{Header: []string{"metric", "paper", "measured"}}
	t.AddRow("iteration mean (ms)", "20.0", fmt.Sprintf("%.3f", r.MeanMs))
	t.AddRow("within 28us of 20ms", "97%", fmt.Sprintf("%.1f%%", r.FracWithin*100))
	t.AddRow("max checkpoint error (us)", "~80", fmt.Sprintf("%.0f", r.CkptMaxErr.Micros()))
	t.AddRow("checkpoints", "every 5s", fmt.Sprintf("%d", r.Checkpoints))
	return t.String()
}

// ---------------------------------------------------------------- Fig 5

// Fig5Result is the CPU-loop interference experiment.
type Fig5Result struct {
	Iters       *metrics.Series `json:"-"`
	MeanMs      float64
	FracWithin9 float64 // fraction within 9 ms of the nominal
	MaxOverMs   float64 // worst positive deviation (paper: <=27 ms)
	Checkpoints int
}

// Fig5 runs the 236.6 ms CPU job loop under periodic checkpointing.
func Fig5(seed int64, iters int) *Fig5Result {
	s, _, e := twoNode(seed, 0, 0)
	k := e.Node("n0").K
	loop := apps.NewCPULoop(k, iters)
	finished := false
	loop.Run(func() { finished = true })
	pc := &core.PeriodicCheckpointer{C: e.Coord, Interval: CkptInterval, Opts: core.Options{Incremental: true}}
	pc.Start(0)
	s.RunFor(sim.Time(iters)*260*sim.Millisecond + sim.Minute)
	pc.Stop()
	if !finished {
		panic("fig5: loop did not finish")
	}
	nominal := 236.6 * float64(sim.Millisecond)
	vals := loop.Times.Values()
	res := &Fig5Result{
		Iters:       loop.Times,
		MeanMs:      metrics.Mean(vals) / float64(sim.Millisecond),
		FracWithin9: metrics.FractionWithin(vals, nominal, 9*float64(sim.Millisecond)),
		Checkpoints: pc.Count(),
	}
	for _, v := range vals {
		if over := (v - nominal) / float64(sim.Millisecond); over > res.MaxOverMs {
			res.MaxOverMs = over
		}
	}
	return res
}

// Render prints the figure's summary rows.
func (r *Fig5Result) Render() string {
	t := &metrics.Table{Header: []string{"metric", "paper", "measured"}}
	t.AddRow("iteration mean (ms)", "~236.6", fmt.Sprintf("%.1f", r.MeanMs))
	t.AddRow("within 9ms of nominal", "90% (baseline)", fmt.Sprintf("%.1f%%", r.FracWithin9*100))
	t.AddRow("max over nominal (ms)", "<=27", fmt.Sprintf("%.1f", r.MaxOverMs))
	t.AddRow("checkpoints", "every 5s", fmt.Sprintf("%d", r.Checkpoints))
	return t.String()
}

// ---------------------------------------------------------------- Fig 6

// Fig6Result is the iperf transparency experiment.
type Fig6Result struct {
	Throughput  *metrics.Series `json:"-"` // 20 ms windows, MB/s
	MeanMBps    float64
	MedianGapUs float64 // typical inter-packet arrival
	CkptGapsUs  []float64
	Retransmits int
	Timeouts    int
	DupData     int
	Checkpoints int
}

// Fig6 runs a 25 s iperf session on a 1 Gbps link, checkpointing every
// 5 s, and analyzes the receiver-side packet trace.
func Fig6(seed int64) *Fig6Result {
	s, _, e := twoNode(seed, simnet.Gbps, 0)
	snd, rcv := e.Node("n0").K, e.Node("n1").K
	ip := apps.NewIperf(snd, rcv)
	ip.Start(-1)
	var ckptAt []sim.Time
	pc := &core.PeriodicCheckpointer{C: e.Coord, Interval: CkptInterval, Opts: core.Options{Incremental: true},
		OnResult: func(r *core.Result) { ckptAt = append(ckptAt, rcv.Monotonic()) }}
	pc.Start(4)
	s.RunFor(25 * sim.Second)
	ip.Stop()
	pc.Stop()

	gaps := metrics.InterArrivals(ip.Trace)
	gapsF := make([]float64, len(gaps))
	for i, g := range gaps {
		gapsF[i] = float64(g)
	}
	res := &Fig6Result{
		Throughput:  metrics.Throughput(ip.Trace, 20*sim.Millisecond),
		MedianGapUs: metrics.Percentile(gapsF, 50) / float64(sim.Microsecond),
		Retransmits: ip.Sender.Retransmits,
		Timeouts:    ip.Sender.Timeouts,
		DupData:     ip.Receiver.DupData,
		Checkpoints: pc.Count(),
	}
	res.MeanMBps = metrics.Mean(res.Throughput.Values())
	// Per-checkpoint gap: the largest inter-arrival in a window around
	// each checkpoint instant (receiver virtual time).
	for _, ct := range ckptAt {
		var worst sim.Time
		for i := 1; i < ip.Trace.Len(); i++ {
			at := ip.Trace.Samples[i].T
			if at >= ct-sim.Second && at <= ct+sim.Second {
				if g := at - ip.Trace.Samples[i-1].T; g > worst {
					worst = g
				}
			}
		}
		res.CkptGapsUs = append(res.CkptGapsUs, worst.Micros())
	}
	return res
}

// Render prints the figure's summary rows.
func (r *Fig6Result) Render() string {
	t := &metrics.Table{Header: []string{"metric", "paper", "measured"}}
	t.AddRow("mean throughput (MB/s)", "~45-55", fmt.Sprintf("%.1f", r.MeanMBps))
	t.AddRow("median inter-pkt (us)", "18", fmt.Sprintf("%.1f", r.MedianGapUs))
	gaps := make([]string, len(r.CkptGapsUs))
	for i, g := range r.CkptGapsUs {
		gaps[i] = fmt.Sprintf("%.0f", g)
	}
	t.AddRow("ckpt gaps (us)", "5801 816 399 330", strings.Join(gaps, " "))
	t.AddRow("retransmissions", "0", fmt.Sprintf("%d", r.Retransmits))
	t.AddRow("timeouts", "0", fmt.Sprintf("%d", r.Timeouts))
	t.AddRow("dup data at receiver", "0", fmt.Sprintf("%d", r.DupData))
	return t.String()
}

// ---------------------------------------------------------------- Fig 7

// Fig7Result is the BitTorrent experiment.
type Fig7Result struct {
	// PerClient holds 1 s-window throughput series per client, measured
	// at the seeder.
	PerClient map[string]*metrics.Series `json:"-"`
	// CenterBefore/During/After are mean throughputs per phase (MB/s),
	// averaged across clients — the paper's "center line" check.
	CenterBefore, CenterDuring, CenterAfter float64
	Checkpoints                             int
	Retransmits                             int
}

// Fig7 runs the 4-node swarm on a 100 Mbps LAN for 300 s with
// checkpoints every 5 s during [70 s, 170 s].
func Fig7(seed int64, fileMB int64) *Fig7Result {
	s := sim.New(seed)
	tb := emulab.NewTestbed(s, 16)
	tb.Params.ExperimentLink = 100 * simnet.Mbps
	e, err := tb.SwapIn(emulab.Spec{
		Name: "bt",
		Nodes: []emulab.NodeSpec{
			{Name: "seeder"}, {Name: "c1"}, {Name: "c2"}, {Name: "c3"},
		},
		LANs: []emulab.LANSpec{{Name: "lan0", Members: []string{"seeder", "c1", "c2", "c3"}}},
	})
	if err != nil {
		panic(err)
	}
	seeder := e.Node("seeder").K
	cks := []*emulab.ExpNode{e.Node("c1"), e.Node("c2"), e.Node("c3")}
	bt := apps.NewBitTorrent(seeder, kernelsOf(cks), fileMB<<20)
	bt.Start()

	// Checkpoint storm during [70 s, 170 s].
	pc := &core.PeriodicCheckpointer{C: e.Coord, Interval: CkptInterval, Opts: core.Options{Incremental: true}}
	s.RunFor(70*sim.Second - CkptInterval)
	pc.Start(20)
	s.RunFor(CkptInterval + 100*sim.Second)
	pc.Stop()
	s.RunFor(130 * sim.Second)

	res := &Fig7Result{PerClient: make(map[string]*metrics.Series), Checkpoints: pc.Count()}
	phase := func(tr *metrics.Series, lo, hi sim.Time) float64 {
		th := metrics.Throughput(tr.Between(lo, hi), sim.Second)
		return metrics.Mean(th.Values())
	}
	for name, tr := range bt.SeederTrace {
		res.PerClient[name] = metrics.Throughput(tr, sim.Second)
		res.CenterBefore += phase(tr, 10*sim.Second, 70*sim.Second) / 3
		res.CenterDuring += phase(tr, 70*sim.Second, 170*sim.Second) / 3
		res.CenterAfter += phase(tr, 170*sim.Second, 290*sim.Second) / 3
	}
	return res
}

// kernelsOf extracts the guest kernels of experiment nodes.
func kernelsOf(ns []*emulab.ExpNode) []*guest.Kernel {
	out := make([]*guest.Kernel, len(ns))
	for i, n := range ns {
		out[i] = n.K
	}
	return out
}

// Render prints the figure's summary rows.
func (r *Fig7Result) Render() string {
	t := &metrics.Table{Header: []string{"metric", "paper", "measured"}}
	t.AddRow("per-client mean before ckpts (MB/s)", "~1", fmt.Sprintf("%.2f", r.CenterBefore))
	t.AddRow("per-client mean during ckpts (MB/s)", "~1 (center line unchanged)", fmt.Sprintf("%.2f", r.CenterDuring))
	t.AddRow("per-client mean after ckpts (MB/s)", "~1", fmt.Sprintf("%.2f", r.CenterAfter))
	t.AddRow("checkpoints", "20 over 100s", fmt.Sprintf("%d", r.Checkpoints))
	return t.String()
}
