// Package vclock implements guest time virtualization (paper §4.2).
//
// A paravirtualized guest keeps time from three sources the hypervisor
// exposes: wall-clock time and system-time-since-boot in a shared memory
// page, and the hardware time-stamp counter (TSC) used to interpolate
// between page updates. To conceal a checkpoint, all three are
// virtualized: during a checkpoint the shared page stops updating, TSC
// access is gated, jiffies/xtime stop, POSIX timers stop, and the
// hypervisor's runstate statistics stop accumulating. From inside the
// guest, time simply does not pass.
//
// The only imperfection is the engage/disengage path itself, which runs
// while time still flows; the paper measures this leak at ~80 µs
// (Fig. 4 inset). Freeze/Thaw accept an explicit leak so the calibrated
// imperfection is part of the model rather than hidden in it.
package vclock

import (
	"fmt"

	"emucheck/internal/sim"
)

// TSCHz is the simulated time-stamp counter frequency (3.0 GHz Xeon).
const TSCHz = 3_000_000_000

// RunstateKind is one of the four hypervisor-visible guest states the
// paper lists in §4.2.
type RunstateKind int

// Runstate kinds.
const (
	Running RunstateKind = iota
	Runnable
	Blocked
	Offline
)

func (k RunstateKind) String() string {
	switch k {
	case Running:
		return "running"
	case Runnable:
		return "runnable"
	case Blocked:
		return "blocked"
	default:
		return "offline"
	}
}

// Runstate accumulates time spent in each state.
type Runstate struct {
	Time [4]sim.Time
}

// Clock is one guest's virtualized time source.
type Clock struct {
	s *sim.Simulator

	// Anchor-based mapping from real to virtual time: while running,
	// virtual = anchorVirtual + (real - anchorReal) / dilation. The
	// anchor moves at every thaw (absorbing the freeze) and at every
	// dilation change.
	anchorReal    sim.Time
	anchorVirtual sim.Time

	// dilation is the time-dilation factor (Gupta 2006, cited in §8;
	// proposed as a replay perturbation in §6): virtual time advances
	// at 1/dilation of real time, making the machine appear
	// dilation-times faster to the guest. 1 = realtime.
	dilation float64

	// wallEpoch is the guest's wall-clock at virtual time zero.
	wallEpoch sim.Time

	frozen    bool
	frozenAt  sim.Time // virtual value held while frozen
	freezeRef sim.Time // real time of freeze

	// leakTotal accumulates virtual time that escaped across
	// checkpoints — the measured transparency imperfection.
	leakTotal sim.Time
	freezes   int

	state       RunstateKind
	stateSince  sim.Time // real time of last transition
	runstate    Runstate
	acctFrozen  bool
	tscReads    uint64
	tscGateHits uint64
}

// New creates a clock for a guest booted at the current simulation time
// with the given wall-clock epoch.
func New(s *sim.Simulator, wallEpoch sim.Time) *Clock {
	return &Clock{s: s, anchorReal: s.Now(), wallEpoch: wallEpoch, dilation: 1, stateSince: s.Now()}
}

// SystemTime reports guest nanoseconds since boot (virtual domain).
func (c *Clock) SystemTime() sim.Time {
	if c.frozen {
		return c.frozenAt
	}
	return c.anchorVirtual + sim.Time(float64(c.s.Now()-c.anchorReal)/c.dilation)
}

// WallClock reports the guest's wall-clock time.
func (c *Clock) WallClock() sim.Time { return c.wallEpoch + c.SystemTime() }

// Gettimeofday is WallClock truncated to microsecond resolution, the
// precision user code observes (Fig. 4's measurement path).
func (c *Clock) Gettimeofday() sim.Time {
	w := c.WallClock()
	return w - w%sim.Microsecond
}

// ReadTSC reports the virtualized time-stamp counter. During a
// checkpoint the guest's access to the hardware TSC is restricted
// (§4.2); reads return the frozen value and are counted.
func (c *Clock) ReadTSC() uint64 {
	c.tscReads++
	if c.frozen {
		c.tscGateHits++
	}
	return uint64(c.SystemTime()) * (TSCHz / 1_000_000_000)
}

// Frozen reports whether time is suspended.
func (c *Clock) Frozen() bool { return c.frozen }

// Freeze suspends all guest time sources. engageLeak is the virtual time
// that elapses on the engage path before time actually stops — it is
// added to the frozen value, modelling the imperfect atomicity the paper
// measures. Freezing a frozen clock panics: the firewall must serialize
// checkpoints.
func (c *Clock) Freeze(engageLeak sim.Time) {
	if c.frozen {
		panic("vclock: double freeze")
	}
	if engageLeak < 0 {
		engageLeak = 0
	}
	c.frozen = true
	c.freezeRef = c.s.Now()
	c.frozenAt = c.anchorVirtual + sim.Time(float64(c.s.Now()-c.anchorReal)/c.dilation) + engageLeak
	c.leakTotal += engageLeak
	c.freezes++
	c.accountTo(c.s.Now())
	c.acctFrozen = true
}

// Thaw resumes time. disengageLeak models the disengage-path latency,
// which also shows up as virtual time.
func (c *Clock) Thaw(disengageLeak sim.Time) {
	if !c.frozen {
		panic("vclock: thaw of running clock")
	}
	if disengageLeak < 0 {
		disengageLeak = 0
	}
	c.frozen = false
	c.leakTotal += disengageLeak
	// After thaw: virtual(now) must equal frozenAt + disengageLeak.
	c.anchorReal = c.s.Now()
	c.anchorVirtual = c.frozenAt + disengageLeak
	c.acctFrozen = false
	c.stateSince = c.s.Now()
}

// Dilation reports the current time-dilation factor.
func (c *Clock) Dilation() float64 { return c.dilation }

// SetDilation changes the time-dilation factor. Virtual time remains
// continuous: the anchor moves to the current instant. Factors < 1
// speed virtual time up; factors > 1 slow it down (the guest perceives
// a faster machine and network). Non-positive factors panic.
func (c *Clock) SetDilation(f float64) {
	if f <= 0 {
		panic("vclock: non-positive dilation")
	}
	if c.frozen {
		c.dilation = f
		return
	}
	c.anchorVirtual = c.SystemTime()
	c.anchorReal = c.s.Now()
	c.dilation = f
}

// ToReal converts a virtual duration into the real duration it takes at
// the current dilation; the firewall uses it to arm virtual timers.
func (c *Clock) ToReal(d sim.Time) sim.Time {
	if c.dilation == 1 {
		return d
	}
	return sim.Time(float64(d) * c.dilation)
}

// ToVirtual converts a real duration into virtual time units.
func (c *Clock) ToVirtual(d sim.Time) sim.Time {
	if c.dilation == 1 {
		return d
	}
	return sim.Time(float64(d) / c.dilation)
}

// LeakTotal reports the accumulated transparency leak.
func (c *Clock) LeakTotal() sim.Time { return c.leakTotal }

// Freezes reports how many checkpoints this clock has absorbed.
func (c *Clock) Freezes() int { return c.freezes }

// TSCGateHits reports TSC reads served while gated.
func (c *Clock) TSCGateHits() uint64 { return c.tscGateHits }

func (c *Clock) accountTo(t sim.Time) {
	if c.acctFrozen {
		return
	}
	c.runstate.Time[c.state] += t - c.stateSince
	c.stateSince = t
}

// SetRunstate records a guest state transition. Accounting is suspended
// while frozen (§4.2: "we modify the hypervisor to suspend accounting of
// state changes during a checkpoint").
func (c *Clock) SetRunstate(k RunstateKind) {
	c.accountTo(c.s.Now())
	c.state = k
}

// RunstateSnapshot reports the accumulated per-state times.
func (c *Clock) RunstateSnapshot() Runstate {
	c.accountTo(c.s.Now())
	return c.runstate
}

// State is the serialized clock, stored in a checkpoint image.
type State struct {
	VirtualNow sim.Time
	WallEpoch  sim.Time
	Runstate   Runstate
	Freezes    int
	LeakTotal  sim.Time
}

// Serialize captures the clock; it must be frozen, like every piece of
// state the checkpoint walks.
func (c *Clock) Serialize() (*State, error) {
	if !c.frozen {
		return nil, fmt.Errorf("vclock: serialize of running clock")
	}
	return &State{
		VirtualNow: c.frozenAt,
		WallEpoch:  c.wallEpoch,
		Runstate:   c.runstate,
		Freezes:    c.freezes,
		LeakTotal:  c.leakTotal,
	}, nil
}

// Restore reconstitutes a clock from a checkpoint image; the clock comes
// back frozen at the captured instant and resumes on Thaw.
func Restore(s *sim.Simulator, st *State) *Clock {
	c := &Clock{
		s:          s,
		wallEpoch:  st.WallEpoch,
		frozen:     true,
		frozenAt:   st.VirtualNow,
		freezeRef:  s.Now(),
		dilation:   1,
		runstate:   st.Runstate,
		freezes:    st.Freezes,
		leakTotal:  st.LeakTotal,
		acctFrozen: true,
		stateSince: s.Now(),
	}
	return c
}
