package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readSnap(t *testing.T, path string) snapshotFile {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestSnapshotRejectsDuplicateLabel: recording the same (label, table)
// twice must fail instead of silently accumulating duplicate trajectory
// entries; a different label or a different table still appends.
func TestSnapshotRejectsDuplicateLabel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	results := map[string]any{"scale": map[string]int{"v": 1}, "federation": map[string]int{"v": 2}}

	if err := appendSnapshot(path, "PR 1", 1, []string{"scale"}, results, false); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err := appendSnapshot(path, "PR 1", 1, []string{"scale"}, results, false)
	if err == nil || !strings.Contains(err.Error(), "already has an entry") {
		t.Fatalf("duplicate (label, table) not rejected: %v", err)
	}
	if got := readSnap(t, path).Entries; len(got) != 1 {
		t.Fatalf("rejected append still modified the file: %d entries", len(got))
	}

	// Same label, different table: fine.
	if err := appendSnapshot(path, "PR 1", 1, []string{"federation"}, results, false); err != nil {
		t.Fatalf("same label, new table: %v", err)
	}
	// Same table, different label: fine.
	if err := appendSnapshot(path, "PR 2", 1, []string{"scale"}, results, false); err != nil {
		t.Fatalf("new label, same table: %v", err)
	}
	if got := readSnap(t, path).Entries; len(got) != 3 {
		t.Fatalf("entries = %d, want 3", len(got))
	}
}

// TestSnapshotReplace: -snapshot-replace drops the stale (label, table)
// entries and re-records them, leaving everything else untouched.
func TestSnapshotReplace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := appendSnapshot(path, "PR 1", 1, []string{"scale"},
		map[string]any{"scale": map[string]int{"v": 1}}, false); err != nil {
		t.Fatal(err)
	}
	if err := appendSnapshot(path, "PR 2", 1, []string{"scale"},
		map[string]any{"scale": map[string]int{"v": 2}}, false); err != nil {
		t.Fatal(err)
	}
	if err := appendSnapshot(path, "PR 1", 7, []string{"scale"},
		map[string]any{"scale": map[string]int{"v": 3}}, true); err != nil {
		t.Fatalf("replace: %v", err)
	}
	snap := readSnap(t, path)
	if len(snap.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(snap.Entries))
	}
	// The untouched PR 2 entry survives; the PR 1 entry carries the
	// replacement's payload and seed.
	byLabel := map[string]snapshotEntry{}
	for _, e := range snap.Entries {
		byLabel[e.Label] = e
	}
	payload := func(e snapshotEntry) int {
		var m map[string]int
		if err := json.Unmarshal(e.Results, &m); err != nil {
			t.Fatalf("entry %q payload: %v", e.Label, err)
		}
		return m["v"]
	}
	if e := byLabel["PR 2"]; payload(e) != 2 {
		t.Fatalf("PR 2 entry modified: %s", e.Results)
	}
	if e := byLabel["PR 1"]; e.Seed != 7 || payload(e) != 3 {
		t.Fatalf("PR 1 entry not replaced: seed=%d %s", e.Seed, e.Results)
	}
}

// TestSnapshotReplaceOnlyTouchesRecordedTables: replace scopes to the
// tables being recorded, not the whole label.
func TestSnapshotReplaceOnlyTouchesRecordedTables(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	results := map[string]any{"scale": 1, "federation": 2}
	if err := appendSnapshot(path, "PR 1", 1, []string{"scale", "federation"}, results, false); err != nil {
		t.Fatal(err)
	}
	if err := appendSnapshot(path, "PR 1", 1, []string{"federation"},
		map[string]any{"federation": 9}, true); err != nil {
		t.Fatal(err)
	}
	snap := readSnap(t, path)
	if len(snap.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(snap.Entries))
	}
	for _, e := range snap.Entries {
		switch e.Table {
		case "scale":
			if string(e.Results) != "1" {
				t.Fatalf("scale entry touched: %s", e.Results)
			}
		case "federation":
			if string(e.Results) != "9" {
				t.Fatalf("federation entry not replaced: %s", e.Results)
			}
		}
	}
}
