package node

import (
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// Machine is one physical testbed node: CPU, two local disks (pc3000
// nodes have two 146 GB spindles; the second one stores time-travel
// snapshots, §6), an experiment-network NIC and a control-network NIC.
type Machine struct {
	Name    string
	Sim     *sim.Simulator
	P       Params
	CPU     *CPU
	Disk    *Disk // system/guest-image disk
	Scratch *Disk // second local disk (snapshot store)
	ExpNIC  *simnet.NIC
	CtlNIC  *simnet.NIC
}

// NewMachine assembles a pc3000-class machine named name.
func NewMachine(s *sim.Simulator, name string, p Params) *Machine {
	return &Machine{
		Name:    name,
		Sim:     s,
		P:       p,
		CPU:     NewCPU(s),
		Disk:    NewDisk(s, p),
		Scratch: NewDisk(s, p),
		ExpNIC:  simnet.NewNIC(s, simnet.Addr(name), p.ExperimentLink),
		CtlNIC:  simnet.NewNIC(s, simnet.Addr(name+".ctl"), p.ControlLink),
	}
}
