package ntpsim

import (
	"testing"
	"testing/quick"

	"emucheck/internal/sim"
)

func TestUndisciplinedClockIsBad(t *testing.T) {
	s := sim.New(1)
	y := New(s, DefaultModel(), 1)
	if got := y.Error("ghost"); got != 500*sim.Millisecond {
		t.Fatalf("error = %v", got)
	}
	if y.Started("ghost") {
		t.Fatal("ghost started")
	}
}

func TestErrorConverges(t *testing.T) {
	s := sim.New(1)
	y := New(s, DefaultModel(), 1)
	y.Start("a")
	abs := func(x sim.Time) sim.Time {
		if x < 0 {
			return -x
		}
		return x
	}
	early := abs(y.ErrorAt("a", 1*sim.Second))
	late := abs(y.ErrorAt("a", 30*sim.Second))
	if early < 2*sim.Millisecond {
		t.Fatalf("early error %v too small", early)
	}
	if late > 400*sim.Microsecond {
		t.Fatalf("late error %v did not converge", late)
	}
	if late >= early {
		t.Fatal("no convergence")
	}
}

func TestSteadyStateNearPaperFigure(t *testing.T) {
	s := sim.New(1)
	y := New(s, DefaultModel(), 2)
	y.Start("a")
	y.Start("b")
	// After a minute, pairwise skew should be in the ~200 µs LAN regime.
	var worst sim.Time
	for ti := 60 * sim.Second; ti < 120*sim.Second; ti += 5 * sim.Second {
		if sk := y.Skew(ti, "a", "b"); sk > worst {
			worst = sk
		}
	}
	if worst > 500*sim.Microsecond {
		t.Fatalf("steady-state skew %v, want <= ~2x200us", worst)
	}
	if worst <= 0 {
		t.Fatal("skew should not be identically zero")
	}
}

func TestErrorIsDeterministicAndOrderIndependent(t *testing.T) {
	build := func() *Sync {
		s := sim.New(1)
		y := New(s, DefaultModel(), 3)
		y.Start("a")
		y.Start("b")
		return y
	}
	y1 := build()
	y2 := build()
	// Query y1 in one order, y2 in another.
	a1 := y1.ErrorAt("a", 10*sim.Second)
	b1 := y1.ErrorAt("b", 20*sim.Second)
	b2 := y2.ErrorAt("b", 20*sim.Second)
	a2 := y2.ErrorAt("a", 10*sim.Second)
	if a1 != a2 || b1 != b2 {
		t.Fatalf("order-dependent errors: %v/%v vs %v/%v", a1, b1, a2, b2)
	}
}

func TestLocalTrigger(t *testing.T) {
	s := sim.New(1)
	y := New(s, DefaultModel(), 4)
	y.Start("a")
	T := 10 * sim.Second
	tr := y.LocalTrigger("a", T)
	if got := tr + y.ErrorAt("a", T); got != T {
		t.Fatalf("trigger inconsistent: %v", got)
	}
}

func TestSkewEmpty(t *testing.T) {
	s := sim.New(1)
	y := New(s, DefaultModel(), 5)
	if y.Skew(sim.Second) != 0 {
		t.Fatal("empty skew")
	}
}

func TestConvergenceShapeMatchesFig6(t *testing.T) {
	// The paper's four checkpoint gaps at 5 s intervals decrease:
	// 5801, 816, 399, 330 µs. Check the model's skew decreases in the
	// same pattern: first gap milliseconds, later gaps sub-millisecond.
	s := sim.New(1)
	y := New(s, DefaultModel(), 6)
	y.Start("sender")
	y.Start("receiver")
	g1 := y.Skew(5*sim.Second, "sender", "receiver")
	g2 := y.Skew(10*sim.Second, "sender", "receiver")
	g4 := y.Skew(20*sim.Second, "sender", "receiver")
	if g1 < sim.Millisecond || g1 > 12*sim.Millisecond {
		t.Fatalf("first gap %v outside paper band", g1)
	}
	if g2 >= g1 {
		t.Fatalf("gap did not shrink: %v -> %v", g1, g2)
	}
	if g4 > 800*sim.Microsecond {
		t.Fatalf("fourth gap %v too large", g4)
	}
}

// Property: error magnitude is non-increasing in time between epochs of
// the floor process (sampled coarsely), and never exceeds the initial
// amplitude plus floor.
func TestPropertyBounded(t *testing.T) {
	f := func(tSec uint8) bool {
		s := sim.New(7)
		m := DefaultModel()
		y := New(s, m, 8)
		y.Start("n")
		e := y.ErrorAt("n", sim.Time(tSec)*sim.Second)
		if e < 0 {
			e = -e
		}
		return e <= m.InitialErrHi+m.FloorHi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
