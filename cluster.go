package emucheck

import (
	"fmt"

	"emucheck/internal/core"
	"emucheck/internal/emulab"
	"emucheck/internal/fault"
	"emucheck/internal/health"
	"emucheck/internal/metrics"
	"emucheck/internal/remediate"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
	"emucheck/internal/swap"
	"emucheck/internal/timetravel"
	"emucheck/internal/xen"
)

// Policy re-exports the scheduler's victim-selection policies.
type Policy = sched.Policy

// Preemption policies, re-exported.
const (
	FIFO      = sched.FIFO
	IdleFirst = sched.IdleFirst
	Priority  = sched.Priority
)

// Cluster is the shared facility hosting many experiments at once: one
// deterministic simulator, one testbed (hardware pool, control LAN,
// file server), and a preemptive swap scheduler that time-shares the
// pool by statefully swapping experiments in and out (§2, §5). Each
// submitted Scenario becomes a tenant Session with its own coordinator
// and swap manager; all of them contend for the same control-network
// file server, so swap costs are charged realistically.
//
// Everything stays bit-deterministic under one seed: tenants are kept
// in slices, scheduler decisions fire at well-defined instants, and all
// randomness flows from the cluster's simulator.
type Cluster struct {
	Seed  int64
	S     *sim.Simulator
	TB    *emulab.Testbed
	Sched *sched.Scheduler

	// Stateless switches parking to the classic Emulab swap-out that
	// destroys run-time state (re-admission reboots from scratch and
	// reruns Setup). It exists as the evaluation baseline against
	// stateful swapping; set it before submitting tenants.
	Stateless bool

	// Incremental switches parking to the dirty-delta pipeline: parks
	// upload only state dirtied since the tenant's last resident
	// checkpoint (committed to a per-node lineage), resumes replay base
	// + delta chain, and per-node uploads share the control-LAN pipe as
	// parallel streams. Preemption cost becomes proportional to dirtied
	// state. Set it before submitting tenants.
	Incremental bool

	// SwapStats accumulates delta/full byte counts across every
	// tenant's swap cycles (see swap.Manager.Stats for the keys).
	SwapStats *metrics.Counters

	// Chains is the facility-wide refcounted, content-addressed
	// checkpoint-chain store: branches forked from the same checkpoint
	// share their base and common deltas by reference, and releasing a
	// branch garbage-collects deltas no branch can reach.
	Chains *storage.ChainStore

	// Storage selects the physical tier checkpoint-chain segments live
	// on and the node-local delta cache in front of the remote tier.
	// Set it (or call ConfigureStorage) before submitting tenants; the
	// zero value keeps the legacy in-process behavior byte for byte.
	Storage StorageOptions

	// storageBackend and storageCache are the facility-wide tier and
	// cache built from Storage on first use.
	storageBackend storage.Backend
	storageCache   *storage.DeltaCache

	// NaiveBranchCopy switches Branch to the evaluation baseline: each
	// branch stages its own full unicast copy of the parent state (no
	// lineage sharing, no multicast) and parks under the cluster's
	// plain transfer mode. It exists so the shared-lineage fan-out can
	// be measured against per-branch full copies.
	NaiveBranchCopy bool

	// SaveDeadline bounds the save phase of every tenant's checkpoint
	// epochs and swap-out freezes: a member that cannot barrier in time
	// (crashed, or its notification was lost) aborts the epoch cleanly
	// instead of hanging it. Zero disables straggler detection. Set it
	// before submitting tenants; fault-injected runs should always set
	// it, or a crash mid-epoch leaves the epoch in flight forever.
	SaveDeadline sim.Time

	tenants   []*Session
	byName    map[string]*Session
	nodeOwner map[string]string

	// health and remed are the autonomous health loop (EnableHealth):
	// the failure-detection monitor and the remediation controller its
	// verdicts drive. Both nil until enabled — with health off, no probe
	// events enter the simulation.
	health *health.Monitor
	remed  *remediate.Controller

	// phaseWatch fans a tenant's epoch FSM transitions out to
	// observers (fault injection's "crash during save" trigger).
	phaseWatch map[string][]func(core.Phase)
}

// NewCluster creates a cluster over a hardware pool of the given size.
func NewCluster(pool int, seed int64, policy Policy) *Cluster {
	s := sim.New(seed)
	return &Cluster{
		Seed:       seed,
		S:          s,
		TB:         emulab.NewTestbed(s, pool),
		Sched:      sched.New(s, pool, policy),
		SwapStats:  metrics.NewCounters(),
		Chains:     storage.NewChainStore(),
		byName:     make(map[string]*Session),
		nodeOwner:  make(map[string]string),
		phaseWatch: make(map[string][]func(core.Phase)),
	}
}

// StorageOptions selects the checkpoint-chain storage tier for a
// cluster (see docs/storage.md).
type StorageOptions struct {
	// Backend names the tier: "" or "mem" (legacy in-process store),
	// "disk" (node-local snapshot disk: local seek/bandwidth costs,
	// capacity-bounded, spills to the pool), or "remote" (shared pool
	// over the control LAN with batched puts and per-request round
	// trips).
	Backend string
	// CacheMB sizes the node-local delta cache fronting remotely-homed
	// segments, in MB (0 = no cache).
	CacheMB int64
	// DiskMB caps the disk tier's snapshot-disk budget, in MB
	// (0 = storage.DefaultSnapshotDiskBytes).
	DiskMB int64
}

// ConfigureStorage builds the facility-wide storage tier and delta
// cache from o and wires them into every current and future tenant's
// swap manager. It rejects unknown backend names. Call it before the
// first swap cycle; reconfiguring mid-run would strand placement
// state.
func (c *Cluster) ConfigureStorage(o StorageOptions) error {
	kind, err := storage.ParseBackendKind(o.Backend)
	if err != nil {
		return err
	}
	c.Storage = o
	c.storageBackend = nil
	c.storageCache = nil
	if kind != storage.MemKind {
		if kind == storage.DiskKind {
			c.storageBackend = storage.NewDiskBackend(o.DiskMB << 20)
		} else {
			c.storageBackend = storage.NewBackend(kind)
		}
		if o.CacheMB > 0 {
			c.storageCache = storage.NewDeltaCache(o.CacheMB<<20, c.Chains.Refs)
		}
		// The backend mirrors the chain store's contents: commits (and
		// prune folds, which re-key the base) reach the physical tier,
		// and GC'd epochs leave it — and the cache, so dead segments
		// stop holding capacity against live entries.
		be, cache := c.storageBackend, c.storageCache
		c.Chains.OnStore = func(a storage.Addr, n int64) { be.Put(a, n) }
		c.Chains.OnDrop = func(a storage.Addr, n int64) {
			be.Delete(a)
			if cache != nil {
				cache.Drop(a)
			}
		}
	} else {
		c.Chains.OnStore = nil
		c.Chains.OnDrop = nil
	}
	for _, sess := range c.tenants {
		if sess.Exp != nil && sess.Exp.Swap != nil {
			sess.Exp.Swap.Backend = c.storageBackend
			sess.Exp.Swap.Cache = c.storageCache
		}
	}
	return nil
}

// StorageBackend returns the facility-wide chain tier (nil when the
// legacy in-process store is selected).
func (c *Cluster) StorageBackend() storage.Backend { return c.storageBackend }

// DeltaCache returns the facility-wide delta cache (nil when off).
func (c *Cluster) DeltaCache() *storage.DeltaCache { return c.storageCache }

// swapOptions picks the tenant's park/resume transfer mode. Branch
// tenants restore clone-aware (their chains share a prefix with their
// siblings) unless the naive-copy baseline is selected.
func (c *Cluster) swapOptions(sess *Session) swap.Options {
	if sess != nil && sess.IsBranch() && !c.NaiveBranchCopy {
		return swap.BranchOptions()
	}
	if c.Incremental {
		return swap.IncrementalOptions()
	}
	return swap.DefaultOptions()
}

// parkCost estimates the bytes a stateful park of sess would move right
// now: per node, the memory state to checkpoint (pages dirtied since
// the last resident checkpoint under incremental swapping, the full
// resident image otherwise) plus the live current disk delta. The
// scheduler uses it to price victim selection.
func (c *Cluster) parkCost(sess *Session) int64 {
	if sess.Exp == nil || sess.Exp.Swap == nil {
		return 0
	}
	incremental := c.swapOptions(sess).Incremental
	var total int64
	for _, n := range sess.Exp.Swap.Nodes {
		if incremental && sess.Exp.Swap.Cycle > 0 {
			total += int64(n.HV.K.Dirty.EpochDirty()) * int64(n.HV.P.PageSize)
		} else {
			total += n.HV.K.MemoryImageBytes()
		}
		total += n.Vol.CurrentDeltaBytes(n.IsFree)
	}
	return total
}

// adopt registers a tenant's names; it is also used by the one-tenant
// NewSession path, which bypasses the scheduler.
func (c *Cluster) adopt(sess *Session) {
	c.tenants = append(c.tenants, sess)
	c.byName[sess.Scenario.Spec.Name] = sess
	for _, ns := range sess.Scenario.Spec.Nodes {
		c.nodeOwner[ns.Name] = sess.Scenario.Spec.Name
	}
}

// Submit queues a scenario for admission. The scheduler admits it when
// the pool has room — preempting running tenants by policy if needed —
// and the scenario's Setup runs on first admission. Node names must be
// unique across the cluster (they are control-network identities).
func (c *Cluster) Submit(sc Scenario, priority int) (*Session, error) {
	name := sc.Spec.Name
	if name == "" {
		return nil, fmt.Errorf("emucheck: scenario needs a name")
	}
	if old, dup := c.byName[name]; dup && old.State() != "done" {
		return nil, fmt.Errorf("emucheck: experiment %q already submitted", name)
	}
	for _, ns := range sc.Spec.Nodes {
		if owner, taken := c.nodeOwner[ns.Name]; taken {
			return nil, fmt.Errorf("emucheck: node name %q already used by experiment %q", ns.Name, owner)
		}
	}
	sess := &Session{
		Scenario: sc, Seed: c.Seed, Priority: priority,
		C: c, S: c.S, TB: c.TB,
		Tree: timetravel.NewTree(146 << 30),
	}
	job := &sched.Job{
		Name: name, Need: sc.Spec.NodesNeeded(), Priority: priority,
		Preemptible: sc.Spec.Swappable() || c.Stateless,
		Hooks: sched.Hooks{
			Start: func(done func(error)) { c.startTenant(sess, done) },
		},
	}
	// Only a fully swappable experiment can be parked statefully: with a
	// mixed spec the swap manager would save the swappable subset while
	// the rest kept running on released hardware. The stateless baseline
	// can always park (state is discarded anyway). Leaving the hooks nil
	// turns park attempts into clean scheduler errors.
	if job.Preemptible {
		job.Hooks.Park = func(done func(error)) { c.parkTenant(sess, done) }
		job.Hooks.Resume = func(done func(error)) { c.resumeTenant(sess, done) }
		if !c.Stateless {
			job.Hooks.ParkCost = func() int64 { return c.parkCost(sess) }
		}
	}
	sess.job = job
	if err := c.Sched.Submit(job); err != nil {
		return nil, err
	}
	c.adopt(sess)
	if c.health != nil && !c.health.Watching(name) {
		if err := c.health.Watch(name); err != nil {
			return nil, err
		}
	}
	return sess, nil
}

// watchPhase registers an observer of a tenant's epoch FSM
// transitions (the fault layer's crash-during-save trigger).
func (c *Cluster) watchPhase(name string, fn func(core.Phase)) {
	c.phaseWatch[name] = append(c.phaseWatch[name], fn)
}

// ensureStorage realizes a Storage field set directly (without
// ConfigureStorage) the first time a tenant is wired. An invalid
// backend literal is a programmer error and panics.
func (c *Cluster) ensureStorage() {
	if c.storageBackend != nil || c.storageCache != nil || c.Storage == (StorageOptions{}) {
		return
	}
	if err := c.ConfigureStorage(c.Storage); err != nil {
		panic("emucheck: " + err.Error())
	}
}

// wireTenant attaches cluster-wide services to a freshly instantiated
// experiment: shared swap accounting, the chain store, the storage
// tier and delta cache, the save deadline, and the epoch phase
// fan-out.
func (c *Cluster) wireTenant(sess *Session, exp *emulab.Experiment) {
	sess.Exp = exp
	if exp.Swap != nil {
		c.ensureStorage()
		exp.Swap.Stats = c.SwapStats
		exp.Swap.Chains = c.Chains
		exp.Swap.SaveDeadline = c.SaveDeadline
		exp.Swap.Backend = c.storageBackend
		exp.Swap.Cache = c.storageCache
	}
	name := sess.Scenario.Spec.Name
	exp.Coord.OnPhase = func(_ int, ph core.Phase) {
		for _, fn := range c.phaseWatch[name] {
			fn(ph)
		}
	}
}

// startTenant is the scheduler's first-admission hook: allocate, load
// images, boot, install the workload. Admission plumbing costs the
// paper's fixed eight seconds (§7.2). A spec that cannot instantiate
// fails the admission (the scheduler retires the job) instead of
// taking the testbed down.
func (c *Cluster) startTenant(sess *Session, done func(error)) {
	c.S.DoAfter(swap.NodeSetupTime, "cluster.provision", func() {
		exp, err := c.TB.SwapIn(sess.Scenario.Spec)
		if err != nil {
			sess.LastErr = fmt.Errorf("emucheck: admit %s: %v", sess.Scenario.Spec.Name, err)
			done(sess.LastErr)
			return
		}
		c.wireTenant(sess, exp)
		if sess.Scenario.Setup != nil {
			sess.Scenario.Setup(sess)
		}
		done(nil)
	})
}

// parkTenant swaps a tenant out to free its hardware. Stateful parking
// preserves run-time state on the file server; the stateless baseline
// discards it (keeping only the definition). A swap-out whose freeze
// epoch aborts reports the error upward — the tenant was thawed and
// keeps running on its hardware.
func (c *Cluster) parkTenant(sess *Session, done func(error)) {
	if c.Stateless {
		c.TB.SwapOutStateless(sess.Exp)
		sess.Exp = nil
		c.S.DoAfter(0, "cluster.stateless-out", func() { done(nil) })
		return
	}
	err := sess.Exp.Swap.SwapOut(c.swapOptions(sess), func(_ []*swap.OutReport, serr error) {
		if serr != nil {
			sess.LastErr = serr
			done(serr)
			return
		}
		c.TB.ReleaseHardware(sess.Exp)
		done(nil)
	})
	if err != nil {
		sess.LastErr = err
		done(err)
	}
}

// resumeTenant is the re-admission hook. Stateful: re-acquire hardware
// and swap the preserved state back in (the interruption stays hidden
// behind the temporal firewall). Crash recovery: re-acquire hardware
// and restore from the last committed epoch. Stateless (or after
// Restart discarded the instance): reboot from the golden image — node
// setup plus a Frisbee fetch — and rerun Setup, losing all prior
// progress.
func (c *Cluster) resumeTenant(sess *Session, done func(error)) {
	if c.Stateless || sess.Exp == nil {
		c.S.DoAfter(swap.NodeSetupTime+swap.GoldenFetchTime, "cluster.stateless-in", func() {
			exp, err := c.TB.SwapInByName(sess.Scenario.Spec.Name)
			if err != nil {
				sess.LastErr = fmt.Errorf("emucheck: readmit %s: %v", sess.Scenario.Spec.Name, err)
				done(sess.LastErr)
				return
			}
			c.wireTenant(sess, exp)
			if sess.Scenario.Setup != nil {
				sess.Scenario.Setup(sess)
			}
			done(nil)
		})
		return
	}
	if err := c.TB.AcquireHardware(sess.Exp); err != nil {
		sess.LastErr = fmt.Errorf("emucheck: readmit %s: %v", sess.Scenario.Spec.Name, err)
		done(sess.LastErr)
		return
	}
	fail := func(err error) {
		sess.LastErr = err
		c.TB.ReleaseHardware(sess.Exp)
		done(err)
	}
	if sess.recoverPending {
		sess.recoverPending = false
		err := sess.Exp.Swap.Recover(c.swapOptions(sess), func(_ []*swap.InReport, rerr error) {
			if rerr != nil {
				fail(rerr)
				return
			}
			// The network core restarts alongside the endpoints, and the
			// genealogy notes the recovery: work since the restored epoch
			// is the incarnation's lost work.
			sess.Exp.Coord.ThawDelayNodes()
			sess.recoveries++
			sess.lostWork += sess.pendingLost
			sess.pendingLost = 0
			sess.recoveredAt = c.S.Now()
			if sess.crashedAt > 0 && sess.recoveredAt > sess.crashedAt {
				if r := sess.recoveredAt - sess.crashedAt; r > sess.mttrMax {
					sess.mttrMax = r
				}
			}
			if sess.epochInterval > 0 {
				// The crash stopped the committed-epoch pipeline; the
				// recovered incarnation needs its restore point to keep
				// refreshing, or a second crash loses unbounded work.
				sess.Exp.Swap.StartEpochs(sess.epochInterval)
			}
			done(nil)
		})
		if err != nil {
			fail(err)
		}
		return
	}
	err := sess.Exp.Swap.SwapIn(c.swapOptions(sess), func(_ []*swap.InReport, serr error) {
		if serr != nil {
			fail(serr)
			return
		}
		done(nil)
	})
	if err != nil {
		fail(err)
	}
}

// Park voluntarily swaps a running tenant out (scenario "swap_out"); it
// holds no hardware until Unpark re-queues it.
func (c *Cluster) Park(name string) error { return c.Sched.Park(name) }

// Unpark re-queues a parked tenant for admission ("swap_in").
func (c *Cluster) Unpark(name string) error { return c.Sched.Unpark(name) }

// Touch records tenant activity — the signal the IdleFirst policy
// preempts on the absence of.
func (c *Cluster) Touch(name string) { c.Sched.Touch(name) }

// Finish retires a tenant: its hardware returns to the pool and its
// definition is retained on the testbed.
func (c *Cluster) Finish(name string) error {
	sess, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("emucheck: no experiment %q", name)
	}
	if sess.job != nil {
		switch sess.job.State() {
		case sched.Running, sched.Parked, sched.Queued, sched.Crashed:
		default:
			return fmt.Errorf("emucheck: %q is %s, cannot finish", name, sess.State())
		}
	} else if sess.done {
		return fmt.Errorf("emucheck: %q is already finished", name)
	}
	// Release the testbed hardware before telling the scheduler: the
	// scheduler re-admits the queue head synchronously, and that tenant
	// may need these very nodes.
	freed := 0
	if sess.Exp != nil {
		if sess.Exp.Swap != nil {
			sess.Exp.Swap.StopEpochs()
			// Prune the tenant's checkpoint chains: its references drop,
			// and the store garbage-collects deltas no surviving branch
			// shares. A parent's release leaves forked prefixes alive for
			// its branches; the last release reclaims them.
			sess.Exp.Swap.ReleaseLineages()
		}
		freed = sess.Exp.Allocated()
		c.TB.SwapOutStateless(sess.Exp)
		sess.Exp = nil
	}
	// Free the tenant's node names so its retained definition (or
	// another experiment reusing them) can be submitted again; the
	// session stays registered for state queries and reporting until a
	// resubmission replaces it.
	for _, ns := range sess.Scenario.Spec.Nodes {
		delete(c.nodeOwner, ns.Name)
	}
	if c.health != nil {
		c.health.Unwatch(name)
	}
	if sess.job == nil {
		// Standalone sessions were charged via Reserve; balance the
		// scheduler's ledger too.
		sess.done = true
		c.Sched.Release(freed)
		return nil
	}
	return c.Sched.Finish(name)
}

// Tenant returns a submitted experiment's session by name.
func (c *Cluster) Tenant(name string) *Session { return c.byName[name] }

// Genealogy reports a tenant's fork ancestry, root first. A tenant
// that is not a branch is its own one-element genealogy.
func (c *Cluster) Genealogy(name string) []string {
	var path []string
	for cur := name; cur != ""; {
		path = append([]string{cur}, path...)
		s := c.byName[cur]
		if s == nil {
			break
		}
		cur = s.parentName
	}
	return path
}

// Tenants returns every tenant in submit order.
func (c *Cluster) Tenants() []*Session { return c.tenants }

// RunFor advances the cluster by d of simulated real time.
func (c *Cluster) RunFor(d sim.Time) { c.S.RunFor(d) }

// RunUntilIdle drains every pending event.
func (c *Cluster) RunUntilIdle() { c.S.Run() }

// Now reports simulated real time.
func (c *Cluster) Now() sim.Time { return c.S.Now() }

// Utilization reports the time-averaged fraction of the pool allocated.
func (c *Cluster) Utilization() float64 { return c.Sched.Utilization() }

// Demand reports the summed node demand of the cluster's live jobs —
// the load signal federated admission uses to place tenants on the
// least-loaded facility (internal/federation).
func (c *Cluster) Demand() int { return c.Sched.Demand() }

// Crash fail-stops a tenant: every node dies where it stands (a save
// in flight aborts its epoch; the temporal firewalls engage and never
// disengage on this incarnation), the tenant's hardware returns to the
// pool, and the job leaves service until Recover restores it from its
// last committed checkpoint epoch — or Restart re-runs it from
// scratch. Crashing a parked (swapped-out) tenant is survivable by
// construction: its state already lives on the file server and it
// holds no hardware, so only un-committed progress is at stake.
func (c *Cluster) Crash(name string) error {
	sess, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("emucheck: no experiment %q", name)
	}
	if sess.job == nil {
		return fmt.Errorf("emucheck: %q is standalone; crash/recover needs a scheduler-managed tenant", name)
	}
	// Lost work is fixed at crash time: the gap between the crash and
	// the last committed restore point, floored at the current service
	// entry — a tenant crashed while parked (or queued) loses nothing,
	// since its park committed everything and nothing ran since.
	wasInService := sess.job.State() == sched.Running || sess.job.State() == sched.Parking
	if err := c.Sched.Fail(name); err != nil {
		return fmt.Errorf("emucheck: crash %s: %v", name, err)
	}
	sess.crashedAt = c.S.Now()
	sess.pendingLost = 0
	if wasInService && sess.Exp != nil && sess.Exp.Swap != nil {
		if lc := sess.Exp.Swap.LastCommitAt(); lc > 0 {
			base := lc
			if rs := sess.job.RunningSince(); rs > base {
				base = rs
			}
			if sess.crashedAt > base {
				sess.pendingLost = sess.crashedAt - base
			}
		}
	}
	if sess.Exp != nil {
		// Kill the machines first so the epoch abort's thaw fan-out
		// skips them, then abort whatever epoch was in flight (a held
		// epoch already committed and is left alone — it is exactly the
		// restore point a recovery will use).
		for _, ns := range sess.Exp.Spec.Nodes {
			sess.Exp.Nodes[ns.Name].HV.Crash()
		}
		sess.Exp.Coord.AbortInFlight("node crash")
		for _, dn := range sess.Exp.DelayNodes {
			dn.Freeze()
		}
		if sess.Exp.Swap != nil {
			sess.Exp.Swap.StopEpochs()
		}
		c.TB.ReleaseHardware(sess.Exp)
	}
	return nil
}

// Recover re-admits a crashed tenant and restores it from its last
// committed checkpoint epoch: hardware is re-acquired through the
// scheduler (queueing and preempting like any admission), the file
// server streams each node's memory image and chain replay back, and
// the guests resume from the restored epoch. Work since that epoch is
// lost and accounted in Session.LostWork; the genealogy notes the
// recovery in Session.Recoveries.
func (c *Cluster) Recover(name string) error {
	sess, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("emucheck: no experiment %q", name)
	}
	if sess.job == nil {
		return fmt.Errorf("emucheck: %q is standalone; crash/recover needs a scheduler-managed tenant", name)
	}
	if sess.job.State() != sched.Crashed {
		return fmt.Errorf("emucheck: %q is %s, not crashed", name, sess.State())
	}
	if sess.Exp == nil {
		// Crashed before first admission: nothing was lost; a plain
		// re-queue instantiates it fresh.
		return c.Sched.Recover(name)
	}
	if sess.Exp.Swap == nil {
		return fmt.Errorf("emucheck: %q has no swappable nodes; only Restart can revive it", name)
	}
	if sess.Exp.Swap.LastCommitAt() == 0 {
		return fmt.Errorf("emucheck: %q has no committed epoch to recover from; use Restart (or run StartEpochs before the crash)", name)
	}
	sess.recoverPending = true
	return c.Sched.Recover(name)
}

// Restart revives a crashed tenant from scratch — the classic
// stateless answer to a crash, and the recovery benchmark's baseline:
// the dead instance is discarded (its chains released for GC), and
// re-admission reboots from the golden image and re-runs Setup, losing
// all prior progress.
func (c *Cluster) Restart(name string) error {
	sess, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("emucheck: no experiment %q", name)
	}
	if sess.job == nil {
		return fmt.Errorf("emucheck: %q is standalone; crash/recover needs a scheduler-managed tenant", name)
	}
	if sess.job.State() != sched.Crashed {
		return fmt.Errorf("emucheck: %q is %s, not crashed", name, sess.State())
	}
	if sess.Exp != nil {
		if sess.Exp.Swap != nil {
			sess.Exp.Swap.StopEpochs()
			sess.Exp.Swap.ReleaseLineages()
		}
		c.TB.SwapOutStateless(sess.Exp)
		sess.Exp = nil
	}
	return c.Sched.Recover(name)
}

// InjectFaults arms a seeded fault plan against the cluster: crashes
// route through Crash (with during-save crashes triggered off the
// target's epoch FSM), control-LAN drop/delay perturbations install on
// the testbed bus, and slow-disk / slow-save perturbations reach into
// the named node. The plan is deterministic under its seed, so two
// same-seed faulty runs replay identically.
func (c *Cluster) InjectFaults(p *fault.Plan) {
	slowDisks := make(map[*emulab.ExpNode]int)
	slowSaves := make(map[*xen.Hypervisor]*savedRates)
	p.Arm(c.S, c.TB.Bus, fault.Hooks{
		Crash: func(target, node string) error {
			return c.Crash(target)
		},
		WhenSaving: func(target string, fn func()) {
			fired := false
			c.watchPhase(target, func(ph core.Phase) {
				if fired || ph != core.PhaseSaving {
					return
				}
				fired = true
				fn()
			})
		},
		SlowDisk: func(target, node string, factor float64, d sim.Time) error {
			n, err := c.faultNode(target, node)
			if err != nil {
				return err
			}
			// Divert (1 - 1/factor) of the spindle: factor 4 leaves the
			// request stream a quarter of the bandwidth. Overlapping
			// windows nest: the throttle only clears when the last
			// active window ends.
			slowDisks[n]++
			n.M.Disk.SetThrottle(1 - 1/factor)
			c.S.DoAfter(d, "fault.slow-disk-end", func() {
				slowDisks[n]--
				if slowDisks[n] == 0 {
					n.M.Disk.SetThrottle(0)
				}
			})
			return nil
		},
		SlowSave: func(target, node string, factor float64, d sim.Time) error {
			n, err := c.faultNode(target, node)
			if err != nil {
				return err
			}
			hv := n.HV
			// Overlapping windows nest against the rates captured by the
			// first window, so the last window's end restores the true
			// originals — never a degraded intermediate.
			if slowSaves[hv] == nil {
				slowSaves[hv] = &savedRates{mem: hv.CopyRateMem, net: hv.CopyRateNet}
			}
			sr := slowSaves[hv]
			sr.count++
			hv.CopyRateMem = int64(float64(hv.CopyRateMem) / factor)
			hv.CopyRateNet = int64(float64(hv.CopyRateNet) / factor)
			c.S.DoAfter(d, "fault.slow-save-end", func() {
				sr.count--
				if sr.count == 0 {
					hv.CopyRateMem, hv.CopyRateNet = sr.mem, sr.net
					delete(slowSaves, hv)
				}
			})
			return nil
		},
	})
}

// savedRates remembers a hypervisor's un-degraded copy rates across
// nested slow_save windows.
type savedRates struct {
	mem, net int64
	count    int
}

// faultNode resolves a fault injection's target node.
func (c *Cluster) faultNode(target, node string) (*emulab.ExpNode, error) {
	sess := c.byName[target]
	if sess == nil || sess.Exp == nil {
		return nil, fmt.Errorf("emucheck: %q not in service", target)
	}
	n := sess.Exp.Node(node)
	if n == nil {
		return nil, fmt.Errorf("emucheck: no node %q in %q", node, target)
	}
	return n, nil
}
