// Package ntpsim models NTP clock synchronization over the Emulab
// control network (paper §4.3). The paper relies on NTP because it needs
// no extra hardware; under good LAN conditions it synchronizes clocks to
// ~200 µs.
//
// The model captures the property the evaluation actually exercises:
// discipline *converges*. Each node's clock error starts at a few
// milliseconds after (re)start and decays exponentially toward a steady
// jitter floor. Figure 6's decreasing checkpoint gaps — 5801, 816, 399,
// 330 µs — are two-node skews sampled along exactly this convergence
// curve.
package ntpsim

import (
	"math"
	"math/rand"

	"emucheck/internal/sim"
)

// Model holds the convergence parameters.
type Model struct {
	// InitialErrLo/Hi bound the per-node error amplitude right after the
	// NTP daemon starts (coarse initial step).
	InitialErrLo, InitialErrHi sim.Time
	// Tau is the exponential convergence constant.
	Tau sim.Time
	// FloorLo/Hi bound the steady-state error (the ~200 µs LAN figure).
	FloorLo, FloorHi sim.Time
	// FloorEpoch is how often the steady-state error re-wanders.
	FloorEpoch sim.Time
}

// DefaultModel is calibrated so two-node skew at 5 s after start is a
// few milliseconds and settles near 200 µs total by ~15 s.
func DefaultModel() Model {
	return Model{
		InitialErrLo: 24 * sim.Millisecond,
		InitialErrHi: 40 * sim.Millisecond,
		Tau:          2800 * sim.Millisecond,
		FloorLo:      60 * sim.Microsecond,
		FloorHi:      170 * sim.Microsecond,
		FloorEpoch:   4 * sim.Second,
	}
}

type nodeState struct {
	amp     float64 // initial amplitude, signed
	started sim.Time
	salt    int64
	floors  map[int64]float64 // per-epoch steady error, signed, lazily drawn
}

// Sync models the NTP discipline of a set of nodes against true time.
type Sync struct {
	s     *sim.Simulator
	m     Model
	nodes map[string]*nodeState
	seed  int64
}

// New creates a Sync using the simulation's determinism (a per-node
// seeded stream derived from seed keeps lazily-sampled errors stable).
func New(s *sim.Simulator, m Model, seed int64) *Sync {
	return &Sync{s: s, m: m, nodes: make(map[string]*nodeState), seed: seed}
}

// Start begins disciplining a node's clock at the current time.
func (y *Sync) Start(name string) {
	h := int64(0)
	for _, c := range name {
		h = h*131 + int64(c)
	}
	rng := rand.New(rand.NewSource(y.seed ^ h))
	sign := 1.0
	if rng.Intn(2) == 0 {
		sign = -1
	}
	amp := float64(y.m.InitialErrLo) + rng.Float64()*float64(y.m.InitialErrHi-y.m.InitialErrLo)
	y.nodes[name] = &nodeState{
		amp:     sign * amp,
		started: y.s.Now(),
		salt:    rng.Int63(),
		floors:  make(map[int64]float64),
	}
}

// Started reports whether the node is being disciplined.
func (y *Sync) Started(name string) bool {
	_, ok := y.nodes[name]
	return ok
}

func (n *nodeState) floor(m Model, t sim.Time) float64 {
	epoch := int64(t / m.FloorEpoch)
	if v, ok := n.floors[epoch]; ok {
		return v
	}
	// Draw deterministically from a throwaway source keyed by the
	// node's fixed salt and the epoch, so access order does not matter.
	r := rand.New(rand.NewSource(n.salt ^ epoch*2654435761))
	sign := 1.0
	if r.Intn(2) == 0 {
		sign = -1
	}
	v := sign * (float64(m.FloorLo) + r.Float64()*float64(m.FloorHi-m.FloorLo))
	n.floors[epoch] = v
	return v
}

// ErrorAt reports the signed offset of the node's disciplined clock from
// true time at real time t: local = true + err.
func (y *Sync) ErrorAt(name string, t sim.Time) sim.Time {
	n, ok := y.nodes[name]
	if !ok {
		// Undisciplined clocks are useless for scheduling; make that
		// loudly visible rather than silently perfect.
		return 500 * sim.Millisecond
	}
	age := t - n.started
	if age < 0 {
		age = 0
	}
	decay := n.amp * math.Exp(-float64(age)/float64(y.m.Tau))
	return sim.Time(decay + n.floor(y.m, t))
}

// Error reports the node's current clock error.
func (y *Sync) Error(name string) sim.Time { return y.ErrorAt(name, y.s.Now()) }

// LocalTrigger converts a global scheduled time into the real time at
// which the node's local clock reads that value: the node's timer fires
// when local==T, i.e. at real time T - err — but the error itself is
// evaluated at T, a good approximation for slowly varying discipline.
func (y *Sync) LocalTrigger(name string, globalT sim.Time) sim.Time {
	return globalT - y.ErrorAt(name, globalT)
}

// Skew reports the worst pairwise trigger skew across the given nodes
// for a checkpoint scheduled at global time t.
func (y *Sync) Skew(t sim.Time, names ...string) sim.Time {
	if len(names) == 0 {
		return 0
	}
	lo, hi := sim.Never, sim.Time(-1<<62)
	for _, n := range names {
		tr := y.LocalTrigger(n, t)
		if tr < lo {
			lo = tr
		}
		if tr > hi {
			hi = tr
		}
	}
	return hi - lo
}
