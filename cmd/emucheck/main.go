// Command emucheck is the multi-experiment testbed driver: it loads
// declarative scenario files (fleet of experiments + timed events +
// assertions), validates them, and replays them deterministically on a
// simulated Emulab cluster with a preemptive swap scheduler; it also
// runs the multi-tenancy benchmark comparing stateful against classic
// stateless swapping.
//
// Usage:
//
//	emucheck validate <scenario.json>
//	emucheck run [-json] [-junit file] [-parallel N] <scenario.json>
//	emucheck evalrun [-seed N] [-ticks N] [-json]
//
// Example scenarios live in examples/scenarios/ and are documented in
// docs/scenarios.md. run exits nonzero when any scenario assertion
// fails, so scripted scenarios double as integration checks. evalrun
// compares incremental (dirty-delta), full-copy stateful, and classic
// stateless swapping on an oversubscribed pool.
//
// Scenario files with a "search" stanza run the state-search engine:
// one experiment is checkpointed, forked into a gang-admitted branch
// fan-out sharing its checkpoint prefix by reference, and the report
// includes each branch's explored outcome (see
// examples/scenarios/search.json and docs/branching.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"emucheck/internal/evalrun"
	"emucheck/internal/scenario"
	"emucheck/internal/suite"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: emucheck <command> [flags] [args]

commands:
  validate <scenario.json>   check a scenario file without running it
  run [-json] [-junit file] [-parallel N] <scenario.json>
                             replay a scenario and evaluate its assertions;
                             -junit additionally runs it under the suite's
                             shared invariants and writes JUnit XML, with
                             the run + replay pair executed on up to
                             -parallel workers (report unchanged)
  evalrun [-seed N] [-ticks N] [-json]
                             multi-tenancy benchmark: incremental vs
                             full-copy vs stateless swapping
`)
	os.Exit(2)
}

func loadFile(path string) *scenario.File {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emucheck:", err)
		os.Exit(1)
	}
	f, err := scenario.Parse(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emucheck:", err)
		os.Exit(1)
	}
	return f
}

func cmdValidate(args []string) {
	if len(args) != 1 {
		usage()
	}
	f := loadFile(args[0])
	if errs := scenario.Validate(f); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "invalid:", e)
		}
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d experiments, %d events, %d assertions)\n",
		f.Name, len(f.Experiments), len(f.Events), len(f.Assertions))
}

// junitReport runs one scenario under the suite's shared invariants
// and renders the single-case JUnit XML the -junit flag writes. It
// reuses the suite's writer so emucheck and emusuite emit the same
// format for the same run. workers bounds how many of the scenario's
// two executions (run + replay-digest re-run) proceed concurrently.
func junitReport(f *scenario.File, source string, workers int) ([]byte, suite.RunReport, error) {
	rr := suite.RunOneParallel(f, source, workers)
	rep := &suite.Report{Schema: suite.Schema, Runs: []suite.RunReport{rr}}
	if rr.Pass {
		rep.Passed = 1
	} else {
		rep.Failed = 1
	}
	data, err := rep.JUnit("emucheck")
	return data, rr, err
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	junitPath := fs.String("junit", "", "run under the suite invariants and write JUnit XML to this file")
	parallel := fs.Int("parallel", 0, "with -junit: max concurrent executions of the run + replay pair (0 = GOMAXPROCS, 1 = serial)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	var res *scenario.Result
	if *junitPath != "" {
		// The suite runner replays the scenario for its determinism
		// invariant, so the JUnit verdict covers more than the plain run.
		data, rr, err := junitReport(loadFile(fs.Arg(0)), fs.Arg(0), *parallel)
		if err == nil {
			err = os.WriteFile(*junitPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "emucheck:", err)
			os.Exit(1)
		}
		if rr.Error != "" {
			fmt.Fprintln(os.Stderr, "emucheck:", rr.Error)
			os.Exit(1)
		}
		res = rr.Result
		res.Pass = rr.Pass // fold invariant failures into the exit code
	} else {
		var err error
		res, err = scenario.Run(loadFile(fs.Arg(0)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "emucheck:", err)
			os.Exit(1)
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "emucheck:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(res.Render())
	}
	if !res.Pass {
		os.Exit(1)
	}
}

func cmdEvalrun(args []string) {
	fs := flag.NewFlagSet("evalrun", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	ticks := fs.Int64("ticks", 0, "work per tenant in 100 ms ticks (0 = default 900)")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	fs.Parse(args)
	r := evalrun.Timeshare(*seed, *ticks)
	if *asJSON {
		out, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "emucheck:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Println("== Multi-tenancy: incremental vs full-copy vs stateless swapping ==")
	fmt.Print(r.Render())
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "validate":
		cmdValidate(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "evalrun":
		cmdEvalrun(os.Args[2:])
	default:
		usage()
	}
}
