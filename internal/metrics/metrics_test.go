package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"emucheck/internal/sim"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x")
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(3, 30)
	if s.Len() != 3 {
		t.Fatal("len")
	}
	if s.Mean() != 20 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != 10 || s.Max() != 30 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	sub := s.Between(2, 3)
	if sub.Len() != 1 || sub.Samples[0].V != 20 {
		t.Fatalf("between: %+v", sub.Samples)
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("e")
	if s.Mean() != 0 {
		t.Fatal("empty mean")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatal("empty min/max sentinels")
	}
	if got := InterArrivals(s); got != nil {
		t.Fatal("empty interarrivals")
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{5, 1, 3, 2, 4}
	if Percentile(vs, 0) != 1 {
		t.Fatal("p0")
	}
	if Percentile(vs, 100) != 5 {
		t.Fatal("p100")
	}
	if Percentile(vs, 50) != 3 {
		t.Fatalf("p50 = %v", Percentile(vs, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("nil input")
	}
	// Percentile must not mutate its input.
	if vs[0] != 5 {
		t.Fatal("input mutated")
	}
}

func TestPropertyPercentileBounds(t *testing.T) {
	f := func(raw []float64, p uint8) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return true
		}
		got := Percentile(vs, float64(p%101))
		c := append([]float64(nil), vs...)
		sort.Float64s(c)
		return got >= c[0] && got <= c[len(c)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{2, 2, 2}) != 0 {
		t.Fatal("constant stddev")
	}
	if Stddev([]float64{1}) != 0 {
		t.Fatal("single value")
	}
	got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

func TestFractionWithin(t *testing.T) {
	vs := []float64{10, 10.5, 11, 20}
	if got := FractionWithin(vs, 10, 1); got != 0.75 {
		t.Fatalf("fraction = %v", got)
	}
	if FractionWithin(nil, 0, 1) != 0 {
		t.Fatal("nil input")
	}
}

func TestThroughputWindows(t *testing.T) {
	ev := NewSeries("bytes")
	// 1 MiB at t=0, 1 MiB at t=0.5s, 2 MiB at t=1.2s
	ev.Add(0, 1<<20)
	ev.Add(500*sim.Millisecond, 1<<20)
	ev.Add(1200*sim.Millisecond, 2<<20)
	th := Throughput(ev, sim.Second)
	if th.Len() != 2 {
		t.Fatalf("windows = %d", th.Len())
	}
	if th.Samples[0].V != 2 { // 2 MiB over 1 s
		t.Fatalf("w0 = %v", th.Samples[0].V)
	}
	if th.Samples[1].V != 2 {
		t.Fatalf("w1 = %v", th.Samples[1].V)
	}
	if Throughput(NewSeries("e"), sim.Second).Len() != 0 {
		t.Fatal("empty events")
	}
}

func TestInterArrivals(t *testing.T) {
	s := NewSeries("x")
	s.Add(10, 0)
	s.Add(30, 0)
	s.Add(35, 0)
	got := InterArrivals(s)
	if len(got) != 2 || got[0] != 20 || got[1] != 5 {
		t.Fatalf("interarrivals = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Observe(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // 2
		t.Fatalf("bucket1 = %d", h.Buckets[1])
	}
	if h.Buckets[4] != 1 { // 9.99
		t.Fatalf("bucket4 = %d", h.Buckets[4])
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"op", "MB/s"}}
	tb.AddRow("write", 62.5)
	tb.AddRow("read", 70)
	out := tb.String()
	if !strings.Contains(out, "write") || !strings.Contains(out, "62.50") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestPropertyMeanWithinRange(t *testing.T) {
	f := func(raw []float64) bool {
		vs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return Mean(vs) == 0
		}
		m := Mean(vs)
		c := append([]float64(nil), vs...)
		sort.Float64s(c)
		return m >= c[0]-1e-6 && m <= c[len(c)-1]+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
