package fault

import (
	"fmt"
	"testing"

	"emucheck/internal/notify"
	"emucheck/internal/sim"
)

func TestCrashInjectionFiresAtTime(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	var crashedAt sim.Time
	p := &Plan{Injections: []Injection{{Kind: Crash, At: 10 * sim.Second, Target: "e1", Node: "e1a"}}}
	p.Arm(s, bus, Hooks{Crash: func(target, node string) error {
		if target != "e1" || node != "e1a" {
			t.Errorf("crash hook got %s/%s", target, node)
		}
		crashedAt = s.Now()
		return nil
	}})
	s.Run()
	if crashedAt != 10*sim.Second || p.Crashes != 1 {
		t.Fatalf("crash at %v (count %d), want 10s", crashedAt, p.Crashes)
	}
}

func TestCrashDuringSaveWaitsForSavePhase(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	var saveWatcher func()
	crashed := false
	p := &Plan{Injections: []Injection{{Kind: Crash, At: 5 * sim.Second, Target: "e1", DuringSave: true}}}
	p.Arm(s, bus, Hooks{
		Crash:      func(string, string) error { crashed = true; return nil },
		WhenSaving: func(target string, fn func()) { saveWatcher = fn },
	})
	s.RunFor(20 * sim.Second)
	if crashed {
		t.Fatal("crashed before any save phase")
	}
	if saveWatcher == nil {
		t.Fatal("plan never armed the save watcher")
	}
	saveWatcher() // the target's epoch FSM enters saving
	if !crashed || p.Crashes != 1 {
		t.Fatal("crash did not fire on the save phase")
	}
}

func TestDropBudgetAndWindow(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	p := &Plan{Injections: []Injection{{
		Kind: Drop, At: 10 * sim.Second, Target: "e1", Count: 2, Window: 20 * sim.Second,
	}}}
	p.Arm(s, bus, Hooks{})

	var delivered int
	bus.Subscribe(notify.TopicCheckpoint, func(*notify.Msg) { delivered++ })
	publish := func() {
		bus.Publish(&notify.Msg{Topic: notify.TopicCheckpoint, Scope: "e1"})
	}
	// Before the window: delivered.
	s.RunFor(5 * sim.Second)
	publish()
	// Inside: the budget eats two.
	s.RunFor(10 * sim.Second)
	publish()
	publish()
	publish() // budget spent: delivered
	// Past the window: delivered.
	s.RunFor(30 * sim.Second)
	publish()
	s.Run()
	if delivered != 3 || p.Dropped != 2 || bus.Dropped != 2 {
		t.Fatalf("delivered %d (plan dropped %d, bus dropped %d); want 3/2/2", delivered, p.Dropped, bus.Dropped)
	}
	st := bus.Topic(notify.TopicCheckpoint)
	if st.Published != 5 || st.Delivered != 3 || st.Dropped != 2 {
		t.Fatalf("topic stats %+v", st)
	}
}

func TestDropScopeAndOwnerFilter(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	p := &Plan{Injections: []Injection{{
		Kind: Drop, At: 0, Target: "e1", Node: "e1b", Count: 99, Window: sim.Hour,
	}}}
	p.Arm(s, bus, Hooks{})
	got := map[string]int{}
	for _, owner := range []string{"e1a", "e1b"} {
		owner := owner
		bus.SubscribeOwned(notify.TopicCheckpoint, owner, func(*notify.Msg) { got[owner]++ })
	}
	bus.Publish(&notify.Msg{Topic: notify.TopicCheckpoint, Scope: "e1"})
	bus.Publish(&notify.Msg{Topic: notify.TopicCheckpoint, Scope: "e2"}) // other scope: untouched
	s.Run()
	if got["e1a"] != 2 || got["e1b"] != 1 {
		t.Fatalf("owner-filtered drop: %v (want e1a=2, e1b=1)", got)
	}
}

func TestDelayAddsLatencyDeterministically(t *testing.T) {
	deliverAt := func(seed int64) sim.Time {
		s := sim.New(3)
		bus := notify.NewBus(s)
		bus.JitterMax = 0
		p := &Plan{Seed: seed, Injections: []Injection{{
			Kind: Delay, At: 0, Target: "e1", Window: sim.Hour,
		}}}
		p.Arm(s, bus, Hooks{})
		var at sim.Time
		bus.Subscribe(notify.TopicCheckpoint, func(*notify.Msg) { at = s.Now() })
		bus.Publish(&notify.Msg{Topic: notify.TopicCheckpoint, Scope: "e1"})
		s.Run()
		if p.Delayed != 1 {
			t.Fatalf("delay not applied")
		}
		return at
	}
	base := deliverAt(7)
	if base <= notify.NewBus(sim.New(1)).BaseLatency {
		t.Fatalf("no extra latency: %v", base)
	}
	if deliverAt(7) != base {
		t.Fatal("same-seed delay jitter diverged")
	}
	if deliverAt(8) == base {
		t.Log("different seeds happened to collide; acceptable but unusual")
	}
}

func TestSlowInjectionsRouteToHooks(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	var calls []string
	hook := func(kind string) func(string, string, float64, sim.Time) error {
		return func(target, node string, factor float64, d sim.Time) error {
			calls = append(calls, fmt.Sprintf("%s:%s/%s f=%.0f d=%v", kind, target, node, factor, d))
			return nil
		}
	}
	p := &Plan{Injections: []Injection{
		{Kind: SlowDisk, At: sim.Second, Target: "e1", Node: "e1a", Factor: 8, Window: 10 * sim.Second},
		{Kind: SlowSave, At: 2 * sim.Second, Target: "e1", Node: "e1b"},
	}}
	p.Arm(s, bus, Hooks{SlowDisk: hook("disk"), SlowSave: hook("save")})
	s.Run()
	if len(calls) != 2 || p.Slowed != 2 {
		t.Fatalf("calls %v", calls)
	}
	if calls[0] != "disk:e1/e1a f=8 d=10s" {
		t.Fatalf("slow_disk call %q", calls[0])
	}
	if calls[1] != "save:e1/e1b f=4 d=30s" { // defaulted factor and window
		t.Fatalf("slow_save call %q", calls[1])
	}
}

func TestRejectedInjectionRecordedNotFatal(t *testing.T) {
	s := sim.New(1)
	bus := notify.NewBus(s)
	p := &Plan{Injections: []Injection{{Kind: Crash, At: sim.Second, Target: "ghost"}}}
	p.Arm(s, bus, Hooks{Crash: func(string, string) error { return fmt.Errorf("no such tenant") }})
	s.Run()
	if p.Crashes != 0 || len(p.Errors) != 1 {
		t.Fatalf("crashes=%d errors=%v", p.Crashes, p.Errors)
	}
}
