// Package swap implements stateful swapping (paper §5, §7.2): swapping
// an experiment out of the testbed without losing its run-time state,
// and swapping it back in with the entire period of inactivity concealed
// from the experiment.
//
// Swap-out pipeline (per node, overlapped with execution):
//  1. Eager pre-copy: the current disk delta (after free-block
//     elimination) streams to the file server under the rate limiter
//     while the guest keeps running.
//  2. A coordinated transparent checkpoint freezes the experiment and
//     streams memory images over the control network (HoldResume).
//  3. Blocks re-dirtied during pre-copy are flushed.
//  4. Offline, the server merges the current delta into the aggregated
//     delta, reordering to restore locality (§5.3).
//
// Swap-in pipeline:
//  1. Fetch the golden image unless cached (Frisbee-style, ~60 s flat).
//  2. Download memory images; node setup/boot plumbing is a constant.
//  3. Disk state arrives either eagerly (full aggregated delta before
//     resume — swap-in time grows with accumulated history) or lazily
//     (demand-paged plus rate-limited background fill — constant
//     swap-in time); this is §7.2's 150 s-vs-35 s comparison.
//
// Incremental mode (Options.Incremental) moves only deltas: swap-out
// uploads the blocks and memory pages dirtied since the experiment's
// last resident checkpoint and commits them to a per-node lineage
// (storage.Lineage); swap-in reconstructs state by replaying base +
// delta chain, with chains pruned/merged past a depth bound so replay
// cost stays flat. Per-node uploads pipeline through bandwidth-shared
// parallel streams (xfer.Server.StreamUpload) instead of serialized
// full copies, so preemption cost is proportional to dirtied state.
package swap

import (
	"fmt"

	"emucheck/internal/core"
	"emucheck/internal/metrics"
	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
	"emucheck/internal/xen"
	"emucheck/internal/xfer"
)

// rawRegion is a byte-addressed window onto a disk region, used to land
// delta-image bytes in the COW log area without re-entering the COW
// translation layer.
type rawRegion struct {
	d    *node.Disk
	base int64
}

func (r rawRegion) Read(off, n int64, done func()) {
	r.d.Submit(&node.DiskRequest{Op: node.Read, LBA: r.base + off, Bytes: n, Done: done})
}

func (r rawRegion) Write(off, n int64, done func()) {
	r.d.Submit(&node.DiskRequest{Op: node.Write, LBA: r.base + off, Bytes: n, Done: done})
}

// GoldenFetchTime models Frisbee multicast disk imaging of the base
// image onto a node (§7.2: "an additional 60 seconds to download it").
const GoldenFetchTime = 60 * sim.Second

// NodeSetupTime is the fixed swap-in plumbing: allocation, VLANs, VM
// creation (§7.2: the initial swap-in took eight seconds).
const NodeSetupTime = 8 * sim.Second

// Node is one swappable experiment node.
type Node struct {
	Name string
	HV   *xen.Hypervisor
	Vol  *storage.Volume
	// IsFree is the free-block plugin hook (nil disables elimination).
	IsFree func(vba int64) bool

	// Server-side state accumulated across swap cycles.
	AggBytesOnServer int64
	MemImageBytes    int64
	GoldenCached     bool

	// Resident tracks which content-addressed chain segments are
	// already staged on the node's disk (by the branch fan-out's
	// multicast, or left there by the node's own earlier cycles — the
	// delta-image analogue of GoldenCached). A clone-aware restore
	// transfers only the segments missing from this set.
	Resident map[storage.Addr]bool

	lazy *xfer.LazyMirror
}

// MarkResident records the lineage's current chain segments as staged
// on the node's disk.
func (n *Node) MarkResident(lin *storage.Lineage) {
	if n.Resident == nil {
		n.Resident = make(map[storage.Addr]bool)
	}
	for _, seg := range lin.Segments() {
		n.Resident[seg.Addr] = true
	}
}

// OutReport describes one swap-out.
type OutReport struct {
	Started  sim.Time
	Finished sim.Time
	// PreCopyBytes streamed while the experiment was still running.
	PreCopyBytes int64
	// ResidualBytes were re-dirtied during pre-copy and flushed frozen.
	ResidualBytes int64
	// MemoryBytes is the memory image moved to the server: the full
	// resident set, or just the dirty delta in incremental mode.
	MemoryBytes int64
	MergedBytes int64
	Checkpoint  *core.Result
	// Incremental marks a dirty-delta swap-out committed to the lineage.
	Incremental bool
	// ChainDepth is the lineage chain length after this commit.
	ChainDepth int
}

// Duration reports the wall time of the swap-out.
func (r *OutReport) Duration() sim.Time { return r.Finished - r.Started }

// InReport describes one swap-in.
type InReport struct {
	Started  sim.Time
	Finished sim.Time // experiment running again
	Lazy     bool
	// GoldenFetched marks a cold golden-image download.
	GoldenFetched bool
	// DeltaBytes is the disk state staged for the node: the merged
	// aggregated delta, or the base + delta chain replay in incremental
	// mode.
	DeltaBytes  int64
	MemoryBytes int64
	// BackgroundDone is when lazy background fill completed (lazy only).
	BackgroundDone sim.Time
	// Incremental marks a lineage-replay swap-in.
	Incremental bool
	// ChainDepth is the number of chain epochs replayed over the base.
	ChainDepth int
	// CachedBytes is the replay state served off node-local media — the
	// delta cache plus the snapshot-disk tier — without re-streaming
	// over the control LAN (tiered storage only).
	CachedBytes int64
	// RemoteBytes is the replay state that had to stream from the
	// shared pool (tiered storage only).
	RemoteBytes int64
}

// Duration reports time until the experiment was running again.
func (r *InReport) Duration() sim.Time { return r.Finished - r.Started }

// Options tunes a swap cycle.
type Options struct {
	// PreCopy enables eager pre-copy during swap-out (default on via
	// DefaultOptions).
	PreCopy bool
	// RateLimit caps background transfer bytes/sec (0 = unthrottled).
	RateLimit int64
	// Lazy enables lazy copy-in at swap-in.
	Lazy bool
	// Incremental enables the dirty-delta pipeline: swap-out moves only
	// state dirtied since the last resident checkpoint (memory via the
	// hypervisor's incremental save, disk via the current-delta epoch)
	// and commits it to the per-node lineage; swap-in replays base +
	// delta chain. Uploads go through bandwidth-shared parallel streams.
	Incremental bool
	// CloneAware (implies Incremental) makes restores consult the
	// node's resident-segment set: swap-in downloads only the
	// content-addressed chain segments not already staged on the node
	// (by a branch fan-out's multicast or the node's own prior cycles),
	// and swap cycles keep the set current. This is the branch-tenant
	// restore path; plain tenants keep the unconditional replay.
	CloneAware bool
}

// DefaultOptions enables pre-copy, lazy copy-in, and the paper's
// rate-limited background transfer — the full-copy baseline: the whole
// resident memory image moves on every swap-out and the whole
// aggregated delta on every swap-in.
func DefaultOptions() Options {
	return Options{PreCopy: true, RateLimit: 10 << 20, Lazy: true}
}

// IncrementalOptions is DefaultOptions plus the dirty-delta pipeline.
func IncrementalOptions() Options {
	o := DefaultOptions()
	o.Incremental = true
	return o
}

// BranchOptions is IncrementalOptions plus clone-aware restore — the
// transfer mode of branch tenants, whose chains share a checkpoint
// prefix with their siblings.
func BranchOptions() Options {
	o := IncrementalOptions()
	o.CloneAware = true
	return o
}

// Manager orchestrates swap cycles for one experiment.
type Manager struct {
	S      *sim.Simulator
	Server *xfer.Server
	Coord  *core.Coordinator
	Nodes  []*Node

	// Tag attributes this experiment's control-LAN bytes on the shared
	// file server, so cross-experiment contention is accountable.
	Tag string

	// ServerMergeRate models the offline server-side delta merge.
	ServerMergeRate int64

	// MaxChainDepth bounds each node's checkpoint lineage; incremental
	// commits past it merge the oldest epochs into the base
	// (0 = storage.DefaultMaxDepth).
	MaxChainDepth int

	// Chains, when set, is the facility-wide refcounted chain store new
	// lineages are created in, so branches forked from this experiment's
	// checkpoints share base and common deltas by reference (and
	// content-identical commits across tenants deduplicate). Unset, each
	// lineage gets a private store.
	Chains *storage.ChainStore

	// Stats, when set, accumulates delta/full byte counts per transfer
	// class ("out.mem_bytes", "out.delta_bytes", "in.mem_bytes",
	// "in.disk_bytes", "merged_bytes", "out.epoch_bytes") for reports
	// and assertions. Tiered storage adds chain-placement classes:
	// "storage.remote_bytes" (chain state crossing the control LAN to
	// or from the shared pool), "storage.local_bytes" (chain state
	// served or stored on node-local media), "storage.cache_hit_bytes"
	// (restores served off the delta cache), and "storage.spill_bytes"
	// (snapshot-disk overflow pushed to the pool).
	Stats *metrics.Counters

	// Backend, when set, selects the physical tier committed
	// checkpoint-chain segments live on (storage.DiskKind: the
	// node-local snapshot disk; storage.RemoteKind: the shared pool
	// with per-request round trips and batched puts). Nil — or a
	// storage.MemKind backend — keeps the legacy pipeline byte for
	// byte. Set it before the first swap cycle.
	Backend storage.Backend

	// Cache is the node-local delta cache fronting remotely-homed
	// chain segments: restores consult it first and only the misses
	// stream from the pool; commits and prefetches fill it. Nil
	// disables caching. Only meaningful with a tiered Backend.
	Cache *storage.DeltaCache

	// SaveDeadline bounds the save phase of this experiment's swap-out
	// checkpoints and committed epochs: a member that cannot barrier in
	// time (crashed, or its notification was lost) aborts the epoch
	// instead of hanging it. Zero disables straggler detection.
	SaveDeadline sim.Time

	// OnCommit, if set, observes every completed epoch commit (swap-out
	// or CommitEpoch) once the state is durable on the file server —
	// the hook recovery benchmarks use to snapshot workload progress at
	// the restore point.
	OnCommit func()

	swappedOut bool

	// Cycle counts completed swap-outs.
	Cycle int

	// lastCommitAt is when the experiment's state last became durably
	// recoverable on the file server (a completed swap-out or epoch
	// commit); zero means never.
	lastCommitAt sim.Time

	// epochLoop drives the periodic committed-epoch pipeline.
	epochLoop *core.PeriodicCheckpointer

	// commitsInFlight counts CommitEpoch calls whose uploads have not
	// landed; a swap-out's freeze waits for them so a stale captured
	// epoch can never append after the park's newer one.
	commitsInFlight int

	// lineages holds each node's server-side checkpoint chain.
	lineages map[string]*storage.Lineage
	// lastSwapEpoch is the coordinator epoch of the last swap-out
	// checkpoint: an incremental memory save is only sound if no other
	// checkpoint consumed the dirty log since (otherwise the delta on
	// the server would miss pages saved to the scratch disk instead).
	lastSwapEpoch int
}

// NewManager builds a swap manager over the coordinator's members.
func NewManager(s *sim.Simulator, server *xfer.Server, coord *core.Coordinator, nodes []*Node) *Manager {
	return &Manager{
		S: s, Server: server, Coord: coord, Nodes: nodes,
		ServerMergeRate: 45 << 20,
		lineages:        make(map[string]*storage.Lineage),
	}
}

// Lineage returns (creating on first use) the named node's checkpoint
// chain. A stand-alone manager (no cluster chain store) mirrors its
// private store straight onto the tier, so prune folds — which re-key
// the base — and GC reach the backend and the cache without cluster
// wiring.
func (m *Manager) Lineage(name string) *storage.Lineage {
	l, ok := m.lineages[name]
	if !ok {
		if m.Chains != nil {
			l = m.Chains.NewLineage(m.MaxChainDepth)
		} else {
			cs := storage.NewChainStore()
			if m.Backend != nil {
				be, cache := m.Backend, m.Cache
				cs.OnStore = func(a storage.Addr, n int64) { be.Put(a, n) }
				cs.OnDrop = func(a storage.Addr, n int64) {
					be.Delete(a)
					if cache != nil {
						cache.Drop(a)
					}
				}
			}
			l = cs.NewLineage(m.MaxChainDepth)
		}
		m.lineages[name] = l
	}
	return l
}

// AdoptLineage installs a pre-built chain as the named node's lineage —
// the branch fork path: the hosting cluster forks the parent node's
// lineage (sharing base + common deltas by reference) and hands the
// fork to the branch's manager, so the branch's own swap cycles append
// branch-private epochs.
func (m *Manager) AdoptLineage(name string, l *storage.Lineage) {
	m.lineages[name] = l
}

// Lineages returns the manager's live per-node chain index, keyed by
// node name; nodes that never committed are absent. Map iteration
// order is undefined — callers must only aggregate over it (sums,
// lookups), never derive ordered output, and must not mutate it.
func (m *Manager) Lineages() map[string]*storage.Lineage { return m.lineages }

// ReleaseLineages prunes every node's chain: refs drop, and deltas no
// branch can reach any more are garbage-collected by the store.
func (m *Manager) ReleaseLineages() {
	for _, n := range m.Nodes {
		if l, ok := m.lineages[n.Name]; ok {
			l.Release()
		}
	}
}

// stat accumulates into the optional counter set.
func (m *Manager) stat(name string, n int64) {
	if m.Stats != nil {
		m.Stats.Add(name, n)
	}
}

// tiered reports whether chain state goes through the pluggable
// storage tiers. Nil backend and the mem tier keep the legacy
// single-stream pipeline unchanged.
func (m *Manager) tiered() bool {
	return m.Backend != nil && m.Backend.Kind() != storage.MemKind
}

// localTier reports whether committed chain state lands on the
// node-local snapshot disk (no control-LAN crossing).
func (m *Manager) localTier() bool {
	return m.Backend != nil && m.Backend.Kind() == storage.DiskKind
}

// chainPlan partitions one lineage's replay chain across the storage
// tiers for a restore: segments already resident on the target node
// are skipped, cache hits and snapshot-disk segments serve locally,
// and only the remainder streams from the shared pool.
type chainPlan struct {
	// total is the replay state to stage; cached the part served off
	// the delta cache, local the part read off the snapshot disk,
	// remote the part streamed from the pool.
	total, cached, local, remote int64
	// cost is the node-local medium time (cache reads, disk reads,
	// pool round trips) the staging pays on top of the streaming.
	cost   sim.Time
	misses []storage.Segment

	fetched bool
	waiters []func()
}

// planChain builds the restore plan, charging the cache's hit/miss
// ledger as it goes. resident, when non-nil, is the clone-aware
// resident-segment filter.
func (m *Manager) planChain(lin *storage.Lineage, resident map[storage.Addr]bool) *chainPlan {
	p := &chainPlan{}
	for _, seg := range lin.Segments() {
		if seg.Bytes <= 0 {
			continue
		}
		if resident != nil && resident[seg.Addr] {
			continue
		}
		p.total += seg.Bytes
		if m.Cache != nil {
			if _, ok := m.Cache.Get(seg.Addr); ok {
				p.cached += seg.Bytes
				p.cost += m.Cache.ReadCost(seg.Bytes)
				continue
			}
			m.Cache.MissBytes(seg.Bytes)
		}
		if m.localTier() && m.Backend.Has(seg.Addr) {
			p.local += seg.Bytes
			p.cost += m.Backend.ReadCost(seg.Bytes)
			continue
		}
		// Remotely homed: the pool streams it over the shared pipe
		// (spilled snapshot-disk overflow included), plus the pool's
		// per-request round trip on the remote tier.
		p.remote += seg.Bytes
		if m.Backend.Kind() == storage.RemoteKind {
			p.cost += m.Backend.ReadCost(seg.Bytes)
		}
		p.misses = append(p.misses, seg)
	}
	return p
}

// prefetch starts streaming the plan's remote misses from the pool as
// one batched get — overlapped with golden fetch, node setup and the
// memory download — and fills the delta cache as they land. Staging
// legs wait on it.
func (p *chainPlan) prefetch(m *Manager) {
	sizes := make([]int64, len(p.misses))
	for i, seg := range p.misses {
		sizes[i] = seg.Bytes
	}
	m.Server.StreamDownloadBatch(m.Tag, sizes, func(int64) {
		if m.Cache != nil {
			for _, seg := range p.misses {
				m.Cache.Put(seg.Addr, seg.Bytes)
			}
		}
		p.fetched = true
		ws := p.waiters
		p.waiters = nil
		for _, w := range ws {
			w()
		}
	})
}

// wait runs fn once the prefetch has drained (immediately if done).
func (p *chainPlan) wait(fn func()) {
	if p.fetched {
		fn()
		return
	}
	p.waiters = append(p.waiters, fn)
}

// placeEpoch records a lineage's newest committed epoch on the
// physical tier and fills the delta cache for remotely-homed content.
// It returns the bytes that must spill to the shared pool because the
// snapshot disk is over its capacity budget.
func (m *Manager) placeEpoch(lin *storage.Lineage) int64 {
	segs := lin.Segments()
	seg := segs[len(segs)-1]
	if seg.Bytes <= 0 {
		return 0
	}
	// A cluster-wired ChainStore already mirrored the commit onto the
	// backend through its OnStore hook; the direct Put covers managers
	// wired stand-alone.
	onTier := m.Backend.Has(seg.Addr) || m.Backend.Put(seg.Addr, seg.Bytes)
	if m.Cache != nil && (!onTier || m.Backend.Kind() == storage.RemoteKind) {
		// Remotely homed (pool tier, or snapshot-disk overflow): the
		// freshest epoch is the hottest restore content — cache it.
		m.Cache.Put(seg.Addr, seg.Bytes)
	}
	if onTier {
		return 0
	}
	return seg.Bytes
}

// SwappedOut reports whether the experiment is currently swapped out.
func (m *Manager) SwappedOut() bool { return m.swappedOut }

// anyCrashed reports whether any node has fail-stopped — commit and
// swap-out completions consult it so state destroyed by a crash is
// never marked durable.
func (m *Manager) anyCrashed() bool {
	for _, n := range m.Nodes {
		if n.HV.Crashed() {
			return true
		}
	}
	return false
}

// LastCommitAt reports when the experiment's state last became durably
// recoverable on the file server (zero: never). The gap between a crash
// and this instant is the work a recovery loses.
func (m *Manager) LastCommitAt() sim.Time { return m.lastCommitAt }

// SwapOut swaps the experiment out; done receives one report per node,
// or the error that aborted the swap-out (an epoch failure mid-freeze:
// the experiment was thawed and keeps running; nothing was released).
func (m *Manager) SwapOut(o Options, done func([]*OutReport, error)) error {
	if m.swappedOut {
		return fmt.Errorf("swap: already swapped out")
	}
	start := m.S.Now()
	reports := make([]*OutReport, len(m.Nodes))
	cuts := make([]int, len(m.Nodes))
	for i, n := range m.Nodes {
		reports[i] = &OutReport{Started: start, Incremental: o.Incremental}
		cuts[i] = n.Vol.Cur.Slots()
	}
	// An incremental memory save needs a base on the server (one prior
	// swap-out) and an unbroken dirty log: an intermediate checkpoint to
	// the scratch disk consumed pages the server never saw, so fall back
	// to a full save when the coordinator epoch moved underneath us.
	incrMem := o.Incremental && m.Cycle > 0 && m.Coord.Epoch() == m.lastSwapEpoch

	var ckpt func()
	ckpt = func() {
		if m.Coord.Held() {
			// A HoldResume checkpoint parked the experiment and only an
			// explicit ResumeHeld will clear it — waiting would spin
			// forever.
			done(nil, fmt.Errorf("swap: cannot swap out: a held checkpoint awaits ResumeHeld"))
			return
		}
		if m.Coord.Busy() || m.commitsInFlight > 0 {
			// A periodic (or scripted) checkpoint — or an epoch commit
			// still uploading — is mid-flight; the swap-out's freeze
			// queues behind it rather than failing: the preempting
			// scheduler must not crash a checkpointing tenant, and the
			// park's lineage epoch must append after (never interleave
			// with) an in-flight commit's.
			m.S.DoAfter(500*sim.Millisecond, "swap.ckpt-wait", ckpt)
			return
		}
		err := m.Coord.Checkpoint(core.Options{
			Target:       xen.ToControlNet,
			HoldResume:   true,
			Incremental:  incrMem,
			SaveDeadline: m.SaveDeadline,
		}, func(res *core.Result, cerr error) {
			if cerr != nil {
				// The freeze epoch aborted (a member failed or straggled):
				// the coordinator thawed whatever froze, so the experiment
				// keeps running and the park reports failure upward.
				done(nil, cerr)
				return
			}
			m.afterFreeze(o, res, reports, cuts, done)
		})
		if err != nil {
			done(nil, fmt.Errorf("swap: %v", err))
		}
	}

	if !o.PreCopy {
		ckpt()
		return nil
	}
	// Eager pre-copy of every node's live current delta, in parallel.
	// The full-copy path serializes the bytes FIFO through the shared
	// server pipe; incremental mode pipelines them as bandwidth-shared
	// streams so one node's delta never queues behind another's.
	remaining := len(m.Nodes)
	for i, n := range m.Nodes {
		i, n := i, n
		bytes := n.Vol.CurrentDeltaBytes(n.IsFree)
		finish := func(moved int64) {
			reports[i].PreCopyBytes = moved
			remaining--
			if remaining == 0 {
				ckpt()
			}
		}
		if o.Incremental {
			m.streamOut(o, n.Vol.Disk, bytes, finish)
			continue
		}
		c := xfer.NewCopier(m.S, n.Vol.Disk, m.Server)
		c.Tag = m.Tag
		if o.RateLimit > 0 {
			c.RateLimit = o.RateLimit
		}
		c.CopyOut(storage.CurBase, bytes, finish)
	}
	return nil
}

// streamOut reads a delta image off the node's disk and pushes it
// through the server's fair-share pipe concurrently; done fires with
// the bytes moved when both the spindle and the network are finished.
// The disk side reads in paced chunks — pre-copy runs while the guest
// is live, and a monolithic read would head-of-line block every
// foreground I/O behind the whole delta; the network side is one
// stream, since fair sharing is the pipe's job.
func (m *Manager) streamOut(o Options, disk *node.Disk, bytes int64, done func(moved int64)) {
	if bytes <= 0 {
		m.S.DoAfter(0, "swap.stream0", func() { done(0) })
		return
	}
	remaining := 2
	fin := func() {
		remaining--
		if remaining == 0 {
			done(bytes)
		}
	}
	const chunk = 1 << 20
	pace := sim.Time(0)
	if o.RateLimit > 0 {
		pace = sim.Time(float64(chunk) / float64(o.RateLimit) * float64(sim.Second))
	}
	var read func(cur int64)
	read = func(cur int64) {
		n := int64(chunk)
		if bytes-cur < n {
			n = bytes - cur
		}
		floor := m.S.Now() + pace
		disk.Submit(&node.DiskRequest{Op: node.Read, LBA: storage.CurBase + cur, Bytes: n, Done: func() {
			if cur+n >= bytes {
				fin()
				return
			}
			m.S.DoAfter(floor-m.S.Now(), "swap.stream-pace", func() { read(cur + n) })
		}})
	}
	read(0)
	if m.localTier() {
		// The delta lands on the node-local snapshot disk: seek plus
		// bandwidth on the disk's own medium, no control-LAN crossing.
		m.stat("storage.local_bytes", bytes)
		m.S.DoAfter(m.Backend.PutCost(bytes), "swap.local-stream", fin)
		return
	}
	if m.tiered() {
		m.stat("storage.remote_bytes", bytes)
	}
	m.Server.StreamUpload(m.Tag, bytes, fin)
}

// afterFreeze flushes residual deltas and memory accounting, commits
// the epoch to each node's lineage (incremental mode), then releases
// the hardware.
func (m *Manager) afterFreeze(o Options, res *core.Result, reports []*OutReport, cuts []int, done func([]*OutReport, error)) {
	m.lastSwapEpoch = m.Coord.Epoch()
	remaining := len(m.Nodes)
	for i, n := range m.Nodes {
		i, n := i, n
		rep := reports[i]
		rep.Checkpoint = res
		for _, img := range res.Images {
			if img.Node == n.Name {
				rep.MemoryBytes = img.MemoryBytes + img.DeviceBytes
				if o.Incremental {
					// The server applies the delta to its base offline;
					// swap-in must still restore the full resident image.
					n.MemImageBytes = n.HV.K.MemoryImageBytes() + img.DeviceBytes
				} else {
					n.MemImageBytes = img.MemoryBytes + img.DeviceBytes
				}
			}
		}
		m.stat("out.mem_bytes", rep.MemoryBytes)
		// The hypervisor streamed the image over the control net itself
		// (its timing is inside the checkpoint); the server still logs
		// the bytes so per-experiment totals are truthful.
		m.Server.AccountUpload(m.Tag, rep.MemoryBytes)
		// Blocks appended to the redo log after the pre-copy cut are
		// residual: blocks written (or re-written) during pre-copy.
		residualSlots := n.Vol.Cur.Slots() - cuts[i]
		if !o.PreCopy {
			residualSlots = n.Vol.Cur.Slots()
			// Without pre-copy the whole live delta moves while frozen.
			rep.ResidualBytes = n.Vol.CurrentDeltaBytes(n.IsFree)
		} else {
			rep.ResidualBytes = int64(residualSlots) * storage.BlockSize
		}
		m.stat("out.delta_bytes", rep.PreCopyBytes+rep.ResidualBytes)
		afterFlush := func() {
			// The node's part of the swap-out ends here; the delta merge
			// is offline server-side post-processing (§5.3) and does not
			// extend the user-visible swap-out.
			rep.Finished = m.S.Now()
			var serverWork, spillBytes int64
			if o.Incremental {
				// Commit the dirty epoch to the lineage before the local
				// merge folds it into the aggregated delta; server-side
				// work is whatever pruning folded into the base. Free-block
				// elimination applies retroactively to the whole chain, so
				// replay never resurrects blocks the filesystem has freed
				// since they were committed.
				lin := m.Lineage(n.Name)
				pruned := lin.MergedBytes
				lin.Commit(n.Vol.EpochBlocks(n.IsFree),
					int(rep.MemoryBytes/int64(n.HV.P.PageSize)))
				lin.Drop(n.IsFree)
				rep.ChainDepth = lin.Depth()
				serverWork = lin.MergedBytes - pruned
				if m.tiered() {
					// Record the epoch on its tier; snapshot-disk overflow
					// spills to the pool during the offline window below.
					if spillBytes = m.placeEpoch(lin); spillBytes > 0 {
						m.stat("storage.spill_bytes", spillBytes)
						m.stat("storage.remote_bytes", spillBytes)
					}
				}
				if o.CloneAware {
					// The node's disk holds exactly the state the chain now
					// replays to; record it so the next restore here (or a
					// co-staged sibling's) skips the resident segments.
					n.MarkResident(lin)
				}
			}
			n.HV.K.Dirty.CutEpoch()
			merged := n.Vol.Merge(true, n.IsFree)
			n.AggBytesOnServer = merged
			rep.MergedBytes = merged
			if !o.Incremental {
				serverWork = merged
			}
			m.stat("merged_bytes", serverWork)
			mergeDur := sim.Time(float64(serverWork) / float64(m.ServerMergeRate) * float64(sim.Second))
			// The offline window covers the server-side merge and, when
			// the snapshot disk overflowed, pushing the spilled epoch to
			// the shared pool; both must drain before the park counts.
			legs := 1
			if spillBytes > 0 {
				legs = 2
			}
			nodeDone := func() {
				legs--
				if legs > 0 {
					return
				}
				remaining--
				if remaining == 0 {
					if m.anyCrashed() {
						// The machines died while the residual flush or
						// merge was draining: the swap-out never
						// completed and its epoch is not a restore
						// point. The crash path owns the cleanup.
						return
					}
					m.swappedOut = true
					m.Cycle++
					// Either mode leaves a complete restore point on the
					// server: the lineage chain (incremental) or the full
					// image + aggregated delta (full copy).
					m.lastCommitAt = m.S.Now()
					if m.OnCommit != nil {
						m.OnCommit()
					}
					done(reports, nil)
				}
			}
			m.S.DoAfter(mergeDur, "swap.merge", nodeDone)
			if spillBytes > 0 {
				m.Server.StreamUpload(m.Tag, spillBytes, nodeDone)
			}
		}
		switch {
		case !o.Incremental:
			m.Server.UploadTagged(m.Tag, rep.ResidualBytes, afterFlush)
		case m.localTier():
			// The residual delta flushes to the node-local snapshot
			// disk, off the control LAN.
			m.stat("storage.local_bytes", rep.ResidualBytes)
			m.S.DoAfter(m.Backend.PutCost(rep.ResidualBytes), "swap.local-flush", afterFlush)
		default:
			if m.tiered() {
				m.stat("storage.remote_bytes", rep.ResidualBytes)
			}
			m.Server.StreamUpload(m.Tag, rep.ResidualBytes, afterFlush)
		}
	}
}

// SwapIn restores the experiment; done receives one report per node
// once every guest is running (lazy background fill may continue), or
// the error that stopped the restore.
func (m *Manager) SwapIn(o Options, done func([]*InReport, error)) error {
	if !m.swappedOut {
		return fmt.Errorf("swap: not swapped out")
	}
	start := m.S.Now()
	reports := make([]*InReport, len(m.Nodes))
	remaining := len(m.Nodes)
	finishNode := func(i int) {
		remaining--
		if remaining == 0 {
			// All state staged: resume the experiment together.
			err := m.Coord.ResumeHeld(func(_ *core.Result, rerr error) {
				if rerr != nil {
					done(nil, rerr)
					return
				}
				now := m.S.Now()
				for _, r := range reports {
					r.Finished = now
				}
				m.swappedOut = false
				done(reports, nil)
			})
			if err != nil {
				done(nil, fmt.Errorf("swap: %v", err))
			}
		}
		_ = i
	}
	for i, n := range m.Nodes {
		i, n := i, n
		rep := &InReport{Started: start, Lazy: o.Lazy, Incremental: o.Incremental}
		reports[i] = rep
		// The disk state to stage: the merged aggregated delta, or the
		// lineage's base + delta chain replay in incremental mode. A
		// clone-aware restore narrows the replay further, to the chain
		// segments not already resident on the node.
		diskBytes := n.AggBytesOnServer
		var plan *chainPlan
		if o.Incremental {
			lin := m.Lineage(n.Name)
			diskBytes = lin.ReplayBytes()
			if o.CloneAware {
				diskBytes = lin.MissingBytes(n.Resident)
			}
			rep.ChainDepth = lin.Depth()
			if m.tiered() {
				// Tiered staging: partition the chain across the cache,
				// the snapshot disk and the pool, and start prefetching
				// the pool misses now — overlapped with the golden
				// fetch, node setup and the memory download below.
				var res map[storage.Addr]bool
				if o.CloneAware {
					res = n.Resident
				}
				plan = m.planChain(lin, res)
				diskBytes = plan.total
				rep.CachedBytes = plan.cached + plan.local
				rep.RemoteBytes = plan.remote
				m.stat("storage.remote_bytes", plan.remote)
				m.stat("storage.cache_hit_bytes", plan.cached)
				m.stat("storage.local_bytes", plan.local)
				plan.prefetch(m)
			}
		}
		stage2 := func() {
			// Node setup + memory image download, then disk state.
			m.S.DoAfter(NodeSetupTime, "swap.setup", func() {
				memDone := func() {
					rep.MemoryBytes = n.MemImageBytes
					rep.DeltaBytes = diskBytes
					m.stat("in.mem_bytes", rep.MemoryBytes)
					m.stat("in.disk_bytes", diskBytes)
					if o.CloneAware {
						// Once staging is under way the chain's segments are
						// bound for the node's disk; record them so the next
						// cycle here moves only fresh divergence.
						n.MarkResident(m.Lineage(n.Name))
					}
					if plan != nil {
						// Tiered staging: the pool misses were prefetched in
						// parallel with setup; once they land, the rest is
						// node-local media time (cache and snapshot-disk
						// reads). No lazy mirror — prefetch overlap is what
						// keeps the restore off the critical path.
						plan.wait(func() {
							m.S.DoAfter(plan.cost, "swap.stage-local", func() {
								finishNode(i)
							})
						})
						return
					}
					if !o.Lazy {
						// Eager: the whole disk state lands before the
						// node may resume.
						c := xfer.NewCopier(m.S, n.Vol.Disk, m.Server)
						c.Tag = m.Tag
						if o.RateLimit > 0 {
							c.RateLimit = o.RateLimit
						}
						c.CopyIn(storage.AggBase, diskBytes, func(int64) {
							finishNode(i)
						})
						return
					}
					// Lazy: resume immediately; the staged disk image is
					// demand-paged and back-filled into the COW log region
					// (raw addressing — the delta is an image file, not
					// guest-visible block space).
					lm := xfer.NewLazyMirror(m.S, rawRegion{d: n.Vol.Disk, base: storage.AggBase},
						m.Server, n.Vol.Disk, diskBytes)
					lm.SetTag(m.Tag)
					n.lazy = lm
					lm.StartBackground(func() { rep.BackgroundDone = m.S.Now() })
					finishNode(i)
				}
				if o.Incremental {
					// Memory images pipeline across nodes on the shared
					// pipe instead of queueing behind each other.
					m.Server.StreamDownload(m.Tag, n.MemImageBytes, memDone)
				} else {
					m.Server.DownloadTagged(m.Tag, n.MemImageBytes, memDone)
				}
			})
		}
		if !n.GoldenCached {
			rep.GoldenFetched = true
			m.S.DoAfter(GoldenFetchTime, "swap.frisbee", func() {
				n.GoldenCached = true
				stage2()
			})
		} else {
			stage2()
		}
	}
	return nil
}

// CommitEpoch durably commits the experiment's live state to its
// per-node lineages without parking it: each node's disk epoch (the
// blocks dirtied since the last commit) and dirty memory pages stream
// to the file server as bandwidth-shared uploads and append to the
// chain. This is the durable half of an incremental swap-out — the
// periodic epoch pipeline uses it to keep crash recovery's restore
// point fresh. done, if non-nil, receives the bytes moved once every
// node's commit is on the server.
func (m *Manager) CommitEpoch(done func(moved int64)) {
	if m.swappedOut {
		// Parked: the guests are frozen off-hardware and the park's own
		// epoch already committed everything.
		return
	}
	m.commitsInFlight++
	// Durability ordering: the local epoch closes now (dirty logs cut,
	// volume deltas merged), but the server-side lineages only append —
	// and the commit only counts as a restore point — once every node's
	// upload has landed, all-or-nothing. A crash mid-upload therefore
	// discards the whole epoch: no lineage claims state the server
	// never fully received, and lastCommitAt never moves past the
	// crash.
	type pendingCommit struct {
		n        *Node
		lin      *storage.Lineage
		blocks   map[int64]int64
		memPages int
		// remote marks an epoch whose bytes already crossed to the pool
		// in the transfer stage (remote tier, or a snapshot disk known
		// full upfront) — its placement must not bill a second spill.
		remote bool
	}
	var pend []pendingCommit
	remaining := len(m.Nodes)
	var total int64
	fin := func() {
		remaining--
		if remaining > 0 {
			return
		}
		m.commitsInFlight--
		if m.anyCrashed() {
			// The machines died while the commit was in flight: the
			// epoch never became durable. Recovery restores the
			// previous one.
			return
		}
		var spill int64
		for _, p := range pend {
			p.lin.Commit(p.blocks, p.memPages)
			p.lin.Drop(p.n.IsFree)
			p.n.MarkResident(p.lin)
			if m.tiered() {
				sp := m.placeEpoch(p.lin)
				if !p.remote {
					spill += sp
				}
			}
		}
		complete := func() {
			m.lastCommitAt = m.S.Now()
			if m.OnCommit != nil {
				m.OnCommit()
			}
			if done != nil {
				done(total)
			}
		}
		if spill > 0 {
			// Snapshot-disk overflow: the epoch only counts as a restore
			// point once its spilled bytes are safe on the pool.
			m.stat("storage.spill_bytes", spill)
			m.stat("storage.remote_bytes", spill)
			m.Server.StreamUpload(m.Tag, spill, complete)
			return
		}
		complete()
	}
	for _, n := range m.Nodes {
		lin := m.Lineage(n.Name)
		blocks := n.Vol.EpochBlocks(n.IsFree)
		memPages := n.HV.K.Dirty.EpochDirty()
		if len(blocks) == 0 && memPages == 0 && lin.Epochs() > 0 {
			// Nothing dirtied since the last commit; the chain already
			// replays to the current state.
			m.S.DoAfter(0, "swap.commit0", fin)
			continue
		}
		n.HV.K.Dirty.CutEpoch()
		n.Vol.Merge(true, n.IsFree)
		pc := pendingCommit{n: n, lin: lin, blocks: blocks, memPages: memPages}
		diskB := int64(len(blocks)) * storage.BlockSize
		memB := int64(memPages) * int64(n.HV.P.PageSize)
		bytes := diskB + memB
		total += bytes
		m.stat("out.epoch_bytes", bytes)
		switch {
		case bytes <= 0:
			m.S.DoAfter(0, "swap.commit0", fin)
		case !m.tiered():
			m.Server.StreamUpload(m.Tag, bytes, fin)
		case m.localTier() && m.Backend.Fits(diskB):
			// The disk epoch lands on the node-local snapshot disk; only
			// the memory delta crosses to the pool (memory images are
			// always server-homed, so a restore can rebuild the resident
			// image without the dead node's media).
			m.stat("storage.local_bytes", diskB)
			legs := 2
			leg := func() {
				legs--
				if legs == 0 {
					fin()
				}
			}
			m.S.DoAfter(m.Backend.PutCost(diskB), "swap.epoch-local", leg)
			if memB > 0 {
				m.Server.StreamUpload(m.Tag, memB, leg)
			} else {
				m.S.DoAfter(0, "swap.commit0", leg)
			}
		case m.localTier():
			// The snapshot disk is known full upfront: the epoch is
			// pool-bound from the start — one batched upload charged as
			// spill, no phantom local write billed.
			pc.remote = true
			m.stat("storage.spill_bytes", diskB)
			m.stat("storage.remote_bytes", diskB)
			m.Server.StreamUploadBatch(m.Tag, []int64{diskB, memB}, func(int64) { fin() })
		default:
			// Remote tier: the epoch's segments coalesce into one batched
			// put on the shared pipe — one stream and one pool round trip
			// per commit, not one per segment.
			pc.remote = true
			m.stat("storage.remote_bytes", diskB)
			m.Server.StreamUploadBatch(m.Tag, []int64{diskB, memB}, func(int64) {
				m.S.DoAfter(m.Backend.PutCost(diskB), "swap.epoch-rtt", fin)
			})
		}
		pend = append(pend, pc)
	}
}

// StartEpochs begins the periodic committed-epoch pipeline: a
// transparent scratch-disk checkpoint of the whole experiment every
// interval, with each fully-barriered epoch's dirty state committed to
// the file-server lineages in the background. Aborted epochs commit
// nothing — the loop retries at the next interval with a fresh epoch
// number — so the restore point Recover uses is always a consistent,
// fully-barriered epoch at most ~interval stale.
func (m *Manager) StartEpochs(interval sim.Time) *core.PeriodicCheckpointer {
	m.StopEpochs()
	m.epochLoop = &core.PeriodicCheckpointer{
		C:        m.Coord,
		Interval: interval,
		Opts:     core.Options{Incremental: true, SaveDeadline: m.SaveDeadline},
		OnResult: func(*core.Result) {
			// The epoch's memory delta reaches the server with this
			// commit, so the next swap-out's incremental memory save
			// stays sound despite the intervening checkpoint.
			ep := m.Coord.Epoch()
			m.CommitEpoch(func(int64) { m.lastSwapEpoch = ep })
		},
	}
	m.epochLoop.Start(0)
	return m.epochLoop
}

// StopEpochs halts the committed-epoch pipeline, if running.
func (m *Manager) StopEpochs() {
	if m.epochLoop != nil {
		m.epochLoop.Stop()
		m.epochLoop = nil
	}
}

// EpochAborts reports epochs the pipeline lost to aborts (0 if the
// pipeline never ran).
func (m *Manager) EpochAborts() int {
	if m.epochLoop == nil {
		return 0
	}
	return m.epochLoop.Aborts()
}

// Recover restores a crashed experiment from its last committed epoch:
// on freshly re-acquired hardware, each node's full memory image and
// its disk chain replay stream down from the file server as
// bandwidth-shared streams, then every node restarts together. Unlike
// SwapIn it does not require a preceding swap-out — the restore point
// is whatever the epoch pipeline (or an earlier park) last committed —
// and the guests resume from that epoch rather than via a held
// epoch's coordinated resume (the crashed epoch never barriered).
func (m *Manager) Recover(o Options, done func([]*InReport, error)) error {
	if m.lastCommitAt == 0 {
		return fmt.Errorf("swap: no committed epoch to recover from")
	}
	// A crashed-while-parked (or mid-park, post-freeze) tenant left a
	// held epoch on the coordinator. The recovery resumes the guests
	// from restored images, not through ResumeHeld, so the held slot
	// must clear here — otherwise the coordinator reports Busy forever
	// and the recovered tenant could never checkpoint or park again.
	m.Coord.DropHeld()
	start := m.S.Now()
	reports := make([]*InReport, len(m.Nodes))
	remaining := len(m.Nodes)
	finishAll := func() {
		// All state staged: restart every node from the restored images.
		for _, n := range m.Nodes {
			if n.HV.Crashed() {
				if err := n.HV.Restore(nil); err != nil {
					done(nil, err)
					return
				}
			} else if n.HV.K.Suspended() {
				_ = n.HV.Resume(nil)
			}
		}
		m.swappedOut = false
		now := m.S.Now()
		for _, r := range reports {
			r.Finished = now
		}
		done(reports, nil)
	}
	for i, n := range m.Nodes {
		i, n := i, n
		lin := m.Lineage(n.Name)
		diskBytes := lin.ReplayBytes()
		if lin.Epochs() == 0 {
			// No incremental chain: the restore point is the full-copy
			// swap-out image (memory image + aggregated delta).
			diskBytes = n.AggBytesOnServer
		}
		var plan *chainPlan
		if lin.Epochs() > 0 && m.tiered() {
			// Tiered recovery: chain segments on node-local media (the
			// snapshot disk survives a fail-stop; the cache was filled by
			// the epoch pipeline's commits) restore without the pool, and
			// the misses prefetch in parallel with re-provisioning.
			plan = m.planChain(lin, nil)
			diskBytes = plan.total
			m.stat("storage.remote_bytes", plan.remote)
			m.stat("storage.cache_hit_bytes", plan.cached)
			m.stat("storage.local_bytes", plan.local)
			plan.prefetch(m)
		}
		memBytes := n.HV.K.MemoryImageBytes()
		rep := &InReport{Started: start, Incremental: lin.Epochs() > 0, ChainDepth: lin.Depth()}
		if plan != nil {
			rep.CachedBytes = plan.cached + plan.local
			rep.RemoteBytes = plan.remote
		}
		reports[i] = rep
		stage := func() {
			m.S.DoAfter(NodeSetupTime, "swap.recover-setup", func() {
				m.Server.StreamDownload(m.Tag, memBytes, func() {
					rep.MemoryBytes = memBytes
					m.stat("in.mem_bytes", memBytes)
					finishDisk := func() {
						rep.DeltaBytes = diskBytes
						m.stat("in.disk_bytes", diskBytes)
						remaining--
						if remaining == 0 {
							finishAll()
						}
					}
					if plan != nil {
						plan.wait(func() {
							m.S.DoAfter(plan.cost, "swap.recover-local", finishDisk)
						})
						return
					}
					if diskBytes <= 0 {
						remaining--
						if remaining == 0 {
							finishAll()
						}
						return
					}
					m.Server.StreamDownload(m.Tag, diskBytes, finishDisk)
				})
			})
		}
		if !n.GoldenCached {
			rep.GoldenFetched = true
			m.S.DoAfter(GoldenFetchTime, "swap.recover-frisbee", func() {
				n.GoldenCached = true
				stage()
			})
		} else {
			stage()
		}
	}
	return nil
}
