package scengen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"emucheck/internal/scenario"
)

// TestGeneratedScenariosValidate sweeps several seeds and a window of
// indices: every generated file must pass scenario.Validate, since the
// suite runner treats a validation error as a run error.
func TestGeneratedScenariosValidate(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42, 1 << 40} {
		for i := 0; i < 24; i++ {
			f := Generate(seed, i)
			if errs := scenario.Validate(f); len(errs) > 0 {
				t.Errorf("seed %d index %d (%s): %v", seed, i, f.Name, errs)
			}
		}
	}
}

// TestShapeRotation pins the rotation contract: index i produces shape
// Shapes[i%len(Shapes)], so any window of six consecutive indices
// covers the full catalog.
func TestShapeRotation(t *testing.T) {
	for i := 0; i < 2*len(Shapes); i++ {
		f := Generate(3, i)
		want := Shapes[i%len(Shapes)]
		if !strings.HasSuffix(f.Name, want) {
			t.Errorf("index %d: name %q, want shape suffix %q", i, f.Name, want)
		}
	}
}

// TestGenerateDeterministic re-derives the same corpus twice and
// demands byte equality: the generator may not consult any state
// beyond (seed, index).
func TestGenerateDeterministic(t *testing.T) {
	a, b := Matrix(9, 24), Matrix(9, 24)
	for i := range a {
		aj, err := json.Marshal(a[i])
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(b[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(aj, bj) {
			t.Errorf("index %d differs between identical generations:\n%s\n%s", i, aj, bj)
		}
	}
}

// TestSeedsDecorrelate guards against the axes collapsing: different
// generator seeds must not yield an identical corpus, or the seed knob
// would be decorative.
func TestSeedsDecorrelate(t *testing.T) {
	a, b := Matrix(1, 24), Matrix(2, 24)
	same := 0
	for i := range a {
		aj, _ := json.Marshal(a[i])
		bj, _ := json.Marshal(b[i])
		if bytes.Equal(aj, bj) {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("seeds 1 and 2 generated identical %d-scenario corpora", len(a))
	}
}

// TestMatrixAxisSpread checks a default-size matrix actually spreads
// across the interesting axes rather than collapsing to one corner:
// both swap modes, a storage cache, faults, a branch search, and both
// distributed workloads must appear.
func TestMatrixAxisSpread(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Matrix(1, 24) {
		if f.Swap == "incremental" {
			seen["swap:incremental"] = true
		} else {
			seen["swap:full"] = true
		}
		if f.Storage != nil && f.Storage.CacheMB > 0 {
			seen["storage:cache"] = true
		}
		if len(f.Faults) > 0 {
			seen["faults"] = true
		}
		if f.Search != nil {
			seen["branching"] = true
		}
		for _, e := range f.Experiments {
			seen["workload:"+e.Workload] = true
		}
	}
	for _, want := range []string{
		"swap:incremental", "swap:full", "storage:cache", "faults",
		"branching", "workload:quorum", "workload:commit2pc",
	} {
		if !seen[want] {
			t.Errorf("24-scenario matrix never hits axis %s (saw %v)", want, keys(seen))
		}
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestGeneratedNamesUnique: corpus files land in one directory under
// -gen-out, so names must be unique across any realistic matrix size.
func TestGeneratedNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i, f := range Matrix(1, 48) {
		if seen[f.Name] {
			t.Fatalf("duplicate generated name %q at index %d", f.Name, i)
		}
		seen[f.Name] = true
		if f.Name != fmt.Sprintf("gen-%03d-%s", i, Shapes[i%len(Shapes)]) {
			t.Errorf("index %d: unexpected name %q", i, f.Name)
		}
	}
}
