// Package notify implements the fast publish–subscribe checkpoint
// notification bus the paper builds on Emulab's dedicated control
// network (§4.3). Every node subscribes; any node (or the testbed
// itself) publishes "checkpoint now", "checkpoint at time t", "resume"
// and barrier-arrival notifications.
//
// Delivery latency models one control-LAN hop plus daemon processing,
// with jitter — precisely the variability that makes purely
// notification-driven ("checkpoint now") synchronization inferior to
// clock-scheduled checkpoints, as §4.3 argues and our tests show.
package notify

import (
	"emucheck/internal/sim"
)

// Topic names used by the checkpoint protocol.
const (
	TopicCheckpoint = "checkpoint"
	TopicResume     = "resume"
	TopicBarrier    = "barrier"
)

// Msg is one bus notification.
type Msg struct {
	Topic string
	From  string
	// Scope names the experiment the message belongs to. The control LAN
	// is shared by every experiment on the testbed, so daemons filter on
	// scope: a checkpoint notification for one experiment must not
	// trigger saves in another.
	Scope string
	// At is the scheduled global time for scheduled checkpoints/resumes;
	// zero means "now" (event-driven).
	At sim.Time
	// Epoch identifies the checkpoint generation the message refers to.
	Epoch int
	Data  any
}

// Bus is the control-network notification service.
type Bus struct {
	s *sim.Simulator

	// BaseLatency and JitterMax model control-net delivery: transmission
	// plus stack processing plus VM scheduling variability.
	BaseLatency sim.Time
	JitterMax   sim.Time

	subs map[string][]*subscriber // topic -> subscribers

	Published uint64
	Delivered uint64
}

type subscriber struct {
	h       func(*Msg)
	removed bool
}

// NewBus creates a bus with the default latency model (a 100 Mbps
// switched control LAN: ~180 µs base, up to 1.2 ms of jitter).
func NewBus(s *sim.Simulator) *Bus {
	return &Bus{
		s:           s,
		BaseLatency: 180 * sim.Microsecond,
		JitterMax:   1200 * sim.Microsecond,
		subs:        make(map[string][]*subscriber),
	}
}

// Subscribe registers a handler for a topic and returns a cancel
// function — a torn-down experiment's daemons must stop listening, or
// a re-admitted experiment with the same name would have two sets of
// ears on the control LAN. Handlers run on the subscriber's node-local
// daemon, outside any guest firewall — checkpoint control must keep
// working while guests are frozen.
func (b *Bus) Subscribe(topic string, h func(*Msg)) func() {
	sub := &subscriber{h: h}
	b.subs[topic] = append(b.subs[topic], sub)
	return func() { sub.removed = true }
}

// Publish fans the message out to all subscribers with independent
// per-subscriber delivery delays, compacting out cancelled ones.
func (b *Bus) Publish(m *Msg) {
	b.Published++
	live := b.subs[m.Topic][:0]
	for _, sub := range b.subs[m.Topic] {
		if sub.removed {
			continue
		}
		live = append(live, sub)
		h := sub.h
		d := b.BaseLatency + b.s.Jitter(b.JitterMax)
		b.s.After(d, "bus."+m.Topic, func() {
			b.Delivered++
			h(m)
		})
	}
	b.subs[m.Topic] = live
}

// Barrier counts arrivals for one checkpoint epoch and fires when all
// expected parties have reported. The coordinator uses it to detect that
// every node finished its local save before publishing "resume" (§4.3).
type Barrier struct {
	need    int
	arrived map[string]bool
	fire    func()
	done    bool
}

// NewBarrier creates a barrier expecting need distinct parties.
func NewBarrier(need int, fire func()) *Barrier {
	return &Barrier{need: need, arrived: make(map[string]bool), fire: fire}
}

// Arrive records a party; duplicate arrivals are idempotent. When the
// last party arrives the completion callback fires synchronously.
func (b *Barrier) Arrive(who string) {
	if b.done || b.arrived[who] {
		return
	}
	b.arrived[who] = true
	if len(b.arrived) >= b.need {
		b.done = true
		b.fire()
	}
}

// Done reports whether the barrier has fired.
func (b *Barrier) Done() bool { return b.done }

// Arrived reports how many distinct parties have arrived.
func (b *Barrier) Arrived() int { return len(b.arrived) }
