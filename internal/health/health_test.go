package health

import (
	"fmt"
	"testing"

	"emucheck/internal/sim"
)

// script drives a monitor against a scripted per-target status that
// tests flip at chosen instants.
type script struct {
	status map[string]ProbeStatus
}

func (sc *script) probe(name string) ProbeResult {
	st, ok := sc.status[name]
	if !ok {
		st = StatusOK
	}
	return ProbeResult{Status: st, Node: name + "-n0"}
}

func TestDetectsAfterFailThreshold(t *testing.T) {
	s := sim.New(1)
	sc := &script{status: map[string]ProbeStatus{"e1": StatusOK}}
	pol := Policy{ProbePeriod: sim.Second, FailThreshold: 3, RecoverThreshold: 2}
	var verdicts []Verdict
	m := New(s, 42, pol, sc.probe)
	m.OnVerdict = func(v Verdict) { verdicts = append(verdicts, v) }
	if err := m.Watch("e1"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)
	if len(verdicts) != 0 {
		t.Fatalf("healthy target produced verdicts: %v", verdicts)
	}
	failAt := s.Now()
	sc.status["e1"] = StatusFail
	s.RunFor(10 * sim.Second)
	if len(verdicts) != 1 || verdicts[0].Healthy {
		t.Fatalf("verdicts = %v", verdicts)
	}
	lat := verdicts[0].At - failAt
	// Three consecutive failed probes at 1s period: detection within
	// (2, 4] seconds of the failure depending on probe phase.
	if lat <= 2*sim.Second || lat > 4*sim.Second {
		t.Fatalf("detection latency %v, want (2s, 4s]", lat)
	}
	if !m.Unhealthy("e1") || m.Detections != 1 {
		t.Fatalf("unhealthy=%v detections=%d", m.Unhealthy("e1"), m.Detections)
	}
}

func TestHysteresisSuppressesFlapping(t *testing.T) {
	s := sim.New(1)
	sc := &script{status: map[string]ProbeStatus{"e1": StatusOK}}
	pol := Policy{ProbePeriod: sim.Second, FailThreshold: 3, RecoverThreshold: 2}
	var verdicts []Verdict
	m := New(s, 7, pol, sc.probe)
	m.OnVerdict = func(v Verdict) { verdicts = append(verdicts, v) }
	if err := m.Watch("e1"); err != nil {
		t.Fatal(err)
	}
	// Flap below the fail threshold: two bad probes, then good again,
	// repeatedly. The failStreak resets each time — no verdict.
	for i := 0; i < 4; i++ {
		sc.status["e1"] = StatusFail
		s.RunFor(2 * sim.Second)
		sc.status["e1"] = StatusOK
		s.RunFor(3 * sim.Second)
	}
	if len(verdicts) != 0 {
		t.Fatalf("sub-threshold flapping produced verdicts: %v", verdicts)
	}
	// A real failure crosses the threshold...
	sc.status["e1"] = StatusFail
	s.RunFor(5 * sim.Second)
	if len(verdicts) != 1 || verdicts[0].Healthy {
		t.Fatalf("verdicts = %v", verdicts)
	}
	// ...and one good probe is not enough to clear it (RecoverThreshold
	// 2): the healthy verdict needs two consecutive successes.
	sc.status["e1"] = StatusOK
	s.RunFor(sim.Second + 100*sim.Millisecond)
	if len(verdicts) != 1 {
		t.Fatalf("cleared after a single good probe: %v", verdicts)
	}
	s.RunFor(5 * sim.Second)
	if len(verdicts) != 2 || !verdicts[1].Healthy {
		t.Fatalf("verdicts = %v", verdicts)
	}
	if m.Unhealthy("e1") {
		t.Fatal("still unhealthy after recovery")
	}
}

func TestSkipFreezesStreaks(t *testing.T) {
	s := sim.New(1)
	sc := &script{status: map[string]ProbeStatus{"e1": StatusFail}}
	pol := Policy{ProbePeriod: sim.Second, FailThreshold: 3, RecoverThreshold: 2}
	var verdicts []Verdict
	m := New(s, 7, pol, sc.probe)
	m.OnVerdict = func(v Verdict) { verdicts = append(verdicts, v) }
	if err := m.Watch("e1"); err != nil {
		t.Fatal(err)
	}
	// Two failures (probes land at phase, phase+1s with phase < 1s),
	// then the tenant freezes (parked): the streak must neither grow
	// nor reset while skipped.
	s.RunFor(2 * sim.Second)
	sc.status["e1"] = StatusSkip
	s.RunFor(10 * sim.Second)
	if len(verdicts) != 0 {
		t.Fatalf("skip probes advanced the fail streak: %v", verdicts)
	}
	// One more failure after the thaw crosses the threshold.
	sc.status["e1"] = StatusFail
	s.RunFor(2 * sim.Second)
	if len(verdicts) != 1 || verdicts[0].Healthy {
		t.Fatalf("verdicts = %v", verdicts)
	}
}

func TestUnwatchStopsProbing(t *testing.T) {
	s := sim.New(1)
	sc := &script{status: map[string]ProbeStatus{"e1": StatusOK}}
	m := New(s, 7, Policy{}, sc.probe)
	if err := m.Watch("e1"); err != nil {
		t.Fatal(err)
	}
	if err := m.Watch("e1"); err == nil {
		t.Fatal("double watch accepted")
	}
	s.RunFor(5 * sim.Second)
	probes, _, _ := m.TargetStats("e1")
	if probes == 0 {
		t.Fatal("no probes delivered")
	}
	m.Unwatch("e1")
	if m.Watching("e1") {
		t.Fatal("still watching after unwatch")
	}
	s.RunFor(10 * sim.Second)
	after, _, _ := m.TargetStats("e1")
	if after != probes {
		t.Fatalf("probes kept landing after unwatch: %d -> %d", probes, after)
	}
}

func TestSameSeedDetectionInstantIdentical(t *testing.T) {
	run := func(seed int64) string {
		s := sim.New(3)
		sc := &script{status: map[string]ProbeStatus{}}
		pol := Policy{ProbePeriod: 500 * sim.Millisecond, FailThreshold: 2, RecoverThreshold: 2}
		var trace string
		m := New(s, seed, pol, sc.probe)
		m.OnVerdict = func(v Verdict) {
			trace += fmt.Sprintf("%s h=%v at=%d node=%s;", v.Target, v.Healthy, v.At, v.Node)
		}
		for i := 0; i < 5; i++ {
			if err := m.Watch(fmt.Sprintf("e%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		s.After(3*sim.Second, "fail", func() { sc.status["e2"] = StatusFail })
		s.After(9*sim.Second, "heal", func() { sc.status["e2"] = StatusOK })
		s.RunFor(20 * sim.Second)
		return trace
	}
	a, b := run(11), run(11)
	if a == "" || a != b {
		t.Fatalf("same-seed traces diverged:\n%s\n%s", a, b)
	}
	if run(12) == a {
		t.Log("different seeds collided (phase stagger); unusual but not fatal")
	}
}

func TestParsePolicyPresets(t *testing.T) {
	for _, name := range []string{"fast", "balanced", "conservative", ""} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.ProbePeriod <= 0 || p.FailThreshold <= 0 || p.RecoverThreshold <= 0 {
			t.Fatalf("%q: zero-valued preset %+v", name, p)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// fast must detect no later than conservative under equal failure.
	fast, _ := ParsePolicy("fast")
	cons, _ := ParsePolicy("conservative")
	if fast.ProbePeriod*sim.Time(fast.FailThreshold) >= cons.ProbePeriod*sim.Time(cons.FailThreshold) {
		t.Fatal("fast preset is not faster than conservative")
	}
}
