package apps

import (
	"emucheck/internal/guest"
	"emucheck/internal/metrics"
	"emucheck/internal/simnet"
	"emucheck/internal/tcpsim"
)

// Iperf is the Fig. 6 workload: a one-directional TCP stream between
// two nodes. The receiver captures a packet trace (in its own virtual
// time, like tcpdump on the node) from which the evaluation derives
// windowed throughput, inter-packet arrival gaps, and the
// no-retransmission check.
type Iperf struct {
	Sender   *tcpsim.Sender
	Receiver *tcpsim.Receiver

	// Trace records (receiver virtual time, wire bytes) per data
	// segment arrival.
	Trace *metrics.Series
}

// NewIperf wires an iperf session from the sender kernel to the
// receiver kernel, registering both TCP endpoints on port "iperf".
func NewIperf(snd, rcv *guest.Kernel) *Iperf {
	const port = "iperf"
	ip := &Iperf{Trace: metrics.NewSeries("iperf.trace")}

	sndEnv := &tcpEnv{k: snd, peer: simnet.Addr(rcv.Name), port: port}
	rcvEnv := &tcpEnv{k: rcv, peer: simnet.Addr(snd.Name), port: port}
	ip.Sender = tcpsim.NewSender(sndEnv, port)
	ip.Receiver = tcpsim.NewReceiver(rcvEnv, port)

	snd.Handle(port, func(from simnet.Addr, m *guest.Message) {
		ip.Sender.HandleSegment(m.Data.(*tcpsim.Segment))
	})
	rcv.Handle(port, func(from simnet.Addr, m *guest.Message) {
		seg := m.Data.(*tcpsim.Segment)
		if seg.Len > 0 {
			ip.Trace.Add(rcv.Monotonic(), float64(seg.WireSize()))
		}
		ip.Receiver.HandleSegment(seg)
	})
	return ip
}

// Start begins streaming total bytes (-1 = until stopped).
func (ip *Iperf) Start(total int64) { ip.Sender.Stream(total) }

// Stop halts the sender.
func (ip *Iperf) Stop() { ip.Sender.Close() }

// CleanTrace reports whether the session shows none of the artifacts
// the paper checked for in the packet trace: no retransmissions, no
// timeouts, no duplicate data at the receiver.
func (ip *Iperf) CleanTrace() bool {
	return ip.Sender.Retransmits == 0 && ip.Sender.Timeouts == 0 && ip.Receiver.DupData == 0
}
