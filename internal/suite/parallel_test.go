package suite

import (
	"bytes"
	"encoding/json"
	"testing"
)

// marshalReport renders a corpus report exactly as cmd/emusuite -json
// does, so byte-comparison here proves what the CLI cmp check proves.
func marshalReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParallelMatrixByteIdenticalToSerial is the parallel runner's
// ordering-guarantee regression: the 24-scenario generated matrix must
// produce byte-identical emusuite/v1 JSON and JUnit XML at -parallel
// 1, 4, and 8. Workers only move the wall clock; the report has no
// field that can tell the difference.
func TestParallelMatrixByteIdenticalToSerial(t *testing.T) {
	serial := RunMatrixParallel(1, 24, 1)
	if serial.Failed != 0 {
		t.Fatalf("serial matrix: %d failed\n%s", serial.Failed, serial.Render())
	}
	wantJSON := marshalReport(t, serial)
	wantJUnit, err := serial.JUnit("emusuite")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		par := RunMatrixParallel(1, 24, workers)
		if got := marshalReport(t, par); !bytes.Equal(got, wantJSON) {
			t.Fatalf("workers=%d: JSON report differs from serial run", workers)
		}
		got, err := par.JUnit("emusuite")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantJUnit) {
			t.Fatalf("workers=%d: JUnit report differs from serial run", workers)
		}
	}
}

// TestParallelExamplesByteIdenticalToSerial runs the shipped
// examples/scenarios corpus — the file-sourced path, exercising
// sources bookkeeping — at -parallel 1, 4, and 8 and requires
// byte-identical reports.
func TestParallelExamplesByteIdenticalToSerial(t *testing.T) {
	files, paths := loadExamples(t)
	serial := RunFilesParallel(files, paths, 1)
	want := marshalReport(t, serial)
	for _, workers := range []int{4, 8} {
		par := RunFilesParallel(files, paths, workers)
		if got := marshalReport(t, par); !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: examples corpus report differs from serial run", workers)
		}
	}
}

// TestRunOneParallelMatchesRunOne pins the single-scenario path
// emucheck run -junit -parallel uses: concurrent run + replay must
// assemble the same RunReport as the serial pair.
func TestRunOneParallelMatchesRunOne(t *testing.T) {
	files, paths := loadExamples(t)
	f, src := files[0], paths[0]
	want, err := json.Marshal(RunOne(f, src))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(RunOneParallel(f, src, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("RunOneParallel report differs from RunOne:\n%s\nvs\n%s", got, want)
	}
}

// TestParallelDefaultWorkers checks the 0 = GOMAXPROCS default doesn't
// change the report either.
func TestParallelDefaultWorkers(t *testing.T) {
	want := marshalReport(t, RunMatrixParallel(3, 6, 1))
	got := marshalReport(t, RunMatrixParallel(3, 6, 0))
	if !bytes.Equal(got, want) {
		t.Fatal("default-worker report differs from serial run")
	}
}
