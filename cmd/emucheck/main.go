// Command emucheck is the multi-experiment testbed driver: it loads
// declarative scenario files (fleet of experiments + timed events +
// assertions), validates them, and replays them deterministically on a
// simulated Emulab cluster with a preemptive swap scheduler; it also
// runs the multi-tenancy benchmark comparing stateful against classic
// stateless swapping.
//
// Usage:
//
//	emucheck validate <scenario.json>
//	emucheck run [-json] <scenario.json>
//	emucheck evalrun [-seed N] [-ticks N] [-json]
//
// Example scenarios live in examples/scenarios/ and are documented in
// docs/scenarios.md. run exits nonzero when any scenario assertion
// fails, so scripted scenarios double as integration checks. evalrun
// compares incremental (dirty-delta), full-copy stateful, and classic
// stateless swapping on an oversubscribed pool.
//
// Scenario files with a "search" stanza run the state-search engine:
// one experiment is checkpointed, forked into a gang-admitted branch
// fan-out sharing its checkpoint prefix by reference, and the report
// includes each branch's explored outcome (see
// examples/scenarios/search.json and docs/branching.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"emucheck/internal/evalrun"
	"emucheck/internal/scenario"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: emucheck <command> [flags] [args]

commands:
  validate <scenario.json>   check a scenario file without running it
  run [-json] <scenario.json>
                             replay a scenario and evaluate its assertions
  evalrun [-seed N] [-ticks N] [-json]
                             multi-tenancy benchmark: incremental vs
                             full-copy vs stateless swapping
`)
	os.Exit(2)
}

func loadFile(path string) *scenario.File {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emucheck:", err)
		os.Exit(1)
	}
	f, err := scenario.Parse(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "emucheck:", err)
		os.Exit(1)
	}
	return f
}

func cmdValidate(args []string) {
	if len(args) != 1 {
		usage()
	}
	f := loadFile(args[0])
	if errs := scenario.Validate(f); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "invalid:", e)
		}
		os.Exit(1)
	}
	fmt.Printf("%s: ok (%d experiments, %d events, %d assertions)\n",
		f.Name, len(f.Experiments), len(f.Events), len(f.Assertions))
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	res, err := scenario.Run(loadFile(fs.Arg(0)))
	if err != nil {
		fmt.Fprintln(os.Stderr, "emucheck:", err)
		os.Exit(1)
	}
	if *asJSON {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "emucheck:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(res.Render())
	}
	if !res.Pass {
		os.Exit(1)
	}
}

func cmdEvalrun(args []string) {
	fs := flag.NewFlagSet("evalrun", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	ticks := fs.Int64("ticks", 0, "work per tenant in 100 ms ticks (0 = default 900)")
	asJSON := fs.Bool("json", false, "emit the result as JSON")
	fs.Parse(args)
	r := evalrun.Timeshare(*seed, *ticks)
	if *asJSON {
		out, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "emucheck:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Println("== Multi-tenancy: incremental vs full-copy vs stateless swapping ==")
	fmt.Print(r.Render())
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "validate":
		cmdValidate(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "evalrun":
		cmdEvalrun(os.Args[2:])
	default:
		usage()
	}
}
