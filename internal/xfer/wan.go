package xfer

import (
	"fmt"

	"emucheck/internal/sim"
)

// WANLink models one directed wide-area path between two federated
// facilities. Unlike the control-LAN Server, a WAN link is not bound
// to a simulator: federated facilities advance on separate goroutines
// inside conservative windows, and all cross-facility traffic is
// priced single-threaded at the window barrier. Send is therefore
// pure cost arithmetic over the link's own serialization state.
//
// The latency floor is the federation's correctness anchor: a link's
// Latency must be at least the conservative lookahead window, so a
// message sent during the window [T, T+L) can never arrive before the
// barrier at T+L. The federation validates this at construction.
type WANLink struct {
	// Name labels the link in reports ("fac0->fac1").
	Name string
	// Latency is the propagation delay added to every message.
	Latency sim.Time
	// Rate is the link bandwidth in bytes/second.
	Rate int64

	busyUntil sim.Time

	// Msgs and Bytes count traffic carried; Queued accumulates the
	// serialization wait behind earlier bytes on the same link.
	Msgs   int64
	Bytes  int64
	Queued sim.Time
}

// DefaultWANRate is 1 Gbps worth of bytes/second — an order above the
// 100 Mbps control LAN, as inter-site links are provisioned fatter
// than the intra-facility control network they federate.
const DefaultWANRate int64 = 1_000_000_000 / 8

// NewWANLink creates a directed link. Rate defaults to DefaultWANRate
// if zero; a non-positive latency panics, since a latency-free WAN
// link would let cross-facility traffic violate the lookahead window.
func NewWANLink(name string, latency sim.Time, rate int64) *WANLink {
	if latency <= 0 {
		panic(fmt.Sprintf("xfer: WAN link %s latency %v must be positive", name, latency))
	}
	if rate <= 0 {
		rate = DefaultWANRate
	}
	return &WANLink{Name: name, Latency: latency, Rate: rate}
}

// Send prices n bytes entering the link at time now and returns the
// arrival time at the far facility: serialization behind earlier
// traffic, transmission at Rate, then the propagation Latency. Calls
// must be made in a deterministic order (the federation barrier's
// (when, facility, seq) sort) because the link state is FIFO.
func (l *WANLink) Send(now sim.Time, n int64) sim.Time {
	if n < 0 {
		n = 0
	}
	start := now
	if l.busyUntil > start {
		l.Queued += l.busyUntil - start
		start = l.busyUntil
	}
	xmit := sim.Time(0)
	if n > 0 {
		xmit = sim.Time(n * int64(sim.Second) / l.Rate)
	}
	l.busyUntil = start + xmit
	l.Msgs++
	l.Bytes += n
	return l.busyUntil + l.Latency
}
