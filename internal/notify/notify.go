// Package notify implements the fast publish–subscribe checkpoint
// notification bus the paper builds on Emulab's dedicated control
// network (§4.3). Every node subscribes; any node (or the testbed
// itself) publishes "checkpoint now", "checkpoint at time t", "resume"
// and barrier-arrival notifications.
//
// Delivery latency models one control-LAN hop plus daemon processing,
// with jitter — precisely the variability that makes purely
// notification-driven ("checkpoint now") synchronization inferior to
// clock-scheduled checkpoints, as §4.3 argues and our tests show.
//
// The bus is also the control plane's fault surface: an Inject hook
// lets the fault layer drop or delay individual deliveries, and
// per-topic delivery stats (published/delivered/dropped) make lost
// notifications observable in run results instead of silent.
package notify

import (
	"emucheck/internal/sim"
)

// Topic names used by the checkpoint protocol.
const (
	TopicCheckpoint = "checkpoint"
	TopicResume     = "resume"
	TopicBarrier    = "barrier"
	// TopicAbort announces a failed checkpoint epoch: a save error or a
	// straggler timeout sank the barrier, and the epoch's state must be
	// discarded (it will never be committed).
	TopicAbort = "abort"
)

// Msg is one bus notification.
type Msg struct {
	Topic string
	From  string
	// Scope names the experiment the message belongs to. The control LAN
	// is shared by every experiment on the testbed, so daemons filter on
	// scope: a checkpoint notification for one experiment must not
	// trigger saves in another.
	Scope string
	// At is the scheduled global time for scheduled checkpoints/resumes;
	// zero means "now" (event-driven).
	At sim.Time
	// Epoch identifies the checkpoint generation the message refers to.
	Epoch int
	Data  any
}

// TopicStats counts one topic's control-LAN traffic. Published counts
// messages; Delivered and Dropped count per-subscriber deliveries (one
// message fans out to many daemons).
type TopicStats struct {
	Published uint64
	Delivered uint64
	Dropped   uint64
}

// Bus is the control-network notification service.
type Bus struct {
	s *sim.Simulator

	// BaseLatency and JitterMax model control-net delivery: transmission
	// plus stack processing plus VM scheduling variability.
	BaseLatency sim.Time
	JitterMax   sim.Time

	// Inject, when set, is consulted once per subscriber delivery and
	// may suppress it or add latency — the fault layer's hook for
	// control-LAN message loss and delay. owner is the subscribing
	// daemon's identity ("" for anonymous subscriptions).
	Inject func(m *Msg, owner string) (drop bool, extra sim.Time)

	// subs indexes subscribers by (topic, scope). The shared control
	// LAN carries every experiment's notifications, but a daemon only
	// ever acts on its own experiment's — so fan-out resolves the
	// scoped bucket directly instead of delivering to every daemon on
	// the testbed and letting each one discard the message. At 10k
	// tenants that turns each checkpoint publish from O(all daemons on
	// the LAN) scheduled deliveries into O(one experiment's daemons).
	// Lookup only; never iterated — delivery order within a publish is
	// bucket registration order, scoped bucket before anonymous.
	subs map[subKey]*bucket

	Published uint64
	Delivered uint64
	// Dropped counts deliveries suppressed by the Inject hook — the
	// observable record of lost notifications.
	Dropped uint64
	// Attempts counts per-subscriber delivery attempts (the fan-out of
	// Published over live subscribers). Every attempt ends up delivered,
	// dropped, or still in flight at the observation instant, so
	// Attempts == Delivered + Dropped + InFlight() always — the bus
	// conservation law the suite runner audits after every run.
	Attempts uint64

	perTopic map[string]*topicEntry
}

// InFlight reports delivery attempts scheduled but not yet delivered —
// control-LAN packets still in the air when the run's horizon cut.
func (b *Bus) InFlight() uint64 { return b.Attempts - b.Delivered - b.Dropped }

// subKey addresses one (topic, scope) subscriber bucket; scope "" is
// the anonymous bucket receiving every publish on the topic.
type subKey struct {
	topic, scope string
}

// bucket holds one (topic, scope)'s subscribers in registration order.
// Cancellation marks and counts; the bucket compacts (preserving
// order) on publish and eagerly once removals pass half the list, so
// torn-down tenants stop costing both fan-out work and memory.
type bucket struct {
	subs    []*subscriber
	removed int
}

// compact drops cancelled subscribers, preserving registration order.
func (bk *bucket) compact() {
	live := bk.subs[:0]
	for _, sub := range bk.subs {
		if !sub.removed {
			live = append(live, sub)
		}
	}
	for i := len(live); i < len(bk.subs); i++ {
		bk.subs[i] = nil
	}
	bk.subs = live
	bk.removed = 0
}

type subscriber struct {
	h       func(*Msg)
	owner   string
	removed bool
}

// NewBus creates a bus with the default latency model (a 100 Mbps
// switched control LAN: ~180 µs base, up to 1.2 ms of jitter).
func NewBus(s *sim.Simulator) *Bus {
	return &Bus{
		s:           s,
		BaseLatency: 180 * sim.Microsecond,
		JitterMax:   1200 * sim.Microsecond,
		subs:        make(map[subKey]*bucket),
		perTopic:    make(map[string]*topicEntry),
	}
}

// topicEntry is the bus's per-topic bookkeeping: the exported stats
// plus the delivery event label, built once per topic instead of once
// per publish — at fleet scale the "bus."+topic concatenation was a
// measurable per-publish allocation (docs/scale.md).
type topicEntry struct {
	TopicStats
	label string
}

// Topic reports one topic's delivery stats.
func (b *Bus) Topic(topic string) TopicStats {
	if st := b.perTopic[topic]; st != nil {
		return st.TopicStats
	}
	return TopicStats{}
}

// Topics reports every topic's delivery stats, copied for reporting.
func (b *Bus) Topics() map[string]TopicStats {
	out := make(map[string]TopicStats, len(b.perTopic))
	for t, st := range b.perTopic {
		out[t] = st.TopicStats
	}
	return out
}

func (b *Bus) topicStats(topic string) *topicEntry {
	st := b.perTopic[topic]
	if st == nil {
		st = &topicEntry{label: "bus." + topic}
		b.perTopic[topic] = st
	}
	return st
}

// Subscribe registers a handler for a topic and returns a cancel
// function — a torn-down experiment's daemons must stop listening, or
// a re-admitted experiment with the same name would have two sets of
// ears on the control LAN. Handlers run on the subscriber's node-local
// daemon, outside any guest firewall — checkpoint control must keep
// working while guests are frozen. An unscoped subscriber hears every
// publish on the topic.
func (b *Bus) Subscribe(topic string, h func(*Msg)) func() {
	return b.SubscribeScoped(topic, "", "", h)
}

// SubscribeOwned is Subscribe with the subscribing daemon's identity
// attached (a node name), so fault injection can target one daemon's
// copy of a fan-out ("drop node X's checkpoint notification").
func (b *Bus) SubscribeOwned(topic, owner string, h func(*Msg)) func() {
	return b.SubscribeScoped(topic, "", owner, h)
}

// SubscribeScoped is SubscribeOwned narrowed to one experiment's
// notifications: the handler only receives publishes whose Msg.Scope
// matches (plus unscoped broadcasts). Handlers always filtered on
// scope anyway — subscribing scoped moves that filter into the bus
// index, so a publish never schedules deliveries to the other
// tenants' daemons at all. Scope "" subscribes to everything.
func (b *Bus) SubscribeScoped(topic, scope, owner string, h func(*Msg)) func() {
	key := subKey{topic: topic, scope: scope}
	bk := b.subs[key]
	if bk == nil {
		bk = &bucket{}
		b.subs[key] = bk
	}
	sub := &subscriber{h: h, owner: owner}
	bk.subs = append(bk.subs, sub)
	return func() {
		if sub.removed {
			return
		}
		sub.removed = true
		bk.removed++
		if bk.removed*2 > len(bk.subs) {
			bk.compact()
		}
	}
}

// Publish fans the message out with independent per-subscriber
// delivery delays: to the message's scope bucket, then to the
// anonymous (scope "") bucket. Daemons of other experiments are never
// touched.
func (b *Bus) Publish(m *Msg) {
	b.Published++
	ts := b.topicStats(m.Topic)
	ts.Published++
	label := ts.label
	if m.Scope != "" {
		b.deliver(m, b.subs[subKey{topic: m.Topic, scope: m.Scope}], ts, label)
	}
	b.deliver(m, b.subs[subKey{topic: m.Topic}], ts, label)
}

// deliver schedules one bucket's deliveries, compacting out cancelled
// subscribers along the way.
func (b *Bus) deliver(m *Msg, bk *bucket, ts *topicEntry, label string) {
	if bk == nil {
		return
	}
	live := bk.subs[:0]
	for _, sub := range bk.subs {
		if sub.removed {
			continue
		}
		live = append(live, sub)
		h := sub.h
		b.Attempts++
		d := b.BaseLatency + b.s.Jitter(b.JitterMax)
		if b.Inject != nil {
			drop, extra := b.Inject(m, sub.owner)
			if drop {
				b.Dropped++
				ts.Dropped++
				continue
			}
			d += extra
		}
		b.s.DoAfter(d, label, func() {
			b.Delivered++
			ts.Delivered++
			h(m)
		})
	}
	for i := len(live); i < len(bk.subs); i++ {
		bk.subs[i] = nil
	}
	bk.subs = live
	bk.removed = 0
}

// Barrier counts arrivals for one checkpoint epoch and fires when all
// expected parties have reported. The coordinator uses it to detect that
// every node finished its local save before publishing "resume" (§4.3).
type Barrier struct {
	need    int
	arrived map[string]bool
	fire    func()
	done    bool
}

// NewBarrier creates a barrier expecting need distinct parties.
func NewBarrier(need int, fire func()) *Barrier {
	return &Barrier{need: need, arrived: make(map[string]bool), fire: fire}
}

// Arrive records a party; duplicate arrivals are idempotent. When the
// last party arrives the completion callback fires synchronously.
func (b *Barrier) Arrive(who string) {
	if b.done || b.arrived[who] {
		return
	}
	b.arrived[who] = true
	if len(b.arrived) >= b.need {
		b.done = true
		b.fire()
	}
}

// Done reports whether the barrier has fired.
func (b *Barrier) Done() bool { return b.done }

// Arrived reports how many distinct parties have arrived.
func (b *Barrier) Arrived() int { return len(b.arrived) }

// Has reports whether the named party has arrived — the straggler test
// when a save deadline expires.
func (b *Barrier) Has(who string) bool { return b.arrived[who] }
