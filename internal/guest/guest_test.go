package guest

import (
	"testing"
	"testing/quick"

	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func newKernel(seed int64) (*sim.Simulator, *Kernel) {
	s := sim.New(seed)
	p := node.DefaultParams()
	m := node.NewMachine(s, "n0", p)
	return s, New(m, p, DefaultConfig())
}

func kernelPair(seed int64) (*sim.Simulator, *Kernel, *Kernel) {
	s := sim.New(seed)
	p := node.DefaultParams()
	ma := node.NewMachine(s, "a", p)
	mb := node.NewMachine(s, "b", p)
	ka := New(ma, p, DefaultConfig())
	kb := New(mb, p, DefaultConfig())
	ma.ExpNIC.Attach(simnet.NewWire(s, sim.Microsecond, mb.ExpNIC))
	mb.ExpNIC.Attach(simnet.NewWire(s, sim.Microsecond, ma.ExpNIC))
	return s, ka, kb
}

func TestUsleepTickRounding(t *testing.T) {
	s, k := newKernel(1)
	// Deterministic check with zero jitter.
	k.P.WakeupJitterMean = 0
	k.P.WakeupJitterStddev = 0
	var woke sim.Time
	k.Usleep(10*sim.Millisecond, func() { woke = k.Monotonic() })
	s.Run()
	// HZ=100: 10 ms sleep wakes at the tick strictly after 10 ms = 20 ms.
	if woke != 20*sim.Millisecond {
		t.Fatalf("woke at %v, want 20ms", woke)
	}
}

func TestUsleepLoopPhaseLock(t *testing.T) {
	s, k := newKernel(1)
	k.P.WakeupJitterMean = 0
	k.P.WakeupJitterStddev = 0
	var iters []sim.Time
	prev := sim.Time(0)
	var loop func()
	n := 0
	loop = func() {
		now := k.Gettimeofday()
		if n > 0 {
			iters = append(iters, now-prev)
		}
		prev = now
		n++
		if n < 20 {
			k.Usleep(10*sim.Millisecond, loop)
		}
	}
	loop()
	s.Run()
	// After phase lock every iteration is exactly 20 ms (Fig. 4 base).
	for i, d := range iters[1:] {
		if d != 20*sim.Millisecond {
			t.Fatalf("iteration %d = %v, want 20ms", i, d)
		}
	}
}

func TestComputeChargesCPUAndDirtiesPages(t *testing.T) {
	s, k := newKernel(1)
	before := k.Dirty.Dirty()
	var done sim.Time
	k.Compute(100*sim.Millisecond, "job", func() { done = s.Now() })
	s.Run()
	if done != 100*sim.Millisecond {
		t.Fatalf("done at %v", done)
	}
	if k.Dirty.Dirty() <= before {
		t.Fatal("compute did not dirty pages")
	}
}

func TestSendReceive(t *testing.T) {
	s, ka, kb := kernelPair(1)
	var got *Message
	var from simnet.Addr
	kb.Handle("echo", func(f simnet.Addr, m *Message) { got, from = m, f })
	ka.Send("b", 1500, &Message{Port: "echo", Data: "hi"})
	s.Run()
	if got == nil || got.Data != "hi" || from != "a" {
		t.Fatalf("got %+v from %s", got, from)
	}
	if ka.SentPackets != 1 || kb.RcvdPackets != 1 {
		t.Fatal("packet counters")
	}
}

func TestSendUnknownPortIgnored(t *testing.T) {
	s, ka, kb := kernelPair(1)
	ka.Send("b", 100, &Message{Port: "nope"})
	s.Run()
	if kb.RcvdPackets != 1 {
		t.Fatal("packet not received at kernel level")
	}
}

func TestTxPathStallsDuringSuspend(t *testing.T) {
	s, ka, kb := kernelPair(1)
	recv := 0
	kb.Handle("p", func(simnet.Addr, *Message) { recv++ })
	if err := ka.Suspend(func() {}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time10ms())
	ka.Send("b", 1000, &Message{Port: "p"}) // queued behind frozen softirq
	s.RunFor(50 * sim.Millisecond)
	if recv != 0 {
		t.Fatal("packet escaped a suspended guest")
	}
	if err := ka.Resume(nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if recv != 1 {
		t.Fatal("queued packet lost across checkpoint")
	}
}

func time10ms() sim.Time { return 10 * sim.Millisecond }

func TestReceiverFrozenLogsAndReplays(t *testing.T) {
	s, ka, kb := kernelPair(1)
	recv := 0
	kb.Handle("p", func(simnet.Addr, *Message) { recv++ })
	if err := kb.Suspend(func() {}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Millisecond)
	for i := 0; i < 4; i++ {
		ka.Send("b", 1000, &Message{Port: "p"})
	}
	s.RunFor(50 * sim.Millisecond)
	if recv != 0 {
		t.Fatal("frozen receiver processed packets")
	}
	if kb.M.ExpNIC.ReplayLogLen() != 4 {
		t.Fatalf("replay log = %d", kb.M.ExpNIC.ReplayLogLen())
	}
	if err := kb.Resume(nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if recv != 4 {
		t.Fatalf("replayed %d, want 4", recv)
	}
}

func TestDiskIO(t *testing.T) {
	s, k := newKernel(1)
	done := 0
	k.WriteDisk(0, 1<<20, func() { done++ })
	k.ReadDisk(0, 1<<20, func() { done++ })
	s.Run()
	if done != 2 {
		t.Fatalf("completed %d", done)
	}
	if k.M.Disk.WriteBytes != 1<<20 || k.M.Disk.ReadBytes != 1<<20 {
		t.Fatal("disk counters")
	}
}

func TestSuspendDrainsInflightIO(t *testing.T) {
	s, k := newKernel(1)
	ioDone := sim.Time(-1)
	suspended := sim.Time(-1)
	k.WriteDisk(0, 32<<20, func() { ioDone = s.Now() }) // ~450 ms of I/O
	s.RunFor(sim.Millisecond)
	if err := k.Suspend(func() { suspended = s.Now() }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * sim.Second)
	if suspended < 0 {
		t.Fatal("suspend never completed")
	}
	// The block IRQ drained outside the firewall before quiesce...
	if k.InflightIO() != 0 {
		t.Fatal("inflight IO not drained")
	}
	// ...but the *guest continuation* stays parked until resume.
	if ioDone >= 0 {
		t.Fatal("guest continuation ran during checkpoint")
	}
	if err := k.Resume(nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if ioDone < 0 {
		t.Fatal("continuation lost")
	}
}

func TestSuspendResumeErrors(t *testing.T) {
	s, k := newKernel(1)
	if err := k.Resume(nil); err == nil {
		t.Fatal("resume of running guest succeeded")
	}
	if err := k.Suspend(func() {}); err != nil {
		t.Fatal(err)
	}
	if err := k.Suspend(func() {}); err == nil {
		t.Fatal("double suspend succeeded")
	}
	s.RunFor(sim.Second)
	if err := k.Resume(nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
}

func TestCheckpointConcealsTime(t *testing.T) {
	s, k := newKernel(1)
	s.RunFor(sim.Second)
	v0 := k.Monotonic()
	resumed := false
	if err := k.Suspend(func() {}); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second) // long checkpoint
	if err := k.Resume(func() { resumed = true }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(sim.Second)
	if !resumed {
		t.Fatal("resume callback missing")
	}
	leak := k.Clock.LeakTotal()
	elapsedVirtual := k.Monotonic() - v0
	// ~1 s of running time (reconnect happens in real time while frozen)
	// plus the calibrated sub-100 µs leak; the 10 s checkpoint vanishes.
	if elapsedVirtual > sim.Second+200*sim.Microsecond {
		t.Fatalf("virtual elapsed %v; checkpoint leaked", elapsedVirtual)
	}
	if leak < 55*sim.Microsecond || leak > 90*sim.Microsecond {
		t.Fatalf("leak %v outside calibrated band", leak)
	}
}

func TestDirtyTracker(t *testing.T) {
	d := DirtyTracker{PageSize: 4096, Resident: 100}
	d.Touch(0)
	d.Touch(-5)
	if d.Dirty() != 0 {
		t.Fatal("bad touch counted")
	}
	d.Touch(50)
	if d.Dirty() != 50 {
		t.Fatalf("dirty = %d", d.Dirty())
	}
	d.TouchBytes(8192)
	if d.Dirty() != 52 {
		t.Fatalf("dirty = %d", d.Dirty())
	}
	if got := d.TakeDirty(); got != 52 {
		t.Fatalf("take = %d", got)
	}
	if d.Dirty() != 0 {
		t.Fatal("not cleared")
	}
	// Dirty never exceeds resident.
	d.Touch(1 << 20)
	if d.Dirty() > d.Resident {
		t.Fatal("dirty exceeds resident")
	}
}

func TestAccrueBackgroundDirty(t *testing.T) {
	s, k := newKernel(1)
	s.RunFor(10 * sim.Second)
	k.Dirty.TakeDirty()
	k.AccrueBackgroundDirty()
	base := k.Dirty.Dirty()
	if base <= 0 {
		t.Fatal("no background dirtying accrued")
	}
	// Idempotent at the same instant.
	k.AccrueBackgroundDirty()
	if k.Dirty.Dirty() != base {
		t.Fatal("double accrual")
	}
}

func TestMemoryImageBytes(t *testing.T) {
	_, k := newKernel(1)
	if got := k.MemoryImageBytes(); got != int64(k.Cfg.BootResident)*4096 {
		t.Fatalf("image = %d", got)
	}
}

// Property: any interleaving of sleeps and checkpoints preserves virtual
// sleep durations to within the leak bound.
func TestPropertySleepTransparency(t *testing.T) {
	f := func(ckptAtMs uint8, ckptLenMs uint8) bool {
		s, k := newKernel(17)
		k.P.WakeupJitterMean = 0
		k.P.WakeupJitterStddev = 0
		var woke sim.Time = -1
		k.Usleep(30*sim.Millisecond, func() { woke = k.Monotonic() })
		s.RunFor(sim.Time(ckptAtMs%39) * sim.Millisecond)
		if k.Suspend(func() {}) != nil {
			return false
		}
		s.RunFor(sim.Time(ckptLenMs)*sim.Millisecond + 20*sim.Millisecond)
		if k.Resume(nil) != nil {
			return false
		}
		s.Run()
		// Wake at 40 ms virtual (tick after 30 ms) ± leak.
		return woke >= 40*sim.Millisecond && woke <= 40*sim.Millisecond+100*sim.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
