package dummynet

import (
	"testing"
	"testing/quick"

	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func TestFreezeEmptyPipe(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "p", 100*simnet.Mbps, sim.Millisecond, nil)
	p.Freeze()
	st, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Queue) != 0 || len(st.DelayLine) != 0 {
		t.Fatal("phantom state in empty pipe")
	}
	if st.HeadTxLeft != -1 {
		t.Fatalf("head tx left = %v for idle pipe", st.HeadTxLeft)
	}
	p.Thaw()
	if p.Frozen() {
		t.Fatal("thaw failed")
	}
}

func TestRestoredStatsIncludeDrops(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "p", 1*simnet.Mbps, 0, nil)
	p.Slots = 1
	p.PLR = 0
	for i := 0; i < 5; i++ {
		p.Accept(&simnet.Packet{Size: 1500})
	}
	p.Freeze()
	st, _ := p.Serialize()
	p2 := NewPipe(s, "p", 1*simnet.Mbps, 0, nil)
	p2.Restore(st)
	if p2.Dropped != 4 {
		t.Fatalf("restored drops = %d", p2.Dropped)
	}
	if p2.Slots != 1 {
		t.Fatal("config not restored")
	}
}

func TestPartialLossRate(t *testing.T) {
	s := sim.New(42)
	k := &sink{s: s}
	p := NewPipe(s, "p", 0, 0, k)
	p.PLR = 0.3
	const n = 5000
	p.Slots = n // deep queue: only PLR may drop
	for i := 0; i < n; i++ {
		p.Accept(&simnet.Packet{Size: 100})
	}
	s.Run()
	frac := float64(p.PLRDrops) / n
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("drop fraction %.3f, want ~0.3", frac)
	}
	if len(k.pkts)+int(p.PLRDrops) != n {
		t.Fatal("conservation")
	}
}

func TestDelayNodeLossSymmetric(t *testing.T) {
	s := sim.New(1)
	d := NewDelayNode(s, "d", 100*simnet.Mbps, 0)
	d.SetLoss(1)
	if d.Forward.PLR != 1 || d.Reverse.PLR != 1 {
		t.Fatal("loss not symmetric")
	}
}

func TestStateByteEstimates(t *testing.T) {
	s := sim.New(1)
	d := NewDelayNode(s, "d", 0, 50*sim.Millisecond)
	k := &sink{s: s}
	d.AttachForward(k)
	for i := 0; i < 10; i++ {
		d.Forward.Accept(&simnet.Packet{Size: 1500})
	}
	d.Freeze()
	st, err := d.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes() < 10*1500 {
		t.Fatalf("state bytes %d below payload", st.Bytes())
	}
	if st.Name != "d" {
		t.Fatal("name lost")
	}
}

func TestThawedPipeAcceptsNewTraffic(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	p := NewPipe(s, "p", 100*simnet.Mbps, sim.Millisecond, k)
	p.Freeze()
	s.RunFor(10 * sim.Millisecond)
	p.Thaw()
	p.Accept(&simnet.Packet{Size: 1250})
	s.Run()
	if len(k.pkts) != 1 {
		t.Fatal("post-thaw traffic lost")
	}
}

// Property: serialize -> restore -> serialize produces an identical
// state image, for any traffic pattern and freeze point.
func TestPropertySerializeRoundTripStable(t *testing.T) {
	f := func(sizes []uint16, freezeUs uint16) bool {
		s := sim.New(21)
		p := NewPipe(s, "p", 50*simnet.Mbps, 4*sim.Millisecond, nil)
		for _, raw := range sizes {
			p.Accept(&simnet.Packet{Size: int(raw%1400) + 64})
		}
		s.RunFor(sim.Time(freezeUs) * sim.Microsecond)
		p.Freeze()
		st1, err := p.Serialize()
		if err != nil {
			return false
		}
		p2 := NewPipe(s, "p", 50*simnet.Mbps, 4*sim.Millisecond, nil)
		p2.Restore(st1)
		st2, err := p2.Serialize()
		if err != nil {
			return false
		}
		if len(st1.Queue) != len(st2.Queue) || len(st1.DelayLine) != len(st2.DelayLine) {
			return false
		}
		for i := range st1.DelayLine {
			if st1.DelayLine[i].RemainingDelay != st2.DelayLine[i].RemainingDelay {
				return false
			}
			if st1.DelayLine[i].Packet.Size != st2.DelayLine[i].Packet.Size {
				return false
			}
		}
		return st1.HeadTxLeft == st2.HeadTxLeft && st1.Bytes() == st2.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
