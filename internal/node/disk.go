package node

import (
	"fmt"

	"emucheck/internal/sim"
)

// DiskOp distinguishes request types.
type DiskOp int

// Disk operations.
const (
	Read DiskOp = iota
	Write
)

func (op DiskOp) String() string {
	if op == Read {
		return "read"
	}
	return "write"
}

// DiskRequest is one I/O submitted to the disk queue.
type DiskRequest struct {
	Op     DiskOp
	LBA    int64 // logical block address in bytes
	Bytes  int64
	Done   func()
	issued sim.Time
}

// Disk models one 10k RPM SCSI disk with a FIFO queue and a
// seek + rotation + transfer service time. Sequential accesses (request
// starting where the previous one ended) skip the positioning cost,
// which is what gives the branching store its locality-sensitivity
// (paper §5.3: merged deltas are reordered to restore locality).
type Disk struct {
	s *sim.Simulator
	p Params

	queue   []*DiskRequest
	active  bool
	headPos int64 // byte position after last transfer

	// Throttle expresses bandwidth given up to rate-limited background
	// work (LVM mirror synchronization, §5.3); 0 = none, 0.5 = half.
	throttle float64

	waiters []func()

	// Statistics.
	ReadBytes    int64
	WriteBytes   int64
	ReadOps      int64
	WriteOps     int64
	BusyTime     sim.Time
	SeekOps      int64
	TotalLatency sim.Time
}

// NewDisk creates an idle disk.
func NewDisk(s *sim.Simulator, p Params) *Disk {
	return &Disk{s: s, p: p}
}

// QueueLen reports outstanding requests, including the active one.
func (d *Disk) QueueLen() int {
	n := len(d.queue)
	if d.active {
		n++
	}
	return n
}

// SetThrottle diverts the given fraction of disk bandwidth away from the
// request stream (to model competing background transfers sharing the
// spindle). Values are clamped to [0, 0.9].
func (d *Disk) SetThrottle(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 0.9 {
		f = 0.9
	}
	d.throttle = f
}

// Submit queues a request. Done fires when the transfer completes.
func (d *Disk) Submit(r *DiskRequest) {
	if r.Bytes <= 0 {
		panic(fmt.Sprintf("disk: empty %s request", r.Op))
	}
	r.issued = d.s.Now()
	d.queue = append(d.queue, r)
	if !d.active {
		d.startNext()
	}
}

// ServiceTime reports how long a request at lba/bytes takes given the
// current head position; exported for capacity planning in tests.
func (d *Disk) ServiceTime(lba, bytes int64) sim.Time {
	t := d.p.DiskOverhead
	if lba != d.headPos {
		dist := lba - d.headPos
		if dist < 0 {
			dist = -dist
		}
		// Short hops cost a track seek; long hops the average seek.
		if dist <= 64<<20 {
			t += d.p.DiskSeekTrack
		} else {
			t += d.p.DiskSeekAvg
		}
		t += d.p.DiskRotationalHalf
		d.SeekOps++
	}
	rate := float64(d.p.DiskTransferBps) * (1 - d.throttle)
	t += sim.Time(float64(bytes) / rate * float64(sim.Second))
	return t
}

func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		d.active = false
		return
	}
	d.active = true
	r := d.queue[0]
	d.queue = d.queue[1:]
	svc := d.ServiceTime(r.LBA, r.Bytes)
	d.BusyTime += svc
	d.s.DoAfter(svc, "disk.io", func() {
		d.headPos = r.LBA + r.Bytes
		if r.Op == Read {
			d.ReadBytes += r.Bytes
			d.ReadOps++
		} else {
			d.WriteBytes += r.Bytes
			d.WriteOps++
		}
		d.TotalLatency += d.s.Now() - r.issued
		if r.Done != nil {
			r.Done()
		}
		d.startNext()
		if !d.active && len(d.waiters) > 0 {
			ws := d.waiters
			d.waiters = nil
			for _, w := range ws {
				w()
			}
		}
	})
}

// Drain invokes fn once all in-flight requests have completed. This is
// the paper's "block device drivers need their IRQ handlers to run
// outside of the firewall in order to drain in-flight requests" (§4.1):
// the checkpoint waits for the disk to go quiet before sealing device
// state. Requests submitted after Drain delay the notification further;
// checkpointing guests stop submitting before draining.
func (d *Disk) Drain(fn func()) {
	if !d.active && len(d.queue) == 0 {
		d.s.DoAfter(0, "disk.drain", fn)
		return
	}
	d.waiters = append(d.waiters, fn)
}
