package sched

import (
	"testing"

	"emucheck/internal/sim"
)

// TestIdleFirstBreaksTiesByParkCost: two equally idle victims — the
// scheduler must preempt the one whose park moves fewer bytes.
func TestIdleFirstBreaksTiesByParkCost(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, IdleFirst)
	d.MinResidency = 3 * sim.Second
	cheap := fakeJob(s, "cheap", 2, 0, 0, sim.Second, sim.Second)
	cheap.Hooks.ParkCost = func() int64 { return 4 << 20 }
	costly := fakeJob(s, "costly", 2, 0, 0, sim.Second, sim.Second)
	costly.Hooks.ParkCost = func() int64 { return 256 << 20 }
	for _, j := range []*Job{costly, cheap} {
		if err := d.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(2 * sim.Second)
	// Same lastActive (both touched at admission, no activity since):
	// force the tie by touching both at the same instant.
	d.Touch("cheap")
	d.Touch("costly")
	s.RunFor(2 * sim.Second)

	newcomer := fakeJob(s, "new", 2, 0, 0, sim.Second, sim.Second)
	if err := d.Submit(newcomer); err != nil {
		t.Fatal(err)
	}
	// The decision lands at submit; stop before the 1 s park completes,
	// because the parked job's re-queue then starts the next round.
	s.RunFor(500 * sim.Millisecond)

	if cheap.Preemptions() != 1 || costly.Preemptions() != 0 {
		t.Fatalf("preempted cheap=%d costly=%d; tie should break to the cheap park",
			cheap.Preemptions(), costly.Preemptions())
	}
	if d.PreemptedBytes != 4<<20 {
		t.Fatalf("PreemptedBytes = %d, want %d", d.PreemptedBytes, 4<<20)
	}
	if cheap.LastParkCost() != 4<<20 {
		t.Fatalf("LastParkCost = %d", cheap.LastParkCost())
	}
}

// TestIdlenessStillDominatesCost: park cost is a tie-break, not the
// primary key — a long-idle expensive job is still preferred over a
// recently active cheap one.
func TestIdlenessStillDominatesCost(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, IdleFirst)
	d.MinResidency = 3 * sim.Second
	idle := fakeJob(s, "idle", 2, 0, 0, sim.Second, sim.Second)
	idle.Hooks.ParkCost = func() int64 { return 256 << 20 }
	busy := fakeJob(s, "busy", 2, 0, 0, sim.Second, sim.Second)
	busy.Hooks.ParkCost = func() int64 { return 1 << 20 }
	for _, j := range []*Job{idle, busy} {
		if err := d.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(5 * sim.Second)
	d.Touch("busy")

	if err := d.Submit(fakeJob(s, "new", 2, 0, 0, sim.Second, sim.Second)); err != nil {
		t.Fatal(err)
	}
	s.RunFor(500 * sim.Millisecond)

	if idle.Preemptions() != 1 || busy.Preemptions() != 0 {
		t.Fatalf("preempted idle=%d busy=%d; idleness must dominate cost",
			idle.Preemptions(), busy.Preemptions())
	}
	if d.PreemptedBytes != 256<<20 {
		t.Fatalf("PreemptedBytes = %d", d.PreemptedBytes)
	}
}
