// Package xen models the hypervisor side of the checkpoint (paper §4):
// a paravirtualized domain per node, XenBus signalling between dom0 and
// the guest, and a live checkpoint extended from Xen's live migration —
// iterative pre-copy rounds over the dirty-page log while the guest
// runs, then a stop-and-copy of the residual dirty set and device state
// while the temporal firewall conceals the downtime.
//
// The background phases are not free: copying burns dom0 CPU (a share of
// the physical core) and scratch-disk bandwidth, which is exactly the
// residual interference the paper measures in Figs. 5 and 6. Even
// trivial dom0 commands perturb a CPU-bound guest; Dom0Job models that
// directly (§7.1: ls 5–7 ms, sum 13–17 ms, xm list 130 ms).
package xen

import (
	"fmt"

	"emucheck/internal/guest"
	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/vclock"
)

// XenBusLatency is the dom0->guest signalling latency for suspend
// requests and watch events.
const XenBusLatency = 200 * sim.Microsecond

// SaveTarget selects where the checkpoint image is written.
type SaveTarget int

// Save targets.
const (
	// ToScratchDisk writes the image to the node's second local disk,
	// the time-travel snapshot store (§6).
	ToScratchDisk SaveTarget = iota
	// ToControlNet streams the image over the 100 Mbps control network
	// to the Emulab file server (stateful swap-out, §7.2).
	ToControlNet
)

// SaveOptions tunes one live checkpoint.
type SaveOptions struct {
	Target SaveTarget

	// SuspendAt is the absolute (node-local) time to engage the
	// firewall. Zero means "as soon as pre-copy converges or MaxRounds
	// is reached" (event-driven checkpoint).
	SuspendAt sim.Time

	// Incremental restricts the first round to pages dirtied since the
	// previous checkpoint instead of the full resident set — how the
	// time-travel system affords frequent checkpointing.
	Incremental bool

	// MaxRounds bounds pre-copy iterations (default 4).
	MaxRounds int

	// ThresholdPages stops pre-copy once the dirty set is this small
	// (default 128 pages).
	ThresholdPages int

	// Dom0CPUShare is the CPU fraction the copy engine consumes while
	// the guest runs (default 0.30).
	Dom0CPUShare float64

	// OnError, if set, is notified when an accepted save fails later
	// (e.g. the suspend raced something that had already frozen the
	// guest); done never fires for such a save. Without the hook the
	// failure would be silent and a barrier waiting on this member
	// could only be cleared by a save deadline.
	OnError func(error)
}

func (o *SaveOptions) defaults() {
	if o.MaxRounds <= 0 {
		o.MaxRounds = 4
	}
	if o.ThresholdPages <= 0 {
		o.ThresholdPages = 128
	}
	if o.Dom0CPUShare <= 0 {
		o.Dom0CPUShare = 0.12
	}
}

// Image is a saved domain checkpoint.
type Image struct {
	Node        string
	MemoryBytes int64 // pages written across all rounds
	DeviceBytes int64
	Clock       *vclock.State

	Rounds        int
	Downtime      sim.Time // real time from engage to disengage-eligible
	SuspendedAt   sim.Time // real time the firewall engaged
	CompletedAt   sim.Time
	StopCopyPages int
}

// Hypervisor manages the one guest domain of a machine.
type Hypervisor struct {
	M *node.Machine
	P node.Params
	K *guest.Kernel

	saving      bool
	cancelled   bool  // abort requested for the in-flight save
	crashed     bool  // machine fail-stopped
	stagedBytes int64 // image bytes staged in dom0, awaiting write-back

	// CopyRateMem is the RAM-to-RAM rate at which the save engine walks
	// and copies pages into a dom0 staging buffer; scratch-disk targets
	// copy at this rate and write the image back in the background, the
	// way Remus-derived live checkpointing behaves. CopyRateNet gates
	// control-network targets (swap), where the transfer itself is the
	// bottleneck and the guest stays frozen until state is off-node.
	CopyRateMem int64
	CopyRateNet int64

	// Saves counts completed checkpoints.
	Saves int
}

// New creates a hypervisor hosting kernel k on machine m.
func New(m *node.Machine, p node.Params, k *guest.Kernel) *Hypervisor {
	return &Hypervisor{
		M: m, P: p, K: k,
		CopyRateMem: 700 << 20, // RAM-to-RAM staging
		CopyRateNet: int64(p.ControlLink) / 8,
	}
}

func (h *Hypervisor) rate(t SaveTarget) int64 {
	if t == ToControlNet {
		return h.CopyRateNet
	}
	return h.CopyRateMem
}

// copyOut models moving n bytes of checkpoint state: it takes n/rate
// seconds and steals share of the CPU. Scratch-disk targets stage the
// image in dom0 memory at CopyRateMem and write it back asynchronously
// — the disk traffic and write-back CPU land after fn, which is the
// residual background interference Fig. 5/6 observe.
func (h *Hypervisor) copyOut(n int64, o SaveOptions, fn func()) {
	if n <= 0 {
		h.M.Sim.DoAfter(0, "xen.copy0", fn)
		return
	}
	d := sim.Time(float64(n) / float64(h.rate(o.Target)) * float64(sim.Second))
	h.M.CPU.Steal(h.M.Sim.Now(), d, o.Dom0CPUShare)
	h.K.FW.Replan()
	if o.Target == ToScratchDisk {
		// Staged in dom0 memory; written back once, after resume.
		h.stagedBytes += n
	}
	h.M.Sim.DoAfter(d, "xen.copy", fn)
}

// Dom0Job models an operator command in the privileged domain: it steals
// the CPU share for the duration, perturbing the guest (§7.1's ls / sum /
// xm list experiment).
func (h *Hypervisor) Dom0Job(dur sim.Time, share float64) {
	h.M.CPU.Steal(h.M.Sim.Now(), dur, share)
	h.K.FW.Replan()
}

// Saving reports whether a live save is in flight.
func (h *Hypervisor) Saving() bool { return h.saving && !h.crashed }

// Crashed reports whether the machine has fail-stopped.
func (h *Hypervisor) Crashed() bool { return h.crashed }

// CancelSave aborts an in-flight save — the coordinator's epoch-abort
// path. The save machinery observes the flag at its next step, cleans
// up, and resumes the guest if the save had already frozen it; the
// save's done callback never fires. A no-op without a save in flight.
func (h *Hypervisor) CancelSave() {
	if h.saving && !h.crashed {
		h.cancelled = true
	}
}

// Crash fail-stops the machine: the guest freezes where it stands (its
// temporal firewall engages and nothing on this incarnation ever
// disengages it), an in-flight save is abandoned without completing,
// and Save/Resume refuse service until Restore. This is the fault
// layer's node-death primitive.
func (h *Hypervisor) Crash() {
	if h.crashed {
		return
	}
	h.crashed = true
	h.K.Crash()
}

// Restore revives a crashed node after its state has been re-staged
// from the last committed checkpoint epoch: the crash flag clears and
// the guest resumes. The transfer cost of re-staging is the caller's
// business (swap.Manager.Recover charges it).
func (h *Hypervisor) Restore(fn func()) error {
	if !h.crashed {
		return fmt.Errorf("xen: %s is not crashed", h.M.Name)
	}
	h.crashed = false
	h.saving = false
	h.cancelled = false
	h.K.Revive()
	return h.Resume(fn)
}

// endCancel finishes an aborted save: clear the machinery and thaw the
// guest if the save had frozen it.
func (h *Hypervisor) endCancel() {
	h.saving = false
	h.cancelled = false
	if h.K.Suspended() {
		_ = h.Resume(nil)
	}
}

// Save performs a live checkpoint and calls done with the image while
// the guest is still suspended — the caller (the distributed
// coordinator) decides when to Resume, after the cross-node barrier.
func (h *Hypervisor) Save(o SaveOptions, done func(*Image)) error {
	if h.crashed {
		return fmt.Errorf("xen: %s has crashed", h.M.Name)
	}
	if h.saving {
		return fmt.Errorf("xen: save already in progress on %s", h.M.Name)
	}
	o.defaults()
	h.saving = true
	h.cancelled = false
	img := &Image{Node: h.M.Name}
	h.preCopyRound(o, img, 1, done)
	return nil
}

func (h *Hypervisor) preCopyRound(o SaveOptions, img *Image, round int, done func(*Image)) {
	if h.crashed {
		return // the machine died mid-save; the image is lost
	}
	if h.cancelled {
		h.endCancel()
		return
	}
	now := h.M.Sim.Now()
	// A scheduled suspend takes priority over convergence.
	if o.SuspendAt > 0 && now >= o.SuspendAt {
		h.suspendAndCopy(o, img, done)
		return
	}
	h.K.AccrueBackgroundDirty()
	var pages int
	if round == 1 && !o.Incremental {
		// The first round of a full save copies the whole resident set;
		// the dirty log restarts from zero behind it.
		pages = h.K.Dirty.Resident
		h.K.Dirty.TakeDirty()
	} else {
		pages = h.K.Dirty.TakeDirty()
	}
	if o.SuspendAt == 0 && (pages <= o.ThresholdPages || round > o.MaxRounds) {
		// Event-driven save: converged (or gave up) — the final set is
		// handled by stop-and-copy.
		h.K.Dirty.ForceDirty(pages)
		h.suspendAndCopy(o, img, done)
		return
	}
	if pages == 0 {
		// Scheduled suspend with a clean dirty log: idle until the
		// deadline (or re-poll), accruing background dirtying.
		wait := o.SuspendAt - now
		if wait > 100*sim.Millisecond {
			wait = 100 * sim.Millisecond
		}
		h.M.Sim.DoAfter(wait, "xen.precopy-idle", func() {
			h.preCopyRound(o, img, round, done)
		})
		return
	}
	bytes := int64(pages) * int64(h.P.PageSize)
	copyDur := sim.Time(float64(bytes) / float64(h.rate(o.Target)) * float64(sim.Second))
	if o.SuspendAt > 0 && now+copyDur > o.SuspendAt {
		// Cap the round at the deadline; pages we cannot copy in time
		// stay dirty for the stop-and-copy phase.
		copyDur = o.SuspendAt - now
		copied := int64(float64(copyDur) / float64(sim.Second) * float64(h.rate(o.Target)))
		if copied < int64(h.P.PageSize) {
			// Not even one page fits before the deadline: put everything
			// back and sleep straight through to the suspend.
			h.K.Dirty.ForceDirty(pages)
			h.M.Sim.DoAfter(copyDur, "xen.precopy-deadline", func() {
				h.preCopyRound(o, img, round, done)
			})
			return
		}
		uncopied := int((bytes - copied) / int64(h.P.PageSize))
		h.K.Dirty.ForceDirty(uncopied)
		bytes = copied
	}
	img.Rounds = round
	img.MemoryBytes += bytes
	h.copyOut(bytes, o, func() {
		h.preCopyRound(o, img, round+1, done)
	})
}

// suspendAndCopy engages the firewall (via the XenBus suspend request),
// drains devices, copies the residual dirty set and device state, and
// hands the image to the caller with the guest still frozen.
func (h *Hypervisor) suspendAndCopy(o SaveOptions, img *Image, done func(*Image)) {
	h.M.Sim.DoAfter(XenBusLatency, "xenbus.suspend", func() {
		if h.crashed {
			return
		}
		if h.cancelled {
			h.endCancel()
			return
		}
		suspendStart := h.M.Sim.Now()
		err := h.K.Suspend(func() {
			if h.crashed {
				return // died frozen; recovery owns the guest now
			}
			if h.cancelled {
				h.endCancel()
				return
			}
			img.SuspendedAt = suspendStart
			h.K.AccrueBackgroundDirty()
			residual := h.K.Dirty.TakeDirty()
			img.StopCopyPages = residual
			stopBytes := int64(residual) * int64(h.P.PageSize)
			devBytes := int64(192 << 10) // front-end rings, grant state
			img.DeviceBytes = devBytes
			img.MemoryBytes += stopBytes
			h.copyOut(stopBytes+devBytes, o, func() {
				if h.crashed {
					return
				}
				if h.cancelled {
					h.endCancel()
					return
				}
				st, serr := h.K.Clock.Serialize()
				if serr != nil {
					panic("xen: clock not frozen during save: " + serr.Error())
				}
				img.Clock = st
				img.Downtime = h.M.Sim.Now() - suspendStart
				img.CompletedAt = h.M.Sim.Now()
				h.Saves++
				h.saving = false
				done(img)
			})
		})
		if err != nil {
			// The suspend raced something that already froze the guest (a
			// crash, a parallel freeze): abandon this save cleanly and
			// report the failure so the caller's epoch can abort instead
			// of waiting on a barrier arrival that will never come.
			h.saving = false
			h.cancelled = false
			if o.OnError != nil {
				o.OnError(err)
			}
		}
	})
}

// Resume restarts the guest after a Save. The staged image is written
// back to the scratch disk in the background, stealing a slice of dom0
// CPU and the spindle — the residual interference visible in Fig. 5.
func (h *Hypervisor) Resume(fn func()) error {
	if h.crashed {
		return fmt.Errorf("xen: %s has crashed", h.M.Name)
	}
	err := h.K.Resume(func() {
		h.M.CPU.Steal(h.M.Sim.Now(), 90*sim.Millisecond, 0.10)
		if h.stagedBytes > 0 {
			writeback := sim.Time(float64(h.stagedBytes) / float64(58<<20) * float64(sim.Second))
			h.M.CPU.Steal(h.M.Sim.Now(), writeback, 0.04)
			h.M.Scratch.Submit(&node.DiskRequest{Op: node.Write, LBA: 0, Bytes: h.stagedBytes, Done: nil})
			h.stagedBytes = 0
		}
		h.K.FW.Replan()
		if fn != nil {
			fn()
		}
	})
	return err
}
