package scenario

import (
	"fmt"
	"strings"

	"emucheck"
	"emucheck/internal/apps"
	"emucheck/internal/core"
	"emucheck/internal/fault"
	"emucheck/internal/federation"
	"emucheck/internal/guest"
	"emucheck/internal/health"
	"emucheck/internal/metrics"
	"emucheck/internal/notify"
	"emucheck/internal/remediate"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// ExpStats accumulates one experiment's observable progress.
type ExpStats struct {
	Ticks       int64 `json:"ticks"`
	Checkpoints int   `json:"checkpoints"`
	// Outcome is the workload's terminal verdict (racyelect: the leader
	// elected, or "split-brain").
	Outcome string `json:"outcome,omitempty"`
}

// Check is one evaluated assertion.
type Check struct {
	Desc   string `json:"desc"`
	Ok     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// ExpRow is one experiment's end-of-run summary.
type ExpRow struct {
	Name        string  `json:"name"`
	State       string  `json:"state"`
	Ticks       int64   `json:"ticks"`
	Checkpoints int     `json:"checkpoints"`
	Admissions  int     `json:"admissions"`
	Preemptions int     `json:"preemptions"`
	QueueWaitS  float64 `json:"queue_wait_s"`
	// SwapMB is the experiment's total file-server traffic (both
	// directions) across its swap cycles, in MB.
	SwapMB float64 `json:"swap_mb"`
	// Outcome is the workload's terminal verdict, if it has one.
	Outcome string `json:"outcome,omitempty"`
	// EpochsAborted counts checkpoint epochs that aborted (save
	// failures, stragglers, crash-forced aborts) on the experiment's
	// current coordinator.
	EpochsAborted int `json:"epochs_aborted,omitempty"`
	// Recoveries counts restorations from a committed epoch after a
	// crash; LostWorkMs is the work those recoveries discarded.
	Recoveries int     `json:"recoveries,omitempty"`
	LostWorkMs float64 `json:"lost_work_ms,omitempty"`
	// Health-loop accounting (health stanza only): unhealthy verdicts
	// against this experiment, worst detection latency and
	// crash-to-back-in-service time, unattended remediations initiated,
	// and whether the budget escalated to quarantine.
	Detections   int     `json:"detections,omitempty"`
	DetectMs     float64 `json:"detect_ms,omitempty"`
	MTTRMs       float64 `json:"mttr_ms,omitempty"`
	Remediations int     `json:"remediations,omitempty"`
	Quarantined  bool    `json:"quarantined,omitempty"`
	// LastError surfaces the experiment's most recent control-plane
	// failure (aborted epoch, failed park, ...).
	LastError string `json:"last_error,omitempty"`
}

// BusStats is the control LAN's delivery ledger for the run — how many
// notifications were published, delivered, and lost to injected
// faults, per topic.
type BusStats struct {
	Published uint64                       `json:"published"`
	Delivered uint64                       `json:"delivered"`
	Dropped   uint64                       `json:"dropped"`
	Topics    map[string]notify.TopicStats `json:"topics,omitempty"`
}

// BranchRow is one explored branch's end-of-run summary.
type BranchRow struct {
	Name    string `json:"name"`
	Seed    int64  `json:"seed"`
	State   string `json:"state"`
	Outcome string `json:"outcome,omitempty"`
	Ticks   int64  `json:"ticks"`
}

// SearchResult summarizes a branch fan-out exploration.
type SearchResult struct {
	Parent string `json:"parent"`
	FanOut int    `json:"fan_out"`
	// Naive marks the per-branch full-copy baseline.
	Naive    bool        `json:"naive,omitempty"`
	Branches []BranchRow `json:"branches"`
	// DistinctOutcomes counts the different terminal verdicts the
	// branches reached — the breadth the search bought.
	DistinctOutcomes int `json:"distinct_outcomes"`
	// StoredMB is the chain store's unique server-side footprint;
	// SharedMB the replay bytes branches hold by shared reference.
	StoredMB float64 `json:"stored_mb"`
	SharedMB float64 `json:"shared_mb"`
	// MulticastSavedMB is what unicasting the staged prefix to every
	// branch would have added to the control LAN.
	MulticastSavedMB float64 `json:"multicast_saved_mb"`
	GangAdmissions   int     `json:"gang_admissions"`
}

// StorageReport is the chain-storage tier's end-of-run accounting
// (present when the scenario declared a storage stanza).
type StorageReport struct {
	// Backend names the tier the run used.
	Backend string `json:"backend"`
	// CacheMB is the configured delta-cache size (0 = no cache).
	CacheMB int64 `json:"cache_mb,omitempty"`
	// Cache hit/miss/evict counters, from the delta cache's ledger.
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	CacheHitMB     float64 `json:"cache_hit_mb"`
	CacheEvictions int64   `json:"cache_evictions"`
	CacheEvictedMB float64 `json:"cache_evicted_mb"`
	// HitRatio is hits / lookups (0 when the cache was never consulted).
	HitRatio float64 `json:"cache_hit_ratio"`
	// LocalMB is chain state served or stored on node-local media;
	// RemoteMB crossed the control LAN to or from the shared pool;
	// SpillMB is snapshot-disk overflow pushed to the pool.
	LocalMB  float64 `json:"local_mb"`
	RemoteMB float64 `json:"remote_mb"`
	SpillMB  float64 `json:"spill_mb,omitempty"`
}

// HealthReport is the autonomous health loop's run-wide ledger
// (present when the scenario declared a health stanza).
type HealthReport struct {
	// Policy is the detection preset the run used.
	Policy string `json:"policy"`
	// Probes and Fails count delivered probe outcomes (skips excluded);
	// Detections counts unhealthy flips across all targets.
	Probes     int `json:"probes"`
	Fails      int `json:"fails"`
	Detections int `json:"detections"`
	// Remediations counts recoveries the controller initiated; Retries
	// counts backed-off re-attempts; Quarantines counts budget
	// exhaustions.
	Remediations int `json:"remediations"`
	Retries      int `json:"retries,omitempty"`
	Quarantines  int `json:"quarantines,omitempty"`
	// The cordon ledger and drain tally; OpenCordons must be zero at
	// quiescence (the suite's no-orphaned-cordon invariant).
	CordonsIssued   int `json:"cordons_issued"`
	CordonsReleased int `json:"cordons_released"`
	OpenCordons     int `json:"open_cordons"`
	DrainedVictims  int `json:"drained_victims,omitempty"`
	// Errors records remediation hook failures.
	Errors []string `json:"errors,omitempty"`
}

// Result is a completed scenario run.
type Result struct {
	Name        string  `json:"name"`
	Pass        bool    `json:"pass"`
	Ran         string  `json:"ran"` // simulated time covered
	Utilization float64 `json:"utilization"`
	Preemptions int     `json:"preemptions"`
	Admissions  int     `json:"admissions"`
	// SwapMode is the transfer mode the run used (full or incremental).
	SwapMode string `json:"swap_mode"`
	// PreemptedMB is the scheduler's estimated transfer bill for its
	// involuntary parks, in MB (proportional to dirtied state under
	// incremental swapping).
	PreemptedMB float64  `json:"preempted_mb"`
	Experiments []ExpRow `json:"experiments"`
	// Search is the fan-out exploration summary (search scenarios only).
	Search *SearchResult `json:"search,omitempty"`
	// Storage is the chain-storage tier's accounting (storage stanza
	// only).
	Storage *StorageReport `json:"storage,omitempty"`
	// Federation is the federated-fleet run's accounting (federation
	// stanza only). Every field — including the digest — is a pure
	// function of (file, seed), so replay digests stay byte-identical
	// whatever the worker count.
	Federation *federation.Result `json:"federation,omitempty"`
	// Health is the autonomous health loop's ledger (health stanza
	// only).
	Health *HealthReport `json:"health,omitempty"`
	// Bus reports control-LAN delivery stats (always present when the
	// scenario injected faults, so lost notifications are observable).
	Bus *BusStats `json:"bus,omitempty"`
	// Faults summarizes the injection plan's effect.
	Faults      *FaultSummary `json:"faults,omitempty"`
	Checks      []Check       `json:"checks,omitempty"`
	EventErrors []string      `json:"event_errors,omitempty"`
}

// FaultSummary reports what the injection plan actually did.
type FaultSummary struct {
	Planned int      `json:"planned"`
	Crashes int      `json:"crashes"`
	Dropped int      `json:"dropped"`
	Delayed int      `json:"delayed"`
	Slowed  int      `json:"slowed"`
	Errors  []string `json:"errors,omitempty"`
}

// Run validates and replays the scenario, returning the evaluated
// result. Validation failures abort before anything runs.
func Run(f *File) (*Result, error) {
	res, _, err := RunWithCluster(f)
	return res, err
}

// RunWithCluster is Run, but also hands back the finished cluster so
// callers (the suite runner's shared invariants) can audit hardware
// ledgers, chain-store refcounts, and bus accounting after the run.
func RunWithCluster(f *File) (*Result, *emucheck.Cluster, error) {
	if errs := Validate(f); len(errs) > 0 {
		lines := make([]string, len(errs))
		for i, e := range errs {
			lines[i] = e.Error()
		}
		return nil, nil, fmt.Errorf("scenario %q invalid:\n  %s", f.Name, strings.Join(lines, "\n  "))
	}
	if f.Federation != nil {
		res := runFederationScenario(f)
		return res, nil, nil
	}
	pol, _ := sched.ParsePolicy(f.Policy)
	c := emucheck.NewCluster(f.Pool, f.Seed, pol)
	c.Incremental = f.Swap == "incremental"
	if st := f.Storage; st != nil {
		if err := c.ConfigureStorage(emucheck.StorageOptions{
			Backend: st.Backend, CacheMB: st.CacheMB, DiskMB: st.DiskMB,
		}); err != nil {
			return nil, nil, fmt.Errorf("scenario %q: %v", f.Name, err)
		}
	}
	// Straggler detection: explicit save_deadline wins; otherwise any
	// fault-injected run gets a default so a crashed or deafened member
	// aborts its epoch instead of hanging it.
	if sd, _ := parseDur(f.SaveDeadline); sd > 0 {
		c.SaveDeadline = sd
	} else if len(f.Faults) > 0 {
		c.SaveDeadline = 30 * sim.Second
	}
	// Arm the health loop before the first submission so every tenant is
	// watched from admission; the probe-phase stagger is then a pure
	// function of (file, seed) and replays are byte-identical.
	if h := f.Health; h != nil {
		pol, _ := health.ParsePolicy(h.Policy)
		if h.ProbeMs > 0 {
			pol.ProbePeriod = sim.Time(h.ProbeMs * float64(sim.Millisecond))
		}
		if h.Threshold > 0 {
			pol.FailThreshold = h.Threshold
		}
		if h.Hysteresis > 0 {
			pol.RecoverThreshold = h.Hysteresis
		}
		opt := remediate.Options{Budget: h.Budget, FallbackRestart: h.FallbackRestart}
		if h.BackoffMs > 0 {
			opt.BackoffBase = sim.Time(h.BackoffMs * float64(sim.Millisecond))
		}
		if err := c.EnableHealth(emucheck.HealthOptions{Policy: pol, Remediate: opt}); err != nil {
			return nil, nil, fmt.Errorf("scenario %q: %v", f.Name, err)
		}
	}

	stats := make([]*ExpStats, len(f.Experiments))
	mode := f.Swap
	if mode == "" {
		mode = "full"
	}
	res := &Result{Name: f.Name, SwapMode: mode}
	evErr := func(format string, args ...any) {
		res.EventErrors = append(res.EventErrors, fmt.Sprintf(format, args...))
	}

	// Submit each experiment at its scheduled arrival.
	for i := range f.Experiments {
		e := &f.Experiments[i]
		st := &ExpStats{}
		stats[i] = st
		setup := workloadSetup(c, e, st)
		if e.Epochs != "" {
			// The committed-epoch pipeline restarts with every (re-)
			// instantiation, keeping the recovery restore point fresh.
			period, _ := parseDur(e.Epochs)
			inner := setup
			setup = func(s *emucheck.Session) {
				if inner != nil {
					inner(s)
				}
				if err := s.StartEpochs(period); err != nil {
					evErr("epochs %s: %v", s.Scenario.Spec.Name, err)
				}
			}
		}
		submit := func() {
			sc := emucheck.Scenario{Spec: e.Spec(), Setup: setup}
			if _, err := c.Submit(sc, e.Priority); err != nil {
				evErr("submit %s: %v", e.Name, err)
			}
		}
		at, _ := parseDur(e.SubmitAt)
		if at == 0 {
			submit()
		} else {
			c.S.DoAt(at, "scenario.submit."+e.Name, submit)
		}
	}

	// Schedule events.
	for i := range f.Events {
		ev := f.Events[i]
		at, _ := parseDur(ev.At)
		idx := expIndex(f, ev.Target)
		c.S.DoAt(at, "scenario."+ev.Action, func() {
			if err := applyEvent(c, ev, stats[idx]); err != nil {
				evErr("t=%v %s %s: %v", c.Now(), ev.Action, ev.Target, err)
			}
		})
	}

	// Arm the fault plan: crashes, control-LAN loss/delay, slow disks
	// and slow saves, all deterministic under the plan seed.
	var plan *fault.Plan
	if len(f.Faults) > 0 {
		plan = &fault.Plan{Seed: f.Seed}
		for _, ft := range f.Faults {
			at, _ := parseDur(ft.At)
			window, _ := parseDur(ft.For)
			kind := fault.Kind(ft.Kind)
			during := false
			if ft.Kind == "crash_during_save" {
				kind, during = fault.Crash, true
			}
			plan.Injections = append(plan.Injections, fault.Injection{
				Kind: kind, At: at, Target: ft.Target, Node: ft.Node,
				DuringSave: during, Topic: ft.Topic, Count: ft.Count,
				Extra:  sim.Time(ft.ExtraMs * float64(sim.Millisecond)),
				Factor: ft.Factor, Window: window, Seed: ft.Seed,
			})
		}
		c.InjectFaults(plan)
	}

	// Schedule the search fan-out: checkpoint the parent at the branch
	// point, then fork the batch.
	var branchStats []*ExpStats
	var branchSeeds []int64
	var branchSessions []*emucheck.Session
	if s := f.Search; s != nil {
		c.NaiveBranchCopy = s.Naive
		sIdx := expIndex(f, s.Parent)
		parentExp := &f.Experiments[sIdx]
		ckAt, _ := parseDur(s.CheckpointAt)
		brAt, _ := parseDur(s.BranchAt)
		c.S.DoAt(ckAt, "scenario.search-ckpt", func() {
			sess := c.Tenant(s.Parent)
			if sess == nil {
				evErr("t=%v search checkpoint: %s not submitted", c.Now(), s.Parent)
				return
			}
			err := sess.CheckpointAsync(core.Options{Incremental: true}, func(_ *core.Result, cerr error) {
				if cerr == nil {
					stats[sIdx].Checkpoints++
				}
			})
			if err != nil {
				evErr("t=%v search checkpoint: %v", c.Now(), err)
			}
		})
		c.S.DoAt(brAt, "scenario.search-branch", func() {
			sess := c.Tenant(s.Parent)
			if sess == nil || sess.Tree.Len() <= 1 {
				evErr("t=%v search branch: no branch-point checkpoint on %s", c.Now(), s.Parent)
				return
			}
			specs := make([]emucheck.BranchSpec, s.FanOut)
			for i := range specs {
				seed := int64(100 + i)
				if len(s.Seeds) > 0 {
					seed = s.Seeds[i]
				}
				st := &ExpStats{}
				branchStats = append(branchStats, st)
				branchSeeds = append(branchSeeds, seed)
				specs[i] = emucheck.BranchSpec{
					Perturb: emucheck.Perturbation{Kind: emucheck.SeedChange, Seed: seed},
					Setup:   workloadSetup(c, parentExp, st),
				}
			}
			bs, err := c.Branch(s.Parent, sess.Tree.Head(), specs...)
			if err != nil {
				evErr("t=%v search branch: %v", c.Now(), err)
				return
			}
			branchSessions = bs
		})
	}

	dur, _ := parseDur(f.RunFor)
	c.RunFor(dur)
	res.Ran = dur.String()

	// Collect stats and evaluate assertions.
	res.Utilization = c.Utilization()
	res.Preemptions = c.Sched.Preemptions
	res.Admissions = c.Sched.Admissions
	res.PreemptedMB = float64(c.Sched.PreemptedBytes) / (1 << 20)
	for i := range f.Experiments {
		e := &f.Experiments[i]
		row := ExpRow{Name: e.Name, State: "unsubmitted", Ticks: stats[i].Ticks,
			Checkpoints: stats[i].Checkpoints, Outcome: stats[i].Outcome}
		if t := c.Tenant(e.Name); t != nil {
			row.State = t.State()
			row.Admissions = t.Admissions()
			row.Preemptions = t.Preemptions()
			row.QueueWaitS = t.QueueWait().Seconds()
			row.SwapMB = float64(c.TB.Server.ByTag[e.Name]) / (1 << 20)
			row.EpochsAborted = t.EpochsAborted()
			row.Recoveries = t.Recoveries()
			row.LostWorkMs = t.LostWork().Millis()
			if f.Health != nil {
				row.Detections = t.Detections()
				row.DetectMs = t.MaxDetectLatency().Millis()
				row.MTTRMs = t.MaxMTTR().Millis()
				row.Remediations = t.Remediations()
				row.Quarantined = t.Quarantined()
			}
			if t.LastErr != nil {
				row.LastError = t.LastErr.Error()
			}
		}
		res.Experiments = append(res.Experiments, row)
	}
	if h := f.Health; h != nil {
		mon, rc := c.Health(), c.Remediator()
		pname := h.Policy
		if pname == "" {
			pname = "balanced"
		}
		res.Health = &HealthReport{
			Policy: pname,
			Probes: mon.Probes, Fails: mon.Fails, Detections: mon.Detections,
			Remediations: rc.Remediations, Retries: rc.Retries, Quarantines: rc.Quarantines,
			CordonsIssued: rc.CordonsIssued, CordonsReleased: rc.CordonsReleased,
			OpenCordons: c.Sched.CordonedNodes(), DrainedVictims: rc.DrainedVictims,
			Errors: rc.Errors,
		}
	}
	if plan != nil {
		res.Faults = &FaultSummary{
			Planned: len(plan.Injections), Crashes: plan.Crashes,
			Dropped: plan.Dropped, Delayed: plan.Delayed, Slowed: plan.Slowed,
			Errors: plan.Errors,
		}
		res.Bus = &BusStats{
			Published: c.TB.Bus.Published,
			Delivered: c.TB.Bus.Delivered,
			Dropped:   c.TB.Bus.Dropped,
			Topics:    c.TB.Bus.Topics(),
		}
	}
	if s := f.Search; s != nil {
		sr := &SearchResult{Parent: s.Parent, FanOut: s.FanOut, Naive: s.Naive}
		outcomes := make(map[string]bool)
		var shared int64
		for i, b := range branchSessions {
			row := BranchRow{
				Name: b.Scenario.Spec.Name, Seed: branchSeeds[i],
				State: b.State(), Outcome: branchStats[i].Outcome, Ticks: branchStats[i].Ticks,
			}
			if row.Outcome != "" {
				outcomes[row.Outcome] = true
			}
			if b.Exp != nil && b.Exp.Swap != nil {
				for _, lin := range b.Exp.Swap.Lineages() {
					shared += lin.SharedBytes()
				}
			}
			sr.Branches = append(sr.Branches, row)
		}
		sr.DistinctOutcomes = len(outcomes)
		sr.StoredMB = float64(c.Chains.StoredBytes()) / (1 << 20)
		sr.SharedMB = float64(shared) / (1 << 20)
		sr.MulticastSavedMB = float64(c.TB.Server.MulticastSavedBytes) / (1 << 20)
		sr.GangAdmissions = c.Sched.GangAdmissions
		res.Search = sr
	}
	if st := f.Storage; st != nil {
		rep := &StorageReport{Backend: st.Backend, CacheMB: st.CacheMB}
		if rep.Backend == "" {
			rep.Backend = "mem"
		}
		if cache := c.DeltaCache(); cache != nil {
			cs := cache.Stats()
			rep.CacheHits = cs.Hits
			rep.CacheMisses = cs.Misses
			rep.CacheHitMB = float64(cs.HitBytes) / (1 << 20)
			rep.CacheEvictions = cs.Evictions
			rep.CacheEvictedMB = float64(cs.EvictedBytes) / (1 << 20)
			rep.HitRatio = cache.HitRatio()
		}
		rep.LocalMB = float64(c.SwapStats.Get("storage.local_bytes")) / (1 << 20)
		rep.RemoteMB = float64(c.SwapStats.Get("storage.remote_bytes")) / (1 << 20)
		rep.SpillMB = float64(c.SwapStats.Get("storage.spill_bytes")) / (1 << 20)
		res.Storage = rep
	}
	for _, a := range f.Assertions {
		res.Checks = append(res.Checks, evalAssertion(c, f, stats, res, a))
	}
	res.Pass = len(res.EventErrors) == 0
	for _, ch := range res.Checks {
		if !ch.Ok {
			res.Pass = false
		}
	}
	return res, c, nil
}

// runFederationScenario replays a federation scenario: the synthetic
// fleet is built from the stanza and the file seed, run to the run_for
// horizon (or until it drains) under conservative windows, and the
// federation assertions are evaluated against the aggregate result.
// There is no cluster to hand back — the facilities are the runner's
// own worlds — so suite invariants audit the Result instead.
func runFederationScenario(f *File) *Result {
	fd := f.Federation
	horizon, _ := parseDur(f.RunFor)
	lookahead, _ := parseDur(fd.Lookahead)
	wanLatency, _ := parseDur(fd.WANLatency)
	fr := federation.Run(federation.Config{
		Facilities: fd.Facilities,
		Tenants:    fd.Tenants,
		Seed:       f.Seed,
		Workers:    fd.Workers,
		Lookahead:  lookahead,
		WANLatency: wanLatency,
		WANRate:    int64(fd.WANMbps * 1e6 / 8),
		CacheBytes: fd.CacheMB << 20,
		Migration:  fd.Migration,
		WarmUp:     fd.WarmUp,
		Horizon:    horizon,
	})
	res := &Result{Name: f.Name, Ran: horizon.String(), SwapMode: "incremental", Federation: fr}
	for _, a := range f.Assertions {
		res.Checks = append(res.Checks, evalFederationAssertion(fr, a))
	}
	res.Pass = true
	for _, ch := range res.Checks {
		if !ch.Ok {
			res.Pass = false
		}
	}
	return res
}

// evalFederationAssertion checks one federation assertion.
func evalFederationAssertion(fr *federation.Result, a Assertion) Check {
	switch a.Type {
	case "all_completed":
		return mkCheck("all tenants completed", fr.Completed == fr.Tenants,
			fmt.Sprintf("%d of %d", fr.Completed, fr.Tenants))
	case "min_migrations":
		return mkCheck(fmt.Sprintf("migrations >= %d", a.Value), int64(fr.Migrations) >= a.Value,
			fmt.Sprintf("got %d", fr.Migrations))
	case "max_wan_mb":
		return mkCheck(fmt.Sprintf("WAN traffic <= %d MB", a.Value), fr.WANMB <= float64(a.Value),
			fmt.Sprintf("got %.1f MB", fr.WANMB))
	}
	return mkCheck("unknown assertion "+a.Type, false, "")
}

func expIndex(f *File, name string) int {
	for i := range f.Experiments {
		if f.Experiments[i].Name == name {
			return i
		}
	}
	return -1
}

// workloadSetup installs the named built-in workload. Every workload
// reports activity to the scheduler (the IdleFirst signal) and counts
// progress ticks for assertions. Setup reruns from scratch if the
// cluster readmits the experiment statelessly. Node names are the
// experiment's logical names and activity is reported under the
// session's own name, so the same setup installs unchanged on a branch
// session (where both resolve through the branch alias).
func workloadSetup(c *emucheck.Cluster, e *Experiment, st *ExpStats) func(*emucheck.Session) {
	switch e.Workload {
	case "sleeploop":
		first := e.Nodes[0].Name
		return func(s *emucheck.Session) {
			self := s.Scenario.Spec.Name
			k := s.Kernel(first)
			var step func()
			step = func() {
				k.Usleep(100*sim.Millisecond, func() {
					st.Ticks++
					c.Touch(self)
					step()
				})
			}
			step()
		}
	case "pingpong":
		a, b := e.Nodes[0].Name, e.Nodes[1].Name
		return func(s *emucheck.Session) {
			self := s.Scenario.Spec.Name
			ka, kb := s.Kernel(a), s.Kernel(b)
			kb.Handle("ping", func(simnet.Addr, *guest.Message) {
				kb.Send(s.Addr(a), 200, &guest.Message{Port: "pong"})
			})
			var send func()
			ka.Handle("pong", func(simnet.Addr, *guest.Message) {
				st.Ticks++
				c.Touch(self)
				// Pace the exchange: an RPC every 50 ms, not a raw-fabric
				// packet storm.
				ka.Usleep(50*sim.Millisecond, send)
			})
			send = func() { ka.Send(s.Addr(b), 200, &guest.Message{Port: "ping"}) }
			send()
		}
	case "diskchurn":
		first := e.Nodes[0].Name
		return func(s *emucheck.Session) {
			self := s.Scenario.Spec.Name
			k := s.Kernel(first)
			var off int64
			var step func()
			step = func() {
				k.WriteDisk(1<<30+off%(1<<30), 512<<10, func() {
					off += 512 << 10
					st.Ticks++
					c.Touch(self)
					k.Usleep(sim.Second, step)
				})
			}
			step()
		}
	case "racyelect":
		return racyElectSetup(c, e, st)
	case "quorum":
		return func(s *emucheck.Session) {
			self := s.Scenario.Spec.Name
			nodes := make([]apps.QuorumNode, len(e.Nodes))
			for i, n := range e.Nodes {
				nodes[i] = apps.QuorumNode{Name: n.Name, K: s.Kernel(n.Name), Addr: s.Addr(n.Name)}
			}
			// Crash the first-elected leader at a seed-derived instant of
			// guest time, so every quorum run exercises failure detection
			// and bully re-election; the perturbation seed folds in so
			// branches explore different crash timings.
			crashAt := 20*sim.Second + sim.Time(sim.Mix64(c.Seed, s.Perturb().Seed, 1)%uint64(20*sim.Second))
			apps.RunQuorum(nodes, apps.QuorumConfig{
				CrashLeaderAt: crashAt,
				OnTick:        func() { st.Ticks++; c.Touch(self) },
				OnOutcome:     func(o string) { st.Outcome = o },
			})
		}
	case "commit2pc":
		return func(s *emucheck.Session) {
			self := s.Scenario.Spec.Name
			nodes := make([]apps.CommitNode, len(e.Nodes))
			for i, n := range e.Nodes {
				nodes[i] = apps.CommitNode{Name: n.Name, K: s.Kernel(n.Name), Addr: s.Addr(n.Name)}
			}
			// Half the seed space crash-stops the coordinator mid-round
			// (the 2PC blocking window); the other half runs clean, so a
			// generated corpus shows both behaviors.
			crashRound := 0
			if sim.Mix64(c.Seed, s.Perturb().Seed, 3)%2 == 0 {
				crashRound = 6 + int(sim.Mix64(c.Seed, s.Perturb().Seed, 4)%6)
			}
			apps.RunCommit2PC(nodes, apps.CommitConfig{
				Seed:              int64(sim.Mix64(c.Seed, s.Perturb().Seed, 2)),
				CrashCoordAtRound: crashRound,
				OnTick:            func() { st.Ticks++; c.Touch(self) },
				OnOutcome:         func(o string) { st.Outcome = o },
			})
		}
	}
	return nil // idle
}

// racyElectSetup installs the split-brain leader-election race: both
// nodes claim leadership after a backoff derived from measured timing
// jitter mixed with the session's perturbation seed (the common sin of
// deriving randomness from timing), so different branch seeds genuinely
// explore different interleavings — some elect a leader, some end in
// split-brain when the claims cross in flight.
func racyElectSetup(c *emucheck.Cluster, e *Experiment, st *ExpStats) func(*emucheck.Session) {
	aN, bN := e.Nodes[0].Name, e.Nodes[1].Name
	return func(s *emucheck.Session) {
		self := s.Scenario.Spec.Name
		seed := s.Perturb().Seed
		ka, kb := s.Kernel(aN), s.Kernel(bN)
		claimed := make(map[string]bool)
		decided := func() {
			st.Ticks++
			c.Touch(self)
		}
		decide := func(k *guest.Kernel, peerLogical string) func(simnet.Addr, *guest.Message) {
			return func(simnet.Addr, *guest.Message) {
				if claimed[k.Name] {
					st.Outcome = "split-brain"
					decided()
					return
				}
				if st.Outcome == "" {
					st.Outcome = "leader=" + peerLogical
					decided()
				}
			}
		}
		ka.Handle("claim", decide(ka, bN))
		kb.Handle("claim", decide(kb, aN))
		// Each candidate journals its ballot to a small on-disk log first
		// — the disk state branches inherit from the checkpoint prefix
		// and then diverge on.
		ka.WriteDisk(1<<30, 8<<20, nil)
		kb.WriteDisk(1<<30, 8<<20, nil)
		claim := func(k *guest.Kernel, peer simnet.Addr, mix int64) {
			t0 := k.Monotonic()
			k.Usleep(sim.Millisecond, func() {
				jitterNs := (int64(k.Monotonic()-t0) + mix) % 1000
				backoff := 60 * sim.Millisecond
				if jitterNs%2 == 1 {
					backoff = 140 * sim.Millisecond
				}
				k.Usleep(backoff, func() {
					if st.Outcome != "" {
						return // the peer's claim already won
					}
					claimed[k.Name] = true
					k.Send(peer, 120, &guest.Message{Port: "claim"})
				})
			})
		}
		// Per-node mixes decorrelate the two backoff draws under one seed.
		claim(ka, s.Addr(bN), seed)
		claim(kb, s.Addr(aN), seed>>1)
	}
}

// applyEvent executes one timed action.
func applyEvent(c *emucheck.Cluster, ev Event, st *ExpStats) error {
	sess := c.Tenant(ev.Target)
	if sess == nil {
		return fmt.Errorf("not submitted yet")
	}
	switch ev.Action {
	case "swap_out":
		return c.Park(ev.Target)
	case "swap_in":
		return c.Unpark(ev.Target)
	case "checkpoint":
		return sess.CheckpointAsync(core.Options{Incremental: true, SaveDeadline: c.SaveDeadline}, func(_ *core.Result, cerr error) {
			if cerr == nil {
				st.Checkpoints++
			}
		})
	case "inject":
		// A burst of fresh guest activity: dirty a few MB of disk and
		// report liveness — the "experimenter came back" signal. Only a
		// tenant actually in service can receive it (a stateful-parked
		// one still has Exp, but its guests are frozen off-hardware).
		if sess.Exp == nil || sess.State() != "running" {
			return fmt.Errorf("experiment is %s", sess.State())
		}
		k := sess.Exp.Node(sess.Scenario.Spec.Nodes[0].Name).K
		k.WriteDisk(2<<30, 4<<20, nil)
		c.Touch(ev.Target)
		return nil
	case "finish":
		return c.Finish(ev.Target)
	case "recover":
		return c.Recover(ev.Target)
	case "restart":
		return c.Restart(ev.Target)
	}
	return fmt.Errorf("unknown action %q", ev.Action)
}

// evalAssertion checks one assertion against the finished run.
func evalAssertion(c *emucheck.Cluster, f *File, stats []*ExpStats, res *Result, a Assertion) Check {
	idx := expIndex(f, a.Target)
	var sess *emucheck.Session
	if a.Target != "" {
		sess = c.Tenant(a.Target)
	}
	switch a.Type {
	case "state":
		got := "unsubmitted"
		if sess != nil {
			got = sess.State()
		}
		return mkCheck(fmt.Sprintf("%s state == %s", a.Target, a.Want), got == a.Want, "got "+got)
	case "min_ticks":
		got := stats[idx].Ticks
		return mkCheck(fmt.Sprintf("%s ticks >= %d", a.Target, a.Value), got >= a.Value, fmt.Sprintf("got %d", got))
	case "min_checkpoints":
		got := stats[idx].Checkpoints
		return mkCheck(fmt.Sprintf("%s checkpoints >= %d", a.Target, a.Value), int64(got) >= a.Value, fmt.Sprintf("got %d", got))
	case "min_preemptions":
		got := c.Sched.Preemptions
		desc := fmt.Sprintf("preemptions >= %d", a.Value)
		if sess != nil {
			got = sess.Preemptions()
			desc = fmt.Sprintf("%s preemptions >= %d", a.Target, a.Value)
		}
		return mkCheck(desc, int64(got) >= a.Value, fmt.Sprintf("got %d", got))
	case "all_admitted":
		// Branch tenants are counted by all_branches_admitted; this
		// assertion covers the experiments declared in the file.
		for i := range f.Experiments {
			t := c.Tenant(f.Experiments[i].Name)
			if t == nil {
				return mkCheck("all experiments admitted", false, f.Experiments[i].Name+" never submitted")
			}
			if t.Admissions() == 0 {
				return mkCheck("all experiments admitted", false, t.Scenario.Spec.Name+" never admitted")
			}
		}
		return mkCheck("all experiments admitted", true,
			fmt.Sprintf("%d experiments", len(f.Experiments)))
	case "max_queue_wait":
		lim, _ := parseDur(a.Dur)
		worstName, worst := "", sim.Time(0)
		for _, t := range c.Tenants() {
			if a.Target != "" && t != sess {
				continue
			}
			if w := t.QueueWait(); w > worst {
				worst, worstName = w, t.Scenario.Spec.Name
			}
		}
		return mkCheck(fmt.Sprintf("queue wait <= %s", a.Dur), worst <= lim,
			fmt.Sprintf("worst %v (%s)", worst, worstName))
	case "virtual_elapsed_max":
		lim, _ := parseDur(a.Dur)
		if sess == nil || sess.Exp == nil {
			state := "unsubmitted"
			if sess != nil {
				state = sess.State()
			}
			return mkCheck(fmt.Sprintf("%s/%s virtual <= %s", a.Target, a.Node, a.Dur), false,
				"experiment is "+state)
		}
		got := sess.VirtualNow(a.Node)
		return mkCheck(fmt.Sprintf("%s/%s virtual <= %s", a.Target, a.Node, a.Dur), got <= lim,
			fmt.Sprintf("got %v (real %v)", got, c.Now()))
	case "utilization_min":
		got := c.Utilization() * 100
		return mkCheck(fmt.Sprintf("pool utilization >= %d%%", a.Value), got >= float64(a.Value),
			fmt.Sprintf("got %.0f%%", got))
	case "outcome_found":
		desc := fmt.Sprintf("outcome %q explored", a.Want)
		if res.Search == nil {
			return mkCheck(desc, false, "no search ran")
		}
		var seen []string
		for _, b := range res.Search.Branches {
			if b.Outcome == a.Want {
				return mkCheck(desc, true, "by "+b.Name)
			}
			if b.Outcome != "" {
				seen = append(seen, b.Outcome)
			}
		}
		return mkCheck(desc, false, fmt.Sprintf("saw %v", seen))
	case "min_distinct_outcomes":
		desc := fmt.Sprintf("distinct outcomes >= %d", a.Value)
		if res.Search == nil {
			return mkCheck(desc, false, "no search ran")
		}
		return mkCheck(desc, int64(res.Search.DistinctOutcomes) >= a.Value,
			fmt.Sprintf("got %d", res.Search.DistinctOutcomes))
	case "all_branches_admitted":
		desc := "all branches admitted"
		if res.Search == nil {
			return mkCheck(desc, false, "no search ran")
		}
		if len(res.Search.Branches) != res.Search.FanOut {
			return mkCheck(desc, false,
				fmt.Sprintf("%d of %d branches forked", len(res.Search.Branches), res.Search.FanOut))
		}
		for _, b := range res.Search.Branches {
			t := c.Tenant(b.Name)
			if t == nil || t.Admissions() == 0 {
				return mkCheck(desc, false, b.Name+" never admitted")
			}
		}
		return mkCheck(desc, true, fmt.Sprintf("%d branches", len(res.Search.Branches)))
	case "recovered":
		want := a.Value
		if want <= 0 {
			want = 1
		}
		desc := fmt.Sprintf("%s recovered >= %d times", a.Target, want)
		if sess == nil {
			return mkCheck(desc, false, "never submitted")
		}
		return mkCheck(desc, int64(sess.Recoveries()) >= want,
			fmt.Sprintf("got %d (state %s)", sess.Recoveries(), sess.State()))
	case "max_lost_work_ms":
		desc := fmt.Sprintf("%s lost work <= %d ms", a.Target, a.Value)
		if sess == nil {
			return mkCheck(desc, false, "never submitted")
		}
		got := sess.LostWork().Millis()
		return mkCheck(desc, got <= float64(a.Value), fmt.Sprintf("got %.0f ms", got))
	case "max_detect_ms":
		desc := fmt.Sprintf("%s detected <= %d ms after crash", a.Target, a.Value)
		if sess == nil {
			return mkCheck(desc, false, "never submitted")
		}
		if sess.Detections() == 0 {
			return mkCheck(desc, false, "never detected")
		}
		got := sess.MaxDetectLatency().Millis()
		return mkCheck(desc, got <= float64(a.Value), fmt.Sprintf("got %.0f ms", got))
	case "max_mttr_ms":
		desc := fmt.Sprintf("%s back in service <= %d ms after crash", a.Target, a.Value)
		if sess == nil {
			return mkCheck(desc, false, "never submitted")
		}
		if sess.MaxMTTR() == 0 {
			return mkCheck(desc, false,
				fmt.Sprintf("never recovered (state %s)", sess.State()))
		}
		got := sess.MaxMTTR().Millis()
		return mkCheck(desc, got <= float64(a.Value), fmt.Sprintf("got %.0f ms", got))
	case "remediated":
		want := a.Value
		if want <= 0 {
			want = 1
		}
		desc := fmt.Sprintf("%s remediated >= %d times unattended", a.Target, want)
		if sess == nil {
			return mkCheck(desc, false, "never submitted")
		}
		return mkCheck(desc, int64(sess.Remediations()) >= want && !sess.Quarantined(),
			fmt.Sprintf("got %d (state %s, quarantined %v)",
				sess.Remediations(), sess.State(), sess.Quarantined()))
	case "epochs_aborted":
		got := 0
		desc := fmt.Sprintf("epochs aborted >= %d", a.Value)
		if a.Target != "" {
			desc = fmt.Sprintf("%s epochs aborted >= %d", a.Target, a.Value)
			if sess != nil {
				got = sess.EpochsAborted()
			}
		} else {
			for _, t := range c.Tenants() {
				got += t.EpochsAborted()
			}
		}
		return mkCheck(desc, int64(got) >= a.Value, fmt.Sprintf("got %d", got))
	case "min_cache_hit_ratio":
		desc := fmt.Sprintf("cache hit ratio >= %d%%", a.Value)
		if res.Storage == nil {
			return mkCheck(desc, false, "no storage stanza")
		}
		gotPct := res.Storage.HitRatio * 100
		return mkCheck(desc, gotPct >= float64(a.Value),
			fmt.Sprintf("got %.0f%% (%d hits / %d misses)", gotPct,
				res.Storage.CacheHits, res.Storage.CacheMisses))
	case "max_remote_mb":
		desc := fmt.Sprintf("remote chain traffic <= %d MB", a.Value)
		if res.Storage == nil {
			return mkCheck(desc, false, "no storage stanza")
		}
		return mkCheck(desc, res.Storage.RemoteMB <= float64(a.Value),
			fmt.Sprintf("got %.1f MB", res.Storage.RemoteMB))
	case "max_swap_mb":
		var gotBytes int64
		desc := fmt.Sprintf("swap traffic <= %d MB", a.Value)
		if a.Target != "" {
			gotBytes = c.TB.Server.ByTag[a.Target]
			desc = fmt.Sprintf("%s swap traffic <= %d MB", a.Target, a.Value)
		} else {
			gotBytes = int64(c.TB.Server.Received + c.TB.Server.Served)
		}
		gotMB := float64(gotBytes) / (1 << 20)
		return mkCheck(desc, gotMB <= float64(a.Value), fmt.Sprintf("got %.1f MB", gotMB))
	}
	return mkCheck("unknown assertion "+a.Type, false, "")
}

func mkCheck(desc string, ok bool, detail string) Check {
	return Check{Desc: desc, Ok: ok, Detail: detail}
}

// Render prints the run as a human-readable report.
func (r *Result) Render() string {
	if fr := r.Federation; fr != nil {
		s := fmt.Sprintf("scenario %s: federated fleet — %d tenants over %d facilities (workers %d), ran %s\n",
			r.Name, fr.Tenants, fr.Facilities, fr.Workers, r.Ran)
		s += fmt.Sprintf("federation: %d/%d completed, %d windows, %d migrations, %d WAN msgs (%.1f MB), %.1f MB warmed, %.1f MB remote, digest %s\n",
			fr.Completed, fr.Tenants, fr.Windows, fr.Migrations, fr.WANMsgs, fr.WANMB, fr.WarmedMB, fr.RemoteMB, fr.Digest)
		for _, ch := range r.Checks {
			mark := "PASS"
			if !ch.Ok {
				mark = "FAIL"
			}
			s += fmt.Sprintf("%s  %s (%s)\n", mark, ch.Desc, ch.Detail)
		}
		verdict := "PASS"
		if !r.Pass {
			verdict = "FAIL"
		}
		return s + "result: " + verdict + "\n"
	}
	t := &metrics.Table{Header: []string{"experiment", "state", "ticks", "ckpts", "admissions", "preemptions", "queue wait (s)", "swap MB", "aborted", "recoveries"}}
	for _, row := range r.Experiments {
		t.AddRow(row.Name, row.State, row.Ticks, row.Checkpoints, row.Admissions, row.Preemptions,
			fmt.Sprintf("%.1f", row.QueueWaitS), fmt.Sprintf("%.1f", row.SwapMB),
			row.EpochsAborted, row.Recoveries)
	}
	s := fmt.Sprintf("scenario %s: ran %s (%s swap), pool utilization %.0f%%, %d admissions, %d preemptions (%.1f MB preempted state)\n%s",
		r.Name, r.Ran, r.SwapMode, r.Utilization*100, r.Admissions, r.Preemptions, r.PreemptedMB, t.String())
	if sr := r.Search; sr != nil {
		mode := "shared-lineage"
		if sr.Naive {
			mode = "naive full-copy"
		}
		bt := &metrics.Table{Header: []string{"branch", "seed", "state", "outcome", "ticks"}}
		for _, b := range sr.Branches {
			bt.AddRow(b.Name, b.Seed, b.State, b.Outcome, b.Ticks)
		}
		s += fmt.Sprintf("search: %d-way fan-out from %s (%s): %d distinct outcomes, store %.1f MB (%.1f MB shared by ref), multicast saved %.1f MB\n%s",
			sr.FanOut, sr.Parent, mode, sr.DistinctOutcomes, sr.StoredMB, sr.SharedMB, sr.MulticastSavedMB, bt.String())
	}
	if st := r.Storage; st != nil {
		s += fmt.Sprintf("storage: %s tier — %.1f MB local, %.1f MB remote", st.Backend, st.LocalMB, st.RemoteMB)
		if st.SpillMB > 0 {
			s += fmt.Sprintf(", %.1f MB spilled", st.SpillMB)
		}
		if st.CacheMB > 0 {
			s += fmt.Sprintf("; cache %d MB: %d hits / %d misses (%.0f%%), %d evictions (%.1f MB)",
				st.CacheMB, st.CacheHits, st.CacheMisses, st.HitRatio*100, st.CacheEvictions, st.CacheEvictedMB)
		}
		s += "\n"
	}
	if h := r.Health; h != nil {
		s += fmt.Sprintf("health: %s policy — %d probes (%d failed), %d detections; %d remediations, %d retries, %d quarantines; cordons %d issued / %d released (%d open), %d victims drained",
			h.Policy, h.Probes, h.Fails, h.Detections, h.Remediations, h.Retries,
			h.Quarantines, h.CordonsIssued, h.CordonsReleased, h.OpenCordons, h.DrainedVictims)
		s += "\n"
		for _, e := range h.Errors {
			s += "health error: " + e + "\n"
		}
	}
	if fs := r.Faults; fs != nil {
		s += fmt.Sprintf("faults: %d planned — %d crashes, %d notifications dropped, %d delayed, %d slowdowns",
			fs.Planned, fs.Crashes, fs.Dropped, fs.Delayed, fs.Slowed)
		if r.Bus != nil {
			s += fmt.Sprintf("; control LAN %d published / %d delivered / %d dropped",
				r.Bus.Published, r.Bus.Delivered, r.Bus.Dropped)
		}
		s += "\n"
		for _, e := range fs.Errors {
			s += "fault error: " + e + "\n"
		}
	}
	for _, e := range r.EventErrors {
		s += "event error: " + e + "\n"
	}
	for _, ch := range r.Checks {
		mark := "PASS"
		if !ch.Ok {
			mark = "FAIL"
		}
		s += fmt.Sprintf("%s  %s (%s)\n", mark, ch.Desc, ch.Detail)
	}
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	s += "result: " + verdict + "\n"
	return s
}
