// Package core implements the paper's primary contribution: a
// transparent, coordinated checkpoint of an entire closed distributed
// system (§4).
//
// A Coordinator drives checkpoint epochs over the publish–subscribe
// notification bus on the control network. Two trigger modes are
// supported, as in §4.3:
//
//   - Scheduled ("checkpoint at time t"): the coordinator picks a global
//     time far enough ahead for notification propagation; every node
//     arms a local timer on its NTP-disciplined clock. The residual
//     suspend skew across nodes is bounded by clock-sync error (~200 µs
//     steady state), not by notification jitter.
//   - Event-driven ("checkpoint now"): nodes suspend on notification
//     arrival; skew is the control network's delivery jitter — an order
//     of magnitude worse, which is why the paper schedules.
//
// Each node's local save is Xen's live checkpoint behind the temporal
// firewall; delay nodes freeze and serialize their Dummynet state,
// capturing the bandwidth–delay product of every shaped link (§4.4).
// A barrier collects completions, then a scheduled "resume at R" brings
// the whole experiment back near-simultaneously so that resume skew is
// also sync-bounded (§3.2's observation that restart skew matters too).
//
// Epochs are two-phase and abortable. An epoch moves through an
// explicit state machine — announced → saving → committed | aborted —
// and only a fully-barriered epoch commits (to History, and from there
// to any lineage the caller maintains). A member whose local save
// fails, a delay node that cannot serialize, or a straggler that misses
// Options.SaveDeadline aborts the whole epoch instead: the abort is
// published on the bus, every member and delay node the epoch froze is
// thawed, and the caller receives a typed *EpochError. Nothing
// half-saved ever commits, and an abort never takes the process down —
// the caller retries with a fresh epoch number.
package core

import (
	"fmt"
	"strings"

	"emucheck/internal/dummynet"
	"emucheck/internal/notify"
	"emucheck/internal/ntpsim"
	"emucheck/internal/sim"
	"emucheck/internal/xen"
)

// Mode selects how a checkpoint is triggered.
type Mode int

// Trigger modes.
const (
	Scheduled Mode = iota
	EventDriven
)

func (m Mode) String() string {
	if m == Scheduled {
		return "scheduled"
	}
	return "event-driven"
}

// Phase is an epoch's position in the checkpoint state machine.
type Phase int

// Epoch phases. The legal transitions are
// announced → saving → committed | aborted (either pre-commit phase may
// abort; a committed epoch is final).
const (
	// PhaseIdle: no epoch in flight.
	PhaseIdle Phase = iota
	// PhaseAnnounced: the checkpoint notification is published; no
	// member has started its local save yet.
	PhaseAnnounced
	// PhaseSaving: at least one member's local save has begun.
	PhaseSaving
	// PhaseCommitted: every party barriered; the epoch's images are
	// complete and durable (for HoldResume epochs this happens at the
	// barrier; otherwise once every member has resumed).
	PhaseCommitted
	// PhaseAborted: the epoch failed; whatever it froze was thawed and
	// its images were discarded.
	PhaseAborted
)

func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseAnnounced:
		return "announced"
	case PhaseSaving:
		return "saving"
	case PhaseCommitted:
		return "committed"
	case PhaseAborted:
		return "aborted"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// EpochError is the typed failure of one checkpoint epoch: which epoch
// aborted, in which phase, and which member (or stragglers) sank it.
// An aborted epoch never commits; retrying gets a fresh epoch number.
type EpochError struct {
	Epoch int
	// Phase names the protocol step that failed: "save" (a member's
	// local save or a delay-node serialize errored), "barrier" (the
	// save deadline expired with stragglers outstanding), "resume" (a
	// member could not be restarted), or the crash layer's free-form
	// label for externally forced aborts.
	Phase string
	// Node is the offending member, when one member is to blame.
	Node string
	// Stragglers lists the parties missing at the barrier when the save
	// deadline expired.
	Stragglers []string
	Reason     string
}

func (e *EpochError) Error() string {
	s := fmt.Sprintf("core: epoch %d aborted in %s phase", e.Epoch, e.Phase)
	if e.Node != "" {
		s += " on " + e.Node
	}
	if len(e.Stragglers) > 0 {
		s += " (stragglers: " + strings.Join(e.Stragglers, ", ") + ")"
	}
	if e.Reason != "" {
		s += ": " + e.Reason
	}
	return s
}

// Options tunes one distributed checkpoint.
type Options struct {
	Mode Mode
	// Lead is how far ahead a scheduled checkpoint is placed; it must
	// exceed worst-case notification delivery. Default 50 ms.
	Lead sim.Time
	// ResumeLead is the scheduling margin for the coordinated resume.
	ResumeLead sim.Time
	// SaveDeadline bounds the save phase: if the barrier has not
	// collected every party this long after the suspend target (or
	// after the announcement, for event-driven epochs), the epoch
	// aborts, thawing already-frozen members. This is how a crashed
	// node or a lost checkpoint notification surfaces as a clean abort
	// instead of a hang. Zero disables straggler detection.
	SaveDeadline sim.Time
	// Incremental saves only pages dirtied since the last checkpoint.
	Incremental bool
	// Target selects the image destination (scratch disk by default).
	Target xen.SaveTarget
	// HoldResume leaves the experiment frozen after the barrier: the
	// done callback fires with all nodes saved and suspended, and the
	// caller must later call ResumeHeld. Stateful swap-out uses this —
	// the "resume" happens at the next swap-in, possibly much later.
	HoldResume bool
	// SkipDelayNodes disables the §4.4 network-core capture, leaving
	// delay nodes running while endpoints freeze. The bandwidth–delay
	// product then drains into endpoint replay logs and re-emerges as a
	// burst at resume — the anomaly the paper's design avoids. Exists
	// for the ablation benchmark; never enable it in real use.
	SkipDelayNodes bool
}

func (o *Options) defaults() {
	if o.Lead <= 0 {
		o.Lead = 50 * sim.Millisecond
	}
	if o.ResumeLead <= 0 {
		// Must exceed worst-case clock error early in NTP convergence so
		// no node's local trigger lands in the past.
		o.ResumeLead = 50 * sim.Millisecond
	}
}

// Result describes one completed distributed checkpoint.
type Result struct {
	Epoch       int
	Mode        Mode
	ScheduledAt sim.Time // global target time (0 for event-driven)
	Images      []*xen.Image
	DelayStates []*dummynet.State

	// SuspendSkew is the spread of firewall-engage instants across
	// nodes — the transparency bound for the network (§3.2).
	SuspendSkew sim.Time
	// ResumeSkew is the spread of resume instants.
	ResumeSkew  sim.Time
	CompletedAt sim.Time
	// TotalBytes is the full image footprint of the epoch.
	TotalBytes int64
}

// MaxDowntime reports the longest per-node real downtime.
func (r *Result) MaxDowntime() sim.Time {
	var m sim.Time
	for _, img := range r.Images {
		if img.Downtime > m {
			m = img.Downtime
		}
	}
	return m
}

// Member is one checkpointed endpoint (an experiment node).
type Member struct {
	Name string
	HV   *xen.Hypervisor
}

// Coordinator orchestrates distributed checkpoints of a fixed set of
// members and delay nodes.
type Coordinator struct {
	s     *sim.Simulator
	bus   *notify.Bus
	ntp   *ntpsim.Sync
	nodes []*Member
	dns   []*dummynet.DelayNode

	// Scope names the experiment this coordinator serves. Notifications
	// carry it, and member daemons ignore messages scoped to other
	// experiments — several coordinators can share one control LAN.
	Scope string

	// OnPhase, if set, observes every epoch phase transition — the
	// hook fault injection uses to act "during save", and tests use to
	// trace the state machine.
	OnPhase func(epoch int, ph Phase)

	// Aborted counts epochs that ended in abort; LastAbort is the most
	// recent abort's typed error.
	Aborted   int
	LastAbort *EpochError

	epochSeq int
	current  *epoch
	cancels  []func()
	dead     bool

	// History holds every committed checkpoint, newest last — the
	// linear spine that time travel branches from. Aborted epochs never
	// appear here.
	History []*Result
}

// epoch is one checkpoint epoch moving through the state machine.
type epoch struct {
	n       int
	phase   Phase
	opts    Options
	result  *Result
	barrier *notify.Barrier
	resumed *notify.Barrier
	done    func(*Result, error)

	deadline  *sim.Event
	frozenDNs []*dummynet.DelayNode

	suspendTimes []sim.Time
	resumeTimes  []sim.Time
}

// NewCoordinator wires a coordinator to its members with the anonymous
// scope: its daemons hear every notification on the control LAN (the
// single-experiment case). Every member's clock must already be
// NTP-disciplined via y.Start.
func NewCoordinator(s *sim.Simulator, bus *notify.Bus, y *ntpsim.Sync, members []*Member, delayNodes []*dummynet.DelayNode) *Coordinator {
	return NewScopedCoordinator(s, bus, y, "", members, delayNodes)
}

// NewScopedCoordinator wires a coordinator whose daemons subscribe
// scoped to one experiment's notifications: on a multi-tenant testbed
// the bus then fans a checkpoint publish out to this experiment's
// members only, instead of every daemon on the shared LAN. The
// handler-level scope filters stay as defense in depth.
func NewScopedCoordinator(s *sim.Simulator, bus *notify.Bus, y *ntpsim.Sync, scope string, members []*Member, delayNodes []*dummynet.DelayNode) *Coordinator {
	c := &Coordinator{s: s, bus: bus, ntp: y, nodes: members, dns: delayNodes, Scope: scope}
	for _, m := range members {
		m := m
		c.cancels = append(c.cancels,
			bus.SubscribeScoped(notify.TopicCheckpoint, scope, m.Name, func(msg *notify.Msg) { c.onCheckpoint(m, msg) }),
			bus.SubscribeScoped(notify.TopicResume, scope, m.Name, func(msg *notify.Msg) { c.onResume(m, msg) }))
	}
	for _, d := range delayNodes {
		d := d
		c.cancels = append(c.cancels,
			bus.SubscribeScoped(notify.TopicCheckpoint, scope, d.Name, func(msg *notify.Msg) { c.onCheckpointDelay(d, msg) }),
			bus.SubscribeScoped(notify.TopicResume, scope, d.Name, func(msg *notify.Msg) { c.onResumeDelay(d, msg) }))
	}
	return c
}

// Shutdown unsubscribes the coordinator's daemons from the control LAN
// and refuses further checkpoints. A torn-down experiment's coordinator
// must go deaf: its successor may reuse the same scope, and epochs
// restart — a stale listener could otherwise fire saves on halted
// guests.
func (c *Coordinator) Shutdown() {
	c.dead = true
	for _, cancel := range c.cancels {
		cancel()
	}
	c.cancels = nil
	if c.current != nil && c.current.deadline != nil {
		c.s.Cancel(c.current.deadline)
	}
	c.current = nil
}

// Epoch reports the number of checkpoints initiated.
func (c *Coordinator) Epoch() int { return c.epochSeq }

// Busy reports whether a checkpoint epoch is still in flight.
func (c *Coordinator) Busy() bool { return c.current != nil }

// Phase reports the in-flight epoch's FSM position (PhaseIdle if none).
func (c *Coordinator) Phase() Phase {
	if c.current == nil {
		return PhaseIdle
	}
	return c.current.phase
}

// setPhase advances the epoch's FSM position and fires the observation
// hook.
func (c *Coordinator) setPhase(ep *epoch, p Phase) {
	if ep.phase == p {
		return
	}
	ep.phase = p
	if c.OnPhase != nil {
		c.OnPhase(ep.n, p)
	}
}

// busHop draws one control-LAN delivery delay for coordinator-driven
// daemon signalling outside the publish path.
func (c *Coordinator) busHop() sim.Time {
	return c.bus.BaseLatency + c.s.Jitter(c.bus.JitterMax)
}

// TriggerFromNode initiates an event-driven checkpoint *from a member
// node* — the §4.3 use case where a break- or watch-point inside the
// experiment fires ("the checkpoint system should be able to trigger a
// checkpoint immediately in response to any system event"). The node's
// dom0 daemon publishes "checkpoint now" on the bus; the notification
// reaches the coordinator and every peer with control-network latency,
// so the resulting skew is jitter-bound, as the paper cautions.
func (c *Coordinator) TriggerFromNode(nodeName string, done func(*Result, error)) error {
	found := false
	for _, m := range c.nodes {
		if m.Name == nodeName {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("core: no member %q", nodeName)
	}
	if c.current != nil {
		return fmt.Errorf("core: checkpoint %d still in flight", c.epochSeq)
	}
	// One bus hop from the triggering node to the coordinator daemon,
	// then the normal event-driven fan-out.
	hop := c.s.Jitter(sim.Millisecond) + 200*sim.Microsecond
	c.s.DoAfter(hop, "core.node-trigger", func() {
		if c.current != nil {
			return // someone else got there first; their epoch covers us
		}
		if err := c.Checkpoint(Options{Mode: EventDriven, Incremental: true}, done); err != nil && done != nil {
			done(nil, err)
		}
	})
	return nil
}

// Checkpoint initiates one distributed checkpoint epoch. done receives
// the committed result once every member has resumed (or, for
// HoldResume, once the barrier completes) — or a *EpochError if the
// epoch aborted. Only one epoch may be in flight at a time.
func (c *Coordinator) Checkpoint(opts Options, done func(*Result, error)) error {
	if c.dead {
		return fmt.Errorf("core: coordinator is shut down")
	}
	if c.current != nil {
		return fmt.Errorf("core: checkpoint %d still in flight", c.epochSeq)
	}
	opts.defaults()
	c.epochSeq++
	parties := len(c.nodes) + len(c.dns)
	r := &Result{Epoch: c.epochSeq, Mode: opts.Mode}
	ep := &epoch{n: c.epochSeq, phase: PhaseIdle, opts: opts, result: r, done: done}
	ep.barrier = notify.NewBarrier(parties, func() { c.allSaved(ep) })
	ep.resumed = notify.NewBarrier(len(c.nodes), func() { c.allResumed(ep) })
	c.current = ep

	var at, lead sim.Time
	if opts.Mode == Scheduled {
		lead = opts.Lead
		at = c.s.Now() + lead
		r.ScheduledAt = at
	}
	if opts.SaveDeadline > 0 {
		// The save barrier must complete within SaveDeadline of the
		// suspend target; past it, stragglers abort the epoch.
		ep.deadline = c.s.After(lead+opts.SaveDeadline, "core.save-deadline", func() {
			c.onDeadline(ep)
		})
	}
	c.setPhase(ep, PhaseAnnounced)
	c.bus.Publish(&notify.Msg{Topic: notify.TopicCheckpoint, From: "coordinator", Scope: c.Scope, At: at, Epoch: ep.n})
	return nil
}

// onDeadline fires when the save deadline expires: if any party is
// still missing at the barrier, the epoch aborts with the stragglers
// named.
func (c *Coordinator) onDeadline(ep *epoch) {
	if c.dead || ep.phase == PhaseCommitted || ep.phase == PhaseAborted || ep.barrier.Done() {
		return
	}
	var stragglers []string
	for _, m := range c.nodes {
		if !ep.barrier.Has(m.Name) {
			stragglers = append(stragglers, m.Name)
		}
	}
	for _, d := range c.dns {
		if !ep.barrier.Has(d.Name) {
			stragglers = append(stragglers, d.Name)
		}
	}
	c.abort(ep, &EpochError{
		Epoch: ep.n, Phase: "barrier", Stragglers: stragglers,
		Reason: fmt.Sprintf("save deadline expired with %d/%d arrived",
			ep.barrier.Arrived(), len(c.nodes)+len(c.dns)),
	})
}

// abort fails the epoch: the deadline is cancelled, the typed error is
// recorded, the abort is published on the bus, everything the epoch
// froze is thawed (each daemon one control-LAN hop away), and the
// caller receives the error. The thaw fan-out is modeled as reliable —
// the coordinator re-sends aborts until acked — so the model delivers
// the end state directly rather than risking a permanently frozen
// member on a lossy LAN. Crashed members are skipped: the crash is the
// abort's likely cause, and recovery owns them now.
func (c *Coordinator) abort(ep *epoch, err *EpochError) {
	if ep.phase == PhaseCommitted || ep.phase == PhaseAborted {
		return
	}
	c.setPhase(ep, PhaseAborted)
	c.Aborted++
	c.LastAbort = err
	if ep.deadline != nil {
		c.s.Cancel(ep.deadline)
	}
	if c.current == ep {
		c.current = nil
	}
	c.bus.Publish(&notify.Msg{Topic: notify.TopicAbort, From: "coordinator", Scope: c.Scope, Epoch: ep.n, Data: err})
	for _, m := range c.nodes {
		hv := m.HV
		c.s.DoAfter(c.busHop(), "core.abort-thaw", func() { thawMember(hv) })
	}
	for _, d := range ep.frozenDNs {
		d := d
		c.s.DoAfter(c.busHop(), "core.abort-thaw-dn", func() {
			if c.allCrashed() {
				// The whole tenant died (the crash is what aborted this
				// epoch): its network core stays frozen for recovery.
				return
			}
			d.Thaw()
		})
	}
	if ep.done != nil {
		ep.done(nil, err)
	}
}

// allCrashed reports whether every member has fail-stopped — the
// tenant-is-dead test the abort thaw consults so a crashed
// experiment's delay nodes stay frozen for recovery.
func (c *Coordinator) allCrashed() bool {
	if len(c.nodes) == 0 {
		return false
	}
	for _, m := range c.nodes {
		if !m.HV.Crashed() {
			return false
		}
	}
	return true
}

// thawMember returns one member to service after an abort: a save in
// flight is cancelled (resuming the guest if it had already frozen); a
// completed save left the guest suspended and is resumed directly.
func thawMember(hv *xen.Hypervisor) {
	if hv.Crashed() {
		return
	}
	if hv.Saving() {
		hv.CancelSave()
		return
	}
	if hv.K.Suspended() {
		_ = hv.Resume(nil)
	}
}

// AbortInFlight aborts the epoch currently in flight, if any — the
// testbed's crash path uses it when a member fail-stops mid-epoch. A
// held epoch has already committed (its barrier completed) and is not
// aborted. Reports whether an epoch was aborted.
func (c *Coordinator) AbortInFlight(reason string) bool {
	ep := c.current
	if ep == nil || ep.phase == PhaseCommitted || ep.phase == PhaseAborted {
		return false
	}
	c.abort(ep, &EpochError{Epoch: ep.n, Phase: ep.phase.String(), Reason: reason})
	return true
}

// onCheckpoint runs on a member's dom0 daemon when the notification
// arrives. It starts the live save with the proper suspend deadline.
func (c *Coordinator) onCheckpoint(m *Member, msg *notify.Msg) {
	ep := c.current
	if ep == nil || msg.Scope != c.Scope || msg.Epoch != ep.n || ep.phase == PhaseAborted {
		return
	}
	var suspendAt sim.Time
	if msg.At > 0 {
		suspendAt = c.ntp.LocalTrigger(m.Name, msg.At)
	} else {
		suspendAt = c.s.Now() + sim.Microsecond // "checkpoint now"
	}
	c.setPhase(ep, PhaseSaving)
	err := m.HV.Save(xen.SaveOptions{
		Target:      ep.opts.Target,
		SuspendAt:   suspendAt,
		Incremental: ep.opts.Incremental,
		OnError: func(serr error) {
			// The save died after acceptance (the suspend raced a
			// concurrent freeze): abort rather than hang the barrier.
			if ep.phase != PhaseAborted && ep.phase != PhaseCommitted {
				c.abort(ep, &EpochError{Epoch: ep.n, Phase: "save", Node: m.Name, Reason: serr.Error()})
			}
		},
	}, func(img *xen.Image) {
		if ep.phase == PhaseAborted {
			// The epoch died while this save was finishing: discard the
			// image and thaw the member right away.
			thawMember(m.HV)
			return
		}
		ep.result.Images = append(ep.result.Images, img)
		ep.suspendTimes = append(ep.suspendTimes, img.SuspendedAt)
		ep.result.TotalBytes += img.MemoryBytes + img.DeviceBytes
		// Report completion on the bus (daemon -> coordinator).
		ep.barrier.Arrive(m.Name)
	})
	if err != nil {
		c.abort(ep, &EpochError{Epoch: ep.n, Phase: "save", Node: m.Name, Reason: err.Error()})
	}
}

// onCheckpointDelay freezes and serializes a delay node at its local
// trigger time.
func (c *Coordinator) onCheckpointDelay(d *dummynet.DelayNode, msg *notify.Msg) {
	ep := c.current
	if ep == nil || msg.Scope != c.Scope || msg.Epoch != ep.n || ep.phase == PhaseAborted {
		return
	}
	if ep.opts.SkipDelayNodes {
		// Ablation mode: the network core keeps running; its in-flight
		// packets drain into frozen endpoints' replay logs.
		ep.barrier.Arrive(d.Name)
		return
	}
	var at sim.Time
	if msg.At > 0 {
		at = c.ntp.LocalTrigger(d.Name, msg.At)
	} else {
		at = c.s.Now() + sim.Microsecond
	}
	delay := at - c.s.Now()
	c.s.DoAfter(delay, "core.freeze-delaynode", func() {
		if ep.phase == PhaseAborted {
			return // the epoch died before the local trigger
		}
		d.Freeze()
		ep.frozenDNs = append(ep.frozenDNs, d)
		st, err := d.Serialize()
		if err != nil {
			c.abort(ep, &EpochError{Epoch: ep.n, Phase: "save", Node: d.Name, Reason: err.Error()})
			return
		}
		ep.result.DelayStates = append(ep.result.DelayStates, st)
		ep.result.TotalBytes += int64(st.Bytes())
		ep.barrier.Arrive(d.Name)
	})
}

// allSaved fires when the barrier completes: the epoch is now fully
// barriered and will commit. Publish the scheduled resume, or park the
// frozen experiment if the caller asked to hold.
func (c *Coordinator) allSaved(ep *epoch) {
	if c.dead || ep.phase == PhaseAborted {
		// A save completing after teardown must not publish a resume:
		// the successor coordinator reuses this scope and epoch 1.
		return
	}
	if ep.deadline != nil {
		c.s.Cancel(ep.deadline)
	}
	if ep.opts.HoldResume {
		// A held epoch commits at the barrier: its images are complete
		// and durable; the resume happens at the next swap-in.
		ep.result.SuspendSkew = spread(ep.suspendTimes)
		ep.result.CompletedAt = c.s.Now()
		c.setPhase(ep, PhaseCommitted)
		c.History = append(c.History, ep.result)
		if ep.done != nil {
			ep.done(ep.result, nil)
		}
		return
	}
	at := c.s.Now() + ep.opts.ResumeLead
	c.bus.Publish(&notify.Msg{Topic: notify.TopicResume, From: "coordinator", Scope: c.Scope, At: at, Epoch: ep.n})
}

// Held reports whether a checkpoint is parked awaiting ResumeHeld.
func (c *Coordinator) Held() bool {
	return c.current != nil && c.current.opts.HoldResume && c.current.barrier.Done()
}

// DropHeld discards a held epoch without resuming through it — the
// crash-recovery path, where the guests restart from restored images
// rather than via the coordinated ResumeHeld. The epoch itself stays
// committed (its images are exactly the restore point); only the
// coordinator's in-flight slot clears, so new epochs and swap-outs can
// run on the recovered incarnation. Reports whether an epoch was held.
func (c *Coordinator) DropHeld() bool {
	if !c.Held() {
		return false
	}
	c.current = nil
	return true
}

// ResumeHeld resumes an experiment parked by a HoldResume checkpoint.
// after fires once every node is live again (or with an error if the
// coordinated resume failed).
func (c *Coordinator) ResumeHeld(after func(*Result, error)) error {
	ep := c.current
	if ep == nil || !ep.opts.HoldResume || !ep.barrier.Done() {
		return fmt.Errorf("core: nothing held")
	}
	ep.done = after
	at := c.s.Now() + ep.opts.ResumeLead
	c.bus.Publish(&notify.Msg{Topic: notify.TopicResume, From: "coordinator", Scope: c.Scope, At: at, Epoch: ep.n})
	return nil
}

func (c *Coordinator) onResume(m *Member, msg *notify.Msg) {
	ep := c.current
	if ep == nil || msg.Scope != c.Scope || msg.Epoch != ep.n || ep.phase == PhaseAborted {
		return
	}
	at := c.ntp.LocalTrigger(m.Name, msg.At)
	c.s.DoAfter(at-c.s.Now(), "core.resume", func() {
		if ep.phase == PhaseAborted {
			return // the abort path already thawed this member
		}
		err := m.HV.Resume(func() {
			ep.resumeTimes = append(ep.resumeTimes, c.s.Now())
			ep.resumed.Arrive(m.Name)
		})
		if err != nil {
			c.abort(ep, &EpochError{Epoch: ep.n, Phase: "resume", Node: m.Name, Reason: err.Error()})
		}
	})
}

func (c *Coordinator) onResumeDelay(d *dummynet.DelayNode, msg *notify.Msg) {
	ep := c.current
	if ep == nil || msg.Scope != c.Scope || msg.Epoch != ep.n || ep.phase == PhaseAborted {
		return
	}
	if ep.opts.SkipDelayNodes {
		return // never frozen
	}
	at := c.ntp.LocalTrigger(d.Name, msg.At)
	c.s.DoAfter(at-c.s.Now(), "core.thaw-delaynode", func() {
		if ep.phase != PhaseAborted {
			d.Thaw()
		}
	})
}

func (c *Coordinator) allResumed(ep *epoch) {
	if c.dead || ep.phase == PhaseAborted {
		return
	}
	ep.result.ResumeSkew = spread(ep.resumeTimes)
	ep.result.CompletedAt = c.s.Now()
	if !ep.opts.HoldResume {
		// Held epochs were committed and recorded at the barrier.
		ep.result.SuspendSkew = spread(ep.suspendTimes)
		c.setPhase(ep, PhaseCommitted)
		c.History = append(c.History, ep.result)
	}
	c.current = nil
	if ep.done != nil {
		ep.done(ep.result, nil)
	}
}

// ThawDelayNodes unfreezes every delay node — the crash-recovery path
// uses it after re-staging a crashed experiment's state, outside any
// epoch's resume protocol.
func (c *Coordinator) ThawDelayNodes() {
	for _, d := range c.dns {
		d.Thaw()
	}
}

func spread(ts []sim.Time) sim.Time {
	if len(ts) == 0 {
		return 0
	}
	lo, hi := ts[0], ts[0]
	for _, t := range ts[1:] {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	return hi - lo
}

// PeriodicCheckpointer repeatedly checkpoints an experiment at a fixed
// interval — the capture loop of the time-travel system (§6) and the
// driver for the paper's transparency experiments, which checkpoint
// every 5 seconds. An aborted epoch commits nothing; the loop retries
// at the next interval with a fresh epoch number.
type PeriodicCheckpointer struct {
	C        *Coordinator
	Interval sim.Time
	Opts     Options
	OnResult func(*Result)
	// OnAbort observes epochs that failed under the loop.
	OnAbort func(error)

	stopped bool
	count   int
	aborts  int
	limit   int
}

// Start begins checkpointing every interval until Stop (or until limit
// checkpoints if limit > 0). The first checkpoint fires one interval
// from now.
func (p *PeriodicCheckpointer) Start(limit int) {
	p.limit = limit
	p.stopped = false
	p.schedule()
}

func (p *PeriodicCheckpointer) schedule() {
	p.C.s.DoAfter(p.Interval, "periodic.ckpt", func() {
		if p.stopped || p.C.dead {
			return
		}
		err := p.C.Checkpoint(p.Opts, func(r *Result, cerr error) {
			if cerr != nil {
				p.aborts++
				if p.OnAbort != nil {
					p.OnAbort(cerr)
				}
				p.schedule()
				return
			}
			p.count++
			if p.OnResult != nil {
				p.OnResult(r)
			}
			if p.limit > 0 && p.count >= p.limit {
				p.stopped = true
				return
			}
			p.schedule()
		})
		if err != nil {
			// Previous epoch still draining; retry next interval.
			p.schedule()
		}
	})
}

// Stop halts the loop after the in-flight checkpoint, if any.
func (p *PeriodicCheckpointer) Stop() { p.stopped = true }

// Count reports completed checkpoints.
func (p *PeriodicCheckpointer) Count() int { return p.count }

// Aborts reports epochs that aborted under the loop.
func (p *PeriodicCheckpointer) Aborts() int { return p.aborts }
