package swap

import (
	"testing"

	"emucheck/internal/core"
	"emucheck/internal/guest"
	"emucheck/internal/node"
	"emucheck/internal/notify"
	"emucheck/internal/ntpsim"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
	"emucheck/internal/xen"
	"emucheck/internal/xfer"
)

// multiRig builds a two-node swappable experiment sharing one server.
func multiRig(seed int64) (*sim.Simulator, *Manager, []*guest.Kernel) {
	s := sim.New(seed)
	p := node.DefaultParams()
	bus := notify.NewBus(s)
	y := ntpsim.New(s, ntpsim.DefaultModel(), seed)
	server := xfer.NewServer(s, 0)
	var members []*core.Member
	var nodes []*Node
	var ks []*guest.Kernel
	for _, name := range []string{"m0", "m1"} {
		m := node.NewMachine(s, name, p)
		k := guest.New(m, p, guest.DefaultConfig())
		vol := storage.NewVolume(m.Disk, 6<<30, storage.Optimized)
		vol.Age()
		k.Backend = vol
		hv := xen.New(m, p, k)
		y.Start(name)
		members = append(members, &core.Member{Name: name, HV: hv})
		nodes = append(nodes, &Node{Name: name, HV: hv, Vol: vol, GoldenCached: true})
		ks = append(ks, k)
	}
	coord := core.NewCoordinator(s, bus, y, members, nil)
	return s, NewManager(s, server, coord, nodes), ks
}

func TestMultiNodeSwapCycle(t *testing.T) {
	s, m, ks := multiRig(1)
	s.RunFor(sim.Second)
	// Dirty both nodes' disks.
	for _, n := range m.Nodes {
		for w := int64(0); w < 32<<20; w += 4 << 20 {
			n.Vol.Write((1<<30)+w, 4<<20, nil)
		}
	}
	s.RunFor(sim.Minute)
	var out []*OutReport
	if err := m.SwapOut(DefaultOptions(), func(x []*OutReport, _ error) { out = x }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(20 * sim.Minute)
	if out == nil || len(out) != 2 {
		t.Fatalf("out reports: %v", out)
	}
	for _, k := range ks {
		if !k.Suspended() {
			t.Fatal("node escaped the swap-out")
		}
	}
	var in []*InReport
	if err := m.SwapIn(DefaultOptions(), func(x []*InReport, _ error) { in = x }); err != nil {
		t.Fatal(err)
	}
	s.RunFor(30 * sim.Minute)
	if in == nil || len(in) != 2 {
		t.Fatal("swap-in incomplete")
	}
	for _, k := range ks {
		if k.Suspended() {
			t.Fatal("node not resumed")
		}
	}
	// The shared server pipe serialized transfers: both nodes' swap-in
	// reports end at the same resume instant (coordinated).
	if in[0].Finished != in[1].Finished {
		t.Fatalf("nodes resumed apart: %v vs %v", in[0].Finished, in[1].Finished)
	}
}

func TestSwapWithoutPreCopyMovesWholeDeltaFrozen(t *testing.T) {
	r := newRig(11)
	r.s.RunFor(sim.Second)
	r.dirty(64 << 20)
	o := DefaultOptions()
	o.PreCopy = false
	var reps []*OutReport
	if err := r.m.SwapOut(o, func(x []*OutReport, _ error) { reps = x }); err != nil {
		t.Fatal(err)
	}
	r.s.RunFor(20 * sim.Minute)
	if reps == nil {
		t.Fatal("incomplete")
	}
	if reps[0].PreCopyBytes != 0 {
		t.Fatalf("pre-copy ran despite being disabled: %d", reps[0].PreCopyBytes)
	}
	if reps[0].ResidualBytes < 60<<20 {
		t.Fatalf("residual %d; whole delta should move frozen", reps[0].ResidualBytes)
	}
}

func TestPreCopyShrinksFrozenTransfer(t *testing.T) {
	run := func(pre bool) int64 {
		r := newRig(12)
		r.s.RunFor(sim.Second)
		r.dirty(64 << 20)
		o := DefaultOptions()
		o.PreCopy = pre
		var reps []*OutReport
		r.m.SwapOut(o, func(x []*OutReport, _ error) { reps = x })
		r.s.RunFor(20 * sim.Minute)
		if reps == nil {
			t.Fatal("incomplete")
		}
		return reps[0].ResidualBytes
	}
	with := run(true)
	without := run(false)
	if with >= without/4 {
		t.Fatalf("pre-copy ineffective: residual %d vs %d", with, without)
	}
}

func TestSwapReportsDurations(t *testing.T) {
	r := newRig(13)
	r.s.RunFor(sim.Second)
	r.dirty(16 << 20)
	var out []*OutReport
	r.m.SwapOut(DefaultOptions(), func(x []*OutReport, _ error) { out = x })
	r.s.RunFor(20 * sim.Minute)
	var in []*InReport
	r.m.SwapIn(DefaultOptions(), func(x []*InReport, _ error) { in = x })
	r.s.RunFor(20 * sim.Minute)
	if out[0].Duration() <= 0 || in[0].Duration() <= 0 {
		t.Fatal("non-positive durations")
	}
	if in[0].MemoryBytes != out[0].MemoryBytes {
		t.Fatalf("memory image mismatch: out %d, in %d", out[0].MemoryBytes, in[0].MemoryBytes)
	}
	if m := r.m; m.Cycle != 1 {
		t.Fatalf("cycle = %d", m.Cycle)
	}
}
