package evalrun

import "emucheck/internal/suite"

// SuiteResult is the scenario-corpus table's JSON shape — the suite
// runner's corpus report (schema emusuite/v1), re-exported so the
// benchrunner schema registry can pin it like every other table.
type SuiteResult = suite.Report

// SuiteTable runs the generated scenario corpus under the suite
// runner's shared invariants and reports per-scenario verdicts plus
// axis coverage. Unlike the perf tables it measures no wall clock:
// its value as a benchmark artifact is the determinism ledger itself
// (every digest reproducible from the seed) and the coverage counts.
func SuiteTable(seed int64, count int) *SuiteResult {
	return suite.RunMatrix(seed, count)
}
