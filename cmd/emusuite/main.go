// Command emusuite runs a scenario corpus under the suite runner's
// shared invariants: either a directory of scenario files or a
// deterministic generated matrix (see internal/scengen). Every run is
// checked for same-seed replay determinism, leaked pool hardware,
// chain-store refcount drift, control-LAN delivery conservation, and
// negative accounting ledgers — on top of the scenario's own
// assertions.
//
// Usage:
//
//	emusuite [-seed N] [-count M] [-dir path] [-parallel N] [-json] [-junit file] [-gen-out dir]
//
// With -dir, every *.json under the directory runs; otherwise a
// generated matrix of -count scenarios keyed by -seed runs. -parallel
// bounds the worker pool running scenario executions concurrently
// (default GOMAXPROCS, 1 forces serial); the emitted report is
// byte-identical at any setting, so parallelism only moves the wall
// clock. -json emits the corpus report (schema emusuite/v1, no
// wall-clock fields: two same-seed invocations are byte-identical).
// -junit writes JUnit XML whose time attributes are simulated seconds.
// -gen-out writes the generated corpus as scenario files and exits
// without running, so a failing generated scenario can be reproduced
// under emucheck alone. Exits nonzero when any run fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"emucheck/internal/scenario"
	"emucheck/internal/scengen"
	"emucheck/internal/suite"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emusuite:", err)
	os.Exit(1)
}

// loadDir parses every scenario file under dir, sorted by path so the
// corpus order (and therefore the report) is deterministic.
func loadDir(dir string) ([]*scenario.File, []string) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		fatal(err)
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fatal(fmt.Errorf("no scenario files under %s", dir))
	}
	var files []*scenario.File
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		f, err := scenario.Parse(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %v", p, err))
		}
		files = append(files, f)
	}
	return files, paths
}

// writeCorpus materializes the generated matrix as scenario files.
func writeCorpus(dir string, seed int64, count int) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	for _, f := range scengen.Matrix(seed, count) {
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(dir, f.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println(path)
	}
}

func main() {
	seed := flag.Int64("seed", 1, "generator seed for the scenario matrix")
	count := flag.Int("count", 24, "generated matrix size")
	dir := flag.String("dir", "", "run every *.json scenario under this directory instead of generating")
	asJSON := flag.Bool("json", false, "emit the corpus report as JSON (schema emusuite/v1)")
	junitPath := flag.String("junit", "", "write JUnit XML to this file")
	genOut := flag.String("gen-out", "", "write the generated corpus as scenario files to this directory and exit")
	parallel := flag.Int("parallel", 0, "max concurrent scenario executions (0 = GOMAXPROCS, 1 = serial); the report is byte-identical at any setting")
	flag.Parse()

	if *genOut != "" {
		writeCorpus(*genOut, *seed, *count)
		return
	}

	var rep *suite.Report
	if *dir != "" {
		files, paths := loadDir(*dir)
		rep = suite.RunFilesParallel(files, paths, *parallel)
	} else {
		rep = suite.RunMatrixParallel(*seed, *count, *parallel)
	}

	if *junitPath != "" {
		data, err := rep.JUnit("emusuite")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*junitPath, data, 0o644); err != nil {
			fatal(err)
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(rep.Render())
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}
