package tcpsim

import (
	"testing"

	"emucheck/internal/sim"
)

// fakeEnv wires a sender and receiver over a delayful, lossy channel
// driven directly by the simulator (no guest kernel involved).
type fakeEnv struct {
	s       *sim.Simulator
	delay   sim.Time
	peer    func(*Segment)
	dropSeq map[int64]bool // payload seqs to drop exactly once
	sent    int
}

func (e *fakeEnv) Now() sim.Time { return e.s.Now() }
func (e *fakeEnv) StartTimer(d sim.Time, name string, fn func()) Timer {
	return e.s.After(d, name, fn)
}
func (e *fakeEnv) StopTimer(t Timer) { e.s.Cancel(t.(*sim.Event)) }
func (e *fakeEnv) Output(g *Segment) {
	e.sent++
	if g.Len > 0 && e.dropSeq[g.Seq] && !g.Rtx {
		delete(e.dropSeq, g.Seq)
		return
	}
	e.s.After(e.delay, "net", func() { e.peer(g) })
}

func pipe(s *sim.Simulator, delay sim.Time) (*Sender, *Receiver, *fakeEnv, *fakeEnv) {
	se := &fakeEnv{s: s, delay: delay, dropSeq: map[int64]bool{}}
	re := &fakeEnv{s: s, delay: delay, dropSeq: map[int64]bool{}}
	snd := NewSender(se, "c")
	rcv := NewReceiver(re, "c")
	se.peer = rcv.HandleSegment
	re.peer = snd.HandleSegment
	return snd, rcv, se, re
}

func TestBoundedTransferCompletes(t *testing.T) {
	s := sim.New(1)
	snd, rcv, _, _ := pipe(s, sim.Millisecond)
	var total int64
	rcv.OnData = func(n int, tot int64) { total = tot }
	snd.Stream(1 << 20)
	s.RunFor(10 * sim.Second)
	if !snd.Done() {
		t.Fatalf("not done: acked %d", snd.Acked())
	}
	if total != 1<<20 || rcv.Delivered() != 1<<20 {
		t.Fatalf("delivered %d", total)
	}
	if snd.Retransmits != 0 || snd.Timeouts != 0 {
		t.Fatalf("spurious recovery: rtx=%d to=%d", snd.Retransmits, snd.Timeouts)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := pipe(s, 10*sim.Millisecond)
	snd.Stream(4 << 20)
	c0 := snd.cwnd
	s.RunFor(300 * sim.Millisecond)
	if snd.cwnd <= c0*4 {
		t.Fatalf("cwnd grew too slowly: %d -> %d", c0, snd.cwnd)
	}
}

func TestInOrderDelivery(t *testing.T) {
	s := sim.New(1)
	snd, rcv, _, _ := pipe(s, sim.Millisecond)
	var lastTotal int64
	ordered := true
	rcv.OnData = func(n int, tot int64) {
		if tot < lastTotal {
			ordered = false
		}
		lastTotal = tot
	}
	snd.Stream(512 << 10)
	s.RunFor(10 * sim.Second)
	if !ordered {
		t.Fatal("out-of-order delivery to app")
	}
}

func TestFastRetransmitOnLoss(t *testing.T) {
	s := sim.New(1)
	snd, rcv, se, _ := pipe(s, 5*sim.Millisecond)
	se.dropSeq[int64(20*MSS)] = true
	snd.Stream(256 << 10)
	s.RunFor(30 * sim.Second)
	if !snd.Done() {
		t.Fatalf("transfer stalled at %d", snd.Acked())
	}
	if snd.Retransmits == 0 {
		t.Fatal("no retransmit for dropped segment")
	}
	if snd.FastRecovers == 0 && snd.Timeouts == 0 {
		t.Fatal("loss recovered without any recovery path?")
	}
	if rcv.Delivered() != 256<<10 {
		t.Fatalf("delivered %d", rcv.Delivered())
	}
}

func TestTimeoutPath(t *testing.T) {
	s := sim.New(1)
	snd, _, se, _ := pipe(s, sim.Millisecond)
	// Drop the very first segment; with cwnd=2 MSS there are not enough
	// dupacks for fast retransmit, forcing an RTO.
	se.dropSeq[0] = true
	snd.Stream(2 * MSS)
	s.RunFor(5 * sim.Second)
	if snd.Timeouts == 0 {
		t.Fatal("no timeout")
	}
	if !snd.Done() {
		t.Fatalf("stalled at %d", snd.Acked())
	}
}

func TestSRTTEstimation(t *testing.T) {
	s := sim.New(1)
	snd, _, _, _ := pipe(s, 25*sim.Millisecond)
	snd.Stream(1 << 20)
	s.RunFor(5 * sim.Second)
	srtt := snd.SRTT()
	if srtt < 45*sim.Millisecond || srtt > 80*sim.Millisecond {
		t.Fatalf("SRTT %v, want ~50ms", srtt)
	}
}

func TestReceiverOOOBuffering(t *testing.T) {
	s := sim.New(1)
	re := &fakeEnv{s: s, dropSeq: map[int64]bool{}}
	rcv := NewReceiver(re, "c")
	re.peer = func(*Segment) {}
	var got []int
	rcv.OnData = func(n int, tot int64) { got = append(got, n) }
	// Deliver segment 2 then segment 1.
	rcv.HandleSegment(&Segment{Conn: "c", Seq: MSS, Len: MSS})
	if len(rcv.OOOSegments()) != 1 {
		t.Fatal("ooo not buffered")
	}
	rcv.HandleSegment(&Segment{Conn: "c", Seq: 0, Len: MSS})
	if rcv.Delivered() != 2*MSS {
		t.Fatalf("delivered %d", rcv.Delivered())
	}
	if len(got) != 1 || got[0] != 2*MSS {
		t.Fatalf("OnData calls: %v", got)
	}
	// Duplicate data counted.
	rcv.HandleSegment(&Segment{Conn: "c", Seq: 0, Len: MSS})
	if rcv.DupData != 1 {
		t.Fatalf("dup = %d", rcv.DupData)
	}
}

func TestWindowLimitsInFlight(t *testing.T) {
	s := sim.New(1)
	se := &fakeEnv{s: s, delay: sim.Second, dropSeq: map[int64]bool{}} // huge RTT
	snd := NewSender(se, "c")
	se.peer = func(*Segment) {}
	snd.Stream(-1 & (1 << 30))
	snd.Stream(1 << 30)
	if snd.InFlight() > snd.cwnd {
		t.Fatalf("inflight %d exceeds cwnd %d", snd.InFlight(), snd.cwnd)
	}
}

func TestCloseStopsPump(t *testing.T) {
	s := sim.New(1)
	snd, _, se, _ := pipe(s, sim.Millisecond)
	snd.Stream(1 << 30)
	s.RunFor(100 * sim.Millisecond)
	n := se.sent
	snd.Close()
	s.RunFor(2 * sim.Second)
	// After close no new transmissions (the receiver may still ack).
	if se.sent > n {
		t.Fatalf("sent after close: %d -> %d", n, se.sent)
	}
}

func TestSegmentWireSize(t *testing.T) {
	g := &Segment{Len: MSS}
	if g.WireSize() != 1500 {
		t.Fatalf("wire size %d, want 1500", g.WireSize())
	}
}
