package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"emucheck/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite the golden JUnit file")

// TestRunJUnitGolden pins the XML `emucheck run -junit` writes for a
// shipped example scenario, byte for byte. Every field in the output —
// verdict, simulated-seconds time attribute, classname — is derived
// from the deterministic run, so the golden is stable across machines;
// a diff here means either the run changed or the JUnit shape drifted.
// Regenerate deliberately with `go test ./cmd/emucheck -update`.
func TestRunJUnitGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "scenarios", "swapcycle.json"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := scenario.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	// The source path is part of the classname attribute, so the test
	// passes the path the CLI would see from the repo root. Two workers
	// run the scenario's run + replay pair concurrently; the golden
	// comparison doubles as the byte-identity check for that path.
	got, rr, err := junitReport(f, "examples/scenarios/swapcycle.json", 2)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Error != "" || !rr.Pass {
		t.Fatalf("swapcycle example failed under suite invariants: %+v", rr)
	}

	golden := filepath.Join("testdata", "junit.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("JUnit output drifted from %s.\nIf intentional, regenerate with -update.\n--- got ---\n%s--- want ---\n%s",
			golden, got, want)
	}
}
