package storage

import (
	"testing"

	"emucheck/internal/sim"
)

func TestParseBackendKind(t *testing.T) {
	cases := []struct {
		in   string
		want BackendKind
		ok   bool
	}{
		{"", MemKind, true},
		{"mem", MemKind, true},
		{"disk", DiskKind, true},
		{"remote", RemoteKind, true},
		{"tape", MemKind, false},
	}
	for _, c := range cases {
		got, err := ParseBackendKind(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseBackendKind(%q) = %v, %v; want %v ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
}

func TestMemBackendZeroCost(t *testing.T) {
	b := NewMemBackend()
	if !b.Put(1, 5<<20) || !b.Has(1) {
		t.Fatal("mem put failed")
	}
	if b.PutCost(1<<30) != 0 || b.ReadCost(1<<30) != 0 {
		t.Fatal("mem backend must be free")
	}
	if b.StoredBytes() != 5<<20 || b.SegmentCount() != 1 {
		t.Fatalf("stored %d/%d", b.StoredBytes(), b.SegmentCount())
	}
	b.Delete(1)
	if b.Has(1) || b.StoredBytes() != 0 {
		t.Fatal("delete did not forget the segment")
	}
}

func TestDiskBackendCapacitySpill(t *testing.T) {
	b := NewDiskBackend(10 << 20)
	if !b.Put(1, 6<<20) {
		t.Fatal("first segment should fit")
	}
	if b.Put(2, 6<<20) {
		t.Fatal("second segment should spill: 12 MB into a 10 MB disk")
	}
	if b.SpillSegments != 1 || b.SpillBytes != 6<<20 {
		t.Fatalf("spill ledger: %d segs / %d bytes", b.SpillSegments, b.SpillBytes)
	}
	// Re-putting a resident segment at a new size must not double-count.
	if !b.Put(1, 4<<20) {
		t.Fatal("shrinking a resident segment should fit")
	}
	if b.StoredBytes() != 4<<20 {
		t.Fatalf("stored %d after re-put", b.StoredBytes())
	}
	if !b.Put(2, 6<<20) {
		t.Fatal("after the shrink the second segment fits")
	}
	// Costs: seek plus bytes at the sequential rate.
	got := b.PutCost(70 << 20)
	want := b.Seek + sim.Second
	if got != want {
		t.Fatalf("PutCost(70MB) = %v, want %v", got, want)
	}
}

func TestRemoteBackendRTT(t *testing.T) {
	b := NewRemoteBackend()
	if b.PutCost(1<<20) != b.RTT || b.ReadCost(1<<20) != b.RTT {
		t.Fatal("remote cost must be the round trip")
	}
	if b.PutCost(0) != 0 {
		t.Fatal("empty put is free")
	}
	for i := Addr(0); i < 100; i++ {
		if !b.Put(i, 1<<20) {
			t.Fatal("the pool never fills")
		}
	}
	if b.SegmentCount() != 100 {
		t.Fatalf("segments %d", b.SegmentCount())
	}
}

// TestChainStoreMirrorsBackend proves the OnStore/OnDrop hooks keep a
// backend's resident set exactly equal to the chain store's entries —
// across commits, dedup, forks, prune folds (re-keying the base), and
// branch release GC.
func TestChainStoreMirrorsBackend(t *testing.T) {
	cs := NewChainStore()
	be := NewMemBackend()
	cs.OnStore = func(a Addr, n int64) { be.Put(a, n) }
	cs.OnDrop = func(a Addr, n int64) { be.Delete(a) }

	check := func(stage string) {
		t.Helper()
		if be.SegmentCount() != cs.Entries() {
			t.Fatalf("%s: backend holds %d segments, store %d entries", stage, be.SegmentCount(), cs.Entries())
		}
		if be.StoredBytes() != cs.StoredBytes() {
			t.Fatalf("%s: backend %d bytes, store %d bytes", stage, be.StoredBytes(), cs.StoredBytes())
		}
		for a := range cs.epochs {
			if !be.Has(a) {
				t.Fatalf("%s: store entry %v missing from backend", stage, a)
			}
		}
	}

	l := cs.NewLineage(2)
	check("empty lineage")
	for i := int64(0); i < 6; i++ {
		l.Commit(map[int64]int64{i: i + 1, i + 100: i + 2}, 1)
		check("commit (with prune folds past depth 2)")
	}
	fork := l.Fork()
	check("fork (shared by reference)")
	fork.Commit(map[int64]int64{999: 1}, 1)
	check("divergent commit")
	l.Release()
	check("parent released")
	fork.Release()
	check("fork released")
	if cs.Entries() != 0 || be.SegmentCount() != 0 {
		t.Fatalf("everything released: store %d, backend %d", cs.Entries(), be.SegmentCount())
	}
}
