package evalrun

import (
	"fmt"

	"emucheck/internal/apps"
	"emucheck/internal/core"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// AblationResult compares checkpointing with and without the §4.4
// delay-node capture on a high bandwidth–delay-product link.
type AblationResult struct {
	// CapturedInCore is the in-flight state held by the delay node at
	// the checkpoint (with capture enabled).
	CapturedInCore int
	// EndpointLogWith/Without are the worst endpoint replay-log sizes
	// observed across the checkpoint in each mode.
	EndpointLogWith    int
	EndpointLogWithout int
	// RetransmitsWith/Without count TCP retransmissions in each mode.
	RetransmitsWith    int
	RetransmitsWithout int
	// BurstWith/Without are the largest 1 ms receive bursts (bytes)
	// right after resume — replay-at-endpoint shows up as a burst.
	BurstWith    float64
	BurstWithout float64
}

func ablationRun(seed int64, skip bool) (endpointLog, inCore, rtx int, burst float64) {
	s, _, e := twoNode(seed, simnet.Gbps, 20*sim.Millisecond) // BDP = 2.5 MB
	snd, rcv := e.Node("n0").K, e.Node("n1").K
	ip := apps.NewIperf(snd, rcv)
	ip.Start(-1)
	s.RunFor(60 * sim.Second) // converge NTP + fill the pipe

	// Sample the endpoint replay log while the checkpoint is in flight.
	worstLog := 0
	stop := false
	var sample func()
	sample = func() {
		if stop {
			return
		}
		if n := rcv.M.ExpNIC.ReplayLogLen(); n > worstLog {
			worstLog = n
		}
		if n := snd.M.ExpNIC.ReplayLogLen(); n > worstLog {
			worstLog = n
		}
		s.After(200*sim.Microsecond, "ablation.sample", sample)
	}
	sample()

	var res *core.Result
	err := e.Coord.Checkpoint(core.Options{Incremental: true, SkipDelayNodes: skip}, func(r *core.Result, _ error) { res = r })
	if err != nil {
		panic(err)
	}
	s.RunFor(5 * sim.Second)
	stop = true
	ip.Stop()
	s.RunFor(sim.Second)
	if res == nil {
		panic("ablation: checkpoint incomplete")
	}
	for _, st := range res.DelayStates {
		inCore += len(st.Forward.DelayLine) + len(st.Forward.Queue) +
			len(st.Reverse.DelayLine) + len(st.Reverse.Queue)
	}
	// Largest 1 ms receive burst after the checkpoint.
	th := metrics.Throughput(ip.Trace.Between(60*sim.Second, 70*sim.Second), sim.Millisecond)
	return worstLog, inCore, ip.Sender.Retransmits, th.Max()
}

// AblationDelayNode runs the comparison.
func AblationDelayNode(seed int64) *AblationResult {
	r := &AblationResult{}
	r.EndpointLogWith, r.CapturedInCore, r.RetransmitsWith, r.BurstWith = ablationRun(seed, false)
	r.EndpointLogWithout, _, r.RetransmitsWithout, r.BurstWithout = ablationRun(seed, true)
	return r
}

// Render prints the comparison.
func (r *AblationResult) Render() string {
	t := &metrics.Table{Header: []string{"metric", "with delay-node capture", "without (ablated)"}}
	t.AddRow("in-flight pkts captured in core", r.CapturedInCore, "-")
	t.AddRow("worst endpoint replay log (pkts)", r.EndpointLogWith, r.EndpointLogWithout)
	t.AddRow("TCP retransmissions", r.RetransmitsWith, r.RetransmitsWithout)
	s := t.String()
	s += fmt.Sprintf("\nthe paper's design keeps endpoint logs bounded by the sync-skew window\n" +
		"(§4.4); ablating the delay-node capture pushes the whole bandwidth-delay\n" +
		"product into endpoint replay logs, replayed as an artificial burst (§3.2).\n")
	return s
}
