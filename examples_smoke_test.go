// Smoke coverage for the example programs and the scenario-runner CLI:
// each example's main path runs to completion and prints its headline
// conclusion, so the examples stay living documentation rather than
// build-only dead code.
package emucheck_test

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// goRun executes a main package from the repo root and returns its
// combined output.
func goRun(t *testing.T, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, "go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if ctx.Err() != nil {
		t.Fatalf("go run %v timed out", args)
	}
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs subprocesses")
	}
	cases := []struct {
		dir  string
		want string // a headline line proving the demo reached its point
	}{
		{"quickstart", "no timeout, no gap"},
		{"statefulswap", "inactivity is invisible"},
		{"timetravel", "deterministic replay: failure reproduced"},
		{"statesearch", "split-brain"},
		{"bittorrent", "center line does not move"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			out := goRun(t, "./examples/"+tc.dir)
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output of %s missing %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}

func TestScenarioCLIRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs subprocesses")
	}
	t.Parallel()
	out := goRun(t, "./cmd/emucheck", "validate", "examples/scenarios/timeshare.json")
	if !strings.Contains(out, "ok") {
		t.Fatalf("validate: %s", out)
	}
	out = goRun(t, "./cmd/emucheck", "run", "examples/scenarios/swapcycle.json")
	if !strings.Contains(out, "result: PASS") {
		t.Fatalf("run: %s", out)
	}
}

// TestSearchScenarioCLIRuns: emucheck understands the search scenario
// type end to end — validate and replay the committed split-brain
// fan-out, including the branch table in the report.
func TestSearchScenarioCLIRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs subprocesses")
	}
	t.Parallel()
	out := goRun(t, "./cmd/emucheck", "validate", "examples/scenarios/search.json")
	if !strings.Contains(out, "ok") {
		t.Fatalf("validate: %s", out)
	}
	out = goRun(t, "./cmd/emucheck", "run", "examples/scenarios/search.json")
	for _, want := range []string{"result: PASS", "fan-out", "split-brain", "distinct outcomes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output missing %q:\n%s", want, out)
		}
	}
}
