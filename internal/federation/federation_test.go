package federation

import (
	"testing"
)

// testConfig is the shared small fleet: big enough to exercise
// oversubscription, migration and WAN chatter, small enough for -race.
func testConfig(facilities, workers int) Config {
	return Config{
		Facilities: facilities,
		Tenants:    200,
		Seed:       1,
		Workers:    workers,
		Migration:  true,
		WarmUp:     true,
	}
}

// TestFederationWorkerIdentity pins the tentpole claim: for a fixed
// sharding, the facility-worker count never changes the simulation —
// digests at 2, 4 and 8 workers are byte-identical to the serial
// reference at 1.
func TestFederationWorkerIdentity(t *testing.T) {
	for _, facilities := range []int{1, 2, 4} {
		serial := Run(testConfig(facilities, 1))
		if serial.Completed != serial.Tenants {
			t.Fatalf("F=%d: only %d/%d tenants finished before the horizon",
				facilities, serial.Completed, serial.Tenants)
		}
		for _, workers := range []int{2, 4, 8} {
			got := Run(testConfig(facilities, workers))
			if got.Digest != serial.Digest {
				t.Fatalf("F=%d workers=%d digest %s != serial %s",
					facilities, workers, got.Digest, serial.Digest)
			}
		}
	}
}

// TestFederationDeterministic: same config, same digest, run to run.
func TestFederationDeterministic(t *testing.T) {
	a := Run(testConfig(4, 2))
	b := Run(testConfig(4, 2))
	if a.Digest != b.Digest {
		t.Fatalf("same-seed runs diverged: %s vs %s", a.Digest, b.Digest)
	}
	if c := Run(Config{Facilities: 4, Tenants: 200, Seed: 2, Workers: 2, Migration: true, WarmUp: true}); c.Digest == a.Digest {
		t.Fatal("different seeds produced the same digest")
	}
}

// TestFederationDataPlane: the federation actually federates — WAN
// chatter flows, tenants migrate, warm-up ships bytes, and the shared
// pool holds every committed chain.
func TestFederationDataPlane(t *testing.T) {
	r := Run(testConfig(4, 2))
	if r.WANMsgs == 0 || r.WANMB <= 0 {
		t.Fatalf("no WAN traffic: %+v", r)
	}
	if r.Migrations == 0 {
		t.Fatal("balancer never migrated a tenant")
	}
	if r.WarmedMB <= 0 {
		t.Fatal("migrations shipped no warm-up bytes")
	}
	if r.PoolMB <= 0 {
		t.Fatal("shared pool holds no chains")
	}
	if r.Windows == 0 {
		t.Fatal("no conservative windows ran")
	}
}

// TestFederationWarmUpReducesRemote compares the same federated run
// with and without migration warm-up: pre-seeding destination caches
// must cut the bytes restores stream from the shared pool.
func TestFederationWarmUpReducesRemote(t *testing.T) {
	warm := Run(testConfig(4, 1))
	coldCfg := testConfig(4, 1)
	coldCfg.WarmUp = false
	cold := Run(coldCfg)
	if warm.Migrations == 0 || cold.Migrations == 0 {
		t.Fatalf("migrations warm=%d cold=%d, want both > 0", warm.Migrations, cold.Migrations)
	}
	if cold.WarmedMB != 0 {
		t.Fatalf("cold run warmed %v MB", cold.WarmedMB)
	}
	if warm.RemoteMB >= cold.RemoteMB {
		t.Fatalf("warm-up did not cut pool restore traffic: warm %.2f MB vs cold %.2f MB",
			warm.RemoteMB, cold.RemoteMB)
	}
}

// TestFederationPlacementBalanced: the global admission layer spreads
// a uniform fleet evenly (demand gap at most one tenant).
func TestFederationPlacementBalanced(t *testing.T) {
	fed := New(Config{Facilities: 4, Tenants: 202, Seed: 1})
	lo, hi := fed.Facilities[0].Sched.Demand(), fed.Facilities[0].Sched.Demand()
	for _, fac := range fed.Facilities[1:] {
		d := fac.Sched.Demand()
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if hi-lo > 1 {
		t.Fatalf("placement demand spread %d..%d", lo, hi)
	}
}

// TestFederationSingleFacility: the degenerate federation is just the
// single-world fleet — no WAN, no migrations.
func TestFederationSingleFacility(t *testing.T) {
	r := Run(testConfig(1, 1))
	if r.WANMsgs != 0 || r.Migrations != 0 {
		t.Fatalf("single facility produced WAN traffic: %+v", r)
	}
	if r.Completed != r.Tenants {
		t.Fatalf("completed %d/%d", r.Completed, r.Tenants)
	}
}

// TestFederationRejectsUnsafeLatency: a WAN latency below the
// lookahead would let messages arrive inside a window.
func TestFederationRejectsUnsafeLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("latency < lookahead did not panic")
		}
	}()
	New(Config{Facilities: 2, Tenants: 8, WANLatency: 1, Lookahead: 2})
}
