// BitTorrent under checkpoints: the paper's Figure 7 workload driven
// through the public API. One seeder and three clients share a file on
// a 100 Mbps LAN; a storm of transparent checkpoints runs mid-download;
// the per-client throughput "center line" must not move.
package main

import (
	"fmt"

	"emucheck"
	"emucheck/internal/apps"
	"emucheck/internal/emulab"
	"emucheck/internal/guest"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
)

func main() {
	var bt *apps.BitTorrent
	sc := emucheck.Scenario{
		Spec: emulab.Spec{
			Name: "swarm",
			Nodes: []emulab.NodeSpec{
				{Name: "seeder"}, {Name: "c1"}, {Name: "c2"}, {Name: "c3"},
			},
			LANs: []emulab.LANSpec{{Name: "lan0", Members: []string{"seeder", "c1", "c2", "c3"}}},
		},
		Setup: func(s *emucheck.Session) {
			clients := []*guest.Kernel{s.Kernel("c1"), s.Kernel("c2"), s.Kernel("c3")}
			bt = apps.NewBitTorrent(s.Kernel("seeder"), clients, 256<<20)
			bt.Start()
		},
	}

	s := emucheck.NewSession(sc, 3)
	fmt.Println("downloading; 30 s warm-up ...")
	s.RunFor(30 * sim.Second)

	fmt.Println("checkpoint storm: every 5 s for 60 s ...")
	pc := s.PeriodicCheckpoints(5*sim.Second, 12)
	s.RunFor(70 * sim.Second)
	pc.Stop()
	s.RunFor(60 * sim.Second)

	fmt.Printf("checkpoints completed: %d\n", pc.Count())
	for _, name := range []string{"c1", "c2", "c3"} {
		tr := bt.SeederTrace[name]
		th := metrics.Throughput(tr, sim.Second)
		warm := th.Between(5*sim.Second, 30*sim.Second)
		storm := th.Between(35*sim.Second, 95*sim.Second)
		fmt.Printf("  %s: %4d/%d pieces | seeder->client %.2f MB/s before, %.2f MB/s during checkpoints\n",
			name, bt.CountHave(name), bt.Pieces, warm.Mean(), storm.Mean())
	}
	fmt.Println("the center line does not move: the swarm cannot tell it was checkpointed")
}
