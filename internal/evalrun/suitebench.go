package evalrun

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"emucheck/internal/metrics"
	"emucheck/internal/sim"
	"emucheck/internal/suite"
)

// SuiteBenchRow is the corpus throughput at one worker-pool width:
// the same generated matrix run serially and at increasing -parallel,
// with the emitted report byte-compared against the serial one. The
// wall-clock fields measure this machine (like ScaleRow's); Identical
// is the portable claim — the report cannot tell the widths apart.
type SuiteBenchRow struct {
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
	// ScenariosPerS counts scenarios (not executions — each scenario
	// also runs its replay-digest re-execution) per wall second.
	ScenariosPerS float64 `json:"scenarios_per_s"`
	// Speedup is serial wall time over this row's wall time.
	Speedup float64 `json:"speedup_vs_serial"`
	// Identical reports the emusuite/v1 JSON byte-compared equal to the
	// serial run's — the parallel runner's ordering guarantee.
	Identical bool `json:"report_byte_identical"`
}

// SuiteBenchResult is the corpus-throughput benchmark: scenarios/s at
// 1/2/4/8 workers plus the event core's steady-state allocation cost.
type SuiteBenchResult struct {
	Seed  int64 `json:"seed"`
	Count int   `json:"count"`
	// AllocsPerEvent is testing.AllocsPerRun over a warm DoAt+Pop
	// cycle: the simulator's steady-state per-event heap allocations.
	// The PR 8 event core holds this at zero (free-listed events, no
	// container/heap interface boxing).
	AllocsPerEvent float64         `json:"allocs_per_event"`
	Rows           []SuiteBenchRow `json:"rows"`
}

// eventCoreAllocs measures the event core's steady-state allocations:
// a warm simulator scheduling and delivering one pooled event per
// cycle with a hoisted callback.
func eventCoreAllocs() float64 {
	s := sim.New(1)
	n := 0
	fn := func() { n++ }
	for i := 0; i < 64; i++ {
		s.DoAfter(sim.Time(i)*sim.Microsecond, "warm", fn)
	}
	s.Run()
	return testing.AllocsPerRun(200, func() {
		s.DoAfter(sim.Microsecond, "steady", fn)
		s.Step()
	})
}

// SuiteBench runs the seed-keyed generated matrix at each worker-pool
// width and reports the throughput curve. The serial row anchors both
// the speedup normalization and the byte-identity comparison.
func SuiteBench(seed int64, count int, workers []int) *SuiteBenchResult {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	r := &SuiteBenchResult{Seed: seed, Count: count, AllocsPerEvent: eventCoreAllocs()}
	var serialJSON []byte
	var serialMS float64
	for _, w := range workers {
		start := time.Now()
		rep := suite.RunMatrixParallel(seed, count, w)
		wall := time.Since(start)
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			panic("suitebench: marshal: " + err.Error())
		}
		row := SuiteBenchRow{Workers: w, WallMS: float64(wall.Nanoseconds()) / 1e6}
		if row.WallMS > 0 {
			row.ScenariosPerS = float64(count) / (row.WallMS / 1e3)
		}
		if serialJSON == nil {
			serialJSON, serialMS = out, row.WallMS
		}
		row.Identical = bytes.Equal(out, serialJSON)
		if row.WallMS > 0 {
			row.Speedup = serialMS / row.WallMS
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// Render prints the throughput curve.
func (r *SuiteBenchResult) Render() string {
	t := &metrics.Table{Header: []string{
		"workers", "wall (ms)", "scen/s", "speedup", "report identical"}}
	for _, row := range r.Rows {
		t.AddRow(row.Workers, fmt.Sprintf("%.0f", row.WallMS),
			fmt.Sprintf("%.1f", row.ScenariosPerS),
			fmt.Sprintf("%.2fx", row.Speedup), row.Identical)
	}
	s := fmt.Sprintf("seed %d, %d scenarios (x2 executions each); allocs/event (steady state) = %.0f\n",
		r.Seed, r.Count, r.AllocsPerEvent)
	return s + t.String()
}
