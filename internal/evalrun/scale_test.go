package evalrun

import (
	"testing"
)

// TestScaleSmallFleetCompletes sanity-checks the fleet recipe at the
// smallest table size: every tenant finishes within the horizon, the
// scheduler made decisions, gangs were co-scheduled, and the scoped
// bus carried traffic.
func TestScaleSmallFleetCompletes(t *testing.T) {
	row := runScaleFleet(1, 16)
	if row.Completed != row.Tenants {
		t.Fatalf("only %d/%d tenants completed by the horizon (sim %.0f s)",
			row.Completed, row.Tenants, row.SimS)
	}
	if row.Decisions <= 0 || row.Admissions < row.Tenants {
		t.Fatalf("scheduler made %d decisions, %d admissions for %d tenants",
			row.Decisions, row.Admissions, row.Tenants)
	}
	if row.GangAdmissions < 1 {
		t.Fatalf("no gang admissions in a fleet with a 4-gang: %+v", row)
	}
	if row.Published == 0 || row.Delivered != 2*row.Published {
		t.Fatalf("scoped fan-out wrong: %d published, %d delivered (want 2 per publish)",
			row.Published, row.Delivered)
	}
	if row.Digest == "" {
		t.Fatal("empty digest")
	}
}

// TestScaleMidFleetPreempts checks the 128-tenant size exercises the
// involuntary path: hogs must be preempted on an oversubscribed pool.
func TestScaleMidFleetPreempts(t *testing.T) {
	row := runScaleFleet(1, 128)
	if row.Preemptions == 0 {
		t.Fatalf("no preemptions at %gx oversubscription: %+v", row.Oversub, row)
	}
	if row.Completed != row.Tenants {
		t.Fatalf("only %d/%d tenants completed by the horizon", row.Completed, row.Tenants)
	}
}

// TestScaleDeterministicAt1k is the at-scale determinism guard: the
// same seed must drive the 1000-tenant fleet — queue churn, victim
// heaps, scoped fan-out, timer reuse and all — to a byte-identical
// simulation-domain digest twice. It runs under -race in CI.
func TestScaleDeterministicAt1k(t *testing.T) {
	a := runScaleFleet(7, 1000)
	b := runScaleFleet(7, 1000)
	if a.Digest != b.Digest {
		t.Fatalf("same-seed 1k-tenant runs diverged: %s vs %s", a.Digest, b.Digest)
	}
	if a.Events != b.Events || a.Ticks != b.Ticks || a.Preemptions != b.Preemptions {
		t.Fatalf("same-seed runs diverged before the digest: %+v vs %+v", a, b)
	}
	if a.Completed == 0 {
		t.Fatal("1k fleet made no progress")
	}
}
