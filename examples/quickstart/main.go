// Quickstart: build a three-node Emulab experiment (like the paper's
// Figure 1), run a workload, and take one transparent distributed
// checkpoint — then show that the experiment never noticed.
package main

import (
	"fmt"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

func main() {
	// The static experiment definition: three nodes; a shaped 100 Mbps /
	// 10 ms link between client and server (Emulab interposes a delay
	// node on it), and a plain fabric link to the monitor.
	sc := emucheck.Scenario{
		Spec: emulab.Spec{
			Name: "quickstart",
			Nodes: []emulab.NodeSpec{
				{Name: "client", Swappable: true},
				{Name: "server", Swappable: true},
				{Name: "monitor"},
			},
			Links: []emulab.LinkSpec{
				{A: "client", B: "server", Bandwidth: 100 * simnet.Mbps, Delay: 10 * sim.Millisecond},
				{A: "server", B: "monitor"},
			},
		},
	}

	// The dynamic portion: a request/response workload that measures its
	// own round-trip times with gettimeofday, from inside the guest.
	var rtts []sim.Time
	sc.Setup = func(s *emucheck.Session) {
		client, server := s.Kernel("client"), s.Kernel("server")
		server.Handle("req", func(from simnet.Addr, m *guest.Message) {
			server.Send("client", 300, &guest.Message{Port: "resp", Data: m.Data})
		})
		var issue func()
		client.Handle("resp", func(_ simnet.Addr, m *guest.Message) {
			sent := m.Data.(sim.Time)
			rtts = append(rtts, client.Gettimeofday()-sent)
			client.Usleep(50*sim.Millisecond, issue)
		})
		issue = func() {
			client.Send("server", 300, &guest.Message{Port: "req", Data: client.Gettimeofday()})
		}
		issue()
	}

	s := emucheck.NewSession(sc, 2026)
	s.RunFor(5 * sim.Second)
	before := len(rtts)

	fmt.Println("taking a transparent distributed checkpoint ...")
	res, err := s.Checkpoint()
	if err != nil {
		panic(err)
	}
	s.RunFor(5 * sim.Second)

	fmt.Printf("nodes saved: %d   delay nodes saved: %d   image: %.1f MB\n",
		len(res.Images), len(res.DelayStates), float64(res.TotalBytes)/(1<<20))
	fmt.Printf("real downtime concealed: %v   suspend skew: %v\n",
		res.MaxDowntime(), res.SuspendSkew)

	// Transparency check: RTTs measured inside the experiment look the
	// same before and after (and across) the checkpoint.
	min, max := rtts[0], rtts[0]
	for _, r := range rtts {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	fmt.Printf("rtts: %d samples, min %v, max %v (nominal 20 ms; any\n", len(rtts), min, max)
	fmt.Printf("  distortion on the one RTT spanning the checkpoint is bounded by the\n")
	fmt.Printf("  %v suspend skew — not by the %v of concealed downtime)\n", res.SuspendSkew, res.MaxDowntime())
	fmt.Printf("samples spanning the checkpoint: %d..%d — no timeout, no gap\n", before, before+1)
}
