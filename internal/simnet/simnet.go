// Package simnet models the experimental network fabric: packets,
// network interfaces with transmit serialization, point-to-point wires
// with propagation delay and loss, and store-and-forward L2 switches.
//
// The fabric is deliberately composable: anything that can accept a
// packet implements Port, so a path can be assembled as
// NIC -> Wire -> DelayNode -> Wire -> NIC, exactly mirroring how Emulab
// interposes delay nodes on experiment links (paper §2).
//
// Frozen receivers: when a node is suspended for a checkpoint, packets
// that arrive at its NIC are appended to a per-flow replay log and
// delivered in order on resume (paper §3.2). With delay nodes capturing
// the bandwidth-delay product, the log stays bounded by the checkpoint
// synchronization skew.
package simnet

import (
	"fmt"

	"emucheck/internal/sim"
)

// Addr identifies a network endpoint (one NIC).
type Addr string

// Bitrate is a link speed in bits per second.
type Bitrate int64

// Common link speeds used by the Emulab pc3000 configuration.
const (
	Mbps Bitrate = 1_000_000
	Gbps Bitrate = 1_000_000_000
)

// TxTime reports how long serializing size bytes takes at rate r.
func (r Bitrate) TxTime(size int) sim.Time {
	if r <= 0 {
		return 0
	}
	return sim.Time(int64(size) * 8 * int64(sim.Second) / int64(r))
}

// Packet is one frame traversing the fabric. Payload carries the
// protocol-specific content (e.g. a TCP segment) and is never inspected
// by the fabric itself — Emulab supports any protocol above L2 (§3.3),
// and so does this model.
type Packet struct {
	ID      uint64
	Src     Addr
	Dst     Addr
	Flow    string // source-destination flow label for replay ordering
	Size    int    // bytes on the wire
	Payload any
	SentAt  sim.Time
}

// Clone returns a shallow copy of the packet.
func (p *Packet) Clone() *Packet {
	c := *p
	return &c
}

func (p *Packet) String() string {
	return fmt.Sprintf("pkt %d %s->%s (%dB, flow %s)", p.ID, p.Src, p.Dst, p.Size, p.Flow)
}

// Port is anything that can accept a packet at the current simulation
// time: a wire, a switch, a delay-node pipe, or a NIC's receive side.
type Port interface {
	Accept(pkt *Packet)
}

// PortFunc adapts a function to the Port interface.
type PortFunc func(pkt *Packet)

// Accept calls f(pkt).
func (f PortFunc) Accept(pkt *Packet) { f(pkt) }

// Counters aggregates traffic statistics on a NIC direction.
type Counters struct {
	Packets uint64
	Bytes   uint64
}

// NIC is a network interface: it serializes outbound packets at its
// configured speed onto an attached Port, and delivers inbound packets to
// a handler. The receive side can be frozen for checkpoints.
type NIC struct {
	sim     *sim.Simulator
	addr    Addr
	speed   Bitrate
	out     Port
	handler func(*Packet)

	txFreeAt sim.Time // when the transmitter finishes its current queue
	txQueue  int      // packets queued but not yet on the wire

	frozen    bool
	replay    []*Packet // arrival-ordered log of packets received while frozen
	replayGap sim.Time  // spacing between replayed packets

	nextID uint64

	// flows caches the "src>dst" flow label per destination: a NIC
	// talks to a handful of peers and pays a Send per packet, so
	// rebuilding the identical concatenation per call was one of the
	// per-packet allocations the PR 8 -memprofile sweep removed.
	flows map[Addr]string

	TX, RX Counters
	// Dropped counts packets discarded because no handler was attached.
	Dropped uint64
}

// NewNIC creates an interface with the given address and line rate.
// The replay gap defaults to 1 µs, approximating back-to-back delivery
// without creating simultaneous events.
func NewNIC(s *sim.Simulator, addr Addr, speed Bitrate) *NIC {
	return &NIC{sim: s, addr: addr, speed: speed, replayGap: sim.Microsecond}
}

// Addr reports the NIC's address.
func (n *NIC) Addr() Addr { return n.addr }

// Speed reports the NIC's line rate.
func (n *NIC) Speed() Bitrate { return n.speed }

// Attach connects the transmit side to a downstream port.
func (n *NIC) Attach(out Port) { n.out = out }

// OnReceive installs the inbound packet handler.
func (n *NIC) OnReceive(h func(*Packet)) { n.handler = h }

// QueuedTx reports packets accepted for transmit but not yet delivered
// to the downstream port.
func (n *NIC) QueuedTx() int { return n.txQueue }

// Send serializes the packet onto the attached port, honoring the line
// rate: a packet begins transmission only after all previously queued
// packets have left the interface. It returns the scheduled wire-exit
// time. Sending with no attached port counts as a drop.
func (n *NIC) Send(pkt *Packet) sim.Time {
	pkt.Src = n.addr
	if pkt.Flow == "" {
		pkt.Flow = n.flowLabel(pkt.Dst)
	}
	n.nextID++
	pkt.ID = n.nextID
	pkt.SentAt = n.sim.Now()
	if n.out == nil {
		n.Dropped++
		return n.sim.Now()
	}
	start := n.sim.Now()
	if n.txFreeAt > start {
		start = n.txFreeAt
	}
	done := start + n.speed.TxTime(pkt.Size)
	n.txFreeAt = done
	n.txQueue++
	n.TX.Packets++
	n.TX.Bytes += uint64(pkt.Size)
	out := n.out
	n.sim.DoAt(done, "nic.tx", func() {
		n.txQueue--
		out.Accept(pkt)
	})
	return done
}

// flowLabel returns the cached "src>dst" label for a destination,
// building it on first use.
func (n *NIC) flowLabel(dst Addr) string {
	if s, ok := n.flows[dst]; ok {
		return s
	}
	if n.flows == nil {
		n.flows = make(map[Addr]string)
	}
	s := string(n.addr) + ">" + string(dst)
	n.flows[dst] = s
	return s
}

// Accept implements Port for the receive side.
func (n *NIC) Accept(pkt *Packet) {
	if n.frozen {
		n.replay = append(n.replay, pkt)
		return
	}
	n.deliver(pkt)
}

func (n *NIC) deliver(pkt *Packet) {
	n.RX.Packets++
	n.RX.Bytes += uint64(pkt.Size)
	if n.handler == nil {
		n.Dropped++
		return
	}
	n.handler(pkt)
}

// Freeze suspends inbound delivery; packets arriving while frozen are
// logged for in-order replay. The transmit side needs no freezing: a
// frozen guest generates no traffic, and packets already accepted for
// serialization represent bits physically on the wire.
func (n *NIC) Freeze() { n.frozen = true }

// Frozen reports whether the receive side is frozen.
func (n *NIC) Frozen() bool { return n.frozen }

// ReplayLogLen reports how many packets are waiting in the replay log.
func (n *NIC) ReplayLogLen() int { return len(n.replay) }

// Thaw resumes delivery, replaying logged packets in arrival order with
// the configured inter-packet gap before any new traffic is handled.
// Per-flow order is preserved because arrival order preserves it.
func (n *NIC) Thaw() {
	n.frozen = false
	log := n.replay
	n.replay = nil
	gap := sim.Time(0)
	for _, pkt := range log {
		pkt := pkt
		n.sim.DoAfter(gap, "nic.replay", func() { n.deliver(pkt) })
		gap += n.replayGap
	}
}

// SetReplayGap overrides the spacing used when draining the replay log.
// The paper notes that replaying faster than the natural arrival rate
// creates artificial bursts (§3.2); tests use this to demonstrate it.
func (n *NIC) SetReplayGap(d sim.Time) {
	if d < 0 {
		d = 0
	}
	n.replayGap = d
}

// Wire is a unidirectional point-to-point segment with fixed propagation
// delay and optional random loss. Bandwidth is enforced by the sending
// NIC (or delay-node pipe), not the wire.
type Wire struct {
	sim   *sim.Simulator
	delay sim.Time
	loss  float64 // probability in [0,1]
	dst   Port

	Delivered uint64
	Lost      uint64
}

// NewWire creates a wire to dst with the given one-way propagation delay.
func NewWire(s *sim.Simulator, delay sim.Time, dst Port) *Wire {
	return &Wire{sim: s, delay: delay, dst: dst}
}

// SetLoss sets the independent per-packet loss probability.
func (w *Wire) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	w.loss = p
}

// Delay reports the propagation delay.
func (w *Wire) Delay() sim.Time { return w.delay }

// Accept implements Port.
func (w *Wire) Accept(pkt *Packet) {
	if w.loss > 0 && w.sim.Rand().Float64() < w.loss {
		w.Lost++
		return
	}
	w.sim.DoAfter(w.delay, "wire", func() {
		w.Delivered++
		w.dst.Accept(pkt)
	})
}

// Switch is a store-and-forward L2 switch: packets are forwarded to the
// port registered for their destination address after a fixed forwarding
// latency. Unknown destinations are dropped (experiments are closed
// worlds; there is no flooding).
type Switch struct {
	sim     *sim.Simulator
	latency sim.Time
	ports   map[Addr]Port

	Forwarded uint64
	Unknown   uint64
}

// NewSwitch creates a switch with the given per-packet forwarding latency.
func NewSwitch(s *sim.Simulator, latency sim.Time) *Switch {
	return &Switch{sim: s, latency: latency, ports: make(map[Addr]Port)}
}

// Connect registers the port handling traffic addressed to addr.
func (sw *Switch) Connect(addr Addr, p Port) { sw.ports[addr] = p }

// Accept implements Port.
func (sw *Switch) Accept(pkt *Packet) {
	dst, ok := sw.ports[pkt.Dst]
	if !ok {
		sw.Unknown++
		return
	}
	sw.sim.DoAfter(sw.latency, "switch", func() {
		sw.Forwarded++
		dst.Accept(pkt)
	})
}
