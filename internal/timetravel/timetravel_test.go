package timetravel

import (
	"sort"
	"testing"
	"testing/quick"

	"emucheck/internal/core"
	"emucheck/internal/sim"
)

func res(bytes int64) *core.Result {
	return &core.Result{TotalBytes: bytes}
}

func TestLinearRecording(t *testing.T) {
	tr := NewTree(1 << 30)
	n1, err := tr.Record(res(100), 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	n2, _ := tr.Record(res(100), 10*sim.Second)
	if n2.Parent != n1.ID || tr.Head() != n2.ID {
		t.Fatal("chain broken")
	}
	if tr.Used() != 200 || tr.Len() != 3 {
		t.Fatalf("used=%d len=%d", tr.Used(), tr.Len())
	}
	if tr.Depth(n2.ID) != 2 {
		t.Fatalf("depth = %d", tr.Depth(n2.ID))
	}
}

func TestRollbackCreatesBranch(t *testing.T) {
	tr := NewTree(1 << 30)
	n1, _ := tr.Record(res(10), 5*sim.Second)
	tr.Record(res(10), 10*sim.Second)
	plan, err := tr.Rollback(n1.ID, Perturbation{Kind: SeedChange, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Target != 5*sim.Second || plan.From.ID != n1.ID {
		t.Fatalf("plan: %+v", plan)
	}
	tr.SetBranchPerturbation(plan.Perturb)
	n3, _ := tr.Record(res(10), 7*sim.Second)
	if n3.Parent != n1.ID {
		t.Fatal("branch not under rollback point")
	}
	if n3.Branch.Kind != SeedChange || n3.Branch.Seed != 99 {
		t.Fatalf("lineage lost: %+v", n3.Branch)
	}
	// n1 now has two children -> a tree, not a chain.
	node, _ := tr.Get(n1.ID)
	if len(node.Children) != 2 {
		t.Fatalf("children = %d", len(node.Children))
	}
	leaves := tr.Leaves()
	sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
	if len(leaves) != 2 {
		t.Fatalf("leaves = %v", leaves)
	}
}

func TestRollbackUnknownNode(t *testing.T) {
	tr := NewTree(0)
	if _, err := tr.Rollback(42, Perturbation{}); err == nil {
		t.Fatal("rollback to ghost succeeded")
	}
}

func TestCapacityEnforced(t *testing.T) {
	tr := NewTree(250)
	tr.Record(res(100), sim.Second)
	tr.Record(res(100), 2*sim.Second)
	if _, err := tr.Record(res(100), 3*sim.Second); err == nil {
		t.Fatal("overfilled snapshot disk")
	}
	if tr.Used() != 200 {
		t.Fatal("failed record changed usage")
	}
}

func TestPrune(t *testing.T) {
	tr := NewTree(1 << 20)
	n1, _ := tr.Record(res(100), sim.Second)
	n2, _ := tr.Record(res(100), 2*sim.Second)
	if err := tr.Prune(n1.ID); err == nil {
		t.Fatal("pruned internal node")
	}
	if err := tr.Prune(Root); err == nil {
		t.Fatal("pruned root")
	}
	if err := tr.Prune(n2.ID); err != nil {
		t.Fatal(err)
	}
	if tr.Used() != 100 || tr.Head() != n1.ID {
		t.Fatalf("used=%d head=%d", tr.Used(), tr.Head())
	}
	if err := tr.Prune(n2.ID); err == nil {
		t.Fatal("double prune")
	}
}

func TestPathToRoot(t *testing.T) {
	tr := NewTree(0)
	tr.Record(res(1), sim.Second)
	n2, _ := tr.Record(res(1), 2*sim.Second)
	path, err := tr.PathToRoot(n2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0].ID != n2.ID || path[2].ID != Root {
		t.Fatalf("path: %v", path)
	}
	if _, err := tr.PathToRoot(99); err == nil {
		t.Fatal("ghost path")
	}
}

func TestThousandsOfNodes(t *testing.T) {
	// §6: the snapshot disk stores trees with thousands of nodes. With
	// ~35 MB incremental snapshots, a 146 GB disk holds ~4000.
	tr := NewTree(146 << 30)
	for i := 0; i < 4000; i++ {
		if _, err := tr.Record(res(35<<20), sim.Time(i)*sim.Second); err != nil {
			t.Fatalf("failed at node %d: %v", i, err)
		}
	}
	if tr.Len() != 4001 {
		t.Fatalf("len = %d", tr.Len())
	}
}

// Property: used bytes always equal the sum over live non-root nodes,
// across any record/rollback/prune sequence.
func TestPropertyAccounting(t *testing.T) {
	f := func(ops []uint8) bool {
		tr := NewTree(1 << 40)
		for _, op := range ops {
			switch op % 3 {
			case 0, 1:
				tr.Record(res(int64(op)+1), sim.Time(op)*sim.Second)
			case 2:
				leaves := tr.Leaves()
				if len(leaves) > 0 {
					sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
					tr.Prune(leaves[0])
				}
			}
		}
		var sum int64
		for id := NodeID(0); id < NodeID(len(ops)+2); id++ {
			if n, ok := tr.Get(id); ok && id != Root {
				sum += n.Bytes
			}
		}
		return sum == tr.Used()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
