package firewall

import (
	"testing"
	"testing/quick"

	"emucheck/internal/node"
	"emucheck/internal/sim"
	"emucheck/internal/vclock"
)

func setup(seed int64) (*sim.Simulator, *vclock.Clock, *Firewall) {
	s := sim.New(seed)
	c := vclock.New(s, 0)
	return s, c, New(s, c)
}

func TestTimerFiresNormally(t *testing.T) {
	s, _, f := setup(1)
	var at sim.Time
	f.After(TimerJob, 10*sim.Millisecond, "t", func() { at = s.Now() })
	s.Run()
	if at != 10*sim.Millisecond {
		t.Fatalf("fired at %v", at)
	}
	if f.Pending() != 0 {
		t.Fatal("pending not cleared")
	}
}

func TestEngageSuspendsInsideTimers(t *testing.T) {
	s, c, f := setup(1)
	var firedVirtual sim.Time
	f.After(TimerJob, 10*sim.Millisecond, "t", func() { firedVirtual = c.SystemTime() })
	s.RunFor(4 * sim.Millisecond)
	f.Engage(0)
	s.RunFor(100 * sim.Millisecond) // long checkpoint
	if firedVirtual != 0 {
		t.Fatal("timer fired during engage")
	}
	f.Disengage(0)
	s.Run()
	// Virtual delay must be exactly 10 ms despite the 100 ms freeze.
	if firedVirtual != 10*sim.Millisecond {
		t.Fatalf("virtual fire time = %v, want 10ms", firedVirtual)
	}
	if f.InsideFired != 0 {
		t.Fatalf("inside activity during checkpoint: %d", f.InsideFired)
	}
}

func TestOutsideClassRunsDuringEngage(t *testing.T) {
	s, _, f := setup(1)
	fired := false
	f.Engage(0)
	f.After(XenBus, sim.Millisecond, "xb", func() { fired = true })
	s.RunFor(10 * sim.Millisecond)
	if !fired {
		t.Fatal("xenbus handler suppressed by firewall")
	}
	if f.OutsideFired != 1 {
		t.Fatalf("outside fired = %d", f.OutsideFired)
	}
	f.Disengage(0)
}

func TestInsideScheduledWhileEngagedParks(t *testing.T) {
	s, c, f := setup(1)
	var firedVirtual sim.Time = -1
	f.Engage(0)
	// Outside code (e.g. a device driver) queues inside work mid-ckpt.
	f.After(SoftIRQ, 5*sim.Millisecond, "si", func() { firedVirtual = c.SystemTime() })
	s.RunFor(50 * sim.Millisecond)
	if firedVirtual != -1 {
		t.Fatal("inside work ran while engaged")
	}
	f.Disengage(0)
	s.Run()
	if firedVirtual != 5*sim.Millisecond {
		t.Fatalf("virtual fire = %v, want 5ms", firedVirtual)
	}
}

func TestComputeNoContention(t *testing.T) {
	s, _, f := setup(1)
	cpu := node.NewCPU(s)
	var at sim.Time
	f.Compute(UserThread, cpu, 200*sim.Millisecond, "job", func() { at = s.Now() })
	s.Run()
	if at != 200*sim.Millisecond {
		t.Fatalf("compute finished at %v", at)
	}
}

func TestComputeAcrossEngagePreservesWork(t *testing.T) {
	s, c, f := setup(1)
	cpu := node.NewCPU(s)
	var virt sim.Time
	f.Compute(UserThread, cpu, 100*sim.Millisecond, "job", func() { virt = c.SystemTime() })
	s.RunFor(30 * sim.Millisecond)
	f.Engage(0)
	s.RunFor(500 * sim.Millisecond)
	f.Disengage(0)
	s.Run()
	if virt != 100*sim.Millisecond {
		t.Fatalf("virtual completion = %v, want 100ms", virt)
	}
}

func TestComputeFeelsDom0Steal(t *testing.T) {
	s, _, f := setup(1)
	cpu := node.NewCPU(s)
	var at sim.Time
	// Register interference before the burst: 20 ms fully stolen.
	cpu.Steal(10*sim.Millisecond, 20*sim.Millisecond, 1.0)
	f.Compute(UserThread, cpu, 100*sim.Millisecond, "job", func() { at = s.Now() })
	s.Run()
	if at != 120*sim.Millisecond {
		t.Fatalf("finished at %v, want 120ms", at)
	}
}

func TestReplanAppliesLateInterference(t *testing.T) {
	s, _, f := setup(1)
	cpu := node.NewCPU(s)
	var at sim.Time
	f.Compute(UserThread, cpu, 100*sim.Millisecond, "job", func() { at = s.Now() })
	s.RunFor(50 * sim.Millisecond)
	// dom0 work arrives mid-burst: without Replan the completion event
	// would be stale.
	cpu.Steal(s.Now(), 10*sim.Millisecond, 1.0)
	f.Replan()
	s.Run()
	if at != 110*sim.Millisecond {
		t.Fatalf("finished at %v, want 110ms", at)
	}
}

func TestCancel(t *testing.T) {
	s, _, f := setup(1)
	fired := false
	h := f.After(TimerJob, sim.Millisecond, "t", func() { fired = true })
	f.Cancel(h)
	s.Run()
	if fired || f.Pending() != 0 {
		t.Fatal("cancel failed")
	}
	f.Cancel(h) // idempotent
	f.Cancel(nil)
}

func TestCancelSuspendedHandle(t *testing.T) {
	s, _, f := setup(1)
	fired := false
	h := f.After(TimerJob, sim.Millisecond, "t", func() { fired = true })
	f.Engage(0)
	f.Cancel(h)
	f.Disengage(0)
	s.Run()
	if fired {
		t.Fatal("cancelled suspended handle fired")
	}
}

func TestDoubleEngagePanics(t *testing.T) {
	_, _, f := setup(1)
	f.Engage(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Engage(0)
}

func TestDisengageIdlePanics(t *testing.T) {
	_, _, f := setup(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.Disengage(0)
}

func TestRepeatedCheckpointCycles(t *testing.T) {
	s, c, f := setup(1)
	// A periodic 10 ms virtual timer, checkpointed every cycle.
	var ticks []sim.Time
	var tick func()
	tick = func() {
		ticks = append(ticks, c.SystemTime())
		if len(ticks) < 10 {
			f.After(TimerJob, 10*sim.Millisecond, "tick", tick)
		}
	}
	f.After(TimerJob, 10*sim.Millisecond, "tick", tick)
	for i := 0; i < 10; i++ {
		s.RunFor(7 * sim.Millisecond)
		f.Engage(0)
		s.RunFor(55 * sim.Millisecond) // checkpoint
		f.Disengage(0)
	}
	s.Run()
	if len(ticks) != 10 {
		t.Fatalf("ticks = %d", len(ticks))
	}
	for i, ti := range ticks {
		want := sim.Time(i+1) * 10 * sim.Millisecond
		if ti != want {
			t.Fatalf("tick %d at virtual %v, want %v", i, ti, want)
		}
	}
	if f.InsideFired != 0 {
		t.Fatal("inside activity leaked into checkpoints")
	}
}

// Property: for any engage point within the timer's life and any freeze
// length, the observed *virtual* delay of a timer equals the requested
// delay exactly (with zero leak).
func TestPropertyVirtualDelayExact(t *testing.T) {
	f := func(delayMs, engageAtMs, freezeMs uint8) bool {
		d := sim.Time(delayMs%50+1) * sim.Millisecond
		at := sim.Time(engageAtMs) * sim.Millisecond % d
		s := sim.New(7)
		c := vclock.New(s, 0)
		fw := New(s, c)
		var virt sim.Time = -1
		fw.After(TimerJob, d, "t", func() { virt = c.SystemTime() })
		s.RunFor(at)
		fw.Engage(0)
		s.RunFor(sim.Time(freezeMs) * sim.Millisecond)
		fw.Disengage(0)
		s.Run()
		return virt == d && fw.InsideFired == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: compute work is conserved across any checkpoint placement —
// real completion = work + freeze duration when there is no contention.
func TestPropertyComputeConservation(t *testing.T) {
	f := func(workMs, engageAtMs, freezeMs uint8) bool {
		work := sim.Time(workMs%80+1) * sim.Millisecond
		at := sim.Time(engageAtMs) * sim.Millisecond % work
		s := sim.New(8)
		c := vclock.New(s, 0)
		fw := New(s, c)
		cpu := node.NewCPU(s)
		var real sim.Time = -1
		fw.Compute(UserThread, cpu, work, "job", func() { real = s.Now() })
		s.RunFor(at)
		fw.Engage(0)
		freeze := sim.Time(freezeMs) * sim.Millisecond
		s.RunFor(freeze)
		fw.Disengage(0)
		s.Run()
		return real == work+freeze
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimerHonorsDilation(t *testing.T) {
	s, c, f := setup(1)
	c.SetDilation(3)
	var realAt sim.Time
	var virtAt sim.Time
	f.After(TimerJob, 10*sim.Millisecond, "t", func() {
		realAt, virtAt = s.Now(), c.SystemTime()
	})
	s.Run()
	if realAt != 30*sim.Millisecond {
		t.Fatalf("fired at real %v, want 30ms under 3x dilation", realAt)
	}
	if virtAt != 10*sim.Millisecond {
		t.Fatalf("fired at virtual %v, want 10ms", virtAt)
	}
}

func TestDilatedTimerAcrossCheckpoint(t *testing.T) {
	s, c, f := setup(1)
	c.SetDilation(2)
	var virtAt sim.Time = -1
	f.After(TimerJob, 20*sim.Millisecond, "t", func() { virtAt = c.SystemTime() })
	s.RunFor(10 * sim.Millisecond) // 5 ms virtual elapsed
	f.Engage(0)
	s.RunFor(100 * sim.Millisecond)
	f.Disengage(0)
	s.Run()
	if virtAt != 20*sim.Millisecond {
		t.Fatalf("virtual fire = %v, want exactly 20ms", virtAt)
	}
}

func TestClassTaxonomy(t *testing.T) {
	inside := []Class{UserThread, KernelThread, SoftIRQ, TimerJob, DeviceIRQ}
	outside := []Class{SuspendThread, XenBus, BlockDrainIRQ, PageFault}
	for _, c := range inside {
		if !c.Inside() {
			t.Fatalf("%v should be inside the firewall", c)
		}
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
	for _, c := range outside {
		if c.Inside() {
			t.Fatalf("%v should run outside the firewall", c)
		}
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
}

func TestDescribe(t *testing.T) {
	s, _, f := setup(1)
	f.After(TimerJob, sim.Second, "t", func() {})
	f.After(UserThread, sim.Second, "u", func() {})
	if d := f.Describe(); d == "" {
		t.Fatal("empty describe")
	}
	_ = s
}

func TestEngagesCounter(t *testing.T) {
	_, _, f := setup(1)
	for i := 0; i < 3; i++ {
		f.Engage(0)
		f.Disengage(0)
	}
	if f.Engages != 3 {
		t.Fatalf("engages = %d", f.Engages)
	}
}

func TestHandleDoneFlag(t *testing.T) {
	s, _, f := setup(1)
	h := f.After(TimerJob, sim.Millisecond, "t", func() {})
	if h.Done() {
		t.Fatal("premature done")
	}
	s.Run()
	if !h.Done() {
		t.Fatal("not done after firing")
	}
	if h.Class() != TimerJob {
		t.Fatal("class accessor")
	}
}

func TestReplanWhileEngagedIsNoop(t *testing.T) {
	s, _, f := setup(1)
	cpu := node.NewCPU(s)
	fired := false
	f.Compute(UserThread, cpu, 10*sim.Millisecond, "j", func() { fired = true })
	f.Engage(0)
	f.Replan() // must not re-arm anything inside an engaged firewall
	s.RunFor(sim.Second)
	if fired {
		t.Fatal("compute fired during engage after Replan")
	}
	f.Disengage(0)
	s.Run()
	if !fired {
		t.Fatal("compute lost")
	}
}
