// Package xfer implements the background block-transfer machinery of
// stateful swapping (paper §5.1, §5.3): rate-limited streaming built on
// LVM-mirror-style remote redirection, with an eager pre-copy mode for
// swap-out and a lazy demand-paged mode for swap-in.
//
// The paper's key refinement is the rate-limiting function added to LVM
// mirror synchronization: unthrottled background copying visibly
// perturbs the guest's disk throughput (Fig. 9), so synchronization is
// slowed relative to normal system I/O.
package xfer

import (
	"emucheck/internal/node"
	"emucheck/internal/sim"
)

// Server models the Emulab file server reached over the control
// network. Plain transfers are serialized FIFO at the configured rate —
// the 100 Mbps control LAN is the bottleneck the paper calls out in
// §7.2 — while Stream transfers share the same pipe fairly
// (processor-sharing), modeling the pipelined per-node uploads of the
// incremental swap path instead of serialized full copies.
type Server struct {
	s *sim.Simulator
	// Rate is the shared pipe's bandwidth in bytes/second.
	Rate int64

	busyUntil sim.Time
	// Received and Served count bytes moved node->server and
	// server->node respectively, for reports.
	Received uint64
	Served   uint64

	// Processor-sharing stream state: every active stream gets an equal
	// share of Rate; membership changes resettle the remaining bytes.
	streams    []*stream
	streamEv   *sim.Event
	streamLast sim.Time

	// Queued is the total time transfers spent waiting behind earlier
	// bytes in the shared pipe — the control-LAN bottleneck of §7.2.
	// It counts all serialization, both an experiment's own concurrent
	// streams and its neighbors'; ByTag apportions the bytes when the
	// cross-experiment share matters.
	Queued sim.Time
	// MulticastSavedBytes accumulates the extra bytes unicast staging
	// would have moved: for every Multicast of n bytes to k receivers,
	// (k-1)*n bytes never crossed the control LAN.
	MulticastSavedBytes int64
	// MaxBacklog is the worst backlog observed at enqueue time.
	MaxBacklog sim.Time
	// ByTag attributes bytes moved (both directions) per experiment.
	ByTag map[string]int64

	// Per-batch accounting for the coalesced put path (StreamUploadBatch
	// / StreamDownloadBatch): Batches counts batches, BatchSegments the
	// segments they carried, BatchBytes their payload, and
	// BatchSavedStreams the stream-table admissions coalescing avoided
	// (segments-1 per batch) — each saved admission is one less
	// concurrent claim on the fair-share pipe.
	Batches           int64
	BatchSegments     int64
	BatchBytes        int64
	BatchSavedStreams int64
}

// NewServer creates a file server; rate defaults to 100 Mbps worth of
// bytes if zero.
func NewServer(s *sim.Simulator, rate int64) *Server {
	if rate <= 0 {
		rate = 100_000_000 / 8
	}
	return &Server{s: s, Rate: rate, ByTag: make(map[string]int64)}
}

// transfer schedules n bytes through the shared server pipe and fires
// done when this transfer's bytes have fully drained.
func (sv *Server) transfer(tag string, n int64, up bool, done func()) {
	if n <= 0 {
		sv.s.DoAfter(0, "xfer.zero", done)
		return
	}
	start := sv.s.Now()
	if sv.busyUntil > start {
		wait := sv.busyUntil - start
		sv.Queued += wait
		if wait > sv.MaxBacklog {
			sv.MaxBacklog = wait
		}
		start = sv.busyUntil
	}
	dur := sim.Time(float64(n) / float64(sv.Rate) * float64(sim.Second))
	sv.busyUntil = start + dur
	if up {
		sv.Received += uint64(n)
	} else {
		sv.Served += uint64(n)
	}
	if tag != "" {
		sv.ByTag[tag] += n
	}
	sv.s.DoAt(sv.busyUntil, "xfer.server", done)
}

// Upload moves n bytes node->server.
func (sv *Server) Upload(n int64, done func()) { sv.transfer("", n, true, done) }

// Download moves n bytes server->node.
func (sv *Server) Download(n int64, done func()) { sv.transfer("", n, false, done) }

// UploadTagged is Upload with per-experiment attribution.
func (sv *Server) UploadTagged(tag string, n int64, done func()) { sv.transfer(tag, n, true, done) }

// DownloadTagged is Download with per-experiment attribution.
func (sv *Server) DownloadTagged(tag string, n int64, done func()) { sv.transfer(tag, n, false, done) }

// AccountUpload charges n node->server bytes to the accounting ledgers
// (Received, ByTag) without occupying the pipe — for transfers whose
// timing is modeled elsewhere, like the checkpoint images the
// hypervisor itself streams over the control network during a swap-out.
func (sv *Server) AccountUpload(tag string, n int64) {
	if n <= 0 {
		return
	}
	sv.Received += uint64(n)
	if tag != "" {
		sv.ByTag[tag] += n
	}
}

// AccountDownload is AccountUpload for server->node bytes.
func (sv *Server) AccountDownload(tag string, n int64) {
	if n <= 0 {
		return
	}
	sv.Served += uint64(n)
	if tag != "" {
		sv.ByTag[tag] += n
	}
}

// stream is one processor-sharing transfer in flight.
type stream struct {
	remaining float64 // bytes still to move
	done      func()
}

// StreamUpload moves n bytes node->server through the fair-share pipe:
// concurrent streams split Rate equally instead of queueing FIFO, so N
// parallel per-node uploads overlap rather than serialize — a small
// swap-out is never stuck behind a neighbor's full image.
func (sv *Server) StreamUpload(tag string, n int64, done func()) { sv.stream(tag, n, true, done) }

// StreamDownload moves n bytes server->node through the fair-share pipe.
func (sv *Server) StreamDownload(tag string, n int64, done func()) { sv.stream(tag, n, false, done) }

// Multicast moves n bytes server->nodes once for all receivers —
// Frisbee-style multicast imaging over the control LAN (the same
// mechanism §7.2's golden-image distribution uses): the shared pipe
// carries the bytes a single time no matter how many nodes join the
// session, so staging one checkpoint prefix to a branch fan-out costs
// what staging it to one node costs. The transfer shares the pipe
// fairly with concurrent streams; done fires when the bytes have
// drained (every receiver has them).
func (sv *Server) Multicast(tag string, n int64, receivers int, done func()) {
	if receivers > 1 && n > 0 {
		sv.MulticastSavedBytes += int64(receivers-1) * n
	}
	sv.stream(tag, n, false, done)
}

// StreamUploadBatch coalesces the segment puts of one epoch commit
// into a single fair-share upload: the batch's segments move as one
// stream (one claim on the shared pipe instead of one per segment) and
// the per-batch ledgers account them. Zero-sized segments are skipped;
// an all-empty batch completes immediately. done, if non-nil, receives
// the total payload once the batch has drained.
func (sv *Server) StreamUploadBatch(tag string, sizes []int64, done func(total int64)) {
	sv.batch(tag, sizes, true, done)
}

// StreamDownloadBatch is the get side of the batched path: one
// coalesced fair-share download for a restore's missing segments.
func (sv *Server) StreamDownloadBatch(tag string, sizes []int64, done func(total int64)) {
	sv.batch(tag, sizes, false, done)
}

func (sv *Server) batch(tag string, sizes []int64, up bool, done func(int64)) {
	var total int64
	var segs int64
	for _, n := range sizes {
		if n > 0 {
			total += n
			segs++
		}
	}
	fin := func() {
		if done != nil {
			done(total)
		}
	}
	if total <= 0 {
		sv.s.DoAfter(0, "xfer.batch0", fin)
		return
	}
	sv.Batches++
	sv.BatchSegments += segs
	sv.BatchBytes += total
	sv.BatchSavedStreams += segs - 1
	sv.stream(tag, total, up, fin)
}

// ActiveStreams reports how many fair-share transfers are in flight.
func (sv *Server) ActiveStreams() int { return len(sv.streams) }

func (sv *Server) stream(tag string, n int64, up bool, done func()) {
	if n <= 0 {
		sv.s.DoAfter(0, "xfer.zero", done)
		return
	}
	if up {
		sv.AccountUpload(tag, n)
	} else {
		sv.AccountDownload(tag, n)
	}
	sv.settleStreams()
	sv.streams = append(sv.streams, &stream{remaining: float64(n), done: done})
	sv.rescheduleStreams()
}

// settleStreams charges elapsed time against every active stream at the
// current per-stream share.
func (sv *Server) settleStreams() {
	now := sv.s.Now()
	if len(sv.streams) > 0 {
		per := float64(sv.Rate) / float64(len(sv.streams))
		elapsed := (now - sv.streamLast).Seconds()
		for _, st := range sv.streams {
			st.remaining -= elapsed * per
		}
	}
	sv.streamLast = now
}

// rescheduleStreams completes drained streams (in admission order) and
// arms the next completion event.
func (sv *Server) rescheduleStreams() {
	var finished []func()
	live := sv.streams[:0]
	for _, st := range sv.streams {
		if st.remaining <= 0.5 { // sub-byte float residue counts as done
			finished = append(finished, st.done)
			continue
		}
		live = append(live, st)
	}
	sv.streams = live
	if sv.streamEv != nil && !sv.streamEv.Cancelled() {
		sv.s.Cancel(sv.streamEv)
	}
	sv.streamEv = nil
	if len(sv.streams) > 0 {
		per := float64(sv.Rate) / float64(len(sv.streams))
		min := sv.streams[0].remaining
		for _, st := range sv.streams[1:] {
			if st.remaining < min {
				min = st.remaining
			}
		}
		dur := sim.Time(min / per * float64(sim.Second))
		sv.streamEv = sv.s.After(dur, "xfer.stream", func() {
			sv.streamEv = nil
			sv.settleStreams()
			sv.rescheduleStreams()
		})
	}
	for _, fn := range finished {
		if fn != nil {
			fn()
		}
	}
}

// Copier streams a byte range between a local disk and the server in
// rate-limited chunks, sharing the spindle with foreground I/O.
type Copier struct {
	s      *sim.Simulator
	disk   *node.Disk
	server *Server

	// ChunkBytes is the unit of background copying (default 1 MiB).
	ChunkBytes int64
	// RateLimit caps background throughput in bytes/second; this is the
	// paper's rate-limiting function (§5.3). Zero means unthrottled.
	RateLimit int64
	// Tag attributes this copy's server bytes to an experiment.
	Tag string

	cancelled bool
	// Moved reports bytes copied so far.
	Moved int64
	// Resent counts bytes re-copied because they were re-dirtied.
	Resent int64
}

// NewCopier builds a copier between disk and server.
func NewCopier(s *sim.Simulator, disk *node.Disk, server *Server) *Copier {
	return &Copier{s: s, disk: disk, server: server, ChunkBytes: 1 << 20, RateLimit: 10 << 20}
}

// Cancel stops the copy: no further chunks are scheduled after the one
// in flight, and the copy's done callback fires promptly with the bytes
// moved so far. Cancellation is checked at every stage boundary (before
// the disk op, before the server transfer, and before the pacing wait),
// so a cancel lands within one chunk everywhere in the pipeline.
func (c *Copier) Cancel() { c.cancelled = true }

// Cancelled reports whether Cancel was called.
func (c *Copier) Cancelled() bool { return c.cancelled }

// pace reports the minimum wall time one chunk may take under the rate
// limit.
func (c *Copier) pace(n int64) sim.Time {
	if c.RateLimit <= 0 {
		return 0
	}
	return sim.Time(float64(n) / float64(c.RateLimit) * float64(sim.Second))
}

// CopyOut streams n bytes from the disk region at base to the server:
// read chunk (sharing the spindle), upload, honor the rate limit, next
// chunk. done receives the total moved (less if cancelled).
func (c *Copier) CopyOut(base, n int64, done func(moved int64)) {
	c.copyOutFrom(base, base+n, done)
}

func (c *Copier) copyOutFrom(cur, end int64, done func(int64)) {
	if c.cancelled || cur >= end {
		done(c.Moved)
		return
	}
	n := c.ChunkBytes
	if end-cur < n {
		n = end - cur
	}
	floor := c.s.Now() + c.pace(n)
	c.disk.Submit(&node.DiskRequest{Op: node.Read, LBA: cur, Bytes: n, Done: func() {
		if c.cancelled {
			// Cancelled between the disk read and the upload: the chunk
			// never reached the server, so it does not count as moved.
			done(c.Moved)
			return
		}
		c.server.UploadTagged(c.Tag, n, func() {
			c.Moved += n
			if c.cancelled {
				// Skip the pacing wait; report what actually moved.
				done(c.Moved)
				return
			}
			next := floor - c.s.Now()
			c.s.DoAfter(next, "xfer.pace", func() { c.copyOutFrom(cur+n, end, done) })
		})
	}})
}

// CopyIn streams n bytes from the server onto the disk region at base.
func (c *Copier) CopyIn(base, n int64, done func(moved int64)) {
	c.copyInFrom(base, base+n, done)
}

func (c *Copier) copyInFrom(cur, end int64, done func(int64)) {
	if c.cancelled || cur >= end {
		done(c.Moved)
		return
	}
	n := c.ChunkBytes
	if end-cur < n {
		n = end - cur
	}
	floor := c.s.Now() + c.pace(n)
	c.server.DownloadTagged(c.Tag, n, func() {
		if c.cancelled {
			// The chunk crossed the network but was never written back;
			// it is not usable data, so it does not count as moved.
			done(c.Moved)
			return
		}
		c.disk.Submit(&node.DiskRequest{Op: node.Write, LBA: cur, Bytes: n, Done: func() {
			c.Moved += n
			if c.cancelled {
				done(c.Moved)
				return
			}
			next := floor - c.s.Now()
			c.s.DoAfter(next, "xfer.pace", func() { c.copyInFrom(cur+n, end, done) })
		}})
	})
}

// LazyMirror wraps a block backend whose contents are partially remote:
// reads of not-yet-present chunks fault and fetch over the control
// network first (demand paging), while a background CopyIn fills the
// rest (lazy copy-in, §5.1). Chunk granularity is ChunkBytes. Every
// fetch path — background fill, demand fault, readahead — goes through
// one in-flight table, so a chunk is never downloaded twice and readers
// wait on fetches already under way.
type LazyMirror struct {
	s       *sim.Simulator
	backend Backend
	server  *Server

	// ChunkBytes is the demand-paging granularity (default 1 MiB).
	ChunkBytes int64
	present    map[int64]bool // chunk index -> local
	inflight   map[int64]bool // chunk index -> download under way
	waiters    map[int64][]func()
	total      int64 // bytes under management
	bg         *Copier

	// Base offsets the managed region: bytes in [Base, Base+total) are
	// remote until fetched; everything else is local.
	Base int64

	// Faults counts demand fetches triggered by guest reads.
	Faults uint64
}

// Backend is the byte-addressed device being mirrored (matches
// guest.BlockBackend).
type Backend interface {
	Read(off, n int64, done func())
	Write(off, n int64, done func())
}

// NewLazyMirror manages total bytes of remote content over backend.
func NewLazyMirror(s *sim.Simulator, backend Backend, server *Server, disk *node.Disk, total int64) *LazyMirror {
	lm := &LazyMirror{
		s: s, backend: backend, server: server,
		ChunkBytes: 1 << 20,
		present:    make(map[int64]bool),
		inflight:   make(map[int64]bool),
		waiters:    make(map[int64][]func()),
		total:      total,
	}
	lm.bg = NewCopier(s, disk, server)
	return lm
}

// SetBackgroundRate adjusts the background fill's rate limit
// (bytes/second; 0 = unthrottled).
func (lm *LazyMirror) SetBackgroundRate(bps int64) { lm.bg.RateLimit = bps }

// SetTag attributes this mirror's server bytes to an experiment.
func (lm *LazyMirror) SetTag(tag string) { lm.bg.Tag = tag }

// chunks reports the number of managed chunks.
func (lm *LazyMirror) chunks() int64 {
	return (lm.total + lm.ChunkBytes - 1) / lm.ChunkBytes
}

// fetch downloads chunk c unless local or already in flight; then fires
// the chunk's waiters.
func (lm *LazyMirror) fetch(c int64) {
	if lm.present[c] || lm.inflight[c] || c < 0 || c >= lm.chunks() {
		return
	}
	lm.inflight[c] = true
	n := lm.ChunkBytes
	if rem := lm.total - c*lm.ChunkBytes; rem < n {
		n = rem
	}
	lm.server.DownloadTagged(lm.bg.Tag, n, func() {
		lm.backend.Write(lm.Base+c*lm.ChunkBytes, n, func() {
			lm.arrived(c)
		})
	})
}

// arrived marks a chunk local and wakes its waiters.
func (lm *LazyMirror) arrived(c int64) {
	lm.present[c] = true
	delete(lm.inflight, c)
	ws := lm.waiters[c]
	delete(lm.waiters, c)
	lm.bg.Moved += lm.ChunkBytes
	for _, w := range ws {
		w()
	}
}

// StartBackground begins filling missing chunks sequentially at the
// copier's rate limit; done fires when everything is local.
func (lm *LazyMirror) StartBackground(done func()) {
	lm.fillNext(0, done)
}

func (lm *LazyMirror) fillNext(idx int64, done func()) {
	for idx < lm.chunks() && (lm.present[idx] || lm.inflight[idx]) {
		if lm.inflight[idx] {
			// Wait for the in-flight fetch (a fault got there first).
			idx := idx
			lm.waiters[idx] = append(lm.waiters[idx], func() { lm.fillNext(idx+1, done) })
			return
		}
		idx++
	}
	if idx >= lm.chunks() {
		if done != nil {
			done()
		}
		return
	}
	floor := lm.s.Now() + lm.bg.pace(lm.ChunkBytes)
	lm.waiters[idx] = append(lm.waiters[idx], func() {
		lm.s.DoAfter(floor-lm.s.Now(), "xfer.bgfill", func() { lm.fillNext(idx+1, done) })
	})
	lm.fetch(idx)
}

// Resident reports how many bytes are local.
func (lm *LazyMirror) Resident() int64 {
	return int64(len(lm.present)) * lm.ChunkBytes
}

// ensure faults in every chunk overlapping [off, off+n), then fn.
func (lm *LazyMirror) ensure(off, n int64, fn func()) {
	if off+n <= lm.Base || off >= lm.Base+lm.total {
		fn()
		return
	}
	lo := maxI64(off-lm.Base, 0) / lm.ChunkBytes
	hi := (minI64(off+n, lm.Base+lm.total) - lm.Base - 1) / lm.ChunkBytes
	var missing []int64
	for c := lo; c <= hi; c++ {
		if !lm.present[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		fn()
		return
	}
	remaining := len(missing)
	for _, c := range missing {
		lm.Faults++
		lm.waiters[c] = append(lm.waiters[c], func() {
			remaining--
			if remaining == 0 {
				fn()
			}
		})
		lm.fetch(c)
	}
	// Readahead: prefetch the next chunk so sequential readers overlap
	// fetch latency with their local I/O.
	lm.fetch(hi + 1)
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Read implements Backend: demand-fetch then read locally.
func (lm *LazyMirror) Read(off, n int64, done func()) {
	lm.ensure(off, n, func() { lm.backend.Read(off, n, done) })
}

// Write implements Backend: writes land locally and mark overlapped
// chunks present (they are now newer than the remote copy).
func (lm *LazyMirror) Write(off, n int64, done func()) {
	if off+n > lm.Base && off < lm.Base+lm.total {
		lo := maxI64(off-lm.Base, 0) / lm.ChunkBytes
		hi := (minI64(off+n, lm.Base+lm.total) - lm.Base - 1) / lm.ChunkBytes
		for c := lo; c <= hi; c++ {
			lm.present[c] = true
		}
	}
	lm.backend.Write(off, n, done)
}
