package scenario

import (
	"strings"
	"testing"
)

const fedScenario = `{
  "name": "fed",
  "seed": 7,
  "run_for": "20m",
  "federation": {
    "facilities": 2,
    "tenants": 96,
    "workers": 1,
    "migration": true,
    "warmup": true
  },
  "assertions": [
    {"type": "all_completed"},
    {"type": "min_migrations", "value": 1},
    {"type": "max_wan_mb", "value": 100000}
  ]
}`

func parseFed(t *testing.T, data string) *File {
	t.Helper()
	f, err := Parse([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFederationScenarioRun(t *testing.T) {
	f := parseFed(t, fedScenario)
	res, c, err := RunWithCluster(f)
	if err != nil {
		t.Fatal(err)
	}
	if c != nil {
		t.Fatal("federation scenario handed back a cluster")
	}
	fr := res.Federation
	if fr == nil {
		t.Fatal("no federation report")
	}
	if fr.Completed != fr.Tenants {
		t.Fatalf("completed %d of %d", fr.Completed, fr.Tenants)
	}
	if fr.Migrations == 0 {
		t.Fatal("migration-enabled two-facility run migrated nothing")
	}
	if len(res.Checks) != 3 {
		t.Fatalf("checks = %d, want 3", len(res.Checks))
	}
	if !res.Pass {
		t.Fatalf("expected pass; render:\n%s", res.Render())
	}
	if !strings.Contains(res.Render(), "federation:") {
		t.Fatalf("render missing federation line:\n%s", res.Render())
	}
}

// TestFederationScenarioWorkerInvariant: the workers knob is pure
// wall-clock — the digest (and the whole marshaled result, which is
// what the suite's replay-digest invariant fingerprints) must not
// move.
func TestFederationScenarioWorkerInvariant(t *testing.T) {
	f := parseFed(t, fedScenario)
	base, err := Run(f)
	if err != nil {
		t.Fatal(err)
	}
	f2 := parseFed(t, fedScenario)
	f2.Federation.Workers = 3
	par, err := Run(f2)
	if err != nil {
		t.Fatal(err)
	}
	if base.Federation.Digest != par.Federation.Digest {
		t.Fatalf("workers changed the digest: %s vs %s",
			base.Federation.Digest, par.Federation.Digest)
	}
}

func TestFederationValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*File)
		want string
	}{
		{"unsafe latency", func(f *File) { f.Federation.WANLatency = "10ms" }, "below lookahead"},
		{"experiments", func(f *File) {
			f.Experiments = []Experiment{{Name: "x", Workload: "idle", Nodes: []Node{{Name: "x0"}}}}
		}, "no experiments"},
		{"pool", func(f *File) { f.Pool = 4 }, "no pool"},
		{"storage", func(f *File) { f.Storage = &Storage{Backend: "remote"} }, "no storage stanza"},
		{"foreign assertion", func(f *File) {
			f.Assertions = append(f.Assertions, Assertion{Type: "all_admitted"})
		}, "does not apply to a federation scenario"},
		{"migrations without sharding", func(f *File) {
			f.Federation.Facilities = 1
		}, "needs migration enabled over at least two facilities"},
		{"no tenants", func(f *File) { f.Federation.Tenants = 0 }, "tenants must be positive"},
	}
	for _, tc := range cases {
		f := parseFed(t, fedScenario)
		tc.mut(f)
		errs := Validate(f)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error containing %q in %v", tc.name, tc.want, errs)
		}
	}
}
