package xen

import (
	"testing"

	"emucheck/internal/sim"
)

func TestPreCopyConvergesWithQuietGuest(t *testing.T) {
	s, h := newHV(7)
	s.RunFor(sim.Second)
	var img *Image
	h.Save(SaveOptions{}, func(i *Image) { img = i })
	s.RunFor(sim.Minute)
	if img == nil {
		t.Fatal("incomplete")
	}
	// A quiet guest converges quickly: few rounds, tiny stop-copy.
	if img.Rounds > 2 {
		t.Fatalf("rounds = %d for an idle guest", img.Rounds)
	}
	if img.StopCopyPages > 2048 {
		t.Fatalf("stop-copy %d pages for an idle guest", img.StopCopyPages)
	}
	h.Resume(nil)
	s.RunFor(sim.Second)
}

func TestSaveResumeManyCycles(t *testing.T) {
	s, h := newHV(8)
	s.RunFor(sim.Second)
	for i := 0; i < 10; i++ {
		done := false
		if err := h.Save(SaveOptions{Incremental: i > 0}, func(*Image) { done = true }); err != nil {
			t.Fatal(err)
		}
		s.RunFor(20 * sim.Second)
		if !done {
			t.Fatalf("save %d incomplete", i)
		}
		if err := h.Resume(nil); err != nil {
			t.Fatal(err)
		}
		s.RunFor(sim.Second)
	}
	if h.Saves != 10 {
		t.Fatalf("saves = %d", h.Saves)
	}
	// Ten checkpoints leak at most ten sub-100 µs slices.
	if leak := h.K.Clock.LeakTotal(); leak > sim.Millisecond {
		t.Fatalf("cumulative leak %v", leak)
	}
}

func TestDowntimeScalesWithResidualDirt(t *testing.T) {
	downtime := func(churn bool) sim.Time {
		s, h := newHV(9)
		if churn {
			var loop func()
			loop = func() { h.K.Compute(30*sim.Millisecond, "churn", loop) }
			loop()
		}
		s.RunFor(sim.Second)
		var img *Image
		h.Save(SaveOptions{Incremental: true, SuspendAt: s.Now() + sim.Second}, func(i *Image) { img = i })
		s.RunFor(sim.Minute)
		if img == nil {
			t.Fatal("incomplete")
		}
		h.Resume(nil)
		s.RunFor(sim.Second)
		return img.Downtime
	}
	quiet := downtime(false)
	busy := downtime(true)
	if busy <= quiet {
		t.Fatalf("busy downtime %v not above quiet %v", busy, quiet)
	}
}

func TestClockStateInImage(t *testing.T) {
	s, h := newHV(10)
	s.RunFor(3 * sim.Second)
	var img *Image
	h.Save(SaveOptions{}, func(i *Image) { img = i })
	s.RunFor(sim.Minute)
	if img == nil || img.Clock == nil {
		t.Fatal("no clock in image")
	}
	// The serialized virtual time is the guest's time at suspension,
	// within the leak plus the pre-copy interval.
	if img.Clock.VirtualNow < 3*sim.Second {
		t.Fatalf("clock state %v predates the save", img.Clock.VirtualNow)
	}
	h.Resume(nil)
	s.RunFor(sim.Second)
}
