package emucheck

import (
	"fmt"

	"emucheck/internal/emulab"
	"emucheck/internal/metrics"
	"emucheck/internal/sched"
	"emucheck/internal/sim"
	"emucheck/internal/storage"
	"emucheck/internal/swap"
	"emucheck/internal/timetravel"
)

// Policy re-exports the scheduler's victim-selection policies.
type Policy = sched.Policy

// Preemption policies, re-exported.
const (
	FIFO      = sched.FIFO
	IdleFirst = sched.IdleFirst
	Priority  = sched.Priority
)

// Cluster is the shared facility hosting many experiments at once: one
// deterministic simulator, one testbed (hardware pool, control LAN,
// file server), and a preemptive swap scheduler that time-shares the
// pool by statefully swapping experiments in and out (§2, §5). Each
// submitted Scenario becomes a tenant Session with its own coordinator
// and swap manager; all of them contend for the same control-network
// file server, so swap costs are charged realistically.
//
// Everything stays bit-deterministic under one seed: tenants are kept
// in slices, scheduler decisions fire at well-defined instants, and all
// randomness flows from the cluster's simulator.
type Cluster struct {
	Seed  int64
	S     *sim.Simulator
	TB    *emulab.Testbed
	Sched *sched.Scheduler

	// Stateless switches parking to the classic Emulab swap-out that
	// destroys run-time state (re-admission reboots from scratch and
	// reruns Setup). It exists as the evaluation baseline against
	// stateful swapping; set it before submitting tenants.
	Stateless bool

	// Incremental switches parking to the dirty-delta pipeline: parks
	// upload only state dirtied since the tenant's last resident
	// checkpoint (committed to a per-node lineage), resumes replay base
	// + delta chain, and per-node uploads share the control-LAN pipe as
	// parallel streams. Preemption cost becomes proportional to dirtied
	// state. Set it before submitting tenants.
	Incremental bool

	// SwapStats accumulates delta/full byte counts across every
	// tenant's swap cycles (see swap.Manager.Stats for the keys).
	SwapStats *metrics.Counters

	// Chains is the facility-wide refcounted, content-addressed
	// checkpoint-chain store: branches forked from the same checkpoint
	// share their base and common deltas by reference, and releasing a
	// branch garbage-collects deltas no branch can reach.
	Chains *storage.ChainStore

	// NaiveBranchCopy switches Branch to the evaluation baseline: each
	// branch stages its own full unicast copy of the parent state (no
	// lineage sharing, no multicast) and parks under the cluster's
	// plain transfer mode. It exists so the shared-lineage fan-out can
	// be measured against per-branch full copies.
	NaiveBranchCopy bool

	tenants   []*Session
	byName    map[string]*Session
	nodeOwner map[string]string
}

// NewCluster creates a cluster over a hardware pool of the given size.
func NewCluster(pool int, seed int64, policy Policy) *Cluster {
	s := sim.New(seed)
	return &Cluster{
		Seed:      seed,
		S:         s,
		TB:        emulab.NewTestbed(s, pool),
		Sched:     sched.New(s, pool, policy),
		SwapStats: metrics.NewCounters(),
		Chains:    storage.NewChainStore(),
		byName:    make(map[string]*Session),
		nodeOwner: make(map[string]string),
	}
}

// swapOptions picks the tenant's park/resume transfer mode. Branch
// tenants restore clone-aware (their chains share a prefix with their
// siblings) unless the naive-copy baseline is selected.
func (c *Cluster) swapOptions(sess *Session) swap.Options {
	if sess != nil && sess.IsBranch() && !c.NaiveBranchCopy {
		return swap.BranchOptions()
	}
	if c.Incremental {
		return swap.IncrementalOptions()
	}
	return swap.DefaultOptions()
}

// parkCost estimates the bytes a stateful park of sess would move right
// now: per node, the memory state to checkpoint (pages dirtied since
// the last resident checkpoint under incremental swapping, the full
// resident image otherwise) plus the live current disk delta. The
// scheduler uses it to price victim selection.
func (c *Cluster) parkCost(sess *Session) int64 {
	if sess.Exp == nil || sess.Exp.Swap == nil {
		return 0
	}
	incremental := c.swapOptions(sess).Incremental
	var total int64
	for _, n := range sess.Exp.Swap.Nodes {
		if incremental && sess.Exp.Swap.Cycle > 0 {
			total += int64(n.HV.K.Dirty.EpochDirty()) * int64(n.HV.P.PageSize)
		} else {
			total += n.HV.K.MemoryImageBytes()
		}
		total += n.Vol.CurrentDeltaBytes(n.IsFree)
	}
	return total
}

// adopt registers a tenant's names; it is also used by the one-tenant
// NewSession path, which bypasses the scheduler.
func (c *Cluster) adopt(sess *Session) {
	c.tenants = append(c.tenants, sess)
	c.byName[sess.Scenario.Spec.Name] = sess
	for _, ns := range sess.Scenario.Spec.Nodes {
		c.nodeOwner[ns.Name] = sess.Scenario.Spec.Name
	}
}

// Submit queues a scenario for admission. The scheduler admits it when
// the pool has room — preempting running tenants by policy if needed —
// and the scenario's Setup runs on first admission. Node names must be
// unique across the cluster (they are control-network identities).
func (c *Cluster) Submit(sc Scenario, priority int) (*Session, error) {
	name := sc.Spec.Name
	if name == "" {
		return nil, fmt.Errorf("emucheck: scenario needs a name")
	}
	if old, dup := c.byName[name]; dup && old.State() != "done" {
		return nil, fmt.Errorf("emucheck: experiment %q already submitted", name)
	}
	for _, ns := range sc.Spec.Nodes {
		if owner, taken := c.nodeOwner[ns.Name]; taken {
			return nil, fmt.Errorf("emucheck: node name %q already used by experiment %q", ns.Name, owner)
		}
	}
	sess := &Session{
		Scenario: sc, Seed: c.Seed, Priority: priority,
		C: c, S: c.S, TB: c.TB,
		Tree: timetravel.NewTree(146 << 30),
	}
	job := &sched.Job{
		Name: name, Need: sc.Spec.NodesNeeded(), Priority: priority,
		Preemptible: sc.Spec.Swappable() || c.Stateless,
		Hooks: sched.Hooks{
			Start: func(done func()) { c.startTenant(sess, done) },
		},
	}
	// Only a fully swappable experiment can be parked statefully: with a
	// mixed spec the swap manager would save the swappable subset while
	// the rest kept running on released hardware. The stateless baseline
	// can always park (state is discarded anyway). Leaving the hooks nil
	// turns park attempts into clean scheduler errors.
	if job.Preemptible {
		job.Hooks.Park = func(done func()) { c.parkTenant(sess, done) }
		job.Hooks.Resume = func(done func()) { c.resumeTenant(sess, done) }
		if !c.Stateless {
			job.Hooks.ParkCost = func() int64 { return c.parkCost(sess) }
		}
	}
	sess.job = job
	if err := c.Sched.Submit(job); err != nil {
		return nil, err
	}
	c.adopt(sess)
	return sess, nil
}

// startTenant is the scheduler's first-admission hook: allocate, load
// images, boot, install the workload. Admission plumbing costs the
// paper's fixed eight seconds (§7.2).
func (c *Cluster) startTenant(sess *Session, done func()) {
	c.S.After(swap.NodeSetupTime, "cluster.provision", func() {
		exp, err := c.TB.SwapIn(sess.Scenario.Spec)
		if err != nil {
			panic("emucheck: admit " + sess.Scenario.Spec.Name + ": " + err.Error())
		}
		sess.Exp = exp
		if exp.Swap != nil {
			exp.Swap.Stats = c.SwapStats
			exp.Swap.Chains = c.Chains
		}
		if sess.Scenario.Setup != nil {
			sess.Scenario.Setup(sess)
		}
		done()
	})
}

// parkTenant swaps a tenant out to free its hardware. Stateful parking
// preserves run-time state on the file server; the stateless baseline
// discards it (keeping only the definition).
func (c *Cluster) parkTenant(sess *Session, done func()) {
	if c.Stateless {
		c.TB.SwapOutStateless(sess.Exp)
		sess.Exp = nil
		c.S.After(0, "cluster.stateless-out", done)
		return
	}
	err := sess.Exp.Swap.SwapOut(c.swapOptions(sess), func([]*swap.OutReport) {
		c.TB.ReleaseHardware(sess.Exp)
		done()
	})
	if err != nil {
		panic("emucheck: park " + sess.Scenario.Spec.Name + ": " + err.Error())
	}
}

// resumeTenant is the re-admission hook. Stateful: re-acquire hardware
// and swap the preserved state back in (the interruption stays hidden
// behind the temporal firewall). Stateless: reboot from the golden
// image — node setup plus a Frisbee fetch — and rerun Setup, losing
// all prior progress.
func (c *Cluster) resumeTenant(sess *Session, done func()) {
	if c.Stateless {
		c.S.After(swap.NodeSetupTime+swap.GoldenFetchTime, "cluster.stateless-in", func() {
			exp, err := c.TB.SwapInByName(sess.Scenario.Spec.Name)
			if err != nil {
				panic("emucheck: readmit " + sess.Scenario.Spec.Name + ": " + err.Error())
			}
			sess.Exp = exp
			if exp.Swap != nil {
				exp.Swap.Stats = c.SwapStats
			}
			if sess.Scenario.Setup != nil {
				sess.Scenario.Setup(sess)
			}
			done()
		})
		return
	}
	if err := c.TB.AcquireHardware(sess.Exp); err != nil {
		panic("emucheck: readmit " + sess.Scenario.Spec.Name + ": " + err.Error())
	}
	err := sess.Exp.Swap.SwapIn(c.swapOptions(sess), func([]*swap.InReport) { done() })
	if err != nil {
		panic("emucheck: readmit " + sess.Scenario.Spec.Name + ": " + err.Error())
	}
}

// Park voluntarily swaps a running tenant out (scenario "swap_out"); it
// holds no hardware until Unpark re-queues it.
func (c *Cluster) Park(name string) error { return c.Sched.Park(name) }

// Unpark re-queues a parked tenant for admission ("swap_in").
func (c *Cluster) Unpark(name string) error { return c.Sched.Unpark(name) }

// Touch records tenant activity — the signal the IdleFirst policy
// preempts on the absence of.
func (c *Cluster) Touch(name string) { c.Sched.Touch(name) }

// Finish retires a tenant: its hardware returns to the pool and its
// definition is retained on the testbed.
func (c *Cluster) Finish(name string) error {
	sess, ok := c.byName[name]
	if !ok {
		return fmt.Errorf("emucheck: no experiment %q", name)
	}
	if sess.job != nil {
		switch sess.job.State() {
		case sched.Running, sched.Parked, sched.Queued:
		default:
			return fmt.Errorf("emucheck: %q is %s, cannot finish", name, sess.State())
		}
	} else if sess.done {
		return fmt.Errorf("emucheck: %q is already finished", name)
	}
	// Release the testbed hardware before telling the scheduler: the
	// scheduler re-admits the queue head synchronously, and that tenant
	// may need these very nodes.
	freed := 0
	if sess.Exp != nil {
		if sess.Exp.Swap != nil {
			// Prune the tenant's checkpoint chains: its references drop,
			// and the store garbage-collects deltas no surviving branch
			// shares. A parent's release leaves forked prefixes alive for
			// its branches; the last release reclaims them.
			sess.Exp.Swap.ReleaseLineages()
		}
		freed = sess.Exp.Allocated()
		c.TB.SwapOutStateless(sess.Exp)
		sess.Exp = nil
	}
	// Free the tenant's node names so its retained definition (or
	// another experiment reusing them) can be submitted again; the
	// session stays registered for state queries and reporting until a
	// resubmission replaces it.
	for _, ns := range sess.Scenario.Spec.Nodes {
		delete(c.nodeOwner, ns.Name)
	}
	if sess.job == nil {
		// Standalone sessions were charged via Reserve; balance the
		// scheduler's ledger too.
		sess.done = true
		c.Sched.Release(freed)
		return nil
	}
	return c.Sched.Finish(name)
}

// Tenant returns a submitted experiment's session by name.
func (c *Cluster) Tenant(name string) *Session { return c.byName[name] }

// Genealogy reports a tenant's fork ancestry, root first. A tenant
// that is not a branch is its own one-element genealogy.
func (c *Cluster) Genealogy(name string) []string {
	var path []string
	for cur := name; cur != ""; {
		path = append([]string{cur}, path...)
		s := c.byName[cur]
		if s == nil {
			break
		}
		cur = s.parentName
	}
	return path
}

// Tenants returns every tenant in submit order.
func (c *Cluster) Tenants() []*Session { return c.tenants }

// RunFor advances the cluster by d of simulated real time.
func (c *Cluster) RunFor(d sim.Time) { c.S.RunFor(d) }

// RunUntilIdle drains every pending event.
func (c *Cluster) RunUntilIdle() { c.S.Run() }

// Now reports simulated real time.
func (c *Cluster) Now() sim.Time { return c.S.Now() }

// Utilization reports the time-averaged fraction of the pool allocated.
func (c *Cluster) Utilization() float64 { return c.Sched.Utilization() }
