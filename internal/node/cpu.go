// Package node models the physical machines of the testbed: a CPU whose
// capacity is shared between the guest domain and privileged-domain
// (dom0) activity, and disks with a seek/rotation/transfer service model.
//
// The CPU model is what makes the paper's Figure 5 reproducible: even
// trivial dom0 operations (an `ls`, a checksum, an `xm list`) measurably
// perturb a CPU-bound guest job, and the background phases of a live
// checkpoint perturb it by up to ~27 ms. Interference is expressed as
// piecewise-constant availability: dom0 work claims a share of the CPU
// over an interval, and guest work progresses at the residual rate.
package node

import (
	"sort"

	"emucheck/internal/sim"
)

// stealInterval is a half-open interval [From, To) during which dom0
// work consumes Share (0..1] of the CPU.
type stealInterval struct {
	From, To sim.Time
	Share    float64
}

// CPU models one hyperthreaded Xeon shared by the guest and dom0.
type CPU struct {
	s      *sim.Simulator
	steals []stealInterval // kept sorted by From

	// StolenTotal accumulates CPU time consumed by dom0, for tests.
	StolenTotal sim.Time
}

// NewCPU creates an unloaded CPU.
func NewCPU(s *sim.Simulator) *CPU { return &CPU{s: s} }

// Steal reserves share of the CPU for dom0 work during [from, from+dur).
// Shares from overlapping reservations add up and are capped at 1 (the
// guest is fully stalled).
func (c *CPU) Steal(from, dur sim.Time, share float64) {
	if dur <= 0 || share <= 0 {
		return
	}
	if share > 1 {
		share = 1
	}
	c.steals = append(c.steals, stealInterval{From: from, To: from + dur, Share: share})
	sort.Slice(c.steals, func(i, j int) bool { return c.steals[i].From < c.steals[j].From })
	c.StolenTotal += sim.Time(float64(dur) * share)
}

// gc drops intervals that ended before t.
func (c *CPU) gc(t sim.Time) {
	keep := c.steals[:0]
	for _, iv := range c.steals {
		if iv.To > t {
			keep = append(keep, iv)
		}
	}
	c.steals = keep
}

// availability reports the guest-visible CPU share at time t.
func (c *CPU) availability(t sim.Time) float64 {
	stolen := 0.0
	for _, iv := range c.steals {
		if iv.From <= t && t < iv.To {
			stolen += iv.Share
		}
	}
	if stolen >= 1 {
		return 0
	}
	return 1 - stolen
}

// nextBoundary reports the next interval edge strictly after t, or Never.
func (c *CPU) nextBoundary(t sim.Time) sim.Time {
	next := sim.Never
	for _, iv := range c.steals {
		if iv.From > t && iv.From < next {
			next = iv.From
		}
		if iv.To > t && iv.To < next {
			next = iv.To
		}
	}
	return next
}

// FinishTime computes when `work` nanoseconds of guest CPU work started
// at `start` will complete, given current and future dom0 reservations.
func (c *CPU) FinishTime(start, work sim.Time) sim.Time {
	c.gc(start)
	t := start
	remaining := float64(work)
	for remaining > 1e-9 {
		avail := c.availability(t)
		nb := c.nextBoundary(t)
		if nb == sim.Never {
			if avail <= 0 {
				// Fully stalled with no future boundary: cannot finish.
				// Treat as stalled until the reservation set changes;
				// callers re-plan via Progress/FinishTime on thaw.
				return sim.Never
			}
			return t + sim.Time(remaining/avail+0.5)
		}
		span := float64(nb - t)
		done := span * avail
		if done >= remaining {
			return t + sim.Time(remaining/avail+0.5)
		}
		remaining -= done
		t = nb
	}
	return t
}

// Progress reports how much guest work completed during [start, end).
func (c *CPU) Progress(start, end sim.Time) sim.Time {
	if end <= start {
		return 0
	}
	var done float64
	t := start
	for t < end {
		avail := c.availability(t)
		nb := c.nextBoundary(t)
		if nb > end {
			nb = end
		}
		done += float64(nb-t) * avail
		t = nb
	}
	return sim.Time(done + 0.5)
}

// PendingSteals reports the number of live reservations (for tests).
func (c *CPU) PendingSteals() int {
	c.gc(c.s.Now())
	return len(c.steals)
}
