package dummynet

import (
	"testing"
	"testing/quick"

	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

type sink struct {
	times []sim.Time
	pkts  []*simnet.Packet
	s     *sim.Simulator
}

func (k *sink) Accept(p *simnet.Packet) {
	k.times = append(k.times, k.s.Now())
	k.pkts = append(k.pkts, p)
}

func TestPipeDelayOnly(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	p := NewPipe(s, "p", 0, 10*sim.Millisecond, k)
	p.Accept(&simnet.Packet{Size: 1500})
	s.Run()
	if len(k.times) != 1 || k.times[0] != 10*sim.Millisecond {
		t.Fatalf("emit at %v", k.times)
	}
}

func TestPipeBandwidthStage(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	// 100 Mbps, no delay: 1250B takes 100us.
	p := NewPipe(s, "p", 100*simnet.Mbps, 0, k)
	p.Accept(&simnet.Packet{Size: 1250})
	p.Accept(&simnet.Packet{Size: 1250})
	s.Run()
	if len(k.times) != 2 {
		t.Fatalf("emitted %d", len(k.times))
	}
	if k.times[0] != 100*sim.Microsecond || k.times[1] != 200*sim.Microsecond {
		t.Fatalf("times %v", k.times)
	}
}

func TestPipeBandwidthPlusDelay(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	p := NewPipe(s, "p", 100*simnet.Mbps, 5*sim.Millisecond, k)
	p.Accept(&simnet.Packet{Size: 1250})
	s.Run()
	want := 100*sim.Microsecond + 5*sim.Millisecond
	if k.times[0] != want {
		t.Fatalf("emit %v, want %v", k.times[0], want)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	p := NewPipe(s, "p", 1*simnet.Mbps, 0, k)
	p.Slots = 3
	for i := 0; i < 10; i++ {
		p.Accept(&simnet.Packet{Size: 1500})
	}
	if p.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", p.Dropped)
	}
	s.Run()
	if len(k.pkts) != 3 {
		t.Fatalf("emitted %d", len(k.pkts))
	}
}

func TestPLRDrops(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	p := NewPipe(s, "p", 0, 0, k)
	p.PLR = 1
	for i := 0; i < 5; i++ {
		p.Accept(&simnet.Packet{Size: 100})
	}
	s.Run()
	if p.PLRDrops != 5 || len(k.pkts) != 0 {
		t.Fatalf("plr drops = %d, emitted = %d", p.PLRDrops, len(k.pkts))
	}
}

func TestFreezeHoldsPackets(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	p := NewPipe(s, "p", 0, 20*sim.Millisecond, k)
	p.Accept(&simnet.Packet{Size: 100})
	s.RunFor(5 * sim.Millisecond)
	p.Freeze()
	if p.InFlight() != 1 {
		t.Fatalf("in flight = %d", p.InFlight())
	}
	// Let "real" time pass: a 50 ms checkpoint.
	s.RunFor(50 * sim.Millisecond)
	if len(k.pkts) != 0 {
		t.Fatal("packet escaped during freeze")
	}
	p.Thaw()
	s.Run()
	// Remaining delay was 15 ms; it should emit 15 ms after the thaw
	// (at 5+50+15 = 70 ms), i.e. the packet observed exactly 20 ms of
	// "virtual" link delay.
	if k.times[0] != 70*sim.Millisecond {
		t.Fatalf("emit at %v, want 70ms", k.times[0])
	}
}

func TestFreezeMidTransmissionResumesExactly(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	// 1250B at 10 Mbps = 1 ms tx time.
	p := NewPipe(s, "p", 10*simnet.Mbps, 0, k)
	p.Accept(&simnet.Packet{Size: 1250})
	s.RunFor(400 * sim.Microsecond) // 600 us of tx remain
	p.Freeze()
	s.RunFor(100 * sim.Millisecond)
	p.Thaw()
	s.Run()
	want := 400*sim.Microsecond + 100*sim.Millisecond + 600*sim.Microsecond
	if k.times[0] != want {
		t.Fatalf("emit at %v, want %v", k.times[0], want)
	}
}

func TestAcceptWhileFrozenQueues(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	p := NewPipe(s, "p", 100*simnet.Mbps, 0, k)
	p.Freeze()
	p.Accept(&simnet.Packet{Size: 1250})
	s.RunFor(sim.Millisecond)
	if len(k.pkts) != 0 {
		t.Fatal("frozen pipe emitted")
	}
	p.Thaw()
	s.Run()
	if len(k.pkts) != 1 {
		t.Fatal("queued packet lost across freeze")
	}
}

func TestSerializeRequiresFrozen(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "p", 0, 0, nil)
	if _, err := p.Serialize(); err == nil {
		t.Fatal("serialize of running pipe succeeded")
	}
}

func TestSerializeRestoreRoundTrip(t *testing.T) {
	s := sim.New(1)
	k := &sink{s: s}
	p := NewPipe(s, "p", 10*simnet.Mbps, 30*sim.Millisecond, k)
	// Fill: two in delay line, one transmitting, two queued.
	for i := 0; i < 5; i++ {
		p.Accept(&simnet.Packet{Size: 1250, Dst: "b"}) // 1 ms tx each
	}
	s.RunFor(2500 * sim.Microsecond) // 2 fully transmitted, 3rd halfway
	p.Freeze()
	st, err := p.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.DelayLine) != 2 {
		t.Fatalf("delay line captured %d, want 2", len(st.DelayLine))
	}
	if len(st.Queue) != 3 {
		t.Fatalf("queue captured %d, want 3", len(st.Queue))
	}
	if st.HeadTxLeft != 500*sim.Microsecond {
		t.Fatalf("head tx left %v, want 500us", st.HeadTxLeft)
	}
	if st.Bytes() <= 0 {
		t.Fatal("state size")
	}

	// Restore into a fresh pipe on a fresh simulator ("swap-in on a
	// different machine") and verify all 5 packets eventually emerge.
	s2 := sim.New(2)
	k2 := &sink{s: s2}
	p2 := NewPipe(s2, "p", 10*simnet.Mbps, 30*sim.Millisecond, k2)
	p2.Restore(st)
	p2.Thaw()
	s2.Run()
	if len(k2.pkts) != 5 {
		t.Fatalf("restored pipe emitted %d, want 5", len(k2.pkts))
	}
	// First delay-line packet had 30-2.5+1 = 28.5ms remaining... verify
	// order preserved and stats carried over.
	if p2.Enqueued != 5 {
		t.Fatalf("stats not restored: %d", p2.Enqueued)
	}
	for i := 1; i < len(k2.times); i++ {
		if k2.times[i] < k2.times[i-1] {
			t.Fatal("restored emission out of order")
		}
	}
}

func TestDoubleFreezeAndThawIdempotent(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "p", 0, sim.Millisecond, nil)
	p.Freeze()
	p.Freeze()
	p.Thaw()
	p.Thaw()
	if p.Frozen() {
		t.Fatal("still frozen")
	}
}

func TestDelayNodeDuplex(t *testing.T) {
	s := sim.New(1)
	d := NewDelayNode(s, "d0", 100*simnet.Mbps, 10*sim.Millisecond)
	ka := &sink{s: s}
	kb := &sink{s: s}
	d.AttachForward(kb)
	d.AttachReverse(ka)
	d.Forward.Accept(&simnet.Packet{Size: 1250})
	d.Reverse.Accept(&simnet.Packet{Size: 1250})
	s.Run()
	if len(ka.pkts) != 1 || len(kb.pkts) != 1 {
		t.Fatalf("delivered fwd=%d rev=%d", len(kb.pkts), len(ka.pkts))
	}
	want := 100*sim.Microsecond + 10*sim.Millisecond
	if ka.times[0] != want || kb.times[0] != want {
		t.Fatalf("times %v %v, want %v", ka.times[0], kb.times[0], want)
	}
}

func TestDelayNodeCheckpointCapturesBandwidthDelayProduct(t *testing.T) {
	s := sim.New(1)
	// 1 Gbps x 20 ms: BDP = 2.5 MB ~ 1666 packets of 1500B. Send a
	// window of 100 packets and freeze mid-flight.
	d := NewDelayNode(s, "d0", simnet.Gbps, 20*sim.Millisecond)
	d.Forward.Slots = 200 // deep queue so the whole burst is admitted
	k := &sink{s: s}
	d.AttachForward(k)
	for i := 0; i < 100; i++ {
		d.Forward.Accept(&simnet.Packet{Size: 1500})
	}
	s.RunFor(10 * sim.Millisecond) // all transmitted (1.2ms), none emitted
	d.Freeze()
	if got := d.InFlight(); got != 100 {
		t.Fatalf("captured %d in flight, want 100", got)
	}
	st, err := d.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Forward.DelayLine) != 100 {
		t.Fatalf("serialized %d", len(st.Forward.DelayLine))
	}
	if st.Bytes() < 100*1500 {
		t.Fatalf("state bytes %d too small", st.Bytes())
	}
	d.Thaw()
	s.Run()
	if len(k.pkts) != 100 {
		t.Fatalf("emitted %d after thaw", len(k.pkts))
	}
}

func TestDelayNodeRestore(t *testing.T) {
	s := sim.New(1)
	d := NewDelayNode(s, "d0", 100*simnet.Mbps, 5*sim.Millisecond)
	k := &sink{s: s}
	d.AttachForward(k)
	d.Forward.Accept(&simnet.Packet{Size: 1250})
	s.RunFor(2 * sim.Millisecond)
	d.Freeze()
	st, err := d.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDelayNode(s, "d0", 100*simnet.Mbps, 5*sim.Millisecond)
	k2 := &sink{s: s}
	d2.AttachForward(k2)
	d2.Restore(st)
	d2.Thaw()
	s.Run()
	if len(k2.pkts) != 1 {
		t.Fatal("restored node lost packet")
	}
}

// Property: under any load pattern, enqueued = emitted + still-inside +
// drops, and a freeze/thaw cycle never changes the invariant.
func TestPropertyPacketConservation(t *testing.T) {
	f := func(sizes []uint16, freezePoint uint8) bool {
		s := sim.New(5)
		k := &sink{s: s}
		p := NewPipe(s, "p", 50*simnet.Mbps, 3*sim.Millisecond, k)
		p.Slots = 10
		for _, raw := range sizes {
			size := int(raw%1500) + 64
			p.Accept(&simnet.Packet{Size: size})
		}
		s.RunFor(sim.Time(freezePoint) * 100 * sim.Microsecond)
		p.Freeze()
		s.RunFor(30 * sim.Millisecond)
		p.Thaw()
		s.Run()
		inside := uint64(p.QueueLen() + p.InFlight())
		return p.Enqueued == uint64(len(k.pkts))+inside && inside == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: total pipe traversal time of every packet (ignoring frozen
// interval) equals bandwidth-stage wait plus the configured delay;
// i.e. shaping is work-conserving and delay-accurate across checkpoints.
func TestPropertyDelayAccurateAcrossFreeze(t *testing.T) {
	f := func(nPkts uint8, freezeMs uint8) bool {
		n := int(nPkts%20) + 1
		s := sim.New(6)
		k := &sink{s: s}
		p := NewPipe(s, "p", 0, 10*sim.Millisecond, k) // pure delay
		for i := 0; i < n; i++ {
			p.Accept(&simnet.Packet{Size: 100})
		}
		s.RunFor(4 * sim.Millisecond)
		p.Freeze()
		frozenFor := sim.Time(freezeMs) * sim.Millisecond
		s.RunFor(frozenFor)
		p.Thaw()
		s.Run()
		if len(k.times) != n {
			return false
		}
		for _, ti := range k.times {
			// Observed = 10 ms + frozen interval; virtual = 10 ms.
			if ti-frozenFor != 10*sim.Millisecond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
