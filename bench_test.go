// Benchmarks that regenerate the paper's evaluation (§7): one benchmark
// per figure and table. Each reports the figure's headline quantities as
// custom benchmark metrics, so `go test -bench=. -benchmem` prints the
// reproduction alongside runtime cost. The underlying experiments are
// deterministic; results are cached across b.N iterations so Go's
// benchmark calibration does not re-run multi-minute simulations.
package emucheck_test

import (
	"runtime"
	"sync"
	"testing"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/evalrun"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// demoSpecForBench mirrors the 2-node demo experiment used by the
// in-package tests. (This file lives in the external test package so
// evalrun — which imports emucheck for the timeshare benchmark — can be
// benchmarked without an import cycle.)
func demoSpecForBench() emulab.Spec {
	return emulab.Spec{
		Name: "demo",
		Nodes: []emulab.NodeSpec{
			{Name: "a", Swappable: true},
			{Name: "b", Swappable: true},
		},
		Links: []emulab.LinkSpec{{
			A: "a", B: "b",
			Bandwidth: 100 * simnet.Mbps,
			Delay:     5 * sim.Millisecond,
		}},
	}
}

// Reduced-size workloads keep the full bench suite in CI territory while
// preserving every claim under test; benchrunner runs paper-scale.
const benchSeed = 1

var (
	fig4Once sync.Once
	fig4Res  *evalrun.Fig4Result
	fig5Once sync.Once
	fig5Res  *evalrun.Fig5Result
	fig6Once sync.Once
	fig6Res  *evalrun.Fig6Result
	fig7Once sync.Once
	fig7Res  *evalrun.Fig7Result
	fig8Once sync.Once
	fig8Res  *evalrun.Fig8Result
	fig9Once sync.Once
	fig9Res  *evalrun.Fig9Result
	swapOnce sync.Once
	swapRes  *evalrun.SwapTableResult
	fbOnce   sync.Once
	fbRes    *evalrun.FreeBlockResult
	syncOnce sync.Once
	syncRes  *evalrun.SyncResult
	domOnce  sync.Once
	domRes   *evalrun.Dom0JobsResult
)

// BenchmarkFig4SleepLoop regenerates Figure 4: the usleep(10 ms) loop
// under 5 s-periodic transparent checkpoints.
func BenchmarkFig4SleepLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig4Once.Do(func() { fig4Res = evalrun.Fig4(benchSeed, 3000) })
	}
	b.ReportMetric(fig4Res.MeanMs, "ms/iter")
	b.ReportMetric(fig4Res.FracWithin*100, "%within28us")
	b.ReportMetric(fig4Res.CkptMaxErr.Micros(), "us-worst-ckpt-err")
	if fig4Res.CkptMaxErr > 150*sim.Microsecond {
		b.Fatalf("transparency broken: worst error %v", fig4Res.CkptMaxErr)
	}
}

// BenchmarkFig5CPULoop regenerates Figure 5: the 236.6 ms CPU job under
// periodic checkpoints, bounded by residual dom0 interference.
func BenchmarkFig5CPULoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig5Once.Do(func() { fig5Res = evalrun.Fig5(benchSeed, 300) })
	}
	b.ReportMetric(fig5Res.MeanMs, "ms/iter")
	b.ReportMetric(fig5Res.MaxOverMs, "ms-worst-over")
	if fig5Res.MaxOverMs > 27 {
		b.Fatalf("interference above the paper's 27 ms bound: %.1f ms", fig5Res.MaxOverMs)
	}
}

// BenchmarkFig6Iperf regenerates Figure 6: a 1 Gbps iperf stream across
// four checkpoints — no retransmissions, gaps bounded by clock sync.
func BenchmarkFig6Iperf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig6Once.Do(func() { fig6Res = evalrun.Fig6(benchSeed) })
	}
	b.ReportMetric(fig6Res.MeanMBps, "MB/s")
	b.ReportMetric(fig6Res.MedianGapUs, "us-interpkt")
	if len(fig6Res.CkptGapsUs) > 0 {
		b.ReportMetric(fig6Res.CkptGapsUs[0], "us-first-ckpt-gap")
	}
	if fig6Res.Retransmits != 0 || fig6Res.Timeouts != 0 || fig6Res.DupData != 0 {
		b.Fatalf("checkpoint perturbed TCP: rtx=%d to=%d dup=%d",
			fig6Res.Retransmits, fig6Res.Timeouts, fig6Res.DupData)
	}
}

// BenchmarkFig7BitTorrent regenerates Figure 7: the 4-node swarm with a
// 100 s checkpoint storm; the throughput center line must not move.
func BenchmarkFig7BitTorrent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig7Once.Do(func() { fig7Res = evalrun.Fig7(benchSeed, 512) })
	}
	b.ReportMetric(fig7Res.CenterBefore, "MB/s-before")
	b.ReportMetric(fig7Res.CenterDuring, "MB/s-during")
	b.ReportMetric(fig7Res.CenterAfter, "MB/s-after")
	lo, hi := fig7Res.CenterBefore*0.85, fig7Res.CenterBefore*1.15
	if fig7Res.CenterDuring < lo || fig7Res.CenterDuring > hi {
		b.Fatalf("center line moved: %.2f -> %.2f MB/s", fig7Res.CenterBefore, fig7Res.CenterDuring)
	}
}

// BenchmarkFig8Bonnie regenerates Figure 8: Bonnie++ over Base,
// Branch-Orig and Branch storage.
func BenchmarkFig8Bonnie(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig8Once.Do(func() { fig8Res = evalrun.Fig8(benchSeed, 256) })
	}
	b.ReportMetric(fig8Res.FreshWriteOverheadPct, "%fresh-overhead")
	b.ReportMetric(fig8Res.AgedWriteOverheadPct, "%aged-overhead")
	b.ReportMetric(fig8Res.OrigWriteSlowdownPct, "%orig-slowdown")
	if fig8Res.OrigWriteSlowdownPct < 50 {
		b.Fatalf("read-before-write penalty missing: %.0f%%", fig8Res.OrigWriteSlowdownPct)
	}
}

// BenchmarkFig9Background regenerates Figure 9: background transfer
// interference on a disk-bound workload.
func BenchmarkFig9Background(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig9Once.Do(func() { fig9Res = evalrun.Fig9(benchSeed, 512) })
	}
	b.ReportMetric(fig9Res.EagerOverheadPct, "%eager-exec-overhead")
	b.ReportMetric(fig9Res.LazyOverheadPct, "%lazy-exec-overhead")
	b.ReportMetric(fig9Res.LazyThroughputDropPct, "%lazy-tput-drop")
	if fig9Res.LazyOverheadPct < fig9Res.EagerOverheadPct {
		b.Fatal("lazy copy-in should cost more than eager pre-copy")
	}
}

// BenchmarkSwapCycles regenerates the §7.2 swap table: four consecutive
// stateful swap cycles, lazy vs eager, plus the disk-loaded slowdown.
func BenchmarkSwapCycles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		swapOnce.Do(func() { swapRes = evalrun.SwapTable(benchSeed) })
	}
	last := swapRes.Rows[len(swapRes.Rows)-1]
	b.ReportMetric(last.SwapOut.Seconds(), "s-swapout-c4")
	b.ReportMetric(last.SwapInLazy.Seconds(), "s-swapin-lazy-c4")
	b.ReportMetric(last.SwapInEager.Seconds(), "s-swapin-eager-c4")
	b.ReportMetric(swapRes.DiskLoadedOutPct, "%busy-slowdown")
	if last.SwapInEager < 2*last.SwapInLazy {
		b.Fatalf("lazy optimization ineffective by cycle 4: eager %.0fs vs lazy %.0fs",
			last.SwapInEager.Seconds(), last.SwapInLazy.Seconds())
	}
}

// BenchmarkFreeBlockElimination regenerates the §5.1 make/make-clean
// delta-shrink experiment (490 MB -> 36 MB in the paper).
func BenchmarkFreeBlockElimination(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fbOnce.Do(func() { fbRes = evalrun.FreeBlockTable(benchSeed) })
	}
	b.ReportMetric(float64(fbRes.RawMB), "MB-raw-delta")
	b.ReportMetric(float64(fbRes.LiveMB), "MB-live-delta")
	if fbRes.LiveMB*4 > fbRes.RawMB {
		b.Fatalf("elimination weak: %d MB -> %d MB", fbRes.RawMB, fbRes.LiveMB)
	}
}

// BenchmarkSyncSkew regenerates the §4.3 synchronization comparison.
func BenchmarkSyncSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		syncOnce.Do(func() { syncRes = evalrun.SyncTable(benchSeed) })
	}
	b.ReportMetric(syncRes.ScheduledSkew.Micros(), "us-scheduled-skew")
	b.ReportMetric(syncRes.EventSkew.Micros(), "us-event-skew")
	if syncRes.EventSkew <= syncRes.ScheduledSkew {
		b.Fatal("scheduled checkpoints should beat event-driven ones")
	}
}

// BenchmarkDom0Jobs regenerates the §7.1 dom0-interference calibration.
func BenchmarkDom0Jobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		domOnce.Do(func() { domRes = evalrun.Dom0Jobs(benchSeed) })
	}
	b.ReportMetric(domRes.ExtraMs["ls /"], "ms-ls")
	b.ReportMetric(domRes.ExtraMs["sum vmlinux"], "ms-sum")
	b.ReportMetric(domRes.ExtraMs["xm list"], "ms-xmlist")
}

var (
	ablOnce sync.Once
	ablRes  *evalrun.AblationResult
)

// BenchmarkAblationDelayNodeCapture compares checkpointing with and
// without the §4.4 delay-node capture: without it, the bandwidth-delay
// product of the link lands in endpoint replay logs instead of the
// network core.
func BenchmarkAblationDelayNodeCapture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablOnce.Do(func() { ablRes = evalrun.AblationDelayNode(benchSeed) })
	}
	b.ReportMetric(float64(ablRes.CapturedInCore), "pkts-in-core")
	b.ReportMetric(float64(ablRes.EndpointLogWith), "pkts-endpoint-with")
	b.ReportMetric(float64(ablRes.EndpointLogWithout), "pkts-endpoint-without")
	if ablRes.EndpointLogWithout <= ablRes.EndpointLogWith {
		b.Fatal("ablation shows no effect: delay-node capture not doing its job")
	}
}

var (
	tsOnce sync.Once
	tsRes  *evalrun.TimeshareResult
)

// BenchmarkTimeshare regenerates the multi-tenancy table comparing
// incremental (dirty-delta lineage), full-copy stateful, and stateless
// swapping on an oversubscribed pool. The incremental pipeline must
// move strictly fewer bytes and finish the 3-tenant scenario in less
// simulated time than full copies.
func BenchmarkTimeshare(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// The default 900-tick workload forces repeat preemptions per
		// tenant; shorter targets park each tenant only once, and a
		// first swap-out is always a full save (no base on the server),
		// which would make the two stateful modes indistinguishable.
		tsOnce.Do(func() { tsRes = evalrun.Timeshare(benchSeed, 0) })
	}
	b.ReportMetric(tsRes.StatefulIncr.MovedMB, "MB-incremental")
	b.ReportMetric(tsRes.Stateful.MovedMB, "MB-fullcopy")
	b.ReportMetric(tsRes.StatefulIncr.AllDoneS, "s-done-incremental")
	b.ReportMetric(tsRes.Stateful.AllDoneS, "s-done-fullcopy")
	b.ReportMetric(tsRes.StatefulIncr.PreemptedMB, "MB-preempted-incremental")
	if tsRes.StatefulIncr.MovedMB >= tsRes.Stateful.MovedMB {
		b.Fatalf("incremental swap moved %.0f MB, full-copy %.0f MB",
			tsRes.StatefulIncr.MovedMB, tsRes.Stateful.MovedMB)
	}
	if tsRes.StatefulIncr.AllDoneS <= 0 || tsRes.StatefulIncr.AllDoneS >= tsRes.Stateful.AllDoneS {
		b.Fatalf("incremental finished at %.0f s, full-copy at %.0f s",
			tsRes.StatefulIncr.AllDoneS, tsRes.Stateful.AllDoneS)
	}
}

var (
	brOnce sync.Once
	brRes  *evalrun.BranchResult
)

// BenchmarkBranch regenerates the branch fan-out table: the same 4-way
// fork of a checkpointed parent staged via the refcounted shared
// lineage (one multicast pass, clone-aware restore) versus naive
// per-branch full copies. Sharing must move strictly fewer control-LAN
// bytes and have the whole frontier in service strictly sooner.
func BenchmarkBranch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		brOnce.Do(func() { brRes = evalrun.BranchTable(benchSeed, 4) })
	}
	b.ReportMetric(brRes.Shared.MovedMB, "MB-shared")
	b.ReportMetric(brRes.Naive.MovedMB, "MB-naive")
	b.ReportMetric(brRes.Shared.AllRunningS, "s-frontier-shared")
	b.ReportMetric(brRes.Naive.AllRunningS, "s-frontier-naive")
	b.ReportMetric(brRes.Shared.MulticastSavedMB, "MB-mcast-saved")
	if brRes.Shared.AllRunningS <= 0 || brRes.Naive.AllRunningS <= 0 {
		b.Fatalf("fan-out frontier never fully in service: shared %.0f s, naive %.0f s",
			brRes.Shared.AllRunningS, brRes.Naive.AllRunningS)
	}
	if brRes.Shared.MovedMB >= brRes.Naive.MovedMB {
		b.Fatalf("shared fan-out moved %.0f MB, naive %.0f MB — no byte savings",
			brRes.Shared.MovedMB, brRes.Naive.MovedMB)
	}
	if brRes.Shared.AllRunningS >= brRes.Naive.AllRunningS {
		b.Fatalf("shared frontier live at %.0f s, naive at %.0f s — no wall-clock win",
			brRes.Shared.AllRunningS, brRes.Naive.AllRunningS)
	}
}

var (
	recOnce sync.Once
	recRes  *evalrun.RecoveryResult
)

// BenchmarkRecovery regenerates the crash-recovery table: a two-node
// tenant fail-stopped mid-run, revived from its last committed
// checkpoint epoch (across epoch periods) versus restarted from
// scratch. At the default epoch period, checkpoint recovery must
// strictly beat restart on both MTTR (time back to pre-crash progress)
// and lost work — the acceptance bar for making checkpoints durable.
func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		recOnce.Do(func() { recRes = evalrun.Recovery(benchSeed, false) })
	}
	rec := recRes.Row("recover@15s")
	rst := recRes.Row("restart")
	if rec == nil || rst == nil {
		b.Fatalf("missing rows: %+v", recRes.Rows)
	}
	b.ReportMetric(rec.MTTRS, "s-mttr-recover")
	b.ReportMetric(rst.MTTRS, "s-mttr-restart")
	b.ReportMetric(rec.LostWorkS, "s-lost-recover")
	b.ReportMetric(rst.LostWorkS, "s-lost-restart")
	b.ReportMetric(rec.BackInServiceS, "s-back-in-service")
	if !rec.Recovered {
		b.Fatalf("checkpoint recovery never restored pre-crash progress: %+v", rec)
	}
	if rec.MTTRS >= rst.MTTRS {
		b.Fatalf("recovery MTTR %.0f s, restart %.0f s — no repair-time win", rec.MTTRS, rst.MTTRS)
	}
	if rec.LostWorkS >= rst.LostWorkS {
		b.Fatalf("recovery lost %.1f s of work, restart %.1f s — no lost-work win", rec.LostWorkS, rst.LostWorkS)
	}
}

var (
	stOnce sync.Once
	stRes  *evalrun.StorageResult
)

// BenchmarkStorageCache regenerates the tiered-storage table: the same
// fleet of tenants parked and resumed over the remote chain tier, with
// and without the node-local delta cache. Cached restores must move
// strictly fewer remote MB and have the fleet back in service strictly
// sooner than the uncached remote baseline — the acceptance bar for
// the delta cache (commit-time fills plus prefetch overlap must beat
// re-streaming every chain on every resume).
func BenchmarkStorageCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stOnce.Do(func() { stRes = evalrun.StorageTable(benchSeed, 4) })
	}
	b.ReportMetric(stRes.Cached.RemoteMB, "MB-remote-cached")
	b.ReportMetric(stRes.Uncached.RemoteMB, "MB-remote-uncached")
	b.ReportMetric(stRes.Cached.MeanRestoreS, "s-restore-cached")
	b.ReportMetric(stRes.Uncached.MeanRestoreS, "s-restore-uncached")
	b.ReportMetric(stRes.Cached.HitRatio*100, "%cache-hits")
	if stRes.Cached.Restores != stRes.Cycles || stRes.Uncached.Restores != stRes.Cycles {
		b.Fatalf("fleet never finished its cycles: cached %d, uncached %d of %d",
			stRes.Cached.Restores, stRes.Uncached.Restores, stRes.Cycles)
	}
	if stRes.Cached.RemoteMB >= stRes.Uncached.RemoteMB {
		b.Fatalf("cached restores moved %.0f remote MB, uncached %.0f — no byte savings",
			stRes.Cached.RemoteMB, stRes.Uncached.RemoteMB)
	}
	if stRes.Cached.MeanRestoreS >= stRes.Uncached.MeanRestoreS {
		b.Fatalf("cached restores took %.1f s, uncached %.1f s — no latency win",
			stRes.Cached.MeanRestoreS, stRes.Uncached.MeanRestoreS)
	}
}

var (
	scaleOnce sync.Once
	scaleRes  *evalrun.ScaleResult
)

// BenchmarkScale regenerates the oversubscription trajectory at 1k and
// 10k tenants and asserts the scheduler hot path scales sub-linearly:
// growing the fleet 10x (over a pool that stops growing at 256 nodes)
// must grow the mean wall-clock cost per scheduler decision by well
// under 10x — the indexed queue/victim structures' acceptance bar.
// Decision cost is wall-clock, so the bound is deliberately loose (8x
// against a ~2-3x measured ratio; the zero-alloc event core shrank
// absolute decision times enough that the short 1k measurement swings
// ~3x run to run); a linear-scan regression shows up as ~40x and
// fails regardless of machine noise.
func BenchmarkScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scaleOnce.Do(func() { scaleRes = evalrun.Scale(benchSeed, []int{1000, 10000}) })
	}
	r1k, r10k := scaleRes.Rows[0], scaleRes.Rows[1]
	b.ReportMetric(r1k.MeanDecisionUS, "us/decision-1k")
	b.ReportMetric(r10k.MeanDecisionUS, "us/decision-10k")
	b.ReportMetric(r10k.TicksPerWallMS, "ticks/wallms-10k")
	b.ReportMetric(r10k.EventsPerWallMS, "events/wallms-10k")
	if r1k.Completed != r1k.Tenants || r10k.Completed != r10k.Tenants {
		b.Fatalf("fleet did not drain: %d/%d at 1k, %d/%d at 10k",
			r1k.Completed, r1k.Tenants, r10k.Completed, r10k.Tenants)
	}
	if r1k.MeanDecisionUS <= 0 || r10k.MeanDecisionUS >= 8*r1k.MeanDecisionUS {
		b.Fatalf("decision cost grew super-linearly: %.2f us at 1k -> %.2f us at 10k",
			r1k.MeanDecisionUS, r10k.MeanDecisionUS)
	}
}

var (
	sbOnce sync.Once
	sbRes  *evalrun.SuiteBenchResult
)

// BenchmarkSuiteParallel regenerates the corpus-throughput table: the
// 24-scenario generated matrix run serially and on 2/4/8 workers. The
// report must be byte-identical at every width (parallelism only moves
// the wall clock) and the event core must stay allocation-free in
// steady state. The >=2x speedup bar at 4 workers is the parallel
// runner's acceptance criterion; it only holds where 4 cores exist, so
// it is gated on NumCPU (CI runners have 4; a 1-core box still checks
// identity and allocs, and reports its speedup as a metric).
func BenchmarkSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sbOnce.Do(func() { sbRes = evalrun.SuiteBench(benchSeed, 24, nil) })
	}
	rows := map[int]evalrun.SuiteBenchRow{}
	for _, r := range sbRes.Rows {
		rows[r.Workers] = r
	}
	b.ReportMetric(rows[1].ScenariosPerS, "scen/s-serial")
	b.ReportMetric(rows[4].ScenariosPerS, "scen/s-4workers")
	b.ReportMetric(rows[4].Speedup, "x-speedup-4workers")
	b.ReportMetric(sbRes.AllocsPerEvent, "allocs/event")
	if sbRes.AllocsPerEvent != 0 {
		b.Fatalf("event core allocates in steady state: %.0f allocs/event", sbRes.AllocsPerEvent)
	}
	for _, r := range sbRes.Rows {
		if !r.Identical {
			b.Fatalf("report at %d workers is not byte-identical to serial", r.Workers)
		}
	}
	if runtime.NumCPU() >= 4 && rows[4].Speedup < 2 {
		b.Fatalf("parallel corpus run only %.2fx faster at 4 workers on %d CPUs (want >=2x)",
			rows[4].Speedup, runtime.NumCPU())
	}
}

var (
	fedOnce sync.Once
	fedRes  *evalrun.FederationResult
)

// BenchmarkFederation regenerates the federated-sharding table: the
// 10k-tenant fleet over 4 facilities, serial vs full-width. The
// digest must be byte-identical at every worker count (the worker pool
// only moves the wall clock), the fleet must drain, migrations must
// flow, and warm-up must strictly cut the shared-pool restore traffic.
// The >=2x speedup bar at 4 facility-workers holds only where 4 cores
// exist, so — like BenchmarkSuiteParallel — it is gated on NumCPU; a
// smaller box still checks identity and reports its speedup.
func BenchmarkFederation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fedOnce.Do(func() { fedRes = evalrun.Federation(benchSeed, []int{10000}, []int{4}) })
	}
	var serial, par *evalrun.FederationRow
	for i := range fedRes.Rows {
		r := &fedRes.Rows[i]
		if r.Workers == 1 {
			serial = r
		} else {
			par = r
		}
	}
	if serial == nil || par == nil {
		b.Fatal("missing serial or parallel row")
	}
	b.ReportMetric(serial.WallMS, "wallms-serial")
	b.ReportMetric(par.WallMS, "wallms-4workers")
	b.ReportMetric(par.Speedup, "x-speedup-4workers")
	if !par.Identical {
		b.Fatalf("digest at 4 workers diverged from serial: %s vs %s", par.Digest, serial.Digest)
	}
	if serial.Migrations == 0 {
		b.Fatal("sharded 10k fleet migrated nothing")
	}
	if len(fedRes.Warm) == 2 && fedRes.Warm[1].RemoteMB >= fedRes.Warm[0].RemoteMB {
		b.Fatalf("warm-up did not cut remote restore traffic: %.1f MB warm vs %.1f MB cold",
			fedRes.Warm[1].RemoteMB, fedRes.Warm[0].RemoteMB)
	}
	if runtime.NumCPU() >= 4 && par.Speedup < 2 {
		b.Fatalf("federated run only %.2fx faster at 4 facility-workers on %d CPUs (want >=2x)",
			par.Speedup, runtime.NumCPU())
	}
}

// BenchmarkCheckpointLatency measures the raw cost of one incremental
// distributed checkpoint on an idle 2-node experiment — an ablation for
// the downtime the firewall conceals.
func BenchmarkCheckpointLatency(b *testing.B) {
	s := emucheck.NewSession(emucheck.Scenario{Spec: demoSpecForBench()}, benchSeed)
	s.RunFor(sim.Second)
	if _, err := s.Checkpoint(); err != nil { // absorb the full save
		b.Fatal(err)
	}
	b.ResetTimer()
	var worst sim.Time
	for i := 0; i < b.N; i++ {
		s.RunFor(sim.Second)
		res, err := s.Checkpoint()
		if err != nil {
			b.Fatal(err)
		}
		if d := res.MaxDowntime(); d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst.Millis(), "ms-worst-downtime")
}
