package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestRunRemediateScenario replays the committed remediate example: the
// crash has no scripted recovery event, so the tenant only comes back
// if the health loop detects it, cordons, drains the neighbor, and
// re-admits it from its last committed epoch on its own.
func TestRunRemediateScenario(t *testing.T) {
	res, err := Run(load(t, "remediate.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("remediate scenario failed:\n%s", res.Render())
	}
	row := res.Experiments[0]
	if row.Detections < 1 || row.Remediations < 1 || row.Recoveries != 1 {
		t.Fatalf("detections=%d remediations=%d recoveries=%d",
			row.Detections, row.Remediations, row.Recoveries)
	}
	if row.Quarantined {
		t.Fatal("remediated tenant ended quarantined")
	}
	if row.DetectMs <= 0 || row.MTTRMs <= row.DetectMs {
		t.Fatalf("detect=%.0fms mttr=%.0fms", row.DetectMs, row.MTTRMs)
	}
	h := res.Health
	if h == nil {
		t.Fatal("no health report despite health stanza")
	}
	if h.OpenCordons != 0 {
		t.Fatalf("orphaned cordons at quiescence: %d", h.OpenCordons)
	}
	if h.CordonsIssued != h.CordonsReleased || h.CordonsIssued < 1 {
		t.Fatalf("cordon ledger: issued=%d released=%d", h.CordonsIssued, h.CordonsReleased)
	}
	if h.Probes == 0 || h.Detections < 1 {
		t.Fatalf("health ledger: probes=%d detections=%d", h.Probes, h.Detections)
	}
	if len(h.Errors) > 0 {
		t.Fatalf("remediation hook errors: %v", h.Errors)
	}
}

// TestRunRemediateScenarioDeterministic: the whole unattended
// detect-cordon-drain-recover trajectory is a pure function of (file,
// seed).
func TestRunRemediateScenarioDeterministic(t *testing.T) {
	run := func() string {
		res, err := Run(load(t, "remediate.json"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same file+seed diverged:\n%s\n%s", a, b)
	}
}

// TestValidateCatchesHealthProblems exercises the health stanza's
// validation surface.
func TestValidateCatchesHealthProblems(t *testing.T) {
	mk := func(mut func(*File)) []error {
		f := load(t, "remediate.json")
		mut(f)
		return Validate(f)
	}
	cases := []struct {
		name string
		mut  func(*File)
		want string
	}{
		{"unknown policy", func(f *File) { f.Health.Policy = "paranoid" }, "unknown policy"},
		{"negative probe_ms", func(f *File) { f.Health.ProbeMs = -1 }, "negative probe_ms"},
		{"negative budget", func(f *File) { f.Health.Budget = -2 }, "negative threshold, hysteresis, or budget"},
		{"max_detect_ms needs health", func(f *File) { f.Health = nil }, "needs a health stanza"},
		{"max_detect_ms needs value", func(f *File) { f.Assertions[2].Value = 0 }, "positive value"},
		{"remediated needs target", func(f *File) { f.Assertions[0].Target = "" }, "remediated needs a target"},
	}
	for _, tc := range cases {
		errs := mk(tc.mut)
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: wanted error containing %q, got %v", tc.name, tc.want, errs)
		}
	}
}

// TestValidateRejectsFederationHealth: the two stanzas are mutually
// exclusive — there is no probed cluster inside a federation run.
func TestValidateRejectsFederationHealth(t *testing.T) {
	f := load(t, "federation.json")
	f.Health = &Health{}
	errs := Validate(f)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "no health stanza") {
			found = true
		}
	}
	if !found {
		t.Fatalf("federation+health accepted: %v", errs)
	}
}
