package xfer

import (
	"testing"

	"emucheck/internal/node"
	"emucheck/internal/sim"
)

func TestServerRateAndFIFO(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 10<<20) // 10 MB/s
	var t1, t2 sim.Time
	sv.Upload(10<<20, func() { t1 = s.Now() })
	sv.Upload(10<<20, func() { t2 = s.Now() })
	s.Run()
	if t1 != sim.Second {
		t.Fatalf("first transfer at %v", t1)
	}
	if t2 != 2*sim.Second {
		t.Fatalf("second transfer at %v (no FIFO sharing)", t2)
	}
	if sv.Received != 20<<20 {
		t.Fatal("byte accounting")
	}
}

func TestServerZeroBytes(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 0) // default rate
	fired := false
	sv.Download(0, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("zero transfer never fired")
	}
	if sv.Rate != 12_500_000 {
		t.Fatalf("default rate = %d", sv.Rate)
	}
}

func TestCopyOutMovesEverything(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 12<<20)
	c := NewCopier(s, d, sv)
	var moved int64
	c.CopyOut(0, 10<<20, func(m int64) { moved = m })
	s.Run()
	if moved != 10<<20 {
		t.Fatalf("moved %d", moved)
	}
	if d.ReadBytes != 10<<20 {
		t.Fatalf("disk reads %d", d.ReadBytes)
	}
	if sv.Received != 10<<20 {
		t.Fatal("server bytes")
	}
}

func TestRateLimitSlowsCopy(t *testing.T) {
	run := func(limit int64) sim.Time {
		s := sim.New(1)
		d := node.NewDisk(s, node.DefaultParams())
		sv := NewServer(s, 50<<20)
		c := NewCopier(s, d, sv)
		c.RateLimit = limit
		var end sim.Time
		c.CopyOut(0, 20<<20, func(int64) { end = s.Now() })
		s.Run()
		return end
	}
	fast := run(0)
	slow := run(2 << 20) // 2 MB/s -> ~10 s
	if slow < 9*sim.Second {
		t.Fatalf("rate limit ineffective: %v", slow)
	}
	if fast >= slow/2 {
		t.Fatalf("unthrottled (%v) not faster than throttled (%v)", fast, slow)
	}
}

func TestCopierCancel(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 10<<20)
	c := NewCopier(s, d, sv)
	c.RateLimit = 1 << 20
	var moved int64 = -1
	c.CopyOut(0, 100<<20, func(m int64) { moved = m })
	s.RunFor(3 * sim.Second)
	c.Cancel()
	s.Run()
	if moved < 0 {
		t.Fatal("done callback never fired")
	}
	if moved >= 100<<20 {
		t.Fatal("cancel did not stop the copy")
	}
}

func TestCopyInWritesDisk(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 12<<20)
	c := NewCopier(s, d, sv)
	var moved int64
	c.CopyIn(0, 5<<20, func(m int64) { moved = m })
	s.Run()
	if moved != 5<<20 || d.WriteBytes != 5<<20 || sv.Served != 5<<20 {
		t.Fatalf("moved=%d disk=%d served=%d", moved, d.WriteBytes, sv.Served)
	}
}

type memBackend struct {
	d *node.Disk
}

func (b *memBackend) Read(off, n int64, done func()) {
	b.d.Submit(&node.DiskRequest{Op: node.Read, LBA: off, Bytes: n, Done: done})
}
func (b *memBackend) Write(off, n int64, done func()) {
	b.d.Submit(&node.DiskRequest{Op: node.Write, LBA: off, Bytes: n, Done: done})
}

func TestLazyMirrorDemandFault(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 12<<20)
	lm := NewLazyMirror(s, &memBackend{d}, sv, d, 16<<20)
	var readDone sim.Time
	lm.Read(5<<20, 1<<20, func() { readDone = s.Now() })
	s.Run()
	if lm.Faults == 0 {
		t.Fatal("no demand fault")
	}
	// The fault had to pull ~2 chunks over a 12 MB/s pipe first.
	if readDone < 100*sim.Millisecond {
		t.Fatalf("read finished too fast: %v", readDone)
	}
	// Second read of the same range: no new faults.
	f := lm.Faults
	lm.Read(5<<20, 1<<20, nil)
	s.Run()
	if lm.Faults != f {
		t.Fatal("refetched present chunk")
	}
}

func TestLazyMirrorBackgroundFill(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 12<<20)
	lm := NewLazyMirror(s, &memBackend{d}, sv, d, 8<<20)
	done := false
	lm.StartBackground(func() { done = true })
	s.Run()
	if !done {
		t.Fatal("background fill incomplete")
	}
	if lm.Resident() < 8<<20 {
		t.Fatalf("resident %d", lm.Resident())
	}
	// Reads now hit locally without faults.
	lm.Read(0, 8<<20, nil)
	s.Run()
	if lm.Faults != 0 {
		t.Fatal("fault after full fill")
	}
}

func TestLazyMirrorWriteMarksPresent(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 12<<20)
	lm := NewLazyMirror(s, &memBackend{d}, sv, d, 8<<20)
	lm.Write(0, 1<<20, nil)
	s.Run()
	lm.Read(0, 1<<20, nil)
	s.Run()
	if lm.Faults != 0 {
		t.Fatal("write did not mark chunk present")
	}
}
