package emucheck

import (
	"testing"
	"testing/quick"

	"emucheck/internal/apps"
	"emucheck/internal/sim"
)

// TestPropertyTransparencyUnderRandomSchedules is the repository's
// headline property: for ANY checkpoint schedule (random intervals,
// random count), a guest measuring 20 ms sleep iterations never observes
// more than the calibrated leak + skew bound, and the distributed
// protocol always terminates with every node resumed.
func TestPropertyTransparencyUnderRandomSchedules(t *testing.T) {
	f := func(seed int64, gaps []uint8) bool {
		if len(gaps) > 6 {
			gaps = gaps[:6]
		}
		var loop *apps.SleepLoop
		sc := demoScenario()
		sc.Setup = func(s *Session) {
			loop = apps.NewSleepLoop(s.Kernel("a"), 200)
			loop.Run(nil)
		}
		s := NewSession(sc, seed%1000+1)
		// Random checkpoint schedule.
		for _, g := range gaps {
			s.RunFor(sim.Time(g%40)*100*sim.Millisecond + 200*sim.Millisecond)
			if _, err := s.Checkpoint(); err != nil {
				return false
			}
		}
		s.RunFor(10 * sim.Second)
		if loop.Times.Len() != 200 {
			return false
		}
		// Worst iteration bound: nominal 20 ms + leak (~90 µs) + jitter
		// headroom. A leaked checkpoint would show up as tens of ms.
		if loop.Times.Max() > 20.5*float64(sim.Millisecond) {
			return false
		}
		// Everyone resumed; no inside activity ran while frozen.
		for _, n := range s.Exp.Nodes {
			if n.K.Suspended() || n.K.FW.InsideFired != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyVirtualTimeNeverExceedsReal: virtual clocks only ever run
// at or below real time (dilation >= 1, freezes subtract), and never go
// backwards — across random checkpoint/swap interleavings.
func TestPropertyVirtualClockMonotone(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewSession(demoScenario(), 55)
		var last sim.Time
		for _, op := range ops {
			if len(ops) > 8 {
				ops = ops[:8]
			}
			switch op % 3 {
			case 0:
				s.RunFor(sim.Time(op%5+1) * 500 * sim.Millisecond)
			case 1:
				if _, err := s.Checkpoint(); err != nil {
					return false
				}
			case 2:
				if _, err := s.SwapOut(); err == nil {
					s.RunFor(sim.Minute)
					if _, err := s.SwapIn(true); err != nil {
						return false
					}
				}
			}
			v := s.VirtualNow("a")
			if v < last {
				return false // virtual clock ran backwards
			}
			if v > s.Now() {
				return false // virtual time outran real time
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
