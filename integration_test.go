package emucheck

import (
	"testing"

	"emucheck/internal/emulab"
	"emucheck/internal/guest"
	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// bigScenario is a five-node experiment with mixed topology: a shaped
// WAN link, a fast LAN, and a plain fabric link — plus workloads on
// every segment.
func bigScenario(state *bigState) Scenario {
	return Scenario{
		Spec: emulab.Spec{
			Name: "integration",
			Nodes: []emulab.NodeSpec{
				{Name: "web", Swappable: true},
				{Name: "db", Swappable: true},
				{Name: "cache", Swappable: true},
				{Name: "client", Swappable: true},
				{Name: "monitor"},
			},
			Links: []emulab.LinkSpec{
				// Client reaches the web server over a shaped WAN path.
				{A: "client", B: "web", Bandwidth: 10 * simnet.Mbps, Delay: 25 * sim.Millisecond},
				// Monitor hangs off the web server on raw fabric.
				{A: "web", B: "monitor"},
			},
			LANs: []emulab.LANSpec{
				{Name: "backend", Members: []string{"web", "db", "cache"}},
			},
		},
		Setup: func(s *Session) { state.install(s) },
	}
}

type bigState struct {
	served   int
	dbOps    int
	rtts     []sim.Time
	monitors int
}

// install wires a small multi-tier application: the client issues
// requests over the WAN; the web server consults the cache, falls
// through to the db (disk I/O), replies, and notifies the monitor.
func (st *bigState) install(s *Session) {
	client, web := s.Kernel("client"), s.Kernel("web")
	db, cache, mon := s.Kernel("db"), s.Kernel("cache"), s.Kernel("monitor")

	cache.Handle("get", func(from simnet.Addr, m *guest.Message) {
		key := m.Data.(int)
		if key%3 == 0 { // cache hit
			cache.Send("web", 600, &guest.Message{Port: "cache-hit", Data: key})
			return
		}
		cache.Send("web", 80, &guest.Message{Port: "cache-miss", Data: key})
	})
	db.Handle("query", func(from simnet.Addr, m *guest.Message) {
		key := m.Data.(int)
		db.ReadDisk(int64(key)*4096, 64<<10, func() {
			st.dbOps++
			db.Send("web", 600, &guest.Message{Port: "db-reply", Data: key})
		})
	})
	reply := func(key int) {
		st.served++
		web.Send("client", 900, &guest.Message{Port: "resp", Data: key})
		web.Send("monitor", 100, &guest.Message{Port: "served", Data: key})
	}
	web.Handle("req", func(from simnet.Addr, m *guest.Message) {
		web.Send("cache", 80, &guest.Message{Port: "get", Data: m.Data})
	})
	web.Handle("cache-hit", func(from simnet.Addr, m *guest.Message) { reply(m.Data.(int)) })
	web.Handle("cache-miss", func(from simnet.Addr, m *guest.Message) {
		web.Send("db", 80, &guest.Message{Port: "query", Data: m.Data})
	})
	web.Handle("db-reply", func(from simnet.Addr, m *guest.Message) { reply(m.Data.(int)) })
	mon.Handle("served", func(simnet.Addr, *guest.Message) { st.monitors++ })

	n := 0
	var sent sim.Time
	var issue func()
	client.Handle("resp", func(simnet.Addr, *guest.Message) {
		st.rtts = append(st.rtts, client.Monotonic()-sent)
		client.Usleep(30*sim.Millisecond, issue)
	})
	issue = func() {
		n++
		sent = client.Monotonic()
		client.Send("web", 200, &guest.Message{Port: "req", Data: n})
	}
	issue()
}

// TestIntegrationFullLifecycle drives the multi-tier app through
// checkpoints, a stateful swap cycle, and continued execution, checking
// the experiment-visible invariants at each stage.
func TestIntegrationFullLifecycle(t *testing.T) {
	st := &bigState{}
	s := NewSession(bigScenario(st), 20260612)

	// Phase 1: plain run.
	s.RunFor(10 * sim.Second)
	if st.served < 50 {
		t.Fatalf("app barely running: served %d", st.served)
	}
	if st.monitors != st.served {
		t.Fatalf("monitor lost events: %d vs %d", st.monitors, st.served)
	}

	// Phase 2: checkpoint storm.
	pc := s.PeriodicCheckpoints(2*sim.Second, 4)
	s.RunFor(40 * sim.Second)
	if pc.Count() != 4 {
		t.Fatalf("checkpoints = %d", pc.Count())
	}
	for _, res := range s.Exp.Coord.History {
		if len(res.Images) != 5 || len(res.DelayStates) != 1 {
			t.Fatalf("epoch %d incomplete: %d images, %d delay states",
				res.Epoch, len(res.Images), len(res.DelayStates))
		}
	}

	// Phase 3: stateful swap cycle with a long park. The application
	// keeps running during the eager pre-copy (that is the point of
	// pre-copy); it must be fully stopped once swap-out completes.
	vBefore := s.VirtualNow("client")
	if _, err := s.SwapOut(); err != nil {
		t.Fatal(err)
	}
	servedBefore := st.served
	s.RunFor(2 * sim.Hour)
	if st.served != servedBefore {
		t.Fatal("application ran while swapped out")
	}
	if _, err := s.SwapIn(true); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * sim.Second)
	if st.served <= servedBefore {
		t.Fatal("application did not resume after swap-in")
	}
	vAfter := s.VirtualNow("client")
	if gap := vAfter - vBefore; gap > 5*sim.Minute {
		t.Fatalf("swap interval leaked into virtual time: %v", gap)
	}

	// Invariants over the whole run: every RTT respects the emulated
	// 50 ms WAN floor (minus the bounded sync-skew distortion), and no
	// inside activity ever ran during a checkpoint.
	floor := 50 * sim.Millisecond
	for i, rtt := range st.rtts {
		if rtt < floor-10*sim.Millisecond {
			t.Fatalf("rtt %d = %v beat the WAN link", i, rtt)
		}
	}
	for _, n := range s.Exp.Nodes {
		if n.K.FW.InsideFired != 0 {
			t.Fatalf("node %s: inside activity during checkpoint", n.K.Name)
		}
	}
	if st.dbOps == 0 {
		t.Fatal("cache-miss path never exercised")
	}
}

// TestIntegrationDeterminism verifies the entire stack is bit-stable:
// two sessions with the same seed produce identical observable
// histories even through checkpoints.
func TestIntegrationDeterminism(t *testing.T) {
	run := func() (int, []sim.Time) {
		st := &bigState{}
		s := NewSession(bigScenario(st), 777)
		s.PeriodicCheckpoints(3*sim.Second, 2)
		s.RunFor(20 * sim.Second)
		return st.served, st.rtts
	}
	served1, rtts1 := run()
	served2, rtts2 := run()
	if served1 != served2 || len(rtts1) != len(rtts2) {
		t.Fatalf("nondeterministic: %d/%d served, %d/%d rtts", served1, served2, len(rtts1), len(rtts2))
	}
	for i := range rtts1 {
		if rtts1[i] != rtts2[i] {
			t.Fatalf("rtt %d differs: %v vs %v", i, rtts1[i], rtts2[i])
		}
	}
}

// TestIntegrationDilatedReplay exercises the §6 time-dilation knob: a
// replay under 2x dilation sees the same virtual-time behaviour while
// real time runs twice as slow.
func TestIntegrationDilatedReplay(t *testing.T) {
	st := &bigState{}
	s := NewSession(bigScenario(st), 31)
	s.RunFor(5 * sim.Second)
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	st2 := &bigState{}
	s.Scenario = bigScenario(st2)
	replay, err := s.Rollback(1, Perturbation{Kind: TimeDilation, Magnitude: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Under 2x dilation, reaching the checkpoint's virtual time takes
	// twice the real time; Rollback runs for the virtual target in real
	// units, so it lands near half the virtual progress.
	vNow := replay.VirtualNow("client")
	if vNow > 4*sim.Second {
		t.Fatalf("dilation not applied: virtual %v after rollback window", vNow)
	}
	replay.RunFor(10 * sim.Second)
	if replay.VirtualNow("client") > 8*sim.Second {
		t.Fatal("virtual time running too fast under 2x dilation")
	}
	if st2.served == 0 {
		t.Fatal("dilated replay did not run the app")
	}
	// DieCast semantics: the physical network is NOT dilated, so the
	// 2x-dilated guest perceives it as twice as fast — virtual RTTs sit
	// near half the 50 ms real floor. That perception shift is exactly
	// what the knob is for (subjecting systems to "network speeds much
	// higher than what is physically possible", §8).
	for i, rtt := range st2.rtts {
		if rtt < 20*sim.Millisecond || rtt > 45*sim.Millisecond {
			t.Fatalf("dilated rtt %d = %v, want ~25-35ms (half the real floor)", i, rtt)
		}
	}
}
