package evalrun

import (
	"fmt"

	"emucheck"
	"emucheck/internal/emulab"
	"emucheck/internal/metrics"
	"emucheck/internal/sim"
)

// StorageModeRow is one cache configuration's outcome over the same
// park/resume churn.
type StorageModeRow struct {
	// Mode is "cached" (remote tier + delta cache) or "uncached"
	// (remote tier alone — every restore re-streams its chain).
	Mode string `json:"mode"`
	// Restores counts completed whole-fleet resume rounds.
	Restores int `json:"restores"`
	// RemoteMB is the chain state that crossed the control LAN to or
	// from the shared pool.
	RemoteMB float64 `json:"remote_mb"`
	// MovedMB is the total file-server traffic, both directions.
	MovedMB float64 `json:"moved_mb"`
	// HitRatio is the delta cache's hit ratio (0 for uncached).
	HitRatio float64 `json:"cache_hit_ratio"`
	// MeanRestoreS is the mean wall time from a fleet-wide resume to
	// every tenant running again.
	MeanRestoreS float64 `json:"mean_restore_s"`
}

// StorageResult is the tiered-storage benchmark: a fan-out of tenants
// parks and resumes over the remote chain tier, with and without the
// node-local delta cache. The cached rows must move strictly fewer
// remote MB and have the fleet back in service strictly sooner — the
// cache turns repeat restores into local reads while the prefetch
// overlap hides the misses (see docs/storage.md).
type StorageResult struct {
	FanOut   int     `json:"fan_out"`
	Seed     int64   `json:"seed"`
	Pool     int     `json:"pool"`
	Cycles   int     `json:"cycles"`
	HorizonS float64 `json:"horizon_s"`

	Cached   StorageModeRow `json:"cached"`
	Uncached StorageModeRow `json:"uncached"`
}

// storageWriterScenario is one 2-node tenant steadily dirtying disk
// state — the churn each park commits and each resume must restore.
func storageWriterScenario(name string) emucheck.Scenario {
	a, b := name+"a", name+"b"
	return emucheck.Scenario{
		Spec: emulab.Spec{
			Name:  name,
			Nodes: []emulab.NodeSpec{{Name: a, Swappable: true}, {Name: b, Swappable: true}},
			Links: []emulab.LinkSpec{{A: a, B: b}},
		},
		Setup: func(s *emucheck.Session) {
			self := s.Scenario.Spec.Name
			k := s.Kernel(a)
			var off int64
			var step func()
			step = func() {
				k.WriteDisk(1<<30+off%(1<<30), 768<<10, func() {
					off += 768 << 10
					s.C.Touch(self)
					k.Usleep(sim.Second, step)
				})
			}
			step()
		},
	}
}

// runStorageMode churns the fleet through park/resume cycles under one
// cache configuration and measures restore cost.
func runStorageMode(seed int64, fanout, cycles int, horizon sim.Time, cached bool) StorageModeRow {
	pool := 2 * fanout
	c := emucheck.NewCluster(pool, seed, emucheck.FIFO)
	c.Incremental = true
	cacheMB := int64(0)
	if cached {
		cacheMB = 2048
	}
	if err := c.ConfigureStorage(emucheck.StorageOptions{Backend: "remote", CacheMB: cacheMB}); err != nil {
		panic("storage: " + err.Error())
	}

	names := make([]string, fanout)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i+1)
		if _, err := c.Submit(storageWriterScenario(names[i]), 0); err != nil {
			panic("storage: " + err.Error())
		}
	}

	allIn := func(state string) bool {
		for _, n := range names {
			if c.Tenant(n).State() != state {
				return false
			}
		}
		return true
	}
	row := StorageModeRow{Mode: "uncached"}
	if cached {
		row.Mode = "cached"
	}
	var restoreTime sim.Time
	for cycle := 0; cycle < cycles && c.Now() < horizon; cycle++ {
		// Let the fleet dirty fresh state, then park everyone.
		c.RunFor(45 * sim.Second)
		for _, n := range names {
			if err := c.Park(n); err != nil {
				panic("storage: " + err.Error())
			}
		}
		for c.Now() < horizon && !allIn("parked") {
			c.RunFor(sim.Second)
		}
		// Resume the whole fleet at once: the restores contend for the
		// shared control-LAN pipe, which is where cached chains win.
		resumeAt := c.Now()
		for _, n := range names {
			if err := c.Unpark(n); err != nil {
				panic("storage: " + err.Error())
			}
		}
		for c.Now() < horizon && !allIn("running") {
			c.RunFor(sim.Second)
		}
		if !allIn("running") {
			break
		}
		restoreTime += c.Now() - resumeAt
		row.Restores++
	}
	if row.Restores > 0 {
		row.MeanRestoreS = (restoreTime / sim.Time(row.Restores)).Seconds()
	}
	row.RemoteMB = float64(c.SwapStats.Get("storage.remote_bytes")) / (1 << 20)
	row.MovedMB = float64(c.TB.Server.Received+c.TB.Server.Served) / (1 << 20)
	if cache := c.DeltaCache(); cache != nil {
		row.HitRatio = cache.HitRatio()
	}
	return row
}

// StorageTable runs the cached-vs-uncached comparison (fanout 0 = 4).
func StorageTable(seed int64, fanout int) *StorageResult {
	if fanout <= 0 {
		fanout = 4
	}
	const cycles = 3
	horizon := 30 * sim.Minute
	return &StorageResult{
		FanOut: fanout, Seed: seed, Pool: 2 * fanout,
		Cycles: cycles, HorizonS: horizon.Seconds(),
		Cached:   runStorageMode(seed, fanout, cycles, horizon, true),
		Uncached: runStorageMode(seed, fanout, cycles, horizon, false),
	}
}

// Render prints the comparison.
func (r *StorageResult) Render() string {
	t := &metrics.Table{Header: []string{"mode", "restores", "remote MB", "moved MB", "hit ratio", "mean restore (s)"}}
	for _, row := range []StorageModeRow{r.Cached, r.Uncached} {
		t.AddRow(row.Mode, row.Restores, fmt.Sprintf("%.0f", row.RemoteMB),
			fmt.Sprintf("%.0f", row.MovedMB), fmt.Sprintf("%.0f%%", row.HitRatio*100),
			fmt.Sprintf("%.1f", row.MeanRestoreS))
	}
	s := fmt.Sprintf("%d tenants x 2 nodes, %d park/resume cycles over the remote chain tier, with and without the node-local delta cache\n",
		r.FanOut, r.Cycles)
	return s + t.String()
}
