package xfer

import (
	"testing"

	"emucheck/internal/node"
	"emucheck/internal/sim"
)

func TestLazyMirrorPartialTailChunk(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 12<<20)
	// Total not a multiple of the chunk size: 2.5 MB.
	lm := NewLazyMirror(s, &memBackend{d}, sv, d, (2<<20)+(1<<19))
	done := false
	lm.StartBackground(func() { done = true })
	s.Run()
	if !done {
		t.Fatal("partial tail never filled")
	}
	if sv.Served != (2<<20)+(1<<19) {
		t.Fatalf("served %d", sv.Served)
	}
}

func TestLazyMirrorBaseOffsetIsolation(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 12<<20)
	lm := NewLazyMirror(s, &memBackend{d}, sv, d, 4<<20)
	lm.Base = 1 << 30
	// Reads fully outside the managed window never fault.
	lm.Read(0, 1<<20, nil)
	lm.Read(2<<30, 1<<20, nil)
	s.Run()
	if lm.Faults != 0 {
		t.Fatalf("out-of-window reads faulted %d times", lm.Faults)
	}
	// A read inside the window faults.
	lm.Read(1<<30, 1<<20, nil)
	s.Run()
	if lm.Faults == 0 {
		t.Fatal("in-window read did not fault")
	}
}

func TestLazyMirrorFaultAndFillDoNotDuplicate(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 12<<20)
	lm := NewLazyMirror(s, &memBackend{d}, sv, d, 8<<20)
	lm.SetBackgroundRate(0)
	lm.StartBackground(nil)
	// Demand-read everything while the fill races.
	for off := int64(0); off < 8<<20; off += 1 << 20 {
		lm.Read(off, 1<<20, nil)
	}
	s.Run()
	// No chunk may be downloaded twice: total served == total bytes.
	if sv.Served != 8<<20 {
		t.Fatalf("served %d for an 8MB region (duplicate downloads)", sv.Served)
	}
}

func TestCopierChunkBoundary(t *testing.T) {
	s := sim.New(1)
	d := node.NewDisk(s, node.DefaultParams())
	sv := NewServer(s, 12<<20)
	c := NewCopier(s, d, sv)
	c.ChunkBytes = 1 << 20
	var moved int64
	c.CopyOut(0, (3<<20)+123, func(m int64) { moved = m })
	s.Run()
	if moved != (3<<20)+123 {
		t.Fatalf("moved %d", moved)
	}
}

func TestServerInterleavedDirections(t *testing.T) {
	s := sim.New(1)
	sv := NewServer(s, 10<<20)
	var t1, t2 sim.Time
	sv.Upload(5<<20, func() { t1 = s.Now() })
	sv.Download(5<<20, func() { t2 = s.Now() })
	s.Run()
	// One shared pipe: the download queues behind the upload.
	if t1 != 500*sim.Millisecond || t2 != sim.Second {
		t.Fatalf("t1=%v t2=%v", t1, t2)
	}
}
