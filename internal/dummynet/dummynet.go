// Package dummynet models the FreeBSD Dummynet traffic-shaping subsystem
// that Emulab delay nodes run (Rizzo 1997, paper §2, §4.4).
//
// A Pipe shapes one direction of an emulated link: packets first wait in
// a bounded FIFO "router queue", drain through a bandwidth stage (one
// packet transmitting at a time at the configured rate), and then sit in
// a delay line for the link's propagation delay before being emitted
// downstream.
//
// The package implements the paper's delay-node checkpoint: a live,
// non-destructive serialization of the whole pipe hierarchy — every
// queued packet and every packet "in flight" inside a delay line with its
// remaining delay — plus freeze/resume that virtualizes time so the
// packets experience exactly the delay they were configured for, with the
// checkpoint interval edited out (§4.4).
package dummynet

import (
	"fmt"

	"emucheck/internal/sim"
	"emucheck/internal/simnet"
)

// DefaultQueueSlots matches Dummynet's default 50-slot router queue.
const DefaultQueueSlots = 50

// inflight is a packet in the delay line, due to be emitted at emit.
type inflight struct {
	pkt  *simnet.Packet
	emit sim.Time // absolute, in real simulation time
}

// Pipe is one shaping stage: bandwidth + delay + loss + bounded queue.
type Pipe struct {
	name string
	sim  *sim.Simulator
	out  simnet.Port

	// Configuration, mirroring a `pipe config` in Dummynet.
	Bandwidth simnet.Bitrate // 0 means unlimited
	Delay     sim.Time
	PLR       float64 // packet loss rate in [0,1]
	Slots     int     // router queue capacity in packets

	queue   []*simnet.Packet // router queue; head is transmitting next
	headTx  *sim.Event       // pending bandwidth-stage completion
	headEnd sim.Time         // when the head packet finishes transmitting
	line    []inflight       // delay line
	lineEvs []*sim.Event     // emission events, parallel to line

	frozen   bool
	frozeAt  sim.Time
	headLeft sim.Time // remaining tx time of head packet at freeze

	// Statistics.
	Enqueued uint64
	Emitted  uint64
	Dropped  uint64 // queue-full drops
	PLRDrops uint64
}

// NewPipe creates a shaping pipe feeding out.
func NewPipe(s *sim.Simulator, name string, bw simnet.Bitrate, delay sim.Time, out simnet.Port) *Pipe {
	return &Pipe{
		name: name, sim: s, out: out,
		Bandwidth: bw, Delay: delay, Slots: DefaultQueueSlots,
	}
}

// Name reports the pipe's configured name.
func (p *Pipe) Name() string { return p.name }

// QueueLen reports packets waiting in (or transmitting from) the router
// queue.
func (p *Pipe) QueueLen() int { return len(p.queue) }

// InFlight reports packets currently in the delay line — the
// bandwidth-delay product the paper's delay-node checkpoint captures.
func (p *Pipe) InFlight() int { return len(p.line) }

// Accept implements simnet.Port: a packet enters the router queue.
func (p *Pipe) Accept(pkt *simnet.Packet) {
	if p.frozen {
		// A frozen delay node is checkpoint-quiesced; with synchronized
		// checkpoints the endpoints are frozen too, so this only happens
		// inside the skew window. Queue the packet if there is room: it
		// is part of the captured network state.
		if len(p.queue) >= p.Slots {
			p.Dropped++
			return
		}
		p.Enqueued++
		p.queue = append(p.queue, pkt)
		return
	}
	if p.PLR > 0 && p.sim.Rand().Float64() < p.PLR {
		p.PLRDrops++
		return
	}
	if len(p.queue) >= p.Slots {
		p.Dropped++
		return
	}
	p.Enqueued++
	p.queue = append(p.queue, pkt)
	if len(p.queue) == 1 {
		p.startHead()
	}
}

// startHead begins the bandwidth stage for the queue head.
func (p *Pipe) startHead() {
	if len(p.queue) == 0 || p.frozen {
		return
	}
	tx := p.Bandwidth.TxTime(p.queue[0].Size)
	p.headEnd = p.sim.Now() + tx
	p.headTx = p.sim.At(p.headEnd, p.name+".tx", p.finishHead)
}

// finishHead moves the head packet into the delay line.
func (p *Pipe) finishHead() {
	pkt := p.queue[0]
	p.queue = p.queue[1:]
	p.headTx = nil
	p.enterDelayLine(pkt, p.Delay)
	p.startHead()
}

func (p *Pipe) enterDelayLine(pkt *simnet.Packet, remaining sim.Time) {
	emit := p.sim.Now() + remaining
	fl := inflight{pkt: pkt, emit: emit}
	p.line = append(p.line, fl)
	ev := p.sim.At(emit, p.name+".emit", func() { p.emit(pkt) })
	p.lineEvs = append(p.lineEvs, ev)
}

func (p *Pipe) emit(pkt *simnet.Packet) {
	// Remove from the delay line bookkeeping.
	for i := range p.line {
		if p.line[i].pkt == pkt {
			p.line = append(p.line[:i], p.line[i+1:]...)
			p.lineEvs = append(p.lineEvs[:i], p.lineEvs[i+1:]...)
			break
		}
	}
	p.Emitted++
	if p.out != nil {
		p.out.Accept(pkt)
	}
}

// Freeze suspends the pipe non-destructively: the bandwidth stage and all
// delay-line emissions are unhooked with their remaining times recorded.
// This is the "suspend Dummynet" step of the delay-node checkpoint.
func (p *Pipe) Freeze() {
	if p.frozen {
		return
	}
	p.frozen = true
	p.frozeAt = p.sim.Now()
	if p.headTx != nil {
		p.headLeft = p.headEnd - p.sim.Now()
		p.sim.Cancel(p.headTx)
		p.headTx = nil
	} else {
		p.headLeft = -1
	}
	for _, ev := range p.lineEvs {
		p.sim.Cancel(ev)
	}
	p.lineEvs = p.lineEvs[:0]
}

// Frozen reports whether the pipe is suspended.
func (p *Pipe) Frozen() bool { return p.frozen }

// Thaw resumes the pipe, virtualizing away the frozen interval: every
// packet resumes with exactly the remaining delay it had at freeze time,
// so the shaped link characteristics observed by the experiment are
// unchanged (§4.4 "resume execution by unblocking Dummynet and
// virtualizing time to account for the time spent in the checkpoint").
func (p *Pipe) Thaw() {
	if !p.frozen {
		return
	}
	p.frozen = false
	now := p.sim.Now()
	// Re-arm delay line with remaining delays.
	line := p.line
	p.line = nil
	p.lineEvs = nil
	for _, fl := range line {
		remaining := fl.emit - p.frozeAt
		if remaining < 0 {
			remaining = 0
		}
		fl := fl
		p.line = append(p.line, inflight{pkt: fl.pkt, emit: now + remaining})
		ev := p.sim.At(now+remaining, p.name+".emit", func() { p.emit(fl.pkt) })
		p.lineEvs = append(p.lineEvs, ev)
	}
	// Re-arm the bandwidth stage.
	if p.headLeft >= 0 && len(p.queue) > 0 {
		p.headEnd = now + p.headLeft
		p.headTx = p.sim.At(p.headEnd, p.name+".tx", p.finishHead)
	} else if len(p.queue) > 0 {
		p.startHead()
	}
	p.headLeft = -1
}

// PacketState is one serialized packet with its shaping progress.
type PacketState struct {
	Packet         *simnet.Packet
	RemainingDelay sim.Time // for delay-line packets
}

// PipeState is the serialized form of a Pipe: configuration plus every
// queued and in-flight packet. It is what the delay-node checkpoint
// writes out (§4.4: "a hierarchy of pipes, router queues, and the packets
// queued in those pipes and queues").
type PipeState struct {
	Name        string
	Bandwidth   simnet.Bitrate
	Delay       sim.Time
	PLR         float64
	Slots       int
	Queue       []PacketState
	DelayLine   []PacketState
	HeadTxLeft  sim.Time // remaining bandwidth-stage time, -1 if idle
	StatsEnq    uint64
	StatsEmit   uint64
	StatsDrop   uint64
	StatsPLRDrp uint64
}

// Bytes reports an estimate of the serialized image size: packet wire
// bytes plus fixed metadata, used by swap-time accounting.
func (st *PipeState) Bytes() int {
	n := 128 // pipe header
	for _, q := range st.Queue {
		n += q.Packet.Size + 32
	}
	for _, d := range st.DelayLine {
		n += d.Packet.Size + 32
	}
	return n
}

// Serialize captures the pipe state. The pipe must be frozen: Dummynet is
// suspended before its state is walked, keeping the capture consistent.
func (p *Pipe) Serialize() (*PipeState, error) {
	if !p.frozen {
		return nil, fmt.Errorf("dummynet: serialize of running pipe %s", p.name)
	}
	st := &PipeState{
		Name: p.name, Bandwidth: p.Bandwidth, Delay: p.Delay, PLR: p.PLR, Slots: p.Slots,
		HeadTxLeft:  p.headLeft,
		StatsEnq:    p.Enqueued,
		StatsEmit:   p.Emitted,
		StatsDrop:   p.Dropped,
		StatsPLRDrp: p.PLRDrops,
	}
	for _, pkt := range p.queue {
		st.Queue = append(st.Queue, PacketState{Packet: pkt.Clone()})
	}
	for _, fl := range p.line {
		st.DelayLine = append(st.DelayLine, PacketState{
			Packet:         fl.pkt.Clone(),
			RemainingDelay: fl.emit - p.frozeAt,
		})
	}
	return st, nil
}

// Restore reconstructs the pipe from a serialized state. The pipe comes
// back frozen; Thaw resumes it with the captured remaining delays.
func (p *Pipe) Restore(st *PipeState) {
	p.Freeze()
	p.Bandwidth = st.Bandwidth
	p.Delay = st.Delay
	p.PLR = st.PLR
	p.Slots = st.Slots
	p.Enqueued = st.StatsEnq
	p.Emitted = st.StatsEmit
	p.Dropped = st.StatsDrop
	p.PLRDrops = st.StatsPLRDrp
	p.queue = nil
	for _, q := range st.Queue {
		p.queue = append(p.queue, q.Packet.Clone())
	}
	p.line = nil
	p.lineEvs = nil
	p.frozeAt = p.sim.Now()
	for _, d := range st.DelayLine {
		p.line = append(p.line, inflight{pkt: d.Packet.Clone(), emit: p.frozeAt + d.RemainingDelay})
	}
	p.headLeft = st.HeadTxLeft
}

// DelayNode is an Emulab delay node interposed on one duplex link: one
// pipe per direction, plus the checkpoint entry points. The node is
// transparent to the experimental network (§2) — it only shapes.
type DelayNode struct {
	Name    string
	Forward *Pipe // A -> B
	Reverse *Pipe // B -> A
}

// NewDelayNode builds a delay node shaping a duplex link with symmetric
// bandwidth/delay. Outputs are attached later via AttachForward/Reverse.
func NewDelayNode(s *sim.Simulator, name string, bw simnet.Bitrate, delay sim.Time) *DelayNode {
	return &DelayNode{
		Name:    name,
		Forward: NewPipe(s, name+".fwd", bw, delay, nil),
		Reverse: NewPipe(s, name+".rev", bw, delay, nil),
	}
}

// AttachForward connects the A->B pipe output.
func (d *DelayNode) AttachForward(out simnet.Port) { d.Forward.out = out }

// AttachReverse connects the B->A pipe output.
func (d *DelayNode) AttachReverse(out simnet.Port) { d.Reverse.out = out }

// SetLoss configures symmetric packet loss.
func (d *DelayNode) SetLoss(plr float64) {
	d.Forward.PLR = plr
	d.Reverse.PLR = plr
}

// Freeze suspends both directions.
func (d *DelayNode) Freeze() {
	d.Forward.Freeze()
	d.Reverse.Freeze()
}

// Thaw resumes both directions.
func (d *DelayNode) Thaw() {
	d.Forward.Thaw()
	d.Reverse.Thaw()
}

// InFlight reports the total captured bandwidth-delay packets.
func (d *DelayNode) InFlight() int {
	return d.Forward.InFlight() + d.Reverse.InFlight() + d.Forward.QueueLen() + d.Reverse.QueueLen()
}

// State is a serialized delay node.
type State struct {
	Name    string
	Forward *PipeState
	Reverse *PipeState
}

// Bytes reports the serialized image size estimate.
func (s *State) Bytes() int { return s.Forward.Bytes() + s.Reverse.Bytes() }

// Serialize captures both pipes; the node must be frozen.
func (d *DelayNode) Serialize() (*State, error) {
	f, err := d.Forward.Serialize()
	if err != nil {
		return nil, err
	}
	r, err := d.Reverse.Serialize()
	if err != nil {
		return nil, err
	}
	return &State{Name: d.Name, Forward: f, Reverse: r}, nil
}

// Restore reconstructs both pipes from a serialized state; the node comes
// back frozen.
func (d *DelayNode) Restore(st *State) {
	d.Forward.Restore(st.Forward)
	d.Reverse.Restore(st.Reverse)
}
