package sched

import (
	"testing"

	"emucheck/internal/sim"
)

func TestCordonBlocksAdmission(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	if err := d.Cordon(2); err != nil {
		t.Fatal(err)
	}
	a := fakeJob(s, "a", 2, 0, sim.Second, sim.Second, sim.Second)
	b := fakeJob(s, "b", 2, 0, sim.Second, sim.Second, sim.Second)
	for _, j := range []*Job{a, b} {
		if err := d.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(5 * sim.Second)
	// Only two schedulable nodes: a runs, b waits behind the cordon.
	if a.State() != Running || b.State() != Queued {
		t.Fatalf("states: a=%v b=%v", a.State(), b.State())
	}
	if d.CordonedNodes() != 2 {
		t.Fatalf("cordoned = %d", d.CordonedNodes())
	}
	if err := d.Uncordon(2); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * sim.Second)
	if b.State() != Running {
		t.Fatalf("b = %v after uncordon", b.State())
	}
	if d.CordonedNodes() != 0 {
		t.Fatalf("cordoned = %d after uncordon", d.CordonedNodes())
	}
}

func TestCordonBoundsAndErrors(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	if err := d.Cordon(0); err == nil {
		t.Fatal("zero cordon accepted")
	}
	if err := d.Cordon(5); err == nil {
		t.Fatal("cordon beyond capacity accepted")
	}
	if err := d.Cordon(3); err != nil {
		t.Fatal(err)
	}
	if err := d.Cordon(2); err == nil {
		t.Fatal("cumulative cordon beyond capacity accepted")
	}
	if err := d.Uncordon(4); err == nil {
		t.Fatal("uncordon beyond cordoned accepted")
	}
	if err := d.Uncordon(3); err != nil {
		t.Fatal(err)
	}
}

func TestCordonShortfallDrivesPreemption(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	d.MinResidency = 5 * sim.Second
	a := fakeJob(s, "a", 2, 0, sim.Second, sim.Second, sim.Second)
	b := fakeJob(s, "b", 2, 0, sim.Second, sim.Second, sim.Second)
	for _, j := range []*Job{a, b} {
		if err := d.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(2 * sim.Second)
	if a.State() != Running || b.State() != Running {
		t.Fatalf("states: a=%v b=%v", a.State(), b.State())
	}
	// b finishes; its nodes come back but are immediately cordoned
	// (suspect hardware). A new arrival must now preempt a even though
	// free capacity nominally covers it.
	if err := d.Finish("b"); err != nil {
		t.Fatal(err)
	}
	if err := d.Cordon(2); err != nil {
		t.Fatal(err)
	}
	c := fakeJob(s, "c", 2, 0, sim.Second, sim.Second, sim.Second)
	if err := d.Submit(c); err != nil {
		t.Fatal(err)
	}
	s.RunFor(20 * sim.Second)
	// With only two schedulable nodes, a and c round-robin: admitting c
	// required parking a even though free nominally covered it.
	if a.Preemptions() < 1 {
		t.Fatalf("a preemptions = %d (cordoned nodes were handed out)", a.Preemptions())
	}
	if c.Admissions() < 1 {
		t.Fatalf("c admissions = %d", c.Admissions())
	}
}

func TestReserveRespectsCordon(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	if err := d.Cordon(3); err != nil {
		t.Fatal(err)
	}
	if err := d.Reserve(2); err == nil {
		t.Fatal("reserve handed out cordoned nodes")
	}
	if err := d.Reserve(1); err != nil {
		t.Fatal(err)
	}
}

func TestDrainForFreesCapacityForCrashedJob(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	d.MinResidency = sim.Second
	a := fakeJob(s, "a", 2, 0, sim.Second, sim.Second, sim.Second)
	b := fakeJob(s, "b", 2, 0, sim.Second, sim.Second, sim.Second)
	for _, j := range []*Job{a, b} {
		if err := d.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	s.RunFor(5 * sim.Second)
	// b crashes; its hardware returns but is cordoned away, so a is the
	// only capacity left. DrainFor(b) parks a to make room.
	if err := d.Fail("b"); err != nil {
		t.Fatal(err)
	}
	if err := d.Cordon(2); err != nil {
		t.Fatal(err)
	}
	n, err := d.DrainFor("b")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("drained %d victims, want 1", n)
	}
	if d.Drains != 1 {
		t.Fatalf("Drains = %d", d.Drains)
	}
	if err := d.Recover("b"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(20 * sim.Second)
	if b.State() != Running {
		t.Fatalf("b = %v after drain+recover", b.State())
	}
	// a was drained, not retired: it re-queued and is back too once the
	// cordon lifts.
	if err := d.Uncordon(2); err != nil {
		t.Fatal(err)
	}
	s.RunFor(20 * sim.Second)
	if a.State() != Running {
		t.Fatalf("a = %v after uncordon", a.State())
	}
}

func TestDrainForNoopWhenCapacitySuffices(t *testing.T) {
	s := sim.New(1)
	d := New(s, 4, FIFO)
	a := fakeJob(s, "a", 2, 0, sim.Second, sim.Second, sim.Second)
	if err := d.Submit(a); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * sim.Second)
	if err := d.Fail("a"); err != nil {
		t.Fatal(err)
	}
	n, err := d.DrainFor("a")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || d.Drains != 0 {
		t.Fatalf("drained %d (Drains %d) with free capacity", n, d.Drains)
	}
	if _, err := d.DrainFor("ghost"); err == nil {
		t.Fatal("drain for unknown job accepted")
	}
}
