// Command emusuite runs a scenario corpus under the suite runner's
// shared invariants: either a directory of scenario files or a
// deterministic generated matrix (see internal/scengen). Every run is
// checked for same-seed replay determinism, leaked pool hardware,
// chain-store refcount drift, control-LAN delivery conservation,
// orphaned health-loop cordons, and negative accounting ledgers — on
// top of the scenario's own assertions.
//
// Usage:
//
//	emusuite [-seed N] [-count M] [-dir path] [-parallel N] [-json] [-junit file] [-gen-out dir]
//
// With -dir, every *.json under the directory runs; otherwise a
// generated matrix of -count scenarios keyed by -seed runs. -parallel
// bounds the worker pool running scenario executions concurrently
// (default GOMAXPROCS, 1 forces serial); the emitted report is
// byte-identical at any setting, so parallelism only moves the wall
// clock. -json emits the corpus report (schema emusuite/v1, no
// wall-clock fields: two same-seed invocations are byte-identical).
// -junit writes JUnit XML whose time attributes are simulated seconds.
// -gen-out writes the generated corpus as scenario files and exits
// without running, so a failing generated scenario can be reproduced
// under emucheck alone. Exits nonzero when any run fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"emucheck/internal/scenario"
	"emucheck/internal/scengen"
	"emucheck/internal/suite"
)

// loadDir parses every scenario file under dir, sorted by path so the
// corpus order (and therefore the report) is deterministic.
func loadDir(dir string) ([]*scenario.File, []string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("no scenario files under %s", dir)
	}
	var files []*scenario.File
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, nil, err
		}
		f, err := scenario.Parse(data)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", p, err)
		}
		files = append(files, f)
	}
	return files, paths, nil
}

// writeCorpus materializes the generated matrix as scenario files.
func writeCorpus(w io.Writer, dir string, seed int64, count int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range scengen.Matrix(seed, count) {
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, f.Name+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(w, path)
	}
	return nil
}

// cli is the whole command behind a testable seam: args excludes the
// program name, output goes to the given writers, and the return value
// is the process exit code.
func cli(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("emusuite", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "generator seed for the scenario matrix")
	count := fs.Int("count", 24, "generated matrix size")
	dir := fs.String("dir", "", "run every *.json scenario under this directory instead of generating")
	asJSON := fs.Bool("json", false, "emit the corpus report as JSON (schema emusuite/v1)")
	junitPath := fs.String("junit", "", "write JUnit XML to this file")
	genOut := fs.String("gen-out", "", "write the generated corpus as scenario files to this directory and exit")
	parallel := fs.Int("parallel", 0, "max concurrent scenario executions (0 = GOMAXPROCS, 1 = serial); the report is byte-identical at any setting")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "emusuite:", err)
		return 1
	}

	if *genOut != "" {
		if err := writeCorpus(stdout, *genOut, *seed, *count); err != nil {
			return fail(err)
		}
		return 0
	}

	var rep *suite.Report
	if *dir != "" {
		files, paths, err := loadDir(*dir)
		if err != nil {
			return fail(err)
		}
		rep = suite.RunFilesParallel(files, paths, *parallel)
	} else {
		rep = suite.RunMatrixParallel(*seed, *count, *parallel)
	}

	if *junitPath != "" {
		data, err := rep.JUnit("emusuite")
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(*junitPath, data, 0o644); err != nil {
			return fail(err)
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, string(out))
	} else {
		fmt.Fprint(stdout, rep.Render())
	}
	if rep.Failed > 0 {
		return 1
	}
	return 0
}

func main() {
	os.Exit(cli(os.Args[1:], os.Stdout, os.Stderr))
}
